#!/usr/bin/env python3
"""Soak gate for `wampde_cli serve`: drive one daemon process through a
scripted batch of mixed envelope/quasiperiodic jobs (plus protocol
garbage, a cancel, and optionally a seeded fault storm) and assert the
service contract:

  * the daemon exits 0 — a failing job is a response, never a crash;
  * every submitted job ends in exactly one terminal record: a
    `result` whose embedded manifest validates under
    `wampde_cli report --check`, or a typed `job-error`;
  * protocol garbage produces `error` responses and nothing else;
  * with repeated-circuit krylov jobs, the warm preconditioner cache
    reports hits in the final metrics record (skipped under --faults,
    where jobs may die before reaching the cache);
  * the `stats` request is answered with the grouped operational
    snapshot (cache / pool / health / serve);
  * every typed job-error (other than a cancellation) carries a
    `flight` path to a per-job flight dump, and that dump exists on
    disk — it is copied into --out for the CI artifact.

With --crash (requires --spool pointing at the daemon's spool
directory) the script instead runs the crash-recovery gate: it starts
the daemon, submits a batch, SIGKILLs the process the moment the first
checkpoint lands in the spool, restarts the same command on the same
spool, and asserts that the restarted daemon replays its journal,
emits a `recovered` record for every unfinished job, and that every
job of the batch ends in exactly one terminal record across both
lives — a `report --check`-valid manifest or a typed `job-error`.  On
any violation the spool's journal is copied into --out for the CI
artifact.

Outputs land in --out: the raw response stream (responses.ndjson), the
daemon's stderr log (server.log), and one manifest-<id>.json per
completed job — CI uploads the directory as the debugging artifact.

Exit codes: 0 ok, 1 contract violation, 2 usage error.
Only the Python standard library is used.
"""

import argparse
import glob
import json
import os
import shlex
import shutil
import subprocess
import sys
import threading
import time

REQUESTS = [
    # repeated-circuit krylov batch: exercises the preconditioner and
    # orbit caches and the round-robin preemption path
    {"type": "job", "id": "env-a1", "circuit": "vco-a", "analysis": "envelope",
     "t_end": 6, "rtol": 1e-3, "n1": 15, "solver": "krylov"},
    {"type": "job", "id": "env-a2", "circuit": "vco-a", "analysis": "envelope",
     "t_end": 6, "rtol": 1e-3, "n1": 15, "solver": "krylov"},
    {"type": "job", "id": "env-a3", "circuit": "vco-a", "analysis": "envelope",
     "t_end": 6, "rtol": 1e-3, "n1": 15, "solver": "krylov"},
    # a second circuit and the dense path
    {"type": "job", "id": "env-b1", "circuit": "vco-b", "analysis": "envelope",
     "t_end": 20, "rtol": 1e-3, "n1": 15},
    # an atomic quasiperiodic job in the same session
    {"type": "job", "id": "quasi-a1", "circuit": "vco-a",
     "analysis": "quasiperiodic", "n1": 15, "n2": 7},
    # protocol garbage between valid jobs: the daemon must answer with
    # typed errors and keep serving
    "{this is not json",
    "[1,2,3]",
    {"type": "job", "id": "bad n1", "circuit": "vco-a",
     "analysis": "envelope", "t_end": 1},
    # a queued job cancelled before it runs (last in the round-robin)
    {"type": "job", "id": "env-cancel", "circuit": "vco-a",
     "analysis": "envelope", "t_end": 6, "rtol": 1e-3, "n1": 15},
    {"type": "cancel", "id": "env-cancel"},
    {"type": "metrics"},
    {"type": "stats"},
    {"type": "shutdown", "drain": True},
]

SUBMITTED = [r["id"] for r in REQUESTS
             if isinstance(r, dict) and r.get("type") == "job"
             and r["id"] != "bad n1"]
GARBAGE_LINES = 3  # two malformed lines + the rejected "bad n1" job


def fail(msg):
    print(f"serve_soak: FAIL: {msg}", file=sys.stderr)
    return 1


CRASH_JOBS = [
    {"type": "job", "id": "cr-1", "circuit": "vco-a", "analysis": "envelope",
     "t_end": 6, "rtol": 1e-3, "n1": 15, "solver": "krylov"},
    {"type": "job", "id": "cr-2", "circuit": "vco-a", "analysis": "envelope",
     "t_end": 6, "rtol": 1e-3, "n1": 15, "solver": "krylov"},
    {"type": "job", "id": "cr-3", "circuit": "vco-b", "analysis": "envelope",
     "t_end": 20, "rtol": 1e-3, "n1": 15},
]


def run_crash(args):
    if not args.spool:
        print("serve_soak: usage error: --crash requires --spool", file=sys.stderr)
        return 2
    os.makedirs(args.out, exist_ok=True)
    shutil.rmtree(args.spool, ignore_errors=True)

    def upload_journal():
        j = os.path.join(args.spool, "journal.wj")
        if os.path.exists(j):
            dst = os.path.join(args.out, "journal.wj")
            shutil.copy(j, dst)
            print(f"serve_soak: journal uploaded to {dst}", file=sys.stderr)

    def crash_fail(msg):
        upload_journal()
        return fail(msg)

    # ---- life one: submit the batch, SIGKILL at the first checkpoint
    stdin_text = "\n".join(json.dumps(j) for j in CRASH_JOBS) + "\n"
    log1_path = os.path.join(args.out, "crash-server-1.log")
    lines1 = []
    with open(log1_path, "w") as log1:
        proc = subprocess.Popen(
            shlex.split(args.serve_cmd), stdin=subprocess.PIPE,
            stdout=subprocess.PIPE, stderr=log1, text=True)

        # reader thread: the daemon must never block on a full pipe
        def pump():
            for line in proc.stdout:
                lines1.append(line)

        pump_thread = threading.Thread(target=pump, daemon=True)
        pump_thread.start()
        try:
            proc.stdin.write(stdin_text)
            proc.stdin.flush()
        except BrokenPipeError:
            return crash_fail("daemon died while the batch was being submitted")
        deadline = time.time() + args.timeout
        killed = False
        while time.time() < deadline:
            if glob.glob(os.path.join(args.spool, "*.ckpt")):
                proc.kill()  # SIGKILL: no chance to journal a clean stop
                killed = True
                break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        if not killed:
            proc.kill()
            proc.wait(timeout=30)
            return crash_fail("no checkpoint ever appeared in the spool to crash on")
        proc.wait(timeout=30)
        pump_thread.join(timeout=10)
    with open(os.path.join(args.out, "crash-responses-1.ndjson"), "w") as f:
        f.writelines(lines1)
    print(f"serve_soak: SIGKILL delivered mid-batch "
          f"({len(lines1)} response lines before the crash)")

    records1 = []
    for line in lines1:
        try:
            records1.append(json.loads(line))
        except json.JSONDecodeError:
            pass  # the kill can tear the final line mid-write

    # ---- life two: same command, same spool; recovery finishes the batch
    restart_input = json.dumps({"type": "shutdown", "drain": True}) + "\n"
    log2_path = os.path.join(args.out, "crash-server-2.log")
    with open(log2_path, "w") as log2:
        try:
            proc2 = subprocess.run(
                shlex.split(args.serve_cmd), input=restart_input,
                stdout=subprocess.PIPE, stderr=log2, text=True,
                timeout=args.timeout)
        except subprocess.TimeoutExpired:
            return crash_fail(
                f"restarted daemon wedged: no exit within {args.timeout}s")
    with open(os.path.join(args.out, "crash-responses-2.ndjson"), "w") as f:
        f.write(proc2.stdout)
    if proc2.returncode != 0:
        return crash_fail(
            f"restarted daemon exited {proc2.returncode} (see {log2_path})")
    records2 = []
    for lineno, line in enumerate(proc2.stdout.splitlines(), 1):
        try:
            records2.append(json.loads(line))
        except json.JSONDecodeError as exc:
            return crash_fail(
                f"restart response line {lineno} is not JSON ({exc}): {line!r}")

    recovered = {r.get("id") for r in records2 if r.get("type") == "recovered"}
    for job in CRASH_JOBS:
        jid = job["id"]
        t1 = [r for r in records1
              if r.get("type") in ("result", "job-error") and r.get("id") == jid]
        t2 = [r for r in records2
              if r.get("type") in ("result", "job-error") and r.get("id") == jid]
        if len(t1) + len(t2) != 1:
            return crash_fail(f"{jid}: {len(t1)}+{len(t2)} terminal records "
                              "across crash and restart")
        if not t1 and jid not in recovered:
            return crash_fail(f"{jid}: unfinished at the crash but never recovered")
        term = (t1 + t2)[0]
        if term["type"] == "job-error":
            if not term.get("kind"):
                return crash_fail(f"{jid}: job-error without a typed kind")
            print(f"serve_soak: {jid}: job-error kind={term['kind']}")
        else:
            manifest_path = os.path.join(args.out, f"manifest-{jid}.json")
            with open(manifest_path, "w") as f:
                json.dump(term["manifest"], f)
            check = subprocess.run(
                shlex.split(args.check_cmd) + [manifest_path],
                capture_output=True, text=True)
            if check.returncode != 0:
                return crash_fail(f"{jid}: manifest invalid: "
                                  f"{check.stdout}{check.stderr}")
            where = "before the crash" if t1 else "after recovery"
            print(f"serve_soak: {jid}: result ok ({where}), manifest validated")
    if not recovered:
        return crash_fail("restart recovered nothing: the batch finished before "
                          "the kill, so the gate never exercised recovery")
    if not any(r.get("type") == "bye" for r in records2):
        return crash_fail("restarted daemon produced no bye record")
    print(f"serve_soak: crash recovery ok — {sorted(recovered)} "
          "resumed after SIGKILL")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--serve-cmd", required=True,
                    help="daemon command line, e.g. "
                         "'dune exec bin/wampde_cli.exe -- serve --quantum 4'")
    ap.add_argument("--check-cmd", required=True,
                    help="manifest validator command line; the manifest "
                         "path is appended, e.g. "
                         "'dune exec bin/wampde_cli.exe -- report --check'")
    ap.add_argument("--out", default="soak-out",
                    help="output directory for logs and manifests")
    ap.add_argument("--faults", default=None,
                    help="WAMPDE_FAULTS spec for a seeded storm "
                         "(relaxes the all-jobs-succeed and cache-hit "
                         "assertions to typed-termination only)")
    ap.add_argument("--timeout", type=float, default=600,
                    help="wall-clock bound on the daemon, seconds")
    ap.add_argument("--crash", action="store_true",
                    help="run the crash-recovery gate: SIGKILL the daemon "
                         "at the first checkpoint, restart it on the same "
                         "spool, assert journal recovery finishes the batch")
    ap.add_argument("--spool", default=None,
                    help="the daemon's spool directory (required with "
                         "--crash; must match the --spool in --serve-cmd)")
    args = ap.parse_args()

    if args.crash:
        return run_crash(args)

    os.makedirs(args.out, exist_ok=True)
    env = dict(os.environ)
    if args.faults:
        env["WAMPDE_FAULTS"] = args.faults

    stdin_text = "\n".join(
        r if isinstance(r, str) else json.dumps(r) for r in REQUESTS) + "\n"

    log_path = os.path.join(args.out, "server.log")
    with open(log_path, "w") as log:
        try:
            proc = subprocess.run(
                shlex.split(args.serve_cmd), input=stdin_text, env=env,
                stdout=subprocess.PIPE, stderr=log, text=True,
                timeout=args.timeout)
        except subprocess.TimeoutExpired:
            return fail(f"daemon wedged: no exit within {args.timeout}s")

    with open(os.path.join(args.out, "responses.ndjson"), "w") as f:
        f.write(proc.stdout)

    if proc.returncode != 0:
        return fail(f"daemon exited {proc.returncode} (see {log_path})")

    records = []
    for lineno, line in enumerate(proc.stdout.splitlines(), 1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            return fail(f"response line {lineno} is not JSON ({exc}): {line!r}")

    def of_type(t):
        return [r for r in records if r.get("type") == t]

    # exactly one terminal record per submitted job
    failures = 0
    for job_id in SUBMITTED:
        terminals = [r for r in records
                     if r.get("type") in ("result", "job-error")
                     and r.get("id") == job_id]
        if len(terminals) != 1:
            return fail(f"{job_id}: {len(terminals)} terminal records")
        term = terminals[0]
        if term["type"] == "job-error":
            if not term.get("kind"):
                return fail(f"{job_id}: job-error without a typed kind")
            print(f"serve_soak: {job_id}: job-error kind={term['kind']}")
            if term["kind"] != "cancelled":
                failures += 1
                # every solver failure must leave a postmortem flight
                # dump next to the job in the spool
                flight = term.get("flight")
                if not flight:
                    return fail(f"{job_id}: job-error without a flight dump path")
                if not os.path.exists(flight):
                    return fail(f"{job_id}: flight dump {flight} does not exist")
                shutil.copy(flight, os.path.join(
                    args.out, f"flight-{job_id}.json"))
                print(f"serve_soak: {job_id}: flight dump captured ({flight})")
        else:
            manifest_path = os.path.join(args.out, f"manifest-{job_id}.json")
            with open(manifest_path, "w") as f:
                json.dump(term["manifest"], f)
            check = subprocess.run(
                shlex.split(args.check_cmd) + [manifest_path],
                capture_output=True, text=True)
            if check.returncode != 0:
                return fail(f"{job_id}: manifest invalid: "
                            f"{check.stdout}{check.stderr}")
            print(f"serve_soak: {job_id}: result ok "
                  f"({term['quanta']} quanta, {term['preemptions']} "
                  f"preemptions), manifest validated")

    errors = of_type("error")
    if len(errors) < GARBAGE_LINES:
        return fail(f"expected >= {GARBAGE_LINES} protocol errors, "
                    f"got {len(errors)}")
    if not of_type("bye"):
        return fail("no bye record: the daemon did not shut down cleanly")

    cancel_terms = [r for r in records if r.get("id") == "env-cancel"
                    and r.get("type") == "job-error"]
    if not (cancel_terms and cancel_terms[0].get("kind") == "cancelled"):
        return fail("env-cancel did not terminate with kind=cancelled")

    stats_records = of_type("stats")
    if len(stats_records) != 1:
        return fail(f"expected exactly one stats record, got {len(stats_records)}")
    stats = stats_records[0]
    for group in ("cache", "pool", "health", "serve"):
        if not isinstance(stats.get(group), dict):
            return fail(f"stats record lacks the {group!r} group: {stats}")
    print(f"serve_soak: stats: serve={stats['serve']} "
          f"health.warnings={stats['health'].get('warnings')}")

    metrics_records = of_type("metrics")
    if not metrics_records:
        return fail("no metrics records")
    counters = metrics_records[-1].get("metrics", {}).get("counters", {})
    print(f"serve_soak: cache.precond hits={counters.get('cache.precond.hits', 0)} "
          f"misses={counters.get('cache.precond.misses', 0)}; "
          f"cache.orbit hits={counters.get('cache.orbit.hits', 0)}; "
          f"preemptions={counters.get('serve.preemptions', 0)}")

    if args.faults:
        print(f"serve_soak: fault storm: {failures}/{len(SUBMITTED)} jobs "
              "ended in typed errors, rest in validated manifests")
    else:
        if failures:
            return fail(f"{failures} jobs failed without a fault storm armed")
        if counters.get("cache.precond.hits", 0) <= 0:
            return fail("repeated-circuit krylov batch produced no "
                        "preconditioner cache hits")
        if counters.get("serve.preemptions", 0) <= 0:
            return fail("concurrent envelope jobs were never preempted")

    print("serve_soak: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
