#!/usr/bin/env python3
"""Bench trend trajectory (and legacy gate): compare the fresh
krylov-vs-dense speedup against the previous CI run's artifact.

The pass/fail decision now lives in the solver binary itself —
`wampde_cli history gate --prev DIR --fresh DIR` implements the same
comparison with the same exit codes, and CI gates on that.  This
script remains for the artifact chain: it merges the speedup
trajectory (bench-trend.json) and prints the informational cost
comparisons.  Run with --no-gate (as CI does) to skip the redundant
gate; without it the legacy gating behaviour is unchanged.

Inputs are BENCH_*.json files as written by `bench/main.exe --json`:
a list of {"id", "wall_s", "metrics"} entries whose metrics.gauges
include "bench.krylov.speedup.n1_<N>" (wall-clock ratio dense/krylov
at collocation size N).  The decision quantity is the speedup at the
largest N present — the size the paper's scaling claim rests on.

The script also maintains a merged trajectory (bench-trend.json): the
previous artifact's history plus this run's point, so the artifact
chain accumulates a speedup-over-time series.

Exit codes: 0 ok (or no baseline), 1 regression, 2 usage/data error.
Only the Python standard library is used.
"""

import argparse
import glob
import json
import os
import sys

SPEEDUP_PREFIX = "bench.krylov.speedup.n1_"
PAR_SPEEDUP_PREFIX = "bench.krylov.par_speedup.n1_"
HISTORY_NAME = "bench-trend.json"


def find_bench_files(directory):
    return sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))


def extract_speedups(path):
    """Map n1 -> speedup ratio from one BENCH_*.json file."""
    with open(path) as f:
        entries = json.load(f)
    speedups = {}
    for entry in entries:
        gauges = entry.get("metrics", {}).get("gauges", {})
        for name, value in gauges.items():
            if name.startswith(SPEEDUP_PREFIX):
                n1 = int(name[len(SPEEDUP_PREFIX):])
                speedups[n1] = max(value, speedups.get(n1, 0.0))
    return speedups


def extract_par_speedups(path):
    """Map n1 -> domain-pool strong-scaling speedup (jobs 1 vs --jobs N)
    from one BENCH_*.json file.  Informational only — CI runners have
    too few cores to gate on, and a serial run simply has no rows."""
    with open(path) as f:
        entries = json.load(f)
    speedups = {}
    for entry in entries:
        gauges = entry.get("metrics", {}).get("gauges", {})
        for name, value in gauges.items():
            if name.startswith(PAR_SPEEDUP_PREFIX):
                n1 = int(name[len(PAR_SPEEDUP_PREFIX):])
                speedups[n1] = max(value, speedups.get(n1, 0.0))
    return speedups


def extract_solver_costs(path):
    """Per-experiment GMRES-iteration and allocation counts (informational,
    not gated): {id: {"gmres_iterations", "alloc_words", "scoped": {...}}}."""
    with open(path) as f:
        entries = json.load(f)
    costs = {}
    for entry in entries:
        metrics = entry.get("metrics", {})
        costs[entry.get("id", "?")] = {
            "gmres_iterations": metrics.get("counters", {}).get("gmres.iterations", 0),
            "alloc_words": metrics.get("gauges", {}).get("bench.alloc_words", 0.0),
            "scoped": metrics.get("scoped", {}).get("gmres.iterations", {}),
        }
    return costs


def load_history(directory):
    path = os.path.join(directory, HISTORY_NAME)
    if not os.path.exists(path):
        return []
    try:
        with open(path) as f:
            history = json.load(f)
        return history if isinstance(history, list) else []
    except (json.JSONDecodeError, OSError) as exc:
        print(f"bench_trend: ignoring unreadable history {path}: {exc}")
        return []


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--prev", default="prev-bench",
                    help="directory with the previous run's artifact (may be absent)")
    ap.add_argument("--fresh", default=".",
                    help="directory with this run's BENCH_*.json")
    ap.add_argument("--history", default=HISTORY_NAME,
                    help="output path for the merged trend trajectory")
    ap.add_argument("--threshold", type=float, default=0.75,
                    help="fail when fresh speedup < threshold * previous (default 0.75)")
    ap.add_argument("--no-gate", action="store_true",
                    help="trajectory and informational output only; the "
                         "regression verdict is left to 'wampde_cli history gate'")
    args = ap.parse_args()

    fresh_files = find_bench_files(args.fresh)
    if not fresh_files:
        print(f"bench_trend: no BENCH_*.json in {args.fresh}", file=sys.stderr)
        return 2
    fresh_file = fresh_files[-1]
    fresh = extract_speedups(fresh_file)
    if not fresh:
        print(f"bench_trend: no {SPEEDUP_PREFIX}* gauges in {fresh_file}", file=sys.stderr)
        return 2

    costs = extract_solver_costs(fresh_file)
    for exp_id, cost in sorted(costs.items()):
        print(f"bench_trend: {exp_id}: {cost['gmres_iterations']} gmres iters, "
              f"{cost['alloc_words'] / 1e6:.1f} Mwords allocated")

    par = extract_par_speedups(fresh_file)
    for n1, ratio in sorted(par.items()):
        print(f"bench_trend: n1={n1}: pool strong-scaling speedup "
              f"{ratio:.2f}x (informational)")

    history = load_history(args.prev)
    history.append({
        "source": os.path.basename(fresh_file),
        "speedups": {str(n1): ratio for n1, ratio in sorted(fresh.items())},
        "par_speedups": {str(n1): ratio for n1, ratio in sorted(par.items())},
        "solver_costs": costs,
    })
    with open(args.history, "w") as f:
        json.dump(history, f, indent=2)
        f.write("\n")
    print(f"bench_trend: wrote {args.history} ({len(history)} points)")

    prev_files = find_bench_files(args.prev) if os.path.isdir(args.prev) else []
    if not prev_files:
        print("bench_trend: no previous artifact; recording baseline and passing")
        return 0
    # The previous artifact comes from an expirable CI chain: it can be
    # missing (handled above), empty, truncated by a cancelled run, or
    # shaped by an older schema.  None of that may fail *this* run —
    # degrade to an informational pass and let the fresh point become
    # the new baseline.
    try:
        prev = extract_speedups(prev_files[-1])
        prev_costs = extract_solver_costs(prev_files[-1])
        prev_par = extract_par_speedups(prev_files[-1])
    except (OSError, json.JSONDecodeError, UnicodeDecodeError, AttributeError,
            TypeError, ValueError, KeyError) as exc:
        print(f"bench_trend: previous artifact {prev_files[-1]} is unusable "
              f"({exc}); recording baseline and passing")
        return 0
    if not prev:
        print("bench_trend: previous artifact has no speedup gauges; "
              "recording baseline and passing")
        return 0
    for exp_id in sorted(set(costs) & set(prev_costs)):
        pg = prev_costs[exp_id]["gmres_iterations"]
        fg = costs[exp_id]["gmres_iterations"]
        if pg or fg:
            print(f"bench_trend: {exp_id}: gmres iters {pg} -> {fg} (informational)")
        pa = prev_costs[exp_id]["alloc_words"]
        fa = costs[exp_id]["alloc_words"]
        if pa or fa:
            print(f"bench_trend: {exp_id}: allocation {pa / 1e6:.1f} -> {fa / 1e6:.1f} "
                  f"Mwords (informational)")
    for n1 in sorted(set(par) & set(prev_par)):
        print(f"bench_trend: n1={n1}: pool speedup {prev_par[n1]:.2f}x -> "
              f"{par[n1]:.2f}x (informational)")
    common = sorted(set(fresh) & set(prev))
    if not common:
        print("bench_trend: no common n1 sizes with previous run; passing")
        return 0

    n1 = common[-1]
    ratio = fresh[n1] / prev[n1] if prev[n1] > 0 else float("inf")
    print(f"bench_trend: n1={n1}: previous speedup {prev[n1]:.2f}x, "
          f"fresh {fresh[n1]:.2f}x ({ratio:.2f} of previous)")
    if args.no_gate:
        print("bench_trend: --no-gate: verdict deferred to 'wampde_cli history gate'")
        return 0
    if ratio < args.threshold:
        print(f"bench_trend: FAIL: krylov-vs-dense speedup regressed by more than "
              f"{100 * (1 - args.threshold):.0f}% at n1={n1}", file=sys.stderr)
        return 1
    print("bench_trend: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
