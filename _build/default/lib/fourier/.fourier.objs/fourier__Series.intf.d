lib/fourier/series.mli: Cx Linalg Mat Vec
