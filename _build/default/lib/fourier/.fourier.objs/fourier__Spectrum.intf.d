lib/fourier/spectrum.mli: Linalg Vec
