lib/fourier/fft.ml: Array Complex Cx Float Linalg
