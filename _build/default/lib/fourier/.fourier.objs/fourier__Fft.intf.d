lib/fourier/fft.mli: Cx Linalg Vec
