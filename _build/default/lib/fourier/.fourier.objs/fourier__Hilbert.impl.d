lib/fourier/hilbert.ml: Array Complex Cx Fft Float Linalg
