lib/fourier/series.ml: Array Complex Cx Fft Float Linalg Mat Printf Vec
