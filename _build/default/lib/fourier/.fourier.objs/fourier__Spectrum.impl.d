lib/fourier/spectrum.ml: Array Complex Fft Float Int Linalg Vec
