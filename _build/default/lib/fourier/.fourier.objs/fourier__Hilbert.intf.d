lib/fourier/hilbert.mli: Cx Linalg Vec
