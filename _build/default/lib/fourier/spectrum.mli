(** Simple spectral analysis of uniformly sampled real signals. *)

open Linalg

(** [magnitudes x] is the one-sided magnitude spectrum [|X_k| / n] for
    [k = 0 .. n/2] (DC and positive frequencies). *)
val magnitudes : Vec.t -> Vec.t

(** [frequencies ~dt n] are the frequencies (in cycles per time unit)
    of the one-sided bins of an [n]-sample signal at spacing [dt]. *)
val frequencies : dt:float -> int -> Vec.t

(** [hann n] is the Hann window of length [n]. *)
val hann : int -> Vec.t

(** [dominant_frequency ~dt x] estimates the frequency of the strongest
    non-DC component, refined by parabolic interpolation of the log
    magnitudes of the peak bin and its neighbours. *)
val dominant_frequency : dt:float -> Vec.t -> float
