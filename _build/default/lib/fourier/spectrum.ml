open Linalg

let magnitudes x =
  let n = Array.length x in
  if n = 0 then [||]
  else begin
    let spec = Fft.fft_real x in
    let half = (n / 2) + 1 in
    Vec.init half (fun k -> Complex.norm spec.(k) /. float_of_int n)
  end

let frequencies ~dt n =
  let half = (n / 2) + 1 in
  Vec.init half (fun k -> float_of_int k /. (float_of_int n *. dt))

let hann n =
  Vec.init n (fun i ->
      0.5 *. (1. -. cos (2. *. Float.pi *. float_of_int i /. float_of_int (Int.max 1 (n - 1)))))

let dominant_frequency ~dt x =
  let n = Array.length x in
  if n < 4 then invalid_arg "Spectrum.dominant_frequency: too few samples";
  let w = hann n in
  let windowed = Vec.map2 (fun a b -> a *. b) x w in
  let mags = magnitudes windowed in
  let half = Array.length mags in
  let peak = ref 1 in
  for k = 2 to half - 2 do
    if mags.(k) > mags.(!peak) then peak := k
  done;
  let k = !peak in
  let safe_log m = log (Float.max m 1e-300) in
  let delta =
    if k <= 0 || k >= half - 1 then 0.
    else begin
      let a = safe_log mags.(k - 1) and b = safe_log mags.(k) and c = safe_log mags.(k + 1) in
      let denom = a -. (2. *. b) +. c in
      if Float.abs denom < 1e-12 then 0. else 0.5 *. (a -. c) /. denom
    end
  in
  (float_of_int k +. delta) /. (float_of_int n *. dt)
