(** Discrete Hilbert transform and analytic-signal analysis.

    Provides an alternative, zero-crossing-free estimator of amplitude
    envelope and instantaneous frequency: the analytic signal
    [z = x + i H x] has [|z|] as envelope and [d arg z / dt / 2 pi]
    as instantaneous frequency.  Most accurate for narrowband signals
    whose length is close to an integer number of cycles. *)

open Linalg

(** [analytic x] is the analytic signal of a real signal (FFT method:
    negative frequencies zeroed, positive doubled). *)
val analytic : Vec.t -> Cx.Cvec.t

(** [transform x] is the Hilbert transform [H x] (the imaginary part
    of the analytic signal). *)
val transform : Vec.t -> Vec.t

(** [envelope x] is the instantaneous amplitude [|analytic x|]. *)
val envelope : Vec.t -> Vec.t

(** [unwrapped_phase x] is the continuous instantaneous phase of the
    analytic signal, in radians. *)
val unwrapped_phase : Vec.t -> Vec.t

(** [instantaneous_frequency ~dt x] is the derivative of the unwrapped
    phase over [2 pi dt]: one frequency sample per interior point
    (length [n - 2], central differences; end effects from the FFT
    window make the first/last few samples unreliable). *)
val instantaneous_frequency : dt:float -> Vec.t -> Vec.t
