open Linalg

let analytic x =
  let n = Array.length x in
  if n < 4 then invalid_arg "Hilbert.analytic: too few samples";
  let spec = Fft.fft_real x in
  (* one-sided spectrum: keep DC (and Nyquist for even n), double the
     positive frequencies, zero the negative ones *)
  let half = n / 2 in
  let filtered =
    Array.mapi
      (fun k z ->
        if k = 0 then z
        else if n mod 2 = 0 && k = half then z
        else if k < half || (n mod 2 = 1 && k = half) then
          if k <= (n - 1) / 2 then Cx.scale 2. z else Complex.zero
        else Complex.zero)
      spec
  in
  Fft.ifft filtered

let transform x = Cx.Cvec.imag_part (analytic x)

let envelope x = Array.map Complex.norm (analytic x)

let unwrapped_phase x =
  let z = analytic x in
  let n = Array.length z in
  let phase = Array.make n 0. in
  phase.(0) <- Complex.arg z.(0);
  for i = 1 to n - 1 do
    let raw = Complex.arg z.(i) in
    let prev = phase.(i - 1) in
    (* unwrap: choose the branch closest to the previous sample *)
    let d = raw -. Float.rem prev (2. *. Float.pi) in
    let d =
      if d > Float.pi then d -. (2. *. Float.pi)
      else if d < -.Float.pi then d +. (2. *. Float.pi)
      else d
    in
    phase.(i) <- prev +. d
  done;
  phase

let instantaneous_frequency ~dt x =
  let phase = unwrapped_phase x in
  let n = Array.length phase in
  Array.init (n - 2) (fun i ->
      (phase.(i + 2) -. phase.(i)) /. (2. *. dt) /. (2. *. Float.pi))
