(** Broyden's (good) quasi-Newton method.

    Useful when Jacobian evaluations dominate: the Jacobian is built
    once (by finite differences unless supplied) and then rank-one
    updated.  Falls back to a fresh Jacobian when progress stalls. *)

open Linalg

(** [solve ?max_iterations ?residual_tol ?jacobian ~residual x0]
    returns a {!Newton.report}-style record via the Newton module's
    type. *)
val solve :
  ?max_iterations:int ->
  ?residual_tol:float ->
  ?jacobian:(Vec.t -> Mat.t) ->
  residual:(Vec.t -> Vec.t) ->
  Vec.t ->
  Newton.report
