open Linalg

type point = { lambda : float; x : Vec.t }

let trace ?options ?(initial_step = 0.1) ?(min_step = 1e-6) ?(max_step = infinity) ~residual
    ~from_ ~to_ x0 =
  if from_ = to_ then begin
    let r = Newton.solve ?options ~residual:(residual to_) x0 in
    if not r.Newton.converged then failwith "Continuation.trace: corrector failed at start";
    [ { lambda = to_; x = r.Newton.x } ]
  end
  else begin
    let dir = if to_ > from_ then 1. else -1. in
    let span = Float.abs (to_ -. from_) in
    let rec go lambda x step acc =
      if step < min_step then failwith "Continuation.trace: step underflow"
      else begin
        let next = lambda +. (dir *. Float.min step (Float.min max_step span)) in
        let next = if dir *. (next -. to_) >= 0. then to_ else next in
        let r = Newton.solve ?options ~residual:(residual next) x in
        if r.Newton.converged then begin
          let acc = { lambda = next; x = r.Newton.x } :: acc in
          if next = to_ then List.rev acc
          else begin
            (* grow the step when Newton converged comfortably *)
            let step' = if r.Newton.iterations <= 3 then step *. 1.7 else step in
            go next r.Newton.x (Float.min step' max_step) acc
          end
        end
        else go lambda x (step /. 2.) acc
      end
    in
    go from_ (Array.copy x0) initial_step []
  end

let solve_at ?options ?initial_step ?min_step ?max_step ~residual ~from_ ~to_ x0 =
  match
    List.rev (trace ?options ?initial_step ?min_step ?max_step ~residual ~from_ ~to_ x0)
  with
  | [] -> failwith "Continuation.solve_at: empty trace"
  | { x; _ } :: _ -> x
