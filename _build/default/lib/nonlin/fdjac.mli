(** Finite-difference Jacobians. *)

open Linalg

(** [jacobian ?typical f x] approximates the Jacobian of [f] at [x] by
    one-sided differences.  The step for column [j] is
    [sqrt eps * max |x_j| typical_j] with [typical] defaulting to 1,
    guarding against zero components. *)
val jacobian : ?typical:Vec.t -> (Vec.t -> Vec.t) -> Vec.t -> Mat.t

(** [jacobian_central ?typical f x] is the 2nd-order central-difference
    variant (twice the evaluations, more accurate). *)
val jacobian_central : ?typical:Vec.t -> (Vec.t -> Vec.t) -> Vec.t -> Mat.t

(** [directional f x v] approximates the Jacobian–vector product
    [J(x) v] with a single extra evaluation of [f]. *)
val directional : (Vec.t -> Vec.t) -> Vec.t -> Vec.t -> Vec.t
