lib/nonlin/fdjac.ml: Array Float Linalg Mat Vec
