lib/nonlin/continuation.ml: Array Float Linalg List Newton Vec
