lib/nonlin/newton.ml: Array Fdjac Float Linalg Lu Printf Vec
