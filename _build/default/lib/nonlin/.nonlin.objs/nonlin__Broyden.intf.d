lib/nonlin/broyden.mli: Linalg Mat Newton Vec
