lib/nonlin/continuation.mli: Linalg Newton Vec
