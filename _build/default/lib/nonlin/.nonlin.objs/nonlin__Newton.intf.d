lib/nonlin/newton.mli: Linalg Mat Vec
