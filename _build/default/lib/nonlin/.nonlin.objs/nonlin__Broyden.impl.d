lib/nonlin/broyden.ml: Array Fdjac Float Linalg Lu Mat Newton Vec
