lib/nonlin/fdjac.mli: Linalg Mat Vec
