(** Time warping: the map [phi (t) = integral_0^t omega (s) ds] of the
    paper's eq. (17), built from sampled local-frequency output of the
    WaMPDE (or any positive rate function).

    [omega] is in cycles per time unit, so [phi] advances by 1 per
    oscillation cycle; the warped fast time [t1 = phi (t)] is used
    modulo 1 when evaluating period-1 bivariate forms. *)

open Linalg

type t

(** [of_samples ~times ~omega] builds the warping from samples of the
    local frequency.  [omega] must be strictly positive.  Raises
    [Invalid_argument] on non-positive samples or length mismatch. *)
val of_samples : times:Vec.t -> omega:Vec.t -> t

(** [of_function ~t0 ~t1 ~n omega] samples an analytic rate function
    on [n] uniform points. *)
val of_function : t0:float -> t1:float -> n:int -> (float -> float) -> t

(** [phi w t] is the accumulated warped time (cycles since [t0]). *)
val phi : t -> float -> float

(** [omega w t] is the (interpolated) local frequency at [t]. *)
val omega : t -> float -> float

(** [unwarp w tau] inverts [phi]: the unwarped time [t] at which
    [phi t = tau].  Raises [Failure] outside the sampled span. *)
val unwarp : t -> float -> float

(** [total_cycles w] is [phi] at the end of the sampled span. *)
val total_cycles : t -> float

(** [span w] is the sampled time span. *)
val span : t -> float * float
