open Linalg

type t = { times : Vec.t; frequencies : Vec.t; magnitudes : Mat.t }

let compute ~dt ~window ~hop x =
  let n = Array.length x in
  if window < 8 then invalid_arg "Spectrogram.compute: window too short";
  if hop < 1 then invalid_arg "Spectrogram.compute: hop must be positive";
  if n < window then invalid_arg "Spectrogram.compute: signal shorter than one window";
  let n_windows = ((n - window) / hop) + 1 in
  let hann = Fourier.Spectrum.hann window in
  let magnitudes =
    Array.init n_windows (fun w ->
        let start = w * hop in
        let seg = Vec.init window (fun i -> x.(start + i) *. hann.(i)) in
        Fourier.Spectrum.magnitudes seg)
  in
  {
    times =
      Vec.init n_windows (fun w ->
          dt *. (float_of_int (w * hop) +. (float_of_int window /. 2.)));
    frequencies = Fourier.Spectrum.frequencies ~dt window;
    magnitudes;
  }

let ridge spec =
  let n_windows = Array.length spec.times in
  let freqs =
    Vec.init n_windows (fun w ->
        let mags = spec.magnitudes.(w) in
        let half = Array.length mags in
        let peak = ref 1 in
        for k = 2 to half - 2 do
          if mags.(k) > mags.(!peak) then peak := k
        done;
        let k = !peak in
        let safe_log m = log (Float.max m 1e-300) in
        let delta =
          if k <= 0 || k >= half - 1 then 0.
          else begin
            let a = safe_log mags.(k - 1)
            and b = safe_log mags.(k)
            and c = safe_log mags.(k + 1) in
            let denom = a -. (2. *. b) +. c in
            if Float.abs denom < 1e-12 then 0. else 0.5 *. (a -. c) /. denom
          end
        in
        let df = spec.frequencies.(1) -. spec.frequencies.(0) in
        (float_of_int k +. delta) *. df)
  in
  (spec.times, freqs)
