(** Zero-crossing analysis of sampled waveforms: cycle counting,
    instantaneous-frequency estimation, and the phase-error metric used
    to compare transient simulation against the WaMPDE (paper Fig. 12). *)

open Linalg

(** [upward ~times x] are the (linearly interpolated) times where [x]
    crosses zero going upward. *)
val upward : times:Vec.t -> Vec.t -> Vec.t

(** [periods crossings] are successive differences of crossing times:
    the cycle-by-cycle oscillation periods. *)
val periods : Vec.t -> Vec.t

(** [instantaneous_frequency ~times x] estimates frequency cycle by
    cycle from upward crossings, returning [(t_mid, freq)] pairs:
    frequency [1 / (t_{k+1} - t_k)] reported at the interval midpoint.
    This is the "local frequency" extracted from a 1-D waveform. *)
val instantaneous_frequency : times:Vec.t -> Vec.t -> Vec.t * Vec.t

(** [cycle_count ~times x] is the number of upward zero crossings. *)
val cycle_count : times:Vec.t -> Vec.t -> int

(** [phase_error ~reference ~test] pairs the k-th upward crossings of
    two waveforms and reports the phase lag of [test] behind
    [reference], in cycles, at each crossing of the reference
    ([(t_ref_k, (t_test_k - t_ref_k) / period_ref_k)]).  The
    comparison stops at the shorter crossing list. *)
val phase_error : reference:Vec.t * Vec.t -> test:Vec.t * Vec.t -> Vec.t * Vec.t

(** [max_abs_phase_error ~reference ~test] is the maximum absolute
    phase error in cycles (0 when fewer than 2 common crossings). *)
val max_abs_phase_error : reference:Vec.t * Vec.t -> test:Vec.t * Vec.t -> float
