(** Piecewise interpolation of sampled functions of one variable. *)

open Linalg

type t
(** A sampled function with strictly increasing abscissae. *)

(** [create times values] builds an interpolant.  Raises
    [Invalid_argument] if lengths differ, fewer than 2 points are
    given, or [times] is not strictly increasing. *)
val create : Vec.t -> Vec.t -> t

(** [eval f t] evaluates by linear interpolation, clamping outside the
    sampled span. *)
val eval : t -> float -> float

(** [eval_pchip f t] evaluates with a monotone cubic (Fritsch–Carlson)
    interpolant: smoother than linear, no overshoot. *)
val eval_pchip : t -> float -> float

(** [span f] is the sampled time span [(t_first, t_last)]. *)
val span : t -> float * float

(** [cumulative_integral times values] returns the running trapezoidal
    integral of the samples, same length as the inputs, starting at 0. *)
val cumulative_integral : Vec.t -> Vec.t -> Vec.t

(** [invert_monotone f y] solves [eval f t = y] for strictly increasing
    interpolants by bisection on the sampled span.  Raises [Failure]
    when [y] is outside the sampled range. *)
val invert_monotone : t -> float -> float
