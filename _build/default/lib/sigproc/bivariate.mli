(** Bivariate (two-time) representations of multirate signals — the
    machinery behind the paper's Figures 1–6.

    A bivariate form [yhat (t1, t2)] is stored as samples on a uniform
    [n1 x n2] grid over one period rectangle [\[0, p1) x \[0, p2)];
    both axes are treated as periodic. *)

open Linalg

type t = {
  p1 : float;  (** period along the fast axis *)
  p2 : float;  (** period along the slow axis *)
  grid : Mat.t;  (** [grid.(i).(j)] is [yhat (i p1 / n1, j p2 / n2)] *)
}

(** [sample ~f ~p1 ~p2 ~n1 ~n2] samples a function of two times on the
    period rectangle. *)
val sample : f:(float -> float -> float) -> p1:float -> p2:float -> n1:int -> n2:int -> t

(** [of_univariate ~y ~p1 ~p2 ~n1 ~n2] builds the bivariate form of a
    quasiperiodic univariate signal by evaluating [y] along the
    translates [y (t1 + k p1)]; exact when [y] is exactly
    [(p1, p2)]-quasiperiodic and used in tests/benches where [y] has a
    closed form.  Equivalent to [sample] with
    [f t1 t2 = y] reconstructed from its known bivariate expression. *)
val of_univariate : y:(float -> float -> float) -> p1:float -> p2:float -> n1:int -> n2:int -> t

(** [eval b t1 t2] bilinearly interpolates with periodic wrap-around. *)
val eval : t -> float -> float -> float

(** [diagonal b t] is the paper's eq.-recovery [y (t) = yhat (t, t)]
    along the sawtooth path [ti = t mod pi] (Fig. 3). *)
val diagonal : t -> float -> float

(** [warped_diagonal b ~phi t] evaluates [yhat (phi t, t)] — the bent
    path of eq. (17); [phi t] is interpreted modulo [p1]. *)
val warped_diagonal : t -> phi:(float -> float) -> float -> float

(** [sawtooth_path ~p1 ~p2 ~t_max n] returns [n] points
    [(t mod p1, t mod p2)] along the characteristic path of Fig. 3. *)
val sawtooth_path : p1:float -> p2:float -> t_max:float -> int -> (float * float) array

(** [sample_count b] is [n1 * n2], the storage cost of the bivariate
    representation (compare with the univariate sample count in
    Figs. 1–2). *)
val sample_count : t -> int

(** [max_abs b] is the largest magnitude on the grid. *)
val max_abs : t -> float

(** [undulation_count b] counts sign changes of the slow-axis
    derivative along [t2] summed over rows: a cheap surrogate for "how
    many undulations" the surface has (large for the unwarped FM form
    of Fig. 5, small for the warped form of Fig. 6). *)
val undulation_count : t -> int
