open Linalg

let peaks ~times x =
  let n = Array.length x in
  if Array.length times <> n then invalid_arg "Envelope.peaks: length mismatch";
  let out = ref [] in
  for i = 1 to n - 2 do
    if x.(i) > x.(i - 1) && x.(i) >= x.(i + 1) then begin
      (* parabolic refinement through (i-1, i, i+1) assuming near-uniform spacing *)
      let a = x.(i - 1) and b = x.(i) and c = x.(i + 1) in
      let denom = a -. (2. *. b) +. c in
      let delta = if Float.abs denom < 1e-300 then 0. else 0.5 *. (a -. c) /. denom in
      let delta = Float.max (-0.5) (Float.min 0.5 delta) in
      let h = (times.(i + 1) -. times.(i - 1)) /. 2. in
      let tp = times.(i) +. (delta *. h) in
      let vp = b -. (0.25 *. (a -. c) *. delta) in
      out := (tp, vp) :: !out
    end
  done;
  Array.of_list (List.rev !out)

let amplitude ~times x =
  let rect = Vec.map Float.abs x in
  let ps = peaks ~times rect in
  (Array.map fst ps, Array.map snd ps)

let amplitude_range ~times x =
  let _, amps = amplitude ~times x in
  if Array.length amps = 0 then (Float.nan, Float.nan)
  else
    ( Array.fold_left Float.min infinity amps,
      Array.fold_left Float.max neg_infinity amps )
