(** Amplitude envelopes of oscillatory waveforms. *)

open Linalg

(** [peaks ~times x] returns the [(time, value)] pairs of strict local
    maxima of [x], refined by parabolic interpolation through each
    maximum and its neighbours. *)
val peaks : times:Vec.t -> Vec.t -> (float * float) array

(** [amplitude ~times x] is the envelope of [|x|]: peak times and peak
    magnitudes of the rectified signal. *)
val amplitude : times:Vec.t -> Vec.t -> Vec.t * Vec.t

(** [amplitude_range ~times x] is [(min, max)] of the rectified peak
    values; a cheap summary of amplitude modulation depth.  Returns
    [(nan, nan)] when no peaks exist. *)
val amplitude_range : times:Vec.t -> Vec.t -> float * float
