open Linalg

let upward ~times x =
  let n = Array.length x in
  if Array.length times <> n then invalid_arg "Zero_crossing.upward: length mismatch";
  let out = ref [] in
  for i = 1 to n - 1 do
    if x.(i - 1) < 0. && x.(i) >= 0. then begin
      let frac = -.x.(i - 1) /. (x.(i) -. x.(i - 1)) in
      out := (times.(i - 1) +. (frac *. (times.(i) -. times.(i - 1)))) :: !out
    end
  done;
  Array.of_list (List.rev !out)

let periods crossings =
  let n = Array.length crossings in
  Array.init (Int.max 0 (n - 1)) (fun i -> crossings.(i + 1) -. crossings.(i))

let instantaneous_frequency ~times x =
  let crossings = upward ~times x in
  let n = Array.length crossings in
  let mids = Array.init (Int.max 0 (n - 1)) (fun i -> (crossings.(i) +. crossings.(i + 1)) /. 2.) in
  let freqs =
    Array.init (Int.max 0 (n - 1)) (fun i -> 1. /. (crossings.(i + 1) -. crossings.(i)))
  in
  (mids, freqs)

let cycle_count ~times x = Array.length (upward ~times x)

let phase_error ~reference ~test =
  let rt, rx = reference and tt, tx = test in
  let rc = upward ~times:rt rx and tc = upward ~times:tt tx in
  if Array.length rc < 2 || Array.length tc < 1 then ([||], [||])
  else begin
    (* align cycle indices: pick the test crossing nearest the first
       reference crossing, so a sub-period initial offset is measured
       rather than a spurious whole-cycle shift *)
    let offset = ref 0 in
    for o = 1 to Array.length tc - 1 do
      if Float.abs (tc.(o) -. rc.(0)) < Float.abs (tc.(!offset) -. rc.(0)) then offset := o
    done;
    let n = Int.min (Array.length rc) (Array.length tc - !offset) in
    if n < 2 then ([||], [||])
    else begin
      let out_t = Array.make (n - 1) 0. and out_e = Array.make (n - 1) 0. in
      for k = 0 to n - 2 do
        let period = rc.(k + 1) -. rc.(k) in
        out_t.(k) <- rc.(k);
        out_e.(k) <- (tc.(k + !offset) -. rc.(k)) /. period
      done;
      (out_t, out_e)
    end
  end

let max_abs_phase_error ~reference ~test =
  let _, errs = phase_error ~reference ~test in
  Vec.norm_inf errs
