open Linalg

type t = { times : Vec.t; values : Vec.t; slopes : Vec.t Lazy.t }

(* Fritsch-Carlson monotone cubic slopes. *)
let pchip_slopes times values =
  let n = Array.length times in
  let h = Array.init (n - 1) (fun i -> times.(i + 1) -. times.(i)) in
  let delta = Array.init (n - 1) (fun i -> (values.(i + 1) -. values.(i)) /. h.(i)) in
  let d = Array.make n 0. in
  if n = 2 then begin
    d.(0) <- delta.(0);
    d.(1) <- delta.(0)
  end
  else begin
    d.(0) <- delta.(0);
    d.(n - 1) <- delta.(n - 2);
    for i = 1 to n - 2 do
      if delta.(i - 1) *. delta.(i) <= 0. then d.(i) <- 0.
      else begin
        let w1 = (2. *. h.(i)) +. h.(i - 1) and w2 = h.(i) +. (2. *. h.(i - 1)) in
        d.(i) <- (w1 +. w2) /. ((w1 /. delta.(i - 1)) +. (w2 /. delta.(i)))
      end
    done
  end;
  d

let create times values =
  let n = Array.length times in
  if Array.length values <> n then invalid_arg "Interp1d.create: length mismatch";
  if n < 2 then invalid_arg "Interp1d.create: need at least 2 points";
  for i = 1 to n - 1 do
    if times.(i) <= times.(i - 1) then invalid_arg "Interp1d.create: times not increasing"
  done;
  { times; values; slopes = lazy (pchip_slopes times values) }

let bracket f t =
  let n = Array.length f.times in
  let lo = ref 0 and hi = ref (n - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if f.times.(mid) <= t then lo := mid else hi := mid
  done;
  !lo

let eval f t =
  let n = Array.length f.times in
  if t <= f.times.(0) then f.values.(0)
  else if t >= f.times.(n - 1) then f.values.(n - 1)
  else begin
    let i = bracket f t in
    let ta = f.times.(i) and tb = f.times.(i + 1) in
    let xa = f.values.(i) and xb = f.values.(i + 1) in
    xa +. ((xb -. xa) *. (t -. ta) /. (tb -. ta))
  end

let eval_pchip f t =
  let n = Array.length f.times in
  if t <= f.times.(0) then f.values.(0)
  else if t >= f.times.(n - 1) then f.values.(n - 1)
  else begin
    let i = bracket f t in
    let d = Lazy.force f.slopes in
    let h = f.times.(i + 1) -. f.times.(i) in
    let s = (t -. f.times.(i)) /. h in
    let s2 = s *. s and s3 = s *. s *. s in
    let h00 = (2. *. s3) -. (3. *. s2) +. 1.
    and h10 = s3 -. (2. *. s2) +. s
    and h01 = (-2. *. s3) +. (3. *. s2)
    and h11 = s3 -. s2 in
    (h00 *. f.values.(i))
    +. (h10 *. h *. d.(i))
    +. (h01 *. f.values.(i + 1))
    +. (h11 *. h *. d.(i + 1))
  end

let span f = (f.times.(0), f.times.(Array.length f.times - 1))

let cumulative_integral times values =
  let n = Array.length times in
  if Array.length values <> n then invalid_arg "Interp1d.cumulative_integral: length mismatch";
  let out = Array.make n 0. in
  for i = 1 to n - 1 do
    out.(i) <-
      out.(i - 1) +. (0.5 *. (values.(i) +. values.(i - 1)) *. (times.(i) -. times.(i - 1)))
  done;
  out

let invert_monotone f y =
  let n = Array.length f.times in
  let y0 = f.values.(0) and y1 = f.values.(n - 1) in
  if y < Float.min y0 y1 -. 1e-12 || y > Float.max y0 y1 +. 1e-12 then
    failwith "Interp1d.invert_monotone: value out of range";
  let rec bisect lo hi k =
    if k = 0 || hi -. lo < 1e-15 *. Float.max 1. (Float.abs hi) then (lo +. hi) /. 2.
    else begin
      let mid = (lo +. hi) /. 2. in
      if eval f mid < y then bisect mid hi (k - 1) else bisect lo mid (k - 1)
    end
  in
  bisect f.times.(0) f.times.(n - 1) 200
