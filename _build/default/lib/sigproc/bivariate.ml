open Linalg

type t = { p1 : float; p2 : float; grid : Mat.t }

let sample ~f ~p1 ~p2 ~n1 ~n2 =
  if n1 < 2 || n2 < 2 then invalid_arg "Bivariate.sample: grid too small";
  let grid =
    Mat.init n1 n2 (fun i j ->
        f (p1 *. float_of_int i /. float_of_int n1) (p2 *. float_of_int j /. float_of_int n2))
  in
  { p1; p2; grid }

let of_univariate ~y ~p1 ~p2 ~n1 ~n2 = sample ~f:y ~p1 ~p2 ~n1 ~n2

let wrap_frac x n =
  (* fractional index in [0, n) *)
  let r = Float.rem x (float_of_int n) in
  if r < 0. then r +. float_of_int n else r

let eval b t1 t2 =
  let n1 = Mat.rows b.grid and n2 = Mat.cols b.grid in
  let fi = wrap_frac (t1 /. b.p1 *. float_of_int n1) n1 in
  let fj = wrap_frac (t2 /. b.p2 *. float_of_int n2) n2 in
  let i0 = int_of_float fi and j0 = int_of_float fj in
  let di = fi -. float_of_int i0 and dj = fj -. float_of_int j0 in
  let i1 = (i0 + 1) mod n1 and j1 = (j0 + 1) mod n2 in
  let g = b.grid in
  ((1. -. di) *. (1. -. dj) *. g.(i0).(j0))
  +. (di *. (1. -. dj) *. g.(i1).(j0))
  +. ((1. -. di) *. dj *. g.(i0).(j1))
  +. (di *. dj *. g.(i1).(j1))

let diagonal b t = eval b t t
let warped_diagonal b ~phi t = eval b (phi t) t

let sawtooth_path ~p1 ~p2 ~t_max n =
  Array.init n (fun k ->
      let t = t_max *. float_of_int k /. float_of_int (Int.max 1 (n - 1)) in
      (Float.rem t p1, Float.rem t p2))

let sample_count b = Mat.rows b.grid * Mat.cols b.grid

let max_abs b =
  Array.fold_left (fun acc row -> Float.max acc (Vec.norm_inf row)) 0. b.grid

let undulation_count b =
  let n1 = Mat.rows b.grid and n2 = Mat.cols b.grid in
  let count = ref 0 in
  for i = 0 to n1 - 1 do
    for j = 0 to n2 - 1 do
      let d0 = b.grid.(i).((j + 1) mod n2) -. b.grid.(i).(j) in
      let d1 = b.grid.(i).((j + 2) mod n2) -. b.grid.(i).((j + 1) mod n2) in
      if d0 *. d1 < 0. then incr count
    done
  done;
  !count
