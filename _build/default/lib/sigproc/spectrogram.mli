(** Short-time Fourier transform: the classical way to {e see}
    frequency modulation in a 1-D waveform, used to cross-check the
    WaMPDE's local-frequency output against transient simulations. *)

open Linalg

type t = {
  times : Vec.t;  (** window-center times *)
  frequencies : Vec.t;  (** one-sided bin frequencies *)
  magnitudes : Mat.t;  (** [magnitudes.(ti).(fi)] *)
}

(** [compute ~dt ~window ~hop x] computes a Hann-windowed STFT of a
    real signal sampled at spacing [dt]; [window] is the window length
    in samples, [hop] the distance between window starts.  Raises
    [Invalid_argument] if the signal is shorter than one window. *)
val compute : dt:float -> window:int -> hop:int -> Vec.t -> t

(** [ridge spec] extracts the dominant-frequency ridge: for each
    window, the parabolic-refined frequency of the strongest non-DC
    bin.  Returns [(times, frequencies)]. *)
val ridge : t -> Vec.t * Vec.t
