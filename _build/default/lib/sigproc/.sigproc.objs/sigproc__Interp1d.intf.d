lib/sigproc/interp1d.mli: Linalg Vec
