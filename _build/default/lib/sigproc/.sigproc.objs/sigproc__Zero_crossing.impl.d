lib/sigproc/zero_crossing.ml: Array Float Int Linalg List Vec
