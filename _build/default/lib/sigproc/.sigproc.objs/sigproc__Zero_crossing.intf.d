lib/sigproc/zero_crossing.mli: Linalg Vec
