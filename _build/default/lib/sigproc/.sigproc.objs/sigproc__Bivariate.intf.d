lib/sigproc/bivariate.mli: Linalg Mat
