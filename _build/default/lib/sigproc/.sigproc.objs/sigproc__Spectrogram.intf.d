lib/sigproc/spectrogram.mli: Linalg Mat Vec
