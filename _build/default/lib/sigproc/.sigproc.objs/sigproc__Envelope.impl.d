lib/sigproc/envelope.ml: Array Float Linalg List Vec
