lib/sigproc/warp.mli: Linalg Vec
