lib/sigproc/interp1d.ml: Array Float Lazy Linalg Vec
