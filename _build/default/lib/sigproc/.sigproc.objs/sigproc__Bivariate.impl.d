lib/sigproc/bivariate.ml: Array Float Int Linalg Mat Vec
