lib/sigproc/envelope.mli: Linalg Vec
