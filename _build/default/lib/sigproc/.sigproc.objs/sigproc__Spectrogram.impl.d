lib/sigproc/spectrogram.ml: Array Float Fourier Linalg Mat Vec
