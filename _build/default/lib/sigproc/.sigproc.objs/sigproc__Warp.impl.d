lib/sigproc/warp.ml: Array Interp1d Linalg Vec
