open Linalg

type t = { rate : Interp1d.t; accum : Interp1d.t }

let of_samples ~times ~omega =
  if Array.length times <> Array.length omega then
    invalid_arg "Warp.of_samples: length mismatch";
  Array.iter (fun w -> if w <= 0. then invalid_arg "Warp.of_samples: omega must be positive") omega;
  let cum = Interp1d.cumulative_integral times omega in
  { rate = Interp1d.create times omega; accum = Interp1d.create times cum }

let of_function ~t0 ~t1 ~n omega =
  let times = Vec.linspace t0 t1 n in
  of_samples ~times ~omega:(Vec.map omega times)

let phi w t = Interp1d.eval w.accum t
let omega w t = Interp1d.eval w.rate t
let unwarp w tau = Interp1d.invert_monotone w.accum tau

let total_cycles w =
  let _, t_end = Interp1d.span w.accum in
  Interp1d.eval w.accum t_end

let span w = Interp1d.span w.accum
