open Linalg

type solution = { period : float; grid : Vec.t array }

(* Flat layout: y.(j * n + i) = state variable i at collocation point j. *)
let pack grid =
  let n1 = Array.length grid in
  let n = Array.length grid.(0) in
  Vec.init (n1 * n) (fun idx -> grid.(idx / n).(idx mod n))

let unpack ~n1 ~n y = Array.init n1 (fun j -> Array.sub y (j * n) n)

let assemble dae ~period ~n1 ~d y =
  (* residual of the collocation system *)
  let n = dae.Dae.dim in
  let states = unpack ~n1 ~n y in
  let qs = Array.map dae.Dae.q states in
  let res = Array.make (n1 * n) 0. in
  for j = 0 to n1 - 1 do
    let tj = period *. float_of_int j /. float_of_int n1 in
    let fj = dae.Dae.f ~t:tj states.(j) in
    let dj = d.(j) in
    for i = 0 to n - 1 do
      let s = ref 0. in
      for k = 0 to n1 - 1 do
        s := !s +. (dj.(k) *. qs.(k).(i))
      done;
      res.((j * n) + i) <- (!s /. period) +. fj.(i)
    done
  done;
  res

let jacobian dae ~period ~n1 ~d y =
  let n = dae.Dae.dim in
  let states = unpack ~n1 ~n y in
  let cs = Array.map dae.Dae.dq states in
  let jac = Mat.zeros (n1 * n) (n1 * n) in
  for j = 0 to n1 - 1 do
    let tj = period *. float_of_int j /. float_of_int n1 in
    let gj = dae.Dae.df ~t:tj states.(j) in
    for k = 0 to n1 - 1 do
      let djk = d.(j).(k) /. period in
      if djk <> 0. || j = k then
        for i = 0 to n - 1 do
          for l = 0 to n - 1 do
            let value = (djk *. cs.(k).(i).(l)) +. (if j = k then gj.(i).(l) else 0.) in
            jac.((j * n) + i).((k * n) + l) <- jac.((j * n) + i).((k * n) + l) +. value
          done
        done
    done
  done;
  jac

let solve dae ~period ~n1 ~guess =
  if n1 mod 2 = 0 then invalid_arg "Periodic.solve: n1 must be odd";
  if Array.length guess <> n1 then invalid_arg "Periodic.solve: guess length <> n1";
  let n = dae.Dae.dim in
  let d = Fourier.Series.diff_matrix n1 in
  let residual y = assemble dae ~period ~n1 ~d y in
  let jac y = jacobian dae ~period ~n1 ~d y in
  let options = { Nonlin.Newton.default_options with max_iterations = 60; residual_tol = 1e-9 } in
  let report = Nonlin.Newton.solve ~options ~jacobian:jac ~residual (pack guess) in
  if not report.Nonlin.Newton.converged then
    failwith
      (Printf.sprintf "Periodic.solve: Newton failed (residual %.3e)"
         report.Nonlin.Newton.residual_norm);
  { period; grid = unpack ~n1 ~n report.Nonlin.Newton.x }

let solve_from_transient dae ~period ~n1 ~warmup_periods x0 =
  let t_warm = period *. float_of_int warmup_periods in
  let h = period /. 200. in
  let traj =
    Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:(t_warm +. period) ~h x0
  in
  let guess =
    Array.init n1 (fun j ->
        let t = t_warm +. (period *. float_of_int j /. float_of_int n1) in
        Vec.init dae.Dae.dim (fun i -> Transient.interpolate traj i t))
  in
  solve dae ~period ~n1 ~guess

let component sol i = Array.map (fun s -> s.(i)) sol.grid

let fourier_coefficients sol ~component:i = Fourier.Series.coeffs (component sol i)

let eval sol ~component:i t =
  let c = fourier_coefficients sol ~component:i in
  Fourier.Series.eval c ~period:sol.period t

let residual_norm dae sol =
  let n1 = Array.length sol.grid in
  let d = Fourier.Series.diff_matrix n1 in
  Vec.norm_inf (assemble dae ~period:sol.period ~n1 ~d (pack sol.grid))
