(** Periodic steady state of {e forced (non-autonomous)} DAEs by
    spectral collocation in time — mathematically equivalent to
    harmonic balance with [n/2] harmonics, assembled on an odd uniform
    grid over one period.

    Solves [1/T (D Q)_j + f(t_j, x_j) = 0] for the grid values [x_j],
    where [D] is the period-1 trigonometric differentiation matrix and
    [Q] stacks [q(x_j)]. *)

open Linalg

type solution = {
  period : float;
  grid : Vec.t array;  (** [grid.(j)] is the state at [t_j = j T / n1] *)
}

(** [solve dae ~period ~n1 ~guess] finds the [period]-periodic steady
    state.  [n1] must be odd.  [guess] supplies grid-point initial
    values (a single vector replicated by {!solve_flat} convenience
    wrappers, or per-point states).  Raises [Failure] if Newton does
    not converge. *)
val solve : Dae.t -> period:float -> n1:int -> guess:Vec.t array -> solution

(** [solve_from_transient dae ~period ~n1 ~warmup_periods x0] first
    integrates [warmup_periods] periods of transient to approach the
    steady state, samples the last period onto the grid, and polishes
    with {!solve}. *)
val solve_from_transient :
  Dae.t -> period:float -> n1:int -> warmup_periods:int -> Vec.t -> solution

(** [eval sol ~component t] evaluates one state variable at time [t]
    by trigonometric interpolation (periodic in [t]). *)
val eval : solution -> component:int -> float -> float

(** [component sol i] is variable [i] sampled on the grid. *)
val component : solution -> int -> Vec.t

(** [fourier_coefficients sol ~component] are the centered Fourier
    coefficients of the variable over one period. *)
val fourier_coefficients : solution -> component:int -> Cx.Cvec.t

(** [residual_norm dae sol] is the infinity norm of the collocation
    residual — a direct a-posteriori quality check. *)
val residual_norm : Dae.t -> solution -> float
