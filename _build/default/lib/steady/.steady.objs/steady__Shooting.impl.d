lib/steady/shooting.ml: Array Dae Linalg Nonlin Printf Transient Vec
