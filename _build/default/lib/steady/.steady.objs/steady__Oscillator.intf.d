lib/steady/oscillator.mli: Dae Linalg Vec
