lib/steady/shooting.mli: Dae Linalg Vec
