lib/steady/floquet.mli: Cx Dae Linalg Mat Oscillator Vec
