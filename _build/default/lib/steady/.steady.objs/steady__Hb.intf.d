lib/steady/hb.mli: Cx Dae Linalg Vec
