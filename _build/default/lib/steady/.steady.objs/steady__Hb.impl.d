lib/steady/hb.ml: Array Complex Cx Dae Float Fourier Linalg Mat Printf Transient Vec
