lib/steady/periodic.ml: Array Dae Fourier Linalg Mat Nonlin Printf Transient Vec
