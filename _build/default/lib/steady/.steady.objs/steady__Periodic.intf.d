lib/steady/periodic.mli: Cx Dae Linalg Vec
