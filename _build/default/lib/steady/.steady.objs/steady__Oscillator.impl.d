lib/steady/oscillator.ml: Array Dae Float Fourier Int Linalg Mat Nonlin Printf Sigproc Transient Vec
