lib/steady/floquet.ml: Array Complex Cx Dae Eig Float Linalg Mat Oscillator Shooting
