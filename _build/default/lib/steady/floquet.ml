open Linalg

type report = {
  monodromy : Mat.t;
  multipliers : Cx.Cvec.t;
  trivial_index : int;
  largest_nontrivial : float;
  stable : bool;
}

let monodromy dae ~period ?(steps_per_period = 400) x0 =
  let n = dae.Dae.dim in
  let flow x = Shooting.flow dae ~t0:0. ~t1:period ~steps:steps_per_period x in
  let cols =
    Array.init n (fun j ->
        let h = 1e-6 *. Float.max 1. (Float.abs x0.(j)) in
        let xp = Array.copy x0 and xm = Array.copy x0 in
        xp.(j) <- x0.(j) +. h;
        xm.(j) <- x0.(j) -. h;
        let fp = flow xp and fm = flow xm in
        Array.init n (fun i -> (fp.(i) -. fm.(i)) /. (2. *. h)))
  in
  Mat.init n n (fun i j -> cols.(j).(i))

let analyze dae ~period ?steps_per_period x0 =
  let m = monodromy dae ~period ?steps_per_period x0 in
  let multipliers = Eig.eigenvalues m in
  let trivial_index = ref 0 in
  Array.iteri
    (fun i z ->
      if
        Complex.norm (Complex.sub z Complex.one)
        < Complex.norm (Complex.sub multipliers.(!trivial_index) Complex.one)
      then trivial_index := i)
    multipliers;
  let largest_nontrivial =
    let worst = ref 0. in
    Array.iteri
      (fun i z -> if i <> !trivial_index then worst := Float.max !worst (Complex.norm z))
      multipliers;
    !worst
  in
  {
    monodromy = m;
    multipliers;
    trivial_index = !trivial_index;
    largest_nontrivial;
    stable = largest_nontrivial < 1. -. 1e-6;
  }

let analyze_orbit dae ?steps_per_period orbit =
  analyze dae ~period:(Oscillator.period orbit) ?steps_per_period
    orbit.Oscillator.grid.(0)
