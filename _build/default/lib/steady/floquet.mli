(** Floquet (orbital) stability analysis of periodic orbits.

    The paper notes that linear oscillator models are "not even
    qualitatively adequate … since nonlinearity is essential for
    orbital stability".  This module quantifies that: the monodromy
    matrix [M = d Phi_T / d x0] of the period map is formed by
    finite-differencing the flow, and its eigenvalues (Floquet
    multipliers) decide stability.  An autonomous limit cycle always
    carries the trivial multiplier 1 (along the orbit); the orbit is
    asymptotically orbitally stable when all the others lie strictly
    inside the unit circle. *)

open Linalg

type report = {
  monodromy : Mat.t;
  multipliers : Cx.Cvec.t;  (** Floquet multipliers *)
  trivial_index : int;  (** index of the multiplier closest to 1 *)
  largest_nontrivial : float;  (** modulus of the largest other multiplier *)
  stable : bool;  (** [largest_nontrivial < 1] (with a small margin) *)
}

(** [monodromy dae ~period ?steps_per_period x0] is the Jacobian of
    the period-[period] flow map at [x0], by central finite
    differences (2 n transient integrations). *)
val monodromy : Dae.t -> period:float -> ?steps_per_period:int -> Vec.t -> Mat.t

(** [analyze dae ~period ?steps_per_period x0] computes the full
    report for a point [x0] on a periodic orbit of an {e autonomous}
    system.  The trivial multiplier should be close to 1; its
    deviation measures the discretization quality. *)
val analyze : Dae.t -> period:float -> ?steps_per_period:int -> Vec.t -> report

(** [analyze_orbit dae orbit] is {!analyze} at the first grid point of
    a collocation orbit. *)
val analyze_orbit : Dae.t -> ?steps_per_period:int -> Oscillator.orbit -> report
