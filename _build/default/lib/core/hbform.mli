(** Frequency-domain (harmonic-balance) view of WaMPDE results.

    The paper's eq. (18) expands the bivariate waveform in a Fourier
    series along the warped time, [xhat = sum_i Xhat_i(t2) e^{j i t1}];
    its eq. (19) solves for the coefficient functions [Xhat_i(t2)].
    The solvers here collocate in the time domain (mathematically
    equivalent), and this module converts their output into the
    coefficient view: per-harmonic envelope tracks that show how the
    spectrum of the oscillation evolves along the slow time. *)

open Linalg

(** [coefficient_tracks result ~component] returns, for each accepted
    [t2] point, the centered Fourier coefficients of the component's
    [t1] waveform (index [i + M] holds harmonic [i], [M = n1/2]). *)
val coefficient_tracks : Envelope.result -> component:int -> Cx.Cvec.t array

(** [harmonic_magnitude result ~component ~harmonic] is the magnitude
    track [|Xhat_harmonic(t2)|] over the run — e.g. [harmonic:1] is
    (half) the fundamental amplitude envelope, [harmonic:3] tracks
    waveform-shape change. *)
val harmonic_magnitude : Envelope.result -> component:int -> harmonic:int -> Vec.t

(** [phase_condition_residual result ~component ~harmonic] evaluates
    [Im Xhat_harmonic(t2)] along the run: identically ~0 when the run
    used the corresponding {!Phase.Fourier} condition, and a direct
    check of eq. (20). *)
val phase_condition_residual : Envelope.result -> component:int -> harmonic:int -> Vec.t

(** [reconstruct coeffs t1] evaluates the series at warped time [t1]
    (period 1). *)
val reconstruct : Cx.Cvec.t -> float -> float
