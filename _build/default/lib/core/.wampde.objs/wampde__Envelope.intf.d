lib/core/envelope.mli: Dae Linalg Nonlin Phase Sigproc Steady Vec
