lib/core/hb_envelope.ml: Array Complex Cx Dae Float Fourier Linalg List Nonlin Printf Steady Vec
