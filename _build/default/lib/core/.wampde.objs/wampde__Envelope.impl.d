lib/core/envelope.ml: Array Complex Dae Float Fourier Int Linalg List Lu Mat Nonlin Phase Printf Sigproc Steady Vec
