lib/core/hb_envelope.mli: Cx Dae Linalg Steady Vec
