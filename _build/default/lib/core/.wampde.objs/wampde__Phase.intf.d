lib/core/phase.mli: Linalg Mat Vec
