lib/core/quasiperiodic.ml: Array Dae Envelope Float Fourier Gmres Int Linalg Lu Mat Phase Printf Sigproc Vec
