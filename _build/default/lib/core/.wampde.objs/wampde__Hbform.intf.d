lib/core/hbform.mli: Cx Envelope Linalg Vec
