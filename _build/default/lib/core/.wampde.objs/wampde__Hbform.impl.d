lib/core/hbform.ml: Array Complex Cx Envelope Fourier Linalg
