lib/core/quasiperiodic.mli: Dae Envelope Linalg Vec
