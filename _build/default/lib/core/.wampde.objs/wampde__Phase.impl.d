lib/core/phase.ml: Array Float Printf
