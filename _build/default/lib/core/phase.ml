type t =
  | Derivative of int
  | Fourier of { component : int; harmonic : int }

let row condition ~n1 ~n ~d =
  let check_component comp =
    if comp < 0 || comp >= n then invalid_arg "Phase.row: component out of range"
  in
  let coeffs = Array.make (n1 * n) 0. in
  (match condition with
   | Derivative comp ->
     check_component comp;
     for k = 0 to n1 - 1 do
       coeffs.((k * n) + comp) <- d.(0).(k)
     done
   | Fourier { component; harmonic } ->
     check_component component;
     if harmonic <= 0 || harmonic > n1 / 2 then
       invalid_arg "Phase.row: harmonic out of range";
     (* Im Xhat_l = sum_j x_j * (- sin (2 pi l j / n1)) / n1; the row is
        kept at O(1) scale (the 1/n1 normalization dropped) so its
        residual is weighted comparably to the collocation rows in the
        Newton norm *)
     for j = 0 to n1 - 1 do
       let theta = 2. *. Float.pi *. float_of_int (harmonic * j) /. float_of_int n1 in
       coeffs.((j * n) + component) <- -.sin theta
     done);
  coeffs

let describe = function
  | Derivative comp -> Printf.sprintf "d x%d / d t1 (0, t2) = 0" comp
  | Fourier { component; harmonic } ->
    Printf.sprintf "Im Xhat^%d_%d (t2) = 0" component harmonic
