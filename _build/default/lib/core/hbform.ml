open Linalg

let coefficient_tracks (result : Envelope.result) ~component =
  Array.mapi
    (fun idx _ ->
      Fourier.Series.coeffs (Envelope.slice result ~index:idx ~component))
    result.Envelope.slices

let harmonic_magnitude result ~component ~harmonic =
  let tracks = coefficient_tracks result ~component in
  Array.map (fun c -> Complex.norm (Fourier.Series.harmonic c harmonic)) tracks

let phase_condition_residual result ~component ~harmonic =
  let tracks = coefficient_tracks result ~component in
  Array.map (fun c -> Cx.im (Fourier.Series.harmonic c harmonic)) tracks

let reconstruct coeffs t1 = Fourier.Series.eval coeffs ~period:1. t1
