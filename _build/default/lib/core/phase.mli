(** Phase conditions for the WaMPDE (paper eq. (20) and its time-domain
    equivalent).

    The WaMPDE is autonomous in the warped time [t1]: any [t1]-shift of
    a solution is again a solution.  A phase condition removes this
    freedom and simultaneously determines the local frequency
    [omega (t2)].  Both conditions provided here are {e linear} in the
    grid unknowns, contributing a constant row to the Newton system. *)

open Linalg

type t =
  | Derivative of int
      (** [Derivative comp]: the [t1]-derivative of state component
          [comp] vanishes at [t1 = 0] — the component's waveform peaks
          (or troughs) at the grid origin for every [t2]. *)
  | Fourier of { component : int; harmonic : int }
      (** [Fourier {component; harmonic}]: the imaginary part of the
          [harmonic]-th Fourier coefficient of the component's
          [t1]-variation is held at zero (eq. (20) with the paper's
          [k = component], [l = harmonic]). *)

(** [row condition ~n1 ~n ~d] is the length-[n1 * n] coefficient vector
    [c] such that the condition reads [dot c xflat = 0], where [xflat]
    stacks the [n]-dimensional state at the [n1] grid points
    point-major and [d] is the [t1] differentiation matrix in use.
    Raises [Invalid_argument] for out-of-range components or a
    harmonic index above the grid's Nyquist limit. *)
val row : t -> n1:int -> n:int -> d:Mat.t -> Vec.t

(** [describe condition] is a short human-readable rendering. *)
val describe : t -> string
