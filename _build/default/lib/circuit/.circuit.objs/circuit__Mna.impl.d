lib/circuit/mna.ml: Array Dae Float Hashtbl Linalg List Mat Printf String
