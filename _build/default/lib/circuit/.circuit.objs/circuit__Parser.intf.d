lib/circuit/parser.mli: Mna
