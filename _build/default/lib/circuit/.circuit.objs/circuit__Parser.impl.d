lib/circuit/parser.ml: Char Float List Mna Option Printf String
