lib/circuit/vco.mli: Dae Linalg Mna Vec
