lib/circuit/diode_vco.mli: Dae Linalg Vec
