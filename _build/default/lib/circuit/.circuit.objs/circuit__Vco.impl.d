lib/circuit/vco.ml: Float Mna Nonlin
