lib/circuit/diode_vco.ml: Float Mna
