lib/circuit/mna.mli: Dae Linalg Vec
