(** Modified nodal analysis: netlists of stamped devices compiled to
    the DAE form [d/dt q(x) + f(t, x) = 0] of {!Dae.t}.

    The unknown vector [x] stacks the voltages of all non-ground nodes
    (in creation order) followed by the extra states of each device
    (branch currents, mechanical coordinates, ...) in insertion order.

    Sign conventions: [f] rows for nodes accumulate currents {e
    leaving} the node (KCL: sum of leaving currents is zero); [q] rows
    accumulate charge stored at the node.  A device connected between
    nodes [n1] and [n2] sees the branch voltage [v n1 -. v n2]. *)

open Linalg

(** Ground node: always index 0, voltage identically zero. *)
val ground : int

(** Stamping context handed to a device's [stamp] function on every
    evaluation.  Accessors [v] and [s] read node voltages and the
    device's own (local) extra states; the [q*]/[f*] accumulators add
    charge/current contributions; the [d*] accumulators add Jacobian
    entries.  All accumulators silently drop ground rows/columns. *)
type ctx = {
  time : float;
  v : int -> float;  (** node voltage (node id) *)
  s : int -> float;  (** local extra state value (local index) *)
  qn : int -> float -> unit;  (** add charge at node row *)
  fn : int -> float -> unit;  (** add current at node row *)
  qs : int -> float -> unit;  (** add to local state's q row *)
  fs : int -> float -> unit;  (** add to local state's f row *)
  dqn_dv : int -> int -> float -> unit;  (** d(node charge)/d(node voltage) *)
  dqn_ds : int -> int -> float -> unit;  (** d(node charge)/d(local state) *)
  dfn_dv : int -> int -> float -> unit;
  dfn_ds : int -> int -> float -> unit;
  dqs_dv : int -> int -> float -> unit;
  dqs_ds : int -> int -> float -> unit;
  dfs_dv : int -> int -> float -> unit;
  dfs_ds : int -> int -> float -> unit;
}

type device = {
  label : string;
  state_names : string array;  (** names of the device's extra states *)
  initial_state : float array;  (** initial values for the extra states *)
  stamp : ctx -> unit;
}

type t
(** A netlist under construction. *)

(** [create ()] is an empty netlist (just the ground node). *)
val create : unit -> t

(** [node t name] returns the id of the named node, creating it if
    needed.  The names ["0"], ["gnd"] and ["ground"] denote ground. *)
val node : t -> string -> int

(** [add t device] appends a device. *)
val add : t -> device -> unit

(** [node_count t] is the number of non-ground nodes so far. *)
val node_count : t -> int

(** [compile t] freezes the netlist into a DAE.  Variable names are
    ["v(<node>)"] for node voltages and ["<label>.<state>"] for device
    states. *)
val compile : t -> Dae.t

(** [initial_guess t] is a start vector matching {!compile}'s layout:
    zero node voltages, devices' [initial_state] values. *)
val initial_guess : t -> Vec.t

(** {1 Devices}

    All two-terminal constructors take the two node ids [n1 n2] and are
    stamped with branch voltage [v = v(n1) - v(n2)] and current flowing
    [n1 -> n2] inside the device. *)

(** [resistor ~label ~r n1 n2] — linear resistor of resistance [r]. *)
val resistor : label:string -> r:float -> int -> int -> device

(** [capacitor ~label ~c n1 n2] — linear capacitor. *)
val capacitor : label:string -> c:float -> int -> int -> device

(** [inductor ~label ~l n1 n2] — linear inductor; adds one branch
    current state. *)
val inductor : label:string -> l:float -> int -> int -> device

(** [vsource ~label ~v n1 n2] — independent voltage source
    [v(n1) - v(n2) = v t]; adds one branch current state. *)
val vsource : label:string -> v:(float -> float) -> int -> int -> device

(** [isource ~label ~i n1 n2] — independent current source pushing
    [i t] from [n1] to [n2] through the device. *)
val isource : label:string -> i:(float -> float) -> int -> int -> device

(** [cubic_conductance ~label ~g1 ~g3 n1 n2] — the paper's nonlinear
    resistor [i(v) = -g1 v + g3 v^3]: negative (energy-supplying)
    around [v = 0], positive beyond [sqrt (g1 / g3)]. *)
val cubic_conductance : label:string -> g1:float -> g3:float -> int -> int -> device

(** [diode ~label ?is_ ?vt n1 n2] — exponential diode with current
    limiting for Newton robustness ([is_] saturation current, [vt]
    thermal voltage). *)
val diode : label:string -> ?is_:float -> ?vt:float -> int -> int -> device

(** [nonlinear_capacitor ~label ~q ~dq n1 n2] — charge [q v] with
    derivative [dq v]. *)
val nonlinear_capacitor :
  label:string -> q:(float -> float) -> dq:(float -> float) -> int -> int -> device

(** Parameters of the MEMS varactor (see DESIGN.md).  The moving plate
    obeys [mass g'' + damping g' + stiffness (g - g_rest) = -force].
    The electrostatic actuation force is [force0 * vc(t)^2 / g^power]
    with [power = 0] modelling a comb-drive actuator and [power = 2] a
    parallel-plate one.  The sense capacitance is [c0 *. g0 /. g]. *)
type varactor_params = {
  c0 : float;  (** capacitance at gap [g0] *)
  gap0 : float;  (** reference gap *)
  g_rest : float;  (** spring rest gap *)
  mass : float;
  damping : float;
  stiffness : float;
  force0 : float;
  force_power : int;  (** 0 (comb drive) or 2 (parallel plate) *)
  control : float -> float;  (** control voltage vc(t) *)
}

(** [mems_varactor ~label ~params n1 n2] — voltage-controlled MEMS
    capacitor; adds two states: plate gap [g] and its velocity [u]. *)
val mems_varactor : label:string -> params:varactor_params -> int -> int -> device

(** [vccs ~label ~gm ncp ncn n1 n2] — voltage-controlled current
    source: pushes [gm (v ncp - v ncn)] from [n1] to [n2]. *)
val vccs : label:string -> gm:float -> int -> int -> int -> int -> device

(** [vcvs ~label ~gain ncp ncn n1 n2] — voltage-controlled voltage
    source [v n1 - v n2 = gain (v ncp - v ncn)]; one branch-current
    state. *)
val vcvs : label:string -> gain:float -> int -> int -> int -> int -> device

(** [mosfet ~label ?k ?vt ~drain ~gate ~source ()] — level-1
    square-law n-channel MOSFET ([k] transconductance factor, [vt]
    threshold); symmetric in drain/source. *)
val mosfet :
  label:string -> ?k:float -> ?vt:float -> drain:int -> gate:int -> source:int -> unit -> device

(** [junction_capacitor ~label ?c0 ?vj ?m ?fc n1 n2] — junction
    (varactor-diode) capacitance [c0 / (1 - v/vj)^m] with the standard
    linearized extension above [fc vj]; the classic electrically tuned
    capacitor alternative to the MEMS varactor. *)
val junction_capacitor :
  label:string -> ?c0:float -> ?vj:float -> ?m:float -> ?fc:float -> int -> int -> device

(** [multiplier ~label ~k (a1, a2) (b1, b2) n1 n2] — analog multiplier
    (four-quadrant mixer / phase detector): pushes the current
    [k (v a1 - v a2) (v b1 - v b2)] from [n1] to [n2]. *)
val multiplier : label:string -> k:float -> int * int -> int * int -> int -> int -> device
