exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let parse_value s =
  let s = String.lowercase_ascii (String.trim s) in
  if s = "" then failwith "Parser.parse_value: empty";
  (* split the numeric prefix from an optional suffix *)
  let is_num c = (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' in
  (* careful: 'e' may begin an exponent only when followed by a digit/sign *)
  let n = String.length s in
  let rec split i =
    if i >= n then i
    else begin
      let c = s.[i] in
      if is_num c then
        if c = 'e' && not (i + 1 < n && (s.[i + 1] = '-' || s.[i + 1] = '+' || (s.[i + 1] >= '0' && s.[i + 1] <= '9')))
        then i
        else split (i + 1)
      else i
    end
  in
  let cut = split 0 in
  if cut = 0 then failwith (Printf.sprintf "Parser.parse_value: %S" s);
  let num = float_of_string (String.sub s 0 cut) in
  let suffix = String.sub s cut (n - cut) in
  let multiplier =
    match suffix with
    | "" -> 1.
    | "t" -> 1e12
    | "g" -> 1e9
    | "meg" -> 1e6
    | "k" -> 1e3
    | "m" -> 1e-3
    | "u" -> 1e-6
    | "n" -> 1e-9
    | "p" -> 1e-12
    | "f" -> 1e-15
    | _ ->
      (* trailing unit letters after a recognized suffix are tolerated,
         SPICE-style: 10kohm, 5nF *)
      (match suffix.[0] with
       | 't' -> 1e12
       | 'g' -> 1e9
       | 'k' -> 1e3
       | 'm' -> if String.length suffix >= 3 && String.sub suffix 0 3 = "meg" then 1e6 else 1e-3
       | 'u' -> 1e-6
       | 'n' -> 1e-9
       | 'p' -> 1e-12
       | 'f' -> 1e-15
       | 'a' .. 'e' | 'h' .. 'j' | 'l' | 'o' .. 's' | 'v' .. 'z' -> 1.
       | _ -> failwith (Printf.sprintf "Parser.parse_value: bad suffix %S" suffix))
  in
  num *. multiplier

(* key=value option fields *)
let parse_options line tokens =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | None -> fail line "expected KEY=VALUE, got %S" tok
      | Some i ->
        let key = String.lowercase_ascii (String.sub tok 0 i) in
        let v =
          try parse_value (String.sub tok (i + 1) (String.length tok - i - 1))
          with Failure m -> fail line "%s" m
        in
        (key, v))
    tokens

let find_opt options key default = Option.value (List.assoc_opt key options) ~default

(* source specification: "<value>" | "DC <value>" | "SIN(off amp freq)" *)
let parse_source line tokens =
  match tokens with
  | [ v ] -> (
    try
      let x = parse_value v in
      fun _ -> x
    with Failure m -> fail line "%s" m)
  | [ "dc"; v ] | [ "DC"; v ] -> (
    try
      let x = parse_value v in
      fun _ -> x
    with Failure m -> fail line "%s" m)
  | tokens -> (
    (* re-join and match SIN(a b c), tolerant of spaces *)
    let joined = String.concat " " tokens in
    let lower = String.lowercase_ascii joined in
    if String.length lower >= 4 && String.sub lower 0 4 = "sin(" then begin
      let inner = String.sub joined 4 (String.length joined - 4) in
      let inner =
        match String.index_opt inner ')' with
        | Some i -> String.sub inner 0 i
        | None -> fail line "SIN(...): missing closing parenthesis"
      in
      let parts =
        String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) inner)
        |> List.filter (fun s -> s <> "")
      in
      match parts with
      | [ off; amp; freq ] -> (
        try
          let off = parse_value off and amp = parse_value amp and freq = parse_value freq in
          fun t -> off +. (amp *. sin (2. *. Float.pi *. freq *. t))
        with Failure m -> fail line "%s" m)
      | _ -> fail line "SIN expects 3 arguments (offset amplitude frequency)"
    end
    else fail line "unrecognized source specification %S" joined)

let parse_string text =
  let net = Mna.create () in
  let node name = Mna.node net name in
  let lines = String.split_on_char '\n' text in
  let ended = ref false in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line_text = String.trim raw in
      if (not !ended) && line_text <> "" && line_text.[0] <> '*' && line_text.[0] <> ';' then begin
        let lower = String.lowercase_ascii line_text in
        if lower = ".end" then ended := true
        else begin
          let tokens =
            String.split_on_char ' '
              (String.map (fun c -> if c = '\t' then ' ' else c) line_text)
            |> List.filter (fun s -> s <> "")
          in
          match tokens with
          | [] -> ()
          | name :: rest ->
            let kind = Char.lowercase_ascii name.[0] in
            (match kind, rest with
             | 'r', [ n1; n2; v ] -> (
               try Mna.add net (Mna.resistor ~label:name ~r:(parse_value v) (node n1) (node n2))
               with Failure m -> fail lineno "%s" m)
             | 'c', n1 :: n2 :: spec :: opts when String.lowercase_ascii spec = "junction" ->
               let options = parse_options lineno opts in
               Mna.add net
                 (Mna.junction_capacitor ~label:name
                    ~c0:(find_opt options "c0" 1.)
                    ~vj:(find_opt options "vj" 0.7)
                    ~m:(find_opt options "m" 0.5)
                    ~fc:(find_opt options "fc" 0.5)
                    (node n1) (node n2))
             | 'c', [ n1; n2; v ] -> (
               try Mna.add net (Mna.capacitor ~label:name ~c:(parse_value v) (node n1) (node n2))
               with Failure m -> fail lineno "%s" m)
             | 'l', [ n1; n2; v ] -> (
               try Mna.add net (Mna.inductor ~label:name ~l:(parse_value v) (node n1) (node n2))
               with Failure m -> fail lineno "%s" m)
             | 'v', n1 :: n2 :: spec when spec <> [] ->
               let source = parse_source lineno spec in
               Mna.add net (Mna.vsource ~label:name ~v:source (node n1) (node n2))
             | 'i', n1 :: n2 :: spec when spec <> [] ->
               let source = parse_source lineno spec in
               Mna.add net (Mna.isource ~label:name ~i:source (node n1) (node n2))
             | 'd', n1 :: n2 :: opts ->
               let options = parse_options lineno opts in
               Mna.add net
                 (Mna.diode ~label:name
                    ~is_:(find_opt options "is" 1e-12)
                    ~vt:(find_opt options "vt" 0.02585)
                    (node n1) (node n2))
             | 'g', [ n1; n2; nc1; nc2; gm ] -> (
               try
                 Mna.add net
                   (Mna.vccs ~label:name ~gm:(parse_value gm) (node nc1) (node nc2) (node n1)
                      (node n2))
               with Failure m -> fail lineno "%s" m)
             | 'e', [ n1; n2; nc1; nc2; gain ] -> (
               try
                 Mna.add net
                   (Mna.vcvs ~label:name ~gain:(parse_value gain) (node nc1) (node nc2)
                      (node n1) (node n2))
               with Failure m -> fail lineno "%s" m)
             | 'm', nd :: ng :: ns :: opts ->
               let options = parse_options lineno opts in
               Mna.add net
                 (Mna.mosfet ~label:name
                    ~k:(find_opt options "k" 1.)
                    ~vt:(find_opt options "vt" 0.6)
                    ~drain:(node nd) ~gate:(node ng) ~source:(node ns) ())
             | 'n', [ n1; n2; g1; g3 ] -> (
               try
                 Mna.add net
                   (Mna.cubic_conductance ~label:name ~g1:(parse_value g1)
                      ~g3:(parse_value g3) (node n1) (node n2))
               with Failure m -> fail lineno "%s" m)
             | _ -> fail lineno "cannot parse device line %S" line_text)
        end
      end)
    lines;
  net

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text
