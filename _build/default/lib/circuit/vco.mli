(** The paper's VCO (Section 5): an LC tank in parallel with a cubic
    negative resistor, its capacitor realised by a MEMS varactor tuned
    by a slow control voltage.

    Scaled units throughout (see DESIGN.md): time in µs, voltage in V,
    current in mA, capacitance in nF, inductance in mH, gap in µm.
    Frequencies then come out directly in MHz.  The nominal design
    oscillates at [f_nominal ~ 0.75] MHz with a ~2 V amplitude. *)

open Linalg

type params = {
  l : float;  (** tank inductance [mH] *)
  g1 : float;  (** negative-conductance strength [mS] *)
  g3 : float;  (** cubic limiting coefficient [mS/V^2] *)
  varactor : Mna.varactor_params;
}

(** [default_params ~control ()] is the nominal 0.75 MHz design with
    the given control-voltage waveform; optional arguments override
    the mechanical damping ([?damping]), actuator law
    ([?force_power]), actuator strength ([?force0]) and spring
    stiffness ([?stiffness]). *)
val default_params :
  ?damping:float ->
  ?force_power:int ->
  ?force0:float ->
  ?stiffness:float ->
  control:(float -> float) ->
  unit ->
  params

(** [vco_a ()] — the paper's first experiment (Figs. 7–9): lightly
    damped (near-vacuum) varactor, control voltage 1.5 V biased,
    modulated sinusoidally with period ~30 nominal cycles; the local
    frequency swings by a factor of ~3. *)
val vco_a : unit -> params

(** [vco_b ()] — the modified experiment (Figs. 10–12): heavily damped
    (air-filled) varactor, 1 ms control period (~1000 nominal cycles),
    smaller frequency swing with visible settling. *)
val vco_b : unit -> params

(** [build params] compiles the netlist.  State layout:
    [x = [v_tank; i_L; gap; vel]] (one non-ground node, then the
    inductor current, then the varactor's two mechanical states). *)
val build : params -> Dae.t

(** [initial_state params] is a consistent start near the limit cycle:
    tank voltage at the amplitude estimate, zero current, gap at
    mechanical equilibrium for the initial control voltage. *)
val initial_state : params -> Vec.t

(** [amplitude_estimate params] is the describing-function amplitude
    [sqrt (4 g1 / (3 g3))] of the limit cycle. *)
val amplitude_estimate : params -> float

(** [frequency_of_gap params gap] is the small-signal tank frequency
    [1 / (2 pi sqrt (l c(gap)))] in MHz. *)
val frequency_of_gap : params -> float -> float

(** [nominal_frequency params] is [frequency_of_gap] at the
    equilibrium gap for the control voltage at [t = 0]. *)
val nominal_frequency : params -> float

(** [equilibrium_gap params vc] solves the static force balance for
    the gap at constant control voltage [vc]. *)
val equilibrium_gap : params -> float -> float

(** Index of the tank voltage (0), inductor current (1), gap (2) and
    plate velocity (3) in the compiled state vector. *)
val idx_voltage : int

val idx_current : int
val idx_gap : int
val idx_velocity : int
