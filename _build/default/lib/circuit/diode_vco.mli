(** A junction-varactor (diode-tuned) VCO: the classic electrical
    alternative to the paper's MEMS device.

    LC tank with a cubic negative conductance, where the tank capacitor
    is a reverse-biased junction capacitance [c0 / (1 + v_r / vj)^m]
    returned to a slow control-voltage source: raising the control
    voltage deepens the reverse bias, lowers the capacitance and raises
    the oscillation frequency.  Unlike the MEMS varactor there is no
    mechanical state — the tuning law is instantaneous — so the local
    frequency should track the small-signal law {!tuning_frequency}
    quasi-statically, which the tests verify.

    Scaled units as for {!Vco} (µs, V, mA, nF, mH). *)

open Linalg

type params = {
  l : float;  (** tank inductance [mH] *)
  g1 : float;  (** negative-conductance strength [mS] *)
  g3 : float;  (** cubic limiting [mS/V^2] *)
  c0 : float;  (** zero-bias junction capacitance [nF] *)
  vj : float;  (** junction potential [V] *)
  m : float;  (** grading coefficient *)
  control : float -> float;  (** control (reverse-bias) voltage, V *)
}

(** [default_params ~control ()] — ~1 MHz at 3 V control. *)
val default_params : control:(float -> float) -> unit -> params

(** [build params] compiles the netlist.  State layout:
    [x = [v_tank; v_ctrl; i_L; i_Vc]].  Note the control source makes
    [dq/dx] singular (an algebraic constraint): use implicit methods
    only (no [Rk4], no {!Steady.Shooting.autonomous}). *)
val build : params -> Dae.t

(** [initial_state params ~at] — tank at the amplitude estimate,
    control node at [control at]. *)
val initial_state : params -> at:float -> Vec.t

(** [capacitance params ~bias] is the small-signal junction
    capacitance at reverse bias [bias] (positive = reverse). *)
val capacitance : params -> bias:float -> float

(** [tuning_frequency params ~bias] is the small-signal oscillation
    frequency [1 / (2 pi sqrt (l C(bias)))] in MHz. *)
val tuning_frequency : params -> bias:float -> float

(** Component indices in the compiled state vector. *)
val idx_tank : int

val idx_control : int
