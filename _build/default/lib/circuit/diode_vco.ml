type params = {
  l : float;
  g1 : float;
  g3 : float;
  c0 : float;
  vj : float;
  m : float;
  control : float -> float;
}

let default_params ~control () =
  { l = 0.02; g1 = 1.0; g3 = 1. /. 3.; c0 = 3.0; vj = 0.7; m = 0.5; control }

let idx_tank = 0
let idx_control = 1

let build p =
  let net = Mna.create () in
  let tank = Mna.node net "tank" in
  let ctrl = Mna.node net "ctrl" in
  Mna.add net (Mna.inductor ~label:"L1" ~l:p.l tank Mna.ground);
  Mna.add net (Mna.cubic_conductance ~label:"GN" ~g1:p.g1 ~g3:p.g3 tank Mna.ground);
  (* varactor cathode at the control node: reverse bias = v_ctrl - v_tank,
     so the junction sees v = v_tank - v_ctrl < 0 when reverse biased *)
  Mna.add net (Mna.junction_capacitor ~label:"CV" ~c0:p.c0 ~vj:p.vj ~m:p.m tank ctrl);
  Mna.add net (Mna.vsource ~label:"VC" ~v:p.control ctrl Mna.ground);
  Mna.compile net

let amplitude_estimate p = sqrt (4. *. p.g1 /. (3. *. p.g3))

let initial_state p ~at =
  let vc = p.control at in
  [| amplitude_estimate p; vc; 0.; 0. |]

let capacitance p ~bias = p.c0 /. ((1. +. (bias /. p.vj)) ** p.m)

let tuning_frequency p ~bias =
  1. /. (2. *. Float.pi *. sqrt (p.l *. capacitance p ~bias))
