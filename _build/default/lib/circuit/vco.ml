type params = { l : float; g1 : float; g3 : float; varactor : Mna.varactor_params }

let two_pi = 2. *. Float.pi

(* Nominal design (scaled units): c0 = 1 nF at 1 µm gap, l = 0.045 mH
   -> f0 = 1 / (2 pi sqrt(l c0)) = 0.75 MHz; g1 = 1 mS, g3 = g1/3 ->
   2 V limit cycle.  Mechanical resonance at the VCO-A control rate
   (period 40 µs). *)
let default_params ?(damping = 0.0785) ?(force_power = 0) ?(force0 = 4.3e-3)
    ?(stiffness = 0.0247) ~control () =
  let gap0 = 1. in
  (* choose the spring rest position so the gap sits at gap0 under the
     bias control voltage vc = 1.5 *)
  let bias_force =
    match force_power with
    | 0 -> force0 *. 1.5 *. 1.5
    | _ -> force0 *. 1.5 *. 1.5 /. (gap0 *. gap0)
  in
  let g_rest = gap0 +. (bias_force /. stiffness) in
  {
    l = 0.045;
    g1 = 1.0;
    g3 = 1.0 /. 3.;
    varactor =
      {
        Mna.c0 = 1.0;
        gap0;
        g_rest;
        mass = 1.0;
        damping;
        stiffness;
        force0;
        force_power;
        control;
      };
  }

let vco_a () =
  let period = 40. in
  let control t = 1.5 +. (0.75 *. sin (two_pi *. t /. period)) in
  default_params ~control ()

let vco_b () =
  let period = 1000. in
  let control t = 1.5 +. (0.8 *. sin (two_pi *. t /. period)) in
  default_params ~damping:1.57 ~force0:4.0e-3 ~control ()

let idx_voltage = 0
let idx_current = 1
let idx_gap = 2
let idx_velocity = 3

let build p =
  let net = Mna.create () in
  let tank = Mna.node net "tank" in
  Mna.add net (Mna.inductor ~label:"L1" ~l:p.l tank Mna.ground);
  Mna.add net (Mna.cubic_conductance ~label:"GN" ~g1:p.g1 ~g3:p.g3 tank Mna.ground);
  Mna.add net (Mna.mems_varactor ~label:"CV" ~params:p.varactor tank Mna.ground);
  Mna.compile net

let amplitude_estimate p = sqrt (4. *. p.g1 /. (3. *. p.g3))

let frequency_of_gap p gap =
  let c = p.varactor.Mna.c0 *. p.varactor.Mna.gap0 /. gap in
  1. /. (two_pi *. sqrt (p.l *. c))

let equilibrium_gap p vc =
  let va = p.varactor in
  match va.Mna.force_power with
  | 0 -> va.Mna.g_rest -. (va.Mna.force0 *. vc *. vc /. va.Mna.stiffness)
  | _ ->
    (* k (g - g_rest) + F0 vc^2 / g^2 = 0: smooth Newton from gap0 *)
    let f g = (va.Mna.stiffness *. (g -. va.Mna.g_rest)) +. (va.Mna.force0 *. vc *. vc /. (g *. g)) in
    let df g = va.Mna.stiffness -. (2. *. va.Mna.force0 *. vc *. vc /. (g *. g *. g)) in
    Nonlin.Newton.scalar ~tol:1e-13 f df va.Mna.gap0

let nominal_frequency p = frequency_of_gap p (equilibrium_gap p (p.varactor.Mna.control 0.))

let initial_state p =
  let gap = equilibrium_gap p (p.varactor.Mna.control 0.) in
  [| amplitude_estimate p; 0.; gap; 0. |]
