(** SPICE-flavoured netlist parser.

    Grammar (case-insensitive; [*] or [;] start a comment line; an
    optional [.end] line terminates the deck; values accept the SPICE
    suffixes [t g meg k m u n p f]):

    {v
    R<name> n1 n2 <value>
    C<name> n1 n2 <value>
    C<name> n1 n2 JUNCTION [C0=<v>] [VJ=<v>] [M=<v>] [FC=<v>]
    L<name> n1 n2 <value>
    V<name> n1 n2 <value>            constant source
    V<name> n1 n2 DC <value>
    V<name> n1 n2 SIN(<off> <amp> <freq>)
    I<name> n1 n2 <source as for V>
    D<name> n1 n2 [IS=<v>] [VT=<v>]
    G<name> n1 n2 nc1 nc2 <gm>       VCCS (current n1->n2)
    E<name> n1 n2 nc1 nc2 <gain>     VCVS
    M<name> nd ng ns [K=<v>] [VT=<v>]    square-law MOSFET
    N<name> n1 n2 <g1> <g3>          cubic negative conductance
    v}

    Node ["0"], ["gnd"] or ["ground"] is ground. *)

exception Parse_error of { line : int; message : string }

(** [parse_string text] parses a netlist deck.  Raises {!Parse_error}
    with a 1-based line number on malformed input. *)
val parse_string : string -> Mna.t

(** [parse_file path] reads and parses a deck from disk. *)
val parse_file : string -> Mna.t

(** [parse_value s] parses a single SPICE-suffixed number, e.g.
    ["4.7k"], ["100n"], ["2meg"].  Raises [Failure] on bad input. *)
val parse_value : string -> float
