open Linalg

let ground = 0

type ctx = {
  time : float;
  v : int -> float;
  s : int -> float;
  qn : int -> float -> unit;
  fn : int -> float -> unit;
  qs : int -> float -> unit;
  fs : int -> float -> unit;
  dqn_dv : int -> int -> float -> unit;
  dqn_ds : int -> int -> float -> unit;
  dfn_dv : int -> int -> float -> unit;
  dfn_ds : int -> int -> float -> unit;
  dqs_dv : int -> int -> float -> unit;
  dqs_ds : int -> int -> float -> unit;
  dfs_dv : int -> int -> float -> unit;
  dfs_ds : int -> int -> float -> unit;
}

type device = {
  label : string;
  state_names : string array;
  initial_state : float array;
  stamp : ctx -> unit;
}

type t = {
  names : (string, int) Hashtbl.t;
  mutable next_node : int;
  mutable devices : device list;  (* reversed *)
}

let create () = { names = Hashtbl.create 16; next_node = 1; devices = [] }

let node t name =
  match String.lowercase_ascii name with
  | "0" | "gnd" | "ground" -> ground
  | _ ->
    (match Hashtbl.find_opt t.names name with
     | Some id -> id
     | None ->
       let id = t.next_node in
       t.next_node <- id + 1;
       Hashtbl.add t.names name id;
       id)

let add t device = t.devices <- device :: t.devices
let node_count t = t.next_node - 1
let devices_in_order t = List.rev t.devices

(* Layout: x = [v_1 .. v_N; states of device 1; states of device 2; ...] *)
let layout t =
  let n_nodes = node_count t in
  let devices = devices_in_order t in
  let offsets = ref [] in
  let pos = ref n_nodes in
  List.iter
    (fun d ->
      offsets := (d, !pos) :: !offsets;
      pos := !pos + Array.length d.state_names)
    devices;
  (n_nodes, List.rev !offsets, !pos)

let make_ctx ~time ~x ~offset ~q_acc ~f_acc ~dq_acc ~df_acc =
  let v id = if id = ground then 0. else x.(id - 1) in
  let s k = x.(offset + k) in
  let node_row id k f = if id <> ground then f (id - 1) k in
  let acc_vec arr = fun row value -> arr.(row) <- arr.(row) +. value in
  let nop_vec = fun _ _ -> () in
  let acc_mat m = fun row col value -> m.(row).(col) <- m.(row).(col) +. value in
  let nop_mat = fun _ _ _ -> () in
  let qv = match q_acc with Some a -> acc_vec a | None -> nop_vec in
  let fv = match f_acc with Some a -> acc_vec a | None -> nop_vec in
  let dqm = match dq_acc with Some m -> acc_mat m | None -> nop_mat in
  let dfm = match df_acc with Some m -> acc_mat m | None -> nop_mat in
  {
    time;
    v;
    s;
    qn = (fun id value -> if id <> ground then qv (id - 1) value);
    fn = (fun id value -> if id <> ground then fv (id - 1) value);
    qs = (fun k value -> qv (offset + k) value);
    fs = (fun k value -> fv (offset + k) value);
    dqn_dv = (fun r c value -> if r <> ground && c <> ground then dqm (r - 1) (c - 1) value);
    dqn_ds = (fun r c value -> node_row r c (fun row col -> dqm row (offset + col) value));
    dfn_dv = (fun r c value -> if r <> ground && c <> ground then dfm (r - 1) (c - 1) value);
    dfn_ds = (fun r c value -> node_row r c (fun row col -> dfm row (offset + col) value));
    dqs_dv = (fun r c value -> if c <> ground then dqm (offset + r) (c - 1) value);
    dqs_ds = (fun r c value -> dqm (offset + r) (offset + c) value);
    dfs_dv = (fun r c value -> if c <> ground then dfm (offset + r) (c - 1) value);
    dfs_ds = (fun r c value -> dfm (offset + r) (offset + c) value);
  }

let compile t =
  let n_nodes, offsets, dim = layout t in
  let stamp_all ~time ~x ~q_acc ~f_acc ~dq_acc ~df_acc =
    List.iter
      (fun (d, offset) ->
        let ctx = make_ctx ~time ~x ~offset ~q_acc ~f_acc ~dq_acc ~df_acc in
        d.stamp ctx)
      offsets
  in
  ignore n_nodes;
  let q x =
    let acc = Array.make dim 0. in
    stamp_all ~time:0. ~x ~q_acc:(Some acc) ~f_acc:None ~dq_acc:None ~df_acc:None;
    acc
  in
  let f ~t x =
    let acc = Array.make dim 0. in
    stamp_all ~time:t ~x ~q_acc:None ~f_acc:(Some acc) ~dq_acc:None ~df_acc:None;
    acc
  in
  let dq x =
    let m = Mat.zeros dim dim in
    stamp_all ~time:0. ~x ~q_acc:None ~f_acc:None ~dq_acc:(Some m) ~df_acc:None;
    m
  in
  let df ~t x =
    let m = Mat.zeros dim dim in
    stamp_all ~time:t ~x ~q_acc:None ~f_acc:None ~dq_acc:None ~df_acc:(Some m);
    m
  in
  let var_names = Array.make dim "" in
  Hashtbl.iter (fun name id -> var_names.(id - 1) <- Printf.sprintf "v(%s)" name) t.names;
  List.iter
    (fun (d, offset) ->
      Array.iteri
        (fun k sn -> var_names.(offset + k) <- Printf.sprintf "%s.%s" d.label sn)
        d.state_names)
    offsets;
  Dae.make ~dim ~q ~f ~dq ~df ~var_names ()

let initial_guess t =
  let _, offsets, dim = layout t in
  let x = Array.make dim 0. in
  List.iter
    (fun (d, offset) -> Array.iteri (fun k v0 -> x.(offset + k) <- v0) d.initial_state)
    offsets;
  x

(* ---------- devices ---------- *)

let two_terminal label stamp = { label; state_names = [||]; initial_state = [||]; stamp }

let resistor ~label ~r n1 n2 =
  if r = 0. then invalid_arg "Mna.resistor: r = 0";
  let g = 1. /. r in
  two_terminal label (fun c ->
      let vb = c.v n1 -. c.v n2 in
      let i = g *. vb in
      c.fn n1 i;
      c.fn n2 (-.i);
      c.dfn_dv n1 n1 g;
      c.dfn_dv n1 n2 (-.g);
      c.dfn_dv n2 n1 (-.g);
      c.dfn_dv n2 n2 g)

let capacitor ~label ~c:cap n1 n2 =
  two_terminal label (fun c ->
      let vb = c.v n1 -. c.v n2 in
      let q = cap *. vb in
      c.qn n1 q;
      c.qn n2 (-.q);
      c.dqn_dv n1 n1 cap;
      c.dqn_dv n1 n2 (-.cap);
      c.dqn_dv n2 n1 (-.cap);
      c.dqn_dv n2 n2 cap)

let inductor ~label ~l n1 n2 =
  {
    label;
    state_names = [| "i" |];
    initial_state = [| 0. |];
    stamp =
      (fun c ->
        let i = c.s 0 in
        (* node KCL: current i leaves n1, enters n2 *)
        c.fn n1 i;
        c.fn n2 (-.i);
        c.dfn_ds n1 0 1.;
        c.dfn_ds n2 0 (-1.);
        (* branch: L di/dt - (v1 - v2) = 0 *)
        c.qs 0 (l *. i);
        c.dqs_ds 0 0 l;
        c.fs 0 (c.v n2 -. c.v n1);
        c.dfs_dv 0 n2 1.;
        c.dfs_dv 0 n1 (-1.));
  }

let vsource ~label ~v n1 n2 =
  {
    label;
    state_names = [| "i" |];
    initial_state = [| 0. |];
    stamp =
      (fun c ->
        let i = c.s 0 in
        c.fn n1 i;
        c.fn n2 (-.i);
        c.dfn_ds n1 0 1.;
        c.dfn_ds n2 0 (-1.);
        (* branch equation: v1 - v2 - v(t) = 0 *)
        c.fs 0 (c.v n1 -. c.v n2 -. v c.time);
        c.dfs_dv 0 n1 1.;
        c.dfs_dv 0 n2 (-1.));
  }

let isource ~label ~i n1 n2 =
  two_terminal label (fun c ->
      let cur = i c.time in
      c.fn n1 cur;
      c.fn n2 (-.cur))

let cubic_conductance ~label ~g1 ~g3 n1 n2 =
  two_terminal label (fun c ->
      let vb = c.v n1 -. c.v n2 in
      let i = (-.g1 *. vb) +. (g3 *. vb *. vb *. vb) in
      let di = -.g1 +. (3. *. g3 *. vb *. vb) in
      c.fn n1 i;
      c.fn n2 (-.i);
      c.dfn_dv n1 n1 di;
      c.dfn_dv n1 n2 (-.di);
      c.dfn_dv n2 n1 (-.di);
      c.dfn_dv n2 n2 di)

let diode ~label ?(is_ = 1e-12) ?(vt = 0.02585) n1 n2 =
  (* exponential limited linearly above vmax to keep Newton in range *)
  let vmax = 40. *. vt in
  let emax = exp (vmax /. vt) in
  two_terminal label (fun c ->
      let vb = c.v n1 -. c.v n2 in
      let i, di =
        if vb <= vmax then begin
          let e = exp (vb /. vt) in
          (is_ *. (e -. 1.), is_ *. e /. vt)
        end
        else begin
          let slope = is_ *. emax /. vt in
          ((is_ *. (emax -. 1.)) +. (slope *. (vb -. vmax)), slope)
        end
      in
      c.fn n1 i;
      c.fn n2 (-.i);
      c.dfn_dv n1 n1 di;
      c.dfn_dv n1 n2 (-.di);
      c.dfn_dv n2 n1 (-.di);
      c.dfn_dv n2 n2 di)

let nonlinear_capacitor ~label ~q ~dq n1 n2 =
  two_terminal label (fun c ->
      let vb = c.v n1 -. c.v n2 in
      let qv = q vb and dqv = dq vb in
      c.qn n1 qv;
      c.qn n2 (-.qv);
      c.dqn_dv n1 n1 dqv;
      c.dqn_dv n1 n2 (-.dqv);
      c.dqn_dv n2 n1 (-.dqv);
      c.dqn_dv n2 n2 dqv)

type varactor_params = {
  c0 : float;
  gap0 : float;
  g_rest : float;
  mass : float;
  damping : float;
  stiffness : float;
  force0 : float;
  force_power : int;
  control : float -> float;
}

let mems_varactor ~label ~params n1 n2 =
  let p = params in
  if p.force_power <> 0 && p.force_power <> 2 then
    invalid_arg "Mna.mems_varactor: force_power must be 0 or 2";
  {
    label;
    state_names = [| "gap"; "vel" |];
    initial_state = [| p.gap0; 0. |];
    stamp =
      (fun c ->
        let vb = c.v n1 -. c.v n2 in
        let g = c.s 0 and u = c.s 1 in
        (* electrical: plate charge q = c0 g0 v / g *)
        let cap = p.c0 *. p.gap0 /. g in
        let q = cap *. vb in
        c.qn n1 q;
        c.qn n2 (-.q);
        c.dqn_dv n1 n1 cap;
        c.dqn_dv n1 n2 (-.cap);
        c.dqn_dv n2 n1 (-.cap);
        c.dqn_dv n2 n2 cap;
        let dq_dg = -.q /. g in
        c.dqn_ds n1 0 dq_dg;
        c.dqn_ds n2 0 (-.dq_dg);
        (* mechanical state 0: dg/dt - u = 0 *)
        c.qs 0 g;
        c.dqs_ds 0 0 1.;
        c.fs 0 (-.u);
        c.dfs_ds 0 1 (-1.);
        (* mechanical state 1:
           m du/dt + damping u + k (g - g_rest) + force = 0
           where force = force0 vc^2 / g^power pulls the gap closed. *)
        let vc = p.control c.time in
        let force, dforce_dg =
          match p.force_power with
          | 0 -> (p.force0 *. vc *. vc, 0.)
          | _ ->
            let f = p.force0 *. vc *. vc /. (g *. g) in
            (f, -2. *. f /. g)
        in
        c.qs 1 (p.mass *. u);
        c.dqs_ds 1 1 p.mass;
        c.fs 1 ((p.damping *. u) +. (p.stiffness *. (g -. p.g_rest)) +. force);
        c.dfs_ds 1 1 p.damping;
        c.dfs_ds 1 0 (p.stiffness +. dforce_dg));
  }

let vccs ~label ~gm ncp ncn n1 n2 =
  two_terminal label (fun c ->
      let vc = c.v ncp -. c.v ncn in
      let i = gm *. vc in
      c.fn n1 i;
      c.fn n2 (-.i);
      c.dfn_dv n1 ncp gm;
      c.dfn_dv n1 ncn (-.gm);
      c.dfn_dv n2 ncp (-.gm);
      c.dfn_dv n2 ncn gm)

let vcvs ~label ~gain ncp ncn n1 n2 =
  {
    label;
    state_names = [| "i" |];
    initial_state = [| 0. |];
    stamp =
      (fun c ->
        let i = c.s 0 in
        c.fn n1 i;
        c.fn n2 (-.i);
        c.dfn_ds n1 0 1.;
        c.dfn_ds n2 0 (-1.);
        (* v1 - v2 - gain (vcp - vcn) = 0 *)
        c.fs 0 (c.v n1 -. c.v n2 -. (gain *. (c.v ncp -. c.v ncn)));
        c.dfs_dv 0 n1 1.;
        c.dfs_dv 0 n2 (-1.);
        c.dfs_dv 0 ncp (-.gain);
        c.dfs_dv 0 ncn gain);
  }

(* Square-law n-channel MOSFET (level-1, no channel-length modulation).
   Drain current for vds >= 0; for vds < 0 drain and source swap roles
   (symmetric device). *)
let mosfet ~label ?(k = 1.) ?(vt = 0.6) ~drain ~gate ~source () =
  let ids vgs vds =
    if vgs <= vt then (0., 0., 0.)
    else begin
      let vov = vgs -. vt in
      if vds >= vov then
        (* saturation *)
        (0.5 *. k *. vov *. vov, k *. vov, 0.)
      else
        (* triode *)
        ( k *. ((vov *. vds) -. (0.5 *. vds *. vds)),
          k *. vds,
          k *. (vov -. vds) )
    end
  in
  two_terminal label (fun c ->
      let vd = c.v drain and vg = c.v gate and vs = c.v source in
      let flip = vd < vs in
      let d, s = if flip then (source, drain) else (drain, source) in
      let vds = Float.abs (vd -. vs) in
      let vgs = vg -. c.v s in
      let i, di_dvgs, di_dvds = ids vgs vds in
      let i_signed = if flip then -.i else i in
      c.fn drain i_signed;
      c.fn source (-.i_signed);
      (* d i / d node voltages in the (d, g, s) frame, then mapped back *)
      let dg = di_dvgs in
      let dd = di_dvds in
      let ds = -.di_dvgs -. di_dvds in
      let sign = if flip then -1. else 1. in
      c.dfn_dv drain gate (sign *. dg);
      c.dfn_dv drain d (sign *. dd);
      c.dfn_dv drain s (sign *. ds);
      c.dfn_dv source gate (-.sign *. dg);
      c.dfn_dv source d (-.sign *. dd);
      c.dfn_dv source s (-.sign *. ds))

(* Reverse-biased junction (varactor) diode capacitance:
   C(v) = c0 / (1 - v/vj)^m for v <= fc vj, with the standard SPICE
   linearized extension above fc vj to avoid the singularity at v = vj.
   Charge is the closed-form integral of C. *)
let junction_capacitor ~label ?(c0 = 1.) ?(vj = 0.7) ?(m = 0.5) ?(fc = 0.5) n1 n2 =
  let q_of v =
    if v <= fc *. vj then
      c0 *. vj /. (1. -. m) *. (1. -. ((1. -. (v /. vj)) ** (1. -. m)))
    else begin
      (* continue with C and dC/dv matched at v = fc vj *)
      let f1 = (1. -. fc) ** (1. -. m) in
      let q_fc = c0 *. vj /. (1. -. m) *. (1. -. f1) in
      let c_fc = c0 /. ((1. -. fc) ** m) in
      let dc_fc = c0 *. m /. vj /. ((1. -. fc) ** (m +. 1.)) in
      let dv = v -. (fc *. vj) in
      q_fc +. (c_fc *. dv) +. (0.5 *. dc_fc *. dv *. dv)
    end
  in
  let c_of v =
    if v <= fc *. vj then c0 /. ((1. -. (v /. vj)) ** m)
    else begin
      let c_fc = c0 /. ((1. -. fc) ** m) in
      let dc_fc = c0 *. m /. vj /. ((1. -. fc) ** (m +. 1.)) in
      c_fc +. (dc_fc *. (v -. (fc *. vj)))
    end
  in
  nonlinear_capacitor ~label ~q:q_of ~dq:c_of n1 n2

let multiplier ~label ~k (a1, a2) (b1, b2) n1 n2 =
  two_terminal label (fun c ->
      let va = c.v a1 -. c.v a2 and vb = c.v b1 -. c.v b2 in
      let i = k *. va *. vb in
      c.fn n1 i;
      c.fn n2 (-.i);
      let dia = k *. vb and dib = k *. va in
      c.dfn_dv n1 a1 dia;
      c.dfn_dv n1 a2 (-.dia);
      c.dfn_dv n1 b1 dib;
      c.dfn_dv n1 b2 (-.dib);
      c.dfn_dv n2 a1 (-.dia);
      c.dfn_dv n2 a2 dia;
      c.dfn_dv n2 b1 (-.dib);
      c.dfn_dv n2 b2 dib)
