(** Dense real matrices in row-major [float array array] form.

    A matrix of [rows r] and [cols c] is an array of [r] rows, each a
    [float array] of length [c].  Rows are never shared between
    matrices created by this module. *)

type t = float array array

(** [make r c x] is an [r x c] matrix filled with [x]. *)
val make : int -> int -> float -> t

(** [zeros r c] is [make r c 0.]. *)
val zeros : int -> int -> t

(** [init r c f] has entry [(i, j)] equal to [f i j]. *)
val init : int -> int -> (int -> int -> float) -> t

(** [identity n] is the [n x n] identity. *)
val identity : int -> t

(** [diag v] is the square matrix with [v] on the diagonal. *)
val diag : Vec.t -> t

(** [rows m] is the number of rows. *)
val rows : t -> int

(** [cols m] is the number of columns (0 if there are no rows). *)
val cols : t -> int

(** [copy m] is a deep copy. *)
val copy : t -> t

(** [transpose m] is the transposed matrix. *)
val transpose : t -> t

(** [add a b] is the elementwise sum. *)
val add : t -> t -> t

(** [sub a b] is the elementwise difference. *)
val sub : t -> t -> t

(** [scale a m] multiplies every entry by [a]. *)
val scale : float -> t -> t

(** [mul a b] is the matrix product. *)
val mul : t -> t -> t

(** [matvec m v] is [m * v]. *)
val matvec : t -> Vec.t -> Vec.t

(** [matvec_into m v ~dst] writes [m * v] into [dst]. *)
val matvec_into : t -> Vec.t -> dst:Vec.t -> unit

(** [tmatvec m v] is [transpose m * v] without forming the transpose. *)
val tmatvec : t -> Vec.t -> Vec.t

(** [axpy ~a ~x y] adds [a * x] to matrix [y] in place. *)
val axpy : a:float -> x:t -> t -> unit

(** [norm_inf m] is the induced infinity norm (max absolute row sum). *)
val norm_inf : t -> float

(** [frobenius m] is the Frobenius norm. *)
val frobenius : t -> float

(** [approx_equal ?tol a b] is entrywise closeness within [tol]
    (default [1e-9]). *)
val approx_equal : ?tol:float -> t -> t -> bool

(** [pp] prints the matrix row by row. *)
val pp : Format.formatter -> t -> unit
