(** Dense real vectors represented as [float array].

    All functions are total on well-formed inputs; dimension mismatches
    raise [Invalid_argument].  Vectors are mutable; functions suffixed
    [_into] write their result into a caller-supplied destination, the
    others allocate. *)

type t = float array

(** [make n x] is a fresh vector of length [n] filled with [x]. *)
val make : int -> float -> t

(** [zeros n] is [make n 0.]. *)
val zeros : int -> t

(** [init n f] is the vector whose [i]th entry is [f i]. *)
val init : int -> (int -> float) -> t

(** [copy v] is a fresh copy of [v]. *)
val copy : t -> t

(** [blit ~src ~dst] copies [src] into [dst] (same length). *)
val blit : src:t -> dst:t -> unit

(** [linspace a b n] is [n >= 2] equally spaced points from [a] to [b]
    inclusive. *)
val linspace : float -> float -> int -> t

(** [add u v] is the elementwise sum. *)
val add : t -> t -> t

(** [sub u v] is the elementwise difference [u - v]. *)
val sub : t -> t -> t

(** [scale a v] is [a * v]. *)
val scale : float -> t -> t

(** [scale_inplace a v] multiplies [v] by [a] in place. *)
val scale_inplace : float -> t -> unit

(** [axpy ~a ~x y] adds [a * x] to [y] in place (BLAS axpy). *)
val axpy : a:float -> x:t -> t -> unit

(** [dot u v] is the inner product, computed with compensated summation. *)
val dot : t -> t -> float

(** [norm2 v] is the Euclidean norm. *)
val norm2 : t -> float

(** [norm_inf v] is the maximum absolute entry (0 for the empty vector). *)
val norm_inf : t -> float

(** [norm1 v] is the sum of absolute entries. *)
val norm1 : t -> float

(** [rms v] is the root-mean-square value. *)
val rms : t -> float

(** [dist_inf u v] is [norm_inf (sub u v)] without allocating. *)
val dist_inf : t -> t -> float

(** [map f v] applies [f] elementwise. *)
val map : (float -> float) -> t -> t

(** [map2 f u v] applies [f] to corresponding elements. *)
val map2 : (float -> float -> float) -> t -> t -> t

(** [max_abs_index v] is the index of the entry of largest magnitude.
    Raises [Invalid_argument] on the empty vector. *)
val max_abs_index : t -> int

(** [sum v] is the compensated sum of the entries. *)
val sum : t -> float

(** [mean v] is the arithmetic mean ([nan] for the empty vector). *)
val mean : t -> float

(** [weighted_norm ~scale v] is [norm_inf (v ./ scale)]: each entry is
    divided by the matching positive scale before taking the max. *)
val weighted_norm : scale:t -> t -> float

(** [approx_equal ?tol u v] tests componentwise closeness with absolute
    tolerance [tol] (default [1e-9]). *)
val approx_equal : ?tol:float -> t -> t -> bool

(** [pp] prints a vector as [[v0; v1; ...]] with short float formatting. *)
val pp : Format.formatter -> t -> unit
