(** Sparse matrices in compressed-sparse-row (CSR) form.

    Built from coordinate triplets (duplicates are summed, as produced
    naturally by device stamping); used with {!Gmres} for large
    systems. *)

type t

(** [of_triplets ~rows ~cols entries] builds a CSR matrix from
    [(i, j, value)] triplets.  Out-of-range indices raise
    [Invalid_argument]. *)
val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t

(** [of_dense a] converts a dense matrix, dropping exact zeros. *)
val of_dense : Mat.t -> t

(** [rows m], [cols m] — dimensions. *)
val rows : t -> int

val cols : t -> int

(** [nnz m] is the number of stored entries. *)
val nnz : t -> int

(** [matvec m v] is [m * v]. *)
val matvec : t -> Vec.t -> Vec.t

(** [tmatvec m v] is [m^T * v]. *)
val tmatvec : t -> Vec.t -> Vec.t

(** [to_dense m] materializes the matrix. *)
val to_dense : t -> Mat.t

(** [diagonal m] extracts the main diagonal (square matrices). *)
val diagonal : t -> Vec.t

(** [jacobi_preconditioner m] is [v -> v ./ diag m], for use as
    [Gmres.solve ~m_inv].  Raises [Failure] on a zero diagonal entry. *)
val jacobi_preconditioner : t -> Vec.t -> Vec.t
