type t = float array

let make n x = Array.make n x
let zeros n = Array.make n 0.
let init = Array.init
let copy = Array.copy

let check_same_length name u v =
  if Array.length u <> Array.length v then
    invalid_arg (Printf.sprintf "Vec.%s: length %d <> %d" name (Array.length u) (Array.length v))

let blit ~src ~dst =
  check_same_length "blit" src dst;
  Array.blit src 0 dst 0 (Array.length src)

let linspace a b n =
  if n < 2 then invalid_arg "Vec.linspace: n < 2";
  let h = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (float_of_int i *. h))

let add u v =
  check_same_length "add" u v;
  Array.mapi (fun i ui -> ui +. v.(i)) u

let sub u v =
  check_same_length "sub" u v;
  Array.mapi (fun i ui -> ui -. v.(i)) u

let scale a v = Array.map (fun x -> a *. x) v

let scale_inplace a v =
  for i = 0 to Array.length v - 1 do
    v.(i) <- a *. v.(i)
  done

let axpy ~a ~x y =
  check_same_length "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

(* Kahan-compensated sum of f i for i in [0, n). *)
let compensated_sum n f =
  let s = ref 0. and c = ref 0. in
  for i = 0 to n - 1 do
    let y = f i -. !c in
    let t = !s +. y in
    c := t -. !s -. y;
    s := t
  done;
  !s

let dot u v =
  check_same_length "dot" u v;
  compensated_sum (Array.length u) (fun i -> u.(i) *. v.(i))

let norm2 v = sqrt (dot v v)

let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. v
let norm1 v = compensated_sum (Array.length v) (fun i -> Float.abs v.(i))

let rms v =
  let n = Array.length v in
  if n = 0 then 0. else norm2 v /. sqrt (float_of_int n)

let dist_inf u v =
  check_same_length "dist_inf" u v;
  let m = ref 0. in
  for i = 0 to Array.length u - 1 do
    m := Float.max !m (Float.abs (u.(i) -. v.(i)))
  done;
  !m

let map = Array.map

let map2 f u v =
  check_same_length "map2" u v;
  Array.mapi (fun i ui -> f ui v.(i)) u

let max_abs_index v =
  if Array.length v = 0 then invalid_arg "Vec.max_abs_index: empty";
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if Float.abs v.(i) > Float.abs v.(!best) then best := i
  done;
  !best

let sum v = compensated_sum (Array.length v) (fun i -> v.(i))

let mean v =
  let n = Array.length v in
  if n = 0 then Float.nan else sum v /. float_of_int n

let weighted_norm ~scale v =
  check_same_length "weighted_norm" scale v;
  let m = ref 0. in
  for i = 0 to Array.length v - 1 do
    m := Float.max !m (Float.abs (v.(i) /. scale.(i)))
  done;
  !m

let approx_equal ?(tol = 1e-9) u v =
  Array.length u = Array.length v && dist_inf u v <= tol

let pp ppf v =
  Format.fprintf ppf "[@[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%.6g" x)
    v;
  Format.fprintf ppf "@]]"
