type t = {
  n_rows : int;
  n_cols : int;
  row_start : int array;  (* length n_rows + 1 *)
  col_index : int array;
  values : float array;
}

let of_triplets ~rows ~cols entries =
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg "Sparse.of_triplets: index out of range")
    entries;
  (* sum duplicates via a per-row association *)
  let tables = Array.init rows (fun _ -> Hashtbl.create 4) in
  List.iter
    (fun (i, j, v) ->
      let tbl = tables.(i) in
      Hashtbl.replace tbl j (v +. Option.value (Hashtbl.find_opt tbl j) ~default:0.))
    entries;
  let row_start = Array.make (rows + 1) 0 in
  for i = 0 to rows - 1 do
    row_start.(i + 1) <- row_start.(i) + Hashtbl.length tables.(i)
  done;
  let total = row_start.(rows) in
  let col_index = Array.make total 0 and values = Array.make total 0. in
  for i = 0 to rows - 1 do
    let cols_sorted =
      List.sort compare (Hashtbl.fold (fun j v acc -> (j, v) :: acc) tables.(i) [])
    in
    List.iteri
      (fun k (j, v) ->
        col_index.(row_start.(i) + k) <- j;
        values.(row_start.(i) + k) <- v)
      cols_sorted
  done;
  { n_rows = rows; n_cols = cols; row_start; col_index; values }

let of_dense a =
  let triplets = ref [] in
  for i = 0 to Mat.rows a - 1 do
    for j = 0 to Mat.cols a - 1 do
      if a.(i).(j) <> 0. then triplets := (i, j, a.(i).(j)) :: !triplets
    done
  done;
  of_triplets ~rows:(Mat.rows a) ~cols:(Mat.cols a) !triplets

let rows m = m.n_rows
let cols m = m.n_cols
let nnz m = Array.length m.values

let matvec m v =
  if Array.length v <> m.n_cols then invalid_arg "Sparse.matvec: dimension mismatch";
  Array.init m.n_rows (fun i ->
      let s = ref 0. in
      for k = m.row_start.(i) to m.row_start.(i + 1) - 1 do
        s := !s +. (m.values.(k) *. v.(m.col_index.(k)))
      done;
      !s)

let tmatvec m v =
  if Array.length v <> m.n_rows then invalid_arg "Sparse.tmatvec: dimension mismatch";
  let out = Array.make m.n_cols 0. in
  for i = 0 to m.n_rows - 1 do
    let vi = v.(i) in
    if vi <> 0. then
      for k = m.row_start.(i) to m.row_start.(i + 1) - 1 do
        out.(m.col_index.(k)) <- out.(m.col_index.(k)) +. (m.values.(k) *. vi)
      done
  done;
  out

let to_dense m =
  let a = Mat.zeros m.n_rows m.n_cols in
  for i = 0 to m.n_rows - 1 do
    for k = m.row_start.(i) to m.row_start.(i + 1) - 1 do
      a.(i).(m.col_index.(k)) <- a.(i).(m.col_index.(k)) +. m.values.(k)
    done
  done;
  a

let diagonal m =
  let n = Int.min m.n_rows m.n_cols in
  Array.init n (fun i ->
      let d = ref 0. in
      for k = m.row_start.(i) to m.row_start.(i + 1) - 1 do
        if m.col_index.(k) = i then d := !d +. m.values.(k)
      done;
      !d)

let jacobi_preconditioner m =
  let d = diagonal m in
  Array.iter (fun x -> if x = 0. then failwith "Sparse.jacobi_preconditioner: zero diagonal") d;
  fun v ->
    if Array.length v <> Array.length d then
      invalid_arg "Sparse.jacobi_preconditioner: dimension mismatch";
    Array.mapi (fun i x -> x /. d.(i)) v
