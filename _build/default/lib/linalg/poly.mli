(** Real-coefficient polynomials and complex root finding.

    Coefficients are stored constant-first: [c.(k)] multiplies [x^k].
    Roots are found with the Durand–Kerner (Weierstrass) simultaneous
    iteration, which is robust for the small/medium degrees arising
    from characteristic polynomials of monodromy matrices. *)

(** [eval c x] evaluates at a real point (Horner). *)
val eval : Vec.t -> float -> float

(** [eval_complex c z] evaluates at a complex point. *)
val eval_complex : Vec.t -> Cx.c -> Cx.c

(** [derivative c] are the coefficients of [d/dx]. *)
val derivative : Vec.t -> Vec.t

(** [roots ?max_iterations ?tol c] are all complex roots of the
    polynomial (degree = [length c - 1] after trailing zeros are
    stripped).  Raises [Invalid_argument] on the zero polynomial and
    [Failure] when the iteration does not converge. *)
val roots : ?max_iterations:int -> ?tol:float -> Vec.t -> Cx.Cvec.t

(** [from_roots rs] reconstructs monic-polynomial coefficients from
    complex roots (must come in conjugate pairs for a real result;
    the imaginary residue is dropped). *)
val from_roots : Cx.Cvec.t -> Vec.t
