(* Faddeev-LeVerrier: M_1 = A, c_{n-1} = -tr M_1;
   M_{k+1} = A (M_k + c_{n-k} I), c_{n-k-1} = -tr(M_{k+1}) / (k+1).
   Characteristic polynomial: lambda^n + c_{n-1} lambda^{n-1} + ... + c_0. *)
let char_poly a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Eig.char_poly: matrix not square";
  let trace m =
    let s = ref 0. in
    for i = 0 to n - 1 do
      s := !s +. m.(i).(i)
    done;
    !s
  in
  let coeffs = Array.make (n + 1) 0. in
  coeffs.(n) <- 1.;
  let m = ref (Mat.copy a) in
  for k = 1 to n do
    let c = -.trace !m /. float_of_int k in
    coeffs.(n - k) <- c;
    if k < n then begin
      (* M <- A (M + c I) *)
      let shifted = Mat.copy !m in
      for i = 0 to n - 1 do
        shifted.(i).(i) <- shifted.(i).(i) +. c
      done;
      m := Mat.mul a shifted
    end
  done;
  coeffs

let eigenvalues a = Poly.roots (char_poly a)

let spectral_radius a =
  Array.fold_left (fun acc z -> Float.max acc (Complex.norm z)) 0. (eigenvalues a)

let symmetric ?(tol = 1e-12) ?(max_sweeps = 50) a0 =
  let n = Mat.rows a0 in
  if Mat.cols a0 <> n then invalid_arg "Eig.symmetric: matrix not square";
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Float.abs (a0.(i).(j) -. a0.(j).(i)) > 1e-10 *. (1. +. Float.abs a0.(i).(j)) then
        invalid_arg "Eig.symmetric: matrix not symmetric"
    done
  done;
  let a = Mat.copy a0 in
  let v = Mat.identity n in
  let off () =
    let s = ref 0. in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        s := !s +. (a.(i).(j) *. a.(i).(j))
      done
    done;
    sqrt !s
  in
  let sweeps = ref 0 in
  while off () > tol && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        if Float.abs a.(p).(q) > 1e-300 then begin
          let theta = (a.(q).(q) -. a.(p).(p)) /. (2. *. a.(p).(q)) in
          let t =
            let sign = if theta >= 0. then 1. else -1. in
            sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          let s = t *. c in
          (* rotate rows/cols p, q of A and update V *)
          for k = 0 to n - 1 do
            let akp = a.(k).(p) and akq = a.(k).(q) in
            a.(k).(p) <- (c *. akp) -. (s *. akq);
            a.(k).(q) <- (s *. akp) +. (c *. akq)
          done;
          for k = 0 to n - 1 do
            let apk = a.(p).(k) and aqk = a.(q).(k) in
            a.(p).(k) <- (c *. apk) -. (s *. aqk);
            a.(q).(k) <- (s *. apk) +. (c *. aqk)
          done;
          for k = 0 to n - 1 do
            let vkp = v.(k).(p) and vkq = v.(k).(q) in
            v.(k).(p) <- (c *. vkp) -. (s *. vkq);
            v.(k).(q) <- (s *. vkp) +. (c *. vkq)
          done
        end
      done
    done
  done;
  let pairs = Array.init n (fun i -> (a.(i).(i), i)) in
  Array.sort compare pairs;
  let eigs = Array.map fst pairs in
  let vecs = Mat.init n n (fun i j -> v.(i).(snd pairs.(j))) in
  (eigs, vecs)

let power_iteration ?(max_iterations = 2000) ?(tol = 1e-12) a =
  let n = Mat.rows a in
  let x = ref (Vec.init n (fun i -> 1. +. (0.01 *. float_of_int i))) in
  let lambda = ref 0. in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < max_iterations do
    incr iter;
    let y = Mat.matvec a !x in
    let norm = Vec.norm2 y in
    if norm = 0. then failwith "Eig.power_iteration: hit the null space";
    let y = Vec.scale (1. /. norm) y in
    let l = Vec.dot y (Mat.matvec a y) in
    if Float.abs (l -. !lambda) <= tol *. Float.max 1. (Float.abs l) then converged := true;
    lambda := l;
    x := y
  done;
  if not !converged then failwith "Eig.power_iteration: no convergence";
  (!lambda, !x)
