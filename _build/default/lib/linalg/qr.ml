(* Householder QR: reflectors stored in the lower trapezoid of [a],
   scalar factors in [beta], diagonal of R in [rdiag]. *)
type t = { a : float array array; beta : float array; rdiag : float array }

let factor a0 =
  let m = Mat.rows a0 and n = Mat.cols a0 in
  if m < n then invalid_arg "Qr.factor: need rows >= cols";
  let a = Mat.copy a0 in
  let beta = Array.make n 0. and rdiag = Array.make n 0. in
  for k = 0 to n - 1 do
    (* Householder vector for column k *)
    let norm = ref 0. in
    for i = k to m - 1 do
      norm := !norm +. (a.(i).(k) *. a.(i).(k))
    done;
    let norm = sqrt !norm in
    if norm = 0. then begin
      beta.(k) <- 0.;
      rdiag.(k) <- 0.
    end
    else begin
      let alpha = if a.(k).(k) >= 0. then -.norm else norm in
      let v0 = a.(k).(k) -. alpha in
      a.(k).(k) <- v0;
      (* beta = 2 / (v^T v) with v = column k below the diagonal *)
      let vtv = ref 0. in
      for i = k to m - 1 do
        vtv := !vtv +. (a.(i).(k) *. a.(i).(k))
      done;
      beta.(k) <- (if !vtv = 0. then 0. else 2. /. !vtv);
      rdiag.(k) <- alpha;
      (* apply reflector to the remaining columns *)
      for j = k + 1 to n - 1 do
        let s = ref 0. in
        for i = k to m - 1 do
          s := !s +. (a.(i).(k) *. a.(i).(j))
        done;
        let s = beta.(k) *. !s in
        for i = k to m - 1 do
          a.(i).(j) <- a.(i).(j) -. (s *. a.(i).(k))
        done
      done
    end
  done;
  { a; beta; rdiag }

let cols { a; _ } = Mat.cols a
let rows { a; _ } = Mat.rows a

let r qr =
  let n = cols qr in
  Mat.init n n (fun i j ->
      if i = j then qr.rdiag.(i) else if j > i then qr.a.(i).(j) else 0.)

(* apply Q^T to a length-m vector in place *)
let apply_qt qr b =
  let m = rows qr and n = cols qr in
  for k = 0 to n - 1 do
    if qr.beta.(k) <> 0. then begin
      let s = ref 0. in
      for i = k to m - 1 do
        s := !s +. (qr.a.(i).(k) *. b.(i))
      done;
      let s = qr.beta.(k) *. !s in
      for i = k to m - 1 do
        b.(i) <- b.(i) -. (s *. qr.a.(i).(k))
      done
    end
  done

(* apply Q to a length-m vector in place (reflectors in reverse) *)
let apply_q qr b =
  let m = rows qr and n = cols qr in
  for k = n - 1 downto 0 do
    if qr.beta.(k) <> 0. then begin
      let s = ref 0. in
      for i = k to m - 1 do
        s := !s +. (qr.a.(i).(k) *. b.(i))
      done;
      let s = qr.beta.(k) *. !s in
      for i = k to m - 1 do
        b.(i) <- b.(i) -. (s *. qr.a.(i).(k))
      done
    end
  done

let q qr =
  let m = rows qr and n = cols qr in
  Mat.init m n (fun i j ->
      ignore i;
      ignore j;
      0.)
  |> fun qmat ->
  for j = 0 to n - 1 do
    let e = Array.make m 0. in
    e.(j) <- 1.;
    apply_q qr e;
    for i = 0 to m - 1 do
      qmat.(i).(j) <- e.(i)
    done
  done;
  qmat

let solve qr b =
  let m = rows qr and n = cols qr in
  if Array.length b <> m then invalid_arg "Qr.solve: dimension mismatch";
  let y = Array.copy b in
  apply_qt qr y;
  (* back substitution on R *)
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    if qr.rdiag.(i) = 0. then failwith "Qr.solve: rank-deficient matrix";
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (qr.a.(i).(j) *. x.(j))
    done;
    x.(i) <- !s /. qr.rdiag.(i)
  done;
  x

let lstsq a b = solve (factor a) b

let polyfit ~degree xs ys =
  if Array.length xs <> Array.length ys then invalid_arg "Qr.polyfit: length mismatch";
  if Array.length xs < degree + 1 then invalid_arg "Qr.polyfit: not enough points";
  let vander = Mat.init (Array.length xs) (degree + 1) (fun i j -> xs.(i) ** float_of_int j) in
  lstsq vander ys
