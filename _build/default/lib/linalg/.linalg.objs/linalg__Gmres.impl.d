lib/linalg/gmres.ml: Array Float Mat Vec
