lib/linalg/poly.ml: Array Complex Cx Float
