lib/linalg/sparse.ml: Array Hashtbl Int List Mat Option
