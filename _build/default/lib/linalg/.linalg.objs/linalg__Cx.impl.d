lib/linalg/cx.ml: Array Complex Float
