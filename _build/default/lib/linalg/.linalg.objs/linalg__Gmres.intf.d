lib/linalg/gmres.mli: Mat Vec
