lib/linalg/eig.ml: Array Complex Float Mat Poly Vec
