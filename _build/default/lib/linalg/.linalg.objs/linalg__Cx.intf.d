lib/linalg/cx.mli: Complex Vec
