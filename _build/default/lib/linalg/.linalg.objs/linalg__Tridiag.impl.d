lib/linalg/tridiag.ml: Array Int
