lib/linalg/poly.mli: Cx Vec
