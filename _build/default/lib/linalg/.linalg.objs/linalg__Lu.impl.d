lib/linalg/lu.ml: Array Float Int Mat Vec
