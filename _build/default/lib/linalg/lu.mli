(** LU factorization with partial pivoting, and direct linear solves.

    The factorization is the workhorse behind every Newton iteration in
    the transient, steady-state and WaMPDE solvers. *)

type t
(** A factored matrix [P A = L U]. *)

exception Singular of int
(** Raised (with the offending pivot column) when a pivot is exactly
    zero, i.e. the matrix is numerically singular. *)

(** [factor a] factors a square matrix.  [a] is not modified.
    Raises [Singular] if a zero pivot is met and [Invalid_argument]
    if [a] is not square. *)
val factor : Mat.t -> t

(** [dim lu] is the dimension of the factored matrix. *)
val dim : t -> int

(** [solve lu b] solves [A x = b]. *)
val solve : t -> Vec.t -> Vec.t

(** [solve_inplace lu b] solves [A x = b] overwriting [b] with [x]. *)
val solve_inplace : t -> Vec.t -> unit

(** [solve_matrix lu b] solves [A X = B] column by column. *)
val solve_matrix : t -> Mat.t -> Mat.t

(** [det lu] is the determinant of the factored matrix. *)
val det : t -> float

(** [inverse lu] is the explicit inverse (prefer [solve]). *)
val inverse : t -> Mat.t

(** [solve_dense a b] is [solve (factor a) b]. *)
val solve_dense : Mat.t -> Vec.t -> Vec.t

(** [condition_estimate a] is a cheap lower-bound estimate of the
    infinity-norm condition number, via one factor + a few solves. *)
val condition_estimate : Mat.t -> float
