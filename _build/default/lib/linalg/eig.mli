(** Eigenvalue computations.

    [eigenvalues] targets the small nonsymmetric matrices arising as
    monodromy matrices of periodic orbits (Floquet analysis): the
    characteristic polynomial is formed exactly with the
    Faddeev–LeVerrier recurrence and its roots found with
    Durand–Kerner.  Intended for [n <~ 12]; for larger symmetric
    problems use {!symmetric} (cyclic Jacobi). *)

(** [char_poly a] are the characteristic-polynomial coefficients of a
    square matrix, constant term first, leading coefficient
    [(-1)^n]-normalized to monic. *)
val char_poly : Mat.t -> Vec.t

(** [eigenvalues a] are the complex eigenvalues of a small square
    matrix. *)
val eigenvalues : Mat.t -> Cx.Cvec.t

(** [spectral_radius a] is the largest eigenvalue modulus. *)
val spectral_radius : Mat.t -> float

(** [symmetric ?tol ?max_sweeps a] diagonalizes a symmetric matrix by
    the cyclic Jacobi method, returning [(eigenvalues, eigenvectors)]
    with eigenvectors in columns, eigenvalues in ascending order.
    Raises [Invalid_argument] if [a] is not symmetric. *)
val symmetric : ?tol:float -> ?max_sweeps:int -> Mat.t -> Vec.t * Mat.t

(** [power_iteration ?max_iterations ?tol a] returns the dominant
    eigenvalue (by modulus, assumed real) and its eigenvector; a cheap
    alternative for large matrices.  Raises [Failure] when not
    converged (e.g. complex dominant pair). *)
val power_iteration : ?max_iterations:int -> ?tol:float -> Mat.t -> float * Vec.t
