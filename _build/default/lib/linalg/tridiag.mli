(** Tridiagonal and cyclic-tridiagonal solves (Thomas algorithm and the
    Sherman–Morrison variant for periodic coupling). *)

(** [solve ~lower ~diag ~upper rhs] solves the tridiagonal system with
    the given bands.  [lower] and [upper] have length [n - 1], [diag]
    and [rhs] length [n].  Raises [Failure] on a zero pivot (no
    pivoting is performed; intended for diagonally dominant systems
    arising from 1-D discretizations). *)
val solve : lower:Vec.t -> diag:Vec.t -> upper:Vec.t -> Vec.t -> Vec.t

(** [solve_cyclic ~lower ~diag ~upper ~corner_low ~corner_high rhs]
    solves the cyclic tridiagonal system with additional corner entries
    [A.(0).(n-1) = corner_high] and [A.(n-1).(0) = corner_low], via
    Sherman–Morrison.  All bands as in {!solve}. *)
val solve_cyclic :
  lower:Vec.t -> diag:Vec.t -> upper:Vec.t -> corner_low:float -> corner_high:float -> Vec.t -> Vec.t
