(** Householder QR factorization and linear least squares. *)

type t
(** A factored [m x n] matrix ([m >= n]) with orthonormal [Q] implicit
    in Householder reflectors. *)

(** [factor a] factors [a] ([rows >= cols]).  Raises [Invalid_argument]
    when [rows < cols]. *)
val factor : Mat.t -> t

(** [r qr] is the upper-triangular [n x n] factor. *)
val r : t -> Mat.t

(** [q qr] materializes the thin [m x n] orthonormal factor. *)
val q : t -> Mat.t

(** [solve qr b] solves the least-squares problem [min ||A x - b||_2].
    Raises [Failure] if [R] is singular (rank-deficient [A]). *)
val solve : t -> Vec.t -> Vec.t

(** [lstsq a b] is [solve (factor a) b]. *)
val lstsq : Mat.t -> Vec.t -> Vec.t

(** [polyfit ~degree xs ys] fits a polynomial of the given degree in
    the least-squares sense and returns coefficients [c0..cd]
    (constant first). *)
val polyfit : degree:int -> Vec.t -> Vec.t -> Vec.t
