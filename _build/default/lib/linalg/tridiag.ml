let solve ~lower ~diag ~upper rhs =
  let n = Array.length diag in
  if Array.length rhs <> n || Array.length lower <> n - 1 || Array.length upper <> n - 1 then
    invalid_arg "Tridiag.solve: band length mismatch";
  let c' = Array.make (Int.max 0 (n - 1)) 0. in
  let d' = Array.make n 0. in
  if diag.(0) = 0. then failwith "Tridiag.solve: zero pivot";
  if n > 1 then c'.(0) <- upper.(0) /. diag.(0);
  d'.(0) <- rhs.(0) /. diag.(0);
  for i = 1 to n - 1 do
    let denom = diag.(i) -. (lower.(i - 1) *. (if i - 1 < n - 1 then c'.(i - 1) else 0.)) in
    if denom = 0. then failwith "Tridiag.solve: zero pivot";
    if i < n - 1 then c'.(i) <- upper.(i) /. denom;
    d'.(i) <- (rhs.(i) -. (lower.(i - 1) *. d'.(i - 1))) /. denom
  done;
  let x = Array.make n 0. in
  x.(n - 1) <- d'.(n - 1);
  for i = n - 2 downto 0 do
    x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
  done;
  x

(* Cyclic variant via Sherman-Morrison: write A = B + u v^T with
   u = (gamma, 0..0, corner_low)^T and v = (1, 0..0, corner_high/gamma)^T,
   where B is tridiagonal with modified first and last diagonal entries. *)
let solve_cyclic ~lower ~diag ~upper ~corner_low ~corner_high rhs =
  let n = Array.length diag in
  if n < 3 then invalid_arg "Tridiag.solve_cyclic: n < 3";
  let gamma = -.diag.(0) in
  let diag' = Array.copy diag in
  diag'.(0) <- diag.(0) -. gamma;
  diag'.(n - 1) <- diag.(n - 1) -. (corner_low *. corner_high /. gamma);
  let y = solve ~lower ~diag:diag' ~upper rhs in
  let u = Array.make n 0. in
  u.(0) <- gamma;
  u.(n - 1) <- corner_low;
  let z = solve ~lower ~diag:diag' ~upper u in
  let vy = y.(0) +. (corner_high /. gamma *. y.(n - 1)) in
  let vz = z.(0) +. (corner_high /. gamma *. z.(n - 1)) in
  let factor = vy /. (1. +. vz) in
  Array.init n (fun i -> y.(i) -. (factor *. z.(i)))
