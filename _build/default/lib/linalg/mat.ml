type t = float array array

let make r c x = Array.init r (fun _ -> Array.make c x)
let zeros r c = make r c 0.
let init r c f = Array.init r (fun i -> Array.init c (fun j -> f i j))
let identity n = init n n (fun i j -> if i = j then 1. else 0.)
let diag v = init (Array.length v) (Array.length v) (fun i j -> if i = j then v.(i) else 0.)
let rows m = Array.length m
let cols m = if Array.length m = 0 then 0 else Array.length m.(0)
let copy m = Array.map Array.copy m
let transpose m = init (cols m) (rows m) (fun i j -> m.(j).(i))

let check_same_dims name a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg
      (Printf.sprintf "Mat.%s: dims %dx%d <> %dx%d" name (rows a) (cols a) (rows b) (cols b))

let add a b =
  check_same_dims "add" a b;
  init (rows a) (cols a) (fun i j -> a.(i).(j) +. b.(i).(j))

let sub a b =
  check_same_dims "sub" a b;
  init (rows a) (cols a) (fun i j -> a.(i).(j) -. b.(i).(j))

let scale s m = Array.map (fun row -> Array.map (fun x -> s *. x) row) m

let mul a b =
  if cols a <> rows b then
    invalid_arg (Printf.sprintf "Mat.mul: %dx%d * %dx%d" (rows a) (cols a) (rows b) (cols b));
  let r = rows a and n = cols a and c = cols b in
  let m = zeros r c in
  for i = 0 to r - 1 do
    let ai = a.(i) and mi = m.(i) in
    for k = 0 to n - 1 do
      let aik = ai.(k) in
      if aik <> 0. then begin
        let bk = b.(k) in
        for j = 0 to c - 1 do
          mi.(j) <- mi.(j) +. (aik *. bk.(j))
        done
      end
    done
  done;
  m

let matvec_into m v ~dst =
  if cols m <> Array.length v then invalid_arg "Mat.matvec: dimension mismatch";
  if rows m <> Array.length dst then invalid_arg "Mat.matvec: bad destination";
  for i = 0 to rows m - 1 do
    let row = m.(i) in
    let s = ref 0. in
    for j = 0 to Array.length row - 1 do
      s := !s +. (row.(j) *. v.(j))
    done;
    dst.(i) <- !s
  done

let matvec m v =
  let dst = Array.make (rows m) 0. in
  matvec_into m v ~dst;
  dst

let tmatvec m v =
  if rows m <> Array.length v then invalid_arg "Mat.tmatvec: dimension mismatch";
  let dst = Array.make (cols m) 0. in
  for i = 0 to rows m - 1 do
    let row = m.(i) and vi = v.(i) in
    if vi <> 0. then
      for j = 0 to Array.length row - 1 do
        dst.(j) <- dst.(j) +. (row.(j) *. vi)
      done
  done;
  dst

let axpy ~a ~x y =
  check_same_dims "axpy" x y;
  for i = 0 to rows x - 1 do
    for j = 0 to cols x - 1 do
      y.(i).(j) <- y.(i).(j) +. (a *. x.(i).(j))
    done
  done

let norm_inf m =
  Array.fold_left
    (fun acc row -> Float.max acc (Array.fold_left (fun s x -> s +. Float.abs x) 0. row))
    0. m

let frobenius m =
  sqrt (Array.fold_left (fun acc row -> acc +. Array.fold_left (fun s x -> s +. (x *. x)) 0. row) 0. m)

let approx_equal ?(tol = 1e-9) a b =
  rows a = rows b && cols a = cols b
  &&
  let ok = ref true in
  for i = 0 to rows a - 1 do
    for j = 0 to cols a - 1 do
      if Float.abs (a.(i).(j) -. b.(i).(j)) > tol then ok := false
    done
  done;
  !ok

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iter (fun row -> Format.fprintf ppf "%a@," Vec.pp row) m;
  Format.fprintf ppf "@]"
