let eval c x =
  let s = ref 0. in
  for k = Array.length c - 1 downto 0 do
    s := (!s *. x) +. c.(k)
  done;
  !s

let eval_complex c z =
  let s = ref Complex.zero in
  for k = Array.length c - 1 downto 0 do
    s := Complex.add (Complex.mul !s z) (Cx.cx c.(k) 0.)
  done;
  !s

let derivative c =
  let n = Array.length c in
  if n <= 1 then [| 0. |]
  else Array.init (n - 1) (fun k -> float_of_int (k + 1) *. c.(k + 1))

let strip c =
  let n = ref (Array.length c) in
  while !n > 1 && c.(!n - 1) = 0. do
    decr n
  done;
  Array.sub c 0 !n

(* Durand-Kerner: iterate z_i <- z_i - p(z_i) / prod_{j<>i} (z_i - z_j)
   on the monic normalization of p, starting from points on a
   non-symmetric circle. *)
let roots ?(max_iterations = 500) ?(tol = 1e-12) c =
  let c = strip c in
  let degree = Array.length c - 1 in
  if degree < 0 || (degree = 0 && c.(0) = 0.) then invalid_arg "Poly.roots: zero polynomial";
  if degree = 0 then [||]
  else begin
    let lead = c.(degree) in
    let monic = Array.map (fun x -> x /. lead) c in
    (* radius bound: 1 + max |c_k| *)
    let radius =
      1. +. Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. monic
    in
    let z =
      Array.init degree (fun i ->
          Cx.polar (radius *. 0.5)
            ((2. *. Float.pi *. float_of_int i /. float_of_int degree) +. 0.4))
    in
    let converged = ref false in
    let iter = ref 0 in
    while (not !converged) && !iter < max_iterations do
      incr iter;
      let worst = ref 0. in
      for i = 0 to degree - 1 do
        let p = eval_complex monic z.(i) in
        let denom = ref Complex.one in
        for j = 0 to degree - 1 do
          if j <> i then denom := Complex.mul !denom (Complex.sub z.(i) z.(j))
        done;
        let delta =
          if Complex.norm !denom < 1e-300 then Cx.cx 1e-8 1e-8
          else Complex.div p !denom
        in
        z.(i) <- Complex.sub z.(i) delta;
        worst := Float.max !worst (Complex.norm delta)
      done;
      if !worst <= tol *. Float.max 1. radius then converged := true
    done;
    if not !converged then failwith "Poly.roots: Durand-Kerner did not converge";
    (* polish: snap near-real roots to the real axis *)
    Array.map
      (fun zi ->
        if Float.abs (Cx.im zi) < 1e-9 *. Float.max 1. (Float.abs (Cx.re zi)) then
          Cx.cx (Cx.re zi) 0.
        else zi)
      z
  end

let from_roots rs =
  let acc = ref [| Complex.one |] in
  Array.iter
    (fun r ->
      let prev = !acc in
      let n = Array.length prev in
      let next = Array.make (n + 1) Complex.zero in
      for k = 0 to n - 1 do
        (* multiply by (x - r) *)
        next.(k + 1) <- Complex.add next.(k + 1) prev.(k);
        next.(k) <- Complex.sub next.(k) (Complex.mul r prev.(k))
      done;
      acc := next)
    rs;
  Array.map Cx.re !acc
