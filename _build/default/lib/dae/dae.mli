(** Differential-algebraic systems in the charge/flux form of the
    paper's eq. (12):

    [d/dt q(x(t)) + f(t, x(t)) = 0]

    where the forcing [b(t)] of the paper is folded into [f] with a
    sign flip ([f_here (t, x) = f_paper (x) - b (t)]).  In the circuit
    context [x] collects node voltages and branch currents, [q] the
    charges and fluxes, and [f] the resistive terms.

    For the WaMPDE the time argument of [f] is the {e slow} (unwarped)
    time scale [t2]; systems intended for warped simulation must keep
    all fast dynamics autonomous inside [f]'s state dependence. *)

open Linalg

type t = {
  dim : int;  (** state dimension *)
  q : Vec.t -> Vec.t;  (** charge/flux function *)
  f : t:float -> Vec.t -> Vec.t;  (** resistive term including forcing *)
  dq : Vec.t -> Mat.t;  (** [C(x) = dq/dx] *)
  df : t:float -> Vec.t -> Mat.t;  (** [G(t, x) = df/dx] *)
  var_names : string array;  (** length [dim], for reporting *)
}

(** [make ~dim ~q ~f ()] builds a system; omitted Jacobians fall back
    to forward finite differences of [q] and [f].  [var_names]
    defaults to [x0, x1, ...].  Raises [Invalid_argument] if supplied
    [var_names] has the wrong length. *)
val make :
  dim:int ->
  q:(Vec.t -> Vec.t) ->
  f:(t:float -> Vec.t -> Vec.t) ->
  ?dq:(Vec.t -> Mat.t) ->
  ?df:(t:float -> Vec.t -> Mat.t) ->
  ?var_names:string array ->
  unit ->
  t

(** [of_ode ~dim ~rhs ()] wraps an explicit ODE [x' = rhs t x] as a DAE
    with [q = identity], [f = -rhs].  [drhs], if given, is the ODE
    Jacobian. *)
val of_ode :
  dim:int ->
  rhs:(t:float -> Vec.t -> Vec.t) ->
  ?drhs:(t:float -> Vec.t -> Mat.t) ->
  ?var_names:string array ->
  unit ->
  t

(** [residual dae ~t ~xdot x] is [dq/dx (x) xdot + f (t, x)], the DAE
    residual for a given state derivative estimate. *)
val residual : t -> t:float -> xdot:Vec.t -> Vec.t -> Vec.t

(** [consistent_derivative dae ~t x] solves [C(x) xdot = -f(t, x)] for
    the state derivative at a consistent point.  Raises [Failure] when
    [C(x)] is singular (a genuinely algebraic constraint); use an
    implicit integrator in that case. *)
val consistent_derivative : t -> t:float -> Vec.t -> Vec.t

(** [dc_operating_point ?x0 dae] solves [f(t0, x) = 0] (with
    [t0 = 0.]): the DC equilibrium with all dynamic elements frozen. *)
val dc_operating_point : ?x0:Vec.t -> t -> Nonlin.Newton.report
