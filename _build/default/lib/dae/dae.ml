open Linalg

type t = {
  dim : int;
  q : Vec.t -> Vec.t;
  f : t:float -> Vec.t -> Vec.t;
  dq : Vec.t -> Mat.t;
  df : t:float -> Vec.t -> Mat.t;
  var_names : string array;
}

let default_names dim = Array.init dim (Printf.sprintf "x%d")

let make ~dim ~q ~f ?dq ?df ?var_names () =
  let var_names = match var_names with Some v -> v | None -> default_names dim in
  if Array.length var_names <> dim then invalid_arg "Dae.make: var_names length mismatch";
  let dq = match dq with Some d -> d | None -> fun x -> Nonlin.Fdjac.jacobian q x in
  let df = match df with Some d -> d | None -> fun ~t x -> Nonlin.Fdjac.jacobian (fun y -> f ~t y) x in
  { dim; q; f; dq; df; var_names }

let of_ode ~dim ~rhs ?drhs ?var_names () =
  let q x = Array.copy x in
  let f ~t x = Vec.scale (-1.) (rhs ~t x) in
  let dq x = Mat.identity (Array.length x) in
  let df =
    match drhs with
    | Some d -> Some (fun ~t x -> Mat.scale (-1.) (d ~t x))
    | None -> None
  in
  make ~dim ~q ~f ~dq ?df ?var_names ()

let residual dae ~t ~xdot x =
  let c = dae.dq x in
  let r = Mat.matvec c xdot in
  let fx = dae.f ~t x in
  Vec.add r fx

let consistent_derivative dae ~t x =
  let c = dae.dq x in
  let rhs = Vec.scale (-1.) (dae.f ~t x) in
  match Lu.factor c with
  | exception Lu.Singular _ ->
    failwith "Dae.consistent_derivative: singular dq/dx (algebraic constraint present)"
  | lu -> Lu.solve lu rhs

let dc_operating_point ?x0 dae =
  let x0 = match x0 with Some x -> x | None -> Array.make dae.dim 0. in
  Nonlin.Newton.solve
    ~jacobian:(fun x -> dae.df ~t:0. x)
    ~residual:(fun x -> dae.f ~t:0. x)
    x0
