(* Tests for FFT, Fourier series, spectral differentiation and spectra. *)
open Linalg
open Fourier

let approx = Alcotest.(check (float 1e-9))
let approx_tol tol = Alcotest.(check (float tol))
let two_pi = 2. *. Float.pi

let fft_tests =
  [
    Alcotest.test_case "fft of impulse is flat" `Quick (fun () ->
        let x = Cx.Cvec.zeros 8 in
        x.(0) <- Complex.one;
        let y = Fft.fft x in
        Array.iter (fun z -> approx "re" 1. (Cx.re z)) y);
    Alcotest.test_case "fft matches dft (power of two)" `Quick (fun () ->
        let x = Cx.Cvec.init 16 (fun i -> Cx.cx (sin (0.3 *. float_of_int i)) (cos (float_of_int i))) in
        Alcotest.(check bool) "eq" true (Cx.Cvec.approx_equal ~tol:1e-9 (Fft.fft x) (Fft.dft x)));
    Alcotest.test_case "fft matches dft (odd size, Bluestein)" `Quick (fun () ->
        let x = Cx.Cvec.init 15 (fun i -> Cx.cx (cos (0.7 *. float_of_int i)) 0.) in
        Alcotest.(check bool) "eq" true (Cx.Cvec.approx_equal ~tol:1e-8 (Fft.fft x) (Fft.dft x)));
    Alcotest.test_case "fft matches dft (prime size)" `Quick (fun () ->
        let x = Cx.Cvec.init 31 (fun i -> Cx.cx (float_of_int (i mod 5)) (float_of_int (i mod 3))) in
        Alcotest.(check bool) "eq" true (Cx.Cvec.approx_equal ~tol:1e-8 (Fft.fft x) (Fft.dft x)));
    Alcotest.test_case "single sinusoid lands in one bin" `Quick (fun () ->
        let n = 64 in
        let x = Vec.init n (fun i -> cos (two_pi *. 4. *. float_of_int i /. float_of_int n)) in
        let y = Fft.fft_real x in
        approx_tol 1e-8 "bin 4" (float_of_int n /. 2.) (Complex.norm y.(4));
        approx_tol 1e-8 "bin 5" 0. (Complex.norm y.(5)));
    Alcotest.test_case "next_power_of_two" `Quick (fun () ->
        Alcotest.(check int) "5" 8 (Fft.next_power_of_two 5);
        Alcotest.(check int) "8" 8 (Fft.next_power_of_two 8);
        Alcotest.(check int) "1" 1 (Fft.next_power_of_two 1));
  ]

let series_tests =
  [
    Alcotest.test_case "coeffs of cosine" `Quick (fun () ->
        let n = 21 in
        let x = Vec.init n (fun j -> cos (two_pi *. float_of_int j /. float_of_int n)) in
        let c = Series.coeffs x in
        approx_tol 1e-10 "c1 re" 0.5 (Cx.re (Series.harmonic c 1));
        approx_tol 1e-10 "c-1 re" 0.5 (Cx.re (Series.harmonic c (-1)));
        approx_tol 1e-10 "c0" 0. (Complex.norm (Series.harmonic c 0));
        approx_tol 1e-10 "c2" 0. (Complex.norm (Series.harmonic c 2)));
    Alcotest.test_case "eval reproduces samples" `Quick (fun () ->
        let n = 15 and period = 2.5 in
        let f t = 1.2 +. sin (two_pi *. t /. period) -. (0.3 *. cos (2. *. two_pi *. t /. period)) in
        let x = Vec.init n (fun j -> f (period *. float_of_int j /. float_of_int n)) in
        let c = Series.coeffs x in
        for j = 0 to n - 1 do
          let t = period *. float_of_int j /. float_of_int n in
          approx_tol 1e-9 "sample" x.(j) (Series.eval c ~period t);
          approx_tol 1e-9 "interp off-grid" (f (t +. 0.01)) (Series.interp x ~period (t +. 0.01))
        done);
    Alcotest.test_case "derivative coefficients" `Quick (fun () ->
        let n = 15 and period = 1. in
        let x = Vec.init n (fun j -> sin (two_pi *. float_of_int j /. float_of_int n)) in
        let dc = Series.derivative (Series.coeffs x) ~period in
        approx_tol 1e-9 "d/dt sin = 2pi cos at 0" two_pi (Series.eval dc ~period 0.));
    Alcotest.test_case "spectral diff matrix is exact on trig polynomials" `Quick (fun () ->
        let n = 11 in
        let d = Series.diff_matrix n in
        let grid j = float_of_int j /. float_of_int n in
        let x = Vec.init n (fun j -> sin (two_pi *. grid j) +. (0.5 *. cos (3. *. two_pi *. grid j))) in
        let dx_exact =
          Vec.init n (fun j ->
              (two_pi *. cos (two_pi *. grid j)) -. (1.5 *. two_pi *. sin (3. *. two_pi *. grid j)))
        in
        Alcotest.(check bool) "exact" true (Vec.approx_equal ~tol:1e-8 (Mat.matvec d x) dx_exact));
    Alcotest.test_case "fd diff matrices converge at expected order" `Quick (fun () ->
        let err order n =
          let d = Series.diff_matrix_fd ~order n in
          let grid j = float_of_int j /. float_of_int n in
          let x = Vec.init n (fun j -> sin (two_pi *. grid j)) in
          let dx = Vec.init n (fun j -> two_pi *. cos (two_pi *. grid j)) in
          Vec.dist_inf (Mat.matvec d x) dx
        in
        let r2 = err 2 16 /. err 2 32 in
        let r4 = err 4 16 /. err 4 32 in
        Alcotest.(check bool) "order 2 ratio ~ 4" true (r2 > 3.5 && r2 < 4.5);
        Alcotest.(check bool) "order 4 ratio ~ 16" true (r4 > 13. && r4 < 19.));
    Alcotest.test_case "resample preserves trig polynomial" `Quick (fun () ->
        let f t = cos (two_pi *. t) -. (0.2 *. sin (2. *. two_pi *. t)) in
        let x = Vec.init 11 (fun j -> f (float_of_int j /. 11.)) in
        let y = Series.resample x 33 in
        for j = 0 to 32 do
          approx_tol 1e-9 "resampled" (f (float_of_int j /. 33.)) y.(j)
        done);
    Alcotest.test_case "harmonics_needed for pure tone is 1" `Quick (fun () ->
        let x = Vec.init 31 (fun j -> sin (two_pi *. float_of_int j /. 31.)) in
        Alcotest.(check int) "needed" 1 (Series.harmonics_needed ~tol:1e-10 x));
    Alcotest.test_case "thd of pure tone is ~0, of square wave is ~0.48" `Quick (fun () ->
        let pure = Vec.init 63 (fun j -> sin (two_pi *. float_of_int j /. 63.)) in
        approx_tol 1e-8 "pure" 0. (Series.total_harmonic_distortion (Series.coeffs pure));
        let square = Vec.init 1023 (fun j -> if j < 512 then 1. else -1.) in
        let thd = Series.total_harmonic_distortion (Series.coeffs square) in
        Alcotest.(check bool) "square" true (thd > 0.4 && thd < 0.55));
    Alcotest.test_case "even length rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Series.coeffs [| 1.; 2. |]);
             false
           with Invalid_argument _ -> true));
  ]

let spectrum_tests =
  [
    Alcotest.test_case "dominant frequency of pure tone" `Quick (fun () ->
        let fs = 1000. and f0 = 50. in
        let n = 1024 in
        let x = Vec.init n (fun i -> sin (two_pi *. f0 *. float_of_int i /. fs)) in
        let est = Spectrum.dominant_frequency ~dt:(1. /. fs) x in
        Alcotest.(check bool) "within 0.5 Hz" true (Float.abs (est -. f0) < 0.5));
    Alcotest.test_case "magnitudes of DC" `Quick (fun () ->
        let mags = Spectrum.magnitudes (Vec.make 16 3.) in
        approx "dc" 3. mags.(0);
        approx "ac" 0. mags.(1));
    Alcotest.test_case "frequencies spacing" `Quick (fun () ->
        let f = Spectrum.frequencies ~dt:0.01 100 in
        approx "df" 1. (f.(1) -. f.(0)));
  ]

let prop_tests =
  let open QCheck in
  let sig_gen n = Gen.array_size (Gen.return n) (Gen.float_range (-10.) 10.) in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"fft roundtrip" ~count:50 (make (sig_gen 24)) (fun x ->
           let cv = Cx.Cvec.of_real x in
           Cx.Cvec.approx_equal ~tol:1e-8 (Fft.ifft (Fft.fft cv)) cv));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"fft roundtrip (non power of two)" ~count:30 (make (sig_gen 21))
         (fun x ->
           let cv = Cx.Cvec.of_real x in
           Cx.Cvec.approx_equal ~tol:1e-7 (Fft.ifft (Fft.fft cv)) cv));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"parseval" ~count:50 (make (sig_gen 32)) (fun x ->
           let y = Fft.fft_real x in
           let time_energy = Vec.dot x x in
           let freq_energy =
             Array.fold_left (fun s z -> s +. Complex.norm2 z) 0. y /. 32.
           in
           Float.abs (time_energy -. freq_energy) <= 1e-6 *. (1. +. time_energy)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"series eval on grid = samples" ~count:30 (make (sig_gen 13)) (fun x ->
           let c = Series.coeffs x in
           let ok = ref true in
           for j = 0 to 12 do
             if Float.abs (Series.eval c ~period:1. (float_of_int j /. 13.) -. x.(j)) > 1e-7 then
               ok := false
           done;
           !ok));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"diff matrix annihilates constants" ~count:20
         (make (Gen.float_range (-5.) 5.)) (fun c ->
           let d = Series.diff_matrix 9 in
           Vec.norm_inf (Mat.matvec d (Vec.make 9 c)) < 1e-9));
  ]

let suites =
  [
    ("fourier.fft", fft_tests);
    ("fourier.series", series_tests);
    ("fourier.spectrum", spectrum_tests);
    ("fourier.properties", prop_tests);
  ]
