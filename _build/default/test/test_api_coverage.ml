(* Coverage sweep over smaller public API entry points not exercised
   elsewhere: printers, accessors, edge behaviours. *)
open Linalg

let approx_tol tol = Alcotest.(check (float tol))
let two_pi = 2. *. Float.pi

let tests =
  [
    Alcotest.test_case "vec/mat printers produce readable output" `Quick (fun () ->
        let vs = Format.asprintf "%a" Vec.pp [| 1.; -2.5 |] in
        Alcotest.(check bool) "vec" true (String.length vs > 0 && String.contains vs '1');
        let ms = Format.asprintf "%a" Mat.pp (Mat.identity 2) in
        Alcotest.(check bool) "mat" true (String.length ms > 0));
    Alcotest.test_case "vec small utilities" `Quick (fun () ->
        approx_tol 1e-12 "sum" 6. (Vec.sum [| 1.; 2.; 3. |]);
        approx_tol 1e-12 "mean" 2. (Vec.mean [| 1.; 2.; 3. |]);
        let dst = Vec.zeros 2 in
        Vec.blit ~src:[| 5.; 6. |] ~dst;
        approx_tol 1e-12 "blit" 6. dst.(1);
        let v = [| 1.; 2. |] in
        Vec.scale_inplace 3. v;
        approx_tol 1e-12 "scale_inplace" 6. v.(1);
        Alcotest.(check bool) "map2" true
          (Vec.approx_equal (Vec.map2 ( *. ) [| 2.; 3. |] [| 4.; 5. |]) [| 8.; 15. |]));
    Alcotest.test_case "mat axpy and diag" `Quick (fun () ->
        let y = Mat.zeros 2 2 in
        Mat.axpy ~a:2. ~x:(Mat.identity 2) y;
        approx_tol 1e-12 "axpy" 2. y.(0).(0);
        approx_tol 1e-12 "frobenius" (2. *. sqrt 2.) (Mat.frobenius y);
        let d = Mat.diag [| 1.; 2. |] in
        approx_tol 1e-12 "diag" 2. d.(1).(1));
    Alcotest.test_case "lu determinant and matrix inverse consistency" `Quick (fun () ->
        let a = [| [| 2.; 1. |]; [| 1.; 2. |] |] in
        let f = Lu.factor a in
        approx_tol 1e-12 "det" 3. (Lu.det f);
        Alcotest.(check int) "dim" 2 (Lu.dim f));
    Alcotest.test_case "cx helpers" `Quick (fun () ->
        let z = Cx.polar 2. (Float.pi /. 3.) in
        approx_tol 1e-12 "modulus" 2. (Complex.norm z);
        Alcotest.(check bool) "approx_equal" true (Cx.approx_equal z z);
        let v = Cx.Cvec.of_real [| 1.; 2. |] in
        Alcotest.(check bool) "real part" true
          (Vec.approx_equal (Cx.Cvec.real_part v) [| 1.; 2. |]);
        let s = Cx.Cvec.scale (Cx.cx 0. 1.) v in
        approx_tol 1e-12 "rotated to imag" 1. (Cx.im s.(0));
        let sum = Cx.Cvec.add v v and diff = Cx.Cvec.sub v v in
        approx_tol 1e-12 "add" 4. (Cx.re sum.(1));
        approx_tol 1e-12 "sub" 0. (Cx.Cvec.norm_inf diff);
        let m = Cx.Cmat.identity 2 in
        let mm = Cx.Cmat.mul m m in
        approx_tol 1e-12 "cmat mul" 1. (Cx.re mm.(1).(1)));
    Alcotest.test_case "spectrum hann window endpoints" `Quick (fun () ->
        let w = Fourier.Spectrum.hann 32 in
        approx_tol 1e-12 "start" 0. w.(0);
        approx_tol 1e-12 "end" 0. w.(31);
        Alcotest.(check bool) "peak in middle" true (w.(16) > 0.9));
    Alcotest.test_case "interp1d span and pchip endpoints" `Quick (fun () ->
        let f = Sigproc.Interp1d.create [| 0.; 1.; 4. |] [| 2.; 3.; 5. |] in
        let a, b = Sigproc.Interp1d.span f in
        approx_tol 1e-12 "span lo" 0. a;
        approx_tol 1e-12 "span hi" 4. b;
        approx_tol 1e-12 "pchip at node" 3. (Sigproc.Interp1d.eval_pchip f 1.));
    Alcotest.test_case "warp span and omega accessor" `Quick (fun () ->
        let w = Sigproc.Warp.of_function ~t0:1. ~t1:3. ~n:21 (fun t -> t) in
        let a, b = Sigproc.Warp.span w in
        approx_tol 1e-12 "lo" 1. a;
        approx_tol 1e-12 "hi" 3. b;
        approx_tol 1e-9 "omega mid" 2. (Sigproc.Warp.omega w 2.));
    Alcotest.test_case "bivariate max_abs and of_univariate" `Quick (fun () ->
        let b =
          Sigproc.Bivariate.of_univariate
            ~y:(fun t1 t2 -> 3. *. sin (two_pi *. t1) *. cos (two_pi *. t2))
            ~p1:1. ~p2:1. ~n1:16 ~n2:16
        in
        Alcotest.(check bool) "max ~3" true (Sigproc.Bivariate.max_abs b > 2.5));
    Alcotest.test_case "phase describe strings" `Quick (fun () ->
        Alcotest.(check bool) "derivative" true
          (String.length (Wampde.Phase.describe (Wampde.Phase.Derivative 0)) > 0);
        Alcotest.(check bool) "fourier" true
          (String.length
             (Wampde.Phase.describe (Wampde.Phase.Fourier { component = 1; harmonic = 2 }))
          > 0));
    Alcotest.test_case "envelope waveform_samples covers the run" `Quick (fun () ->
        let p = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let dae = Circuit.Vco.build p in
        let orbit =
          Steady.Oscillator.find dae ~n1:25 ~period_hint:1.333 (Circuit.Vco.initial_state p)
        in
        let options = Wampde.Envelope.default_options ~n1:25 () in
        let res = Wampde.Envelope.simulate dae ~options ~t2_end:4. ~h2:0.5 ~init:orbit in
        let times, values = Wampde.Envelope.waveform_samples res ~component:0 ~per_cycle:16 in
        Alcotest.(check bool) "enough samples" true (Array.length times > 40);
        approx_tol 1e-9 "ends at t2_end" 4. times.(Array.length times - 1);
        (* around 3 cycles in 4 us at 0.748 MHz *)
        let crossings = Sigproc.Zero_crossing.cycle_count ~times values in
        Alcotest.(check bool) "cycles" true (crossings >= 2 && crossings <= 4));
    Alcotest.test_case "dae residual helper" `Quick (fun () ->
        let dae = Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -.x.(0) |]) () in
        let r = Dae.residual dae ~t:0. ~xdot:[| -2. |] [| 2. |] in
        approx_tol 1e-12 "consistent" 0. r.(0));
    Alcotest.test_case "fft is_power_of_two" `Quick (fun () ->
        Alcotest.(check bool) "8" true (Fourier.Fft.is_power_of_two 8);
        Alcotest.(check bool) "6" false (Fourier.Fft.is_power_of_two 6);
        Alcotest.(check bool) "0" false (Fourier.Fft.is_power_of_two 0));
    Alcotest.test_case "mpde eval_bivariate clamps and wraps" `Quick (fun () ->
        let p1 = 0.5 in
        let sys =
          {
            Mpde.dae = Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -.x.(0) |]) ();
            p1;
            b_fast = (fun ~t1 ~t2:_ -> [| -.sin (two_pi *. t1 /. p1) |]);
          }
        in
        let init = Mpde.periodic_initial sys ~n1:9 ~guess:(Array.init 9 (fun _ -> [| 0. |])) in
        let res = Mpde.simulate sys ~n1:9 ~t2_end:1. ~h2:0.25 ~init in
        (* periodic in t1 *)
        approx_tol 1e-9 "wrap"
          (Mpde.eval_bivariate res ~component:0 ~t1:0.1 ~t2:0.5)
          (Mpde.eval_bivariate res ~component:0 ~t1:(0.1 +. p1) ~t2:0.5));
  ]

let suites = [ ("api_coverage", tests) ]
