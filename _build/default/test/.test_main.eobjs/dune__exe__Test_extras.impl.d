test/test_extras.ml: Alcotest Array Complex Cx Dae Eig Float Fourier Gmres Linalg Lu Mat Poly Qr Sigproc Sparse Steady Transient Vec
