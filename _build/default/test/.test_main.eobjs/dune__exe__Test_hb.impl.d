test/test_hb.ml: Alcotest Array Circuit Dae Float Steady Transient
