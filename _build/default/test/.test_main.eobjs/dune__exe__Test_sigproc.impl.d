test/test_sigproc.ml: Alcotest Array Bivariate Envelope Float Gen Interp1d Linalg QCheck QCheck_alcotest Sigproc Test Vec Warp Zero_crossing
