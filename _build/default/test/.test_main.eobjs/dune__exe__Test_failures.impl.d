test/test_failures.ml: Alcotest Array Circuit Dae Gmres Linalg Lu Mat Nonlin Sigproc Steady Transient Vec Wampde
