test/test_parser.ml: Alcotest Array Circuit Dae Diode_vco Float Gen Mna Nonlin Parser Printf QCheck QCheck_alcotest Steady Test Transient Wampde
