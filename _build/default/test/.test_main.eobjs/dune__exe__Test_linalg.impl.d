test/test_linalg.ml: Alcotest Array Clu Cmat Cvec Cx Float Gen Gmres Linalg Lu Mat QCheck QCheck_alcotest Test Tridiag Vec
