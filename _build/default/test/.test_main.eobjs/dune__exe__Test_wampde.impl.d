test/test_wampde.ml: Alcotest Array Circuit Dae Float Fourier Linalg Sigproc Steady Transient Vec Wampde
