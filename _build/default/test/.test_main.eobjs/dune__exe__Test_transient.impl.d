test/test_transient.ml: Alcotest Array Dae Float Fourier Gen Linalg Nonlin QCheck QCheck_alcotest Test Transient Vec
