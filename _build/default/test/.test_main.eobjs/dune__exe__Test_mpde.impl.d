test/test_mpde.ml: Alcotest Array Dae Float List Mpde Transient
