test/test_fourier.ml: Alcotest Array Complex Cx Fft Float Fourier Gen Linalg Mat QCheck QCheck_alcotest Series Spectrum Test Vec
