test/test_steady.ml: Alcotest Array Circuit Dae Float Fourier Linalg Steady Vco Vec
