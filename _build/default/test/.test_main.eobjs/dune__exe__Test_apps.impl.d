test/test_apps.ml: Alcotest Array Circuit Dae Float Fourier Linalg Mat Nonlin Sigproc Steady Transient Vec Wampde
