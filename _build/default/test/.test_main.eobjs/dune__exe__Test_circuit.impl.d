test/test_circuit.ml: Alcotest Array Circuit Dae Float Fourier Gen Linalg Mat Mna Nonlin QCheck QCheck_alcotest Test Transient Vco Vec
