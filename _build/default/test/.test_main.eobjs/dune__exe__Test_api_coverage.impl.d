test/test_api_coverage.ml: Alcotest Array Circuit Complex Cx Dae Float Format Fourier Linalg Lu Mat Mpde Sigproc Steady String Vec Wampde
