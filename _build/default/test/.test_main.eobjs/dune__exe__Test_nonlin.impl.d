test/test_nonlin.ml: Alcotest Array Broyden Continuation Fdjac Float Gen Linalg List Mat Newton Nonlin QCheck QCheck_alcotest Test Vec
