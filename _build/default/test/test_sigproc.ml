(* Tests for signal processing: interpolation, zero crossings,
   envelopes, bivariate forms and time warping. *)
open Linalg
open Sigproc

let approx_tol tol = Alcotest.(check (float tol))
let two_pi = 2. *. Float.pi

let interp_tests =
  [
    Alcotest.test_case "linear interpolation exact on lines" `Quick (fun () ->
        let f = Interp1d.create [| 0.; 1.; 2. |] [| 1.; 3.; 5. |] in
        approx_tol 1e-12 "mid" 2. (Interp1d.eval f 0.5);
        approx_tol 1e-12 "clamp lo" 1. (Interp1d.eval f (-1.));
        approx_tol 1e-12 "clamp hi" 5. (Interp1d.eval f 9.));
    Alcotest.test_case "pchip stays monotone" `Quick (fun () ->
        let times = [| 0.; 1.; 2.; 3. |] and values = [| 0.; 0.1; 0.9; 1. |] in
        let f = Interp1d.create times values in
        let prev = ref (-1.) in
        for i = 0 to 100 do
          let y = Interp1d.eval_pchip f (3. *. float_of_int i /. 100.) in
          Alcotest.(check bool) "monotone" true (y >= !prev -. 1e-12);
          prev := y
        done);
    Alcotest.test_case "cumulative integral of constant" `Quick (fun () ->
        let times = Vec.linspace 0. 2. 21 in
        let c = Interp1d.cumulative_integral times (Vec.make 21 3.) in
        approx_tol 1e-12 "end" 6. c.(20));
    Alcotest.test_case "invert monotone" `Quick (fun () ->
        let times = Vec.linspace 0. 1. 101 in
        let values = Vec.map (fun t -> t *. t) times in
        let f = Interp1d.create times values in
        approx_tol 1e-4 "sqrt(0.25)" 0.5 (Interp1d.invert_monotone f 0.25));
    Alcotest.test_case "non-increasing times rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Interp1d.create [| 0.; 0. |] [| 1.; 2. |]);
             false
           with Invalid_argument _ -> true));
  ]

let zero_crossing_tests =
  [
    Alcotest.test_case "sine crossings at multiples of period" `Quick (fun () ->
        let n = 10_000 in
        let times = Vec.linspace 0. 5. n in
        let x = Vec.map (fun t -> sin (two_pi *. t)) times in
        (* upward crossings at t = 1, 2, 3, 4 (t = 0 starts at zero,
           t = 5 ends at zero from below) *)
        let c = Zero_crossing.upward ~times x in
        Alcotest.(check int) "count" 4 (Array.length c);
        approx_tol 1e-4 "first" 1. c.(0);
        let p = Zero_crossing.periods c in
        Array.iter (fun period -> approx_tol 1e-4 "period" 1. period) p);
    Alcotest.test_case "instantaneous frequency of chirp increases" `Quick (fun () ->
        (* phase = t + t^2/4 -> frequency 1 + t/2 *)
        let n = 40_000 in
        let times = Vec.linspace 0. 10. n in
        let x = Vec.map (fun t -> sin (two_pi *. (t +. (t *. t /. 4.)))) times in
        let tm, f = Zero_crossing.instantaneous_frequency ~times x in
        Alcotest.(check bool) "got cycles" true (Array.length f > 20);
        Array.iteri
          (fun i t -> approx_tol 0.05 "freq tracks" (1. +. (t /. 2.)) f.(i))
          tm);
    Alcotest.test_case "phase error between shifted sines" `Quick (fun () ->
        let n = 20_000 in
        let times = Vec.linspace 0. 10. n in
        let x = Vec.map (fun t -> sin (two_pi *. t)) times in
        let y = Vec.map (fun t -> sin (two_pi *. (t -. 0.1))) times in
        let pe = Zero_crossing.max_abs_phase_error ~reference:(times, x) ~test:(times, y) in
        approx_tol 1e-3 "0.1 cycle" 0.1 pe);
  ]

let envelope_tests =
  [
    Alcotest.test_case "peaks of AM signal trace the envelope" `Quick (fun () ->
        let n = 50_000 in
        let times = Vec.linspace 0. 1. n in
        let x =
          Vec.map (fun t -> (1. +. (0.5 *. sin (two_pi *. t))) *. sin (two_pi *. 50. *. t)) times
        in
        let lo, hi = Envelope.amplitude_range ~times x in
        approx_tol 0.02 "min" 0.5 lo;
        approx_tol 0.02 "max" 1.5 hi);
    Alcotest.test_case "peak refinement beats grid resolution" `Quick (fun () ->
        let n = 100 in
        let times = Vec.linspace 0. 1. n in
        let x = Vec.map (fun t -> cos (two_pi *. (t -. 0.30303))) times in
        let ps = Envelope.peaks ~times x in
        Alcotest.(check bool) "found" true (Array.length ps >= 1);
        let tp, vp = ps.(0) in
        approx_tol 2e-3 "location" 0.30303 tp;
        approx_tol 2e-3 "value" 1. vp);
  ]

let bivariate_tests =
  [
    Alcotest.test_case "paper example: fig 1/2 bivariate of 2-tone signal" `Quick (fun () ->
        (* yhat(t1,t2) = sin(2 pi t1 / T1) sin(2 pi t2 / T2) on 15x15 grid *)
        let t1p = 0.02 and t2p = 1.0 in
        let b =
          Bivariate.sample
            ~f:(fun t1 t2 -> sin (two_pi *. t1 /. t1p) *. sin (two_pi *. t2 /. t2p))
            ~p1:t1p ~p2:t2p ~n1:15 ~n2:15
        in
        Alcotest.(check int) "225 samples" 225 (Bivariate.sample_count b);
        (* diagonal recovers y(t) (paper's 1.952 s example, eq after (2)) *)
        let y t = sin (two_pi *. t /. t1p) *. sin (two_pi *. t /. t2p) in
        approx_tol 0.05 "recover y(1.952)" (y 1.952) (Bivariate.diagonal b 1.952));
    Alcotest.test_case "eval wraps periodically" `Quick (fun () ->
        let b = Bivariate.sample ~f:(fun t1 t2 -> t1 +. (10. *. t2) -. (t1 *. t2)) ~p1:1. ~p2:1. ~n1:8 ~n2:8 in
        approx_tol 1e-9 "wrap" (Bivariate.eval b 0.25 0.5) (Bivariate.eval b 1.25 (-0.5)));
    Alcotest.test_case "sawtooth path stays in box" `Quick (fun () ->
        let pts = Bivariate.sawtooth_path ~p1:0.02 ~p2:1. ~t_max:3. 1000 in
        Array.iter
          (fun (a, b) ->
            Alcotest.(check bool) "in box" true (a >= 0. && a <= 0.02 && b >= 0. && b <= 1.))
          pts);
    Alcotest.test_case "warped diagonal matches closed form (paper eq 6-8)" `Quick (fun () ->
        (* xhat2(t1,t2) = cos(2 pi t1), phi(t) = f0 t + k/(2 pi) cos(2 pi f2 t) *)
        let f0 = 100. and f2 = 2. in
        let k = 8. *. Float.pi in
        let b = Bivariate.sample ~f:(fun t1 _ -> cos (two_pi *. t1)) ~p1:1. ~p2:(1. /. f2) ~n1:64 ~n2:8 in
        let phi t = (f0 *. t) +. (k /. two_pi *. cos (two_pi *. f2 *. t)) in
        let x t = cos ((two_pi *. f0 *. t) +. (k *. cos (two_pi *. f2 *. t))) in
        for i = 0 to 20 do
          let t = 0.013 *. float_of_int i in
          approx_tol 0.01 "fm recovery" (x t) (Bivariate.warped_diagonal b ~phi t)
        done);
    Alcotest.test_case "undulation count: warped FM << unwarped FM (fig 5 vs 6)" `Quick
      (fun () ->
        let f0 = 1.0e6 and f2 = 2.0e4 in
        let k = 8. *. Float.pi in
        let unwarped =
          Bivariate.sample
            ~f:(fun t1 t2 -> cos ((two_pi *. f0 *. t1) +. (k *. cos (two_pi *. f2 *. t2))))
            ~p1:(1. /. f0) ~p2:(1. /. f2) ~n1:15 ~n2:25
        in
        let warped =
          Bivariate.sample ~f:(fun t1 _ -> cos (two_pi *. t1)) ~p1:1. ~p2:(1. /. f2) ~n1:15 ~n2:25
        in
        Alcotest.(check bool) "warped much smoother" true
          (Bivariate.undulation_count warped * 4 < Bivariate.undulation_count unwarped));
  ]

let warp_tests =
  [
    Alcotest.test_case "constant rate warping is linear" `Quick (fun () ->
        let w = Warp.of_function ~t0:0. ~t1:10. ~n:101 (fun _ -> 2.) in
        approx_tol 1e-9 "phi(3)" 6. (Warp.phi w 3.);
        approx_tol 1e-9 "total" 20. (Warp.total_cycles w);
        approx_tol 1e-6 "unwarp" 3. (Warp.unwarp w 6.));
    Alcotest.test_case "paper eq (7): phi of ideal FM has periodic derivative" `Quick
      (fun () ->
        let f0 = 10. and f2 = 1. and k = 4. *. Float.pi in
        (* omega(t) = f0 - k f2 sin(2 pi f2 t) / ... in cycles: f(t) of eq (4) *)
        let omega t = f0 -. (k *. f2 *. sin (two_pi *. f2 *. t) /. two_pi) in
        let w = Warp.of_function ~t0:0. ~t1:2. ~n:4001 omega in
        (* phi(t) - f0 t must be 1/f2-periodic: compare t = 0.3 and 1.3 *)
        let p t = Warp.phi w t -. (f0 *. t) in
        approx_tol 1e-6 "periodic part" (p 0.3) (p 1.3));
    Alcotest.test_case "unwarp is inverse of phi" `Quick (fun () ->
        let w = Warp.of_function ~t0:0. ~t1:5. ~n:501 (fun t -> 1. +. (0.5 *. sin t)) in
        for i = 0 to 10 do
          let t = 0.5 *. float_of_int i in
          approx_tol 1e-6 "roundtrip" t (Warp.unwarp w (Warp.phi w t))
        done);
    Alcotest.test_case "nonpositive rate rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Warp.of_samples ~times:[| 0.; 1. |] ~omega:[| 1.; 0. |]);
             false
           with Invalid_argument _ -> true));
  ]

let prop_tests =
  let open QCheck in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"warp: phi is increasing for positive rates" ~count:30
         (make Gen.(array_size (return 20) (float_range 0.1 5.))) (fun rates ->
           let times = Vec.linspace 0. 1. 20 in
           let w = Warp.of_samples ~times ~omega:rates in
           let ok = ref true in
           for i = 1 to 19 do
             if Warp.phi w times.(i) <= Warp.phi w times.(i - 1) then ok := false
           done;
           !ok));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"zero crossings count cycles of pure tones" ~count:20
         (make (Gen.float_range 1. 20.)) (fun freq ->
           let n = 50_000 in
           let times = Vec.linspace 0. 4. n in
           let x = Vec.map (fun t -> sin (two_pi *. freq *. t)) times in
           let count = Zero_crossing.cycle_count ~times x in
           abs (count - int_of_float (4. *. freq)) <= 1));
  ]

let suites =
  [
    ("sigproc.interp1d", interp_tests);
    ("sigproc.zero_crossing", zero_crossing_tests);
    ("sigproc.envelope", envelope_tests);
    ("sigproc.bivariate", bivariate_tests);
    ("sigproc.warp", warp_tests);
    ("sigproc.properties", prop_tests);
  ]
