(* Tests for frequency-domain harmonic balance, cross-checked against
   time-domain collocation and transient simulation. *)

let approx_tol tol = Alcotest.(check (float tol))
let two_pi = 2. *. Float.pi

let forced_rl ~period =
  Dae.of_ode ~dim:1 ~rhs:(fun ~t x -> [| cos (two_pi *. t /. period) -. x.(0) |]) ()

let hb_tests =
  [
    Alcotest.test_case "linear forced system matches analytic solution" `Quick (fun () ->
        let period = 2. in
        let dae = forced_rl ~period in
        let w = two_pi /. period in
        let exact t = (cos (w *. t) +. (w *. sin (w *. t))) /. (1. +. (w *. w)) in
        let nn = 11 in
        let sol =
          Steady.Hb.solve dae ~period ~harmonics:5 ~guess:(Array.init nn (fun _ -> [| 0. |]))
        in
        for k = 0 to 20 do
          let t = period *. float_of_int k /. 20. in
          approx_tol 1e-8 "waveform" (exact t) (Steady.Hb.eval sol ~component:0 t)
        done;
        approx_tol 1e-8 "residual" 0. (Steady.Hb.residual_norm dae sol);
        (* a linear problem has exactly one harmonic *)
        let spec = Steady.Hb.spectrum sol ~component:0 in
        Alcotest.(check bool) "only fundamental" true
          (spec.(1) > 0.1 && spec.(2) < 1e-10 && spec.(0) < 1e-10));
    Alcotest.test_case "hb equals time-domain collocation on nonlinear problem" `Quick
      (fun () ->
        (* driven nonlinear RC: x' + x + 0.3 x^3 = cos(2 pi t / T) *)
        let period = 3. in
        let dae =
          Dae.of_ode ~dim:1
            ~rhs:(fun ~t x ->
              [| cos (two_pi *. t /. period) -. x.(0) -. (0.3 *. (x.(0) ** 3.)) |])
            ()
        in
        let m = 7 in
        let nn = (2 * m) + 1 in
        let guess = Array.init nn (fun _ -> [| 0. |]) in
        let hb = Steady.Hb.solve dae ~period ~harmonics:m ~guess in
        let colloc = Steady.Periodic.solve dae ~period ~n1:nn ~guess in
        for k = 0 to 30 do
          let t = period *. float_of_int k /. 30. in
          approx_tol 1e-7 "same waveform"
            (Steady.Periodic.eval colloc ~component:0 t)
            (Steady.Hb.eval hb ~component:0 t)
        done);
    Alcotest.test_case "diode rectifier: hb matches settled transient" `Quick (fun () ->
        (* half-wave rectifier with RC load, driven at 1 MHz-ish scale *)
        let period = 1. in
        let net = Circuit.Mna.create () in
        let nin = Circuit.Mna.node net "in" and nout = Circuit.Mna.node net "out" in
        Circuit.Mna.add net
          (Circuit.Mna.vsource ~label:"V"
             ~v:(fun t -> 1.5 *. sin (two_pi *. t /. period))
             nin Circuit.Mna.ground);
        Circuit.Mna.add net (Circuit.Mna.diode ~label:"D" ~is_:1e-6 ~vt:0.05 nin nout);
        Circuit.Mna.add net (Circuit.Mna.resistor ~label:"R" ~r:5. nout Circuit.Mna.ground);
        Circuit.Mna.add net (Circuit.Mna.capacitor ~label:"C" ~c:1. nout Circuit.Mna.ground);
        let dae = Circuit.Mna.compile net in
        let hb =
          Steady.Hb.solve_from_transient dae ~period ~harmonics:12 ~warmup_periods:20
            (Circuit.Mna.initial_guess net)
        in
        let traj =
          Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:30.
            ~h:(period /. 400.)
            (Circuit.Mna.initial_guess net)
        in
        (* compare dc output over the last (settled) period *)
        for k = 0 to 10 do
          let t = 29. +. (float_of_int k /. 10.) in
          let hb_v = Steady.Hb.eval hb ~component:(nout - 1) t in
          let tr_v = Transient.interpolate traj (nout - 1) t in
          Alcotest.(check bool) "rectified output" true (Float.abs (hb_v -. tr_v) < 0.01)
        done;
        (* rectifier output is positive DC with ripple *)
        let spec = Steady.Hb.spectrum hb ~component:(nout - 1) in
        Alcotest.(check bool) "dc component present" true (spec.(0) > 0.2));
    Alcotest.test_case "grid/coefficients roundtrip" `Quick (fun () ->
        let period = 2. in
        let dae = forced_rl ~period in
        let nn = 11 in
        let sol =
          Steady.Hb.solve dae ~period ~harmonics:5 ~guess:(Array.init nn (fun _ -> [| 0. |]))
        in
        let g = Steady.Hb.grid sol in
        Alcotest.(check int) "grid size" nn (Array.length g);
        for j = 0 to nn - 1 do
          let t = period *. float_of_int j /. float_of_int nn in
          approx_tol 1e-9 "grid point" (Steady.Hb.eval sol ~component:0 t) g.(j).(0)
        done);
  ]

let suites = [ ("steady.hb", hb_tests) ]
