(* Tests for the SPICE-style netlist parser and the extended devices
   (controlled sources, MOSFET, junction capacitor, diode VCO). *)
open Circuit

let approx_tol tol = Alcotest.(check (float tol))

let value_tests =
  [
    Alcotest.test_case "suffix multipliers" `Quick (fun () ->
        approx_tol 1e-12 "k" 4700. (Parser.parse_value "4.7k");
        approx_tol 1e-18 "n" 1e-7 (Parser.parse_value "100n");
        approx_tol 1e-6 "meg" 2e6 (Parser.parse_value "2meg");
        approx_tol 1e-9 "m" 5e-3 (Parser.parse_value "5m");
        approx_tol 1e-21 "p" 3.3e-12 (Parser.parse_value "3.3p");
        approx_tol 1e-12 "plain" 42. (Parser.parse_value "42");
        approx_tol 1e-12 "exponent" 1500. (Parser.parse_value "1.5e3"));
    Alcotest.test_case "unit words tolerated" `Quick (fun () ->
        approx_tol 1e-9 "kohm" 10_000. (Parser.parse_value "10kohm");
        approx_tol 1e-18 "nF" 5e-9 (Parser.parse_value "5nf"));
    Alcotest.test_case "garbage rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Parser.parse_value "xyz");
             false
           with Failure _ -> true));
  ]

let deck_tests =
  [
    Alcotest.test_case "resistor divider deck" `Quick (fun () ->
        let net =
          Parser.parse_string
            "* divider\nV1 in 0 10\nR1 in mid 1k\nR2 mid 0 3k\n.end\n"
        in
        let dae = Mna.compile net in
        let report = Dae.dc_operating_point ~x0:(Mna.initial_guess net) dae in
        Alcotest.(check bool) "converged" true report.Nonlin.Newton.converged;
        (* node order: in = 1, mid = 2 *)
        approx_tol 1e-6 "v(mid)" 7.5 report.Nonlin.Newton.x.(1));
    Alcotest.test_case "sin source parses" `Quick (fun () ->
        let net = Parser.parse_string "V1 a 0 SIN(1.5 0.75 0.025)\nR1 a 0 1\n" in
        let dae = Mna.compile net in
        (* v(a) at t: the source forces through its branch equation *)
        let f0 = dae.Dae.f ~t:0. [| 1.5; 0. |] in
        approx_tol 1e-9 "branch eq at bias" 0. f0.(1);
        let t_quarter = 10. in
        let f1 = dae.Dae.f ~t:t_quarter [| 2.25; 0. |] in
        approx_tol 1e-9 "peak" 0. f1.(1));
    Alcotest.test_case "paper VCO deck equals Vco.build" `Quick (fun () ->
        (* LC tank + cubic conductance from a text deck; MEMS varactor is
           API-only, so compare against a fixed-capacitor variant *)
        let deck = "L1 tank 0 0.045\nN1 tank 0 1 0.3333333333333333\nC1 tank 0 1\n" in
        let dae = Mna.compile (Parser.parse_string deck) in
        let x = [| 1.3; -0.4 |] in
        approx_tol 1e-12 "q tank" 1.3 (dae.Dae.q x).(0);
        let f = dae.Dae.f ~t:0. x in
        (* tank KCL: i_L + (-g1 v + g3 v^3) *)
        approx_tol 1e-9 "kcl" ((-1.3) +. (1.3 ** 3. /. 3.) +. -0.4) f.(0));
    Alcotest.test_case "comments, blanks, .end respected" `Quick (fun () ->
        let net =
          Parser.parse_string
            "* header\n\n; another comment\nR1 a 0 1\n.end\nR2 a 0 garbage-after-end\n"
        in
        Alcotest.(check int) "one node" 1 (Mna.node_count net));
    Alcotest.test_case "parse error carries line number" `Quick (fun () ->
        Alcotest.(check bool) "raises with line" true
          (try
             ignore (Parser.parse_string "R1 a 0 1\nbogus line here\n");
             false
           with Parser.Parse_error { line; _ } -> line = 2));
    Alcotest.test_case "vccs deck: transconductance amplifier" `Quick (fun () ->
        let net = Parser.parse_string "V1 in 0 2\nG1 0 out in 0 0.5\nR1 out 0 4\n" in
        let dae = Mna.compile net in
        let report = Dae.dc_operating_point ~x0:(Mna.initial_guess net) dae in
        Alcotest.(check bool) "converged" true report.Nonlin.Newton.converged;
        (* i = gm v_in = 1 pushed from ground INTO out -> v(out) = i R = 4 *)
        approx_tol 1e-6 "v(out)" 4. report.Nonlin.Newton.x.(1));
  ]

let device_tests =
  [
    Alcotest.test_case "vcvs enforces gain" `Quick (fun () ->
        let net = Mna.create () in
        let a = Mna.node net "a" and b = Mna.node net "b" in
        Mna.add net (Mna.vsource ~label:"V1" ~v:(fun _ -> 3.) a Mna.ground);
        Mna.add net (Mna.vcvs ~label:"E1" ~gain:2.5 a Mna.ground b Mna.ground);
        Mna.add net (Mna.resistor ~label:"R1" ~r:1. b Mna.ground);
        let dae = Mna.compile net in
        let report = Dae.dc_operating_point ~x0:(Mna.initial_guess net) dae in
        approx_tol 1e-8 "v(b)" 7.5 report.Nonlin.Newton.x.(b - 1));
    Alcotest.test_case "mosfet saturation current" `Quick (fun () ->
        (* vgs = 1.6, vt = 0.6, k = 2: saturation id = 0.5 k vov^2 = 1 *)
        let net = Mna.create () in
        let d = Mna.node net "d" and g = Mna.node net "g" in
        Mna.add net (Mna.vsource ~label:"VG" ~v:(fun _ -> 1.6) g Mna.ground);
        Mna.add net (Mna.vsource ~label:"VD" ~v:(fun _ -> 5.) d Mna.ground);
        Mna.add net (Mna.mosfet ~label:"M1" ~k:2. ~vt:0.6 ~drain:d ~gate:g ~source:Mna.ground ());
        let dae = Mna.compile net in
        (* drain KCL row: mosfet current + VD branch current = 0 *)
        let x = [| 5.; 1.6; 0.; -1. |] in
        let f = dae.Dae.f ~t:0. x in
        approx_tol 1e-9 "drain kcl balanced" 0. f.(0));
    Alcotest.test_case "mosfet cutoff and triode regions" `Quick (fun () ->
        let net = Mna.create () in
        let d = Mna.node net "d" and g = Mna.node net "g" in
        Mna.add net (Mna.mosfet ~label:"M1" ~k:2. ~vt:0.6 ~drain:d ~gate:g ~source:Mna.ground ());
        let dae = Mna.compile net in
        (* cutoff: vgs < vt -> no current *)
        approx_tol 1e-12 "cutoff" 0. (dae.Dae.f ~t:0. [| 5.; 0.2 |]).(0);
        (* triode: vds = 0.2 < vov = 1: id = k (vov vds - vds^2/2) *)
        let id = (dae.Dae.f ~t:0. [| 0.2; 1.6 |]).(0) in
        approx_tol 1e-9 "triode" (2. *. ((1. *. 0.2) -. (0.5 *. 0.2 *. 0.2))) id);
    Alcotest.test_case "mosfet is symmetric in drain/source" `Quick (fun () ->
        let net = Mna.create () in
        let d = Mna.node net "d" and g = Mna.node net "g" in
        Mna.add net (Mna.mosfet ~label:"M1" ~k:1. ~vt:0.5 ~drain:d ~gate:g ~source:Mna.ground ());
        let dae = Mna.compile net in
        (* swap roles: vd < 0 *)
        let i_fwd = (dae.Dae.f ~t:0. [| 0.3; 1.5 |]).(0) in
        let net2 = Mna.create () in
        let d2 = Mna.node net2 "d" and g2 = Mna.node net2 "g" in
        Mna.add net2
          (Mna.mosfet ~label:"M1" ~k:1. ~vt:0.5 ~drain:d2 ~gate:g2 ~source:Mna.ground ());
        let dae2 = Mna.compile net2 in
        (* with vd = -0.3 the intrinsic source is the d node; the current
           through the drain terminal reverses and has vgs measured from
           the true source: use a plain sanity check of sign *)
        let i_rev = (dae2.Dae.f ~t:0. [| -0.3; 1.5 |]).(0) in
        Alcotest.(check bool) "sign flips" true (i_fwd > 0. && i_rev < 0.));
    Alcotest.test_case "junction capacitor matches closed forms" `Quick (fun () ->
        let net = Mna.create () in
        let a = Mna.node net "a" in
        Mna.add net (Mna.junction_capacitor ~label:"CJ" ~c0:2. ~vj:0.7 ~m:0.5 a Mna.ground);
        Mna.add net (Mna.resistor ~label:"R" ~r:1. a Mna.ground);
        let dae = Mna.compile net in
        (* reverse bias v = -3: C = c0 / (1 + 3/0.7)^0.5 *)
        let c_expected = 2. /. ((1. +. (3. /. 0.7)) ** 0.5) in
        approx_tol 1e-9 "C(-3)" c_expected (dae.Dae.dq [| -3. |]).(0).(0);
        (* dq/dv continuity across the fc vj boundary *)
        let below = (dae.Dae.dq [| 0.349 |]).(0).(0) in
        let above = (dae.Dae.dq [| 0.351 |]).(0).(0) in
        Alcotest.(check bool) "continuous" true (Float.abs (below -. above) < 0.05));
    Alcotest.test_case "junction charge is the integral of C" `Quick (fun () ->
        let net = Mna.create () in
        let a = Mna.node net "a" in
        Mna.add net (Mna.junction_capacitor ~label:"CJ" ~c0:1.5 ~vj:0.8 ~m:0.4 a Mna.ground);
        Mna.add net (Mna.resistor ~label:"R" ~r:1. a Mna.ground);
        let dae = Mna.compile net in
        (* numerical integral of C from 0 to -2 vs q(-2) - q(0) *)
        let steps = 2000 in
        let integral = ref 0. in
        for i = 0 to steps - 1 do
          let v = -2. *. (float_of_int i +. 0.5) /. float_of_int steps in
          integral := !integral +. ((dae.Dae.dq [| v |]).(0).(0) *. -2. /. float_of_int steps)
        done;
        let dq = (dae.Dae.q [| -2. |]).(0) -. (dae.Dae.q [| 0. |]).(0) in
        approx_tol 1e-4 "q = int C dv" !integral dq);
  ]

let diode_vco_tests =
  [
    Alcotest.test_case "tuning law is monotone increasing in bias" `Quick (fun () ->
        let p = Diode_vco.default_params ~control:(fun _ -> 3.) () in
        let f3 = Diode_vco.tuning_frequency p ~bias:3. in
        let f6 = Diode_vco.tuning_frequency p ~bias:6. in
        Alcotest.(check bool) "monotone" true (f6 > f3));
    Alcotest.test_case "unforced orbit near the small-signal law" `Slow (fun () ->
        let p = Diode_vco.default_params ~control:(fun _ -> 3.) () in
        let dae = Diode_vco.build p in
        let orbit =
          Steady.Oscillator.find dae ~n1:31 ~period_hint:1.0 (Diode_vco.initial_state p ~at:0.)
        in
        let law = Diode_vco.tuning_frequency p ~bias:3. in
        Alcotest.(check bool) "within 2%" true
          (Float.abs (orbit.Steady.Oscillator.omega -. law) /. law < 0.02));
    Alcotest.test_case "wampde tracks the tuning law over a sweep" `Slow (fun () ->
        let frozen = Diode_vco.default_params ~control:(fun _ -> 3.) () in
        let orbit =
          Steady.Oscillator.find (Diode_vco.build frozen) ~n1:31 ~period_hint:1.0
            (Diode_vco.initial_state frozen ~at:0.)
        in
        let control t = 3. +. (2.5 *. (1. -. cos (2. *. Float.pi *. t /. 200.))) in
        let p = Diode_vco.default_params ~control () in
        let dae = Diode_vco.build p in
        let options = Wampde.Envelope.default_options ~n1:31 () in
        let res = Wampde.Envelope.simulate dae ~options ~t2_end:200. ~h2:1. ~init:orbit in
        Array.iteri
          (fun i t2 ->
            if i mod 25 = 0 then begin
              let law = Diode_vco.tuning_frequency p ~bias:(control t2) in
              let rel = Float.abs (res.Wampde.Envelope.omega.(i) -. law) /. law in
              Alcotest.(check bool) "quasi-static" true (rel < 0.02)
            end)
          res.Wampde.Envelope.t2);
  ]

(* Generative tests over random passive networks. *)
let random_network_tests =
  let open QCheck in
  (* an RC ladder of depth d with random positive element values and a DC
     source at the head *)
  let ladder_gen =
    Gen.(
      tup3 (int_range 1 6)
        (array_size (return 6) (float_range 0.1 10.))
        (float_range (-10.) 10.))
  in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"random RC ladder: DC op converges, voltages bounded by source"
         ~count:40 (make ladder_gen)
         (fun (depth, values, vs) ->
           let net = Mna.create () in
           let head = Mna.node net "n0" in
           Mna.add net (Mna.vsource ~label:"V" ~v:(fun _ -> vs) head Mna.ground);
           for k = 1 to depth do
             let a = Mna.node net (Printf.sprintf "n%d" (k - 1)) in
             let b = Mna.node net (Printf.sprintf "n%d" k) in
             Mna.add net
               (Mna.resistor ~label:(Printf.sprintf "R%d" k) ~r:values.(k mod 6) a b);
             Mna.add net
               (Mna.capacitor ~label:(Printf.sprintf "C%d" k) ~c:values.((k + 1) mod 6) b
                  Mna.ground);
             (* shunt resistor keeps the DC problem well-posed *)
             Mna.add net
               (Mna.resistor ~label:(Printf.sprintf "Rs%d" k) ~r:(10. *. values.(k mod 6)) b
                  Mna.ground)
           done;
           let dae = Mna.compile net in
           let report = Dae.dc_operating_point ~x0:(Mna.initial_guess net) dae in
           report.Nonlin.Newton.converged
           &&
           (* all node voltages lie between 0 and the source voltage *)
           let ok = ref true in
           for k = 0 to depth do
             let v = report.Nonlin.Newton.x.(k) in
             let lo = Float.min 0. vs -. 1e-9 and hi = Float.max 0. vs +. 1e-9 in
             if v < lo || v > hi then ok := false
           done;
           !ok));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"random ladder transient decays to DC op from any start" ~count:15
         (make ladder_gen)
         (fun (depth, values, vs) ->
           let net = Mna.create () in
           let head = Mna.node net "n0" in
           Mna.add net (Mna.vsource ~label:"V" ~v:(fun _ -> vs) head Mna.ground);
           for k = 1 to depth do
             let a = Mna.node net (Printf.sprintf "n%d" (k - 1)) in
             let b = Mna.node net (Printf.sprintf "n%d" k) in
             Mna.add net
               (Mna.resistor ~label:(Printf.sprintf "R%d" k) ~r:values.(k mod 6) a b);
             Mna.add net
               (Mna.capacitor ~label:(Printf.sprintf "C%d" k) ~c:values.((k + 1) mod 6) b
                  Mna.ground)
           done;
           let dae = Mna.compile net in
           let dc = Dae.dc_operating_point ~x0:(Mna.initial_guess net) dae in
           if not dc.Nonlin.Newton.converged then false
           else begin
             (* start everything at zero; after many time constants the
                trajectory must reach the DC solution *)
             let tau_max = 6. *. 10. *. 10. *. float_of_int depth in
             let traj =
               Transient.integrate dae ~method_:Transient.Backward_euler ~t0:0.
                 ~t1:(8. *. tau_max) ~h:(tau_max /. 50.)
                 (Mna.initial_guess net)
             in
             let final = Transient.final traj in
             let ok = ref true in
             for k = 0 to depth do
               if Float.abs (final.(k) -. dc.Nonlin.Newton.x.(k)) > 1e-3 *. (1. +. Float.abs vs)
               then ok := false
             done;
             !ok
           end));
  ]

let suites =
  [
    ("parser.values", value_tests);
    ("parser.decks", deck_tests);
    ("circuit.devices2", device_tests);
    ("circuit.diode_vco", diode_vco_tests);
    ("circuit.random_networks", random_network_tests);
  ]
