(* Tests for the extended numerical toolkit: QR/least squares,
   polynomial roots, eigenvalues, sparse matrices, Hilbert transform,
   RK4 and Floquet analysis. *)
open Linalg

let approx_tol tol = Alcotest.(check (float tol))
let two_pi = 2. *. Float.pi

let qr_tests =
  [
    Alcotest.test_case "qr reproduces the matrix" `Quick (fun () ->
        let a = Mat.init 5 3 (fun i j -> sin (float_of_int ((3 * i) + j)) +. 0.2) in
        let qr = Qr.factor a in
        let qm = Qr.q qr and rm = Qr.r qr in
        Alcotest.(check bool) "QR = A" true (Mat.approx_equal ~tol:1e-10 (Mat.mul qm rm) a));
    Alcotest.test_case "q has orthonormal columns" `Quick (fun () ->
        let a = Mat.init 6 4 (fun i j -> cos (float_of_int ((2 * i) - j))) in
        let qm = Qr.q (Qr.factor a) in
        Alcotest.(check bool) "Q^T Q = I" true
          (Mat.approx_equal ~tol:1e-10 (Mat.mul (Mat.transpose qm) qm) (Mat.identity 4)));
    Alcotest.test_case "square solve matches lu" `Quick (fun () ->
        let a = [| [| 2.; 1.; 0.5 |]; [| 1.; 3.; -1. |]; [| 0.; 1.; 4. |] |] in
        let b = [| 1.; -2.; 3. |] in
        Alcotest.(check bool) "same" true
          (Vec.approx_equal ~tol:1e-10 (Qr.lstsq a b) (Lu.solve_dense a b)));
    Alcotest.test_case "least squares residual is orthogonal to range" `Quick (fun () ->
        let a = Mat.init 8 3 (fun i j -> float_of_int i ** float_of_int j) in
        let b = Vec.init 8 (fun i -> sin (float_of_int i)) in
        let x = Qr.lstsq a b in
        let r = Vec.sub b (Mat.matvec a x) in
        let atr = Mat.tmatvec a r in
        Alcotest.(check bool) "A^T r = 0" true (Vec.norm_inf atr < 1e-9));
    Alcotest.test_case "polyfit recovers exact polynomial" `Quick (fun () ->
        let xs = Vec.linspace (-2.) 2. 9 in
        let ys = Vec.map (fun x -> 1. -. (2. *. x) +. (0.5 *. x *. x)) xs in
        let c = Qr.polyfit ~degree:2 xs ys in
        approx_tol 1e-10 "c0" 1. c.(0);
        approx_tol 1e-10 "c1" (-2.) c.(1);
        approx_tol 1e-10 "c2" 0.5 c.(2));
  ]

let poly_tests =
  [
    Alcotest.test_case "roots of (x-1)(x-2)(x-3)" `Quick (fun () ->
        let c = [| -6.; 11.; -6.; 1. |] in
        let rs = Poly.roots c in
        let mags = Array.map Cx.re rs in
        Array.sort compare mags;
        approx_tol 1e-8 "r1" 1. mags.(0);
        approx_tol 1e-8 "r2" 2. mags.(1);
        approx_tol 1e-8 "r3" 3. mags.(2));
    Alcotest.test_case "complex conjugate pair" `Quick (fun () ->
        (* x^2 + 1: roots +-i *)
        let rs = Poly.roots [| 1.; 0.; 1. |] in
        let ims = Array.map Cx.im rs in
        Array.sort compare ims;
        approx_tol 1e-9 "imag -1" (-1.) ims.(0);
        approx_tol 1e-9 "imag +1" 1. ims.(1));
    Alcotest.test_case "from_roots roundtrip" `Quick (fun () ->
        let c = [| 2.; -3.; 0.5; 1. |] in
        let rs = Poly.roots c in
        let c' = Poly.from_roots rs in
        (* monic version of c *)
        for k = 0 to 3 do
          approx_tol 1e-7 "coef" c.(k) c'.(k)
        done);
    Alcotest.test_case "horner evaluation" `Quick (fun () ->
        approx_tol 1e-12 "p(2)" 17. (Poly.eval [| 1.; 2.; 3. |] 2.));
    Alcotest.test_case "derivative" `Quick (fun () ->
        let d = Poly.derivative [| 5.; 4.; 3. |] in
        approx_tol 1e-12 "d0" 4. d.(0);
        approx_tol 1e-12 "d1" 6. d.(1));
  ]

let eig_tests =
  [
    Alcotest.test_case "char poly of companion-like 2x2" `Quick (fun () ->
        (* [[0, -c0], [1, -c1]] has char poly x^2 + c1 x + c0 *)
        let a = [| [| 0.; -6. |]; [| 1.; -5. |] |] in
        let c = Eig.char_poly a in
        approx_tol 1e-10 "c0" 6. c.(0);
        approx_tol 1e-10 "c1" 5. c.(1);
        approx_tol 1e-10 "c2" 1. c.(2));
    Alcotest.test_case "eigenvalues of diagonal matrix" `Quick (fun () ->
        let a = Mat.diag [| 3.; -1.; 7. |] in
        let es = Array.map Cx.re (Eig.eigenvalues a) in
        Array.sort compare es;
        approx_tol 1e-8 "e1" (-1.) es.(0);
        approx_tol 1e-8 "e2" 3. es.(1);
        approx_tol 1e-8 "e3" 7. es.(2));
    Alcotest.test_case "rotation matrix has complex eigenvalues on unit circle" `Quick
      (fun () ->
        let th = 0.7 in
        let a = [| [| cos th; -.sin th |]; [| sin th; cos th |] |] in
        let es = Eig.eigenvalues a in
        Array.iter (fun z -> approx_tol 1e-9 "modulus" 1. (Complex.norm z)) es;
        approx_tol 1e-9 "angle" th (Float.abs (Complex.arg es.(0))));
    Alcotest.test_case "spectral radius" `Quick (fun () ->
        approx_tol 1e-8 "rho" 7. (Eig.spectral_radius (Mat.diag [| 3.; -7.; 2. |])));
    Alcotest.test_case "symmetric jacobi matches known spectrum" `Quick (fun () ->
        (* second-difference matrix: eigenvalues 2 - 2 cos(k pi / (n+1)) *)
        let n = 6 in
        let a =
          Mat.init n n (fun i j ->
              if i = j then 2. else if abs (i - j) = 1 then -1. else 0.)
        in
        let eigs, vecs = Eig.symmetric a in
        for k = 1 to n do
          let expected = 2. -. (2. *. cos (float_of_int k *. Float.pi /. float_of_int (n + 1))) in
          approx_tol 1e-9 "eig" expected eigs.(k - 1)
        done;
        (* eigenvector check for the smallest eigenvalue *)
        let v0 = Vec.init n (fun i -> vecs.(i).(0)) in
        let av = Mat.matvec a v0 in
        Alcotest.(check bool) "A v = lambda v" true
          (Vec.approx_equal ~tol:1e-8 av (Vec.scale eigs.(0) v0)));
    Alcotest.test_case "power iteration finds dominant eigenvalue" `Quick (fun () ->
        let a = [| [| 4.; 1. |]; [| 2.; 3. |] |] in
        (* eigenvalues 5 and 2 *)
        let lambda, v = Eig.power_iteration a in
        approx_tol 1e-8 "lambda" 5. lambda;
        let av = Mat.matvec a v in
        Alcotest.(check bool) "vector" true (Vec.approx_equal ~tol:1e-6 av (Vec.scale 5. v)));
  ]

let sparse_tests =
  [
    Alcotest.test_case "triplets sum duplicates" `Quick (fun () ->
        let m = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 0, 1.); (0, 0, 2.); (1, 1, 5.) ] in
        Alcotest.(check int) "nnz" 2 (Sparse.nnz m);
        approx_tol 1e-12 "summed" 3. (Sparse.to_dense m).(0).(0));
    Alcotest.test_case "matvec matches dense" `Quick (fun () ->
        let a = Mat.init 5 4 (fun i j -> if (i + j) mod 3 = 0 then float_of_int (i - j) else 0.) in
        let s = Sparse.of_dense a in
        let v = [| 1.; -2.; 0.5; 3. |] in
        Alcotest.(check bool) "Av" true
          (Vec.approx_equal ~tol:1e-12 (Sparse.matvec s v) (Mat.matvec a v));
        let w = [| 1.; 0.; -1.; 2.; 0.3 |] in
        Alcotest.(check bool) "A^T w" true
          (Vec.approx_equal ~tol:1e-12 (Sparse.tmatvec s w) (Mat.tmatvec a w)));
    Alcotest.test_case "gmres with sparse jacobi preconditioner" `Quick (fun () ->
        let n = 30 in
        let a =
          Mat.init n n (fun i j ->
              if i = j then 5. +. float_of_int (i mod 3)
              else if abs (i - j) = 1 then -1.
              else 0.)
        in
        let s = Sparse.of_dense a in
        let xref = Vec.init n (fun i -> sin (float_of_int i)) in
        let b = Sparse.matvec s xref in
        let r =
          Gmres.solve
            ~matvec:(fun v -> Sparse.matvec s v)
            ~m_inv:(Sparse.jacobi_preconditioner s) ~tol:1e-12 b
        in
        Alcotest.(check bool) "converged" true r.Gmres.converged;
        Alcotest.(check bool) "solution" true (Vec.approx_equal ~tol:1e-8 r.Gmres.x xref));
    Alcotest.test_case "out of range rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Sparse.of_triplets ~rows:2 ~cols:2 [ (2, 0, 1.) ]);
             false
           with Invalid_argument _ -> true));
  ]

let hilbert_tests =
  [
    Alcotest.test_case "hilbert transform of cos is sin" `Quick (fun () ->
        let n = 256 in
        let x = Vec.init n (fun i -> cos (two_pi *. 8. *. float_of_int i /. float_of_int n)) in
        let h = Fourier.Hilbert.transform x in
        let expected =
          Vec.init n (fun i -> sin (two_pi *. 8. *. float_of_int i /. float_of_int n))
        in
        Alcotest.(check bool) "H cos = sin" true (Vec.approx_equal ~tol:1e-8 h expected));
    Alcotest.test_case "envelope of AM signal" `Quick (fun () ->
        let n = 1024 in
        let x =
          Vec.init n (fun i ->
              let t = float_of_int i /. float_of_int n in
              (1. +. (0.4 *. cos (two_pi *. 3. *. t))) *. cos (two_pi *. 80. *. t))
        in
        let env = Fourier.Hilbert.envelope x in
        (* check away from the ends *)
        for i = 100 to n - 100 do
          let t = float_of_int i /. float_of_int n in
          let expected = 1. +. (0.4 *. cos (two_pi *. 3. *. t)) in
          Alcotest.(check bool) "envelope tracks" true (Float.abs (env.(i) -. expected) < 0.02)
        done);
    Alcotest.test_case "instantaneous frequency of pure tone" `Quick (fun () ->
        let n = 512 and f = 16. in
        let x = Vec.init n (fun i -> sin (two_pi *. f *. float_of_int i /. float_of_int n)) in
        let freqs = Fourier.Hilbert.instantaneous_frequency ~dt:(1. /. float_of_int n) x in
        for i = 50 to Array.length freqs - 50 do
          Alcotest.(check bool) "freq" true (Float.abs (freqs.(i) -. f) < 0.1)
        done);
  ]

let rk4_tests =
  [
    Alcotest.test_case "rk4 is 4th order on decay" `Quick (fun () ->
        let dae = Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -.x.(0) |]) () in
        let err h =
          let traj = Transient.integrate dae ~method_:Transient.Rk4 ~t0:0. ~t1:1. ~h [| 1. |] in
          Float.abs ((Transient.final traj).(0) -. exp (-1.))
        in
        let ratio = err 0.1 /. err 0.05 in
        Alcotest.(check bool) "ratio ~ 16" true (ratio > 12. && ratio < 20.));
    Alcotest.test_case "rk4 matches trapezoidal on harmonic oscillator" `Quick (fun () ->
        let w = two_pi in
        let dae =
          Dae.of_ode ~dim:2 ~rhs:(fun ~t:_ x -> [| x.(1); -.(w *. w) *. x.(0) |]) ()
        in
        let rk = Transient.integrate dae ~method_:Transient.Rk4 ~t0:0. ~t1:1. ~h:0.002 [| 1.; 0. |] in
        let x = Transient.final rk in
        approx_tol 1e-6 "x(1)" 1. x.(0));
  ]

let floquet_tests =
  [
    Alcotest.test_case "van der Pol multiplier matches theory" `Quick (fun () ->
        (* for vdP, the nontrivial multiplier is exp(integral of div f)
           = exp(mu T - mu int x^2 dt); for mu = 1, ~8.4e-4 *)
        let mu = 1.0 in
        let vdp =
          Dae.of_ode ~dim:2
            ~rhs:(fun ~t:_ x -> [| x.(1); (mu *. (1. -. (x.(0) *. x.(0))) *. x.(1)) -. x.(0) |])
            ()
        in
        let orbit = Steady.Oscillator.find vdp ~n1:41 ~period_hint:6.6 [| 2.; 0. |] in
        let r = Steady.Floquet.analyze_orbit vdp orbit in
        Alcotest.(check bool) "stable" true r.Steady.Floquet.stable;
        (* trivial multiplier close to 1 *)
        let trivial = r.Steady.Floquet.multipliers.(r.Steady.Floquet.trivial_index) in
        approx_tol 1e-2 "trivial" 1. (Complex.norm trivial);
        Alcotest.(check bool) "second multiplier tiny" true
          (r.Steady.Floquet.largest_nontrivial < 0.01));
    Alcotest.test_case "linear oscillator is not asymptotically stable" `Quick (fun () ->
        let w = two_pi in
        let lc = Dae.of_ode ~dim:2 ~rhs:(fun ~t:_ x -> [| x.(1); -.(w *. w) *. x.(0) |]) () in
        let r = Steady.Floquet.analyze lc ~period:1. [| 1.; 0. |] in
        Alcotest.(check bool) "neutral" false r.Steady.Floquet.stable;
        Array.iter
          (fun z -> approx_tol 1e-3 "unit circle" 1. (Complex.norm z))
          r.Steady.Floquet.multipliers);
    Alcotest.test_case "monodromy of linear system is the exact exponential" `Quick (fun () ->
        (* x' = -2x: monodromy over T is e^{-2T} *)
        let dae = Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -2. *. x.(0) |]) () in
        let m = Steady.Floquet.monodromy dae ~period:1. ~steps_per_period:2000 [| 1. |] in
        approx_tol 1e-5 "e^-2" (exp (-2.)) m.(0).(0));
  ]

let spectrogram_tests =
  [
    Alcotest.test_case "ridge tracks a linear chirp" `Quick (fun () ->
        (* phase = 20 t + 10 t^2 -> frequency 20 + 20 t over [0, 1] *)
        let fs = 2000. in
        let n = 2048 in
        let x =
          Linalg.Vec.init n (fun i ->
              let t = float_of_int i /. fs in
              sin (two_pi *. ((20. *. t) +. (10. *. t *. t))))
        in
        let spec = Sigproc.Spectrogram.compute ~dt:(1. /. fs) ~window:256 ~hop:64 x in
        let times, freqs = Sigproc.Spectrogram.ridge spec in
        Array.iteri
          (fun i t ->
            let expected = 20. +. (20. *. t) in
            Alcotest.(check bool) "ridge" true (Float.abs (freqs.(i) -. expected) < 2.))
          times);
    Alcotest.test_case "stft of the paper FM signal sweeps f0 +- k f2" `Quick (fun () ->
        let f0 = 200. and f2 = 2. in
        let k = 4. *. Float.pi in
        let fs = 2000. in
        let n = 4096 in
        let x =
          Linalg.Vec.init n (fun i ->
              let t = float_of_int i /. fs in
              cos ((two_pi *. f0 *. t) +. (k *. cos (two_pi *. f2 *. t))))
        in
        let spec = Sigproc.Spectrogram.compute ~dt:(1. /. fs) ~window:256 ~hop:32 x in
        let _, freqs = Sigproc.Spectrogram.ridge spec in
        let lo = Array.fold_left Float.min infinity freqs in
        let hi = Array.fold_left Float.max neg_infinity freqs in
        (* instantaneous frequency spans f0 +- k f2 = 200 +- 25.1 *)
        Alcotest.(check bool) "sweep low" true (lo < 185.);
        Alcotest.(check bool) "sweep high" true (hi > 215.));
    Alcotest.test_case "too-short signal rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Sigproc.Spectrogram.compute ~dt:0.01 ~window:64 ~hop:8 (Linalg.Vec.zeros 10));
             false
           with Invalid_argument _ -> true));
  ]

let suites =
  [
    ("linalg.qr", qr_tests);
    ("linalg.poly", poly_tests);
    ("linalg.eig", eig_tests);
    ("linalg.sparse", sparse_tests);
    ("fourier.hilbert", hilbert_tests);
    ("transient.rk4", rk4_tests);
    ("steady.floquet", floquet_tests);
    ("sigproc.spectrogram", spectrogram_tests);
  ]
