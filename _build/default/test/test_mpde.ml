(* Tests for the plain (unwarped) MPDE baseline. *)

let approx_tol tol = Alcotest.(check (float tol))
let two_pi = 2. *. Float.pi

(* Linear RC filter driven by a fast tone whose amplitude is modulated
   slowly: the canonical AM two-rate problem.  x' + x = a(t2) sin(2 pi
   t1 / p1).  Fast steady state at frozen t2:
   x = a(t2) (sin wt - w cos wt + w e^-t ...) periodic part:
   a (sin(w t) - w cos(w t)) / (1 + w^2) with w = 2 pi / p1. *)
let am_system ~p1 ~a =
  let dae = Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -.x.(0) |]) () in
  { Mpde.dae; p1; b_fast = (fun ~t1 ~t2 -> [| -.(a t2) *. sin (two_pi *. t1 /. p1) |]) }

let am_exact ~p1 ~a t1 t2 =
  let w = two_pi /. p1 in
  a t2 *. ((sin (w *. t1)) -. (w *. cos (w *. t1))) /. (1. +. (w *. w))

let mpde_tests =
  [
    Alcotest.test_case "periodic_initial matches fast steady state" `Quick (fun () ->
        let p1 = 0.01 in
        let a _ = 1. in
        let sys = am_system ~p1 ~a in
        let init = Mpde.periodic_initial sys ~n1:15 ~guess:(Array.init 15 (fun _ -> [| 0. |])) in
        for j = 0 to 14 do
          let t1 = p1 *. float_of_int j /. 15. in
          approx_tol 1e-8 "fast ss" (am_exact ~p1 ~a t1 0.) init.(j).(0)
        done);
    Alcotest.test_case "envelope MPDE tracks slow amplitude modulation" `Quick (fun () ->
        let p1 = 0.01 and p2 = 10. in
        (* slow modulation is quasi-static for the unit-time-constant filter *)
        let a t2 = 1. +. (0.5 *. sin (two_pi *. t2 /. p2)) in
        let sys = am_system ~p1 ~a in
        let init = Mpde.periodic_initial sys ~n1:15 ~guess:(Array.init 15 (fun _ -> [| 0. |])) in
        let res = Mpde.simulate sys ~n1:15 ~t2_end:p2 ~h2:0.05 ~init in
        (* compare the bivariate solution at a few probe points; the slow
           filter lag is ~ 1/(2 pi / p2 .. ) -> small correction, tolerate 2% *)
        let probes = [ (0.0025, 2.5); (0.005, 5.0); (0.0075, 7.5) ] in
        List.iter
          (fun (t1, t2) ->
            let got = Mpde.eval_bivariate res ~component:0 ~t1 ~t2 in
            let expect = am_exact ~p1 ~a t1 t2 in
            Alcotest.(check bool) "close" true (Float.abs (got -. expect) < 0.05))
          probes);
    Alcotest.test_case "diagonal recovery equals brute-force transient" `Quick (fun () ->
        let p1 = 0.02 in
        let a t2 = 1. +. (0.3 *. sin (0.7 *. t2)) in
        let sys = am_system ~p1 ~a in
        let init = Mpde.periodic_initial sys ~n1:15 ~guess:(Array.init 15 (fun _ -> [| 0. |])) in
        let res = Mpde.simulate sys ~n1:15 ~t2_end:3. ~h2:0.05 ~init in
        (* brute force: full dae with fast forcing folded in, started on the
           fast steady state *)
        let full =
          Dae.of_ode ~dim:1
            ~rhs:(fun ~t x -> [| -.x.(0) +. (a t *. sin (two_pi *. t /. p1)) |])
            ()
        in
        let x0 = [| Mpde.eval_bivariate res ~component:0 ~t1:0. ~t2:0. |] in
        let traj =
          Transient.integrate full ~method_:Transient.Trapezoidal ~t0:0. ~t1:3.
            ~h:(p1 /. 100.) x0
        in
        let worst = ref 0. in
        for k = 0 to 300 do
          let t = 3. *. float_of_int k /. 300. in
          let got = Mpde.eval_waveform res ~component:0 t in
          let expect = Transient.interpolate traj 0 t in
          worst := Float.max !worst (Float.abs (got -. expect))
        done;
        Alcotest.(check bool) "waveforms agree" true (!worst < 0.02));
    Alcotest.test_case "quasiperiodic MPDE: biperiodic steady state" `Quick (fun () ->
        let p1 = 0.01 and p2 = 5. in
        let a t2 = 1. +. (0.5 *. sin (two_pi *. t2 /. p2)) in
        let sys = am_system ~p1 ~a in
        let n1 = 11 and n2 = 11 in
        let guess = Array.init n2 (fun _ -> Array.init n1 (fun _ -> [| 0. |])) in
        let res = Mpde.quasiperiodic sys ~n1 ~n2 ~p2 ~guess in
        (* the filter follows the quasi-static fast steady state with a slow
           first-order lag; verify against a settled transient instead of
           the instantaneous formula *)
        let full =
          Dae.of_ode ~dim:1
            ~rhs:(fun ~t x -> [| -.x.(0) +. (a t *. sin (two_pi *. t /. p1)) |])
            ()
        in
        let traj =
          Transient.integrate full ~method_:Transient.Trapezoidal ~t0:0. ~t1:(3. *. p2)
            ~h:(p1 /. 60.) [| 0. |]
        in
        (* compare at t in the third slow period, mapped into the bivariate *)
        let worst = ref 0. in
        for k = 0 to 50 do
          let t = (2. *. p2) +. (p2 *. float_of_int k /. 50.) in
          let got = Mpde.eval_waveform res ~component:0 t in
          let expect = Transient.interpolate traj 0 t in
          worst := Float.max !worst (Float.abs (got -. expect))
        done;
        Alcotest.(check bool) "biperiodic matches settled transient" true (!worst < 0.02));
    Alcotest.test_case "even n1 rejected" `Quick (fun () ->
        let sys = am_system ~p1:0.01 ~a:(fun _ -> 1.) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Mpde.periodic_initial sys ~n1:10 ~guess:(Array.init 10 (fun _ -> [| 0. |])));
             false
           with Invalid_argument _ -> true));
  ]

let suites = [ ("mpde", mpde_tests) ]
