(* Tests for the MNA substrate and the VCO circuit models. *)
open Linalg
open Circuit

let approx_tol tol = Alcotest.(check (float tol))

(* RC low-pass driven by a DC source: analytic charging curve. *)
let rc_lowpass ~r ~c ~vs =
  let net = Mna.create () in
  let nin = Mna.node net "in" and nout = Mna.node net "out" in
  Mna.add net (Mna.vsource ~label:"V1" ~v:(fun _ -> vs) nin Mna.ground);
  Mna.add net (Mna.resistor ~label:"R1" ~r nin nout);
  Mna.add net (Mna.capacitor ~label:"C1" ~c nout Mna.ground);
  (net, nin, nout)

let mna_tests =
  [
    Alcotest.test_case "node ids and ground aliases" `Quick (fun () ->
        let net = Mna.create () in
        Alcotest.(check int) "gnd" 0 (Mna.node net "gnd");
        Alcotest.(check int) "0" 0 (Mna.node net "0");
        Alcotest.(check int) "GROUND" 0 (Mna.node net "GROUND");
        let a = Mna.node net "a" in
        Alcotest.(check int) "a twice" a (Mna.node net "a");
        Alcotest.(check int) "count" 1 (Mna.node_count net));
    Alcotest.test_case "resistor divider dc" `Quick (fun () ->
        let net = Mna.create () in
        let nin = Mna.node net "in" and mid = Mna.node net "mid" in
        Mna.add net (Mna.vsource ~label:"V" ~v:(fun _ -> 10.) nin Mna.ground);
        Mna.add net (Mna.resistor ~label:"R1" ~r:1. nin mid);
        Mna.add net (Mna.resistor ~label:"R2" ~r:3. mid Mna.ground);
        let dae = Mna.compile net in
        let report = Dae.dc_operating_point ~x0:(Mna.initial_guess net) dae in
        Alcotest.(check bool) "converged" true report.Nonlin.Newton.converged;
        let x = report.Nonlin.Newton.x in
        approx_tol 1e-9 "v(in)" 10. x.(nin - 1);
        approx_tol 1e-9 "v(mid)" 7.5 x.(mid - 1));
    Alcotest.test_case "rc charging curve" `Quick (fun () ->
        let r = 2. and c = 0.5 and vs = 5. in
        let net, _, nout = rc_lowpass ~r ~c ~vs in
        let dae = Mna.compile net in
        let traj =
          Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:3. ~h:0.002
            (Mna.initial_guess net)
        in
        let tau = r *. c in
        let v_expected = vs *. (1. -. exp (-3. /. tau)) in
        approx_tol 1e-3 "v(out)(3)" v_expected (Transient.interpolate traj (nout - 1) 3.));
    Alcotest.test_case "analytic jacobians match finite differences" `Quick (fun () ->
        let p = Vco.vco_a () in
        let dae = Vco.build p in
        let x = [| 1.3; -0.2; 0.9; 0.1 |] in
        let fd_dq = Nonlin.Fdjac.jacobian_central dae.Dae.q x in
        let fd_df = Nonlin.Fdjac.jacobian_central (fun y -> dae.Dae.f ~t:7. y) x in
        Alcotest.(check bool) "dq" true (Mat.approx_equal ~tol:1e-5 (dae.Dae.dq x) fd_dq);
        Alcotest.(check bool) "df" true
          (Mat.approx_equal ~tol:1e-5 (dae.Dae.df ~t:7. x) fd_df));
    Alcotest.test_case "kcl: total device current at a 3-way node sums to zero" `Quick
      (fun () ->
        (* current divider: source pushes 2 into node with two resistors *)
        let net = Mna.create () in
        let a = Mna.node net "a" in
        Mna.add net (Mna.isource ~label:"I" ~i:(fun _ -> 2.) Mna.ground a);
        Mna.add net (Mna.resistor ~label:"Ra" ~r:1. a Mna.ground);
        Mna.add net (Mna.resistor ~label:"Rb" ~r:1. a Mna.ground);
        let dae = Mna.compile net in
        let report = Dae.dc_operating_point dae in
        approx_tol 1e-10 "v(a)" 1. report.Nonlin.Newton.x.(a - 1));
    Alcotest.test_case "diode rectifies" `Quick (fun () ->
        let net = Mna.create () in
        let nin = Mna.node net "in" and nout = Mna.node net "out" in
        Mna.add net (Mna.vsource ~label:"V" ~v:(fun _ -> 0.8) nin Mna.ground);
        Mna.add net (Mna.diode ~label:"D" nin nout);
        Mna.add net (Mna.resistor ~label:"R" ~r:1. nout Mna.ground);
        let dae = Mna.compile net in
        let report = Dae.dc_operating_point ~x0:[| 0.8; 0.5; 0. |] dae in
        Alcotest.(check bool) "converged" true report.Nonlin.Newton.converged;
        let vout = report.Nonlin.Newton.x.(nout - 1) in
        Alcotest.(check bool) "forward drop ~0.5-0.7" true (vout > 0.05 && vout < 0.75));
    Alcotest.test_case "inductor branch equation" `Quick (fun () ->
        (* V source across L: i(t) = (V/L) t *)
        let net = Mna.create () in
        let a = Mna.node net "a" in
        Mna.add net (Mna.vsource ~label:"V" ~v:(fun _ -> 2.) a Mna.ground);
        Mna.add net (Mna.inductor ~label:"L" ~l:0.5 a Mna.ground);
        let dae = Mna.compile net in
        let traj =
          Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:1. ~h:0.001
            (Mna.initial_guess net)
        in
        (* x layout: v(a), V.i, L.i *)
        approx_tol 1e-6 "i_L(1) = V t / L" 4. (Transient.interpolate traj 2 1.));
    Alcotest.test_case "nonlinear capacitor stores q(v)" `Quick (fun () ->
        let net = Mna.create () in
        let a = Mna.node net "a" in
        Mna.add net
          (Mna.nonlinear_capacitor ~label:"C" ~q:(fun v -> v +. (0.1 *. (v ** 3.)))
             ~dq:(fun v -> 1. +. (0.3 *. (v *. v)))
             a Mna.ground);
        Mna.add net (Mna.resistor ~label:"R" ~r:1. a Mna.ground);
        let dae = Mna.compile net in
        approx_tol 1e-12 "q at v=2" 2.8 (dae.Dae.q [| 2. |]).(0);
        approx_tol 1e-12 "dq at v=2" 2.2 (dae.Dae.dq [| 2. |]).(0).(0));
  ]

let vco_tests =
  [
    Alcotest.test_case "nominal frequency is 0.75 MHz" `Quick (fun () ->
        let p = Vco.default_params ~control:(fun _ -> 1.5) () in
        approx_tol 1e-3 "f" 0.7503 (Vco.nominal_frequency p));
    Alcotest.test_case "amplitude estimate is 2 V" `Quick (fun () ->
        let p = Vco.vco_a () in
        approx_tol 1e-9 "amp" 2. (Vco.amplitude_estimate p));
    Alcotest.test_case "equilibrium gap at bias is gap0" `Quick (fun () ->
        let p = Vco.vco_a () in
        approx_tol 1e-9 "gap" 1. (Vco.equilibrium_gap p 1.5);
        let pb = Vco.vco_b () in
        approx_tol 1e-9 "gap b" 1. (Vco.equilibrium_gap pb 1.5));
    Alcotest.test_case "higher control voltage closes the gap (lower frequency)" `Quick
      (fun () ->
        let p = Vco.vco_a () in
        let g_low = Vco.equilibrium_gap p 1.0 in
        let g_high = Vco.equilibrium_gap p 2.5 in
        Alcotest.(check bool) "monotone" true (g_high < 1. && g_low > 1.);
        Alcotest.(check bool) "freq follows sqrt(gap)" true
          (Vco.frequency_of_gap p g_high < Vco.frequency_of_gap p g_low));
    Alcotest.test_case "parallel-plate equilibrium solves force balance" `Quick (fun () ->
        let p =
          Vco.default_params ~force_power:2 ~control:(fun _ -> 1.5) ()
        in
        let va = p.Vco.varactor in
        let g = Vco.equilibrium_gap p 2.0 in
        let balance =
          (va.Mna.stiffness *. (g -. va.Mna.g_rest)) +. (va.Mna.force0 *. 4.0 /. (g *. g))
        in
        approx_tol 1e-9 "balance" 0. balance);
    Alcotest.test_case "netlist VCO equals hand-coded DAE" `Quick (fun () ->
        let p = Vco.vco_a () in
        let dae = Vco.build p in
        let va = p.Vco.varactor in
        (* hand-coded: x = [v; iL; g; u] *)
        let q_hand x =
          [| va.Mna.c0 *. va.Mna.gap0 *. x.(0) /. x.(2); p.Vco.l *. x.(1); x.(2); va.Mna.mass *. x.(3) |]
        in
        let f_hand ~t x =
          let vc = va.Mna.control t in
          [|
            x.(1) +. (-.p.Vco.g1 *. x.(0)) +. (p.Vco.g3 *. (x.(0) ** 3.));
            -.x.(0);
            -.x.(3);
            (va.Mna.damping *. x.(3))
            +. (va.Mna.stiffness *. (x.(2) -. va.Mna.g_rest))
            +. (va.Mna.force0 *. vc *. vc);
          |]
        in
        let x = [| 1.7; -0.4; 0.8; 0.05 |] in
        Alcotest.(check bool) "q" true (Vec.approx_equal ~tol:1e-12 (dae.Dae.q x) (q_hand x));
        Alcotest.(check bool) "f" true
          (Vec.approx_equal ~tol:1e-12 (dae.Dae.f ~t:3. x) (f_hand ~t:3. x)));
    Alcotest.test_case "unforced VCO oscillates near nominal frequency" `Slow (fun () ->
        let p = Vco.default_params ~control:(fun _ -> 1.5) () in
        let dae = Vco.build p in
        let x0 = Vco.initial_state p in
        let t1 = 20. in
        let traj =
          Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1 ~h:(1.333 /. 400.) x0
        in
        let v = Transient.component traj 0 in
        let dt = traj.Transient.times.(1) -. traj.Transient.times.(0) in
        let f = Fourier.Spectrum.dominant_frequency ~dt v in
        Alcotest.(check bool) "f ~ 0.75" true (Float.abs (f -. 0.75) < 0.02));
    Alcotest.test_case "mems gap responds to control voltage step" `Quick (fun () ->
        (* step the control voltage; gap must move toward the new equilibrium *)
        let p =
          Vco.default_params ~damping:1.57
            ~control:(fun t -> if t < 0.01 then 1.5 else 2.5)
            ()
        in
        let dae = Vco.build p in
        let x0 = Vco.initial_state p in
        let traj =
          Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:400. ~h:0.05 x0
        in
        let g_final = Transient.interpolate traj Vco.idx_gap 400. in
        let g_target = Vco.equilibrium_gap p 2.5 in
        approx_tol 0.02 "gap settles" g_target g_final);
  ]

let prop_tests =
  let open QCheck in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"charge neutrality: capacitor charges sum to zero" ~count:30
         (make
            Gen.(tup3 (float_range 0.1 10.) (float_range (-5.) 5.) (float_range (-5.) 5.)))
         (fun (c, v1, v2) ->
           let net = Mna.create () in
           let a = Mna.node net "a" and b = Mna.node net "b" in
           Mna.add net (Mna.capacitor ~label:"C" ~c a b);
           (* anchor both nodes with resistors so the system is well-posed *)
           Mna.add net (Mna.resistor ~label:"Ra" ~r:1. a Mna.ground);
           Mna.add net (Mna.resistor ~label:"Rb" ~r:1. b Mna.ground);
           let dae = Mna.compile net in
           let q = dae.Dae.q [| v1; v2 |] in
           Float.abs (q.(0) +. q.(1)) < 1e-12));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"vco jacobians match fd at random states" ~count:25
         (make
            Gen.(
              tup4 (float_range (-2.5) 2.5) (float_range (-1.) 1.) (float_range 0.4 2.5)
                (float_range (-0.5) 0.5)))
         (fun (v, i, g, u) ->
           let p = Vco.vco_b () in
           let dae = Vco.build p in
           let x = [| v; i; g; u |] in
           let fd_dq = Nonlin.Fdjac.jacobian_central dae.Dae.q x in
           let fd_df = Nonlin.Fdjac.jacobian_central (fun y -> dae.Dae.f ~t:2. y) x in
           Mat.approx_equal ~tol:1e-4 (dae.Dae.dq x) fd_dq
           && Mat.approx_equal ~tol:1e-4 (dae.Dae.df ~t:2. x) fd_df));
  ]

let suites =
  [ ("circuit.mna", mna_tests); ("circuit.vco", vco_tests); ("circuit.properties", prop_tests) ]

