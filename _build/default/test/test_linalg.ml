(* Tests for the dense/complex linear algebra substrate. *)
open Linalg

let approx = Alcotest.(check (float 1e-9))
let approx_tol tol = Alcotest.(check (float tol))

let vec_tests =
  [
    Alcotest.test_case "linspace endpoints" `Quick (fun () ->
        let v = Vec.linspace 0. 1. 11 in
        approx "first" 0. v.(0);
        approx "last" 1. v.(10);
        approx "step" 0.1 (v.(1) -. v.(0)));
    Alcotest.test_case "dot orthogonal" `Quick (fun () ->
        approx "dot" 0. (Vec.dot [| 1.; 0.; -1. |] [| 1.; 5.; 1. |]));
    Alcotest.test_case "dot compensated" `Quick (fun () ->
        (* summing 1 and many tiny terms that cancel: naive summation loses them *)
        let n = 10_000 in
        let u = Array.make (n + 1) 1. and v = Array.make (n + 1) 1e-16 in
        u.(0) <- 1.;
        v.(0) <- 1.;
        let d = Vec.dot u v in
        approx_tol 1e-18 "sum" (1. +. (float_of_int n *. 1e-16)) d);
    Alcotest.test_case "norms" `Quick (fun () ->
        let v = [| 3.; -4. |] in
        approx "norm2" 5. (Vec.norm2 v);
        approx "norm1" 7. (Vec.norm1 v);
        approx "norm_inf" 4. (Vec.norm_inf v);
        approx "rms" (5. /. sqrt 2.) (Vec.rms v));
    Alcotest.test_case "axpy" `Quick (fun () ->
        let y = [| 1.; 2. |] in
        Vec.axpy ~a:2. ~x:[| 10.; 20. |] y;
        Alcotest.(check bool) "eq" true (Vec.approx_equal y [| 21.; 42. |]));
    Alcotest.test_case "weighted_norm" `Quick (fun () ->
        approx "wn" 2. (Vec.weighted_norm ~scale:[| 1.; 10. |] [| 2.; 5. |]));
    Alcotest.test_case "max_abs_index" `Quick (fun () ->
        Alcotest.(check int) "idx" 1 (Vec.max_abs_index [| 1.; -7.; 3. |]));
    Alcotest.test_case "mismatched lengths raise" `Quick (fun () ->
        Alcotest.check_raises "add" (Invalid_argument "Vec.add: length 2 <> 3") (fun () ->
            ignore (Vec.add [| 1.; 2. |] [| 1.; 2.; 3. |])));
  ]

let mat_tests =
  [
    Alcotest.test_case "identity mul" `Quick (fun () ->
        let a = Mat.init 3 3 (fun i j -> float_of_int ((i * 3) + j + 1)) in
        Alcotest.(check bool) "I*A = A" true (Mat.approx_equal (Mat.mul (Mat.identity 3) a) a));
    Alcotest.test_case "matvec known" `Quick (fun () ->
        let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
        Alcotest.(check bool)
          "Av" true
          (Vec.approx_equal (Mat.matvec a [| 1.; 1. |]) [| 3.; 7. |]));
    Alcotest.test_case "tmatvec = transpose matvec" `Quick (fun () ->
        let a = Mat.init 3 4 (fun i j -> float_of_int (i + (2 * j)) -. 2.5) in
        let v = [| 1.; -2.; 0.5 |] in
        Alcotest.(check bool)
          "eq" true
          (Vec.approx_equal (Mat.tmatvec a v) (Mat.matvec (Mat.transpose a) v)));
    Alcotest.test_case "mul associativity on small case" `Quick (fun () ->
        let a = Mat.init 2 3 (fun i j -> float_of_int ((i + 1) * (j + 2)))
        and b = Mat.init 3 2 (fun i j -> float_of_int (i - j))
        and c = Mat.init 2 2 (fun i j -> float_of_int ((2 * i) + j)) in
        Alcotest.(check bool)
          "(ab)c = a(bc)" true
          (Mat.approx_equal (Mat.mul (Mat.mul a b) c) (Mat.mul a (Mat.mul b c))));
    Alcotest.test_case "norm_inf" `Quick (fun () ->
        approx "norm" 7. (Mat.norm_inf [| [| 1.; -2. |]; [| 3.; 4. |] |]));
  ]

let lu_tests =
  [
    Alcotest.test_case "solve known 2x2" `Quick (fun () ->
        let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
        let x = Lu.solve_dense a [| 5.; 10. |] in
        Alcotest.(check bool) "x" true (Vec.approx_equal x [| 1.; 3. |]));
    Alcotest.test_case "det with pivoting" `Quick (fun () ->
        let a = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
        approx "det" (-1.) (Lu.det (Lu.factor a)));
    Alcotest.test_case "inverse" `Quick (fun () ->
        let a = [| [| 4.; 7. |]; [| 2.; 6. |] |] in
        let inv = Lu.inverse (Lu.factor a) in
        Alcotest.(check bool) "A A^-1 = I" true
          (Mat.approx_equal (Mat.mul a inv) (Mat.identity 2)));
    Alcotest.test_case "singular raises" `Quick (fun () ->
        let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Lu.factor a);
             false
           with Lu.Singular _ -> true));
    Alcotest.test_case "condition estimate of identity" `Quick (fun () ->
        let c = Lu.condition_estimate (Mat.identity 6) in
        Alcotest.(check bool) "cond ~ 1" true (c >= 0.9 && c <= 1.5));
    Alcotest.test_case "solve_matrix" `Quick (fun () ->
        let a = [| [| 3.; 1. |]; [| 1.; 2. |] |] in
        let x = Lu.solve_matrix (Lu.factor a) (Mat.identity 2) in
        Alcotest.(check bool) "AX = I" true (Mat.approx_equal (Mat.mul a x) (Mat.identity 2)));
  ]

let tridiag_tests =
  [
    Alcotest.test_case "tridiagonal known" `Quick (fun () ->
        (* [2 -1; -1 2 -1; -1 2] x = b against dense solve *)
        let n = 5 in
        let lower = Array.make (n - 1) (-1.)
        and upper = Array.make (n - 1) (-1.)
        and diag = Array.make n 2. in
        let b = Vec.init n (fun i -> float_of_int (i + 1)) in
        let x = Tridiag.solve ~lower ~diag ~upper b in
        let a =
          Mat.init n n (fun i j ->
              if i = j then 2. else if abs (i - j) = 1 then -1. else 0.)
        in
        Alcotest.(check bool) "vs dense" true
          (Vec.approx_equal ~tol:1e-10 x (Lu.solve_dense a b)));
    Alcotest.test_case "cyclic tridiagonal vs dense" `Quick (fun () ->
        let n = 7 in
        let lower = Vec.init (n - 1) (fun i -> -1. +. (0.1 *. float_of_int i))
        and upper = Vec.init (n - 1) (fun i -> -1.2 +. (0.05 *. float_of_int i))
        and diag = Vec.init n (fun i -> 4. +. (0.3 *. float_of_int i)) in
        let cl = 0.7 and ch = -0.4 in
        let b = Vec.init n (fun i -> sin (float_of_int i)) in
        let a =
          Mat.init n n (fun i j ->
              if i = j then diag.(i)
              else if j = i + 1 then upper.(i)
              else if j = i - 1 then lower.(j)
              else if i = 0 && j = n - 1 then ch
              else if i = n - 1 && j = 0 then cl
              else 0.)
        in
        let x = Tridiag.solve_cyclic ~lower ~diag ~upper ~corner_low:cl ~corner_high:ch b in
        Alcotest.(check bool) "vs dense" true
          (Vec.approx_equal ~tol:1e-9 x (Lu.solve_dense a b)));
  ]

let gmres_tests =
  [
    Alcotest.test_case "gmres solves SPD system" `Quick (fun () ->
        let n = 20 in
        let a =
          Mat.init n n (fun i j ->
              if i = j then 4. else if abs (i - j) = 1 then -1. else 0.)
        in
        let xref = Vec.init n (fun i -> cos (float_of_int i)) in
        let b = Mat.matvec a xref in
        let r = Gmres.solve_mat a ~tol:1e-12 b in
        Alcotest.(check bool) "converged" true r.Gmres.converged;
        Alcotest.(check bool) "solution" true (Vec.approx_equal ~tol:1e-8 r.Gmres.x xref));
    Alcotest.test_case "gmres with preconditioner converges faster" `Quick (fun () ->
        let n = 40 in
        let d = Vec.init n (fun i -> 1. +. float_of_int i) in
        let a = Mat.init n n (fun i j -> if i = j then d.(i) else 0.01) in
        let b = Vec.init n (fun i -> float_of_int (i mod 3) -. 1.) in
        let matvec v = Mat.matvec a v in
        let plain = Gmres.solve ~matvec ~restart:10 ~tol:1e-10 b in
        let m_inv v = Vec.init n (fun i -> v.(i) /. d.(i)) in
        let pre = Gmres.solve ~matvec ~m_inv ~restart:10 ~tol:1e-10 b in
        Alcotest.(check bool) "pre converged" true pre.Gmres.converged;
        Alcotest.(check bool) "fewer iters" true (pre.Gmres.iterations <= plain.Gmres.iterations));
    Alcotest.test_case "gmres nonsymmetric" `Quick (fun () ->
        let a = [| [| 1.; 2.; 0. |]; [| 0.; 3.; 4. |]; [| 5.; 0.; 6. |] |] in
        let xref = [| 1.; -1.; 2. |] in
        let b = Mat.matvec a xref in
        let r = Gmres.solve_mat a ~tol:1e-13 b in
        Alcotest.(check bool) "solution" true (Vec.approx_equal ~tol:1e-9 r.Gmres.x xref));
  ]

let cx_tests =
  [
    Alcotest.test_case "complex LU solve" `Quick (fun () ->
        let open Cx in
        let a =
          [|
            [| cx 2. 1.; cx 0. (-1.) |];
            [| cx 1. 0.; cx 3. 2. |];
          |]
        in
        let xref = [| cx 1. (-2.); cx 0.5 0.5 |] in
        let b = Cmat.matvec a xref in
        let x = Clu.solve_dense a b in
        Alcotest.(check bool) "x" true (Cvec.approx_equal ~tol:1e-12 x xref));
    Alcotest.test_case "cis and polar" `Quick (fun () ->
        let z = Cx.cis (Float.pi /. 2.) in
        approx "re" 0. (Cx.re z);
        approx "im" 1. (Cx.im z));
    Alcotest.test_case "hermitian dot" `Quick (fun () ->
        let open Cx in
        let v = [| cx 0. 1.; cx 3. 4. |] in
        approx "norm^2" 26. (re (Cvec.dot v v));
        approx "imag zero" 0. (im (Cvec.dot v v)));
  ]

(* Property-based tests *)
let prop_tests =
  let open QCheck in
  let finite_float = Gen.float_range (-100.) 100. in
  let vec_gen n = Gen.array_size (Gen.return n) finite_float in
  let mat_gen n =
    Gen.map
      (fun rows ->
        (* diagonally boost to keep matrices comfortably nonsingular *)
        Array.mapi
          (fun i row ->
            let r = Array.copy row in
            r.(i) <- r.(i) +. 500.;
            r)
          rows)
      (Gen.array_size (Gen.return n) (vec_gen n))
  in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"lu: A (A \\ b) = b" ~count:60
         (make (Gen.pair (mat_gen 8) (vec_gen 8)))
         (fun (a, b) ->
           let x = Lu.solve_dense a b in
           Vec.approx_equal ~tol:1e-6 (Mat.matvec a x) b));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"lu: det(A) * det(A^-1) = 1" ~count:30 (make (mat_gen 5)) (fun a ->
           let f = Lu.factor a in
           let inv = Lu.inverse f in
           Float.abs ((Lu.det f *. Lu.det (Lu.factor inv)) -. 1.) < 1e-6));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"gmres matches lu" ~count:30
         (make (Gen.pair (mat_gen 6) (vec_gen 6)))
         (fun (a, b) ->
           let x_lu = Lu.solve_dense a b in
           let r = Gmres.solve_mat a ~tol:1e-13 b in
           Vec.approx_equal ~tol:1e-6 r.Gmres.x x_lu));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"vec: triangle inequality" ~count:100
         (make (Gen.pair (vec_gen 12) (vec_gen 12)))
         (fun (u, v) -> Vec.norm2 (Vec.add u v) <= Vec.norm2 u +. Vec.norm2 v +. 1e-9));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"mat: (AB)^T = B^T A^T" ~count:40
         (make (Gen.pair (mat_gen 5) (mat_gen 5)))
         (fun (a, b) ->
           Mat.approx_equal ~tol:1e-6
             (Mat.transpose (Mat.mul a b))
             (Mat.mul (Mat.transpose b) (Mat.transpose a))));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"tridiag matches dense" ~count:40
         (make
            (Gen.tup4 (vec_gen 9) (vec_gen 10) (vec_gen 9) (vec_gen 10)))
         (fun (lower, diag, upper, b) ->
           let diag = Array.map (fun x -> x +. 300.) diag in
           let n = Array.length diag in
           let a =
             Mat.init n n (fun i j ->
                 if i = j then diag.(i)
                 else if j = i + 1 then upper.(i)
                 else if j = i - 1 then lower.(j)
                 else 0.)
           in
           let x = Tridiag.solve ~lower ~diag ~upper b in
           Vec.approx_equal ~tol:1e-6 x (Lu.solve_dense a b)));
  ]

let suites =
  [
    ("linalg.vec", vec_tests);
    ("linalg.mat", mat_tests);
    ("linalg.lu", lu_tests);
    ("linalg.tridiag", tridiag_tests);
    ("linalg.gmres", gmres_tests);
    ("linalg.cx", cx_tests);
    ("linalg.properties", prop_tests);
  ]
