(* Tests for Newton, Broyden, finite-difference Jacobians and continuation. *)
open Linalg
open Nonlin

let approx_tol tol = Alcotest.(check (float tol))

(* Rosenbrock-style 2-D system with root (1, 1). *)
let rosen_residual x = [| 10. *. (x.(1) -. (x.(0) *. x.(0))); 1. -. x.(0) |]

let fdjac_tests =
  [
    Alcotest.test_case "fd jacobian of linear map is the matrix" `Quick (fun () ->
        let a = [| [| 2.; -1. |]; [| 0.5; 3. |] |] in
        let f x = Mat.matvec a x in
        let j = Fdjac.jacobian f [| 0.3; -0.7 |] in
        Alcotest.(check bool) "eq" true (Mat.approx_equal ~tol:1e-6 j a));
    Alcotest.test_case "central jacobian more accurate on cubic" `Quick (fun () ->
        let f x = [| x.(0) ** 3. |] in
        let x = [| 2. |] in
        let fwd = Float.abs ((Fdjac.jacobian f x).(0).(0) -. 12.) in
        let ctr = Float.abs ((Fdjac.jacobian_central f x).(0).(0) -. 12.) in
        Alcotest.(check bool) "central better" true (ctr < fwd));
    Alcotest.test_case "directional derivative" `Quick (fun () ->
        let f x = [| x.(0) *. x.(1); x.(0) +. x.(1) |] in
        let jv = Fdjac.directional f [| 2.; 3. |] [| 1.; -1. |] in
        (* J = [[3, 2], [1, 1]]; J [1, -1] = [1, 0] *)
        approx_tol 1e-6 "jv0" 1. jv.(0);
        approx_tol 1e-6 "jv1" 0. jv.(1));
  ]

let newton_tests =
  [
    Alcotest.test_case "quadratic convergence on sqrt(2)" `Quick (fun () ->
        let report =
          Newton.solve ~residual:(fun x -> [| (x.(0) *. x.(0)) -. 2. |]) [| 1. |]
        in
        Alcotest.(check bool) "converged" true report.Newton.converged;
        approx_tol 1e-9 "root" (sqrt 2.) report.Newton.x.(0);
        Alcotest.(check bool) "few iterations" true (report.Newton.iterations <= 8));
    Alcotest.test_case "rosenbrock system" `Quick (fun () ->
        let report = Newton.solve ~residual:rosen_residual [| -1.2; 1. |] in
        Alcotest.(check bool) "converged" true report.Newton.converged;
        approx_tol 1e-8 "x0" 1. report.Newton.x.(0);
        approx_tol 1e-8 "x1" 1. report.Newton.x.(1));
    Alcotest.test_case "analytic jacobian used" `Quick (fun () ->
        let residual x = [| exp x.(0) -. 2. |] in
        let jacobian x = [| [| exp x.(0) |] |] in
        let x = Newton.solve_exn ~jacobian ~residual [| 0. |] in
        approx_tol 1e-10 "ln 2" (log 2.) x.(0));
    Alcotest.test_case "line search rescues bad start" `Quick (fun () ->
        (* atan has tiny derivative far out; undamped Newton diverges from 4 *)
        let report = Newton.solve ~residual:(fun x -> [| atan x.(0) |]) [| 4. |] in
        Alcotest.(check bool) "converged" true report.Newton.converged;
        approx_tol 1e-8 "root" 0. report.Newton.x.(0));
    Alcotest.test_case "singular jacobian reported" `Quick (fun () ->
        let report =
          Newton.solve
            ~jacobian:(fun _ -> Mat.zeros 1 1)
            ~residual:(fun x -> [| x.(0) +. 1. |])
            [| 0. |]
        in
        Alcotest.(check bool) "not converged" false report.Newton.converged;
        Alcotest.(check bool) "reason" true (report.Newton.reason = Some Newton.Singular_jacobian));
    Alcotest.test_case "scalar newton" `Quick (fun () ->
        let r = Newton.scalar (fun x -> (x *. x) -. 9.) (fun x -> 2. *. x) 5. in
        approx_tol 1e-10 "root" 3. r);
  ]

let broyden_tests =
  [
    Alcotest.test_case "broyden solves rosenbrock" `Quick (fun () ->
        let report = Broyden.solve ~residual:rosen_residual [| -1.2; 1. |] in
        Alcotest.(check bool) "converged" true report.Newton.converged;
        approx_tol 1e-7 "x0" 1. report.Newton.x.(0));
    Alcotest.test_case "broyden matches newton on mildly nonlinear system" `Quick (fun () ->
        let residual x =
          [| (3. *. x.(0)) -. cos (x.(1) *. x.(2)) -. 0.5;
             (x.(0) *. x.(0)) -. (81. *. ((x.(1) +. 0.1) ** 2.)) +. sin x.(2) +. 1.06;
             exp (-.x.(0) *. x.(1)) +. (20. *. x.(2)) +. (((10. *. Float.pi) -. 3.) /. 3.) |]
        in
        let rb = Broyden.solve ~residual [| 0.1; 0.1; -0.1 |] in
        let rn = Newton.solve ~residual [| 0.1; 0.1; -0.1 |] in
        Alcotest.(check bool) "both converged" true
          (rb.Newton.converged && rn.Newton.converged);
        Alcotest.(check bool) "same root" true
          (Vec.approx_equal ~tol:1e-6 rb.Newton.x rn.Newton.x));
  ]

let continuation_tests =
  [
    Alcotest.test_case "continuation tracks a folding-free branch" `Quick (fun () ->
        (* x^3 + x = lambda has a unique smooth branch *)
        let residual lambda x = [| (x.(0) ** 3.) +. x.(0) -. lambda |] in
        let x = Continuation.solve_at ~residual ~from_:0. ~to_:10. [| 0. |] in
        approx_tol 1e-8 "f(x) = 10" 10. ((x.(0) ** 3.) +. x.(0)));
    Alcotest.test_case "trace ends at target" `Quick (fun () ->
        let residual lambda x = [| x.(0) -. (lambda *. lambda) |] in
        let pts = Continuation.trace ~residual ~from_:0. ~to_:2. [| 0. |] in
        let last = List.nth pts (List.length pts - 1) in
        approx_tol 1e-12 "lambda" 2. last.Continuation.lambda;
        approx_tol 1e-8 "x" 4. last.Continuation.x.(0));
  ]

let prop_tests =
  let open QCheck in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"newton finds cbrt for random targets" ~count:50
         (make (Gen.float_range 0.5 50.)) (fun target ->
           let report =
             Newton.solve ~residual:(fun x -> [| (x.(0) ** 3.) -. target |]) [| 2. |]
           in
           report.Newton.converged
           && Float.abs (report.Newton.x.(0) -. (target ** (1. /. 3.))) < 1e-6));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"newton is scale invariant" ~count:30
         (make (Gen.float_range 0.01 100.)) (fun s ->
           (* scaling the residual must not change the root *)
           let residual x = [| s *. ((x.(0) *. x.(0)) -. 5.) |] in
           let report = Newton.solve ~residual [| 2. |] in
           report.Newton.converged && Float.abs (report.Newton.x.(0) -. sqrt 5.) < 1e-5));
  ]

let suites =
  [
    ("nonlin.fdjac", fdjac_tests);
    ("nonlin.newton", newton_tests);
    ("nonlin.broyden", broyden_tests);
    ("nonlin.continuation", continuation_tests);
    ("nonlin.properties", prop_tests);
  ]
