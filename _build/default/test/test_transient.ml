(* Tests for the DAE abstraction and transient integrators. *)
open Linalg

let approx_tol tol = Alcotest.(check (float tol))
let two_pi = 2. *. Float.pi

(* Linear decay x' = -x as a DAE. *)
let decay = Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -.x.(0) |]) ()

(* Undamped harmonic oscillator x'' + w^2 x = 0 in first-order form. *)
let harmonic w =
  Dae.of_ode ~dim:2
    ~rhs:(fun ~t:_ x -> [| x.(1); -.(w *. w) *. x.(0) |])
    ~drhs:(fun ~t:_ _ -> [| [| 0.; 1. |]; [| -.(w *. w); 0. |] |])
    ()

(* LC tank in charge form: q1 = C v, q2 = L i; f = (i, -v).
   Exercises a nontrivial q(.) with analytic Jacobians. *)
let lc_tank ~l ~c =
  Dae.make ~dim:2
    ~q:(fun x -> [| c *. x.(0); l *. x.(1) |])
    ~f:(fun ~t:_ x -> [| x.(1); -.x.(0) |])
    ~dq:(fun _ -> [| [| c; 0. |]; [| 0.; l |] |])
    ~df:(fun ~t:_ _ -> [| [| 0.; 1. |]; [| 0.; -0. |] |])
    ~var_names:[| "v"; "i" |]
    ()

let dae_tests =
  [
    Alcotest.test_case "consistent derivative of LC tank" `Quick (fun () ->
        let dae = lc_tank ~l:2. ~c:0.5 in
        let xdot = Dae.consistent_derivative dae ~t:0. [| 1.; 3. |] in
        (* C v' = -i, L i' = v  =>  v' = -i/C = -6, i' = v/L = 0.5 *)
        approx_tol 1e-12 "v'" (-6.) xdot.(0);
        approx_tol 1e-12 "i'" 0.5 xdot.(1));
    Alcotest.test_case "residual vanishes on consistent derivative" `Quick (fun () ->
        let dae = lc_tank ~l:1.5 ~c:0.3 in
        let x = [| 0.7; -0.2 |] in
        let xdot = Dae.consistent_derivative dae ~t:0. x in
        let r = Dae.residual dae ~t:0. ~xdot x in
        Alcotest.(check bool) "zero" true (Vec.norm_inf r < 1e-12));
    Alcotest.test_case "dc operating point of nonlinear resistor divider" `Quick (fun () ->
        (* f(x) = (x - 5)/1k + x^3 * 1e-3 = 0 *)
        let dae =
          Dae.make ~dim:1
            ~q:(fun _ -> [| 0. |])
            ~f:(fun ~t:_ x -> [| ((x.(0) -. 5.) /. 1000.) +. (1e-3 *. (x.(0) ** 3.)) |])
            ()
        in
        let report = Dae.dc_operating_point ~x0:[| 1. |] dae in
        Alcotest.(check bool) "converged" true report.Nonlin.Newton.converged;
        let x = report.Nonlin.Newton.x.(0) in
        approx_tol 1e-9 "kcl" 0. (((x -. 5.) /. 1000.) +. (1e-3 *. (x ** 3.))));
    Alcotest.test_case "fd jacobians are generated when omitted" `Quick (fun () ->
        let dae =
          Dae.make ~dim:1 ~q:(fun x -> [| x.(0) ** 2. |]) ~f:(fun ~t:_ x -> [| sin x.(0) |]) ()
        in
        approx_tol 1e-5 "dq" 4. (dae.Dae.dq [| 2. |]).(0).(0);
        approx_tol 1e-5 "df" (cos 2.) (dae.Dae.df ~t:0. [| 2. |]).(0).(0));
  ]

let transient_tests =
  [
    Alcotest.test_case "backward euler decays monotonically" `Quick (fun () ->
        let traj = Transient.integrate decay ~method_:Transient.Backward_euler ~t0:0. ~t1:1. ~h:0.01 [| 1. |] in
        let v = Transient.component traj 0 in
        approx_tol 2e-3 "e^-1" (exp (-1.)) v.(Array.length v - 1);
        Array.iteri (fun i x -> if i > 0 then Alcotest.(check bool) "mono" true (x < v.(i - 1))) v);
    Alcotest.test_case "trapezoidal is second order on decay" `Quick (fun () ->
        let err h =
          let traj = Transient.integrate decay ~method_:Transient.Trapezoidal ~t0:0. ~t1:1. ~h [| 1. |] in
          Float.abs ((Transient.final traj).(0) -. exp (-1.))
        in
        let ratio = err 0.02 /. err 0.01 in
        Alcotest.(check bool) "ratio ~ 4" true (ratio > 3.5 && ratio < 4.5));
    Alcotest.test_case "bdf2 is second order on decay" `Quick (fun () ->
        let err h =
          let traj = Transient.integrate decay ~method_:Transient.Bdf2 ~t0:0. ~t1:1. ~h [| 1. |] in
          Float.abs ((Transient.final traj).(0) -. exp (-1.))
        in
        let ratio = err 0.02 /. err 0.01 in
        Alcotest.(check bool) "ratio ~ 4" true (ratio > 3. && ratio < 5.));
    Alcotest.test_case "trapezoidal preserves oscillation amplitude" `Quick (fun () ->
        let dae = harmonic two_pi in
        (* one full period with 200 steps *)
        let traj =
          Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:1. ~h:0.005 [| 1.; 0. |]
        in
        let x = Transient.final traj in
        approx_tol 1e-2 "x back to 1" 1. x.(0);
        approx_tol 5e-2 "v back to 0" 0. x.(1));
    Alcotest.test_case "LC tank oscillates at 1/(2 pi sqrt(LC))" `Quick (fun () ->
        let l = 0.045 and c = 1. in
        let dae = lc_tank ~l ~c in
        let f_expected = 1. /. (two_pi *. sqrt (l *. c)) in
        let t1 = 8. /. f_expected in
        let h = 1. /. (f_expected *. 400.) in
        let traj = Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1 ~h [| 1.; 0. |] in
        let v = Transient.component traj 0 in
        let dt = traj.Transient.times.(1) -. traj.Transient.times.(0) in
        let f_est = Fourier.Spectrum.dominant_frequency ~dt v in
        Alcotest.(check bool) "frequency" true (Float.abs (f_est -. f_expected) /. f_expected < 0.01));
    Alcotest.test_case "adaptive integrator meets tolerance and adapts" `Quick (fun () ->
        let dae = harmonic two_pi in
        let traj = Transient.integrate_adaptive dae ~t0:0. ~t1:2. ~tol:1e-8 [| 1.; 0. |] in
        let x = Transient.final traj in
        approx_tol 1e-5 "x(2) = 1" 1. x.(0);
        (* step sizes must not all be equal *)
        let dts =
          Array.init (Transient.steps traj) (fun i ->
              traj.Transient.times.(i + 1) -. traj.Transient.times.(i))
        in
        let dmin = Array.fold_left Float.min infinity dts in
        let dmax = Array.fold_left Float.max 0. dts in
        Alcotest.(check bool) "adapted" true (dmax > (1.5 *. dmin)));
    Alcotest.test_case "interpolate and resample" `Quick (fun () ->
        let traj = Transient.integrate decay ~method_:Transient.Trapezoidal ~t0:0. ~t1:1. ~h:0.001 [| 1. |] in
        approx_tol 1e-4 "midpoint" (exp (-0.5)) (Transient.interpolate traj 0 0.5);
        let r = Transient.resample traj 0 ~times:[| 0.; 0.25; 1. |] in
        approx_tol 1e-4 "r0" 1. r.(0);
        approx_tol 1e-4 "r2" (exp (-1.)) r.(2));
    Alcotest.test_case "forced RC follows steady state" `Quick (fun () ->
        (* v' = -v + sin t; steady state (sin t - cos t)/2 *)
        let dae = Dae.of_ode ~dim:1 ~rhs:(fun ~t x -> [| sin t -. x.(0) |]) () in
        let traj = Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:30. ~h:0.01 [| 0. |] in
        let v = Transient.final traj in
        approx_tol 1e-3 "steady" ((sin 30. -. cos 30.) /. 2.) v.(0));
  ]

let prop_tests =
  let open QCheck in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"linear decay never increases (BE)" ~count:20
         (make (Gen.float_range 0.001 0.2)) (fun h ->
           let traj = Transient.integrate decay ~method_:Transient.Backward_euler ~t0:0. ~t1:1. ~h [| 1. |] in
           let v = Transient.component traj 0 in
           let ok = ref true in
           Array.iteri (fun i x -> if i > 0 && x > v.(i - 1) +. 1e-14 then ok := false) v;
           !ok));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"trap energy drift is tiny for harmonic oscillator" ~count:10
         (make (Gen.float_range 1. 5.)) (fun w ->
           let dae = harmonic w in
           let t1 = 4. *. two_pi /. w in
           let h = t1 /. 4000. in
           let traj = Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1 ~h [| 1.; 0. |] in
           let x = Transient.final traj in
           let energy = ((w *. w) *. (x.(0) ** 2.)) +. (x.(1) ** 2.) in
           Float.abs (energy -. (w *. w)) /. (w *. w) < 1e-4));
  ]

let suites =
  [
    ("dae", dae_tests);
    ("transient", transient_tests);
    ("transient.properties", prop_tests);
  ]
