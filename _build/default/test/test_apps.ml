(* Application-level integration tests: the analog multiplier, the
   frequency-domain (Hbform) view of envelope runs, and PLL capture. *)
open Linalg

let approx_tol tol = Alcotest.(check (float tol))
let two_pi = 2. *. Float.pi

let multiplier_tests =
  [
    Alcotest.test_case "multiplier output current is k va vb" `Quick (fun () ->
        let net = Circuit.Mna.create () in
        let a = Circuit.Mna.node net "a"
        and b = Circuit.Mna.node net "b"
        and o = Circuit.Mna.node net "o" in
        let gnd = Circuit.Mna.ground in
        Circuit.Mna.add net (Circuit.Mna.multiplier ~label:"X" ~k:0.5 (a, gnd) (b, gnd) gnd o);
        Circuit.Mna.add net (Circuit.Mna.resistor ~label:"R" ~r:2. o gnd);
        let dae = Circuit.Mna.compile net in
        (* current 0.5 * 3 * 4 = 6 pushed into o; KCL at o: -6 + v/2 = 0 *)
        let f = dae.Dae.f ~t:0. [| 3.; 4.; 12. |] in
        approx_tol 1e-12 "kcl balanced" 0. f.(o - 1));
    Alcotest.test_case "multiplier jacobian matches finite differences" `Quick (fun () ->
        let net = Circuit.Mna.create () in
        let a = Circuit.Mna.node net "a"
        and b = Circuit.Mna.node net "b"
        and o = Circuit.Mna.node net "o" in
        let gnd = Circuit.Mna.ground in
        Circuit.Mna.add net (Circuit.Mna.multiplier ~label:"X" ~k:0.7 (a, gnd) (b, gnd) gnd o);
        Circuit.Mna.add net (Circuit.Mna.resistor ~label:"R" ~r:1. o gnd);
        let dae = Circuit.Mna.compile net in
        let x = [| 1.2; -0.8; 0.3 |] in
        let fd = Nonlin.Fdjac.jacobian_central (fun y -> dae.Dae.f ~t:0. y) x in
        Alcotest.(check bool) "df" true (Mat.approx_equal ~tol:1e-5 (dae.Dae.df ~t:0. x) fd));
  ]

let hbform_tests =
  [
    Alcotest.test_case "fundamental magnitude tracks half the amplitude" `Quick (fun () ->
        let p = Circuit.Vco.vco_a () in
        let dae = Circuit.Vco.build p in
        let p0 = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let orbit =
          Steady.Oscillator.find (Circuit.Vco.build p0) ~n1:25 ~period_hint:1.333
            (Circuit.Vco.initial_state p0)
        in
        let options = Wampde.Envelope.default_options ~n1:25 () in
        let res = Wampde.Envelope.simulate dae ~options ~t2_end:20. ~h2:0.4 ~init:orbit in
        let fund = Wampde.Hbform.harmonic_magnitude res ~component:0 ~harmonic:1 in
        let amp = Wampde.Envelope.amplitude_track res ~component:0 in
        Array.iteri
          (fun i a ->
            (* |X_1| ~ amplitude/2 for a nearly sinusoidal waveform *)
            Alcotest.(check bool) "half amplitude" true
              (Float.abs ((2. *. fund.(i)) -. a) /. a < 0.05))
          amp);
    Alcotest.test_case "eq (20) residual vanishes under the Fourier phase condition" `Quick
      (fun () ->
        let p = Circuit.Vco.vco_a () in
        let dae = Circuit.Vco.build p in
        let p0 = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let orbit =
          Steady.Oscillator.find (Circuit.Vco.build p0) ~n1:25 ~period_hint:1.333
            (Circuit.Vco.initial_state p0)
        in
        let options =
          Wampde.Envelope.default_options ~n1:25
            ~phase:(Wampde.Phase.Fourier { component = 0; harmonic = 1 })
            ()
        in
        let res = Wampde.Envelope.simulate dae ~options ~t2_end:10. ~h2:0.4 ~init:orbit in
        let residual = Wampde.Hbform.phase_condition_residual res ~component:0 ~harmonic:1 in
        (* the initial orbit used the derivative condition, so skip index 0 *)
        Array.iteri
          (fun i r -> if i > 0 then approx_tol 1e-7 "Im X1 = 0" 0. r)
          residual);
    Alcotest.test_case "reconstruct matches slice samples" `Quick (fun () ->
        let coeffs =
          Fourier.Series.coeffs
            (Vec.init 15 (fun j ->
                 1. +. cos (two_pi *. float_of_int j /. 15.)
                 -. (0.3 *. sin (2. *. two_pi *. float_of_int j /. 15.))))
        in
        approx_tol 1e-9 "value at 0" 2. (Wampde.Hbform.reconstruct coeffs 0.));
  ]

let pll_tests =
  [
    Alcotest.test_case "pll locks to a nearby reference" `Slow (fun () ->
        let f_ref = 1.000 in
        let net = Circuit.Mna.create () in
        let node = Circuit.Mna.node net in
        let tank = node "tank" and reference = node "ref" in
        let pd = node "pd" and ctl = node "ctl" and bias = node "bias" in
        let gnd = Circuit.Mna.ground in
        Circuit.Mna.add net (Circuit.Mna.inductor ~label:"L1" ~l:0.02 tank gnd);
        Circuit.Mna.add net
          (Circuit.Mna.cubic_conductance ~label:"GN" ~g1:1.0 ~g3:(1. /. 3.) tank gnd);
        Circuit.Mna.add net
          (Circuit.Mna.junction_capacitor ~label:"CV" ~c0:3.0 ~vj:0.7 ~m:0.5 tank ctl);
        Circuit.Mna.add net
          (Circuit.Mna.vsource ~label:"VR"
             ~v:(fun t -> cos (two_pi *. f_ref *. t))
             reference gnd);
        Circuit.Mna.add net
          (Circuit.Mna.multiplier ~label:"PD" ~k:0.15 (tank, gnd) (reference, gnd) gnd pd);
        Circuit.Mna.add net (Circuit.Mna.vsource ~label:"VB" ~v:(fun _ -> 3.) bias gnd);
        Circuit.Mna.add net (Circuit.Mna.resistor ~label:"RF" ~r:5. bias pd);
        Circuit.Mna.add net (Circuit.Mna.capacitor ~label:"CF" ~c:0.8 pd gnd);
        Circuit.Mna.add net (Circuit.Mna.vcvs ~label:"E1" ~gain:1. pd gnd ctl gnd);
        let dae = Circuit.Mna.compile net in
        let x0 = Circuit.Mna.initial_guess net in
        x0.(tank - 1) <- 2.;
        x0.(pd - 1) <- 3.;
        x0.(ctl - 1) <- 3.;
        let traj =
          Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:150.
            ~h:(1. /. 200.) x0
        in
        let v_tank = Transient.component traj (tank - 1) in
        let _, freq =
          Sigproc.Zero_crossing.instantaneous_frequency ~times:traj.Transient.times v_tank
        in
        let n = Array.length freq in
        let tail = Array.sub freq (n - (n / 10)) (n / 10) in
        let f_locked = Array.fold_left ( +. ) 0. tail /. float_of_int (Array.length tail) in
        approx_tol 2e-3 "locked" f_ref f_locked);
  ]

let hb_envelope_tests =
  [
    Alcotest.test_case "coefficient-space WaMPDE (eq 19) equals time-domain envelope" `Slow
      (fun () ->
        let p = Circuit.Vco.vco_a () in
        let dae = Circuit.Vco.build p in
        let p0 = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let orbit =
          Steady.Oscillator.find (Circuit.Vco.build p0) ~n1:25 ~period_hint:1.333
            (Circuit.Vco.initial_state p0)
        in
        let hb =
          Wampde.Hb_envelope.simulate dae ~harmonics:12 ~t2_end:6. ~h2:0.2 ~init:orbit ()
        in
        let opts =
          Wampde.Envelope.default_options ~n1:25
            ~phase:(Wampde.Phase.Fourier { component = 0; harmonic = 1 })
            ()
        in
        let td = Wampde.Envelope.simulate dae ~options:opts ~t2_end:6. ~h2:0.2 ~init:orbit in
        Array.iteri
          (fun i om ->
            approx_tol 1e-6 "same omega" td.Wampde.Envelope.omega.(i) om)
          hb.Wampde.Hb_envelope.omega;
        (* fundamental coefficient track agrees too *)
        let m = Array.length hb.Wampde.Hb_envelope.t2 in
        let tracks = Wampde.Hbform.coefficient_tracks td ~component:0 in
        for step = 0 to m - 1 do
          let c_hb =
            Wampde.Hb_envelope.eval_coefficient hb ~step ~component:0 ~harmonic:1
          in
          let c_td = Fourier.Series.harmonic tracks.(step) 1 in
          approx_tol 1e-5 "Re X1" (Linalg.Cx.re c_td) (Linalg.Cx.re c_hb)
        done);
    Alcotest.test_case "phase conditions now agree pointwise after alignment" `Quick
      (fun () ->
        let p = Circuit.Vco.vco_a () in
        let dae = Circuit.Vco.build p in
        let p0 = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let orbit =
          Steady.Oscillator.find (Circuit.Vco.build p0) ~n1:25 ~period_hint:1.333
            (Circuit.Vco.initial_state p0)
        in
        let run phase =
          let opts = Wampde.Envelope.default_options ~n1:25 ~phase () in
          Wampde.Envelope.simulate dae ~options:opts ~t2_end:6. ~h2:0.2 ~init:orbit
        in
        let rd = run (Wampde.Phase.Derivative 0) in
        let rf = run (Wampde.Phase.Fourier { component = 0; harmonic = 1 }) in
        Array.iteri
          (fun i om ->
            (* a near-sinusoidal waveform peaks where Im X1 = 0: the two
               conditions pick almost the same representative *)
            Alcotest.(check bool) "close" true
              (Float.abs (om -. rd.Wampde.Envelope.omega.(i)) < 0.01))
          rf.Wampde.Envelope.omega);
  ]

let suites =
  [
    ("apps.multiplier", multiplier_tests);
    ("apps.hbform", hbform_tests);
    ("apps.pll", pll_tests);
    ("apps.hb_envelope", hb_envelope_tests);
  ]
