(* Tests for periodic steady-state solvers: forced collocation,
   autonomous oscillator collocation, and shooting. *)
open Linalg
open Circuit

let approx_tol tol = Alcotest.(check (float tol))
let two_pi = 2. *. Float.pi

(* Van der Pol oscillator with strength mu. *)
let vdp mu =
  Dae.of_ode ~dim:2
    ~rhs:(fun ~t:_ x -> [| x.(1); (mu *. (1. -. (x.(0) *. x.(0))) *. x.(1)) -. x.(0) |])
    ()

(* Linear forced RL circuit: x' = -x + cos(2 pi t / T): analytic periodic
   steady state. *)
let forced_rl ~period =
  Dae.of_ode ~dim:1 ~rhs:(fun ~t x -> [| cos (two_pi *. t /. period) -. x.(0) |]) ()

let periodic_tests =
  [
    Alcotest.test_case "forced linear system matches analytic steady state" `Quick (fun () ->
        let period = 2. in
        let dae = forced_rl ~period in
        let w = two_pi /. period in
        (* steady state: (cos wt + w sin wt) / (1 + w^2) *)
        let exact t = (cos (w *. t) +. (w *. sin (w *. t))) /. (1. +. (w *. w)) in
        let sol =
          Steady.Periodic.solve dae ~period ~n1:15
            ~guess:(Array.init 15 (fun _ -> [| 0. |]))
        in
        for j = 0 to 14 do
          let t = period *. float_of_int j /. 15. in
          approx_tol 1e-8 "steady" (exact t) sol.Steady.Periodic.grid.(j).(0)
        done;
        approx_tol 1e-8 "residual" 0. (Steady.Periodic.residual_norm dae sol));
    Alcotest.test_case "solve_from_transient agrees with direct solve" `Quick (fun () ->
        let period = 1.5 in
        let dae = forced_rl ~period in
        let direct =
          Steady.Periodic.solve dae ~period ~n1:11 ~guess:(Array.init 11 (fun _ -> [| 0. |]))
        in
        let warm =
          Steady.Periodic.solve_from_transient dae ~period ~n1:11 ~warmup_periods:8 [| 0.3 |]
        in
        for j = 0 to 10 do
          approx_tol 1e-7 "same grid" direct.Steady.Periodic.grid.(j).(0)
            warm.Steady.Periodic.grid.(j).(0)
        done);
    Alcotest.test_case "eval interpolates between grid points" `Quick (fun () ->
        let period = 2. in
        let dae = forced_rl ~period in
        let w = two_pi /. period in
        let exact t = (cos (w *. t) +. (w *. sin (w *. t))) /. (1. +. (w *. w)) in
        let sol =
          Steady.Periodic.solve dae ~period ~n1:15 ~guess:(Array.init 15 (fun _ -> [| 0. |]))
        in
        approx_tol 1e-8 "off grid" (exact 0.333) (Steady.Periodic.eval sol ~component:0 0.333));
  ]

let oscillator_tests =
  [
    Alcotest.test_case "van der Pol frequency matches perturbation theory" `Quick (fun () ->
        let mu = 0.3 in
        let orbit = Steady.Oscillator.find (vdp mu) ~n1:31 ~period_hint:6.3 [| 2.; 0. |] in
        (* T = 2 pi (1 + mu^2/16 + O(mu^4)) *)
        let f_expected = 1. /. (two_pi *. (1. +. (mu *. mu /. 16.))) in
        approx_tol 2e-4 "frequency" f_expected orbit.Steady.Oscillator.omega;
        approx_tol 5e-3 "amplitude ~ 2" 2. (Steady.Oscillator.amplitude orbit ~component:0));
    Alcotest.test_case "phase condition holds: component 0 peaks at t1 = 0" `Quick (fun () ->
        let orbit = Steady.Oscillator.find (vdp 0.5) ~n1:31 ~period_hint:6.3 [| 2.; 0. |] in
        let x0 = Steady.Oscillator.component orbit 0 in
        let d = Fourier.Series.diff_matrix 31 in
        let deriv0 = Vec.dot d.(0) x0 in
        approx_tol 1e-7 "derivative zero" 0. deriv0;
        (* and it is a maximum: value at 0 >= neighbours *)
        Alcotest.(check bool) "max" true (x0.(0) >= x0.(1) && x0.(0) >= x0.(30)));
    Alcotest.test_case "collocation and shooting agree on vdp period" `Quick (fun () ->
        let dae = vdp 1.0 in
        let orbit = Steady.Oscillator.find dae ~n1:41 ~period_hint:6.6 [| 2.; 0. |] in
        let sh =
          Steady.Shooting.autonomous dae ~steps_per_period:800 ~period_guess:6.6 [| 2.; 0. |]
        in
        approx_tol 2e-3 "period" sh.Steady.Shooting.period (Steady.Oscillator.period orbit));
    Alcotest.test_case "unforced VCO collocation at 0.748 MHz" `Quick (fun () ->
        let p = Vco.default_params ~control:(fun _ -> 1.5) () in
        let dae = Vco.build p in
        let orbit =
          Steady.Oscillator.find dae ~n1:25 ~period_hint:1.333 (Vco.initial_state p)
        in
        approx_tol 2e-3 "omega" 0.748 orbit.Steady.Oscillator.omega;
        approx_tol 2e-2 "amplitude" 2. (Steady.Oscillator.amplitude orbit ~component:0);
        approx_tol 1e-7 "residual" 0. (Steady.Oscillator.residual_norm dae orbit));
    Alcotest.test_case "eval reproduces transient after warmup" `Quick (fun () ->
        let dae = vdp 0.6 in
        let orbit = Steady.Oscillator.find dae ~n1:31 ~period_hint:6.3 [| 2.; 0. |] in
        (* steady-state waveform should satisfy the ODE: check the residual
           of the evaluated waveform numerically at a few phases *)
        let h = 1e-5 in
        for k = 0 to 5 do
          let t = 0.7 *. float_of_int k in
          let x = Steady.Oscillator.eval orbit ~component:0 t in
          let v = Steady.Oscillator.eval orbit ~component:1 t in
          let dx =
            (Steady.Oscillator.eval orbit ~component:0 (t +. h)
            -. Steady.Oscillator.eval orbit ~component:0 (t -. h))
            /. (2. *. h)
          in
          approx_tol 1e-3 "x' = v" v dx;
          ignore x
        done);
  ]

let shooting_tests =
  [
    Alcotest.test_case "forced shooting finds linear steady state" `Quick (fun () ->
        let period = 2. in
        let dae = forced_rl ~period in
        let w = two_pi /. period in
        let exact t = (cos (w *. t) +. (w *. sin (w *. t))) /. (1. +. (w *. w)) in
        let r = Steady.Shooting.forced dae ~steps_per_period:2000 ~period [| 0. |] in
        approx_tol 1e-4 "x0" (exact 0.) r.Steady.Shooting.x0.(0));
    Alcotest.test_case "autonomous shooting: harmonic-like vdp small mu" `Quick (fun () ->
        let r =
          Steady.Shooting.autonomous (vdp 0.1) ~steps_per_period:600 ~period_guess:6.28
            [| 2.; 0. |]
        in
        approx_tol 5e-3 "period ~ 2 pi" (two_pi *. (1. +. (0.01 /. 16.))) r.Steady.Shooting.period);
    Alcotest.test_case "flow map is identity at t1 = t0" `Quick (fun () ->
        let dae = vdp 1. in
        let x = [| 1.3; -0.5 |] in
        let y = Steady.Shooting.flow dae ~t0:0. ~t1:0. ~steps:10 x in
        Alcotest.(check bool) "identity" true (Vec.approx_equal x y));
  ]

let suites =
  [
    ("steady.periodic", periodic_tests);
    ("steady.oscillator", oscillator_tests);
    ("steady.shooting", shooting_tests);
  ]
