(* A junction-varactor (diode-tuned) VCO under WaMPDE simulation.

   The paper's experiments tune the oscillator with a MEMS varactor;
   this example swaps in the classic electrical alternative -- a
   reverse-biased junction capacitance -- to show the library is not
   tied to one device.  Because the diode has no mechanical state, the
   local frequency must follow the small-signal tuning law

     f(vc) = 1 / (2 pi sqrt (L C(vc))),   C(v) = c0 / (1 + v/vj)^m

   quasi-statically; the few-0.1% deviation that remains is the
   genuine large-signal correction (the 2 V tank swing samples the
   nonlinear C-V curve).

   Run with: dune exec examples/diode_vco.exe *)

let () =
  (* start from the unforced steady state at the 3 V bias point *)
  let bias = 3. in
  let frozen = Circuit.Diode_vco.default_params ~control:(fun _ -> bias) () in
  let orbit =
    Steady.Oscillator.find (Circuit.Diode_vco.build frozen) ~n1:31 ~period_hint:1.0
      (Circuit.Diode_vco.initial_state frozen ~at:0.)
  in
  Printf.printf "unforced: f = %.5f MHz (small-signal law: %.5f MHz)\n\n"
    orbit.Steady.Oscillator.omega
    (Circuit.Diode_vco.tuning_frequency frozen ~bias);

  (* sweep the control voltage 3 -> 8 -> 3 V over 200 us *)
  let control t = bias +. (2.5 *. (1. -. cos (2. *. Float.pi *. t /. 200.))) in
  let params = Circuit.Diode_vco.default_params ~control () in
  let dae = Circuit.Diode_vco.build params in
  let options = Wampde.Envelope.default_options ~n1:31 () in
  let res = Wampde.Envelope.simulate dae ~options ~t2_end:200. ~h2:1. ~init:orbit in

  Printf.printf "  t2 (us)  vc (V)   omega (MHz)  small-signal law  deviation\n";
  Array.iteri
    (fun i t2 ->
      if i mod 20 = 0 then begin
        let vc = control t2 in
        let law = Circuit.Diode_vco.tuning_frequency params ~bias:vc in
        let om = res.Wampde.Envelope.omega.(i) in
        Printf.printf "  %7.1f  %6.2f   %9.4f    %9.4f      %+.2f%%\n" t2 vc om law
          ((om -. law) /. law *. 100.)
      end)
    res.Wampde.Envelope.t2;

  let om = res.Wampde.Envelope.omega in
  let lo = Array.fold_left Float.min infinity om in
  let hi = Array.fold_left Float.max neg_infinity om in
  Printf.printf "\ntuning range: %.4f .. %.4f MHz (%.1f%%)\n" lo hi ((hi -. lo) /. lo *. 100.)
