(* VCO-A: the paper's first experiment (Section 5, Figs. 7-9).

   A lightly damped MEMS varactor is pumped at its mechanical resonance
   by a control voltage whose period is ~30 nominal oscillation periods.
   The WaMPDE envelope run produces:
     - fig 7: the local frequency vs slow time (swings by a factor ~3),
     - fig 8: the bivariate capacitor-voltage waveform (amplitude and
       shape modulation),
     - fig 9: the recovered 1-D waveform vs brute-force transient
       simulation (visually indistinguishable).

   Run with: dune exec examples/vco_fm.exe            (summary tables)
             dune exec examples/vco_fm.exe -- --csv   (full CSV series) *)

let csv = Array.exists (( = ) "--csv") Sys.argv

let () =
  let params = Circuit.Vco.vco_a () in
  let vco = Circuit.Vco.build params in
  let frozen = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
  let orbit =
    Steady.Oscillator.find (Circuit.Vco.build frozen) ~n1:25 ~period_hint:(1. /. 0.75)
      (Circuit.Vco.initial_state frozen)
  in
  let options = Wampde.Envelope.default_options ~n1:25 () in
  let result = Wampde.Envelope.simulate vco ~options ~t2_end:60. ~h2:0.4 ~init:orbit in
  let om = result.Wampde.Envelope.omega in
  let omin = Array.fold_left Float.min infinity om in
  let omax = Array.fold_left Float.max neg_infinity om in

  (* --- fig 7: local frequency vs time --- *)
  Printf.printf "# fig7: VCO-A local frequency (MHz) vs slow time (us)\n";
  if csv then
    Array.iteri (fun i t2 -> Printf.printf "%g,%g\n" t2 om.(i)) result.Wampde.Envelope.t2
  else begin
    Array.iteri
      (fun i t2 -> if i mod 15 = 0 then Printf.printf "  t2 = %5.1f  f = %.4f\n" t2 om.(i))
      result.Wampde.Envelope.t2;
    Printf.printf "  frequency range [%.4f, %.4f] MHz -> modulation factor %.2f\n\n" omin omax
      (omax /. omin)
  end;

  (* --- fig 8: bivariate capacitor voltage --- *)
  Printf.printf "# fig8: bivariate voltage v(t1, t2); t1 in cycles, t2 in us\n";
  let n1 = 25 in
  let m = Array.length result.Wampde.Envelope.t2 in
  if csv then
    for idx = 0 to m - 1 do
      if idx mod 5 = 0 then begin
        let s = Wampde.Envelope.slice result ~index:idx ~component:Circuit.Vco.idx_voltage in
        for j = 0 to n1 - 1 do
          Printf.printf "%g,%g,%g\n"
            (float_of_int j /. float_of_int n1)
            result.Wampde.Envelope.t2.(idx) s.(j)
        done
      end
    done
  else begin
    let amp = Wampde.Envelope.amplitude_track result ~component:Circuit.Vco.idx_voltage in
    Printf.printf "  amplitude modulation: %.3f .. %.3f V (shape changes with t2)\n\n"
      (Array.fold_left Float.min infinity amp)
      (Array.fold_left Float.max neg_infinity amp)
  end;

  (* --- fig 9: WaMPDE vs transient simulation --- *)
  Printf.printf "# fig9: recovered 1-D waveform vs transient simulation\n";
  let x0 = Array.init vco.Dae.dim (fun i -> orbit.Steady.Oscillator.grid.(0).(i)) in
  let traj =
    Transient.integrate vco ~method_:Transient.Trapezoidal ~t0:0. ~t1:60. ~h:(1.333 /. 1000.)
      x0
  in
  let worst = ref 0. in
  let probe = if csv then 6000 else 600 in
  for k = 0 to probe do
    let t = 60. *. float_of_int k /. float_of_int probe in
    let vw = Wampde.Envelope.eval_waveform result ~component:Circuit.Vco.idx_voltage t in
    let vt = Transient.interpolate traj Circuit.Vco.idx_voltage t in
    if csv then Printf.printf "%g,%g,%g\n" t vw vt;
    worst := Float.max !worst (Float.abs (vw -. vt))
  done;
  if not csv then begin
    Printf.printf "  max |v_wampde - v_transient| over 60 us (45 cycles): %.4f V\n" !worst;
    Printf.printf "  (waveform amplitude ~2.2 V: the curves are indistinguishable)\n"
  end
