examples/fm_representation.ml: Array Float Fourier Printf Sigproc
