examples/diode_vco.mli:
