examples/pll_lock.ml: Array Circuit Float Printf Sigproc Transient
