examples/mems_vco_slow.ml: Array Circuit Dae Float List Printf Sigproc Steady Sys Transient Wampde
