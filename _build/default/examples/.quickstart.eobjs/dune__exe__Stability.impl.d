examples/stability.ml: Array Circuit Complex Dae Float Linalg Printf Steady
