examples/quickstart.mli:
