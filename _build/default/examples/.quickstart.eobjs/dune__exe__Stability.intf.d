examples/stability.mli:
