examples/vco_fm.ml: Array Circuit Dae Float Printf Steady Sys Transient Wampde
