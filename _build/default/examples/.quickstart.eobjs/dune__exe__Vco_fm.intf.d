examples/vco_fm.mli:
