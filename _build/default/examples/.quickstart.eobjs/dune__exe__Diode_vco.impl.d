examples/diode_vco.ml: Array Circuit Float Printf Steady Wampde
