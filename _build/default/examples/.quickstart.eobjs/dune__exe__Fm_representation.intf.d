examples/fm_representation.mli:
