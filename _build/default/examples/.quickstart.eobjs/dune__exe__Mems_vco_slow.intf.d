examples/mems_vco_slow.mli:
