examples/quickstart.ml: Array Circuit Dae Float List Printf Sigproc Steady Wampde
