examples/pll_lock.mli:
