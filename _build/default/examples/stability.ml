(* Orbital (Floquet) stability of the oscillators.

   The paper's Section 2 observes that purely linear oscillator models
   are "not even qualitatively adequate … since nonlinearity is
   essential for orbital stability".  This example quantifies that on
   three systems:

     - a LINEAR LC tank: every orbit is neutrally stable (both Floquet
       multipliers on the unit circle) -- no amplitude selection;
     - the van der Pol oscillator: the limit cycle has the trivial
       multiplier 1 and a contracting second multiplier;
     - the paper's VCO (unforced): same structure, strongly stable.

   Run with: dune exec examples/stability.exe *)

let print_report name (r : Steady.Floquet.report) =
  Printf.printf "%s\n" name;
  Array.iteri
    (fun i z ->
      Printf.printf "  multiplier %d: %+.6f %+.6fi  (|.| = %.6f)%s\n" i (Linalg.Cx.re z)
        (Linalg.Cx.im z) (Complex.norm z)
        (if i = r.Steady.Floquet.trivial_index then "  <- trivial (along the orbit)" else ""))
    r.Steady.Floquet.multipliers;
  Printf.printf "  largest non-trivial modulus: %.6f -> %s\n\n"
    r.Steady.Floquet.largest_nontrivial
    (if r.Steady.Floquet.stable then "orbitally STABLE" else "NOT asymptotically stable")

let () =
  (* linear LC tank: x'' + w^2 x = 0 *)
  let w = 2. *. Float.pi in
  let lc =
    Dae.of_ode ~dim:2 ~rhs:(fun ~t:_ x -> [| x.(1); -.(w *. w) *. x.(0) |]) ()
  in
  let r_lc = Steady.Floquet.analyze lc ~period:1. [| 1.; 0. |] in
  print_report "linear LC tank (period 1):" r_lc;
  Printf.printf "  -> both multipliers sit on the unit circle: any amplitude persists,\n";
  Printf.printf "     disturbances never decay; a linear model cannot select the limit cycle.\n\n";

  (* van der Pol *)
  let mu = 1.0 in
  let vdp =
    Dae.of_ode ~dim:2
      ~rhs:(fun ~t:_ x -> [| x.(1); (mu *. (1. -. (x.(0) *. x.(0))) *. x.(1)) -. x.(0) |])
      ()
  in
  let orbit = Steady.Oscillator.find vdp ~n1:41 ~period_hint:6.6 [| 2.; 0. |] in
  let r_vdp = Steady.Floquet.analyze_orbit vdp orbit in
  print_report
    (Printf.sprintf "van der Pol (mu = %.1f, T = %.4f):" mu (Steady.Oscillator.period orbit))
    r_vdp;

  (* the paper's VCO, unforced *)
  let p = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
  let vco = Circuit.Vco.build p in
  let orbit_vco =
    Steady.Oscillator.find vco ~n1:25 ~period_hint:(1. /. 0.75) (Circuit.Vco.initial_state p)
  in
  let r_vco = Steady.Floquet.analyze_orbit vco ~steps_per_period:800 orbit_vco in
  print_report
    (Printf.sprintf "paper VCO, unforced (f = %.4f MHz):" orbit_vco.Steady.Oscillator.omega)
    r_vco
