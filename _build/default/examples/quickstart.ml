(* Quickstart: simulate a voltage-controlled oscillator with the WaMPDE.

   Pipeline:
     1. build the paper's VCO circuit (LC tank + cubic negative resistor
        + MEMS varactor) from the netlist API;
     2. compute the unforced periodic steady state (frequency unknown);
     3. follow the forced envelope with the WaMPDE, getting the local
        frequency omega(t2) explicitly;
     4. recover the ordinary 1-D waveform along the warped path.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. the circuit: control voltage = 1.5 V bias + slow sinusoid *)
  let control t = 1.5 +. (0.75 *. sin (2. *. Float.pi *. t /. 40.)) in
  let params = Circuit.Vco.default_params ~control () in
  let vco = Circuit.Vco.build params in
  Printf.printf "VCO state variables:";
  Array.iter (Printf.printf " %s") vco.Dae.var_names;
  Printf.printf "\nnominal frequency: %.4f MHz\n\n" (Circuit.Vco.nominal_frequency params);

  (* 2. unforced steady state: freeze the control at its t = 0 value *)
  let frozen = Circuit.Vco.default_params ~control:(fun _ -> control 0.) () in
  let unforced = Circuit.Vco.build frozen in
  let orbit =
    Steady.Oscillator.find unforced ~n1:25 ~period_hint:(1. /. 0.75)
      (Circuit.Vco.initial_state frozen)
  in
  Printf.printf "unforced limit cycle: f = %.5f MHz, amplitude = %.3f V\n\n"
    orbit.Steady.Oscillator.omega
    (Steady.Oscillator.amplitude orbit ~component:Circuit.Vco.idx_voltage);

  (* 3. WaMPDE envelope over one forcing period (40 us) *)
  let options = Wampde.Envelope.default_options ~n1:25 () in
  let result = Wampde.Envelope.simulate vco ~options ~t2_end:40. ~h2:0.4 ~init:orbit in
  Printf.printf "WaMPDE envelope: %d slow steps, %d Newton iterations\n"
    (Array.length result.Wampde.Envelope.t2 - 1)
    result.Wampde.Envelope.newton_iterations;
  Printf.printf "\n  t2 (us)   omega (MHz)   amplitude (V)\n";
  let amp = Wampde.Envelope.amplitude_track result ~component:Circuit.Vco.idx_voltage in
  Array.iteri
    (fun i t2 ->
      if i mod 10 = 0 then
        Printf.printf "  %7.2f   %9.4f     %9.4f\n" t2 result.Wampde.Envelope.omega.(i) amp.(i))
    result.Wampde.Envelope.t2;

  (* 4. recover the 1-D waveform at a few times *)
  Printf.printf "\n  t (us)    v(t) recovered from the bivariate form\n";
  List.iter
    (fun t ->
      Printf.printf "  %6.2f    %+.4f V\n" t
        (Wampde.Envelope.eval_waveform result ~component:Circuit.Vco.idx_voltage t))
    [ 0.; 5.; 10.; 20.; 39.9 ];
  let w = Wampde.Envelope.warping result in
  Printf.printf "\ntotal oscillation cycles in 40 us: %.2f (phi(40))\n"
    (Sigproc.Warp.total_cycles w)
