(* A phase-locked loop built from the library's devices -- the
   application class the paper's introduction motivates.

   Architecture (all scaled units: us, V, mA, nF, mH, kOhm):

     reference --+
                 |--> multiplier (phase detector) --> RC loop filter
     VCO tank ---+                                        |
        ^                                                 v
        +---- junction varactor <--- unity-gain buffer ---+

   The diode-tuned VCO free-runs at ~0.985 MHz; the reference sits at
   1.000 MHz, inside the lock range.  Transient simulation shows the
   classic capture: a beat note in the control voltage that slows down
   and collapses into lock, after which the VCO's instantaneous
   frequency sits exactly on the reference.

   Run with: dune exec examples/pll_lock.exe *)

let two_pi = 2. *. Float.pi

let () =
  let f_ref = 1.000 in
  let v_bias = 3.0 in
  let net = Circuit.Mna.create () in
  let node = Circuit.Mna.node net in
  let tank = node "tank" and reference = node "ref" in
  let pd = node "pd" and ctl = node "ctl" and bias = node "bias" in
  let gnd = Circuit.Mna.ground in
  (* the VCO core: tank + negative resistance + varactor to the buffered
     control node *)
  Circuit.Mna.add net (Circuit.Mna.inductor ~label:"L1" ~l:0.02 tank gnd);
  Circuit.Mna.add net (Circuit.Mna.cubic_conductance ~label:"GN" ~g1:1.0 ~g3:(1. /. 3.) tank gnd);
  Circuit.Mna.add net
    (Circuit.Mna.junction_capacitor ~label:"CV" ~c0:3.0 ~vj:0.7 ~m:0.5 tank ctl);
  (* reference oscillator (ideal) *)
  Circuit.Mna.add net
    (Circuit.Mna.vsource ~label:"VR" ~v:(fun t -> cos (two_pi *. f_ref *. t)) reference gnd);
  (* phase detector: mixer injecting k v_tank v_ref into the filter *)
  Circuit.Mna.add net
    (Circuit.Mna.multiplier ~label:"PD" ~k:0.15 (tank, gnd) (reference, gnd) gnd pd);
  (* loop filter: bias source through Rf, shunt Cf *)
  Circuit.Mna.add net (Circuit.Mna.vsource ~label:"VB" ~v:(fun _ -> v_bias) bias gnd);
  Circuit.Mna.add net (Circuit.Mna.resistor ~label:"RF" ~r:5. bias pd);
  Circuit.Mna.add net (Circuit.Mna.capacitor ~label:"CF" ~c:0.8 pd gnd);
  (* unity-gain buffer so the varactor's RF current does not load the filter *)
  Circuit.Mna.add net (Circuit.Mna.vcvs ~label:"E1" ~gain:1. pd gnd ctl gnd);
  let dae = Circuit.Mna.compile net in

  (* start the oscillator: tank at 2 V, control at bias *)
  let x0 = Circuit.Mna.initial_guess net in
  x0.(tank - 1) <- 2.;
  x0.(pd - 1) <- v_bias;
  x0.(ctl - 1) <- v_bias;
  let t_end = 300. in
  let traj =
    Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:t_end ~h:(1. /. 200.) x0
  in

  (* instantaneous frequency of the tank from zero crossings *)
  let v_tank = Transient.component traj (tank - 1) in
  let tmid, freq =
    Sigproc.Zero_crossing.instantaneous_frequency ~times:traj.Transient.times v_tank
  in
  Printf.printf "PLL capture: VCO free-runs at ~0.985 MHz, reference at %.3f MHz\n\n" f_ref;
  Printf.printf "  t (us)   f_vco (MHz)   v_ctl (V)\n";
  let n = Array.length tmid in
  for k = 0 to 14 do
    let i = k * (n - 1) / 14 in
    Printf.printf "  %6.1f   %9.5f     %7.4f\n" tmid.(i) freq.(i)
      (Transient.interpolate traj (ctl - 1) tmid.(i))
  done;
  (* locked? average the last 10% of cycles *)
  let tail = Array.sub freq (n - (n / 10)) (n / 10) in
  let f_locked = Array.fold_left ( +. ) 0. tail /. float_of_int (Array.length tail) in
  Printf.printf "\nmean frequency over the last 10%% of the run: %.5f MHz " f_locked;
  if Float.abs (f_locked -. f_ref) < 0.002 then
    Printf.printf "-> LOCKED to the reference\n"
  else
    Printf.printf "-> not locked (pulling/beat regime)\n"
