(* VCO-B: the paper's modified experiment (Section 5, Figs. 10-12).

   The varactor cavity is air-filled (heavy damping) and the control
   voltage period is 1 ms -- about 1000 nominal oscillation periods.
   This is the regime where brute-force transient simulation
   accumulates phase error unless it takes ~1000 points per cycle,
   while the WaMPDE's phase condition prevents any build-up:

     - fig 10: local frequency with settling and a smaller swing,
     - fig 11: bivariate voltage with near-constant amplitude,
     - fig 12: phase error of transient at 50 / 100 points per cycle
       against the WaMPDE solution.

   Run with: dune exec examples/mems_vco_slow.exe
   (add -- --full to integrate the full 3 ms reference; default uses
   a 300 us window to keep the example fast) *)

let full = Array.exists (( = ) "--full") Sys.argv

let () =
  let t_end = if full then 3000. else 300. in
  let params = Circuit.Vco.vco_b () in
  let vco = Circuit.Vco.build params in
  let frozen =
    Circuit.Vco.default_params ~damping:1.57 ~force0:4.0e-3 ~control:(fun _ -> 1.5) ()
  in
  let orbit =
    Steady.Oscillator.find (Circuit.Vco.build frozen) ~n1:25 ~period_hint:(1. /. 0.75)
      (Circuit.Vco.initial_state frozen)
  in
  let options = Wampde.Envelope.default_options ~n1:25 () in
  let result = Wampde.Envelope.simulate vco ~options ~t2_end:t_end ~h2:2. ~init:orbit in

  (* --- fig 10: frequency settling --- *)
  Printf.printf "# fig10: VCO-B local frequency (MHz) vs time (us); note settling\n";
  let om = result.Wampde.Envelope.omega in
  Array.iteri
    (fun i t2 ->
      if i mod (Array.length om / 15) = 0 then
        Printf.printf "  t2 = %7.1f  f = %.4f\n" t2 om.(i))
    result.Wampde.Envelope.t2;
  Printf.printf "  range [%.4f, %.4f] MHz (smaller swing than VCO-A)\n\n"
    (Array.fold_left Float.min infinity om)
    (Array.fold_left Float.max neg_infinity om);

  (* --- fig 11: near-constant amplitude --- *)
  let amp = Wampde.Envelope.amplitude_track result ~component:Circuit.Vco.idx_voltage in
  Printf.printf "# fig11: bivariate voltage amplitude: %.4f .. %.4f V (nearly constant)\n\n"
    (Array.fold_left Float.min infinity amp)
    (Array.fold_left Float.max neg_infinity amp);

  (* --- fig 12: phase error of coarse transient runs --- *)
  Printf.printf "# fig12: phase error (cycles) of transient at N pts/cycle vs WaMPDE\n";
  let x0 = Array.init vco.Dae.dim (fun i -> orbit.Steady.Oscillator.grid.(0).(i)) in
  let reference_times = Array.init 20_001 (fun i -> t_end *. float_of_int i /. 20_000.) in
  let v_wampde =
    Array.map
      (fun t -> Wampde.Envelope.eval_waveform result ~component:Circuit.Vco.idx_voltage t)
      reference_times
  in
  let phase_error_for pts_per_cycle =
    let h = 1.333 /. float_of_int pts_per_cycle in
    let traj = Transient.integrate vco ~method_:Transient.Trapezoidal ~t0:0. ~t1:t_end ~h x0 in
    let v_tr =
      Array.map (fun t -> Transient.interpolate traj Circuit.Vco.idx_voltage t) reference_times
    in
    Sigproc.Zero_crossing.max_abs_phase_error
      ~reference:(reference_times, v_wampde)
      ~test:(reference_times, v_tr)
  in
  List.iter
    (fun pts ->
      Printf.printf "  transient %4d pts/cycle: max phase error %.3f cycles over %.0f us\n"
        pts (phase_error_for pts) t_end)
    [ 50; 100; 1000 ];
  Printf.printf
    "\n  the WaMPDE phase condition prevents error build-up; transient needs\n\
    \  ~1000 pts/cycle to stay comparable (the paper's two-orders-of-magnitude\n\
    \  speed advantage; run bench/main.exe -- --only speedup for timings)\n"
