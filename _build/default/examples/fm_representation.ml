(* Multi-time representations (Section 3 of the paper, Figs. 1-6).

   Demonstrates, with the paper's own example signals, why:
     - a bivariate form of a 2-tone AM signal needs far fewer samples
       than the univariate signal (figs 1-3),
     - the SAME trick fails for FM: the unwarped bivariate form has
       O(k) undulations along the slow axis (figs 4-5),
     - warping the fast time axis recovers a compact representation
       (fig 6), with the local frequency as the warping rate.

   Run with: dune exec examples/fm_representation.exe *)

let two_pi = 2. *. Float.pi

let () =
  (* --- figs 1-3: the 2-tone signal of eq. (1) --- *)
  let t1p = 0.02 and t2p = 1.0 in
  let y t = sin (two_pi *. t /. t1p) *. sin (two_pi *. t /. t2p) in
  let univariate_samples = 15 * int_of_float (t2p /. t1p) in
  let b =
    Sigproc.Bivariate.sample
      ~f:(fun t1 t2 -> sin (two_pi *. t1 /. t1p) *. sin (two_pi *. t2 /. t2p))
      ~p1:t1p ~p2:t2p ~n1:15 ~n2:15
  in
  Printf.printf "== figs 1-2: AM 2-tone signal, T1 = %.2f s, T2 = %.0f s ==\n" t1p t2p;
  Printf.printf "univariate sampling: %d points per slow period\n" univariate_samples;
  Printf.printf "bivariate sampling:  %d points (15 x 15 grid)\n"
    (Sigproc.Bivariate.sample_count b);
  let worst = ref 0. in
  for k = 0 to 1000 do
    let t = t2p *. float_of_int k /. 1000. in
    worst := Float.max !worst (Float.abs (Sigproc.Bivariate.diagonal b t -. y t))
  done;
  Printf.printf "max recovery error along the sawtooth path (fig 3): %.3f\n\n" !worst;

  (* --- figs 4-5: FM signal of eq. (3), unwarped bivariate of eq. (5) --- *)
  let f0 = 1.0e6 and f2 = 2.0e4 in
  let k = 8. *. Float.pi in
  Printf.printf "== figs 4-5: FM signal, f0 = 1 MHz, f2 = 20 kHz, k = 8 pi ==\n";
  let unwarped t1 t2 = cos ((two_pi *. f0 *. t1) +. (k *. cos (two_pi *. f2 *. t2))) in
  (* sample a t2 cross-section at fixed t1 and count harmonics needed *)
  let n2 = 257 in
  let cross =
    Array.init n2 (fun j -> unwarped 0. (float_of_int j /. float_of_int n2 /. f2))
  in
  let needed_unwarped = Fourier.Series.harmonics_needed ~tol:1e-3 cross in
  Printf.printf "unwarped xhat1: harmonics needed along t2 (tol 1e-3): %d\n" needed_unwarped;
  Printf.printf "(theory: ~k = %.1f undulations -> not compactly representable)\n" k;

  (* --- fig 6: warped bivariate of eqs. (6)-(7) --- *)
  let warped t1 _t2 = cos (two_pi *. t1) in
  let cross_w = Array.init n2 (fun j -> warped 0.3 (float_of_int j /. float_of_int n2 /. f2)) in
  let needed_warped = Fourier.Series.harmonics_needed ~tol:1e-3 cross_w in
  Printf.printf "warped xhat2:   harmonics needed along t2 (tol 1e-3): %d\n" needed_warped;
  let u =
    Sigproc.Bivariate.sample ~f:unwarped ~p1:(1. /. f0) ~p2:(1. /. f2) ~n1:15 ~n2:25
  in
  let w = Sigproc.Bivariate.sample ~f:warped ~p1:1. ~p2:(1. /. f2) ~n1:15 ~n2:25 in
  Printf.printf "surface undulation count on a 15 x 25 grid: unwarped %d vs warped %d\n\n"
    (Sigproc.Bivariate.undulation_count u)
    (Sigproc.Bivariate.undulation_count w);

  (* recovery through the warping function phi of eq. (7) *)
  let phi t = (f0 *. t) +. (k /. two_pi *. cos (two_pi *. f2 *. t)) in
  let x t = cos ((two_pi *. f0 *. t) +. (k *. cos (two_pi *. f2 *. t))) in
  let wfine = Sigproc.Bivariate.sample ~f:warped ~p1:1. ~p2:(1. /. f2) ~n1:64 ~n2:8 in
  let worst = ref 0. in
  for i = 0 to 2000 do
    let t = 2.0e-4 *. float_of_int i /. 2000. in
    worst :=
      Float.max !worst (Float.abs (Sigproc.Bivariate.warped_diagonal wfine ~phi t -. x t))
  done;
  Printf.printf "FM recovery error through x(t) = xhat2(phi(t), t) (eq. 8): %.4f\n" !worst;

  (* the local frequency ambiguity (end of Section 3): two valid warping
     choices differ in d phi / d t only by O(f2) *)
  let phi3 t = phi t -. (f2 *. t) in
  let dphi g t = (g (t +. 1e-9) -. g (t -. 1e-9)) /. 2e-9 in
  let t_probe = 3.7e-5 in
  Printf.printf
    "local frequencies of two valid warpings at t = %.1e s: %.4g and %.4g Hz\n\
     (difference %.3g = f2, the paper's O(f2) ambiguity)\n"
    t_probe (dphi phi t_probe) (dphi phi3 t_probe)
    (Float.abs (dphi phi t_probe -. dphi phi3 t_probe))
