(* wampde_cli: command-line driver for the WaMPDE VCO experiments.

   Subcommands:
     orbit      unforced periodic steady state of the VCO
     envelope   WaMPDE envelope run (VCO-A or VCO-B), CSV to stdout
     transient  brute-force transient run, CSV to stdout
     quasi      quasiperiodic (periodic-BC) WaMPDE solve
     waveform   recovered 1-D waveform from an envelope run *)

open Cmdliner
module Obs = Wampde_obs

type which = A | B

(* ---------- observability flags (shared by every subcommand) ---------- *)

let metrics_arg =
  let doc = "Print a solver-work metrics table to stderr when the run finishes." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let trace_arg =
  let doc =
    "Write span/event telemetry as JSON lines to $(docv) and print a span tree to stderr."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let perfetto_arg =
  let doc =
    "Write a Chrome trace-event file to $(docv) when the run finishes; open it at \
     ui.perfetto.dev or chrome://tracing.  Spans become duration events (with GC/allocation \
     attribution in their args), solver decisions become instant events."
  in
  Arg.(value & opt (some string) None & info [ "trace-perfetto" ] ~docv:"FILE" ~doc)

let report_arg =
  let doc =
    "Write a self-contained JSON run manifest to $(docv): CLI args, git describe, OCaml \
     version, wall/GC totals, the scoped metrics snapshot and the per-macro-step history.  \
     Render or validate it later with the $(b,report) subcommand."
  in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let fault_arg =
  let doc =
    "Arm the deterministic fault-injection harness with $(docv) (e.g. \
     $(b,linsolve\\@3,nan%0.05,seed=42); kinds: linsolve, diverge, nan, ckpt-trunc).  The \
     $(b,WAMPDE_FAULTS) environment variable arms the same schedule when this flag is \
     absent.  Injected faults must end in recovery or a typed error — use with the solver \
     metrics to audit the retry/escalation machinery."
  in
  Arg.(value & opt (some string) None & info [ "fault-inject" ] ~docv:"SPEC" ~doc)

let stream_arg =
  let doc =
    "Stream live NDJSON progress to $(docv) ($(b,-) for stderr): a start record, throttled \
     per-macro-step progress (with a smoothed-rate ETA), heartbeats, solver \
     reject/retry/escalation events, health warnings and a terminal $(b,done)/$(b,error) \
     record.  The stream is bounded and never blocks the solve."
  in
  Arg.(value & opt (some string) None & info [ "stream" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc = "Print human-readable progress lines (and health warnings) to stderr as the run advances." in
  Arg.(value & flag & info [ "progress" ] ~doc)

let prometheus_arg =
  let doc =
    "Write a Prometheus text-exposition snapshot of the metrics registry to $(docv) when the \
     run finishes."
  in
  Arg.(value & opt (some string) None & info [ "prometheus" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Run the parallel kernels (finite-difference Jacobian columns, preconditioner block \
     factor/solve, batched FFT pairs) on $(docv) domains.  Results are bitwise identical for \
     every $(docv).  Default: the $(b,WAMPDE_JOBS) environment variable, else 1 (serial)."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let flight_arg =
  let doc =
    "Where to write the flight-recorder dump ($(b,wampde.flightdump/1) JSON) when the run \
     dies on a typed solver error, a fault-harness trip or SIGINT/SIGTERM.  The recorder is \
     always armed; render a dump with the $(b,explain) subcommand."
  in
  Arg.(value & opt string "wampde-flight.json" & info [ "flight-dump" ] ~docv:"FILE" ~doc)

let history_arg =
  let doc =
    "Append this run's manifest to the CRC-guarded history store in $(docv) (created if \
     missing), keyed by circuit/analysis/n1/jobs/git.  Query it with the $(b,history) \
     subcommand."
  in
  Arg.(value & opt (some string) None & info [ "history" ] ~docv:"DIR" ~doc)

type obs_flags = {
  o_metrics : bool;
  o_trace : string option;
  o_perfetto : string option;
  o_report : string option;
  o_faults : string option;
  o_stream : string option;
  o_progress : bool;
  o_prometheus : string option;
  o_jobs : int option;
  o_flight : string;
  o_history : string option;
}

let obs_term =
  Term.(
    const (fun o_metrics o_trace o_perfetto o_report o_faults o_stream o_progress o_prometheus
               o_jobs o_flight o_history ->
        {
          o_metrics;
          o_trace;
          o_perfetto;
          o_report;
          o_faults;
          o_stream;
          o_progress;
          o_prometheus;
          o_jobs;
          o_flight;
          o_history;
        })
    $ metrics_arg $ trace_arg $ perfetto_arg $ report_arg $ fault_arg $ stream_arg
    $ progress_arg $ prometheus_arg $ jobs_arg $ flight_arg $ history_arg)

let open_or_die file =
  try open_out file
  with Sys_error msg ->
    Printf.eprintf "wampde_cli: cannot open output file: %s\n" msg;
    exit 1

let write_file_or_die file contents =
  let oc = open_or_die file in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let read_file_or_die file =
  try
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg ->
    Printf.eprintf "wampde_cli: cannot read %s: %s\n" file msg;
    exit 1

(* Stable discriminant for a typed solver failure, matching the serve
   protocol's job-error kinds. *)
let error_kind = function
  | Wampde.Envelope.Step_failure _ | Transient.Step_failure _ -> "step-failure"
  | Step_control.Underflow _ -> "step-underflow"
  | Checkpoint.Corrupt _ -> "corrupt-checkpoint"
  | Nonlin.Polyalg.Solve_failed _ -> "solve-failed"
  | Nonlin.Polyalg.Non_finite _ -> "non-finite"
  | Nonlin.Continuation.Step_underflow _ -> "continuation-underflow"
  | Mpde.Solve_failure _ -> "solve-failure"
  | Steady.Oscillator.Nonphysical _ -> "nonphysical"
  | _ -> "internal"

(* (subcommand, dump path) of the run in flight; set by [with_obs] so
   failure paths that exit directly can still write the postmortem. *)
let flight_ctx = ref ("", "wampde-flight.json")

let flight_dump ~kind ~message =
  let cmd, path = !flight_ctx in
  match
    Obs.Flight.write ~subcommand:cmd
      ?git:(Obs.Report.git_describe ())
      ~jobs:(Par.Pool.jobs ()) ~path ~kind ~message ()
  with
  | Ok p -> Printf.eprintf "wampde_cli: flight dump written to %s (render it with 'wampde_cli explain %s')\n" p p
  | Error msg -> Printf.eprintf "wampde_cli: flight dump failed: %s\n" msg

(* Every solver failure below is typed and carries a registered
   printer: surface it as a one-line diagnostic, a flight dump and a
   nonzero exit, not a backtrace. *)
let or_die f =
  try f ()
  with
  | ( Wampde.Envelope.Step_failure _ | Transient.Step_failure _ | Step_control.Underflow _
    | Checkpoint.Corrupt _
    | Nonlin.Polyalg.Solve_failed _ | Nonlin.Polyalg.Non_finite _
    | Nonlin.Continuation.Step_underflow _ | Mpde.Solve_failure _
    | Steady.Oscillator.Nonphysical _ ) as exn ->
    flight_dump ~kind:(error_kind exn) ~message:(Printexc.to_string exn);
    Printf.eprintf "wampde_cli: %s\n" (Printexc.to_string exn);
    exit 1

(* Enable telemetry around [f] according to the observability flags:
   metrics go to a table on stderr, JSON-lines traces plus a span-tree
   summary through --trace, a Chrome trace-event file through
   --trace-perfetto (with per-span GC attribution), a run manifest
   through --report, a live NDJSON stream through --stream, human
   progress lines through --progress and a Prometheus snapshot through
   --prometheus.  With no flag this is a no-op wrapper.
   [--fault-inject] (or WAMPDE_FAULTS) arms the deterministic fault
   harness for the wrapped run.  [total] is the run's slow-time target,
   powering the ETA estimate of --stream/--progress. *)
let with_obs ?(cmd = "") ?total ?(circuit = "") ?(n1 = 0) obs f =
  (* WAMPDE_JOBS seeded the pool at startup; an explicit --jobs wins *)
  (match obs.o_jobs with Some j -> Par.Pool.set_jobs j | None -> ());
  (match obs.o_faults with
   | Some spec -> (
     match Fault.arm spec with
     | Ok () -> ()
     | Error msg ->
       Printf.eprintf "wampde_cli: --fault-inject: %s\n" msg;
       exit 1)
   | None -> (
     try Fault.arm_from_env ()
     with Invalid_argument msg ->
       Printf.eprintf "wampde_cli: %s: %s\n" Fault.env_var msg;
       exit 1));
  (* flight recorder: always armed, whatever the telemetry flags, so a
     typed failure, fault trip or fatal signal can dump a postmortem *)
  Obs.Flight.arm ();
  flight_ctx := (cmd, obs.o_flight);
  List.iter
    (fun (signo, name, code) ->
      try
        Sys.set_signal signo
          (Sys.Signal_handle
             (fun _ ->
               Obs.Flight.note ~kind:"signal" (name ^ " received");
               flight_dump ~kind:"signal" ~message:(name ^ " received");
               exit code))
      with Invalid_argument _ | Sys_error _ -> ())
    [ (Sys.sigint, "SIGINT", 130); (Sys.sigterm, "SIGTERM", 143) ];
  let { o_metrics = metrics; o_trace = trace; o_perfetto = perfetto; o_report = report; _ } =
    obs
  in
  let any =
    metrics || trace <> None || perfetto <> None || report <> None || obs.o_stream <> None
    || obs.o_progress || obs.o_prometheus <> None || obs.o_history <> None
  in
  if not any then or_die f
  else begin
    Obs.set_enabled true;
    let t_run0 = Obs.now () in
    let recording = trace <> None || perfetto <> None in
    if recording then begin
      Obs.Span.set_gc_stats true;
      Obs.Span.start_recording ()
    end;
    (* solver decisions as instant events on the span timeline *)
    let instant_sub =
      if perfetto <> None then Some (Obs.Events.subscribe Obs.Trace_event.record_event)
      else None
    in
    let collector =
      if report <> None || obs.o_history <> None then Some (Obs.Report.collect ()) else None
    in
    let cleanup_trace =
      match trace with
      | None -> fun () -> ()
      | Some file ->
        let oc = open_or_die file in
        Obs.Span.set_writer (Some (fun line -> output_string oc line; output_char oc '\n'));
        let sub = Obs.Events.subscribe (fun e -> output_string oc (Obs.Events.to_json e); output_char oc '\n') in
        fun () ->
          Obs.Events.unsubscribe sub;
          Obs.Span.set_writer None;
          close_out oc
    in
    let stream =
      match obs.o_stream with
      | None -> None
      | Some target ->
        let oc = if target = "-" then stderr else open_or_die target in
        let write line =
          output_string oc line;
          output_char oc '\n'
        in
        let s = Obs.Stream.start ?total ~run:cmd ~write ~flush:(fun () -> flush oc) () in
        (* The solver error paths below call [exit 1] directly, which
           skips Fun.protect's finally; [at_exit] makes the terminal
           record (and the close) unconditional, and [Stream.finish] is
           idempotent so the normal path still wins with its more
           precise record. *)
        at_exit (fun () ->
            Obs.Stream.finish s ~ok:false ~error:"run aborted" ();
            if target <> "-" then close_out_noerr oc);
        Some s
    in
    let cleanup_progress =
      if not obs.o_progress then fun () -> ()
      else begin
        let eta =
          match total with
          | Some t when Float.is_finite t && t > 0. -> Some (Obs.Eta.create ~total:t ())
          | _ -> None
        in
        let steps = ref 0 in
        let last = ref (Obs.now () -. 1.) in
        let sub =
          Obs.Events.subscribe (fun e ->
              match e with
              | Obs.Events.Step_accept { t; h } when Obs.Scope.current () <> Some "transient"
                ->
                incr steps;
                (match eta with
                 | Some e -> Obs.Eta.update e ~now:(Obs.now ()) ~completed:(t +. h)
                 | None -> ());
                if Obs.now () -. !last >= 1.0 then begin
                  last := Obs.now ();
                  match eta with
                  | Some e when Obs.Eta.rate e > 0. ->
                    Printf.eprintf "wampde: t2 %.4g (%.0f%%), h2 %.3g, %d steps, eta %.0f s\n%!"
                      (t +. h)
                      (100. *. Obs.Eta.fraction e)
                      h !steps (Obs.Eta.eta_s e)
                  | _ ->
                    Printf.eprintf "wampde: t2 %.4g, h2 %.3g, %d steps\n%!" (t +. h) h !steps
                end
              | Obs.Events.Health_warning { monitor; value; threshold; hint; _ } ->
                Printf.eprintf "wampde: health: %s = %.3g > %.3g; %s\n%!" monitor value
                  threshold hint
              | _ -> ())
        in
        fun () -> Obs.Events.unsubscribe sub
      end
    in
    let ran_ok = ref false in
    let f () =
      or_die @@ fun () ->
      match f () with
      | r ->
        ran_ok := true;
        r
      | exception exn ->
        (* precise terminal record before or_die prints and exits *)
        (match stream with
         | Some s -> Obs.Stream.finish s ~ok:false ~error:(Printexc.to_string exn) ()
         | None -> ());
        raise exn
    in
    Fun.protect
      ~finally:(fun () ->
        cleanup_progress ();
        (match stream with
         | Some s ->
           Obs.Stream.finish s ~ok:!ran_ok
             ?error:(if !ran_ok then None else Some "run aborted")
             ()
         | None -> ());
        cleanup_trace ();
        (match instant_sub with Some s -> Obs.Events.unsubscribe s | None -> ());
        if recording then begin
          let spans = Obs.Span.stop_recording () in
          let instants = Obs.Span.recorded_instants () in
          Obs.Span.set_gc_stats false;
          (match perfetto with
           | Some file ->
             write_file_or_die file
               (Obs.Trace_event.to_string
                  ~process_name:(if cmd = "" then "wampde" else "wampde " ^ cmd)
                  ~spans ~instants ())
           | None -> ());
          if trace <> None then prerr_string (Obs.Span.tree_summary spans)
        end;
        (match collector with
         | Some c ->
           let steps = Obs.Report.finish c in
           let git = Obs.Report.git_describe () in
           let manifest =
             Obs.Report.manifest ~subcommand:cmd ?git
               ~jobs:(Par.Pool.jobs ())
               ~wall_s:(Obs.now () -. t_run0)
               ~steps ()
           in
           (match report with Some file -> write_file_or_die file manifest | None -> ());
           (match obs.o_history with
            | Some dir when !ran_ok ->
              let key =
                {
                  Obs.History.circuit;
                  analysis = cmd;
                  n1;
                  jobs = Par.Pool.jobs ();
                  git = Option.value git ~default:"";
                }
              in
              (match Obs.History.append ~dir ~key ~manifest () with
               | Ok () -> ()
               | Error msg -> Printf.eprintf "wampde_cli: --history: %s\n" msg)
            | _ -> ())
         | None -> ());
        (match obs.o_prometheus with
         | Some file -> write_file_or_die file (Obs.Metrics.to_prometheus ())
         | None -> ());
        if metrics then begin
          prerr_string (Obs.Metrics.table ());
          prerr_string (Obs.Metrics.scoped_table ())
        end;
        Obs.set_enabled false)
      f
  end

let which_conv =
  let parse = function
    | "a" | "A" | "vco-a" -> Ok A
    | "b" | "B" | "vco-b" -> Ok B
    | s -> Error (`Msg (Printf.sprintf "unknown VCO %S (use a or b)" s))
  in
  let print ppf w = Format.pp_print_string ppf (match w with A -> "a" | B -> "b") in
  Arg.conv (parse, print)

let params_of = function
  | A -> Circuit.Vco.vco_a ()
  | B -> Circuit.Vco.vco_b ()

let circuit_name = function A -> "vco-a" | B -> "vco-b"

let frozen_of = function
  | A -> Circuit.Vco.default_params ~control:(fun _ -> 1.5) ()
  | B -> Circuit.Vco.default_params ~damping:1.57 ~force0:4.0e-3 ~control:(fun _ -> 1.5) ()

let default_t_end = function A -> 60. | B -> 300.
let default_h2 = function A -> 0.4 | B -> 2.

let find_orbit ?(n1 = 25) which =
  let frozen = frozen_of which in
  Steady.Oscillator.find (Circuit.Vco.build frozen) ~n1 ~period_hint:(1. /. 0.75)
    (Circuit.Vco.initial_state frozen)

let which_arg =
  let doc = "Which VCO: $(b,a) (Figs. 7-9) or $(b,b) (Figs. 10-12)." in
  Arg.(value & opt which_conv A & info [ "vco"; "which" ] ~docv:"A|B" ~doc)

let n1_arg =
  let doc = "Number of warped-time collocation points (odd)." in
  Arg.(value & opt int 25 & info [ "n1" ] ~docv:"N" ~doc)

let t_end_arg =
  let doc = "End of the slow-time window in microseconds (default depends on the VCO)." in
  Arg.(value & opt (some float) None & info [ "t-end" ] ~docv:"US" ~doc)

let h2_arg =
  let doc = "Slow time step in microseconds (default depends on the VCO)." in
  Arg.(value & opt (some float) None & info [ "h2" ] ~docv:"US" ~doc)

let orbit_cmd =
  let run obs which n1 =
    with_obs ~cmd:"orbit" ~circuit:(circuit_name which) ~n1 obs @@ fun () ->
    let orbit = find_orbit ~n1 which in
    Printf.printf "frequency: %.6f MHz\nperiod:    %.6f us\namplitude: %.4f V\n"
      orbit.Steady.Oscillator.omega
      (Steady.Oscillator.period orbit)
      (Steady.Oscillator.amplitude orbit ~component:Circuit.Vco.idx_voltage);
    Printf.printf "t1,voltage,current,gap,velocity\n";
    Array.iteri
      (fun j s ->
        Printf.printf "%.4f,%.6f,%.6f,%.6f,%.6f\n"
          (float_of_int j /. float_of_int n1)
          s.(0) s.(1) s.(2) s.(3))
      orbit.Steady.Oscillator.grid
  in
  let doc = "unforced periodic steady state (collocation with unknown frequency)" in
  Cmd.v (Cmd.info "orbit" ~doc) Term.(const run $ obs_term $ which_arg $ n1_arg)

let solver_arg =
  let doc =
    "Collocation linear solver: $(b,dense) (assembled Jacobian + LU), $(b,krylov) (matrix-free \
     GMRES with the FFT-diagonalized block preconditioner) or $(b,auto) (krylov once the system \
     is large enough)."
  in
  let kind =
    Arg.enum
      [
        ("dense", Linalg.Structured.Dense);
        ("krylov", Linalg.Structured.Krylov);
        ("auto", Linalg.Structured.auto);
      ]
  in
  Arg.(value & opt kind Linalg.Structured.auto & info [ "solver" ] ~docv:"KIND" ~doc)

(* ---------- adaptive-stepping flags (envelope subcommand) ---------- *)

let rtol_arg =
  let doc = "Relative tolerance for adaptive slow-time stepping (enables the adaptive path)." in
  Arg.(value & opt (some float) None & info [ "rtol" ] ~docv:"TOL" ~doc)

let atol_arg =
  let doc = "Absolute tolerance floor for adaptive stepping (default rtol / 1000)." in
  Arg.(value & opt (some float) None & info [ "atol" ] ~docv:"TOL" ~doc)

let h2min_arg =
  let doc = "Smallest allowed slow step; going below it aborts the run." in
  Arg.(value & opt (some float) None & info [ "h2min" ] ~docv:"US" ~doc)

let h2max_arg =
  let doc = "Largest allowed slow step." in
  Arg.(value & opt (some float) None & info [ "h2max" ] ~docv:"US" ~doc)

let checkpoint_arg =
  let doc = "Write a binary checkpoint to $(docv) during the run (adaptive path only)." in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let checkpoint_every_arg =
  let doc = "Accepted steps between checkpoint writes." in
  Arg.(value & opt int 10 & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let resume_arg =
  let doc = "Resume an interrupted adaptive run from the checkpoint file $(docv)." in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

let envelope_cmd =
  let run obs which n1 t_end h2 solver rtol atol h2min h2max ckpt ckpt_every resume =
    let t_end = Option.value t_end ~default:(default_t_end which) in
    with_obs ~cmd:"envelope" ~total:t_end ~circuit:(circuit_name which) ~n1 obs @@ fun () ->
    let h2 = Option.value h2 ~default:(default_h2 which) in
    let orbit = find_orbit ~n1 which in
    let dae = Circuit.Vco.build (params_of which) in
    let options = Wampde.Envelope.default_options ~n1 ~solver () in
    let adaptive =
      rtol <> None || atol <> None || h2min <> None || h2max <> None || ckpt <> None
      || resume <> None
    in
    let res =
      try
        if adaptive then begin
          let rtol = Option.value rtol ~default:1e-4 in
          let control =
            Step_control.default_options ~rtol
              ~atol:(Option.value atol ~default:(rtol /. 1000.))
              ~h_min:(Option.value h2min ~default:1e-9)
              ~h_max:(Option.value h2max ~default:(t_end /. 2.))
              ()
          in
          let checkpoint = Option.map (fun path -> (path, ckpt_every)) ckpt in
          Wampde.Envelope.simulate_controlled dae ~options ~control ~h2_init:h2 ?checkpoint
            ?resume ~t2_end:t_end ~init:orbit ()
        end
        else Wampde.Envelope.simulate dae ~options ~t2_end:t_end ~h2 ~init:orbit
      with
      | Wampde.Envelope.Step_failure { t2; h2; residual; iterations; residual_history } ->
        flight_dump ~kind:"step-failure"
          ~message:
            (Printf.sprintf
               "envelope Newton failed at t2 = %g (h2 = %g): residual %.3e after %d iterations"
               t2 h2 residual iterations);
        Printf.eprintf
          "wampde_cli: envelope step failed at t2 = %.6g us (h2 = %.3g): Newton residual \
           %.3e after %d iterations\n"
          t2 h2 residual iterations;
        if Array.length residual_history > 0 then begin
          Printf.eprintf "  residual history:";
          Array.iter (Printf.eprintf " %.3e") residual_history;
          prerr_newline ()
        end;
        exit 1
      | Step_control.Underflow { t; h } ->
        flight_dump ~kind:"step-underflow"
          ~message:
            (Printf.sprintf "step control drove h2 below minimum at t2 = %g (h2 = %g)" t h);
        Printf.eprintf
          "wampde_cli: adaptive step control drove h2 below the minimum at t2 = %.6g us (h2 \
           = %.3g); relax --rtol or lower --h2min\n"
          t h;
        exit 1
      | Checkpoint.Corrupt msg ->
        flight_dump ~kind:"corrupt-checkpoint" ~message:msg;
        Printf.eprintf "wampde_cli: cannot resume: %s\n" msg;
        exit 1
    in
    let amp = Wampde.Envelope.amplitude_track res ~component:Circuit.Vco.idx_voltage in
    Printf.printf "t2_us,omega_mhz,amplitude_v,gap_um\n";
    Array.iteri
      (fun i t2 ->
        let gap = res.Wampde.Envelope.slices.(i).(0).(Circuit.Vco.idx_gap) in
        Printf.printf "%.4f,%.6f,%.6f,%.6f\n" t2 res.Wampde.Envelope.omega.(i) amp.(i) gap)
      res.Wampde.Envelope.t2
  in
  let doc =
    "WaMPDE envelope run; CSV of local frequency and amplitude vs slow time.  With any of \
     --rtol/--atol/--h2min/--h2max/--checkpoint/--resume the slow step adapts under local \
     truncation error control and the run can checkpoint and resume."
  in
  Cmd.v
    (Cmd.info "envelope" ~doc)
    Term.(
      const run $ obs_term $ which_arg $ n1_arg $ t_end_arg $ h2_arg $ solver_arg $ rtol_arg
      $ atol_arg $ h2min_arg $ h2max_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg)

let transient_cmd =
  let pts_arg =
    let doc = "Time steps per nominal oscillation cycle." in
    Arg.(value & opt int 100 & info [ "pts-per-cycle" ] ~docv:"N" ~doc)
  in
  let stride_arg =
    let doc = "Output every Nth sample." in
    Arg.(value & opt int 10 & info [ "stride" ] ~docv:"N" ~doc)
  in
  let run obs which t_end pts stride =
    let t_end = Option.value t_end ~default:(default_t_end which) in
    with_obs ~cmd:"transient" ~total:t_end ~circuit:(circuit_name which) obs @@ fun () ->
    let orbit = find_orbit which in
    let dae = Circuit.Vco.build (params_of which) in
    let x0 = Array.init dae.Dae.dim (fun i -> orbit.Steady.Oscillator.grid.(0).(i)) in
    let traj =
      Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:t_end
        ~h:(1.333 /. float_of_int pts) x0
    in
    Printf.printf "t_us,voltage_v,gap_um\n";
    Array.iteri
      (fun i t ->
        if i mod stride = 0 then
          Printf.printf "%.6f,%.6f,%.6f\n" t
            traj.Transient.states.(i).(Circuit.Vco.idx_voltage)
            traj.Transient.states.(i).(Circuit.Vco.idx_gap))
      traj.Transient.times
  in
  let doc = "brute-force transient simulation (the paper's baseline); CSV waveform" in
  Cmd.v
    (Cmd.info "transient" ~doc)
    Term.(const run $ obs_term $ which_arg $ t_end_arg $ pts_arg $ stride_arg)

let quasi_cmd =
  let n2_arg =
    let doc = "Number of slow-time collocation slices (odd)." in
    Arg.(value & opt int 15 & info [ "n2" ] ~docv:"N" ~doc)
  in
  let gmres_arg =
    let doc = "Use matrix-free GMRES with block-Jacobi preconditioning." in
    Arg.(value & flag & info [ "gmres" ] ~doc)
  in
  let run obs n1 n2 gmres =
    (* the embedded envelope warmup integrates to t2 = 200 *)
    with_obs ~cmd:"quasi" ~total:200. ~circuit:"vco-a" ~n1 obs @@ fun () ->
    let dae = Circuit.Vco.build (Circuit.Vco.vco_a ()) in
    let orbit = find_orbit ~n1 A in
    let options = Wampde.Envelope.default_options ~n1 () in
    let env = Wampde.Envelope.simulate dae ~options ~t2_end:200. ~h2:0.5 ~init:orbit in
    let guess = Wampde.Quasiperiodic.guess_from_envelope env ~p2:40. ~n2 ~t_from:160. in
    let linear_solver = if gmres then `Gmres else `Dense in
    let sol = Wampde.Quasiperiodic.solve dae ~linear_solver ~options ~p2:40. ~n2 ~guess () in
    Printf.printf "# residual %.3e, mean frequency %.6f MHz\n"
      (Wampde.Quasiperiodic.residual_norm dae ~options sol)
      (Wampde.Quasiperiodic.mean_frequency sol);
    Printf.printf "t2_us,omega_mhz\n";
    Array.iteri
      (fun m t2 -> Printf.printf "%.4f,%.6f\n" t2 sol.Wampde.Quasiperiodic.omega.(m))
      sol.Wampde.Quasiperiodic.t2
  in
  let doc = "quasiperiodic (periodic boundary conditions) WaMPDE solve of VCO-A" in
  Cmd.v (Cmd.info "quasi" ~doc) Term.(const run $ obs_term $ n1_arg $ n2_arg $ gmres_arg)

let waveform_cmd =
  let per_cycle_arg =
    let doc = "Output samples per oscillation cycle." in
    Arg.(value & opt int 20 & info [ "per-cycle" ] ~docv:"N" ~doc)
  in
  let run obs which n1 t_end h2 per_cycle =
    let t_end = Option.value t_end ~default:(default_t_end which) in
    with_obs ~cmd:"waveform" ~total:t_end ~circuit:(circuit_name which) ~n1 obs @@ fun () ->
    let h2 = Option.value h2 ~default:(default_h2 which) in
    let orbit = find_orbit ~n1 which in
    let dae = Circuit.Vco.build (params_of which) in
    let options = Wampde.Envelope.default_options ~n1 () in
    let res = Wampde.Envelope.simulate dae ~options ~t2_end:t_end ~h2 ~init:orbit in
    let times, values =
      Wampde.Envelope.waveform_samples res ~component:Circuit.Vco.idx_voltage ~per_cycle
    in
    Printf.printf "t_us,voltage_v\n";
    Array.iteri (fun i t -> Printf.printf "%.6f,%.6f\n" t values.(i)) times
  in
  let doc = "recovered 1-D waveform x(t) = xhat(phi(t), t) from an envelope run" in
  Cmd.v
    (Cmd.info "waveform" ~doc)
    Term.(const run $ obs_term $ which_arg $ n1_arg $ t_end_arg $ h2_arg $ per_cycle_arg)

let deck_cmd =
  let deck_arg =
    let doc = "Netlist deck file (SPICE-flavoured; see Circuit.Parser)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DECK" ~doc)
  in
  let t_end_pos =
    let doc = "Simulation end time." in
    Arg.(value & opt float 10. & info [ "t-end" ] ~docv:"T" ~doc)
  in
  let steps_arg =
    let doc = "Number of fixed time steps." in
    Arg.(value & opt int 2000 & info [ "steps" ] ~docv:"N" ~doc)
  in
  let run obs deck t_end steps =
    with_obs ~cmd:"deck" ~total:t_end ~circuit:(Filename.basename deck) obs @@ fun () ->
    match Circuit.Parser.parse_file deck with
    | exception Circuit.Parser.Parse_error { line; message } ->
      Printf.eprintf "%s:%d: %s\n" deck line message;
      exit 1
    | net ->
      let dae = Circuit.Mna.compile net in
      let x0 =
        let guess = Circuit.Mna.initial_guess net in
        let report = Dae.dc_operating_point ~x0:guess dae in
        if report.Nonlin.Newton.converged then report.Nonlin.Newton.x else guess
      in
      let traj =
        Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:t_end
          ~h:(t_end /. float_of_int steps)
          x0
      in
      Printf.printf "t";
      Array.iter (Printf.printf ",%s") dae.Dae.var_names;
      print_newline ();
      Array.iteri
        (fun i t ->
          Printf.printf "%.6g" t;
          Array.iter (Printf.printf ",%.6g") traj.Transient.states.(i);
          print_newline ())
        traj.Transient.times
  in
  let doc = "parse a SPICE-flavoured netlist deck and run a transient simulation (CSV)" in
  Cmd.v (Cmd.info "deck" ~doc) Term.(const run $ obs_term $ deck_arg $ t_end_pos $ steps_arg)

let report_cmd =
  let file_pos =
    let doc = "Run manifest written by $(b,--report) on a solver subcommand." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"REPORT" ~doc)
  in
  let check_arg =
    let doc = "Validate the manifest (schema, required fields, scoped-counter sums) and exit." in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run file check =
    let contents = read_file_or_die file in
    if check then
      match Obs.Report.check contents with
      | Ok () -> Printf.printf "report: %s: ok\n" file
      | Error msg ->
        Printf.eprintf "report: %s: invalid: %s\n" file msg;
        exit 1
    else
      match Obs.Report.to_markdown contents with
      | Ok md -> print_string md
      | Error msg ->
        Printf.eprintf "report: %s: invalid: %s\n" file msg;
        exit 1
  in
  let doc =
    "render a JSON run manifest (written by $(b,--report)) as a markdown summary, or validate \
     it with $(b,--check)"
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ file_pos $ check_arg)

let doctor_cmd =
  let manifest_pos =
    let doc = "Run manifest written by $(b,--report) on a solver subcommand." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MANIFEST" ~doc)
  in
  let stream_file_arg =
    let doc = "NDJSON stream written by $(b,--stream), cross-checked against the manifest." in
    Arg.(value & opt (some file) None & info [ "stream" ] ~docv:"FILE" ~doc)
  in
  let strict_arg =
    let doc = "Exit non-zero when the diagnosis contains any warning." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the diagnosis as JSON instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run manifest stream strict json =
    let contents = read_file_or_die manifest in
    let stream = Option.map read_file_or_die stream in
    match Obs.Doctor.diagnose_string ?stream contents with
    | Error msg ->
      Printf.eprintf "doctor: %s: %s\n" manifest msg;
      exit 1
    | Ok findings ->
      if json then print_endline (Obs.Doctor.to_json findings)
      else print_string (Obs.Doctor.render findings);
      if strict && Obs.Doctor.has_warnings findings then exit 1
  in
  let doc =
    "diagnose a finished run from its manifest (and optionally its NDJSON stream): dominant \
     cost scope, t1 over/under-resolution with a suggested n1, GMRES stagnation, \
     rejection-heavy stepping"
  in
  Cmd.v
    (Cmd.info "doctor" ~doc)
    Term.(const run $ manifest_pos $ stream_file_arg $ strict_arg $ json_arg)

let explain_cmd =
  let dump_pos =
    let doc =
      "Flight dump to render: the file written through $(b,--flight-dump) on a failing run, \
       or the $(b,flight) path attached to a $(b,serve) job-error record."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DUMP" ~doc)
  in
  let run file =
    match Obs.Flight.to_postmortem (read_file_or_die file) with
    | Ok text -> print_string text
    | Error msg ->
      Printf.eprintf "explain: %s: %s\n" file msg;
      exit 1
  in
  let doc =
    "render a $(b,wampde.flightdump/1) postmortem: the failure reason, run provenance, the \
     recorded event timeline (failing event last) and doctor findings from the embedded \
     metrics snapshot"
  in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const run $ dump_pos)

(* ---------- run-history analytics ---------- *)

let history_dir_arg =
  let doc = "History store directory (as passed to $(b,--history) on a run)." in
  Arg.(value & opt string "wampde-history" & info [ "dir" ] ~docv:"DIR" ~doc)

let key_filter_arg =
  let doc = "Only consider entries whose key contains $(docv) (substring match)." in
  Arg.(value & opt (some string) None & info [ "key" ] ~docv:"SUBSTR" ~doc)

let last_arg =
  let doc = "Window size: the newest $(docv) runs per key feed the robust statistics." in
  Arg.(value & opt int 8 & info [ "last" ] ~docv:"K" ~doc)

let nsigma_arg =
  let doc = "MAD-based outlier threshold in (scaled) sigmas." in
  Arg.(value & opt float 4.0 & info [ "nsigma" ] ~docv:"S" ~doc)

(* Load the store, surfacing (but not dying on) corrupt lines: a
   mangled history degrades to a partial one. *)
let load_history dir =
  let entries, warnings = Obs.History.load ~dir in
  List.iter (fun w -> Printf.eprintf "wampde_cli: history: warning: %s\n" w) warnings;
  entries

let matches_filter filter key =
  match filter with
  | None -> true
  | Some sub ->
    let ks = Obs.History.key_string key and n = String.length sub in
    let rec scan i = i + n <= String.length ks && (String.sub ks i n = sub || scan (i + 1)) in
    n = 0 || scan 0

let iso_time t =
  if Float.is_nan t then "-"
  else
    let tm = Unix.gmtime t in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
      tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* Entries grouped by key string, insertion (= chronological) order
   preserved within and across groups. *)
let group_by_key entries =
  let order = ref [] in
  let tbl : (string, Obs.History.entry list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Obs.History.entry) ->
      let k = Obs.History.key_string e.key in
      if not (Hashtbl.mem tbl k) then order := k :: !order;
      Hashtbl.replace tbl k (e :: (try Hashtbl.find tbl k with Not_found -> [])))
    entries;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

let history_list_cmd =
  let run dir =
    let entries = load_history dir in
    if entries = [] then print_endline "history: no entries"
    else
      List.iteri
        (fun i (e : Obs.History.entry) ->
          Printf.printf "#%-3d %-52s wall %8.3f s  %s\n" (i + 1)
            (Obs.History.key_string e.key) e.wall_s (iso_time e.unix_time))
        entries
  in
  let doc = "list every stored run (oldest first) with its key, wall time and timestamp" in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ history_dir_arg)

let nth_entry entries n =
  if n < 1 || n > List.length entries then begin
    Printf.eprintf "history: no entry #%d (store has %d; see 'history list')\n" n
      (List.length entries);
    exit 2
  end
  else List.nth entries (n - 1)

let history_show_cmd =
  let n_pos =
    let doc = "Entry number as printed by $(b,history list)." in
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc)
  in
  let run dir n =
    let e = nth_entry (load_history dir) n in
    let manifest = Obs.Json.to_string e.Obs.History.manifest in
    match Obs.Report.to_markdown manifest with
    | Ok md -> print_string md
    | Error _ -> print_endline manifest
  in
  let doc = "render one stored run manifest as markdown (raw JSON when it fails to render)" in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ history_dir_arg $ n_pos)

(* counters and gauges of a run-report manifest, as assoc lists *)
let manifest_metrics j =
  let obj k v = match Obs.Json.member k v with Some (Obs.Json.Obj l) -> l | _ -> [] in
  match Obs.Json.member "metrics" j with
  | Some m -> (obj "counters" m, obj "gauges" m)
  | None -> ([], [])

let history_compare_cmd =
  let a_pos =
    let doc = "Baseline entry number (see $(b,history list))." in
    Arg.(required & pos 0 (some int) None & info [] ~docv:"A" ~doc)
  in
  let b_pos =
    let doc = "Entry number to compare against the baseline." in
    Arg.(required & pos 1 (some int) None & info [] ~docv:"B" ~doc)
  in
  let run dir a b =
    let entries = load_history dir in
    let ea = nth_entry entries a and eb = nth_entry entries b in
    let num j = Option.value (Obs.Json.to_num j) ~default:nan in
    Printf.printf "# history compare #%d vs #%d\n\n" a b;
    Printf.printf "| | #%d | #%d |\n|---|---|---|\n" a b;
    Printf.printf "| key | %s | %s |\n"
      (Obs.History.key_string ea.Obs.History.key)
      (Obs.History.key_string eb.Obs.History.key);
    Printf.printf "| recorded | %s | %s |\n" (iso_time ea.unix_time) (iso_time eb.unix_time);
    let rel x y = if Float.is_finite x && x <> 0. && Float.is_finite y then Printf.sprintf " (%+.1f%%)" (100. *. (y -. x) /. Float.abs x) else "" in
    Printf.printf "| wall_s | %.3f | %.3f%s |\n\n" ea.wall_s eb.wall_s (rel ea.wall_s eb.wall_s);
    let ca, ga = manifest_metrics ea.manifest and cb, gb = manifest_metrics eb.manifest in
    let changed =
      List.filter_map
        (fun (k, va) ->
          match List.assoc_opt k cb with
          | Some vb when num va <> num vb -> Some (k, num va, num vb)
          | _ -> None)
        ca
      @ List.filter_map
          (fun (k, vb) -> if List.mem_assoc k ca then None else Some (k, 0., num vb))
          cb
    in
    if changed <> [] then begin
      Printf.printf "## counters\n\n| counter | #%d | #%d | delta |\n|---|---|---|---|\n" a b;
      List.iter
        (fun (k, va, vb) -> Printf.printf "| %s | %.0f | %.0f | %+.0f |\n" k va vb (vb -. va))
        changed;
      print_newline ()
    end;
    let gchanged =
      List.filter_map
        (fun (k, va) ->
          match List.assoc_opt k gb with
          | Some vb when num va <> num vb -> Some (k, num va, num vb)
          | _ -> None)
        ga
    in
    if gchanged <> [] then begin
      Printf.printf "## gauges\n\n| gauge | #%d | #%d | change |\n|---|---|---|---|\n" a b;
      List.iter
        (fun (k, va, vb) -> Printf.printf "| %s | %.6g | %.6g | %s |\n" k va vb
            (let r = rel va vb in if r = "" then Printf.sprintf "%+.6g" (vb -. va) else String.trim r))
        gchanged;
      print_newline ()
    end
  in
  let doc = "markdown delta of two stored runs: wall time, changed counters and gauges" in
  Cmd.v (Cmd.info "compare" ~doc) Term.(const run $ history_dir_arg $ a_pos $ b_pos)

let history_trend_cmd =
  let run dir filter last nsigma =
    let entries = List.filter (fun (e : Obs.History.entry) -> matches_filter filter e.key) (load_history dir) in
    if entries = [] then print_endline "history: no matching entries"
    else
      List.iter
        (fun (ks, es) ->
          let walls =
            List.filter Float.is_finite (List.map (fun (e : Obs.History.entry) -> e.wall_s) es)
          in
          let window =
            let n = List.length walls in
            if n <= last then walls else List.filteri (fun i _ -> i >= n - last) walls
          in
          match List.rev window with
          | [] -> Printf.printf "%-52s runs=%d (no finite wall times)\n" ks (List.length es)
          | latest :: _ ->
            let med = Obs.History.median window and mad = Obs.History.mad window in
            let flag =
              if List.length window >= 3 && Obs.History.is_outlier ~nsigma ~median:med ~mad latest
              then
                if latest > med then "  << SLOWER than trend" else "  << faster than trend"
              else ""
            in
            Printf.printf "%-52s runs=%d  median %.3f s  mad %.3f  latest %.3f s%s\n" ks
              (List.length es) med mad latest flag)
        (group_by_key entries)
  in
  let doc =
    "per-key robust trend over the newest $(b,--last) runs: median and MAD of wall time, \
     flagging a latest run that falls outside $(b,--nsigma) scaled MADs"
  in
  Cmd.v (Cmd.info "trend" ~doc)
    Term.(const run $ history_dir_arg $ key_filter_arg $ last_arg $ nsigma_arg)

(* Resolve a --prev/--fresh operand to a bench manifest file: a file is
   itself, a directory contributes its lexicographically newest
   BENCH_*.json (the file names embed the date). *)
let resolve_bench path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6 && String.sub f 0 6 = "BENCH_" && Filename.check_suffix f ".json")
    |> List.sort compare |> List.rev
    |> function
    | f :: _ -> Some (Filename.concat path f)
    | [] -> None
  else if Sys.file_exists path then Some path
  else None

let history_gate_cmd =
  let prev_arg =
    let doc = "Baseline bench manifest: a BENCH_*.json file or a directory holding one." in
    Arg.(value & opt (some string) None & info [ "prev" ] ~docv:"PATH" ~doc)
  in
  let fresh_arg =
    let doc = "Fresh bench manifest (file or directory).  Enables bench-gate mode." in
    Arg.(value & opt (some string) None & info [ "fresh" ] ~docv:"PATH" ~doc)
  in
  let threshold_arg =
    let doc = "Regression threshold on the fresh/baseline speedup ratio." in
    Arg.(value & opt float 0.75 & info [ "threshold" ] ~docv:"R" ~doc)
  in
  let run dir filter last nsigma prev fresh threshold =
    match fresh with
    | Some fresh_path -> (
      (* bench-gate mode: the scripts/bench_trend.py decision, natively *)
      match resolve_bench fresh_path with
      | None ->
        Printf.eprintf "history gate: no BENCH_*.json at %s\n" fresh_path;
        exit 2
      | Some fresh_file -> (
        match Obs.Json.parse (read_file_or_die fresh_file) with
        | Error msg ->
          Printf.eprintf "history gate: %s: %s\n" fresh_file msg;
          exit 2
        | Ok fresh_j -> (
          let prev_j =
            match Option.bind prev resolve_bench with
            | None -> None
            | Some f -> (
              match Obs.Json.parse (read_file_or_die f) with Ok j -> Some j | Error _ -> None)
          in
          match Obs.History.speedup_gate ~threshold ~prev:prev_j ~fresh:fresh_j () with
          | Obs.History.Gate_pass msg ->
            Printf.printf "history gate: PASS: %s\n" msg
          | Obs.History.Gate_no_baseline msg ->
            Printf.printf "history gate: PASS (no baseline): %s\n" msg
          | Obs.History.Gate_regression msg ->
            Printf.eprintf "history gate: REGRESSION: %s\n" msg;
            exit 1
          | Obs.History.Gate_data_error msg ->
            Printf.eprintf "history gate: DATA ERROR: %s\n" msg;
            exit 2)))
    | None ->
      (* store mode: gate the newest run of each key against its own
         median-of-last-K wall time *)
      let entries =
        List.filter (fun (e : Obs.History.entry) -> matches_filter filter e.key) (load_history dir)
      in
      if entries = [] then print_endline "history gate: PASS (no history)"
      else begin
        let regressions = ref 0 in
        List.iter
          (fun (ks, es) ->
            let walls =
              List.filter Float.is_finite (List.map (fun (e : Obs.History.entry) -> e.wall_s) es)
            in
            let n = List.length walls in
            let window = if n <= last then walls else List.filteri (fun i _ -> i >= n - last) walls in
            match List.rev window with
            | latest :: (_ :: _ :: _ as rest) ->
              let base = List.rev rest in
              let med = Obs.History.median base and mad = Obs.History.mad base in
              if Obs.History.is_outlier ~nsigma ~median:med ~mad latest && latest > med then begin
                incr regressions;
                Printf.eprintf
                  "history gate: REGRESSION: %s: latest wall %.3f s vs median %.3f s (mad %.3f)\n"
                  ks latest med mad
              end
              else Printf.printf "history gate: ok: %s: latest %.3f s, median %.3f s\n" ks latest med
            | _ -> Printf.printf "history gate: ok: %s: too few runs to judge\n" ks)
          (group_by_key entries);
        if !regressions > 0 then exit 1
      end
  in
  let doc =
    "CI regression gate with a typed exit code: 0 pass (or no usable baseline), 1 regression, \
     2 unusable fresh data.  With $(b,--fresh) (and optionally $(b,--prev)) it reproduces the \
     bench_trend.py krylov-speedup check over BENCH_*.json manifests; without it, it gates \
     each key's newest wall time against the median of its own history."
  in
  Cmd.v (Cmd.info "gate" ~doc)
    Term.(
      const run $ history_dir_arg $ key_filter_arg $ last_arg $ nsigma_arg $ prev_arg $ fresh_arg
      $ threshold_arg)

let history_cmd =
  let doc =
    "query the CRC-guarded run-history store written by $(b,--history): list and render stored \
     manifests, diff two runs, trend wall times and gate CI on regressions"
  in
  Cmd.group (Cmd.info "history" ~doc)
    [ history_list_cmd; history_show_cmd; history_compare_cmd; history_trend_cmd; history_gate_cmd ]

let serve_cmd =
  let quantum_arg =
    let doc =
      "Scheduling slice: accepted envelope macro steps before a running job is preempted \
       (checkpointed bit-exactly and requeued) so concurrent jobs advance round-robin."
    in
    Arg.(value & opt int 8 & info [ "quantum" ] ~docv:"N" ~doc)
  in
  let spool_arg =
    let doc = "Directory for preemption checkpoints (created if missing)." in
    Arg.(value & opt string "wampde-spool" & info [ "spool" ] ~docv:"DIR" ~doc)
  in
  let cache_arg =
    let doc =
      "Capacity of the cross-job preconditioner-factorization LRU in entries ($(b,0) \
       disables it); hits/misses/evictions surface as $(b,cache.precond.*) metrics."
    in
    Arg.(value & opt int 32 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let stall_timeout_arg =
    let doc =
      "Stall watchdog: fail a running job with a typed $(b,stalled) error when no solver \
       progress (macro step, Newton/GMRES iteration) is observed for $(docv) seconds \
       ($(b,0) disables)."
    in
    Arg.(value & opt float 0. & info [ "stall-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_retries_arg =
    let doc =
      "Retry a job that failed with a transient typed error up to $(docv) times, resuming \
       from its last bit-exact checkpoint after a seeded exponential backoff."
    in
    Arg.(value & opt int 0 & info [ "max-retries" ] ~docv:"N" ~doc)
  in
  let retry_base_arg =
    let doc = "Base delay of the seeded exponential retry backoff, seconds." in
    Arg.(value & opt float 0.1 & info [ "retry-base" ] ~docv:"SECONDS" ~doc)
  in
  let breaker_threshold_arg =
    let doc =
      "Consecutive permanent failures of one (circuit, analysis) pair before its circuit \
       breaker opens and further jobs fast-fail with $(b,breaker-open)."
    in
    Arg.(value & opt int 5 & info [ "breaker-threshold" ] ~docv:"N" ~doc)
  in
  let breaker_cooldown_arg =
    let doc =
      "Seconds an open circuit breaker fast-fails before letting one half-open probe \
       through; the probe's outcome closes or re-opens it."
    in
    Arg.(value & opt float 5. & info [ "breaker-cooldown" ] ~docv:"SECONDS" ~doc)
  in
  let run fault jobs quantum spool cache stall_timeout max_retries retry_base breaker_threshold
      breaker_cooldown =
    (match jobs with Some j -> Par.Pool.set_jobs j | None -> ());
    (match fault with
    | Some spec -> (
      match Fault.arm spec with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf "wampde_cli: --fault-inject: %s\n" msg;
        exit 1)
    | None -> (
      try Fault.arm_from_env ()
      with Invalid_argument msg ->
        Printf.eprintf "wampde_cli: %s: %s\n" Fault.env_var msg;
        exit 1));
    (* SIGTERM = graceful park: the handler only flips a flag (it may
       interrupt a blocking read, which surfaces as `Nothing); the
       server loop polls it and journals queued jobs as preempted. *)
    let term_requested = ref false in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> term_requested := true));
    let config =
      Serve.Server.default_config ~quantum ~spool ~cache ~max_retries ~retry_base_s:retry_base
        ~stall_timeout_s:stall_timeout ~breaker_threshold ~breaker_cooldown_s:breaker_cooldown
        ~stop_requested:(fun () -> !term_requested)
        ()
    in
    let write line =
      print_string line;
      print_char '\n';
      flush stdout
    in
    let log line =
      prerr_string line;
      prerr_char '\n';
      flush stderr
    in
    exit (Serve.Server.run config ~read:(Serve.Server.fd_reader Unix.stdin) ~write ~log)
  in
  let doc =
    "simulation service: accept NDJSON job requests on stdin (envelope and quasiperiodic \
     solves), time-slice them round-robin via bit-exact preemption checkpoints, journal every \
     job transition for crash recovery, and stream per-job progress, run-report manifests and \
     typed errors as NDJSON on stdout"
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ fault_arg $ jobs_arg $ quantum_arg $ spool_arg $ cache_arg $ stall_timeout_arg
      $ max_retries_arg $ retry_base_arg $ breaker_threshold_arg $ breaker_cooldown_arg)

let () =
  let doc = "multi-time (WaMPDE) simulation of voltage-controlled oscillators" in
  let info = Cmd.info "wampde_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            orbit_cmd; envelope_cmd; transient_cmd; quasi_cmd; waveform_cmd; deck_cmd; report_cmd;
            doctor_cmd; explain_cmd; history_cmd; serve_cmd;
          ]))
