(* Tests for the shared slow-axis step controller. *)

let sc_opts = Step_control.default_options

(* trapezoidal step for y' = -y: y1 = y0 (1 - h/2) / (1 + h/2) *)
let trap ~h y = y *. (1. -. (h /. 2.)) /. (1. +. (h /. 2.))

let step_doubling_err ~h y0 =
  let full = trap ~h y0 in
  let fine = trap ~h:(h /. 2.) (trap ~h:(h /. 2.) y0) in
  Float.abs ((fine -. full) /. Step_control.richardson_denom ~order:2)

let tests =
  [
    Alcotest.test_case "richardson error has the trapezoid's order" `Quick (fun () ->
        (* LTE ~ h^3 for an order-2 method: halving h must shrink the
           step-doubling estimate by ~2^3 *)
        let e1 = step_doubling_err ~h:0.1 1. in
        let e2 = step_doubling_err ~h:0.05 1. in
        let ratio = e1 /. e2 in
        Alcotest.(check bool)
          (Printf.sprintf "ratio %.2f in [6, 10]" ratio)
          true
          (ratio > 6. && ratio < 10.));
    Alcotest.test_case "error norm is the weighted RMS" `Quick (fun () ->
        let opts = sc_opts ~rtol:1e-3 ~atol:1e-6 () in
        let y = [| 2.; -4. |] and err = [| 1e-4; 2e-4 |] in
        let manual =
          let e1 = 1e-4 /. (1e-6 +. (1e-3 *. 2.)) in
          let e2 = 2e-4 /. (1e-6 +. (1e-3 *. 4.)) in
          sqrt (((e1 *. e1) +. (e2 *. e2)) /. 2.)
        in
        Alcotest.(check (float 1e-12)) "norm" manual (Step_control.error_norm opts ~y ~err));
    Alcotest.test_case "controller shrinks more for larger errors" `Quick (fun () ->
        (* PI monotonicity: with identical history, a larger scaled
           error must never yield a larger next step *)
        let next err =
          let ctrl = Step_control.create (sc_opts ()) ~h_init:1. in
          match Step_control.decide ctrl ~t:0. ~h_used:1. ~err with
          | Step_control.Accept h | Step_control.Reject h -> h
        in
        let errs = [ 0.01; 0.1; 0.5; 0.9; 1.5; 4. ] in
        let hs = List.map next errs in
        List.iteri
          (fun i h ->
            if i > 0 then
              Alcotest.(check bool) "monotone non-increasing" true (h <= List.nth hs (i - 1)))
          hs);
    Alcotest.test_case "acceptance grows the step, rejection shrinks it" `Quick (fun () ->
        let ctrl = Step_control.create (sc_opts ()) ~h_init:1. in
        (match Step_control.decide ctrl ~t:0. ~h_used:1. ~err:1e-4 with
         | Step_control.Accept h -> Alcotest.(check bool) "grows" true (h > 1.)
         | Step_control.Reject _ -> Alcotest.fail "tiny error must accept");
        let ctrl = Step_control.create (sc_opts ()) ~h_init:1. in
        match Step_control.decide ctrl ~t:0. ~h_used:1. ~err:9. with
        | Step_control.Reject h -> Alcotest.(check bool) "shrinks" true (h < 1.)
        | Step_control.Accept _ -> Alcotest.fail "large error must reject");
    Alcotest.test_case "rejection below h_min raises Underflow" `Quick (fun () ->
        let ctrl = Step_control.create (sc_opts ~h_min:0.09 ()) ~h_init:0.1 in
        (* reject factor clamps at min_shrink = 0.1: 0.1 * 0.1 < h_min *)
        match Step_control.decide ctrl ~t:0. ~h_used:0.1 ~err:1e12 with
        | exception Step_control.Underflow { h; _ } ->
          Alcotest.(check bool) "h below h_min" true (h < 0.09)
        | _ -> Alcotest.fail "expected Underflow");
    Alcotest.test_case "failure retry halves and escalates after two" `Quick (fun () ->
        let ctrl = Step_control.create (sc_opts ()) ~h_init:1. in
        let h1 = Step_control.failure_retry ctrl ~t:0. ~h_used:1. ~reason:"newton" in
        Alcotest.(check (float 0.)) "halved once" 0.5 h1;
        Alcotest.(check bool) "not yet" false (Step_control.should_escalate ctrl);
        let h2 = Step_control.failure_retry ctrl ~t:0. ~h_used:h1 ~reason:"newton" in
        Alcotest.(check (float 0.)) "halved twice" 0.25 h2;
        Alcotest.(check bool) "escalate" true (Step_control.should_escalate ctrl);
        Step_control.record_accept ctrl ~t:0. ~h_used:h2;
        Alcotest.(check bool) "accept clears the streak" false
          (Step_control.should_escalate ctrl));
    Alcotest.test_case "failure streak past max_failures raises Underflow" `Quick (fun () ->
        let ctrl = Step_control.create (sc_opts ~max_failures:3 ~h_min:1e-12 ()) ~h_init:1. in
        let h = ref 1. in
        for _ = 1 to 3 do
          h := Step_control.failure_retry ctrl ~t:0. ~h_used:!h ~reason:"newton"
        done;
        match Step_control.failure_retry ctrl ~t:0. ~h_used:!h ~reason:"newton" with
        | exception Step_control.Underflow _ -> ()
        | _ -> Alcotest.fail "expected Underflow after max_failures");
    Alcotest.test_case "record_accept grows toward h_max only" `Quick (fun () ->
        let ctrl = Step_control.create (sc_opts ~h_max:1.5 ()) ~h_init:1. in
        Step_control.record_accept ctrl ~t:0. ~h_used:1.;
        Alcotest.(check (float 0.)) "clamped at h_max" 1.5 (Step_control.h ctrl));
    Alcotest.test_case "snapshot round-trips and replays identically" `Quick (fun () ->
        let opts = sc_opts () in
        let ctrl = Step_control.create opts ~h_init:0.3 in
        ignore (Step_control.decide ctrl ~t:0. ~h_used:0.3 ~err:0.4);
        ignore (Step_control.decide ctrl ~t:0.3 ~h_used:(Step_control.h ctrl) ~err:1.7);
        ignore (Step_control.failure_retry ctrl ~t:0.3 ~h_used:0.1 ~reason:"newton");
        let snap = Step_control.snapshot ctrl in
        let floats = Step_control.snapshot_to_floats snap in
        let snap' = Step_control.snapshot_of_floats floats in
        Alcotest.(check bool) "snapshot encodes exactly" true (snap = snap');
        let twin = Step_control.create opts ~h_init:123. in
        Step_control.restore twin snap';
        (* identical future decisions *)
        let d1 = Step_control.decide ctrl ~t:0.6 ~h_used:(Step_control.h ctrl) ~err:0.2 in
        let d2 = Step_control.decide twin ~t:0.6 ~h_used:(Step_control.h twin) ~err:0.2 in
        Alcotest.(check bool) "same decision" true (d1 = d2);
        Alcotest.(check (float 0.)) "same h" (Step_control.h ctrl) (Step_control.h twin);
        Alcotest.(check int) "same accepted count" (Step_control.accepted ctrl)
          (Step_control.accepted twin));
    Alcotest.test_case "snapshot_of_floats validates length" `Quick (fun () ->
        Alcotest.check_raises "bad length"
          (Invalid_argument "Step_control.snapshot_of_floats: expected 6 entries")
          (fun () -> ignore (Step_control.snapshot_of_floats [| 1.; 2. |])));
    Alcotest.test_case "adaptive transient stays on the controller" `Quick (fun () ->
        (* y' = -y over [0, 2] under the shared controller: correct
           answer and a step profile that actually adapts *)
        let dae = Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -.x.(0) |]) () in
        let traj = Transient.integrate_adaptive dae ~t0:0. ~t1:2. ~tol:1e-8 [| 1. |] in
        let final = (Transient.final traj).(0) in
        Alcotest.(check (float 1e-5)) "e^-2" (exp (-2.)) final);
    Alcotest.test_case "impossible tolerance raises Underflow" `Quick (fun () ->
        let dae = Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -.x.(0) |]) () in
        match
          Transient.integrate_adaptive dae ~t0:0. ~t1:2. ~h_min:1e-3 ~tol:1e-14 [| 1. |]
        with
        | exception Step_control.Underflow _ -> ()
        | _ -> Alcotest.fail "expected Step_control.Underflow");
  ]

let suites = [ ("step_control", tests) ]
