(* Diagnostics-layer tests: the JSON parser, scoped cost accounting,
   metric isolation, GC attribution on spans, the Chrome trace-event
   exporter (balanced B/E pairs, parseable output under hostile
   strings) and the run-report manifest (check + markdown). *)
module Obs = Wampde_obs

let with_isolated f () = Obs.Metrics.with_isolated f

let check_ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

(* a tiny VCO-A envelope run shared by the end-to-end tests *)
let small_envelope_run () =
  let p0 = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
  let orbit =
    Steady.Oscillator.find (Circuit.Vco.build p0) ~n1:15 ~period_hint:1.333
      (Circuit.Vco.initial_state p0)
  in
  let dae = Circuit.Vco.build (Circuit.Vco.vco_a ()) in
  let options = Wampde.Envelope.default_options ~n1:15 () in
  Wampde.Envelope.simulate dae ~options ~t2_end:2. ~h2:0.5 ~init:orbit

(* Walk a parsed trace-event array: every entry must carry
   name/ph/pid/tid (plus ts except on metadata), and B/E must pair up
   like parentheses with matching names. *)
let assert_valid_trace (trace : Obs.Json.t) =
  let entries =
    match trace with
    | Obs.Json.Arr l -> l
    | _ -> Alcotest.fail "trace is not a JSON array"
  in
  Alcotest.(check bool) "trace has events" true (entries <> []);
  let stack = ref [] in
  List.iter
    (fun e ->
      let str k =
        match Option.bind (Obs.Json.member k e) Obs.Json.to_str with
        | Some s -> s
        | None -> Alcotest.failf "trace event missing string %S" k
      in
      let name = str "name" in
      let ph = str "ph" in
      (match Option.bind (Obs.Json.member "pid" e) Obs.Json.to_num with
       | Some _ -> ()
       | None -> Alcotest.fail "trace event missing pid");
      (match Option.bind (Obs.Json.member "tid" e) Obs.Json.to_num with
       | Some _ -> ()
       | None -> Alcotest.fail "trace event missing tid");
      (if ph <> "M" then
         match Option.bind (Obs.Json.member "ts" e) Obs.Json.to_num with
         | Some ts -> Alcotest.(check bool) "ts non-negative" true (ts >= 0.)
         | None -> Alcotest.fail "trace event missing ts");
      match ph with
      | "B" -> stack := name :: !stack
      | "E" -> (
        match !stack with
        | top :: rest ->
          Alcotest.(check string) "E closes the innermost B" top name;
          stack := rest
        | [] -> Alcotest.fail "E event with no open B")
      | "i" | "M" -> ()
      | ph -> Alcotest.failf "unexpected phase %S" ph)
    entries;
  Alcotest.(check (list string)) "all B events closed" [] !stack

let unit_tests =
  [
    Alcotest.test_case "json parser round-trips its own output" `Quick (fun () ->
        let j =
          check_ok "parse"
            (Obs.Json.parse
               {|{"a":[1,2.5,-3e2],"b":"x\n\"\\\u0007y","c":{"d":null,"e":true,"f":false},"g":[]}|})
        in
        (match Option.bind (Obs.Json.member "b" j) Obs.Json.to_str with
         | Some s -> Alcotest.(check string) "escapes decoded" "x\n\"\\\007y" s
         | None -> Alcotest.fail "member b missing");
        (match Obs.Json.member "a" j with
         | Some (Obs.Json.Arr [ Obs.Json.Num a; Obs.Json.Num b; Obs.Json.Num c ]) ->
           Alcotest.(check (float 1e-12)) "ints" 1. a;
           Alcotest.(check (float 1e-12)) "decimals" 2.5 b;
           Alcotest.(check (float 1e-12)) "exponents" (-300.) c
         | _ -> Alcotest.fail "member a wrong shape");
        List.iter
          (fun bad ->
            match Obs.Json.parse bad with
            | Ok _ -> Alcotest.failf "accepted malformed input %S" bad
            | Error _ -> ())
          [ "{"; "[1,]"; "{\"a\":}"; "nulll"; "\"unterminated"; "1 2"; "" ]);
    Alcotest.test_case "now is non-decreasing" `Quick (fun () ->
        let prev = ref (Obs.now ()) in
        for _ = 1 to 1000 do
          let t = Obs.now () in
          Alcotest.(check bool) "monotone" true (t >= !prev);
          prev := t
        done);
    Alcotest.test_case "scoped counters sum to the unscoped total" `Quick
      (with_isolated (fun () ->
           Obs.set_enabled true;
           let c = Obs.Metrics.counter "diag.work" in
           Obs.Metrics.incr c;
           Obs.Scope.with_scope "outer" (fun () ->
               Obs.Metrics.add c 10;
               Obs.Scope.with_scope "inner" (fun () -> Obs.Metrics.add c 100);
               Alcotest.(check (option string)) "scope restored after nesting" (Some "outer")
                 (Obs.Scope.current ()));
           Alcotest.(check (option string)) "unscoped outside" None (Obs.Scope.current ());
           Obs.Metrics.add c 1000;
           Alcotest.(check int) "total" 1111 (Obs.Metrics.count c);
           let scopes =
             match List.assoc_opt "diag.work" (Obs.Metrics.scoped_counters ()) with
             | Some s -> s
             | None -> Alcotest.fail "diag.work has no scoped buckets"
           in
           Alcotest.(check int) "sum over scopes equals total"
             (Obs.Metrics.count c)
             (List.fold_left (fun acc (_, n) -> acc + n) 0 scopes);
           Alcotest.(check (option int)) "unscoped bucket" (Some 1001)
             (List.assoc_opt "" scopes);
           Alcotest.(check (option int)) "outer bucket" (Some 10) (List.assoc_opt "outer" scopes);
           Alcotest.(check (option int)) "inner bucket" (Some 100)
             (List.assoc_opt "inner" scopes)));
    Alcotest.test_case "scope restores on exception" `Quick (fun () ->
        (try
           Obs.Scope.with_scope "doomed" (fun () -> failwith "boom")
         with Failure _ -> ());
        Alcotest.(check (option string)) "scope popped" None (Obs.Scope.current ()));
    Alcotest.test_case "with_isolated snapshots and restores" `Quick (fun () ->
        Obs.Metrics.with_isolated (fun () ->
            Obs.set_enabled true;
            let c = Obs.Metrics.counter "diag.isolated" in
            let g = Obs.Metrics.gauge "diag.isolated_gauge" in
            Obs.Scope.with_scope "layer" (fun () -> Obs.Metrics.add c 5);
            Obs.Metrics.set g 2.5;
            Obs.Metrics.with_isolated (fun () ->
                Alcotest.(check int) "inner sees zero" 0 (Obs.Metrics.count c);
                Alcotest.(check (float 0.)) "inner gauge zero" 0. (Obs.Metrics.value g);
                Alcotest.(check bool) "inner scoped buckets cleared" true
                  (List.assoc_opt "diag.isolated" (Obs.Metrics.scoped_counters ()) = None);
                Obs.set_enabled true;
                Obs.Metrics.add c 99);
            Alcotest.(check int) "outer value restored" 5 (Obs.Metrics.count c);
            Alcotest.(check (float 0.)) "outer gauge restored" 2.5 (Obs.Metrics.value g);
            Alcotest.(check (option int)) "scoped bucket restored" (Some 5)
              (Option.bind
                 (List.assoc_opt "diag.isolated" (Obs.Metrics.scoped_counters ()))
                 (List.assoc_opt "layer"));
            (* exceptions restore too *)
            (try
               Obs.Metrics.with_isolated (fun () ->
                   Obs.set_enabled true;
                   Obs.Metrics.add c 1234;
                   failwith "boom")
             with Failure _ -> ());
            Alcotest.(check int) "restored after exception" 5 (Obs.Metrics.count c)));
    Alcotest.test_case "gc attribution lands on spans" `Quick
      (with_isolated (fun () ->
           Obs.Span.set_gc_stats true;
           Obs.Span.start_recording ();
           let spans =
             Fun.protect
               ~finally:(fun () -> Obs.Span.set_gc_stats false)
               (fun () ->
                 Obs.Span.span "alloc_heavy" (fun () ->
                     ignore (Sys.opaque_identity (Array.init 100_000 float_of_int)));
                 Obs.Span.stop_recording ())
           in
           match spans with
           | [ r ] -> (
             match r.Obs.Span.gc with
             | Some d ->
               Alcotest.(check bool) "allocation attributed" true
                 (Obs.Span.allocated_words d >= 100_000.);
               let summary = Obs.Span.tree_summary spans in
               Alcotest.(check bool) "summary shows allocation column" true
                 (try
                    ignore (Str.search_forward (Str.regexp " w ") summary 0);
                    true
                  with Not_found -> false)
             | None -> Alcotest.fail "gc delta missing")
           | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)));
    Alcotest.test_case "trace exporter emits valid balanced events" `Quick
      (with_isolated (fun () ->
           Obs.set_enabled true;
           Obs.Span.start_recording ();
           let sub = Obs.Events.subscribe Obs.Trace_event.record_event in
           Obs.Span.span "root" (fun () ->
               Obs.Span.span "left" (fun () -> ());
               Obs.Events.emit (Obs.Events.Step_accept { t = 0.5; h = 0.25 });
               Obs.Span.span "right" (fun () ->
                   Obs.Events.emit (Obs.Events.Phase_condition { omega = 1.1; t2 = 0.5 })));
           Obs.Span.span "second_root" (fun () -> ());
           Obs.Events.unsubscribe sub;
           let spans = Obs.Span.stop_recording () in
           let instants = Obs.Span.recorded_instants () in
           Alcotest.(check int) "instants recorded" 2 (List.length instants);
           let out = Obs.Trace_event.to_string ~spans ~instants () in
           let trace = check_ok "trace parses" (Obs.Json.parse out) in
           assert_valid_trace trace;
           let entries = match trace with Obs.Json.Arr l -> l | _ -> [] in
           (* process_name + thread_name (single tid) + B/E pairs + instants *)
           Alcotest.(check int) "4 spans -> 4 B/E pairs + 2 metadata + 2 instants"
             (2 + (2 * 4) + 2)
             (List.length entries)));
    Alcotest.test_case "report manifest validates and renders" `Quick
      (with_isolated (fun () ->
           Obs.set_enabled true;
           let collector = Obs.Report.collect () in
           let res = small_envelope_run () in
           let steps = Obs.Report.finish collector in
           Alcotest.(check int) "one history entry per slow step"
             (Array.length res.Wampde.Envelope.t2 - 1)
             (List.length steps);
           List.iter
             (fun (s : Obs.Report.step) ->
               Alcotest.(check string) "fixed stepping only accepts" "accept" s.Obs.Report.outcome;
               Alcotest.(check bool) "omega filled from phase condition" true
                 (match s.Obs.Report.omega with Some o -> o > 0. | None -> false);
               Alcotest.(check bool) "newton work recorded" true
                 (s.Obs.Report.newton_iterations > 0))
             steps;
           let manifest =
             Obs.Report.manifest ~argv:[| "test"; "envelope" |] ~subcommand:"envelope"
               ~wall_s:1.5 ~steps ()
           in
           check_ok "manifest checks" (Obs.Report.check manifest);
           let md = check_ok "manifest renders" (Obs.Report.to_markdown manifest) in
           List.iter
             (fun needle ->
               Alcotest.(check bool) (Printf.sprintf "markdown contains %s" needle) true
                 (try
                    ignore (Str.search_forward (Str.regexp_string needle) md 0);
                    true
                  with Not_found -> false))
             [ "# wampde run report"; "## Solver work"; "## Scoped cost breakdown"; "## Step history"; "envelope.newton" ]));
    Alcotest.test_case "report check rejects inconsistent scoped sums" `Quick (fun () ->
        let good =
          {|{"schema":"wampde.run-report/1","argv":["x"],"subcommand":"","git":null,"ocaml":"5.1.1","unix_time":0,"wall_s":1,"gc":{"minor_words":10,"promoted_words":1,"major_words":2,"minor_collections":1,"major_collections":0,"heap_words":5},"metrics":{"counters":{"lu.factor":7},"gauges":{},"histograms":{},"scoped":{"lu.factor":{"transient":3,"envelope.newton":4}}},"history":[{"t":0,"h":0.5,"omega":1.0,"newton_iterations":2,"residual":1e-9,"outcome":"accept","reason":null}]}|}
        in
        check_ok "consistent manifest accepted" (Obs.Report.check good);
        let tampered = Str.replace_first (Str.regexp_string "\"transient\":3") "\"transient\":2" good in
        (match Obs.Report.check tampered with
         | Error msg ->
           Alcotest.(check bool) "error names the counter" true
             (try
                ignore (Str.search_forward (Str.regexp_string "lu.factor") msg 0);
                true
              with Not_found -> false)
         | Ok () -> Alcotest.fail "tampered scoped sum accepted");
        (match Obs.Report.check "{\"schema\":\"wampde.run-report/1\"}" with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "manifest without required fields accepted");
        match Obs.Report.check "not json at all" with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "non-JSON accepted");
  ]

(* End-to-end acceptance: a VCO-A envelope run traced + reported must
   give a balanced, schema-valid trace and a manifest whose scoped
   counters sum to the unscoped totals for the shared leaf counters. *)
let acceptance_tests =
  [
    Alcotest.test_case "envelope run yields valid trace and manifest" `Slow
      (with_isolated (fun () ->
           Obs.set_enabled true;
           Obs.Span.set_gc_stats true;
           Obs.Span.start_recording ();
           let instant_sub = Obs.Events.subscribe Obs.Trace_event.record_event in
           let collector = Obs.Report.collect () in
           let t0 = Obs.now () in
           ignore (small_envelope_run ());
           let wall_s = Obs.now () -. t0 in
           let steps = Obs.Report.finish collector in
           Obs.Events.unsubscribe instant_sub;
           let spans = Obs.Span.stop_recording () in
           let instants = Obs.Span.recorded_instants () in
           Obs.Span.set_gc_stats false;
           (* (a) the trace validates against the trace-event schema *)
           let trace_str = Obs.Trace_event.to_string ~spans ~instants () in
           assert_valid_trace (check_ok "trace parses" (Obs.Json.parse trace_str));
           Alcotest.(check bool) "accept instants present" true
             (List.exists (fun i -> i.Obs.Span.i_name = "step_accept") instants);
           (* (b) the manifest's scoped counters are consistent *)
           let manifest = Obs.Report.manifest ~subcommand:"envelope" ~wall_s ~steps () in
           check_ok "manifest checks" (Obs.Report.check manifest);
           let scoped = Obs.Metrics.scoped_counters () in
           List.iter
             (fun name ->
               let total = Obs.Metrics.count (Obs.Metrics.counter name) in
               Alcotest.(check bool) (name ^ " was exercised") true (total > 0);
               match List.assoc_opt name scoped with
               | Some buckets ->
                 Alcotest.(check int)
                   (name ^ " sum-over-scopes equals total")
                   total
                   (List.fold_left (fun acc (_, n) -> acc + n) 0 buckets)
               | None -> Alcotest.failf "%s has no scoped buckets" name)
             [ "lu.factor"; "newton.iterations" ];
           (* gmres is not exercised by the small dense run, but its
              scoped invariant must hold vacuously *)
           Alcotest.(check (option (list (pair string int))))
             "gmres.iterations unused here" None
             (List.assoc_opt "gmres.iterations" scoped)));
  ]

(* Hostile-string properties: anything we serialize must come back out
   of a JSON parser, control characters and backslashes included. *)
let prop_tests =
  let open QCheck in
  let any_string = string in
  let parses what s =
    match Obs.Json.parse s with
    | Ok _ -> true
    | Error msg -> Test.fail_reportf "%s did not parse: %s\n%s" what msg s
  in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"event json parses for hostile reason strings" ~count:200 any_string
         (fun reason ->
           parses "Step_reject"
             (Obs.Events.to_json (Obs.Events.Step_reject { t = 1.; h = 0.5; reason }))
           && parses "Step_retry"
                (Obs.Events.to_json
                   (Obs.Events.Step_retry { t = 1.; h = 0.5; h_next = 0.25; reason }))
           && parses "Newton_done"
                (Obs.Events.to_json
                   (Obs.Events.Newton_done
                      { solver = reason; iterations = 3; residual = nan; converged = true }))));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"span writer lines parse and round-trip hostile names" ~count:200
         any_string (fun name ->
           Obs.Metrics.with_isolated (fun () ->
               let lines = ref [] in
               Obs.Span.set_writer (Some (fun l -> lines := l :: !lines));
               Fun.protect
                 ~finally:(fun () -> Obs.Span.set_writer None)
                 (fun () ->
                   Obs.Span.span ~attrs:[ ("note", Obs.Span.Str name) ] name (fun () -> ());
                   Obs.Span.instant name);
               List.for_all
                 (fun line ->
                   parses "writer line" line
                   &&
                   match Obs.Json.parse line with
                   | Ok j -> (
                     match Option.bind (Obs.Json.member "name" j) Obs.Json.to_str with
                     | Some got -> got = name
                     | None -> true (* span_stop carries the name too, but don't insist *))
                   | Error _ -> false)
                 !lines)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"trace-event export parses for hostile span names" ~count:200 any_string
         (fun name ->
           let spans =
             [
               {
                 Obs.Span.id = 0;
                 parent = None;
                 name;
                 attrs = [ ("s", Obs.Span.Str name); ("n", Obs.Span.Int 1) ];
                 t_start = 0.;
                 t_stop = 1.;
                 gc = None;
                 tid = 1;
               };
             ]
           in
           let instants = [ { Obs.Span.i_name = name; i_attrs = []; i_t = 0.5 } ] in
           parses "trace export"
             (Obs.Trace_event.to_string ~process_name:name ~spans ~instants ())));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"metrics json parses for hostile metric names" ~count:100 any_string
         (fun name ->
           Obs.Metrics.with_isolated (fun () ->
               Obs.set_enabled true;
               (* avoid kind clashes between iterations on the same name *)
               let c = Obs.Metrics.counter ("c." ^ name) in
               Obs.Scope.with_scope name (fun () -> Obs.Metrics.add c 3);
               Obs.Metrics.set (Obs.Metrics.gauge ("g." ^ name)) 1.25;
               parses "metrics json" (Obs.Metrics.to_json ()))));
  ]

let suites =
  [ ("diag", unit_tests @ prop_tests); ("diag-acceptance", acceptance_tests) ]
