(* The flight recorder: bounded ring semantics, dump shape (schema,
   provenance, reason-last timeline) and postmortem rendering. *)

module Obs = Wampde_obs
module Json = Obs.Json

let with_flight f () =
  Obs.Metrics.with_isolated (fun () ->
      (* a previous suite may have left the process-global recorder
         armed (arm is idempotent while armed, keeping the old
         capacity and cells) — start from a disarmed, empty ring *)
      Obs.Flight.disarm ();
      Obs.Flight.clear ();
      Fun.protect
        ~finally:(fun () ->
          Obs.Flight.disarm ();
          Obs.Flight.clear ();
          Obs.set_enabled false)
        f)

let parse_dump s =
  match Json.parse s with
  | Ok j -> j
  | Error m -> Alcotest.failf "dump does not parse: %s" m

let timeline j =
  match Json.member "timeline" j with
  | Some (Json.Arr l) -> l
  | _ -> Alcotest.fail "dump has no timeline array"

let entry_str k e = Option.bind (Json.member k e) Json.to_str

let ring_tests =
  [
    Alcotest.test_case "ring is bounded and drops oldest first" `Quick
      (with_flight (fun () ->
           Obs.Flight.arm ~capacity:16 ();
           for i = 1 to 40 do
             Obs.Flight.note ~kind:"n" (Printf.sprintf "m%d" i)
           done;
           Alcotest.(check int) "recorded caps at capacity" 16 (Obs.Flight.recorded ());
           Alcotest.(check int) "dropped counts overwrites" 24 (Obs.Flight.dropped ());
           let j = parse_dump (Obs.Flight.dump ~kind:"boom" ~message:"end" ()) in
           let tl = timeline j in
           (* 16 surviving notes + the reason entry *)
           Alcotest.(check int) "timeline = recorded + reason" 17 (List.length tl);
           Alcotest.(check (option string))
             "oldest surviving cell is the 25th note" (Some "m25")
             (entry_str "message" (List.hd tl))));
    Alcotest.test_case "clear empties the ring, arm is idempotent" `Quick
      (with_flight (fun () ->
           Obs.Flight.arm ~capacity:16 ();
           Obs.Flight.note ~kind:"n" "x";
           Obs.Flight.arm ~capacity:16 ();
           Alcotest.(check int) "re-arm while armed keeps cells" 1 (Obs.Flight.recorded ());
           Obs.Flight.clear ();
           Alcotest.(check int) "cleared" 0 (Obs.Flight.recorded ());
           Alcotest.(check bool) "still armed" true (Obs.Flight.armed ())));
    Alcotest.test_case "notes are recorded even while telemetry is disabled" `Quick
      (with_flight (fun () ->
           Obs.set_enabled false;
           Obs.Flight.arm ();
           Obs.Flight.note ~kind:"fault" "injected nan";
           Alcotest.(check int) "note landed" 1 (Obs.Flight.recorded ())));
    Alcotest.test_case "solver events and macro-step snapshots land on the timeline" `Quick
      (with_flight (fun () ->
           Obs.set_enabled true;
           Obs.Flight.arm ();
           Obs.Events.emit
             (Obs.Events.Newton_iter { solver = "envelope"; k = 1; residual = 1e-3; damping = 1. });
           Obs.Events.emit (Obs.Events.Step_accept { t = 0.5; h = 0.25 });
           let j = parse_dump (Obs.Flight.dump ~kind:"boom" ~message:"end" ()) in
           let tl = timeline j in
           let types = List.filter_map (entry_str "type") tl in
           Alcotest.(check bool) "has event entries" true (List.mem "event" types);
           Alcotest.(check bool) "step accept snapshotted" true (List.mem "snapshot" types);
           List.iter
             (fun e ->
               match Option.bind (Json.member "t_s" e) Json.to_num with
               | Some _ -> ()
               | None -> Alcotest.fail "timeline entry without t_s")
             tl));
  ]

let dump_tests =
  [
    Alcotest.test_case "dump carries schema, provenance and reason-last timeline" `Quick
      (with_flight (fun () ->
           Obs.Flight.arm ();
           Obs.Flight.note ~kind:"fault" "injected linsolve";
           let j =
             parse_dump
               (Obs.Flight.dump
                  ~argv:[| "wampde_cli"; "envelope" |]
                  ~subcommand:"envelope" ~git:"abc123" ~jobs:2 ~kind:"step-failure"
                  ~message:"Newton failed" ())
           in
           let str k = Option.bind (Json.member k j) Json.to_str in
           Alcotest.(check (option string)) "schema" (Some Obs.Flight.schema) (str "schema");
           Alcotest.(check (option string)) "subcommand" (Some "envelope") (str "subcommand");
           Alcotest.(check (option string)) "git" (Some "abc123") (str "git");
           Alcotest.(check bool) "metrics snapshot embedded" true
             (Json.member "metrics" j <> None);
           (match Json.member "reason" j with
            | Some r ->
              Alcotest.(check (option string)) "reason kind" (Some "step-failure")
                (entry_str "kind" r)
            | None -> Alcotest.fail "no reason object");
           let tl = timeline j in
           let last = List.nth tl (List.length tl - 1) in
           Alcotest.(check (option string))
             "failing event is the final timeline entry" (Some "Newton failed")
             (entry_str "message" last)));
    Alcotest.test_case "write + to_postmortem round trip renders reason last" `Quick
      (with_flight (fun () ->
           Obs.Flight.arm ();
           Obs.Flight.note ~kind:"fault" "injected nan (call 3)";
           let path = Filename.temp_file "wampde-flight" ".json" in
           Fun.protect
             ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
             (fun () ->
               (match
                  Obs.Flight.write ~subcommand:"envelope" ~path ~kind:"step-failure"
                    ~message:"residual diverged" ()
                with
               | Ok p -> Alcotest.(check string) "returns the path" path p
               | Error m -> Alcotest.failf "write failed: %s" m);
               let ic = open_in_bin path in
               let contents =
                 Fun.protect
                   ~finally:(fun () -> close_in_noerr ic)
                   (fun () -> really_input_string ic (in_channel_length ic))
               in
               match Obs.Flight.to_postmortem contents with
               | Error m -> Alcotest.failf "postmortem failed: %s" m
               | Ok text ->
                 let lines =
                   List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
                 in
                 let contains sub s =
                   let n = String.length sub in
                   let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
                   go 0
                 in
                 Alcotest.(check bool) "mentions the reason" true
                   (contains "residual diverged" text);
                 Alcotest.(check bool) "mentions the injected fault" true
                   (contains "injected nan" text);
                 (* the last timeline line (before the doctor section) is
                    the failing event *)
                 let timeline_lines = List.filter (contains "step-failure") lines in
                 Alcotest.(check bool) "failing event rendered" true (timeline_lines <> []))));
    Alcotest.test_case "to_postmortem rejects garbage and foreign schemas" `Quick (fun () ->
        (match Obs.Flight.to_postmortem "{ not json" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "garbage accepted");
        match Obs.Flight.to_postmortem "{\"schema\":\"wampde.run-report/1\"}" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "run manifest accepted as flight dump");
    Alcotest.test_case "disarmed recorder stops capturing events" `Quick
      (with_flight (fun () ->
           Obs.set_enabled true;
           Obs.Flight.arm ();
           Obs.Flight.disarm ();
           Obs.Flight.clear ();
           Obs.Events.emit (Obs.Events.Step_accept { t = 0.1; h = 0.1 });
           Alcotest.(check int) "no cells after disarm" 0 (Obs.Flight.recorded ())));
  ]

let suites = [ ("flight", ring_tests @ dump_tests) ]
