(* Tests for the WaMPDE core: phase conditions, envelope following,
   recovery along the warped path, and the quasiperiodic solver. *)
open Linalg

let approx_tol tol = Alcotest.(check (float tol))
let two_pi = 2. *. Float.pi

(* A "prescribed-FM" LC oscillator for analytic validation: LC tank +
   cubic negative resistor where the capacitance is an explicit slow
   function of time, C(t2) = c0 / (1 + m sin(2 pi t2 / p2)).  The local
   frequency must track 1 / (2 pi sqrt(L C(t2))) quasi-statically. *)
let prescribed_fm ~l ~c0 ~m ~p2 =
  let c t = c0 /. (1. +. (m *. sin (two_pi *. t /. p2))) in
  let g1 = 1.0 and g3 = 1. /. 3. in
  Dae.make ~dim:2
    ~q:(fun _ -> [| 0.; 0. |])
    (* dummy; replaced below *)
    ~f:(fun ~t:_ _ -> [| 0.; 0. |])
    ()
  |> fun _ ->
  Dae.make ~dim:2
    ~q:(fun x -> [| x.(0); l *. x.(1) |])
    (* NOTE: capacitor charge is written as C(t2) v only through f to keep
       q time-independent: we use the equivalent form
       C(t2) dv/dt = -(iL + inl(v)) <=> dv/dt = -(iL + inl(v)) / C(t2) *)
    ~f:(fun ~t x ->
      let inl = (-.g1 *. x.(0)) +. (g3 *. (x.(0) ** 3.)) in
      [| (x.(1) +. inl) /. c t; -.x.(0) |])
    ~dq:(fun _ -> [| [| 1.; 0. |]; [| 0.; l |] |])
    ~df:(fun ~t x ->
      let dinl = -.g1 +. (3. *. g3 *. x.(0) *. x.(0)) in
      [| [| dinl /. c t; 1. /. c t |]; [| -1.; 0. |] |])
    ()

let vco_a_setup () =
  let p = Circuit.Vco.vco_a () in
  let dae = Circuit.Vco.build p in
  let p0 = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
  let dae0 = Circuit.Vco.build p0 in
  let orbit =
    Steady.Oscillator.find dae0 ~n1:25 ~period_hint:1.333 (Circuit.Vco.initial_state p0)
  in
  (dae, orbit)

let phase_tests =
  [
    Alcotest.test_case "derivative row annihilates even waveforms" `Quick (fun () ->
        let n1 = 15 and n = 2 in
        let d = Fourier.Series.diff_matrix n1 in
        let row = Wampde.Phase.row (Wampde.Phase.Derivative 0) ~n1 ~n ~d in
        (* x0(t1) = cos(2 pi t1) has zero derivative at t1 = 0 *)
        let x =
          Vec.init (n1 * n) (fun idx ->
              if idx mod n = 0 then cos (two_pi *. float_of_int (idx / n) /. float_of_int n1)
              else 0.42)
        in
        approx_tol 1e-9 "zero" 0. (Vec.dot row x));
    Alcotest.test_case "fourier row computes Im of coefficient" `Quick (fun () ->
        let n1 = 15 and n = 1 in
        let d = Fourier.Series.diff_matrix n1 in
        let row =
          Wampde.Phase.row (Wampde.Phase.Fourier { component = 0; harmonic = 1 }) ~n1 ~n ~d
        in
        (* sin has Im c1 = -1/2, cos has Im c1 = 0; the row is scaled by
           n1 to keep it O(1) in the Newton system *)
        let sine = Vec.init n1 (fun j -> sin (two_pi *. float_of_int j /. float_of_int n1)) in
        let cosine = Vec.init n1 (fun j -> cos (two_pi *. float_of_int j /. float_of_int n1)) in
        approx_tol 1e-9 "sin" (-0.5 *. float_of_int n1) (Vec.dot row sine);
        approx_tol 1e-9 "cos" 0. (Vec.dot row cosine));
    Alcotest.test_case "bad component rejected" `Quick (fun () ->
        let d = Fourier.Series.diff_matrix 5 in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Wampde.Phase.row (Wampde.Phase.Derivative 3) ~n1:5 ~n:2 ~d);
             false
           with Invalid_argument _ -> true));
  ]

let envelope_tests =
  [
    Alcotest.test_case "constant forcing keeps the unforced orbit" `Quick (fun () ->
        (* VCO with frozen control: envelope must stay at the initial orbit
           with constant omega *)
        let p = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let dae = Circuit.Vco.build p in
        let orbit =
          Steady.Oscillator.find dae ~n1:25 ~period_hint:1.333 (Circuit.Vco.initial_state p)
        in
        let options = Wampde.Envelope.default_options ~n1:25 () in
        let res = Wampde.Envelope.simulate dae ~options ~t2_end:10. ~h2:0.5 ~init:orbit in
        Array.iter
          (fun om -> approx_tol 1e-5 "omega constant" orbit.Steady.Oscillator.omega om)
          res.Wampde.Envelope.omega;
        (* slices should not drift *)
        let last = res.Wampde.Envelope.slices.(Array.length res.Wampde.Envelope.slices - 1) in
        for j = 0 to 24 do
          approx_tol 1e-4 "slice stable" orbit.Steady.Oscillator.grid.(j).(0) last.(j).(0)
        done);
    Alcotest.test_case "prescribed C(t2): local frequency tracks 1/(2 pi sqrt(LC))" `Quick
      (fun () ->
        let l = 0.045 and c0 = 1.0 and m = 0.3 and p2 = 400. in
        let dae = prescribed_fm ~l ~c0 ~m ~p2 in
        let orbit = Steady.Oscillator.find dae ~n1:25 ~period_hint:1.333 [| 2.; 0. |] in
        let options = Wampde.Envelope.default_options ~n1:25 () in
        let res = Wampde.Envelope.simulate dae ~options ~t2_end:p2 ~h2:2. ~init:orbit in
        (* slow forcing (p2 = 400 >> mechanical/none) => quasi-static *)
        Array.iteri
          (fun i t2 ->
            if i mod 20 = 0 then begin
              let c = c0 /. (1. +. (m *. sin (two_pi *. t2 /. p2))) in
              let f_lc = 1. /. (two_pi *. sqrt (l *. c)) in
              let rel =
                Float.abs (res.Wampde.Envelope.omega.(i) -. f_lc) /. f_lc
              in
              Alcotest.(check bool) "within 1%" true (rel < 0.01)
            end)
          res.Wampde.Envelope.t2);
    Alcotest.test_case "VCO-A: frequency swings by a factor of ~3 (fig 7)" `Slow (fun () ->
        let dae, orbit = vco_a_setup () in
        let options = Wampde.Envelope.default_options ~n1:25 () in
        let res = Wampde.Envelope.simulate dae ~options ~t2_end:60. ~h2:0.4 ~init:orbit in
        let om = res.Wampde.Envelope.omega in
        let omin = Array.fold_left Float.min infinity om in
        let omax = Array.fold_left Float.max neg_infinity om in
        Alcotest.(check bool) "ratio in [2, 3.5]" true
          (omax /. omin > 2.0 && omax /. omin < 3.5);
        approx_tol 0.01 "starts at 0.748" 0.748 om.(0));
    Alcotest.test_case "VCO-A: waveform matches transient (fig 9)" `Slow (fun () ->
        let dae, orbit = vco_a_setup () in
        let options = Wampde.Envelope.default_options ~n1:25 () in
        let res = Wampde.Envelope.simulate dae ~options ~t2_end:60. ~h2:0.4 ~init:orbit in
        let x0 = Array.init 4 (fun i -> orbit.Steady.Oscillator.grid.(0).(i)) in
        let traj =
          Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:60.
            ~h:(1.333 /. 1000.) x0
        in
        let worst = ref 0. in
        for k = 0 to 600 do
          let t = 0.1 *. float_of_int k in
          let vw = Wampde.Envelope.eval_waveform res ~component:0 t in
          let vt = Transient.interpolate traj 0 t in
          worst := Float.max !worst (Float.abs (vw -. vt))
        done;
        (* |v| ~ 2.2 V: agreement within a few percent over 45 cycles *)
        Alcotest.(check bool) "close waveforms" true (!worst < 0.1));
    Alcotest.test_case "theta = 1 (BE) also converges, less accurately" `Quick (fun () ->
        let dae, orbit = vco_a_setup () in
        let opt_trap = Wampde.Envelope.default_options ~n1:25 () in
        let opt_be = { opt_trap with Wampde.Envelope.theta = 1. } in
        let trap = Wampde.Envelope.simulate dae ~options:opt_trap ~t2_end:10. ~h2:0.25 ~init:orbit in
        let be = Wampde.Envelope.simulate dae ~options:opt_be ~t2_end:10. ~h2:0.25 ~init:orbit in
        let last a = a.(Array.length a - 1) in
        (* both land near each other; BE is dissipative so allow 2% *)
        let rel =
          Float.abs (last be.Wampde.Envelope.omega -. last trap.Wampde.Envelope.omega)
          /. last trap.Wampde.Envelope.omega
        in
        Alcotest.(check bool) "BE close to trap" true (rel < 0.02));
    Alcotest.test_case "fd4 differentiation agrees with spectral" `Quick (fun () ->
        let dae, orbit0 = vco_a_setup () in
        ignore orbit0;
        (* need an orbit on a denser grid for FD4 accuracy *)
        let p0 = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let dae0 = Circuit.Vco.build p0 in
        let orbit =
          Steady.Oscillator.find dae0 ~n1:51 ~period_hint:1.333 (Circuit.Vco.initial_state p0)
        in
        let opt_sp = Wampde.Envelope.default_options ~n1:51 () in
        let opt_fd = { opt_sp with Wampde.Envelope.differentiation = `Fd4 } in
        let sp = Wampde.Envelope.simulate dae ~options:opt_sp ~t2_end:8. ~h2:0.25 ~init:orbit in
        let fd = Wampde.Envelope.simulate dae ~options:opt_fd ~t2_end:8. ~h2:0.25 ~init:orbit in
        let last a = a.(Array.length a - 1) in
        let rel =
          Float.abs (last fd.Wampde.Envelope.omega -. last sp.Wampde.Envelope.omega)
          /. last sp.Wampde.Envelope.omega
        in
        Alcotest.(check bool) "fd4 close" true (rel < 0.02));
    Alcotest.test_case "adaptive matches fixed step" `Quick (fun () ->
        let dae, orbit = vco_a_setup () in
        let options = Wampde.Envelope.default_options ~n1:25 () in
        let fixed = Wampde.Envelope.simulate dae ~options ~t2_end:12. ~h2:0.1 ~init:orbit in
        let adaptive =
          Wampde.Envelope.simulate_adaptive dae ~options ~t2_end:12. ~h2_init:0.5 ~tol:1e-6
            ~init:orbit ()
        in
        let last a = a.(Array.length a - 1) in
        let rel =
          Float.abs (last adaptive.Wampde.Envelope.omega -. last fixed.Wampde.Envelope.omega)
          /. last fixed.Wampde.Envelope.omega
        in
        Alcotest.(check bool) "same omega" true (rel < 1e-3));
    Alcotest.test_case "fourier phase condition gives same frequency" `Quick (fun () ->
        let dae, orbit = vco_a_setup () in
        let opt_d = Wampde.Envelope.default_options ~n1:25 () in
        let opt_f =
          Wampde.Envelope.default_options ~n1:25
            ~phase:(Wampde.Phase.Fourier { component = 0; harmonic = 1 })
            ()
        in
        let rd = Wampde.Envelope.simulate dae ~options:opt_d ~t2_end:8. ~h2:0.2 ~init:orbit in
        let rf = Wampde.Envelope.simulate dae ~options:opt_f ~t2_end:8. ~h2:0.2 ~init:orbit in
        (* the paper: different compact phase choices give local
           frequencies differing pointwise only by O(f2) (here
           f2 = 1/40 MHz), while the accumulated phase (the mean of
           omega) is phase-condition independent *)
        let f2 = 1. /. 40. in
        Array.iteri
          (fun i om_f ->
            Alcotest.(check bool) "pointwise O(f2)" true
              (Float.abs (om_f -. rd.Wampde.Envelope.omega.(i)) < 8. *. f2))
          rf.Wampde.Envelope.omega;
        let rel =
          Float.abs (Vec.mean rf.Wampde.Envelope.omega -. Vec.mean rd.Wampde.Envelope.omega)
          /. Vec.mean rd.Wampde.Envelope.omega
        in
        Alcotest.(check bool) "mean omega agrees" true (rel < 1e-3));
  ]

let quasi_tests =
  [
    Alcotest.test_case "VCO-A FM-quasiperiodic steady state" `Slow (fun () ->
        let dae, orbit = vco_a_setup () in
        let options = Wampde.Envelope.default_options ~n1:25 () in
        let env = Wampde.Envelope.simulate dae ~options ~t2_end:200. ~h2:0.5 ~init:orbit in
        let guess = Wampde.Quasiperiodic.guess_from_envelope env ~p2:40. ~n2:15 ~t_from:160. in
        let sol = Wampde.Quasiperiodic.solve dae ~options ~p2:40. ~n2:15 ~guess () in
        Alcotest.(check bool) "residual small" true
          (Wampde.Quasiperiodic.residual_norm dae ~options sol < 1e-7);
        (* omega is genuinely periodic and modulated *)
        let om = sol.Wampde.Quasiperiodic.omega in
        let omin = Array.fold_left Float.min infinity om in
        let omax = Array.fold_left Float.max neg_infinity om in
        Alcotest.(check bool) "fm present" true (omax /. omin > 1.5));
    Alcotest.test_case "quasiperiodic waveform recovery matches envelope" `Slow (fun () ->
        let dae, orbit = vco_a_setup () in
        let options = Wampde.Envelope.default_options ~n1:25 () in
        let env = Wampde.Envelope.simulate dae ~options ~t2_end:240. ~h2:0.5 ~init:orbit in
        let guess = Wampde.Quasiperiodic.guess_from_envelope env ~p2:40. ~n2:15 ~t_from:160. in
        let sol = Wampde.Quasiperiodic.solve dae ~options ~p2:40. ~n2:15 ~guess () in
        (* the recovered quasiperiodic waveform and the settled envelope's
           recovered waveform describe the same steady state: compare
           amplitude and frequency content over a slow period *)
        let times = Array.init 2001 (fun i -> 40. *. float_of_int i /. 2000.) in
        let vq = Array.map (fun t -> Wampde.Quasiperiodic.eval_waveform sol ~component:0 ~t_max:40. t) times in
        let amp = Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0. vq in
        (* the fully developed steady state peaks at ~2.5 V (the mechanical
           resonance is larger than during the first transient period) *)
        Alcotest.(check bool) "amplitude" true (amp > 2.2 && amp < 2.8);
        let crossings = Sigproc.Zero_crossing.cycle_count ~times vq in
        (* mean frequency ~0.69 MHz -> about 27-28 cycles in 40 us *)
        Alcotest.(check bool) "cycle count" true (crossings >= 25 && crossings <= 30));
    Alcotest.test_case "gmres path equals dense path" `Slow (fun () ->
        let dae, orbit = vco_a_setup () in
        let options = Wampde.Envelope.default_options ~n1:25 () in
        let env = Wampde.Envelope.simulate dae ~options ~t2_end:200. ~h2:0.5 ~init:orbit in
        let guess = Wampde.Quasiperiodic.guess_from_envelope env ~p2:40. ~n2:11 ~t_from:160. in
        let dense = Wampde.Quasiperiodic.solve dae ~options ~p2:40. ~n2:11 ~guess () in
        let gmres =
          Wampde.Quasiperiodic.solve dae ~linear_solver:`Gmres ~options ~p2:40. ~n2:11 ~guess ()
        in
        approx_tol 1e-8 "mean freq"
          (Wampde.Quasiperiodic.mean_frequency dense)
          (Wampde.Quasiperiodic.mean_frequency gmres);
        let krylov =
          Wampde.Quasiperiodic.solve dae ~linear_solver:`Krylov ~options ~p2:40. ~n2:11 ~guess ()
        in
        approx_tol 1e-8 "mean freq (matrix-free)"
          (Wampde.Quasiperiodic.mean_frequency dense)
          (Wampde.Quasiperiodic.mean_frequency krylov));
  ]

let special_case_tests =
  [
    Alcotest.test_case "eq (24) special cases: constant omega0 = w2 is periodic" `Quick
      (fun () ->
        (* mode locking / period multiplication as representational special
           cases of the WaMPDE solution form (paper Section 4.1): build
           x(t) from eq. (24) with omega(t) == omega0 and check periodicity *)
        let w2 = 3. in
        let x_of_t ~w0 t = cos ((two_pi *. w0 *. t) +. 0.3) *. (1. +. (0.5 *. cos (two_pi *. w2 *. t))) in
        (* omega0 = w2: response periodic with the forcing period 1/w2 *)
        let locked t = x_of_t ~w0:w2 t in
        approx_tol 1e-9 "entrained" (locked 0.123) (locked (0.123 +. (1. /. w2)));
        (* omega0 = w2 / 2: period-2 multiplication *)
        let divided t = x_of_t ~w0:(w2 /. 2.) t in
        approx_tol 1e-9 "period doubled" (divided 0.04) (divided (0.04 +. (2. /. w2)));
        Alcotest.(check bool) "not 1-periodic" true
          (Float.abs (divided 0.04 -. divided (0.04 +. (1. /. w2))) > 1e-3));
  ]

let suites =
  [
    ("wampde.phase", phase_tests);
    ("wampde.envelope", envelope_tests);
    ("wampde.quasiperiodic", quasi_tests);
    ("wampde.special_cases", special_case_tests);
  ]
