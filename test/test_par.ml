(* Tests for the domain pool (Par.Pool) and the determinism contract
   of the parallel kernels: FD Jacobian columns, preconditioner
   factor/apply, batched pair FFTs.  "Bitwise identical for every job
   count" is checked with structural equality on float arrays — exact,
   not within a tolerance. *)
open Linalg

module Pool = Par.Pool
module Obs = Wampde_obs

(* Restore the ambient job count (WAMPDE_JOBS in CI) after each test
   that reconfigures the pool. *)
let ambient_jobs = Pool.jobs ()

let with_jobs j f =
  Pool.set_jobs j;
  Fun.protect ~finally:(fun () -> Pool.set_jobs ambient_jobs) f

exception Boom of int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let pool_tests =
  [
    Alcotest.test_case "parallel_for covers every index exactly once" `Quick (fun () ->
        List.iter
          (fun jobs ->
            List.iter
              (fun n ->
                let hits = Array.make n 0 in
                Pool.parallel_for ~jobs n (fun i -> hits.(i) <- hits.(i) + 1);
                Alcotest.(check (array int))
                  (Printf.sprintf "n=%d jobs=%d" n jobs)
                  (Array.make n 1) hits)
              [ 1; 2; 3; 7; 100; 1001 ])
          [ 1; 2; 3; 8 ]);
    Alcotest.test_case "parallel_chunks partitions [0, n) contiguously" `Quick (fun () ->
        let n = 103 in
        let owner = Array.make n (-1) in
        Pool.parallel_chunks ~jobs:4 n (fun ~worker ~lo ~hi ->
            for i = lo to hi - 1 do
              owner.(i) <- worker
            done);
        Array.iteri (fun i w -> Alcotest.(check bool) (Printf.sprintf "covered %d" i) true (w >= 0)) owner;
        (* fixed assignment: chunk boundaries are c*n/k *)
        for i = 0 to n - 2 do
          Alcotest.(check bool) "monotone chunks" true (owner.(i) <= owner.(i + 1))
        done);
    Alcotest.test_case "chunk_count clamps to n and jobs" `Quick (fun () ->
        Alcotest.(check int) "jobs cap" 3 (Pool.chunk_count ~jobs:3 100);
        Alcotest.(check int) "n cap" 2 (Pool.chunk_count ~jobs:8 2);
        Alcotest.(check int) "at least one" 1 (Pool.chunk_count ~jobs:0 5));
    Alcotest.test_case "set_jobs clamps below one" `Quick (fun () ->
        with_jobs 1 (fun () ->
            Pool.set_jobs (-3);
            Alcotest.(check int) "clamped" 1 (Pool.jobs ())));
    Alcotest.test_case "typed error propagates out of a pool task, pool survives" `Quick
      (fun () ->
        (* the exception of the lowest-indexed raising chunk surfaces
           after the barrier; the workers keep serving afterwards *)
        let raised =
          try
            Pool.parallel_for ~jobs:4 100 (fun i -> if i >= 37 then raise (Boom i));
            None
          with Boom i -> Some i
        in
        (* chunk boundaries for n=100, k=4 are 0,25,50,75: the lowest
           raising chunk is chunk 1, whose first raising index is 37 *)
        Alcotest.(check (option int)) "typed error surfaced" (Some 37) raised;
        (* no wedged workers: the next region completes normally *)
        let hits = Array.make 1000 0 in
        Pool.parallel_for ~jobs:4 1000 (fun i -> hits.(i) <- 1);
        Alcotest.(check int) "pool alive" 1000 (Array.fold_left ( + ) 0 hits));
    Alcotest.test_case "singular preconditioner block raises through the pool" `Quick (fun () ->
        with_jobs 4 (fun () ->
            let cbar = Mat.identity 3 in
            let bbar = Mat.zeros 3 3 in
            (* coeff 0 makes M_0 = 0 * I + 0 singular *)
            let coeffs = Array.init 8 (fun l -> Cx.cx (float_of_int l) 0.) in
            match Structured.spectral_blocks ~coeffs ~cbar ~bbar with
            | _ -> Alcotest.fail "expected Singular"
            | exception Cx.Clu.Singular _ -> ()));
    Alcotest.test_case "pool metrics accumulate on parallel regions" `Quick (fun () ->
        Obs.Metrics.with_isolated (fun () ->
            Obs.set_enabled true;
            let runs0 = Obs.Metrics.count (Obs.Metrics.counter "pool.runs") in
            Pool.parallel_for ~jobs:4 64 (fun _ -> ());
            let runs1 = Obs.Metrics.count (Obs.Metrics.counter "pool.runs") in
            Alcotest.(check int) "one region" 1 (runs1 - runs0);
            Alcotest.(check (float 0.))
              "effective jobs" 4.
              (Obs.Metrics.value (Obs.Metrics.gauge "pool.effective_jobs"))));
  ]

(* ---------- determinism: bitwise identity across job counts ---------- *)

let det_tests =
  let open QCheck in
  let jobs_gen = Gen.int_range 1 8 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"parallel FD Jacobian is bitwise identical to serial" ~count:40
         (make Gen.(pair (int_range 1 24) jobs_gen))
         (fun (n, jobs) ->
           let f x =
             Array.init (n + 1) (fun i ->
                 let s = ref (float_of_int i) in
                 for j = 0 to n - 1 do
                   s := !s +. (sin (x.(j) +. float_of_int (i * j)) *. (1. +. (x.(j) *. x.(j))))
                 done;
                 !s)
           in
           let x = Array.init n (fun i -> cos (float_of_int (3 * i))) in
           let serial = Nonlin.Fdjac.jacobian f x in
           let central_serial = Nonlin.Fdjac.jacobian_central f x in
           with_jobs jobs (fun () ->
               let par = Nonlin.Fdjac.jacobian ~parallel:true f x in
               let central_par = Nonlin.Fdjac.jacobian_central ~parallel:true f x in
               par = serial && central_par = central_serial)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"parallel precond factor+apply is bitwise identical to serial" ~count:20
         (make Gen.(triple (int_range 1 11) (int_range 1 5) jobs_gen))
         (fun (k1, n, jobs) ->
           let n1 = (2 * k1) + 1 in
           (* random-ish diagonally dominant linear DAE blocks *)
           let mk seed =
             Array.init n1 (fun k ->
                 Mat.init n n (fun i j ->
                     (if i = j then 5. else 0.)
                     +. sin (float_of_int ((seed * 31) + (k * 7) + (i * 3) + j))))
           in
           let cs = mk 1 and bs = mk 2 in
           let d = Fourier.Series.diff_matrix n1 in
           let op = Structured.make_op ~alpha:0.7 ~d ~c_blocks:cs ~b_blocks:bs in
           let v = Array.init (n1 * n) (fun i -> cos (0.1 *. float_of_int i)) in
           let serial =
             with_jobs 1 (fun () ->
                 let pc = Structured.make_precond ~dft:Fourier.Fft.structured_dft op in
                 (Structured.precond_apply pc v, Structured.apply op v))
           in
           let par =
             with_jobs jobs (fun () ->
                 let pc = Structured.make_precond ~dft:Fourier.Fft.structured_dft op in
                 (Structured.precond_apply pc v, Structured.apply op v))
           in
           par = serial));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"batched pair FFTs are bitwise identical to boxed serial ffts" ~count:40
         (make Gen.(triple (int_range 2 48) (int_range 1 16) jobs_gen))
         (fun (size, batch, jobs) ->
           let mk b k = sin (float_of_int ((b * 131) + k)) in
           let boxed =
             Array.init batch (fun b ->
                 Fourier.Fft.fft (Cx.Cvec.init size (fun k -> Cx.cx (mk b k) (mk (b + 77) k))))
           in
           let res = Array.init batch (fun b -> Array.init size (mk b)) in
           let ims = Array.init batch (fun b -> Array.init size (mk (b + 77))) in
           Pool.parallel_for ~jobs batch (fun b ->
               Fourier.Fft.fft_pair_inplace res.(b) ims.(b));
           let ok = ref true in
           Array.iteri
             (fun b z ->
               Array.iteri
                 (fun k c ->
                   if not (Cx.re c = res.(b).(k) && Cx.im c = ims.(b).(k)) then ok := false)
                 z)
             boxed;
           !ok));
  ]

let alloc_tests =
  [
    Alcotest.test_case "precond apply reuses hoisted scratch (no alloc growth)" `Quick
      (fun () ->
        let n1 = 41 and n = 4 in
        let d = Fourier.Series.diff_matrix n1 in
        let c = Mat.identity n in
        let b = Mat.init n n (fun i j -> if i = j then 4. else 0.5) in
        let op =
          Structured.make_op ~alpha:0.8 ~d ~c_blocks:(Array.make n1 c)
            ~b_blocks:(Array.make n1 b)
        in
        let pc = Structured.make_precond ~dft:Fourier.Fft.structured_dft op in
        let v = Array.init (n1 * n) (fun i -> sin (0.01 *. float_of_int i)) in
        let words f =
          let w0 = Gc.minor_words () in
          ignore (f ());
          Gc.minor_words () -. w0
        in
        (* first apply warms per-worker workspaces and FFT scratch;
           steady-state applies must not allocate more than the warm-up *)
        let first = words (fun () -> Structured.precond_apply pc v) in
        let second = words (fun () -> Structured.precond_apply pc v) in
        let third = words (fun () -> Structured.precond_apply pc v) in
        Alcotest.(check bool)
          (Printf.sprintf "steady-state alloc (%.0f, %.0f after %.0f warm-up)" second third
             first)
          true
          (second <= first && third <= second +. 1024.));
  ]

(* ---------- Bluestein plan cache under concurrent first use ---------- *)

let cache_tests =
  [
    Alcotest.test_case "plan cache survives concurrent first use" `Quick (fun () ->
        (* several odd sizes, first touched simultaneously from 8
           domains: the mutex-guarded double-checked insert must
           publish exactly one usable plan per size *)
        let sizes = [| 83; 89; 97; 101; 103; 107; 109; 113 |] in
        let tasks = 64 in
        let results = Array.make tasks [||] in
        Pool.parallel_for ~jobs:8 tasks (fun t ->
            let n = sizes.(t mod Array.length sizes) in
            let x = Cx.Cvec.init n (fun k -> Cx.cx (cos (0.3 *. float_of_int (k + t))) 0.) in
            results.(t) <- Fourier.Fft.fft x);
        (* serial recomputation (plans now warm) must agree bitwise *)
        Array.iteri
          (fun t r ->
            let n = sizes.(t mod Array.length sizes) in
            let x = Cx.Cvec.init n (fun k -> Cx.cx (cos (0.3 *. float_of_int (k + t))) 0.) in
            let s = Fourier.Fft.fft x in
            Array.iteri
              (fun k c ->
                Alcotest.(check bool)
                  (Printf.sprintf "task %d bin %d" t k)
                  true
                  (Cx.re c = Cx.re r.(k) && Cx.im c = Cx.im r.(k)))
              s)
          results);
  ]

(* ---------- manifest + doctor integration ---------- *)

let obs_tests =
  [
    Alcotest.test_case "manifest records jobs and validates" `Quick (fun () ->
        Obs.Metrics.with_isolated (fun () ->
            let m = Obs.Report.manifest ~jobs:4 ~wall_s:0.5 ~steps:[] () in
            Alcotest.(check bool) "jobs field" true (contains m "\"jobs\":4");
            (match Obs.Report.check m with
            | Ok () -> ()
            | Error e -> Alcotest.fail e)));
    Alcotest.test_case "doctor flags poor parallel efficiency" `Quick (fun () ->
        Obs.Metrics.with_isolated (fun () ->
            Obs.set_enabled true;
            Obs.Metrics.set (Obs.Metrics.gauge "pool.busy_s") 1.;
            Obs.Metrics.set (Obs.Metrics.gauge "pool.idle_s") 3.;
            let m = Obs.Report.manifest ~jobs:8 ~wall_s:1. ~steps:[] () in
            match Obs.Doctor.diagnose_string m with
            | Error e -> Alcotest.fail e
            | Ok findings ->
              let f =
                List.find_opt (fun f -> f.Obs.Doctor.category = "parallelism") findings
              in
              (match f with
              | Some f ->
                Alcotest.(check bool) "warn" true (f.Obs.Doctor.severity = Obs.Doctor.Warn);
                Alcotest.(check bool) "suggests lower jobs" true
                  (match f.Obs.Doctor.suggestion with
                  | Some s -> contains s "jobs"
                  | None -> false)
              | None -> Alcotest.fail "no parallelism finding")));
    Alcotest.test_case "doctor stays quiet on healthy parallel runs" `Quick (fun () ->
        Obs.Metrics.with_isolated (fun () ->
            Obs.set_enabled true;
            Obs.Metrics.set (Obs.Metrics.gauge "pool.busy_s") 3.8;
            Obs.Metrics.set (Obs.Metrics.gauge "pool.idle_s") 0.2;
            let m = Obs.Report.manifest ~jobs:4 ~wall_s:1. ~steps:[] () in
            match Obs.Doctor.diagnose_string m with
            | Error e -> Alcotest.fail e
            | Ok findings ->
              let f =
                List.find_opt (fun f -> f.Obs.Doctor.category = "parallelism") findings
              in
              (match f with
              | Some f ->
                Alcotest.(check bool) "info" true (f.Obs.Doctor.severity = Obs.Doctor.Info)
              | None -> Alcotest.fail "no parallelism finding")));
    Alcotest.test_case "jobs-2 trace tags pool chunks with per-worker tracks" `Quick (fun () ->
        Obs.Metrics.with_isolated (fun () ->
            with_jobs 2 (fun () ->
                Obs.set_enabled true;
                Obs.Span.start_recording ();
                let acc = Array.make 64 0. in
                Pool.parallel_for 64 (fun i -> acc.(i) <- sqrt (float_of_int (i + 1)));
                let spans = Obs.Span.stop_recording () in
                let chunks =
                  List.filter (fun (s : Obs.Span.record) -> s.name = "pool.chunk") spans
                in
                Alcotest.(check bool) "pool.chunk spans recorded" true (chunks <> []);
                let tids =
                  List.sort_uniq compare
                    (List.map (fun (s : Obs.Span.record) -> s.tid) chunks)
                in
                Alcotest.(check bool)
                  (Printf.sprintf "chunks land on >= 2 worker tracks (got %d)"
                     (List.length tids))
                  true
                  (List.length tids >= 2);
                List.iter
                  (fun t -> Alcotest.(check bool) "worker track ids start at 1" true (t >= 1))
                  tids;
                let trace = Obs.Trace_event.to_string ~spans ~instants:[] () in
                match Obs.Json.parse_exn trace with
                | Obs.Json.Arr evs ->
                  let str k e = Option.bind (Obs.Json.member k e) Obs.Json.to_str in
                  let thread_names =
                    List.filter (fun e -> str "name" e = Some "thread_name") evs
                  in
                  Alcotest.(check bool) "one thread_name metadata per track" true
                    (List.length thread_names >= List.length tids);
                  let count ph = List.length (List.filter (fun e -> str "ph" e = Some ph) evs) in
                  Alcotest.(check int) "B/E events balance" (count "B") (count "E")
                | _ -> Alcotest.fail "trace is not a JSON array")));
  ]

let suites =
  [
    ("par.pool", pool_tests);
    ("par.determinism", det_tests);
    ("par.alloc", alloc_tests);
    ("par.plan_cache", cache_tests);
    ("par.obs", obs_tests);
  ]
