(* Tests for the globalization cascade: trust-region Newton, PTC, and
   the Polyalg escalation machinery — including the acceptance case of
   a strong-modulation quasiperiodic solve that plain damped Newton
   fails on and the cascade cracks. *)

module Obs = Wampde_obs

let two_pi = 2. *. Float.pi

(* Every test runs against a zeroed registry with telemetry enabled so
   strategy counters can be asserted without cross-test leakage, and
   under an empty fault schedule so a CI-level WAMPDE_FAULTS sweep
   cannot perturb the exact counter assertions. *)
let with_counters f () =
  Fault.with_armed "" (fun () ->
      Obs.Metrics.with_isolated (fun () ->
          Obs.set_enabled true;
          f ()))

let count name = Obs.Metrics.count (Obs.Metrics.counter name)

(* Powell badly-scaled-flavoured system: tight curved valley in the
   merit function, a classic trust-region benchmark. *)
let powell_residual x =
  [| (1e4 *. x.(0) *. x.(1)) -. 1.; exp (-.x.(0)) +. exp (-.x.(1)) -. 1.0001 |]

let rosenbrock_residual x = [| 10. *. (x.(1) -. (x.(0) *. x.(0))); 1. -. x.(0) |]

let check_root what residual (x : Linalg.Vec.t) =
  let r = residual x in
  Array.iteri
    (fun i ri ->
      Alcotest.(check bool)
        (Printf.sprintf "%s residual.(%d)" what i)
        true
        (Float.abs ri < 1e-6))
    r

let globalize_tests =
  [
    Alcotest.test_case "trust region solves Rosenbrock from a far start" `Quick
      (with_counters (fun () ->
           let report = Nonlin.Trust_region.solve ~residual:rosenbrock_residual [| -3.; 8. |] in
           Alcotest.(check bool) "converged" true report.Nonlin.Newton.converged;
           check_root "rosenbrock" rosenbrock_residual report.Nonlin.Newton.x;
           Alcotest.(check bool) "counted" true (count "trust_region.solves" >= 1)));
    Alcotest.test_case "trust region solves Powell's badly scaled system" `Quick
      (with_counters (fun () ->
           let report = Nonlin.Trust_region.solve ~residual:powell_residual [| 0.; 1. |] in
           Alcotest.(check bool) "converged" true report.Nonlin.Newton.converged;
           check_root "powell" powell_residual report.Nonlin.Newton.x));
    Alcotest.test_case "ptc solves a stiff sinh system from zero" `Quick
      (with_counters (fun () ->
           (* sinh cliff: full Newton from 0 overshoots catastrophically *)
           let residual x =
             Array.init 3 (fun i -> sinh (5. *. (x.(i) -. 1.)) +. (0.1 *. x.(i)))
           in
           let report = Nonlin.Ptc.solve ~residual [| 0.; 0.; 0. |] in
           Alcotest.(check bool) "converged" true report.Nonlin.Newton.converged;
           check_root "sinh" residual report.Nonlin.Newton.x;
           Alcotest.(check bool) "counted" true (count "ptc.solves" >= 1)));
    Alcotest.test_case "cascade stops at damped Newton on an easy system" `Quick
      (with_counters (fun () ->
           let residual x = [| (x.(0) *. x.(0)) -. 4. |] in
           let outcome = Nonlin.Polyalg.solve ~residual [| 1. |] in
           Alcotest.(check bool) "converged" true
             outcome.Nonlin.Polyalg.report.Nonlin.Newton.converged;
           Alcotest.(check bool) "damped won" true
             (outcome.Nonlin.Polyalg.strategy = Nonlin.Polyalg.Damped);
           Alcotest.(check int) "one attempt" 1
             (List.length outcome.Nonlin.Polyalg.attempts);
           Alcotest.(check int) "damped counter" 1 (count "newton.strategy.damped");
           Alcotest.(check int) "no escalation" 0 (count "newton.strategy.escalations")));
    Alcotest.test_case "injected linear-solve fault escalates past damped Newton" `Quick
      (with_counters (fun () ->
           Fault.with_armed "linsolve@1" (fun () ->
               let residual x = [| (x.(0) *. x.(0)) -. 4. |] in
               let outcome = Nonlin.Polyalg.solve ~residual [| 1. |] in
               Alcotest.(check bool) "converged" true
                 outcome.Nonlin.Polyalg.report.Nonlin.Newton.converged;
               Alcotest.(check bool) "escalated" true
                 (outcome.Nonlin.Polyalg.strategy <> Nonlin.Polyalg.Damped);
               Alcotest.(check bool) "at least two attempts" true
                 (List.length outcome.Nonlin.Polyalg.attempts >= 2);
               Alcotest.(check bool) "escalations counted" true
                 (count "newton.strategy.escalations" >= 1);
               Alcotest.(check int) "fault fired once" 1 (Fault.injected Fault.Linear_solve))));
    Alcotest.test_case "solve_exn raises Non_finite on a NaN residual" `Quick
      (with_counters (fun () ->
           let residual _ = [| Float.nan |] in
           Alcotest.(check bool) "typed" true
             (try
                ignore (Nonlin.Polyalg.solve_exn ~label:"nan_case" ~residual [| 1. |]);
                false
              with Nonlin.Polyalg.Non_finite { label = "nan_case"; _ } -> true)));
    Alcotest.test_case "solve_exn raises Solve_failed with every attempt" `Quick
      (with_counters (fun () ->
           (* no real root: x^2 + 1 = 0 defeats every strategy *)
           let residual x = [| (x.(0) *. x.(0)) +. 1. |] in
           Alcotest.(check bool) "typed" true
             (try
                ignore (Nonlin.Polyalg.solve_exn ~residual [| 1. |]);
                false
              with Nonlin.Polyalg.Solve_failed { attempts; _ } ->
                List.length attempts = List.length Nonlin.Polyalg.default_cascade);
           Alcotest.(check int) "failure counted" 1 (count "newton.strategy.failed")));
    Alcotest.test_case "homotopy stage cracks a fold that cold Newton misses" `Quick
      (with_counters (fun () ->
           (* exp cliff so steep that damped Newton, dogleg and PTC all
              stall from x0 = 0; the Newton homotopy ramps the forcing
              in and tracks the branch to the root. *)
           let residual x = [| exp (50. *. x.(0)) -. 1. +. (50. *. x.(0)) -. 5. |] in
           let outcome =
             Nonlin.Polyalg.solve ~cascade:[ Nonlin.Polyalg.Homotopy ] ~residual [| -1. |]
           in
           Alcotest.(check bool) "converged" true
             outcome.Nonlin.Polyalg.report.Nonlin.Newton.converged;
           check_root "fold" residual outcome.Nonlin.Polyalg.report.Nonlin.Newton.x;
           Alcotest.(check int) "homotopy counter" 1 (count "newton.strategy.homotopy")));
  ]

(* The acceptance case from the paper's hard regime: a strongly
   nonlinear (sinh-limited) one-pole system under deep fast-tone
   amplitude modulation.  From the cold (zero) biperiodic guess, plain
   damped Newton lands on the sinh cliff and its line search stalls;
   the cascade escalates and trust region solves it. *)
let hard_quasiperiodic_system () =
  let beta = 500. and amp = 500. in
  let p1 = 1. and p2 = 20. in
  let dae =
    Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -.(sinh (beta *. x.(0))) /. beta |]) ()
  in
  let a t2 = amp *. (1. +. (0.9 *. sin (two_pi *. t2 /. p2))) in
  let sys =
    { Mpde.dae; p1; b_fast = (fun ~t1 ~t2 -> [| -.(a t2) *. sin (two_pi *. t1 /. p1) |]) }
  in
  (sys, p2)

let acceptance_tests =
  [
    Alcotest.test_case "strong-modulation quasiperiodic: damped fails, cascade wins" `Slow
      (with_counters (fun () ->
           let sys, p2 = hard_quasiperiodic_system () in
           let n1 = 11 and n2 = 11 in
           let guess = Array.init n2 (fun _ -> Array.init n1 (fun _ -> [| 0. |])) in
           (* plain damped Newton: typed failure carrying the report *)
           Alcotest.(check bool) "damped alone fails" true
             (try
                ignore
                  (Mpde.quasiperiodic ~cascade:[ Nonlin.Polyalg.Damped ] sys ~n1 ~n2 ~p2
                     ~guess);
                false
              with Mpde.Solve_failure { stage = "Mpde.quasiperiodic"; report } ->
                not report.Nonlin.Newton.converged);
           Alcotest.(check int) "damped failure counted" 1 (count "newton.strategy.failed");
           (* full cascade: converges, and the strategy counters name
              the winner (trust region for this regime) *)
           let res = Mpde.quasiperiodic sys ~n1 ~n2 ~p2 ~guess in
           Alcotest.(check bool) "escalation recorded" true
             (count "newton.strategy.escalations" >= 1);
           Alcotest.(check int) "trust region won" 1 (count "newton.strategy.trust_region");
           Array.iter
             (Array.iter
                (Array.iter (fun x ->
                     Alcotest.(check bool) "finite solution" true (Float.is_finite x))))
             res.Mpde.slices));
  ]

let suites =
  [ ("globalize", globalize_tests); ("globalize_acceptance", acceptance_tests) ]
