(* Live-telemetry tests: the ETA estimator's finiteness guarantee,
   health-monitor threshold edge semantics (strictly-greater,
   edge-triggered), the NDJSON stream contract (well-formed lines,
   terminal record, bounded buffer, idempotent finish), Prometheus
   exposition, the doctor diagnosis, and the zero-span Perfetto
   regression. *)
module Obs = Wampde_obs
open Linalg
open Fourier

let two_pi = 2. *. Float.pi

(* Every test runs against a zeroed registry with default thresholds
   restored on exit, so monitor state cannot leak across tests. *)
let with_clean f () =
  Obs.Metrics.with_isolated (fun () ->
      Fun.protect
        ~finally:(fun () ->
          Obs.Health.set_thresholds Obs.Health.default_thresholds;
          Obs.set_enabled false)
        (fun () ->
          Obs.set_enabled false;
          Obs.Health.set_thresholds Obs.Health.default_thresholds;
          f ()))

let check_ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

let warnings_for monitor = Obs.Metrics.count (Obs.Metrics.counter ("health.warnings." ^ monitor))

(* a tiny VCO-A envelope run shared by the end-to-end tests *)
let small_envelope_run () =
  let p0 = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
  let orbit =
    Steady.Oscillator.find (Circuit.Vco.build p0) ~n1:15 ~period_hint:1.333
      (Circuit.Vco.initial_state p0)
  in
  let dae = Circuit.Vco.build (Circuit.Vco.vco_a ()) in
  let options = Wampde.Envelope.default_options ~n1:15 () in
  Wampde.Envelope.simulate dae ~options ~t2_end:2. ~h2:0.5 ~init:orbit

let eta_tests =
  [
    Alcotest.test_case "steady progress gives the obvious ETA" `Quick (fun () ->
        let e = Obs.Eta.create ~alpha:1.0 ~total:10. () in
        Obs.Eta.update e ~now:0. ~completed:0.;
        Obs.Eta.update e ~now:1. ~completed:1.;
        Alcotest.(check (float 1e-9)) "rate" 1. (Obs.Eta.rate e);
        Alcotest.(check (float 1e-9)) "eta" 9. (Obs.Eta.eta_s e);
        Alcotest.(check (float 1e-9)) "fraction" 0.1 (Obs.Eta.fraction e);
        Obs.Eta.update e ~now:2. ~completed:10.;
        Alcotest.(check (float 1e-9)) "complete" 0. (Obs.Eta.eta_s e);
        Alcotest.(check (float 1e-9)) "full fraction" 1. (Obs.Eta.fraction e));
    Alcotest.test_case "no rate yet means infinite ETA, not a guess" `Quick (fun () ->
        let e = Obs.Eta.create ~total:5. () in
        Alcotest.(check (float 0.)) "before any update" infinity (Obs.Eta.eta_s e);
        Obs.Eta.update e ~now:3. ~completed:0.;
        Alcotest.(check (float 0.)) "no progress yet" infinity (Obs.Eta.eta_s e));
    Alcotest.test_case "stalls degrade the estimate pessimistically" `Quick (fun () ->
        let e = Obs.Eta.create ~alpha:1.0 ~total:100. () in
        Obs.Eta.update e ~now:0. ~completed:0.;
        Obs.Eta.update e ~now:1. ~completed:10.;
        let before = Obs.Eta.eta_s e in
        (* a long stall, then one unit of progress: the stalled span is
           charged to the new rate sample *)
        Obs.Eta.update e ~now:11. ~completed:10.;
        Obs.Eta.update e ~now:12. ~completed:11.;
        let after = Obs.Eta.eta_s e in
        Alcotest.(check bool) "stall lengthens ETA" true (after > before);
        Alcotest.(check bool) "still finite" true (Float.is_finite after));
    Alcotest.test_case "backwards progress and overshoot are clamped" `Quick (fun () ->
        let e = Obs.Eta.create ~total:10. () in
        Obs.Eta.update e ~now:0. ~completed:4.;
        Obs.Eta.update e ~now:1. ~completed:2.;
        Alcotest.(check (float 1e-9)) "non-decreasing" 4. (Obs.Eta.completed e);
        Obs.Eta.update e ~now:2. ~completed:25.;
        Alcotest.(check (float 1e-9)) "clamped to total" 10. (Obs.Eta.completed e));
    Alcotest.test_case "invalid construction is rejected" `Quick (fun () ->
        let bad f = Alcotest.(check bool) "raises" true (try ignore (f ()); false with Invalid_argument _ -> true) in
        bad (fun () -> Obs.Eta.create ~total:0. ());
        bad (fun () -> Obs.Eta.create ~total:nan ());
        bad (fun () -> Obs.Eta.create ~alpha:0. ~total:1. ());
        bad (fun () -> Obs.Eta.create ~alpha:1.5 ~total:1. ()));
  ]

let eta_prop_tests =
  let open QCheck in
  (* (dt, dc) step sequences: non-negative dt, non-negative dc *)
  let step_gen = Gen.pair (Gen.float_bound_inclusive 3.) (Gen.float_bound_inclusive 5.) in
  let seq_gen = Gen.list_size (Gen.int_range 1 40) step_gen in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"monotone progress gives finite non-negative ETA" ~count:200
         (make seq_gen) (fun steps ->
           let e = Obs.Eta.create ~total:1000. () in
           let now = ref 0. and done_ = ref 0. in
           Obs.Eta.update e ~now:!now ~completed:!done_;
           let progressed = ref false in
           List.iter
             (fun (dt, dc) ->
               if dt > 0. && dc > 0. then progressed := true;
               now := !now +. dt;
               done_ := Float.min 1000. (!done_ +. dc);
               Obs.Eta.update e ~now:!now ~completed:!done_)
             steps;
           (not !progressed)
           || (Obs.Eta.eta_s e >= 0. && Float.is_finite (Obs.Eta.eta_s e))));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"fraction stays in the unit interval" ~count:100 (make seq_gen)
         (fun steps ->
           let e = Obs.Eta.create ~total:7. () in
           let now = ref 0. and done_ = ref 0. in
           List.for_all
             (fun (dt, dc) ->
               now := !now +. dt;
               done_ := !done_ +. dc;
               Obs.Eta.update e ~now:!now ~completed:!done_;
               let f = Obs.Eta.fraction e in
               f >= 0. && f <= 1.)
             steps));
  ]

let health_tests =
  [
    Alcotest.test_case "warning fires strictly above threshold, not at it" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           let tol = (Obs.Health.thresholds ()).Obs.Health.tail_tol in
           let fired = ref [] in
           let sub =
             Obs.Events.subscribe (function
               | Obs.Events.Health_warning { monitor; value; threshold; _ } ->
                 fired := (monitor, value, threshold) :: !fired
               | _ -> ())
           in
           Fun.protect ~finally:(fun () -> Obs.Events.unsubscribe sub) @@ fun () ->
           (* exactly at the threshold: silent *)
           Obs.Health.note_spectrum ~tail:tol ~needed:3 ~available:7 ();
           Alcotest.(check int) "at threshold" 0 (warnings_for "t1_tail_energy");
           (* strictly above: fires once *)
           Obs.Health.note_spectrum ~tail:(tol *. 1.001) ~needed:3 ~available:7 ();
           Alcotest.(check int) "above threshold" 1 (warnings_for "t1_tail_energy");
           (* still above: edge-triggered, stays silent *)
           Obs.Health.note_spectrum ~tail:(tol *. 10.) ~needed:3 ~available:7 ();
           Alcotest.(check int) "still above" 1 (warnings_for "t1_tail_energy");
           (* back to the threshold (not above), then above: fires again *)
           Obs.Health.note_spectrum ~tail:tol ~needed:3 ~available:7 ();
           Obs.Health.note_spectrum ~tail:(tol *. 2.) ~needed:3 ~available:7 ();
           Alcotest.(check int) "re-crossing" 2 (warnings_for "t1_tail_energy");
           Alcotest.(check int) "total counter" 2
             (Obs.Metrics.count (Obs.Metrics.counter "health.warnings"));
           match !fired with
           | (monitor, value, threshold) :: _ ->
             Alcotest.(check string) "monitor name" "t1_tail_energy" monitor;
             Alcotest.(check (float 0.)) "threshold carried" tol threshold;
             Alcotest.(check bool) "value above" true (value > threshold)
           | [] -> Alcotest.fail "no event payload captured"));
    Alcotest.test_case "over-resolution monitor flags wasteful grids" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           (* 2 of 20 harmonics used: slack 0.9 > 0.75 *)
           Obs.Health.note_spectrum ~tail:0. ~needed:2 ~available:20 ();
           Alcotest.(check int) "over-resolved" 1 (warnings_for "t1_over_resolution");
           Alcotest.(check (float 1e-9)) "gauge" 2.
             (Obs.Metrics.value (Obs.Metrics.gauge "health.effective_harmonics"))));
    Alcotest.test_case "rejection window fires at the documented boundary" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           Obs.Health.set_thresholds
             { Obs.Health.default_thresholds with
               Obs.Health.rejection_rate = 0.5;
               rejection_window = 4;
             };
           (* fill the window with accepts: rate 0 *)
           for _ = 1 to 4 do
             Obs.Health.note_decision ~outcome:`Accept ()
           done;
           Obs.Health.note_decision ~outcome:`Reject ();
           Obs.Health.note_decision ~outcome:`Reject ();
           (* window now [A; A; R; R]: rate 0.5 == threshold, silent *)
           Alcotest.(check int) "at boundary" 0 (warnings_for "rejection_rate");
           Obs.Health.note_decision ~outcome:`Retry ();
           (* [A; R; R; T]: 0.75 > 0.5, fires *)
           Alcotest.(check int) "above boundary" 1 (warnings_for "rejection_rate");
           Obs.Health.note_decision ~outcome:`Reject ();
           Alcotest.(check int) "edge-triggered" 1 (warnings_for "rejection_rate")));
    Alcotest.test_case "partial window never warns" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           Obs.Health.set_thresholds
             { Obs.Health.default_thresholds with
               Obs.Health.rejection_rate = 0.1;
               rejection_window = 8;
             };
           for _ = 1 to 7 do
             Obs.Health.note_decision ~outcome:`Reject ()
           done;
           Alcotest.(check int) "window not yet full" 0 (warnings_for "rejection_rate")));
    Alcotest.test_case "transient-scope decisions are not macro-step health" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           Obs.Health.set_thresholds
             { Obs.Health.default_thresholds with
               Obs.Health.rejection_rate = 0.1;
               rejection_window = 2;
             };
           Obs.Scope.with_scope "transient" (fun () ->
               for _ = 1 to 20 do
                 Obs.Health.note_decision ~outcome:`Reject ()
               done);
           Alcotest.(check int) "micro steps ignored" 0 (warnings_for "rejection_rate");
           Alcotest.(check (float 0.)) "gauge untouched" 0.
             (Obs.Metrics.value (Obs.Metrics.gauge "health.rejection_rate"))));
    Alcotest.test_case "failed GMRES solve always counts as stagnation" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           Obs.Health.note_gmres ~iterations:3 ~restart:30 ~converged:false ~reduction:nan ();
           Alcotest.(check int) "failure warns" 1 (warnings_for "gmres_stagnation");
           (* a healthy solve afterwards re-arms the edge *)
           Obs.Health.note_gmres ~iterations:3 ~restart:30 ~converged:true ~reduction:0.1 ();
           Obs.Health.note_gmres ~iterations:3 ~restart:30 ~converged:false ~reduction:nan ();
           Alcotest.(check int) "re-fires" 2 (warnings_for "gmres_stagnation")));
    Alcotest.test_case "GMRES plateau needs enough iterations" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           (* slow reduction but too few iterations: silent *)
           Obs.Health.note_gmres ~iterations:3 ~restart:30 ~converged:true ~reduction:0.99 ();
           Alcotest.(check int) "short solve" 0 (warnings_for "gmres_plateau");
           Obs.Health.note_gmres ~iterations:12 ~restart:30 ~converged:true ~reduction:0.99 ();
           Alcotest.(check int) "long plateau" 1 (warnings_for "gmres_plateau")));
    Alcotest.test_case "Newton single-iteration rates never warn" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           Obs.Health.note_newton ~iterations:1 ~rate:0.999 ();
           Alcotest.(check int) "one iteration" 0 (warnings_for "newton_rate");
           Alcotest.(check (float 1e-9)) "gauge still updated" 0.999
             (Obs.Metrics.value (Obs.Metrics.gauge "health.newton_rate"));
           Obs.Health.note_newton ~iterations:5 ~rate:0.999 ();
           Alcotest.(check int) "slow convergence warns" 1 (warnings_for "newton_rate")));
    Alcotest.test_case "disabled telemetry drops everything" `Quick
      (with_clean (fun () ->
           Obs.Health.note_spectrum ~tail:1. ~needed:1 ~available:100 ();
           Obs.Health.note_decision ~outcome:`Reject ();
           Obs.Health.note_escalation ();
           Alcotest.(check int) "no warnings" 0
             (Obs.Metrics.count (Obs.Metrics.counter "health.warnings"))));
  ]

let resolution_tests =
  [
    Alcotest.test_case "harmonics_needed matches its truncation_error definition" `Quick
      (fun () ->
        let n = 31 in
        let x =
          Vec.init n (fun j ->
              let t = float_of_int j /. float_of_int n in
              sin (two_pi *. t) +. (0.3 *. cos (3. *. two_pi *. t))
              +. (1e-4 *. sin (5. *. two_pi *. t)))
        in
        let tol = 1e-3 in
        let fast = Series.harmonics_needed ~tol x in
        (* reference: smallest keep with relative truncation error <= tol *)
        let m = n / 2 in
        let naive = ref m in
        (try
           for k = 0 to m do
             if Series.truncation_error x ~keep:k <= tol then begin
               naive := k;
               raise Exit
             end
           done
         with Exit -> ());
        Alcotest.(check int) "agrees with naive scan" !naive fast;
        Alcotest.(check int) "keeps the 3rd harmonic" 3 fast);
    Alcotest.test_case "grid_resolution takes worst case over components" `Quick (fun () ->
        let n1 = 15 in
        let smooth j = sin (two_pi *. float_of_int j /. float_of_int n1) in
        let rough j =
          smooth j +. (0.2 *. sin (5. *. two_pi *. float_of_int j /. float_of_int n1))
        in
        let states = Array.init n1 (fun j -> [| smooth j; rough j |]) in
        let r = Series.grid_resolution ~tol:1e-6 states in
        Alcotest.(check int) "available" 7 r.Series.available;
        Alcotest.(check int) "needed follows the rough component" 5 r.Series.needed;
        Alcotest.(check bool) "tail small for a band-limited grid" true
          (r.Series.tail < 1e-8));
  ]

let resolution_prop_tests =
  let open QCheck in
  let sig_gen n = Gen.array_size (Gen.return n) (Gen.float_range (-10.) 10.) in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"harmonics_needed = smallest adequate keep" ~count:100
         (make (Gen.pair (sig_gen 21) (Gen.float_range (-6.) (-1.)))) (fun (x, log_tol) ->
           let tol = 10. ** log_tol in
           let k = Series.harmonics_needed ~tol x in
           let m = 10 in
           k >= 0 && k <= m
           && Series.truncation_error x ~keep:k <= tol +. 1e-12
           && (k = 0 || Series.truncation_error x ~keep:(k - 1) > tol)));
  ]

let stream_tests =
  let collect () =
    let lines = ref [] in
    let write l = lines := l :: !lines in
    (lines, write)
  in
  let parsed lines = List.rev_map (fun l -> check_ok "stream line" (Obs.Json.parse l)) !lines in
  let record_type j =
    match Option.bind (Obs.Json.member "type" j) Obs.Json.to_str with
    | Some s -> s
    | None -> Alcotest.fail "stream record without a type"
  in
  [
    Alcotest.test_case "every line is JSON; terminal record closes the stream" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           let lines, write = collect () in
           let s =
             Obs.Stream.start ~min_progress_s:0. ~total:10. ~run:"test" ~write
               ~flush:(fun () -> ())
               ()
           in
           Obs.Events.emit (Obs.Events.Step_accept { t = 1.; h = 0.5 });
           Obs.Events.emit (Obs.Events.Phase_condition { omega = 6.28; t2 = 1. });
           Obs.Events.emit
             (Obs.Events.Step_reject { t = 1.5; h = 0.5; reason = "error control" });
           Obs.Stream.finish s ~ok:true ();
           let records = parsed lines in
           let types = List.map record_type records in
           Alcotest.(check string) "first is start" "start" (List.hd types);
           Alcotest.(check string) "last is done" "done" (List.nth types (List.length types - 1));
           Alcotest.(check bool) "progress present" true (List.mem "progress" types);
           Alcotest.(check bool) "reject event forwarded" true (List.mem "event" types);
           Alcotest.(check int) "macro steps counted" 1 (Obs.Stream.steps s);
           (* the progress record carries a sane fraction *)
           let progress =
             List.find (fun j -> record_type j = "progress") records
           in
           (match Option.bind (Obs.Json.member "frac" progress) Obs.Json.to_num with
            | Some f -> Alcotest.(check bool) "fraction in range" true (f >= 0. && f <= 1.)
            | None -> Alcotest.fail "progress without frac")));
    Alcotest.test_case "finish is idempotent and error wins only once" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           let lines, write = collect () in
           let s = Obs.Stream.start ~run:"test" ~write ~flush:(fun () -> ()) () in
           Obs.Stream.finish s ~ok:false ~error:"boom" ();
           let n = List.length !lines in
           Obs.Stream.finish s ~ok:true ();
           Obs.Stream.finish s ~ok:false ~error:"again" ();
           Alcotest.(check int) "no further writes" n (List.length !lines);
           let last = List.hd (List.rev (parsed lines)) in
           Alcotest.(check string) "terminal is the error" "error" (record_type last);
           match Option.bind (Obs.Json.member "error" last) Obs.Json.to_str with
           | Some msg -> Alcotest.(check string) "message preserved" "boom" msg
           | None -> Alcotest.fail "error record without message"));
    Alcotest.test_case "the stream is bounded but the terminal record goes through" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           let lines, write = collect () in
           let s =
             Obs.Stream.start ~max_records:5 ~run:"test" ~write ~flush:(fun () -> ()) ()
           in
           for i = 1 to 50 do
             Obs.Events.emit
               (Obs.Events.Step_reject { t = float_of_int i; h = 0.1; reason = "cap test" })
           done;
           Obs.Stream.finish s ~ok:true ();
           let types = List.map record_type (parsed lines) in
           Alcotest.(check bool) "bounded" true (List.length types <= 7);
           Alcotest.(check int) "one truncation marker" 1
             (List.length (List.filter (( = ) "truncated") types));
           Alcotest.(check string) "terminal still written" "done"
             (List.nth types (List.length types - 1));
           Alcotest.(check bool) "drops counted" true
             (Obs.Metrics.count (Obs.Metrics.counter "stream.dropped") > 0)));
    Alcotest.test_case "transient-scope events do not reach the stream" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           let lines, write = collect () in
           let s =
             Obs.Stream.start ~min_progress_s:0. ~run:"test" ~write ~flush:(fun () -> ()) ()
           in
           Obs.Scope.with_scope "transient" (fun () ->
               Obs.Events.emit (Obs.Events.Step_accept { t = 0.1; h = 0.01 }));
           Obs.Stream.finish s ~ok:true ();
           Alcotest.(check int) "micro steps not counted" 0 (Obs.Stream.steps s);
           let types = List.map record_type (parsed lines) in
           Alcotest.(check bool) "no progress record" true (not (List.mem "progress" types))));
  ]

let prometheus_tests =
  [
    Alcotest.test_case "exposition is prefixed, sanitized and typed" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           Obs.Metrics.add (Obs.Metrics.counter "test.counter") 5;
           Obs.Metrics.set (Obs.Metrics.gauge "test.gauge-odd") 2.5;
           Obs.Scope.with_scope "envelope.outer" (fun () ->
               Obs.Metrics.incr (Obs.Metrics.counter "test.counter"));
           let body = Obs.Metrics.to_prometheus () in
           let has s =
             Alcotest.(check bool) (Printf.sprintf "contains %S" s) true
               (let re = Str.regexp_string s in
                try ignore (Str.search_forward re body 0); true with Not_found -> false)
           in
           has "# TYPE wampde_test_counter counter";
           has "wampde_test_counter 6";
           has "# TYPE wampde_test_gauge_odd gauge";
           has "wampde_test_gauge_odd 2.5";
           has "wampde_test_counter_scoped{scope=\"envelope.outer\"} 1";
           (* every non-comment line is name[{labels}] value *)
           List.iter
             (fun line ->
               if line <> "" && line.[0] <> '#' then
                 Alcotest.(check bool) (Printf.sprintf "line %S well-formed" line) true
                   (Str.string_match
                      (Str.regexp "^wampde_[A-Za-z0-9_:]+\\({[^}]*}\\)? [^ ]+$") line 0))
             (String.split_on_char '\n' body)));
    Alcotest.test_case "HELP lines precede TYPE lines and escape metadata" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           Obs.Metrics.add (Obs.Metrics.counter "esc.counter") 1;
           Obs.Metrics.set (Obs.Metrics.gauge "esc.gauge") 1.5;
           Obs.Scope.with_scope "we\"ird\\scope\nline" (fun () ->
               Obs.Metrics.incr (Obs.Metrics.counter "esc.counter"));
           let body = Obs.Metrics.to_prometheus () in
           let has s =
             Alcotest.(check bool) (Printf.sprintf "contains %S" s) true
               (let re = Str.regexp_string s in
                try ignore (Str.search_forward re body 0); true with Not_found -> false)
           in
           has "# HELP wampde_esc_counter wampde counter esc.counter";
           has "# HELP wampde_esc_gauge wampde gauge esc.gauge";
           has "# HELP wampde_esc_counter_scoped wampde counter esc.counter by scope";
           (* label values escape backslash, quote and newline per the
              exposition format *)
           has "scope=\"we\\\"ird\\\\scope\\nline\"";
           (* each HELP is immediately followed by its TYPE for the
              same family *)
           let lines = String.split_on_char '\n' body in
           let rec check_pairs = function
             | h :: t :: rest when String.length h > 7 && String.sub h 0 7 = "# HELP " ->
               let fam s =
                 match String.split_on_char ' ' s with _ :: _ :: f :: _ -> f | _ -> ""
               in
               Alcotest.(check bool) (Printf.sprintf "%S followed by TYPE" h) true
                 (String.length t > 7 && String.sub t 0 7 = "# TYPE " && fam t = fam h);
               check_pairs (t :: rest)
             | _ :: rest -> check_pairs rest
             | [] -> ()
           in
           check_pairs lines;
           (* the hostile scope still leaves every sample line
              well-formed: the newline is escaped, not literal *)
           List.iter
             (fun line ->
               if line <> "" && line.[0] <> '#' then
                 Alcotest.(check bool) (Printf.sprintf "line %S well-formed" line) true
                   (Str.string_match
                      (Str.regexp "^wampde_[A-Za-z0-9_:]+\\({[^}]*}\\)? [^ ]+$") line 0))
             lines));
  ]

let doctor_tests =
  [
    Alcotest.test_case "diagnosis of a live run covers three categories" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           let collector = Obs.Report.collect () in
           let t0 = Unix.gettimeofday () in
           ignore (small_envelope_run ());
           let steps = Obs.Report.finish collector in
           let manifest =
             Obs.Report.manifest ~subcommand:"envelope" ~wall_s:(Unix.gettimeofday () -. t0)
               ~steps ()
           in
           check_ok "manifest validates" (Obs.Report.check manifest);
           let findings =
             check_ok "diagnosis" (Obs.Doctor.diagnose_string manifest)
           in
           let categories =
             List.sort_uniq compare (List.map (fun f -> f.Obs.Doctor.category) findings)
           in
           Alcotest.(check bool) "at least three categories" true
             (List.length categories >= 3);
           List.iter
             (fun f ->
               Alcotest.(check bool) "summary non-empty" true (f.Obs.Doctor.summary <> ""))
             findings;
           (* warnings sort before informational findings *)
           let severities = List.map (fun f -> f.Obs.Doctor.severity) findings in
           let rec sorted = function
             | Obs.Doctor.Info :: Obs.Doctor.Warn :: _ -> false
             | _ :: rest -> sorted rest
             | [] -> true
           in
           Alcotest.(check bool) "warnings first" true (sorted severities);
           (* rendering mentions every category; JSON parses *)
           let rendered = Obs.Doctor.render findings in
           List.iter
             (fun c ->
               Alcotest.(check bool) (Printf.sprintf "render mentions %s" c) true
                 (let re = Str.regexp_string c in
                  try ignore (Str.search_forward re rendered 0); true
                  with Not_found -> false))
             categories;
           ignore (check_ok "doctor json" (Obs.Json.parse (Obs.Doctor.to_json findings)))));
    Alcotest.test_case "stream cross-checks flag malformed and unterminated streams" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           let collector = Obs.Report.collect () in
           ignore (small_envelope_run ());
           let steps = Obs.Report.finish collector in
           let manifest = Obs.Report.manifest ~wall_s:1. ~steps () in
           let stream = "{\"type\":\"start\"}\nnot json at all\n{\"type\":\"progress\"}" in
           let findings =
             check_ok "diagnosis" (Obs.Doctor.diagnose_string ~stream manifest)
           in
           let stream_findings =
             List.filter (fun f -> f.Obs.Doctor.category = "stream") findings
           in
           Alcotest.(check bool) "stream finding present" true (stream_findings <> []);
           Alcotest.(check bool) "stream finding is a warning" true
             (List.exists (fun f -> f.Obs.Doctor.severity = Obs.Doctor.Warn) stream_findings)));
    Alcotest.test_case "garbage manifests produce an error, not an exception" `Quick
      (fun () ->
        match Obs.Doctor.diagnose_string "{ not json" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "parse failure not reported");
  ]

let perfetto_tests =
  [
    Alcotest.test_case "zero-span trace is still a loadable trace" `Quick (fun () ->
        let trace = Obs.Trace_event.to_string ~spans:[] ~instants:[] () in
        let j = check_ok "parses" (Obs.Json.parse trace) in
        let entries =
          match j with
          | Obs.Json.Arr l -> l
          | _ -> Alcotest.fail "not a JSON array"
        in
        let non_metadata =
          List.filter
            (fun e ->
              match Option.bind (Obs.Json.member "ph" e) Obs.Json.to_str with
              | Some "M" -> false
              | Some _ -> true
              | None -> Alcotest.fail "entry without ph")
            entries
        in
        Alcotest.(check bool) "has a non-metadata event" true (non_metadata <> []);
        match non_metadata with
        | e :: _ ->
          (match Option.bind (Obs.Json.member "name" e) Obs.Json.to_str with
           | Some name -> Alcotest.(check string) "synthetic instant" "trace_start" name
           | None -> Alcotest.fail "event without name")
        | [] -> ());
  ]

let suites =
  [
    ("eta", eta_tests @ eta_prop_tests);
    ("health-monitors", health_tests);
    ("spectral-resolution", resolution_tests @ resolution_prop_tests);
    ("stream", stream_tests);
    ("prometheus", prometheus_tests);
    ("doctor", doctor_tests);
    ("perfetto-regression", perfetto_tests);
  ]
