(* Tests for the deterministic fault-injection harness: spec parsing,
   firing semantics, seeded reproducibility, and end-to-end solver
   hardening — every injected fault must end in recovery or a typed
   error, never an untyped [Failure] with a backtrace. *)

module Obs = Wampde_obs

let spec_tests =
  [
    Alcotest.test_case "valid specs parse" `Quick (fun () ->
        List.iter
          (fun spec ->
            match Fault.parse spec with
            | Ok _ -> ()
            | Error msg -> Alcotest.fail (spec ^ ": " ^ msg))
          [
            "linsolve@3";
            "nan%0.05";
            "diverge@1,ckpt-trunc@2";
            "seed=42,linsolve%0.5";
            "stall@1,stall=0.5";
            "stall%0.2";
            "journal-trunc@1";
            "";
          ]);
    Alcotest.test_case "malformed specs are rejected" `Quick (fun () ->
        List.iter
          (fun spec ->
            match Fault.parse spec with
            | Ok _ -> Alcotest.fail (spec ^ ": expected Error")
            | Error _ -> ())
          [ "bogus@1"; "linsolve@x"; "nan%1.5"; "nan%-0.1"; "seed=abc"; "linsolve"; "stall=-1"; "stall=abc" ];
        Alcotest.(check bool) "arm_exn raises" true
          (try
             Fault.arm_exn "bogus@1";
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "kind@N fires exactly once, on the Nth call" `Quick (fun () ->
        Fault.with_armed "nan@3" (fun () ->
            let fired =
              List.init 5 (fun _ -> Fault.fire Fault.Nan_residual)
            in
            Alcotest.(check (list bool)) "pattern" [ false; false; true; false; false ] fired;
            Alcotest.(check int) "calls" 5 (Fault.calls Fault.Nan_residual);
            Alcotest.(check int) "injected" 1 (Fault.injected Fault.Nan_residual);
            (* other kinds are untouched *)
            Alcotest.(check bool) "other kind" false (Fault.fire Fault.Linear_solve);
            Alcotest.(check int) "other injected" 0 (Fault.injected Fault.Linear_solve)));
    Alcotest.test_case "disarmed probes are free and uncounted" `Quick (fun () ->
        Fault.disarm ();
        Alcotest.(check bool) "not armed" false (Fault.armed ());
        Alcotest.(check bool) "never fires" false (Fault.fire Fault.Linear_solve);
        (* put the ambient (CI fault-sweep) schedule back *)
        Fault.arm_from_env ());
    Alcotest.test_case "probabilistic schedules are seed-reproducible" `Quick (fun () ->
        let draw () =
          Fault.with_armed "seed=7,linsolve%0.3" (fun () ->
              List.init 200 (fun _ -> Fault.fire Fault.Linear_solve))
        in
        let a = draw () and b = draw () in
        Alcotest.(check (list bool)) "same seed, same sequence" a b;
        Alcotest.(check bool) "some fired" true (List.exists Fun.id a);
        Alcotest.(check bool) "not all fired" true (List.exists not a);
        let c =
          Fault.with_armed "seed=8,linsolve%0.3" (fun () ->
              List.init 200 (fun _ -> Fault.fire Fault.Linear_solve))
        in
        Alcotest.(check bool) "different seed differs" true (a <> c));
    Alcotest.test_case "with_armed restores the previous schedule" `Quick (fun () ->
        (* the ambient state may itself be armed (CI fault sweep), so
           compare against it rather than assuming disarmed *)
        let was_armed = Fault.armed () in
        Fault.with_armed "nan@1" (fun () ->
            Fault.with_armed "linsolve@1" (fun () ->
                Alcotest.(check bool) "inner" true (Fault.fire Fault.Linear_solve));
            (* back to the outer schedule with its own counters *)
            Alcotest.(check bool) "outer" true (Fault.fire Fault.Nan_residual));
        Alcotest.(check bool) "ambient restored" was_armed (Fault.armed ()));
    Alcotest.test_case "stall=S wedges maybe_stall for S seconds when fired" `Quick (fun () ->
        Fault.with_armed "stall@1,stall=0.05" (fun () ->
            Alcotest.(check (float 1e-9)) "configured duration" 0.05 (Fault.stall_seconds ());
            let t0 = Unix.gettimeofday () in
            Fault.maybe_stall ();
            let slept = Unix.gettimeofday () -. t0 in
            Alcotest.(check bool) "first probe sleeps" true (slept >= 0.04);
            let t1 = Unix.gettimeofday () in
            Fault.maybe_stall ();
            Alcotest.(check bool) "single-shot: second probe is free" true
              (Unix.gettimeofday () -. t1 < 0.04);
            Alcotest.(check int) "injected" 1 (Fault.injected Fault.Solver_stall)));
    Alcotest.test_case "stall duration defaults sanely when unset" `Quick (fun () ->
        Fault.with_armed "nan@1" (fun () ->
            Alcotest.(check bool) "positive default" true (Fault.stall_seconds () > 0.);
            (* no stall scheduled: the probe must not sleep *)
            let t0 = Unix.gettimeofday () in
            Fault.maybe_stall ();
            Alcotest.(check bool) "no sleep" true (Unix.gettimeofday () -. t0 < 0.04)));
  ]

(* -- end-to-end: faults against the adaptive envelope integrator -- *)

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let envelope_setup () =
  let n1 = 15 in
  let frozen = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
  let orbit =
    Steady.Oscillator.find (Circuit.Vco.build frozen) ~n1 ~period_hint:(1. /. 0.75)
      (Circuit.Vco.initial_state frozen)
  in
  let dae = Circuit.Vco.build (Circuit.Vco.vco_a ()) in
  let options = Wampde.Envelope.default_options ~n1 () in
  let control = Step_control.default_options ~rtol:1e-4 ~atol:1e-7 () in
  (dae, options, control, orbit)

(* Outcomes we accept from a faulted run: clean completion (the
   retry/rescue machinery absorbed the fault) or a typed error.  An
   untyped [Failure] — a raw backtrace for the user — fails the test.
   Injection counts are sampled inside [with_armed] (it restores the
   previous schedule's counters on exit). *)
let run_faulted ~spec ~dae ~options ~control ~orbit =
  Fault.with_armed spec (fun () ->
      let outcome =
        match
          Wampde.Envelope.simulate_controlled dae ~options ~control ~h2_init:0.5 ~t2_end:3.
            ~init:orbit ()
        with
        | _ -> `Recovered
        | exception Wampde.Envelope.Step_failure _ -> `Typed "step_failure"
        | exception Step_control.Underflow _ -> `Typed "underflow"
        | exception Checkpoint.Corrupt _ -> `Typed "corrupt"
        | exception Nonlin.Polyalg.Solve_failed _ -> `Typed "solve_failed"
        | exception Nonlin.Polyalg.Non_finite _ -> `Typed "non_finite"
      in
      let injected =
        Fault.injected Fault.Linear_solve
        + Fault.injected Fault.Newton_diverge
        + Fault.injected Fault.Nan_residual
      in
      (outcome, injected))

let fault_spec_gen =
  QCheck.Gen.(
    let kind = oneofl [ "linsolve"; "diverge"; "nan" ] in
    let entry =
      oneof
        [
          map2 (fun k n -> Printf.sprintf "%s@%d" k n) kind (int_range 1 40);
          map2 (fun k p -> Printf.sprintf "%s%%%.2f" k p) kind (float_range 0.01 0.25);
        ]
    in
    map2
      (fun seed entries -> Printf.sprintf "seed=%d,%s" seed (String.concat "," entries))
      (int_range 1 1000)
      (list_size (int_range 1 3) entry))

let envelope_tests =
  [
    Alcotest.test_case "single linear-solve fault is retried away" `Quick (fun () ->
        let dae, options, control, orbit = envelope_setup () in
        (match run_faulted ~spec:"linsolve@2" ~dae ~options ~control ~orbit with
        | `Recovered, injected ->
          Alcotest.(check bool) "fault fired" true (injected >= 1)
        | `Typed what, _ -> Alcotest.fail ("expected recovery, got typed " ^ what)));
    Alcotest.test_case "forced divergence and NaN contamination are absorbed" `Quick
      (fun () ->
        let dae, options, control, orbit = envelope_setup () in
        List.iter
          (fun spec ->
            match run_faulted ~spec ~dae ~options ~control ~orbit with
            | `Recovered, injected ->
              Alcotest.(check bool) (spec ^ " fired") true (injected >= 1)
            | `Typed what, _ ->
              Alcotest.fail (spec ^ ": expected recovery, got typed " ^ what))
          [ "diverge@2"; "nan@2" ]);
    Alcotest.test_case "persistent faults surface as a typed error" `Quick (fun () ->
        let dae, options, control, orbit = envelope_setup () in
        let options = { options with Wampde.Envelope.rescue = false } in
        match run_faulted ~spec:"linsolve%1" ~dae ~options ~control ~orbit with
        | `Recovered, _ -> Alcotest.fail "a 100% fault rate cannot be recovered"
        | `Typed _, _ -> ());
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:8 ~name:"random fault schedules: recovery or typed error"
         (QCheck.make ~print:Fun.id fault_spec_gen)
         (fun spec ->
           let dae, options, control, orbit = envelope_setup () in
           match run_faulted ~spec ~dae ~options ~control ~orbit with
           | (`Recovered | `Typed _), _ -> true
           | exception _ -> false));
    Alcotest.test_case "truncated checkpoint is caught on load" `Quick (fun () ->
        let path = tmp_path "fault_ckpt_trunc.bin" in
        Fault.with_armed "ckpt-trunc@1" (fun () ->
            Checkpoint.save ~path [ ("t2", Checkpoint.Scalar 1.5) ];
            Alcotest.(check int) "fired" 1 (Fault.injected Fault.Checkpoint_trunc));
        Alcotest.(check bool) "load raises Corrupt" true
          (try
             ignore (Checkpoint.load ~path);
             false
           with Checkpoint.Corrupt _ -> true);
        Sys.remove path);
  ]

let suites = [ ("fault", spec_tests); ("fault_envelope", envelope_tests) ]
