(* Tests for the structured matrix-free collocation operator and its
   FFT-diagonalized averaged-block preconditioner (Linalg.Structured),
   plus the envelope solver's Krylov path. *)
open Linalg

let two_pi = 2. *. Float.pi

(* Envelope-step-like operator pieces from the VCO steady orbit:
   J = h theta omega (D (x) dq) + blockdiag(dq + h theta df), bordered
   by the omega column h theta (D Q) and the phase row. *)
let vco_step_system () =
  let p0 = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
  let dae = Circuit.Vco.build p0 in
  let n1 = 25 in
  let orbit = Steady.Oscillator.find dae ~n1 ~period_hint:1.333 (Circuit.Vco.initial_state p0) in
  let n = dae.Dae.dim in
  let d = Fourier.Series.diff_matrix n1 in
  let states = orbit.Steady.Oscillator.grid in
  let omega = orbit.Steady.Oscillator.omega in
  let h2 = 0.1 and theta = 0.5 in
  let alpha = h2 *. theta *. omega in
  let c_blocks = Array.map dae.Dae.dq states in
  let b_blocks =
    Array.init n1 (fun j ->
        let gj = dae.Dae.df ~t:0. states.(j) in
        Mat.init n n (fun i l -> c_blocks.(j).(i).(l) +. (h2 *. theta *. gj.(i).(l))))
  in
  let op = Structured.make_op ~alpha ~d ~c_blocks ~b_blocks in
  let qs = Array.map dae.Dae.q states in
  let border_col =
    Vec.init (n1 * n) (fun idx ->
        let j = idx / n and i = idx mod n in
        let s = ref 0. in
        for k = 0 to n1 - 1 do
          s := !s +. (d.(j).(k) *. qs.(k).(i))
        done;
        h2 *. theta *. !s)
  in
  let border_row = Wampde.Phase.row (Wampde.Phase.Derivative 0) ~n1 ~n ~d in
  (op, border_col, border_row)

let unit_tests =
  [
    Alcotest.test_case "matvec matches FD directional derivative of a DAE residual" `Quick
      (fun () ->
        (* nonlinear LC oscillator; the structured op must agree with a
           finite-difference Jacobian-vector product of the actual
           theta-step collocation residual *)
        let l = 0.8 in
        let dae =
          Dae.make ~dim:2
            ~q:(fun x -> [| x.(0); l *. x.(1) |])
            ~f:(fun ~t:_ x ->
              [| x.(1) -. x.(0) +. (0.3 *. (x.(0) ** 3.)); -.x.(0) |])
            ~dq:(fun _ -> [| [| 1.; 0. |]; [| 0.; l |] |])
            ~df:(fun ~t:_ x -> [| [| -1. +. (0.9 *. x.(0) *. x.(0)); 1. |]; [| -1.; 0. |] |])
            ()
        in
        let n = 2 and n1 = 9 in
        let d = Fourier.Series.diff_matrix n1 in
        let omega = 1.3 and h2 = 0.2 and theta = 0.5 in
        let states =
          Array.init n1 (fun j ->
              let t1 = float_of_int j /. float_of_int n1 in
              [| cos (two_pi *. t1); 0.5 *. sin (two_pi *. t1) |])
        in
        let pack states = Array.concat (Array.to_list states) in
        let residual y =
          let states = Array.init n1 (fun j -> Array.sub y (j * n) n) in
          let qs = Array.map dae.Dae.q states in
          Vec.init (n1 * n) (fun idx ->
              let j = idx / n and i = idx mod n in
              let s = ref 0. in
              for k = 0 to n1 - 1 do
                s := !s +. (d.(j).(k) *. qs.(k).(i))
              done;
              qs.(j).(i)
              +. (h2 *. theta *. ((omega *. !s) +. (dae.Dae.f ~t:0. states.(j)).(i))))
        in
        let c_blocks = Array.map dae.Dae.dq states in
        let b_blocks =
          Array.init n1 (fun j ->
              let gj = dae.Dae.df ~t:0. states.(j) in
              Mat.init n n (fun i l -> c_blocks.(j).(i).(l) +. (h2 *. theta *. gj.(i).(l))))
        in
        let op =
          Structured.make_op ~alpha:(h2 *. theta *. omega) ~d ~c_blocks ~b_blocks
        in
        let y = pack states in
        let v = Vec.init (n1 * n) (fun i -> sin (float_of_int (3 * i))) in
        let jv = Structured.apply op v in
        let jv_fd = Nonlin.Fdjac.directional residual y v in
        Alcotest.(check bool) "matches FD" true (Vec.approx_equal ~tol:1e-5 jv jv_fd));
    Alcotest.test_case "precond inverts the operator exactly for constant blocks" `Quick
      (fun () ->
        let n = 3 and n1 = 11 in
        let d = Fourier.Series.diff_matrix n1 in
        let c = Mat.init n n (fun i j -> if i = j then 2. else 0.3 /. float_of_int (1 + i + j)) in
        let b = Mat.init n n (fun i j -> if i = j then 5. else sin (float_of_int (i - j))) in
        let op =
          Structured.make_op ~alpha:0.7 ~d ~c_blocks:(Array.make n1 c) ~b_blocks:(Array.make n1 b)
        in
        let pc = Structured.make_precond op in
        let r = Vec.init (n1 * n) (fun i -> cos (float_of_int i)) in
        let z = Structured.precond_apply pc r in
        let back = Structured.apply op z in
        Alcotest.(check bool) "A (M^-1 r) = r" true (Vec.approx_equal ~tol:1e-8 back r));
    Alcotest.test_case "fft and naive dft give the same preconditioner" `Quick (fun () ->
        let n = 2 and n1 = 13 in
        let d = Fourier.Series.diff_matrix_fd ~order:4 n1 in
        let c = Mat.identity n in
        let b = Mat.init n n (fun i j -> if i = j then 4. else 0.5) in
        let op =
          Structured.make_op ~alpha:1.1 ~d ~c_blocks:(Array.make n1 c) ~b_blocks:(Array.make n1 b)
        in
        let r = Vec.init (n1 * n) (fun i -> float_of_int ((i mod 5) - 2)) in
        let z_naive = Structured.precond_apply (Structured.make_precond op) r in
        let z_fft =
          Structured.precond_apply
            (Structured.make_precond ~dft:Fourier.Fft.structured_dft op)
            r
        in
        Alcotest.(check bool) "same" true (Vec.approx_equal ~tol:1e-9 z_naive z_fft));
    Alcotest.test_case "bordered precond is the exact bordered inverse" `Quick (fun () ->
        let n = 2 and n1 = 7 in
        let nd = n * n1 in
        let d = Fourier.Series.diff_matrix n1 in
        let c = Mat.init n n (fun i j -> if i = j then 1.5 else 0.2) in
        let b = Mat.init n n (fun i j -> if i = j then 3. else -0.4) in
        let op =
          Structured.make_op ~alpha:0.9 ~d ~c_blocks:(Array.make n1 c) ~b_blocks:(Array.make n1 b)
        in
        let border_col = Vec.init nd (fun i -> sin (float_of_int i)) in
        let border_row = Vec.init nd (fun i -> cos (float_of_int (2 * i))) in
        let pc = Structured.make_precond op in
        let bp = Structured.make_bordered pc ~border_col ~border_row in
        let rhs = Vec.init (nd + 1) (fun i -> float_of_int ((i mod 7) - 3)) in
        let z = Structured.bordered_apply bp rhs in
        (* constant blocks: the block preconditioner is exact, so the
           bordered Schur formula must reproduce the dense solve *)
        let dense = Mat.init (nd + 1) (nd + 1) (fun i j ->
            if i < nd && j < nd then (Structured.to_dense op).(i).(j)
            else if i < nd && j = nd then border_col.(i)
            else if i = nd && j < nd then border_row.(j)
            else 0.)
        in
        let z_dense = Lu.solve_dense dense rhs in
        Alcotest.(check bool) "exact" true (Vec.approx_equal ~tol:1e-7 z z_dense));
    Alcotest.test_case "preconditioned gmres needs <= 1/3 the iterations on a VCO step system"
      `Quick (fun () ->
        let op, border_col, border_row = vco_step_system () in
        let nd = Structured.dim op in
        let b = Vec.init (nd + 1) (fun i -> sin (float_of_int (7 * i) /. 11.)) in
        let matvec v = Structured.apply_bordered op ~border_col ~border_row v in
        let plain = Gmres.solve ~matvec ~restart:(nd + 1) ~max_iter:(nd + 1) ~tol:1e-8 b in
        let pc = Structured.make_precond ~dft:Fourier.Fft.structured_dft op in
        let bp = Structured.make_bordered pc ~border_col ~border_row in
        let precond =
          Gmres.solve ~matvec ~m_inv:(Structured.bordered_apply bp) ~restart:(nd + 1)
            ~max_iter:(nd + 1) ~tol:1e-8 b
        in
        Alcotest.(check bool) "preconditioned converged" true precond.Gmres.converged;
        Alcotest.(check bool)
          (Printf.sprintf "%d precond vs %d plain iterations" precond.Gmres.iterations
             plain.Gmres.iterations)
          true
          (precond.Gmres.iterations * 3 <= plain.Gmres.iterations));
    Alcotest.test_case "envelope Krylov path reproduces the dense omega trajectory" `Quick
      (fun () ->
        let p = Circuit.Vco.vco_a () in
        let dae = Circuit.Vco.build p in
        let p0 = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let orbit =
          Steady.Oscillator.find (Circuit.Vco.build p0) ~n1:25 ~period_hint:1.333
            (Circuit.Vco.initial_state p0)
        in
        let run solver =
          let options = Wampde.Envelope.default_options ~n1:25 ~solver () in
          Wampde.Envelope.simulate dae ~options ~t2_end:2. ~h2:0.25 ~init:orbit
        in
        let dense = run Structured.Dense in
        let krylov = run Structured.Krylov in
        Alcotest.(check int) "same step count"
          (Array.length dense.Wampde.Envelope.omega)
          (Array.length krylov.Wampde.Envelope.omega);
        Array.iteri
          (fun i om_d ->
            let om_k = krylov.Wampde.Envelope.omega.(i) in
            let rel = Float.abs (om_k -. om_d) /. Float.max 1e-12 (Float.abs om_d) in
            if rel > 1e-6 then
              Alcotest.failf "omega mismatch at index %d: dense %.9g krylov %.9g (rel %.2e)" i
                om_d om_k rel)
          dense.Wampde.Envelope.omega);
    Alcotest.test_case "harmonic balance Krylov path matches dense" `Quick (fun () ->
        (* forced nonlinear RC: q = x + 0.2 x^3, f = x - cos(2 pi t / T) *)
        let period = 2.5 in
        let dae =
          Dae.make ~dim:1
            ~q:(fun x -> [| x.(0) +. (0.2 *. (x.(0) ** 3.)) |])
            ~f:(fun ~t x -> [| x.(0) -. cos (two_pi *. t /. period) |])
            ~dq:(fun x -> [| [| 1. +. (0.6 *. x.(0) *. x.(0)) |] |])
            ~df:(fun ~t:_ _ -> [| [| 1. |] |])
            ()
        in
        let m = 9 in
        let nn = (2 * m) + 1 in
        let guess = Array.init nn (fun _ -> [| 0. |]) in
        let dense = Steady.Hb.solve ~solver:Structured.Dense dae ~period ~harmonics:m ~guess in
        let krylov = Steady.Hb.solve ~solver:Structured.Krylov dae ~period ~harmonics:m ~guess in
        Alcotest.(check bool) "krylov residual small" true
          (Steady.Hb.residual_norm dae krylov < 1e-8);
        for k = 0 to 20 do
          let t = period *. float_of_int k /. 20. in
          let vd = Steady.Hb.eval dense ~component:0 t in
          let vk = Steady.Hb.eval krylov ~component:0 t in
          if Float.abs (vd -. vk) > 1e-8 then
            Alcotest.failf "hb waveform mismatch at t = %.3f: %.10g vs %.10g" t vd vk
        done);
    Alcotest.test_case "hb-envelope Krylov path matches dense" `Quick (fun () ->
        let p = Circuit.Vco.vco_a () in
        let dae = Circuit.Vco.build p in
        let p0 = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let m = 7 in
        let orbit =
          Steady.Oscillator.find (Circuit.Vco.build p0) ~n1:((2 * m) + 1) ~period_hint:1.333
            (Circuit.Vco.initial_state p0)
        in
        let run solver =
          Wampde.Hb_envelope.simulate ~solver dae ~harmonics:m ~t2_end:1. ~h2:0.25 ~init:orbit
            ()
        in
        let dense = run Structured.Dense in
        let krylov = run Structured.Krylov in
        Array.iteri
          (fun i om_d ->
            let om_k = krylov.Wampde.Hb_envelope.omega.(i) in
            let rel = Float.abs (om_k -. om_d) /. Float.max 1e-12 (Float.abs om_d) in
            if rel > 1e-6 then
              Alcotest.failf "hb-envelope omega mismatch at index %d: %.9g vs %.9g" i om_d om_k)
          dense.Wampde.Hb_envelope.omega)
  ]

(* Property-based tests: a random linear DAE (q = C x, f = B x) has the
   structured operator as its exact collocation Jacobian, so the
   matrix-free product must match the dense assembly column by column. *)
let prop_tests =
  let open QCheck in
  let finite_float = Gen.float_range (-3.) 3. in
  let mat_gen n =
    Gen.map
      (fun rows ->
        Array.mapi
          (fun i row ->
            let r = Array.copy row in
            r.(i) <- r.(i) +. 6.;
            r)
          rows)
      (Gen.array_size (Gen.return n) (Gen.array_size (Gen.return n) finite_float))
  in
  let system_gen =
    Gen.map3
      (fun cs bs alpha -> (cs, bs, alpha))
      (Gen.array_size (Gen.return 9) (mat_gen 3))
      (Gen.array_size (Gen.return 9) (mat_gen 3))
      (Gen.float_range 0.1 2.)
  in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"structured matvec matches dense columns to 1e-10" ~count:40
         (make system_gen)
         (fun (cs, bs, alpha) ->
           let n1 = Array.length cs and n = 3 in
           let d = Fourier.Series.diff_matrix n1 in
           let op = Structured.make_op ~alpha ~d ~c_blocks:cs ~b_blocks:bs in
           let dense = Structured.to_dense op in
           let ok = ref true in
           for j = 0 to (n1 * n) - 1 do
             let e = Array.make (n1 * n) 0. in
             e.(j) <- 1.;
             let col = Structured.apply op e in
             for i = 0 to (n1 * n) - 1 do
               if Float.abs (col.(i) -. dense.(i).(j)) > 1e-10 then ok := false
             done
           done;
           !ok));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"preconditioned gmres solves the structured system" ~count:15
         (make system_gen)
         (fun (cs, bs, alpha) ->
           let n1 = Array.length cs and n = 3 in
           let d = Fourier.Series.diff_matrix n1 in
           let op = Structured.make_op ~alpha ~d ~c_blocks:cs ~b_blocks:bs in
           let b = Vec.init (n1 * n) (fun i -> sin (float_of_int i)) in
           let res = Structured.solve_op ~tol:1e-11 op b in
           res.Gmres.converged
           && Vec.approx_equal ~tol:1e-6 (Structured.apply op res.Gmres.x) b));
  ]

let suites = [ ("structured", unit_tests @ prop_tests) ]
