(* Tests for binary checkpoint files and envelope kill/resume. *)

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let bits = Int64.bits_of_float

let sample_sections =
  [
    ("t2", Checkpoint.Scalar 12.34);
    ("kind", Checkpoint.Text "envelope");
    ("omega_hist", Checkpoint.Vector [| 0.75; 0.74; nan; infinity; -0.0; 1e-308 |]);
    ("states", Checkpoint.Matrix [| [| 1.; 2. |]; [| 3.; 4. |] |]);
    ("slices", Checkpoint.Tensor [| [| [| 1. |]; [| 2. |] |]; [| [| 3. |]; [| 4. |] |] |]);
  ]

let check_float_bits what a b =
  Alcotest.(check int64) what (bits a) (bits b)

let corrupt_byte path offset =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  let data = Bytes.of_string data in
  Bytes.set data offset (Char.chr (Char.code (Bytes.get data offset) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc data;
  close_out oc

let expect_corrupt what f =
  match f () with
  | exception Checkpoint.Corrupt _ -> ()
  | _ -> Alcotest.fail (what ^ ": expected Checkpoint.Corrupt")

let tests =
  [
    Alcotest.test_case "sections round-trip bitwise" `Quick (fun () ->
        let path = tmp_path "ckpt_roundtrip.bin" in
        Checkpoint.save ~path sample_sections;
        let ck = Checkpoint.load ~path in
        check_float_bits "scalar" 12.34 (Checkpoint.scalar ck "t2");
        Alcotest.(check string) "text" "envelope" (Checkpoint.text ck "kind");
        let v = Checkpoint.vector ck "omega_hist" in
        Array.iteri
          (fun i x -> check_float_bits (Printf.sprintf "vector.%d" i) x v.(i))
          [| 0.75; 0.74; nan; infinity; -0.0; 1e-308 |];
        let m = Checkpoint.matrix ck "states" in
        Alcotest.(check (float 0.)) "matrix" 4. m.(1).(1);
        let t = Checkpoint.tensor ck "slices" in
        Alcotest.(check (float 0.)) "tensor" 3. t.(1).(0).(0);
        Alcotest.(check bool) "mem" true (Checkpoint.mem ck "t2");
        Alcotest.(check bool) "not mem" false (Checkpoint.mem ck "nope");
        Sys.remove path);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:50 ~name:"random vectors round-trip bitwise"
         QCheck.(list (float_bound_exclusive 1e6))
         (fun floats ->
           let a = Array.of_list floats in
           let path = tmp_path "ckpt_qcheck.bin" in
           Checkpoint.save ~path [ ("v", Checkpoint.Vector a) ];
           let got = Checkpoint.vector (Checkpoint.load ~path) "v" in
           Sys.remove path;
           Array.length got = Array.length a
           && Array.for_all2 (fun x y -> bits x = bits y) got a));
    Alcotest.test_case "typed accessors reject missing/mistyped sections" `Quick (fun () ->
        let path = tmp_path "ckpt_typed.bin" in
        Checkpoint.save ~path sample_sections;
        let ck = Checkpoint.load ~path in
        expect_corrupt "missing" (fun () -> Checkpoint.scalar ck "absent");
        expect_corrupt "mistyped" (fun () -> Checkpoint.vector ck "t2");
        Sys.remove path);
    Alcotest.test_case "payload corruption is detected by the CRC" `Quick (fun () ->
        let path = tmp_path "ckpt_crc.bin" in
        Checkpoint.save ~path sample_sections;
        (* header is 8 (magic) + 4 (version) + 8 (length) + 4 (crc) = 24
           bytes; flip a payload byte well past it *)
        corrupt_byte path 40;
        expect_corrupt "crc" (fun () -> Checkpoint.load ~path);
        Sys.remove path);
    Alcotest.test_case "truncated and oversized files are rejected" `Quick (fun () ->
        let path = tmp_path "ckpt_trunc.bin" in
        Checkpoint.save ~path sample_sections;
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let data = really_input_string ic len in
        close_in ic;
        let rewrite s =
          let oc = open_out_bin path in
          output_string oc s;
          close_out oc
        in
        rewrite (String.sub data 0 (len - 5));
        expect_corrupt "truncated" (fun () -> Checkpoint.load ~path);
        rewrite (data ^ "junk");
        expect_corrupt "trailing" (fun () -> Checkpoint.load ~path);
        Sys.remove path);
    Alcotest.test_case "bad magic and future versions are rejected" `Quick (fun () ->
        let path = tmp_path "ckpt_magic.bin" in
        Checkpoint.save ~path sample_sections;
        corrupt_byte path 0;
        expect_corrupt "magic" (fun () -> Checkpoint.load ~path);
        Checkpoint.save ~path sample_sections;
        corrupt_byte path 8;
        expect_corrupt "version" (fun () -> Checkpoint.load ~path);
        expect_corrupt "missing file" (fun () -> Checkpoint.load ~path:(tmp_path "ckpt_nope"));
        Sys.remove path);
    Alcotest.test_case "envelope kill + resume equals uninterrupted run" `Slow (fun () ->
        (* The acceptance test for the restart layer: run the VCO-A
           envelope adaptively, kill it after 3 accepted steps (the
           checkpoint was written at step 2), resume from the file and
           require the full history to match the never-killed run to
           1e-12.  The bitwise comparison needs a fault-free run, so
           an ambient WAMPDE_FAULTS schedule is masked. *)
        Fault.with_armed "" @@ fun () ->
        let n1 = 15 in
        let frozen = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let orbit =
          Steady.Oscillator.find (Circuit.Vco.build frozen) ~n1 ~period_hint:(1. /. 0.75)
            (Circuit.Vco.initial_state frozen)
        in
        let dae = Circuit.Vco.build (Circuit.Vco.vco_a ()) in
        let options = Wampde.Envelope.default_options ~n1 () in
        let control = Step_control.default_options ~rtol:1e-4 ~atol:1e-7 () in
        let t2_end = 6. in
        let run ?checkpoint ?resume ?on_accept () =
          Wampde.Envelope.simulate_controlled dae ~options ~control ~h2_init:0.5 ?checkpoint
            ?resume ?on_accept ~t2_end ~init:orbit ()
        in
        let reference = run () in
        let path = tmp_path "ckpt_envelope.bin" in
        let accepts = ref 0 in
        (match
           run
             ~checkpoint:(path, 2)
             ~on_accept:(fun ~t2:_ ~omega:_ ->
               incr accepts;
               if !accepts >= 3 then raise Exit)
             ()
         with
        | exception Exit -> ()
        | _ -> Alcotest.fail "killed run was expected to stop early");
        let resumed = run ~resume:path () in
        let n = Array.length reference.Wampde.Envelope.t2 in
        Alcotest.(check int) "same number of accepted steps" n
          (Array.length resumed.Wampde.Envelope.t2);
        for i = 0 to n - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "t2.(%d)" i)
            true
            (Float.abs (reference.Wampde.Envelope.t2.(i) -. resumed.Wampde.Envelope.t2.(i))
             <= 1e-12);
          Alcotest.(check bool)
            (Printf.sprintf "omega.(%d)" i)
            true
            (Float.abs
               (reference.Wampde.Envelope.omega.(i) -. resumed.Wampde.Envelope.omega.(i))
             <= 1e-12);
          Array.iteri
            (fun j slice ->
              Array.iteri
                (fun k x ->
                  Alcotest.(check bool)
                    (Printf.sprintf "slices.(%d).(%d).(%d)" i j k)
                    true
                    (Float.abs (x -. resumed.Wampde.Envelope.slices.(i).(j).(k)) <= 1e-12))
                slice)
            reference.Wampde.Envelope.slices.(i)
        done;
        Sys.remove path);
    Alcotest.test_case "faulted run resumes to match the uninterrupted run" `Slow (fun () ->
        (* Solver hardening end-to-end: checkpoint every 2 accepted
           steps, then after 3 accepts arm a 100% linear-solve fault
           rate — every retry fails, the slow step underflows and the
           run dies with a typed error.  Resuming (disarmed) from the
           checkpoint must reproduce the fault-free history to 1e-12:
           injected faults abort runs, they never corrupt them. *)
        Fault.with_armed "" @@ fun () ->
        let n1 = 15 in
        let frozen = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let orbit =
          Steady.Oscillator.find (Circuit.Vco.build frozen) ~n1 ~period_hint:(1. /. 0.75)
            (Circuit.Vco.initial_state frozen)
        in
        let dae = Circuit.Vco.build (Circuit.Vco.vco_a ()) in
        (* no rescue: the cascade must not absorb the persistent fault,
           the step controller has to surface it *)
        let options = Wampde.Envelope.default_options ~n1 ~rescue:false () in
        let control = Step_control.default_options ~rtol:1e-4 ~atol:1e-7 () in
        let t2_end = 6. in
        let run ?checkpoint ?resume ?on_accept () =
          Wampde.Envelope.simulate_controlled dae ~options ~control ~h2_init:0.5 ?checkpoint
            ?resume ?on_accept ~t2_end ~init:orbit ()
        in
        let reference = run () in
        let path = tmp_path "ckpt_faulted.bin" in
        let accepts = ref 0 in
        (match
           run
             ~checkpoint:(path, 2)
             ~on_accept:(fun ~t2:_ ~omega:_ ->
               incr accepts;
               if !accepts = 3 then Fault.arm_exn "linsolve%1")
             ()
         with
        | exception Step_control.Underflow _ -> Fault.disarm ()
        | exception Wampde.Envelope.Step_failure _ -> Fault.disarm ()
        | _ ->
          Fault.disarm ();
          Alcotest.fail "faulted run was expected to die with a typed error");
        let resumed = run ~resume:path () in
        let n = Array.length reference.Wampde.Envelope.t2 in
        Alcotest.(check int) "same number of accepted steps" n
          (Array.length resumed.Wampde.Envelope.t2);
        for i = 0 to n - 1 do
          Alcotest.(check bool)
            (Printf.sprintf "t2.(%d)" i)
            true
            (Float.abs (reference.Wampde.Envelope.t2.(i) -. resumed.Wampde.Envelope.t2.(i))
             <= 1e-12);
          Alcotest.(check bool)
            (Printf.sprintf "omega.(%d)" i)
            true
            (Float.abs
               (reference.Wampde.Envelope.omega.(i) -. resumed.Wampde.Envelope.omega.(i))
             <= 1e-12)
        done;
        Sys.remove path);
    Alcotest.test_case "resume validates the run's shape" `Quick (fun () ->
        let path = tmp_path "ckpt_shape.bin" in
        Checkpoint.save ~path
          [
            ("kind", Checkpoint.Text "envelope");
            ("n1", Checkpoint.Scalar 25.);
            ("dim", Checkpoint.Scalar 4.);
            ("theta", Checkpoint.Scalar 0.5);
          ];
        let frozen = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let orbit =
          Steady.Oscillator.find (Circuit.Vco.build frozen) ~n1:15 ~period_hint:(1. /. 0.75)
            (Circuit.Vco.initial_state frozen)
        in
        let dae = Circuit.Vco.build (Circuit.Vco.vco_a ()) in
        let options = Wampde.Envelope.default_options ~n1:15 () in
        let control = Step_control.default_options () in
        expect_corrupt "n1 mismatch" (fun () ->
            Wampde.Envelope.simulate_controlled dae ~options ~control ~resume:path ~t2_end:1.
              ~init:orbit ());
        Sys.remove path);
  ]

let suites = [ ("checkpoint", tests) ]
