(* Golden-regression harness for the paper-figure experiments.

   Runs small, deterministic versions of two experiments —

     vco_a_envelope    VCO-A WaMPDE envelope: local frequency omega(t2)
                       and amplitude envelope (paper Figs. 7-9 regime)
     mpde_am_spectrum  quasiperiodic MPDE of the AM filter: 2-D
                       harmonic magnitudes |X_{k1,k2}|

   — and compares every recorded quantity against the committed
   reference in test/golden/*.json, with per-quantity rtol/atol stored
   in the file itself.  On mismatch it prints the worst deviation (in
   tolerance units, with index and both values) and exits non-zero.

   Usage:
     golden_check.exe [--dir DIR]            check against references
     golden_check.exe --update [--dir DIR]   (re)write the references *)

let two_pi = 2. *. Float.pi

type quantity = { rtol : float; atol : float; values : float array }

type experiment = (string * quantity) list

(* ---------- minimal JSON (objects of {rtol, atol, values}) ---------- *)

let json_of_experiment (e : experiment) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (name, q) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Printf.sprintf "  %S: {\n" name);
      Buffer.add_string buf (Printf.sprintf "    \"rtol\": %.17g,\n" q.rtol);
      Buffer.add_string buf (Printf.sprintf "    \"atol\": %.17g,\n" q.atol);
      Buffer.add_string buf "    \"values\": [";
      Array.iteri
        (fun j v ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "%.17g" v))
        q.values;
      Buffer.add_string buf "]\n  }")
    e;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

exception Parse_error of string

(* recursive-descent parser for the subset we emit: objects, arrays,
   strings (no escapes needed for our keys) and numbers *)
let parse_json (s : string) : experiment =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then s.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then
      raise (Parse_error (Printf.sprintf "expected %C at offset %d" c !pos));
    advance ()
  in
  let parse_string () =
    expect '"';
    let start = !pos in
    while !pos < len && s.[!pos] <> '"' do
      advance ()
    done;
    if !pos >= len then raise (Parse_error "unterminated string");
    let str = String.sub s start (!pos - start) in
    advance ();
    str
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < len
      && match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false
    do
      advance ()
    done;
    let str = String.sub s start (!pos - start) in
    match float_of_string_opt str with
    | Some v -> v
    | None -> raise (Parse_error (Printf.sprintf "bad number %S at offset %d" str start))
  in
  let parse_values () =
    expect '[';
    skip_ws ();
    if peek () = ']' then begin
      advance ();
      [||]
    end
    else begin
      let acc = ref [ parse_number () ] in
      skip_ws ();
      while peek () = ',' do
        advance ();
        acc := parse_number () :: !acc;
        skip_ws ()
      done;
      expect ']';
      Array.of_list (List.rev !acc)
    end
  in
  let parse_quantity () =
    expect '{';
    let rtol = ref nan and atol = ref nan and values = ref [||] in
    let parse_field () =
      let key = (skip_ws (); parse_string ()) in
      expect ':';
      match key with
      | "rtol" -> rtol := parse_number ()
      | "atol" -> atol := parse_number ()
      | "values" -> values := parse_values ()
      | k -> raise (Parse_error (Printf.sprintf "unknown quantity field %S" k))
    in
    parse_field ();
    skip_ws ();
    while peek () = ',' do
      advance ();
      parse_field ();
      skip_ws ()
    done;
    expect '}';
    if Float.is_nan !rtol || Float.is_nan !atol then
      raise (Parse_error "quantity missing rtol/atol");
    { rtol = !rtol; atol = !atol; values = !values }
  in
  expect '{';
  skip_ws ();
  let entries = ref [] in
  if peek () <> '}' then begin
    let parse_entry () =
      let name = (skip_ws (); parse_string ()) in
      expect ':';
      entries := (name, parse_quantity ()) :: !entries
    in
    parse_entry ();
    skip_ws ();
    while peek () = ',' do
      advance ();
      parse_entry ();
      skip_ws ()
    done
  end;
  expect '}';
  skip_ws ();
  if !pos <> len then raise (Parse_error "trailing content");
  List.rev !entries

(* ---------- experiments ---------- *)

let vco_a_envelope () : experiment =
  let frozen = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
  let n1 = 15 in
  let orbit =
    Steady.Oscillator.find (Circuit.Vco.build frozen) ~n1 ~period_hint:(1. /. 0.75)
      (Circuit.Vco.initial_state frozen)
  in
  let dae = Circuit.Vco.build (Circuit.Vco.vco_a ()) in
  let options = Wampde.Envelope.default_options ~n1 () in
  let res = Wampde.Envelope.simulate dae ~options ~t2_end:20. ~h2:0.5 ~init:orbit in
  let amp = Wampde.Envelope.amplitude_track res ~component:Circuit.Vco.idx_voltage in
  [
    ("t2", { rtol = 1e-12; atol = 1e-12; values = res.Wampde.Envelope.t2 });
    ("omega", { rtol = 1e-6; atol = 1e-9; values = res.Wampde.Envelope.omega });
    ("amplitude", { rtol = 1e-6; atol = 1e-9; values = amp });
  ]

let mpde_am_spectrum () : experiment =
  let p1 = 0.01 and p2 = two_pi /. 0.6 in
  let a t2 = 1. +. (0.5 *. sin (two_pi *. t2 /. p2)) in
  let dae = Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -.x.(0) |]) () in
  let sys =
    { Mpde.dae; p1; b_fast = (fun ~t1 ~t2 -> [| -.(a t2) *. sin (two_pi *. t1 /. p1) |]) }
  in
  let n1 = 15 and n2 = 9 in
  let guess = Array.init n2 (fun _ -> Array.init n1 (fun _ -> [| 0. |])) in
  let res = Mpde.quasiperiodic sys ~n1 ~n2 ~p2 ~guess in
  (* 2-D DFT magnitudes of component 0 over the biperiodic grid: the
     quasiperiodic spectrum lines |X_{k1,k2}| *)
  let mags = ref [] in
  for k1 = 0 to 3 do
    for k2 = -2 to 2 do
      let re = ref 0. and im = ref 0. in
      for m = 0 to n2 - 1 do
        for j = 0 to n1 - 1 do
          let ph =
            -.two_pi
            *. ((float_of_int (k1 * j) /. float_of_int n1)
               +. (float_of_int (k2 * m) /. float_of_int n2))
          in
          let x = res.Mpde.slices.(m).(j).(0) in
          re := !re +. (x *. cos ph);
          im := !im +. (x *. sin ph)
        done
      done;
      let scale = 1. /. float_of_int (n1 * n2) in
      mags := sqrt ((!re *. !re) +. (!im *. !im)) *. scale :: !mags
    done
  done;
  [ ("harmonic_mags", { rtol = 1e-6; atol = 1e-10; values = Array.of_list (List.rev !mags) }) ]

let experiments =
  [ ("vco_a_envelope", vco_a_envelope); ("mpde_am_spectrum", mpde_am_spectrum) ]

(* ---------- compare / update ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

(* worst deviation of [got] vs [ref] in tolerance units: max over i of
   |got_i - ref_i| / (atol + rtol |ref_i|); <= 1 passes *)
let compare_quantity ~exp_name ~qty_name (reference : quantity) (got : float array) =
  if Array.length got <> Array.length reference.values then begin
    Printf.printf "FAIL %s/%s: length %d, golden has %d\n" exp_name qty_name
      (Array.length got) (Array.length reference.values);
    false
  end
  else begin
    let worst = ref 0. and worst_i = ref 0 in
    Array.iteri
      (fun i r ->
        let dev = Float.abs (got.(i) -. r) /. (reference.atol +. (reference.rtol *. Float.abs r)) in
        if dev > !worst then begin
          worst := dev;
          worst_i := i
        end)
      reference.values;
    let ok = !worst <= 1. in
    Printf.printf "%s %s/%s: worst deviation %.3f tol units at index %d (got %.12g, golden %.12g)\n"
      (if ok then "ok  " else "FAIL")
      exp_name qty_name !worst !worst_i got.(!worst_i)
      reference.values.(!worst_i);
    ok
  end

let () =
  let update = ref false and dir = ref "test/golden" in
  let rec parse_args = function
    | [] -> ()
    | "--update" :: rest ->
      update := true;
      parse_args rest
    | "--dir" :: d :: rest ->
      dir := d;
      parse_args rest
    | arg :: _ ->
      Printf.eprintf "golden_check: unknown argument %S\n" arg;
      exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let failures = ref 0 in
  List.iter
    (fun (name, run) ->
      let path = Filename.concat !dir (name ^ ".json") in
      (* isolate the process-global metrics registry so telemetry state
         cannot couple the experiments (or any future caller) *)
      let got = Wampde_obs.Metrics.with_isolated run in
      if !update then begin
        write_file path (json_of_experiment got);
        Printf.printf "wrote %s\n" path
      end
      else begin
        let reference =
          try parse_json (read_file path) with
          | Sys_error msg ->
            Printf.eprintf "golden_check: cannot read %s: %s (run with --update?)\n" path msg;
            exit 2
          | Parse_error msg ->
            Printf.eprintf "golden_check: %s: malformed golden file: %s\n" path msg;
            exit 2
        in
        List.iter
          (fun (qty_name, ref_q) ->
            match List.assoc_opt qty_name got with
            | None ->
              Printf.printf "FAIL %s/%s: quantity missing from run\n" name qty_name;
              incr failures
            | Some got_q ->
              if not (compare_quantity ~exp_name:name ~qty_name ref_q got_q.values) then
                incr failures)
          reference;
        List.iter
          (fun (qty_name, _) ->
            if not (List.mem_assoc qty_name reference) then begin
              Printf.printf "FAIL %s/%s: quantity missing from golden file (run --update?)\n"
                name qty_name;
              incr failures
            end)
          got
      end)
    experiments;
  if !failures > 0 then begin
    Printf.printf "golden check: %d quantit%s out of tolerance\n" !failures
      (if !failures = 1 then "y" else "ies");
    exit 1
  end
  else if not !update then print_endline "golden check: all quantities within tolerance"
