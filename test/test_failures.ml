(* Failure-injection tests: every solver must fail loudly and
   informatively, never return garbage silently. *)
open Linalg

let raises_failure f =
  try
    ignore (f ());
    false
  with Failure _ -> true

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

let check_failure name f = Alcotest.(check bool) name true (raises_failure f)
let check_invalid name f = Alcotest.(check bool) name true (raises_invalid f)

let tests =
  [
    Alcotest.test_case "floating node makes the circuit Jacobian singular" `Quick (fun () ->
        (* capacitor to nowhere: DC operating point has singular G *)
        let net = Circuit.Mna.create () in
        let a = Circuit.Mna.node net "a" in
        Circuit.Mna.add net (Circuit.Mna.capacitor ~label:"C" ~c:1. a Circuit.Mna.ground);
        let dae = Circuit.Mna.compile net in
        let report = Dae.dc_operating_point dae in
        Alcotest.(check bool) "not converged" false
          (report.Nonlin.Newton.converged
          && report.Nonlin.Newton.reason = Some Nonlin.Newton.Singular_jacobian));
    Alcotest.test_case "transient rejects bad steps" `Quick (fun () ->
        let dae = Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -.x.(0) |]) () in
        check_invalid "h <= 0" (fun () ->
            Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:1. ~h:0. [| 1. |]);
        check_invalid "t1 < t0" (fun () ->
            Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:1. ~t1:0. ~h:0.1 [| 1. |]));
    Alcotest.test_case "rk4 fails on algebraic constraints" `Quick (fun () ->
        (* singular dq/dx: q = 0 row *)
        let dae =
          Dae.make ~dim:1 ~q:(fun _ -> [| 0. |]) ~f:(fun ~t:_ x -> [| x.(0) -. 1. |]) ()
        in
        check_failure "consistent_derivative" (fun () ->
            Transient.integrate dae ~method_:Transient.Rk4 ~t0:0. ~t1:1. ~h:0.1 [| 0. |]));
    Alcotest.test_case "oscillator solver fails on a non-oscillating system" `Quick (fun () ->
        (* pure decay never crosses zero: warm-up finds too few cycles *)
        let decay = Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| -.x.(0) |]) () in
        Alcotest.(check bool) "find" true
          (try
             ignore (Steady.Oscillator.find decay ~n1:15 ~period_hint:1. [| 1. |]);
             false
           with Steady.Oscillator.Nonphysical _ -> true));
    Alcotest.test_case "envelope rejects mismatched init grid" `Quick (fun () ->
        let p = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let dae = Circuit.Vco.build p in
        let orbit =
          Steady.Oscillator.find dae ~n1:25 ~period_hint:1.333 (Circuit.Vco.initial_state p)
        in
        let options = Wampde.Envelope.default_options ~n1:31 () in
        check_invalid "n1 mismatch" (fun () ->
            Wampde.Envelope.simulate dae ~options ~t2_end:1. ~h2:0.5 ~init:orbit));
    Alcotest.test_case "envelope fails loudly when the step cannot converge" `Quick (fun () ->
        (* force Newton failure with an absurdly tight iteration budget *)
        let p = Circuit.Vco.vco_a () in
        let dae = Circuit.Vco.build p in
        let p0 = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
        let orbit =
          Steady.Oscillator.find (Circuit.Vco.build p0) ~n1:25 ~period_hint:1.333
            (Circuit.Vco.initial_state p0)
        in
        let options = Wampde.Envelope.default_options ~n1:25 () in
        let options =
          {
            options with
            Wampde.Envelope.newton =
              { options.Wampde.Envelope.newton with Nonlin.Newton.max_iterations = 1;
                Nonlin.Newton.residual_tol = 1e-15 };
          }
        in
        Alcotest.(check bool) "newton budget" true
          (try
             ignore (Wampde.Envelope.simulate dae ~options ~t2_end:20. ~h2:10. ~init:orbit);
             false
           with Wampde.Envelope.Step_failure { t2; h2; iterations; _ } ->
             t2 = 10. && h2 = 10. && iterations > 0));
    Alcotest.test_case "quasiperiodic rejects even grids" `Quick (fun () ->
        let p = Circuit.Vco.vco_a () in
        let dae = Circuit.Vco.build p in
        let options = Wampde.Envelope.default_options ~n1:25 () in
        let fake =
          {
            Wampde.Quasiperiodic.p2 = 40.;
            t2 = [| 0. |];
            omega = [| 0.75 |];
            slices = Array.make 10 (Array.make 25 (Array.make 4 0.));
          }
        in
        check_invalid "even n2" (fun () ->
            Wampde.Quasiperiodic.solve dae ~options ~p2:40. ~n2:10 ~guess:fake ()));
    Alcotest.test_case "warp rejects zero or negative rates" `Quick (fun () ->
        check_invalid "zero" (fun () ->
            Sigproc.Warp.of_samples ~times:[| 0.; 1. |] ~omega:[| 1.; 0. |]);
        check_failure "unwarp out of range" (fun () ->
            let w = Sigproc.Warp.of_function ~t0:0. ~t1:1. ~n:11 (fun _ -> 1.) in
            Sigproc.Warp.unwarp w 5.));
    Alcotest.test_case "gmres reports non-convergence honestly" `Quick (fun () ->
        (* one iteration budget on a hard system *)
        let n = 30 in
        let a = Mat.init n n (fun i j -> 1. /. (1. +. float_of_int (abs (i - j)))) in
        let b = Vec.init n (fun i -> float_of_int (i mod 2)) in
        let r = Gmres.solve ~matvec:(fun v -> Mat.matvec a v) ~restart:2 ~max_iter:2 ~tol:1e-14 b in
        Alcotest.(check bool) "flagged" false r.Gmres.converged);
    Alcotest.test_case "continuation reports step underflow" `Quick (fun () ->
        (* F(x, lambda) = x^2 + lambda has no real roots past lambda = 0 *)
        let residual lambda x = [| (x.(0) *. x.(0)) +. lambda |] in
        Alcotest.(check bool) "no branch" true
          (try
             ignore (Nonlin.Continuation.solve_at ~residual ~from_:(-1.) ~to_:1. [| 1. |]);
             false
           with Nonlin.Continuation.Step_underflow { lambda; step; last = _ } ->
             lambda < 1. && step > 0.));
    Alcotest.test_case "parser failures carry context" `Quick (fun () ->
        Alcotest.(check bool) "line 3" true
          (try
             ignore
               (Circuit.Parser.parse_string "R1 a 0 1\nC1 a 0 1n\nL1 a\n");
             false
           with Circuit.Parser.Parse_error { line = 3; _ } -> true));
    Alcotest.test_case "lu surfaces singularity, not garbage" `Quick (fun () ->
        let singular = [| [| 1.; 2.; 3. |]; [| 2.; 4.; 6. |]; [| 0.; 1.; 1. |] |] in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Lu.factor singular);
             false
           with Lu.Singular _ -> true));
  ]

let suites = [ ("failure_injection", tests) ]
