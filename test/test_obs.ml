(* Telemetry tests: metrics arithmetic, span nesting, event dispatch,
   the allocation-free disabled path, and end-to-end solver coverage. *)
module Obs = Wampde_obs

(* Every test runs against a zeroed, disabled registry and restores
   the previous metric values on exit, so telemetry state cannot leak
   across tests or suites regardless of execution order. *)
let with_clean f () =
  Obs.Metrics.with_isolated (fun () ->
      Obs.set_enabled false;
      f ())

let tests =
  [
    Alcotest.test_case "counter and gauge arithmetic" `Quick
      (with_clean (fun () ->
           let c = Obs.Metrics.counter "test.counter" in
           let g = Obs.Metrics.gauge "test.gauge" in
           (* disabled: updates are dropped *)
           Obs.Metrics.incr c;
           Obs.Metrics.set g 3.5;
           Alcotest.(check int) "disabled counter" 0 (Obs.Metrics.count c);
           Alcotest.(check (float 0.)) "disabled gauge" 0. (Obs.Metrics.value g);
           Obs.set_enabled true;
           Obs.Metrics.incr c;
           Obs.Metrics.add c 4;
           Obs.Metrics.set g 3.5;
           Alcotest.(check int) "enabled counter" 5 (Obs.Metrics.count c);
           Alcotest.(check (float 0.)) "enabled gauge" 3.5 (Obs.Metrics.value g);
           (* re-registration returns the same cell *)
           Obs.Metrics.incr (Obs.Metrics.counter "test.counter");
           Alcotest.(check int) "same cell" 6 (Obs.Metrics.count c);
           (* kind mismatch is rejected *)
           Alcotest.check_raises "kind mismatch"
             (Invalid_argument "Wampde_obs.Metrics.gauge: test.counter is not a gauge")
             (fun () -> ignore (Obs.Metrics.gauge "test.counter"));
           Obs.Metrics.reset ();
           Alcotest.(check int) "reset" 0 (Obs.Metrics.count c)));
    Alcotest.test_case "histogram statistics" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           let h = Obs.Metrics.histogram "test.hist" in
           List.iter (Obs.Metrics.observe h) [ 1.; 2.; 4.; 8. ];
           let s = Obs.Metrics.stats h in
           Alcotest.(check int) "count" 4 s.Obs.Metrics.count;
           Alcotest.(check (float 1e-12)) "sum" 15. s.Obs.Metrics.sum;
           Alcotest.(check (float 1e-12)) "min" 1. s.Obs.Metrics.min;
           Alcotest.(check (float 1e-12)) "max" 8. s.Obs.Metrics.max;
           Alcotest.(check (float 1e-12)) "mean" 3.75 s.Obs.Metrics.mean;
           Alcotest.(check bool) "log buckets separate powers of two" true
             (List.length s.Obs.Metrics.buckets = 4);
           List.iter
             (fun (lo, hi, n) ->
               Alcotest.(check int) "one observation per bucket" 1 n;
               Alcotest.(check bool) "bucket bounds ordered" true (lo < hi))
             s.Obs.Metrics.buckets));
    Alcotest.test_case "span nesting, parent ids and tree summary" `Quick
      (with_clean (fun () ->
           Obs.Span.start_recording ();
           let result =
             Obs.Span.span ~attrs:[ ("dim", Obs.Span.Int 4) ] "outer" @@ fun () ->
             Obs.Span.span "inner" (fun () -> 41) + 1
           in
           let records = Obs.Span.stop_recording () in
           Alcotest.(check int) "thunk result" 42 result;
           Alcotest.(check int) "two spans" 2 (List.length records);
           (* completion order: inner closes first *)
           let inner = List.nth records 0 and outer = List.nth records 1 in
           Alcotest.(check string) "inner name" "inner" inner.Obs.Span.name;
           Alcotest.(check string) "outer name" "outer" outer.Obs.Span.name;
           Alcotest.(check bool) "outer is root" true (outer.Obs.Span.parent = None);
           Alcotest.(check bool) "inner parented to outer" true
             (inner.Obs.Span.parent = Some outer.Obs.Span.id);
           Alcotest.(check bool) "timestamps nest" true
             (outer.Obs.Span.t_start <= inner.Obs.Span.t_start
             && inner.Obs.Span.t_stop <= outer.Obs.Span.t_stop);
           let summary = Obs.Span.tree_summary records in
           let contains needle =
             try ignore (Str.search_forward (Str.regexp_string needle) summary 0); true
             with Not_found -> false
           in
           Alcotest.(check bool) "summary lists both spans" true
             (contains "outer" && contains "inner")));
    Alcotest.test_case "span writer emits JSON lines" `Quick
      (with_clean (fun () ->
           let buf = Buffer.create 256 in
           Obs.Span.set_writer (Some (fun line -> Buffer.add_string buf line; Buffer.add_char buf '\n'));
           Obs.Span.span "written" (fun () -> ());
           Obs.Span.set_writer None;
           let out = Buffer.contents buf in
           let lines = String.split_on_char '\n' (String.trim out) in
           Alcotest.(check int) "start and stop lines" 2 (List.length lines);
           List.iter
             (fun line ->
               Alcotest.(check bool) "line is a JSON object" true
                 (String.length line > 1 && line.[0] = '{'
                 && line.[String.length line - 1] = '}'))
             lines;
           let contains needle hay =
             try ignore (Str.search_forward (Str.regexp_string needle) hay 0); true
             with Not_found -> false
           in
           Alcotest.(check bool) "span_start present" true
             (contains "\"type\":\"span_start\"" out);
           Alcotest.(check bool) "span_stop present" true
             (contains "\"type\":\"span_stop\"" out);
           Alcotest.(check bool) "name serialized" true (contains "\"written\"" out)));
    Alcotest.test_case "event subscribers dispatch in order" `Quick
      (with_clean (fun () ->
           Obs.set_enabled true;
           let seen = ref [] in
           let s1 = Obs.Events.subscribe (fun _ -> seen := "first" :: !seen) in
           let s2 = Obs.Events.subscribe (fun _ -> seen := "second" :: !seen) in
           Alcotest.(check bool) "active with subscribers" true (Obs.Events.active ());
           Obs.Events.emit (Obs.Events.Lu_factor { n = 3 });
           Alcotest.(check (list string)) "subscription order" [ "first"; "second" ]
             (List.rev !seen);
           Obs.Events.unsubscribe s1;
           seen := [];
           Obs.Events.emit (Obs.Events.Step_accept { t = 1.; h = 0.5 });
           Alcotest.(check (list string)) "after unsubscribe" [ "second" ] (List.rev !seen);
           Obs.Events.unsubscribe s2;
           Alcotest.(check bool) "inactive without subscribers" false (Obs.Events.active ())));
    Alcotest.test_case "disabled event path allocates nothing" `Quick
      (with_clean (fun () ->
           (* the whole point of the [active ()] guard: with telemetry off,
              a hot loop over an instrumented call site must not build
              event records *)
           let w0 = Gc.minor_words () in
           for k = 0 to 9_999 do
             if Obs.Events.active () then
               Obs.Events.emit
                 (Obs.Events.Newton_iter
                    { solver = "guard"; k; residual = 1e-3; damping = 1. })
           done;
           let dw = Gc.minor_words () -. w0 in
           Alcotest.(check bool)
             (Printf.sprintf "minor words allocated = %.0f" dw)
             true (dw < 256.)));
    Alcotest.test_case "theta step raises a typed Step_failure" `Quick
      (with_clean (fun () ->
           (* x = c (1 + x^2) with huge c has no real solution, so the
              implicit step can never converge *)
           let dae =
             Dae.of_ode ~dim:1 ~rhs:(fun ~t:_ x -> [| 1e30 *. (1. +. (x.(0) *. x.(0))) |]) ()
           in
           match Transient.theta_step dae ~theta:0.5 ~t:0. ~h:1. [| 0. |] with
           | _ -> Alcotest.fail "expected Step_failure"
           | exception Transient.Step_failure fr ->
             Alcotest.(check (float 0.)) "failure time" 0. fr.Transient.t;
             Alcotest.(check (float 0.)) "failure step" 1. fr.Transient.h;
             Alcotest.(check bool) "iterations recorded" true (fr.Transient.iterations >= 0);
             Alcotest.(check bool) "residual recorded" true
               (Float.is_finite fr.Transient.residual_norm
               && fr.Transient.residual_norm > 0.);
             Alcotest.(check bool) "reason is descriptive" true
               (String.length (Transient.reason_string fr.Transient.reason) > 0
               && fr.Transient.reason <> None)));
    Alcotest.test_case "envelope run records solver work" `Slow
      (with_clean (fun () ->
           let p0 = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
           let orbit =
             Steady.Oscillator.find (Circuit.Vco.build p0) ~n1:15 ~period_hint:1.333
               (Circuit.Vco.initial_state p0)
           in
           let dae = Circuit.Vco.build (Circuit.Vco.vco_a ()) in
           let options = Wampde.Envelope.default_options ~n1:15 () in
           Obs.set_enabled true;
           Obs.Metrics.reset ();
           let accepts = ref 0 and phases = ref 0 in
           let sub =
             Obs.Events.subscribe (function
               | Obs.Events.Step_accept _ -> incr accepts
               | Obs.Events.Phase_condition { omega; t2 = _ } ->
                 incr phases;
                 Alcotest.(check bool) "physical frequency" true (omega > 0.)
               | _ -> ())
           in
           let res =
             Fun.protect
               ~finally:(fun () -> Obs.Events.unsubscribe sub)
               (fun () ->
                 Wampde.Envelope.simulate dae ~options ~t2_end:2. ~h2:0.5 ~init:orbit)
           in
           let count name = Obs.Metrics.count (Obs.Metrics.counter name) in
           Alcotest.(check bool) "newton iterations counted" true (count "newton.iterations" > 0);
           Alcotest.(check bool) "lu factorizations counted" true (count "lu.factor" > 0);
           Alcotest.(check int) "one accept event per slow step"
             (Array.length res.Wampde.Envelope.t2 - 1)
             !accepts;
           Alcotest.(check int) "one phase event per slow step" !accepts !phases;
           let json = Obs.Metrics.to_json () in
           Alcotest.(check bool) "metrics serialize" true
             (try
                ignore (Str.search_forward (Str.regexp_string "\"newton.iterations\"") json 0);
                true
              with Not_found -> false)));
  ]

let suites = [ ("obs", tests) ]
