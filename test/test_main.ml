let () =
  Alcotest.run "wampde"
    (Test_linalg.suites @ Test_fourier.suites @ Test_nonlin.suites @ Test_transient.suites
   @ Test_circuit.suites @ Test_sigproc.suites @ Test_steady.suites @ Test_mpde.suites
   @ Test_wampde.suites @ Test_extras.suites @ Test_parser.suites @ Test_failures.suites @ Test_apps.suites @ Test_hb.suites @ Test_api_coverage.suites @ Test_obs.suites
   @ Test_structured.suites @ Test_step_control.suites @ Test_checkpoint.suites
   @ Test_diag.suites @ Test_globalize.suites @ Test_fault.suites @ Test_health.suites
   @ Test_par.suites @ Test_serve.suites @ Test_flight.suites @ Test_history.suites)
