(* The serve subsystem: NDJSON protocol totality, round-robin
   scheduling with bit-exact preemption, warm caches, and typed
   termination of every accepted job — including under fault storms. *)

module Obs = Wampde_obs
module Json = Obs.Json
module Protocol = Serve.Protocol
module Server = Serve.Server
module Scheduler = Serve.Scheduler
module Journal = Serve.Journal
module Supervisor = Serve.Supervisor

(* ---------- helpers ---------- *)

let spool_counter = ref 0

let fresh_spool () =
  incr spool_counter;
  Printf.sprintf "serve-test-spool-%d" !spool_counter

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  end

(* Run an in-memory server session over [lines]; returns the exit code
   and every response line.  EOF after the last line triggers the
   drain path, exactly like a scripted stdin batch.  [spool] keeps the
   session on an existing spool (and skips its cleanup) so tests can
   chain crashed and restarted daemons. *)
let run_server ?(quantum = 2) ?(cache = 0) ?max_retries ?retry_base_s ?stall_timeout_s
    ?breaker_threshold ?breaker_cooldown_s ?stop_requested ?spool ?(log = fun _ -> ()) lines =
  let input = ref lines in
  let read ~block:_ =
    match !input with
    | [] -> `Eof
    | l :: tl ->
      input := tl;
      `Line l
  in
  let out = ref [] in
  let spool, cleanup = match spool with Some s -> (s, false) | None -> (fresh_spool (), true) in
  let code =
    Server.run
      (Server.default_config ~quantum ~spool ~cache ?max_retries ?retry_base_s ?stall_timeout_s
         ?breaker_threshold ?breaker_cooldown_s ?stop_requested ())
      ~read
      ~write:(fun l -> out := l :: !out)
      ~log
  in
  if cleanup then rm_rf spool;
  (code, List.rev !out)

let records_of lines = List.map Json.parse_exn lines

let typ j = Option.bind (Json.member "type" j) Json.to_str |> Option.value ~default:""
let str k j = Option.bind (Json.member k j) Json.to_str
let num k j = Option.bind (Json.member k j) Json.to_num

let terminals_for id records =
  List.filter
    (fun j -> (typ j = "result" || typ j = "job-error") && str "id" j = Some id)
    records

let tiny_envelope ?(id = "e") ?(circuit = "vco-a") ?(solver = "auto") ?deadline_ms () =
  let deadline =
    match deadline_ms with
    | None -> ""
    | Some ms -> Printf.sprintf ",\"deadline_ms\":%g" ms
  in
  Printf.sprintf
    "{\"type\":\"job\",\"id\":\"%s\",\"circuit\":\"%s\",\"analysis\":\"envelope\",\"t_end\":1.5,\"rtol\":1e-3,\"n1\":15,\"solver\":\"%s\"%s}"
    id circuit solver deadline

(* ---------- protocol parsing ---------- *)

let check_error expected line =
  match Protocol.parse_request line with
  | Error { code; _ } -> Alcotest.(check string) line expected code
  | Ok _ -> Alcotest.failf "expected %s error for %s" expected line

let protocol_tests =
  [
    Alcotest.test_case "job request parses with defaults" `Quick (fun () ->
        match Protocol.parse_request (tiny_envelope ~id:"j1" ()) with
        | Ok (Protocol.Submit { id; circuit; analysis = Protocol.Envelope p; deadline_ms = None }) ->
          Alcotest.(check string) "id" "j1" id;
          Alcotest.(check string) "circuit" "vco-a" circuit;
          Alcotest.(check int) "n1" 15 p.n1;
          Alcotest.(check bool) "h2 defaulted" true (p.h2 = None);
          Alcotest.(check (float 1e-12)) "rtol" 1e-3 p.rtol
        | Ok _ -> Alcotest.fail "wrong request"
        | Error { message; _ } -> Alcotest.fail message);
    Alcotest.test_case "quasi request parses with defaults" `Quick (fun () ->
        match
          Protocol.parse_request
            "{\"type\":\"job\",\"id\":\"q\",\"circuit\":\"vco-a\",\"analysis\":\"quasiperiodic\",\"n2\":7}"
        with
        | Ok (Protocol.Submit { analysis = Protocol.Quasiperiodic p; _ }) ->
          Alcotest.(check int) "n2" 7 p.n2;
          Alcotest.(check (float 1e-12)) "p2 default" 40. p.p2;
          Alcotest.(check (float 1e-12)) "t_warm default" 200. p.t_warm
        | Ok _ -> Alcotest.fail "wrong request"
        | Error { message; _ } -> Alcotest.fail message);
    Alcotest.test_case "control requests parse" `Quick (fun () ->
        (match Protocol.parse_request "{\"type\":\"cancel\",\"id\":\"x\"}" with
        | Ok (Protocol.Cancel "x") -> ()
        | _ -> Alcotest.fail "cancel");
        (match Protocol.parse_request "{\"type\":\"metrics\"}" with
        | Ok Protocol.Metrics -> ()
        | _ -> Alcotest.fail "metrics");
        (match Protocol.parse_request "{\"type\":\"stats\"}" with
        | Ok Protocol.Stats -> ()
        | _ -> Alcotest.fail "stats");
        match Protocol.parse_request "{\"type\":\"shutdown\",\"drain\":false}" with
        | Ok (Protocol.Shutdown { drain = false }) -> ()
        | _ -> Alcotest.fail "shutdown");
    Alcotest.test_case "malformed lines give typed codes" `Quick (fun () ->
        check_error "bad-json" "{not json";
        check_error "not-object" "[1,2,3]";
        check_error "missing-type" "{\"id\":\"x\"}";
        check_error "unknown-type" "{\"type\":\"frobnicate\"}";
        check_error "missing-field"
          "{\"type\":\"job\",\"circuit\":\"vco-a\",\"analysis\":\"envelope\",\"t_end\":1}";
        check_error "bad-id"
          "{\"type\":\"job\",\"id\":\"a b!\",\"circuit\":\"vco-a\",\"analysis\":\"envelope\",\"t_end\":1}";
        check_error "bad-value"
          "{\"type\":\"job\",\"id\":\"x\",\"circuit\":\"vco-a\",\"analysis\":\"envelope\",\"t_end\":1,\"n1\":16}";
        check_error "bad-value"
          "{\"type\":\"job\",\"id\":\"x\",\"circuit\":\"vco-a\",\"analysis\":\"envelope\",\"t_end\":-2}";
        check_error "bad-field"
          "{\"type\":\"job\",\"id\":\"x\",\"circuit\":\"vco-a\",\"analysis\":\"envelope\",\"t_end\":\"ten\"}");
  ]

(* ---------- stats ---------- *)

let member_path path j =
  List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j) path

let stats_tests =
  [
    Alcotest.test_case "job_error carries the flight dump path only when given" `Quick
      (fun () ->
        let with_dump =
          Json.parse_exn
            (Protocol.job_error ~flight:"spool/x.flight.json" ~id:"x" ~kind:"step-failure"
               ~message:"m" ~quanta:3 ())
        in
        Alcotest.(check (option string)) "flight path embedded" (Some "spool/x.flight.json")
          (str "flight" with_dump);
        let plain = Json.parse_exn (Protocol.job_error ~id:"x" ~kind:"k" ~message:"m" ~quanta:1 ()) in
        Alcotest.(check (option string)) "absent without a dump" None (str "flight" plain));
    Alcotest.test_case "stats_line groups counters by subsystem" `Quick (fun () ->
        let j =
          Json.parse_exn
            (Protocol.stats_line
               ~counters:
                 [
                   ("cache.orbit.hits", 3);
                   ("cache.precond.misses", 2);
                   ("health.warnings", 2);
                   ("health.warnings.newton_stall", 2);
                   ("pool.chunks", 5);
                   ("serve.jobs.completed", 4);
                   ("unrelated.counter", 9);
                 ]
               ~gauges:[ ("pool.balance", 0.75) ]
               ~breakers:[ ("vco-a/envelope", "open") ]
               ())
        in
        Alcotest.(check string) "type" "stats" (typ j);
        let n path = Option.bind (member_path path j) Json.to_num in
        Alcotest.(check (option (float 0.))) "orbit hits" (Some 3.) (n [ "cache"; "orbit"; "hits" ]);
        Alcotest.(check (option (float 0.))) "precond misses" (Some 2.)
          (n [ "cache"; "precond"; "misses" ]);
        Alcotest.(check (option (float 0.))) "pool counter" (Some 5.) (n [ "pool"; "chunks" ]);
        Alcotest.(check (option (float 1e-12))) "pool gauge" (Some 0.75) (n [ "pool"; "balance" ]);
        Alcotest.(check (option (float 0.))) "health total" (Some 2.) (n [ "health"; "warnings" ]);
        Alcotest.(check (option (float 0.))) "per-monitor breakdown" (Some 2.)
          (n [ "health"; "monitors"; "newton_stall" ]);
        Alcotest.(check (option (float 0.))) "scheduler counters" (Some 4.)
          (n [ "serve"; "jobs.completed" ]);
        Alcotest.(check (option (float 0.))) "ungrouped counters stay out" None
          (n [ "unrelated"; "counter" ]));
    Alcotest.test_case "server answers stats with the grouped snapshot" `Quick (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        let code, out =
          run_server ~quantum:2
            [
              tiny_envelope ~id:"st" ();
              "{\"type\":\"stats\"}";
              "{\"type\":\"shutdown\",\"drain\":true}";
            ]
        in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of out in
        match List.filter (fun j -> typ j = "stats") records with
        | [ s ] ->
          List.iter
            (fun group ->
              Alcotest.(check bool) (group ^ " group present") true
                (Json.member group s <> None))
            [ "cache"; "pool"; "health"; "serve" ];
          Alcotest.(check bool) "serve group saw the submission" true
            (match member_path [ "serve"; "jobs.submitted" ] s with
             | Some _ -> true
             | None -> false)
        | l -> Alcotest.failf "expected one stats record, got %d" (List.length l));
  ]

(* ---------- protocol fuzz ---------- *)

let valid_lines =
  [
    tiny_envelope ~id:"f.uzz-1" ();
    "{\"type\":\"job\",\"id\":\"q\",\"circuit\":\"vco-a\",\"analysis\":\"quasiperiodic\",\"n1\":15,\"n2\":7}";
    "{\"type\":\"cancel\",\"id\":\"f.uzz-1\"}";
    "{\"type\":\"metrics\"}";
    "{\"type\":\"shutdown\",\"drain\":true}";
  ]

(* Garbage that looks almost like protocol traffic: valid requests
   truncated, spliced together, or peppered with random bytes. *)
let mangled_gen =
  QCheck.Gen.(
    let base = oneofl valid_lines in
    let mangle =
      oneof
        [
          (* truncate *)
          (base >>= fun s -> int_bound (String.length s) >|= fun n -> String.sub s 0 n);
          (* splice two requests on one line *)
          (base >>= fun a -> base >|= fun b -> a ^ b);
          (* random byte injection *)
          ( base >>= fun s ->
            int_bound (max 0 (String.length s - 1)) >>= fun i ->
            char >|= fun c ->
            let b = Bytes.of_string s in
            Bytes.set b i c;
            Bytes.to_string b );
          (* arbitrary printable noise *)
          string_size ~gen:printable (int_bound 80);
        ]
    in
    mangle)

let fuzz_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:500 ~name:"parser is total on mangled input"
         (QCheck.make mangled_gen) (fun line ->
           match Protocol.parse_request line with
           | Ok _ -> true
           | Error { code; message } -> code <> "" && message <> ""
           | exception e ->
             QCheck.Test.fail_reportf "parse_request raised %s on %S" (Printexc.to_string e) line));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:8 ~name:"server survives garbage and keeps serving"
         (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 5) mangled_gen))
         (fun garbage ->
           (* drop mangled lines that still parse as requests — this
              case wants pure garbage followed by a valid job *)
           (* blank lines are ignored (no error response), so drop
              those too *)
           let garbage =
             List.filter
               (fun l -> String.trim l <> "" && Result.is_error (Protocol.parse_request l))
               garbage
           in
           let code, out =
             run_server (garbage @ [ tiny_envelope ~id:"after-garbage" () ])
           in
           let records = records_of out in
           let errors = List.filter (fun j -> typ j = "error") records in
           code = 0
           && List.length errors = List.length garbage
           && List.exists (fun j -> typ j = "result") (terminals_for "after-garbage" records)));
  ]

(* ---------- end-to-end scheduling ---------- *)

let scheduling_tests =
  [
    Alcotest.test_case "two jobs interleave and both finish valid manifests" `Slow (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        let code, out =
          run_server ~quantum:2
            [
              tiny_envelope ~id:"rr1" ();
              tiny_envelope ~id:"rr2" ();
              "{\"type\":\"shutdown\",\"drain\":true}";
            ]
        in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of out in
        List.iter
          (fun id ->
            match terminals_for id records with
            | [ r ] ->
              Alcotest.(check string) "terminal kind" "result" (typ r);
              Alcotest.(check bool) "preempted at least once" true
                (match num "preemptions" r with Some p -> p >= 1. | None -> false);
              (* the embedded manifest must be a valid run report *)
              let m =
                match Json.member "manifest" r with
                | Some m -> m
                | None -> Alcotest.fail "result without manifest"
              in
              let schema = Option.bind (Json.member "schema" m) Json.to_str in
              Alcotest.(check (option string)) "manifest schema"
                (Some "wampde.run-report/1") schema
            | l -> Alcotest.failf "%s: %d terminal records" id (List.length l))
          [ "rr1"; "rr2" ];
        (* the two jobs' stream records interleave: rr2 starts before
           rr1 finishes *)
        let order =
          List.filter_map
            (fun j ->
              match (typ j, str "job" j) with
              | ("start" | "done"), Some job -> Some (typ j ^ ":" ^ job)
              | _ -> None)
            records
        in
        let pos x = ref (-1) |> fun r ->
          List.iteri (fun i e -> if e = x && !r < 0 then r := i) order;
          !r
        in
        Alcotest.(check bool) "rr2 starts before rr1 is done" true
          (pos "start:rr2" < pos "done:rr1"));
    Alcotest.test_case "preempted results match an unpreempted run bitwise" `Slow (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        let final_omega quantum =
          let _, out =
            run_server ~quantum
              [ tiny_envelope ~id:"bit" (); "{\"type\":\"shutdown\",\"drain\":true}" ]
          in
          let records = records_of out in
          match terminals_for "bit" records with
          | [ r ] when typ r = "result" -> (num "omega_end" r, num "preemptions" r)
          | _ -> Alcotest.fail "no result"
        in
        let omega_sliced, pre_sliced = final_omega 1 in
        let omega_whole, pre_whole = final_omega 1_000_000 in
        Alcotest.(check bool) "sliced run was preempted" true (pre_sliced >= Some 1.);
        Alcotest.(check (option (float 0.))) "preemption count differs" (Some 0.) pre_whole;
        (* %.10g round-trips through the protocol: bitwise equality of
           the printed values is exact equality at that precision *)
        Alcotest.(check (option (float 0.))) "omega_end identical" omega_whole omega_sliced);
    Alcotest.test_case "cancel terminates a queued job with a typed error" `Quick (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        let code, out =
          run_server ~quantum:2
            [
              tiny_envelope ~id:"keep" ();
              tiny_envelope ~id:"drop" ();
              "{\"type\":\"cancel\",\"id\":\"drop\"}";
              "{\"type\":\"cancel\",\"id\":\"no-such\"}";
              "{\"type\":\"shutdown\",\"drain\":true}";
            ]
        in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of out in
        (match terminals_for "drop" records with
        | [ r ] ->
          Alcotest.(check string) "kind" "job-error" (typ r);
          Alcotest.(check (option string)) "cancelled" (Some "cancelled") (str "kind" r)
        | l -> Alcotest.failf "drop: %d terminals" (List.length l));
        (match terminals_for "keep" records with
        | [ r ] -> Alcotest.(check string) "keep completes" "result" (typ r)
        | l -> Alcotest.failf "keep: %d terminals" (List.length l));
        Alcotest.(check bool) "unknown cancel errors" true
          (List.exists
             (fun j -> typ j = "error" && str "code" j = Some "unknown-id")
             records));
    Alcotest.test_case "non-drain shutdown aborts queued jobs" `Quick (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        let code, out =
          run_server ~quantum:2
            [ tiny_envelope ~id:"ab1" (); "{\"type\":\"shutdown\",\"drain\":false}" ]
        in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of out in
        match terminals_for "ab1" records with
        | [ r ] ->
          Alcotest.(check string) "kind" "job-error" (typ r);
          Alcotest.(check (option string)) "aborted" (Some "aborted") (str "kind" r)
        | l -> Alcotest.failf "ab1: %d terminals" (List.length l));
    Alcotest.test_case "duplicate and unknown submissions are rejected" `Quick (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        let code, out =
          run_server ~quantum:2
            [
              tiny_envelope ~id:"dup" ();
              tiny_envelope ~id:"dup" ();
              tiny_envelope ~id:"mars" ~circuit:"vco-mars" ();
              "{\"type\":\"shutdown\",\"drain\":true}";
            ]
        in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of out in
        let code_of c = List.exists (fun j -> typ j = "error" && str "code" j = Some c) records in
        Alcotest.(check bool) "duplicate-id" true (code_of "duplicate-id");
        Alcotest.(check bool) "unknown-circuit" true (code_of "unknown-circuit");
        Alcotest.(check int) "dup ran once" 1 (List.length (terminals_for "dup" records)));
  ]

(* ---------- warm caches ---------- *)

let cache_tests =
  [
    Alcotest.test_case "repeated krylov jobs hit the preconditioner cache" `Slow (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        let code, out =
          run_server ~quantum:4 ~cache:32
            [
              tiny_envelope ~id:"warm1" ~solver:"krylov" ();
              tiny_envelope ~id:"warm2" ~solver:"krylov" ();
              "{\"type\":\"shutdown\",\"drain\":true}";
            ]
        in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of out in
        List.iter
          (fun id ->
            match terminals_for id records with
            | [ r ] -> Alcotest.(check string) (id ^ " result") "result" (typ r)
            | l -> Alcotest.failf "%s: %d terminals" id (List.length l))
          [ "warm1"; "warm2" ];
        let counters = Obs.Metrics.counters () in
        let count name = Option.value ~default:0 (List.assoc_opt name counters) in
        Alcotest.(check bool) "precond hits > 0" true (count "cache.precond.hits" > 0);
        Alcotest.(check bool) "orbit hits > 0" true (count "cache.orbit.hits" > 0);
        (* capacity restored after the session: golden runs stay uncached *)
        Alcotest.(check bool) "cache disabled after run" true
          (not (Linalg.Structured.Precond_cache.enabled ())));
  ]

(* ---------- fault storms ---------- *)

let fault_tests =
  [
    Alcotest.test_case "seeded fault storm: every job ends typed, daemon exits 0" `Slow
      (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        Fault.with_armed "linsolve%0.05,nan%0.02,ckpt-trunc%0.2,seed=11" @@ fun () ->
        let ids = [ "s1"; "s2"; "s3" ] in
        let code, out =
          run_server ~quantum:2
            (List.map (fun id -> tiny_envelope ~id ()) ids
            @ [ "{\"type\":\"shutdown\",\"drain\":true}" ])
        in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of out in
        List.iter
          (fun id ->
            match terminals_for id records with
            | [ r ] ->
              let t = typ r in
              Alcotest.(check bool)
                (id ^ " terminal is result or typed job-error")
                true
                (t = "result" || (t = "job-error" && str "kind" r <> None))
            | l -> Alcotest.failf "%s: %d terminal records" id (List.length l))
          ids;
        Alcotest.(check bool) "bye record present" true
          (List.exists (fun j -> typ j = "bye") records));
    Alcotest.test_case "failing job attaches a flight dump in the spool" `Quick (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        Fault.with_armed "nan%1,seed=3" @@ fun () ->
        (* keep the spool alive until the dump has been inspected, so
           run the session inline instead of via run_server *)
        let input =
          ref [ tiny_envelope ~id:"fd1" (); "{\"type\":\"shutdown\",\"drain\":true}" ]
        in
        let read ~block:_ =
          match !input with
          | [] -> `Eof
          | l :: tl ->
            input := tl;
            `Line l
        in
        let out = ref [] in
        let spool = fresh_spool () in
        Fun.protect ~finally:(fun () -> rm_rf spool) @@ fun () ->
        let code =
          Server.run
            (Server.default_config ~quantum:2 ~spool ~cache:0 ())
            ~read
            ~write:(fun l -> out := l :: !out)
            ~log:(fun _ -> ())
        in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of (List.rev !out) in
        match terminals_for "fd1" records with
        | [ r ] ->
          Alcotest.(check string) "typed failure" "job-error" (typ r);
          (match str "flight" r with
          | Some p ->
            Alcotest.(check bool) "per-job dump name" true (Filename.check_suffix p ".flight.json");
            Alcotest.(check bool) "dump file exists" true (Sys.file_exists p);
            let ic = open_in_bin p in
            let contents =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            (match Obs.Flight.to_postmortem contents with
            | Ok text ->
              Alcotest.(check bool) "postmortem names the serve analysis" true
                (let sub = "serve:envelope" in
                 let n = String.length sub in
                 let rec go i =
                   i + n <= String.length text && (String.sub text i n = sub || go (i + 1))
                 in
                 go 0)
            | Error m -> Alcotest.failf "postmortem failed: %s" m)
          | None -> Alcotest.fail "job-error without a flight path")
        | l -> Alcotest.failf "fd1: %d terminal records" (List.length l));
  ]

(* ---------- job journal ---------- *)

let with_spool f =
  let spool = fresh_spool () in
  Unix.mkdir spool 0o755;
  Fun.protect ~finally:(fun () -> rm_rf spool) (fun () -> f spool)

let contains_sub sub text =
  let n = String.length sub in
  let rec go i = i + n <= String.length text && (String.sub text i n = sub || go (i + 1)) in
  go 0

let journal_tests =
  [
    Alcotest.test_case "journal round-trips transitions and finds orphans" `Quick (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        with_spool @@ fun spool ->
        let j = Journal.open_ ~spool in
        let put id state attempt = Journal.append j { Journal.id; state; attempt } in
        put "j1" (Journal.Accepted { request = "{\"r\":1}" }) 1;
        put "j2" (Journal.Accepted { request = "{\"r\":2}" }) 1;
        put "j1" Journal.Running 1;
        put "j1" Journal.Checkpointed 1;
        put "j2" Journal.Running 1;
        put "j2" Journal.Done 1;
        put "j3" (Journal.Accepted { request = "{\"r\":3}" }) 1;
        put "j3" Journal.Running 1;
        put "j3" (Journal.Error { kind = "nan" }) 2;
        Journal.close j;
        let records, warnings = Journal.replay ~spool in
        Alcotest.(check int) "no warnings" 0 (List.length warnings);
        Alcotest.(check int) "all frames replayed" 9 (List.length records);
        match Journal.orphans records with
        | [ o ] ->
          Alcotest.(check string) "orphan id" "j1" o.Journal.id;
          Alcotest.(check string) "request preserved verbatim" "{\"r\":1}" o.Journal.request;
          Alcotest.(check string) "last state" "checkpointed" (Journal.state_name o.Journal.last)
        | l -> Alcotest.failf "%d orphans" (List.length l));
    Alcotest.test_case "a torn tail frame is dropped with a warning" `Quick (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        with_spool @@ fun spool ->
        let j = Journal.open_ ~spool in
        Journal.append j { Journal.id = "a"; state = Journal.Accepted { request = "{}" }; attempt = 1 };
        Journal.append j { Journal.id = "a"; state = Journal.Running; attempt = 1 };
        Journal.close j;
        let p = Journal.path ~spool in
        Unix.truncate p ((Unix.stat p).Unix.st_size - 3);
        let records, warnings = Journal.replay ~spool in
        Alcotest.(check int) "one surviving record" 1 (List.length records);
        Alcotest.(check bool) "tail warning" true (warnings <> []);
        (* the torn transition is gone but the job is still recoverable *)
        match Journal.orphans records with
        | [ o ] -> Alcotest.(check string) "orphan survives" "a" o.Journal.id
        | l -> Alcotest.failf "%d orphans" (List.length l));
    Alcotest.test_case "a corrupted tail frame fails its CRC and is dropped" `Quick (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        with_spool @@ fun spool ->
        let j = Journal.open_ ~spool in
        Journal.append j { Journal.id = "a"; state = Journal.Accepted { request = "{}" }; attempt = 1 };
        Journal.append j { Journal.id = "a"; state = Journal.Done; attempt = 1 };
        Journal.close j;
        let p = Journal.path ~spool in
        let ic = open_in_bin p in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let b = Bytes.of_string s in
        let last = Bytes.length b - 1 in
        Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xff));
        let oc = open_out_bin p in
        output_bytes oc b;
        close_out oc;
        let records, warnings = Journal.replay ~spool in
        Alcotest.(check int) "only the intact frame" 1 (List.length records);
        Alcotest.(check bool) "CRC warning" true (warnings <> []));
    Alcotest.test_case "journal-trunc fault tears an append like a crash" `Quick (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        Fault.with_armed "journal-trunc@2" @@ fun () ->
        with_spool @@ fun spool ->
        let j = Journal.open_ ~spool in
        Journal.append j { Journal.id = "k"; state = Journal.Accepted { request = "{}" }; attempt = 1 };
        Journal.append j { Journal.id = "k"; state = Journal.Running; attempt = 1 };
        (* lands behind the torn frame: unreachable, like post-crash garbage *)
        Journal.append j { Journal.id = "k"; state = Journal.Done; attempt = 1 };
        Journal.close j;
        let records, warnings = Journal.replay ~spool in
        Alcotest.(check int) "only the pre-fault frame" 1 (List.length records);
        Alcotest.(check bool) "torn-tail warning" true (warnings <> []);
        match Journal.orphans records with
        | [ o ] -> Alcotest.(check string) "job still recoverable" "k" o.Journal.id
        | l -> Alcotest.failf "%d orphans" (List.length l));
  ]

(* ---------- supervision: recovery, watchdog, retry, breaker ---------- *)

let supervision_tests =
  [
    Alcotest.test_case "kill-9 recovery resumes bitwise from journal + checkpoint" `Slow
      (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        let omega_ref =
          let _, out =
            run_server ~quantum:1_000_000
              [ tiny_envelope ~id:"cr" (); "{\"type\":\"shutdown\",\"drain\":true}" ]
          in
          match terminals_for "cr" (records_of out) with
          | [ r ] when typ r = "result" -> num "omega_end" r
          | _ -> Alcotest.fail "no reference result"
        in
        with_spool @@ fun spool ->
        (* "crashed" daemon: drive the scheduler directly, then drop it
           mid-job with no terminal transition — exactly the state
           SIGKILL leaves behind (journal fd never closed, checkpoint
           and journal on disk) *)
        Obs.set_enabled true;
        let sch = Scheduler.create ~quantum:1 ~spool ~emit:(fun _ -> ()) ~log:(fun _ -> ()) () in
        let line = tiny_envelope ~id:"cr" () in
        (match Protocol.parse_request line with
        | Ok (Protocol.Submit job) -> (
          match Scheduler.submit sch ~request:line job with
          | Ok () -> ()
          | Error e -> Alcotest.fail e.Protocol.message)
        | _ -> Alcotest.fail "parse");
        for _ = 1 to 3 do
          ignore (Scheduler.run_slice sch)
        done;
        Alcotest.(check bool) "checkpoint on disk" true
          (Sys.file_exists (Filename.concat spool "cr.ckpt"));
        (* restarted daemon on the same spool replays the journal *)
        let code, out = run_server ~spool [ "{\"type\":\"shutdown\",\"drain\":true}" ] in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of out in
        (match List.find_opt (fun j -> typ j = "recovered") records with
        | Some r ->
          Alcotest.(check (option string)) "recovered id" (Some "cr") (str "id" r);
          Alcotest.(check bool) "resumed from checkpoint" true
            (match Json.member "resumed" r with Some (Json.Bool b) -> b | _ -> false)
        | None -> Alcotest.fail "no recovered record");
        (match terminals_for "cr" records with
        | [ r ] when typ r = "result" ->
          (* %.10g round-trips through the protocol: printed equality
             is exact equality at that precision *)
          Alcotest.(check (option (float 0.))) "omega_end identical to uninterrupted run"
            omega_ref (num "omega_end" r)
        | l -> Alcotest.failf "cr after restart: %d terminals" (List.length l));
        let count name = Option.value ~default:0 (List.assoc_opt name (Obs.Metrics.counters ())) in
        Alcotest.(check int) "serve.journal.recovered" 1 (count "serve.journal.recovered");
        Alcotest.(check int) "serve.journal.resumed" 1 (count "serve.journal.resumed");
        Alcotest.(check bool) "serve.journal.replayed > 0" true
          (count "serve.journal.replayed" > 0));
    Alcotest.test_case "SIGTERM parks in-flight jobs; a restart resumes them" `Slow (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        with_spool @@ fun spool ->
        let term = ref false in
        let prev = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> term := true)) in
        Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigterm prev) @@ fun () ->
        let sent = ref false in
        let input = ref [ tiny_envelope ~id:"pk" () ] in
        let ckpt = Filename.concat spool "pk.ckpt" in
        let read ~block:_ =
          match !input with
          | l :: tl ->
            input := tl;
            `Line l
          | [] ->
            (* fire the signal only once the job has demonstrably run a
               quantum (its checkpoint exists), so there is something
               in flight to park *)
            if (not !sent) && Sys.file_exists ckpt then begin
              sent := true;
              Unix.kill (Unix.getpid ()) Sys.sigterm
            end;
            `Nothing
        in
        let out = ref [] in
        let code =
          Server.run
            (Server.default_config ~quantum:1 ~spool ~cache:0 ~stop_requested:(fun () -> !term) ())
            ~read
            ~write:(fun l -> out := l :: !out)
            ~log:(fun _ -> ())
        in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of (List.rev !out) in
        (match terminals_for "pk" records with
        | [ r ] ->
          Alcotest.(check string) "typed terminal" "job-error" (typ r);
          Alcotest.(check (option string)) "parked" (Some "preempted") (str "kind" r)
        | l -> Alcotest.failf "pk: %d terminals" (List.length l));
        Alcotest.(check bool) "stream ended in a terminal error record" true
          (List.exists (fun j -> typ j = "error" && str "job" j = Some "pk") records);
        (match List.find_opt (fun j -> typ j = "bye") records with
        | Some b -> Alcotest.(check (option (float 0.))) "bye preempted" (Some 1.) (num "preempted" b)
        | None -> Alcotest.fail "no bye");
        Alcotest.(check bool) "checkpoint kept for the next daemon" true (Sys.file_exists ckpt);
        (* a restarted daemon on the same spool picks the job back up *)
        let code2, out2 = run_server ~spool [ "{\"type\":\"shutdown\",\"drain\":true}" ] in
        Alcotest.(check int) "restart exit code" 0 code2;
        let records2 = records_of out2 in
        Alcotest.(check bool) "recovered record" true
          (List.exists (fun j -> typ j = "recovered") records2);
        match terminals_for "pk" records2 with
        | [ r ] -> Alcotest.(check string) "resumed to completion" "result" (typ r)
        | l -> Alcotest.failf "pk after restart: %d terminals" (List.length l));
    Alcotest.test_case "deadline: watchdog cancels a running job, queued jobs expire" `Slow
      (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        Fault.with_armed "stall@1,stall=0.4,seed=7" @@ fun () ->
        let code, out =
          run_server ~quantum:4
            [
              tiny_envelope ~id:"dl1" ~deadline_ms:100. ();
              tiny_envelope ~id:"dl2" ~deadline_ms:40. ();
              "{\"type\":\"shutdown\",\"drain\":true}";
            ]
        in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of out in
        List.iter
          (fun id ->
            match terminals_for id records with
            | [ r ] ->
              Alcotest.(check string) (id ^ " typed terminal") "job-error" (typ r);
              Alcotest.(check (option string)) (id ^ " kind") (Some "deadline-exceeded")
                (str "kind" r)
            | l -> Alcotest.failf "%s: %d terminals" id (List.length l))
          [ "dl1"; "dl2" ];
        let count name = Option.value ~default:0 (List.assoc_opt name (Obs.Metrics.counters ())) in
        Alcotest.(check bool) "serve.watchdog.deadline_exceeded >= 2" true
          (count "serve.watchdog.deadline_exceeded" >= 2));
    Alcotest.test_case "stall watchdog cancels a wedged solver" `Slow (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        Fault.with_armed "stall@1,stall=0.6,seed=7" @@ fun () ->
        let code, out =
          run_server ~quantum:4 ~stall_timeout_s:0.15
            [ tiny_envelope ~id:"wd" (); "{\"type\":\"shutdown\",\"drain\":true}" ]
        in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of out in
        (match terminals_for "wd" records with
        | [ r ] ->
          Alcotest.(check string) "typed terminal" "job-error" (typ r);
          Alcotest.(check (option string)) "kind" (Some "stalled") (str "kind" r)
        | l -> Alcotest.failf "wd: %d terminals" (List.length l));
        let count name = Option.value ~default:0 (List.assoc_opt name (Obs.Metrics.counters ())) in
        Alcotest.(check bool) "serve.watchdog.stalled >= 1" true
          (count "serve.watchdog.stalled" >= 1));
    Alcotest.test_case "transient failure retries with backoff and succeeds" `Slow (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        Fault.with_armed "nan%1,seed=5" @@ fun () ->
        (* the NaN storm sinks attempt one with a retryable
           step-failure; the scheduler's retry log line disarms it, so
           the backoff attempt runs clean and must produce a result *)
        let stage = ref 0 in
        let out = ref [] in
        let retried = ref false in
        let saw_terminal id =
          List.exists
            (fun l ->
              let j = Json.parse_exn l in
              (typ j = "result" || typ j = "job-error") && str "id" j = Some id)
            !out
        in
        let read ~block:_ =
          match !stage with
          | 0 ->
            stage := 1;
            `Line (tiny_envelope ~id:"rt" ())
          | 1 ->
            if saw_terminal "rt" then begin
              stage := 2;
              `Line "{\"type\":\"shutdown\",\"drain\":true}"
            end
            else `Nothing
          | _ -> `Eof
        in
        let spool = fresh_spool () in
        Fun.protect ~finally:(fun () -> rm_rf spool) @@ fun () ->
        let code =
          Server.run
            (Server.default_config ~quantum:4 ~spool ~cache:0 ~max_retries:2 ~retry_base_s:0.01 ())
            ~read
            ~write:(fun l -> out := l :: !out)
            ~log:(fun m ->
              if contains_sub "retry" m then begin
                retried := true;
                Fault.disarm ()
              end)
        in
        Alcotest.(check int) "exit code" 0 code;
        Alcotest.(check bool) "a retry was scheduled" true !retried;
        let records = records_of (List.rev !out) in
        (match terminals_for "rt" records with
        | [ r ] -> Alcotest.(check string) "retried job completes" "result" (typ r)
        | l -> Alcotest.failf "rt: %d terminals" (List.length l));
        let count name = Option.value ~default:0 (List.assoc_opt name (Obs.Metrics.counters ())) in
        Alcotest.(check bool) "serve.retry.attempts >= 1" true (count "serve.retry.attempts" >= 1);
        Alcotest.(check bool) "serve.retry.recovered >= 1" true
          (count "serve.retry.recovered" >= 1);
        Alcotest.(check int) "serve.retry.exhausted" 0 (count "serve.retry.exhausted"));
    Alcotest.test_case "exhausted retries end in the underlying typed error" `Slow (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        Fault.with_armed "nan%1,seed=3" @@ fun () ->
        let code, out =
          run_server ~quantum:2 ~max_retries:1 ~retry_base_s:0.01
            [ tiny_envelope ~id:"rx" (); "{\"type\":\"shutdown\",\"drain\":true}" ]
        in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of out in
        (match terminals_for "rx" records with
        | [ r ] ->
          Alcotest.(check string) "typed terminal" "job-error" (typ r);
          Alcotest.(check bool) "not a breaker/watchdog kind" true
            (match str "kind" r with
            | Some ("breaker-open" | "deadline-exceeded" | "stalled") | None -> false
            | Some _ -> true)
        | l -> Alcotest.failf "rx: %d terminals" (List.length l));
        let count name = Option.value ~default:0 (List.assoc_opt name (Obs.Metrics.counters ())) in
        Alcotest.(check bool) "serve.retry.attempts >= 1" true (count "serve.retry.attempts" >= 1);
        Alcotest.(check bool) "serve.retry.exhausted >= 1" true
          (count "serve.retry.exhausted" >= 1));
    Alcotest.test_case "breaker opens after repeated failures and fast-fails" `Slow (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        Fault.with_armed "nan%1,seed=3" @@ fun () ->
        let code, out =
          run_server ~quantum:2 ~breaker_threshold:2 ~breaker_cooldown_s:60.
            [
              tiny_envelope ~id:"b1" ();
              tiny_envelope ~id:"b2" ();
              tiny_envelope ~id:"b3" ();
              "{\"type\":\"shutdown\",\"drain\":true}";
            ]
        in
        Alcotest.(check int) "exit code" 0 code;
        let records = records_of out in
        (match terminals_for "b3" records with
        | [ r ] ->
          Alcotest.(check string) "typed terminal" "job-error" (typ r);
          Alcotest.(check (option string)) "fast-failed" (Some "breaker-open") (str "kind" r);
          Alcotest.(check bool) "no flight dump for a fast-fail" true (str "flight" r = None)
        | l -> Alcotest.failf "b3: %d terminals" (List.length l));
        List.iter
          (fun id ->
            match terminals_for id records with
            | [ r ] ->
              Alcotest.(check bool) (id ^ " failed on the solver, not the breaker") true
                (typ r = "job-error" && str "kind" r <> Some "breaker-open")
            | l -> Alcotest.failf "%s: %d terminals" id (List.length l))
          [ "b1"; "b2" ];
        let count name = Option.value ~default:0 (List.assoc_opt name (Obs.Metrics.counters ())) in
        Alcotest.(check bool) "serve.breaker.trips >= 1" true (count "serve.breaker.trips" >= 1);
        Alcotest.(check bool) "serve.breaker.fast_fails >= 1" true
          (count "serve.breaker.fast_fails" >= 1));
    Alcotest.test_case "breaker unit: trip, probe, close, reopen, release" `Quick (fun () ->
        Obs.Metrics.with_isolated @@ fun () ->
        let module B = Supervisor.Breaker in
        let b = B.create ~threshold:2 ~cooldown_s:0.05 in
        let key = "vco-a/envelope" in
        Alcotest.(check bool) "clean key proceeds" true (B.decide b ~key ~now:0. = B.Proceed);
        B.failure b ~key ~now:0.;
        Alcotest.(check bool) "below threshold still proceeds" true
          (B.decide b ~key ~now:0. = B.Proceed);
        B.failure b ~key ~now:0.;
        (match B.decide b ~key ~now:0.01 with
        | B.Fast_fail { retry_after_s } ->
          Alcotest.(check bool) "retry hint positive" true (retry_after_s > 0.)
        | _ -> Alcotest.fail "expected Fast_fail after trip");
        Alcotest.(check (list (pair string string))) "open in stats" [ (key, "open") ] (B.states b);
        (* past the cooldown exactly one caller carries the probe *)
        Alcotest.(check bool) "probe" true (B.decide b ~key ~now:0.1 = B.Probe);
        Alcotest.(check bool) "second caller fast-fails during the probe" true
          (match B.decide b ~key ~now:0.1 with B.Fast_fail _ -> true | _ -> false);
        Alcotest.(check (list (pair string string))) "half-open in stats" [ (key, "half-open") ]
          (B.states b);
        (* failed probe snaps straight back open *)
        B.failure b ~key ~now:0.1;
        Alcotest.(check bool) "reopened" true
          (match B.decide b ~key ~now:0.11 with B.Fast_fail _ -> true | _ -> false);
        (* successful probe closes *)
        Alcotest.(check bool) "re-probe" true (B.decide b ~key ~now:0.2 = B.Probe);
        B.success b ~key;
        Alcotest.(check bool) "closed again" true (B.decide b ~key ~now:0.2 = B.Proceed);
        Alcotest.(check (list (pair string string))) "clean key leaves stats" [] (B.states b);
        (* an abandoned probe is released back to open *)
        B.failure b ~key ~now:1.0;
        B.failure b ~key ~now:1.0;
        Alcotest.(check bool) "probe after cooldown" true (B.decide b ~key ~now:1.1 = B.Probe);
        B.release b ~key ~now:1.1;
        Alcotest.(check bool) "released probe reopens" true
          (match B.decide b ~key ~now:1.11 with B.Fast_fail _ -> true | _ -> false);
        Alcotest.(check bool) "re-probes after another cooldown" true
          (B.decide b ~key ~now:1.2 = B.Probe));
    Alcotest.test_case "backoff is deterministic, jittered, exponential, saturating" `Quick
      (fun () ->
        let d1 = Supervisor.backoff_s ~base:0.1 ~attempt:1 ~seed:42 in
        Alcotest.(check (float 0.)) "deterministic" d1
          (Supervisor.backoff_s ~base:0.1 ~attempt:1 ~seed:42);
        Alcotest.(check bool) "attempt 1 in [base, 1.5*base)" true (d1 >= 0.1 && d1 < 0.15);
        let d3 = Supervisor.backoff_s ~base:0.1 ~attempt:3 ~seed:42 in
        Alcotest.(check bool) "attempt 3 in [4*base, 6*base)" true (d3 >= 0.4 && d3 < 0.6);
        Alcotest.(check bool) "seeds decorrelate" true
          (Supervisor.backoff_s ~base:0.1 ~attempt:1 ~seed:43 <> d1);
        let big = Supervisor.backoff_s ~base:0.1 ~attempt:1000 ~seed:1 in
        Alcotest.(check bool) "exponent saturates" true
          (Float.is_finite big && big <= 0.1 *. 65536. *. 1.5));
  ]

let suites =
  [
    ("serve_protocol", protocol_tests @ stats_tests @ fuzz_tests);
    ("serve_scheduler", scheduling_tests);
    ("serve_caches", cache_tests);
    ("serve_faults", fault_tests);
    ("serve_journal", journal_tests);
    ("serve_supervision", supervision_tests);
  ]
