(* The run-history store: CRC-guarded round trips, typed corruption
   errors, degraded loads that never raise, compaction bounds and the
   bench speedup gate. *)

module Obs = Wampde_obs
module Json = Obs.Json
module History = Obs.History

let dir_counter = ref 0

let with_dir f () =
  incr dir_counter;
  let dir = Printf.sprintf "history-test-%d" !dir_counter in
  let rm_rf () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun x -> try Sys.remove (Filename.concat dir x) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ()
    end
  in
  rm_rf ();
  Fun.protect ~finally:rm_rf (fun () -> f dir)

let key ?(n1 = 15) ?(circuit = "vco-a") () =
  { History.circuit; analysis = "envelope"; n1; jobs = 1; git = "abc123" }

let manifest ?(wall = 1.5) ?(t = 1000.) () =
  Printf.sprintf "{\"schema\":\"wampde.run-report/1\",\"unix_time\":%g,\"wall_s\":%g}" t wall

let append_ok ?max_bytes ?keep ~dir ~key ~manifest () =
  match History.append ?max_bytes ?keep ~dir ~key ~manifest () with
  | Ok () -> ()
  | Error m -> Alcotest.failf "append failed: %s" m

let store_tests =
  [
    Alcotest.test_case "append/load round trip preserves keys and manifests" `Quick
      (with_dir (fun dir ->
           append_ok ~dir ~key:(key ()) ~manifest:(manifest ~wall:1.5 ()) ();
           append_ok ~dir ~key:(key ~n1:25 ()) ~manifest:(manifest ~wall:2.5 ()) ();
           let entries, warnings = History.load ~dir in
           Alcotest.(check int) "no warnings" 0 (List.length warnings);
           Alcotest.(check int) "two entries" 2 (List.length entries);
           let e1 = List.hd entries and e2 = List.nth entries 1 in
           Alcotest.(check int) "oldest first" 15 e1.History.key.n1;
           Alcotest.(check int) "newest last" 25 e2.History.key.n1;
           Alcotest.(check (float 1e-9)) "wall_s decoded" 1.5 e1.History.wall_s;
           Alcotest.(check (float 1e-9)) "unix_time decoded" 1000. e1.History.unix_time));
    Alcotest.test_case "encode/decode round trip, CRC catches byte mangling" `Quick (fun () ->
        let line = History.encode_line ~key:(key ()) ~manifest:(manifest ()) in
        let e = History.decode_line line in
        Alcotest.(check string) "circuit survives" "vco-a" e.History.key.circuit;
        (* flip one payload byte: framing is intact, CRC must trip *)
        let b = Bytes.of_string line in
        Bytes.set b (String.length line - 3) 'X';
        (match History.decode_line (Bytes.to_string b) with
         | exception History.Corrupt msg ->
           Alcotest.(check bool) "CRC error names the cause" true
             (String.length msg > 0)
         | _ -> Alcotest.fail "mangled line decoded");
        (* truncation: too short for the CRC prefix *)
        match History.decode_line (String.sub line 0 6) with
        | exception History.Corrupt _ -> ()
        | _ -> Alcotest.fail "truncated line decoded");
    Alcotest.test_case "load skips corrupt lines with warnings, never raises" `Quick
      (with_dir (fun dir ->
           append_ok ~dir ~key:(key ()) ~manifest:(manifest ~wall:1. ()) ();
           append_ok ~dir ~key:(key ()) ~manifest:(manifest ~wall:2. ()) ();
           (* mangle the first line's payload in place *)
           let p = History.path ~dir in
           let ic = open_in_bin p in
           let contents =
             Fun.protect
               ~finally:(fun () -> close_in_noerr ic)
               (fun () -> really_input_string ic (in_channel_length ic))
           in
           let b = Bytes.of_string contents in
           Bytes.set b 20 '!';
           let oc = open_out_bin p in
           Fun.protect
             ~finally:(fun () -> close_out_noerr oc)
             (fun () -> output_bytes oc b);
           let entries, warnings = History.load ~dir in
           Alcotest.(check int) "one survivor" 1 (List.length entries);
           Alcotest.(check int) "one warning" 1 (List.length warnings);
           Alcotest.(check (float 1e-9)) "the intact entry survived" 2.
             (List.hd entries).History.wall_s));
    Alcotest.test_case "compaction keeps the newest K per key" `Quick
      (with_dir (fun dir ->
           for i = 1 to 10 do
             append_ok ~dir ~key:(key ()) ~manifest:(manifest ~wall:(float_of_int i) ()) ()
           done;
           append_ok ~dir ~key:(key ~circuit:"vco-b" ()) ~manifest:(manifest ~wall:99. ()) ();
           let dropped = History.compact ~keep:3 ~dir () in
           Alcotest.(check int) "dropped the old majority" 7 dropped;
           let entries, warnings = History.load ~dir in
           Alcotest.(check int) "no warnings after rewrite" 0 (List.length warnings);
           Alcotest.(check int) "3 + 1 entries kept" 4 (List.length entries);
           let walls =
             List.filter_map
               (fun (e : History.entry) ->
                 if e.key.circuit = "vco-a" then Some e.wall_s else None)
               entries
           in
           Alcotest.(check (list (float 1e-9))) "newest three, oldest first" [ 8.; 9.; 10. ]
             walls));
    Alcotest.test_case "append auto-compacts once the store outgrows max_bytes" `Quick
      (with_dir (fun dir ->
           for i = 1 to 50 do
             append_ok ~max_bytes:2048 ~keep:4 ~dir ~key:(key ())
               ~manifest:(manifest ~wall:(float_of_int i) ())
               ()
           done;
           let entries, _ = History.load ~dir in
           Alcotest.(check bool)
             (Printf.sprintf "entry count stays bounded (got %d)" (List.length entries))
             true
             (List.length entries <= 8)));
  ]

let concurrency_tests =
  [
    Alcotest.test_case "concurrent writers never tear or lose a record" `Slow
      (with_dir (fun dir ->
           (* O_APPEND single-write appends: racing writers may
              interleave whole lines but must never interleave bytes.
              Every record must survive intact and decodable. *)
           let domains = 4 and per_domain = 25 in
           let spawned =
             List.init domains (fun d ->
                 Domain.spawn (fun () ->
                     for i = 1 to per_domain do
                       append_ok ~dir
                         ~key:(key ~n1:(15 + (2 * d)) ())
                         ~manifest:(manifest ~wall:(float_of_int ((d * 100) + i)) ())
                         ()
                     done))
           in
           List.iter Domain.join spawned;
           let entries, warnings = History.load ~dir in
           Alcotest.(check (list string)) "no corrupt lines" [] warnings;
           Alcotest.(check int) "every append survived" (domains * per_domain)
             (List.length entries);
           (* each writer's records are all present exactly once *)
           List.iter
             (fun d ->
               let mine =
                 List.filter (fun e -> e.History.key.n1 = 15 + (2 * d)) entries
               in
               Alcotest.(check int)
                 (Printf.sprintf "writer %d records" d)
                 per_domain (List.length mine);
               let walls =
                 List.map (fun e -> e.History.wall_s) mine |> List.sort_uniq compare
               in
               Alcotest.(check int)
                 (Printf.sprintf "writer %d distinct manifests" d)
                 per_domain (List.length walls))
             (List.init domains Fun.id)));
  ]

let fuzz_tests =
  let open QCheck in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~count:300 ~name:"decode_line is total (Corrupt or entry, never other raises)"
         (make
            Gen.(
              oneof
                [
                  string_size (int_range 0 80);
                  (* valid line with a few random byte flips *)
                  (let* flips = list_size (int_range 1 4) (pair small_nat char) in
                   let line =
                     History.encode_line ~key:(key ()) ~manifest:(manifest ())
                   in
                   let b = Bytes.of_string line in
                   List.iter
                     (fun (pos, c) ->
                       if Bytes.length b > 0 then Bytes.set b (pos mod Bytes.length b) c)
                     flips;
                   return (Bytes.to_string b));
                ]))
         (fun line ->
           match History.decode_line line with
           | _ -> true
           | exception History.Corrupt _ -> true
           | exception e ->
             Test.fail_reportf "decode_line raised %s on %S" (Printexc.to_string e) line));
  ]

let stats_tests =
  [
    Alcotest.test_case "median and MAD are robust to one outlier" `Quick (fun () ->
        let samples = [ 1.0; 1.1; 0.9; 1.05; 50.0 ] in
        let med = History.median samples in
        let mad = History.mad samples in
        Alcotest.(check (float 1e-9)) "median ignores the spike" 1.05 med;
        Alcotest.(check bool) "spike is an outlier" true
          (History.is_outlier ~median:med ~mad 50.0);
        Alcotest.(check bool) "typical value is not" false
          (History.is_outlier ~median:med ~mad 1.1));
    Alcotest.test_case "identical samples flag nothing (floor)" `Quick (fun () ->
        let samples = [ 2.0; 2.0; 2.0; 2.0 ] in
        let med = History.median samples in
        let mad = History.mad samples in
        Alcotest.(check bool) "equal value passes" false
          (History.is_outlier ~median:med ~mad 2.0));
  ]

(* a minimal BENCH_*.json shape: an array of per-case records whose
   metrics.gauges carry the krylov speedup gauges *)
let bench ~speedups =
  let entries =
    List.map
      (fun (n1, s) ->
        Printf.sprintf "{\"metrics\":{\"gauges\":{\"%s%d\":%g}}}" History.speedup_prefix n1 s)
      speedups
  in
  Json.parse_exn ("[" ^ String.concat "," entries ^ "]")

let gate_tests =
  [
    Alcotest.test_case "the checked-in manifests reproduce the bench_trend verdict" `Quick
      (fun () ->
        (* BENCH_2026-08-07 n1=161: 4.891; BENCH_2026-08-09: 4.161 —
           ratio 0.85 is above the 0.75 gate *)
        let prev = bench ~speedups:[ (81, 3.2); (161, 4.891) ] in
        let fresh = bench ~speedups:[ (81, 3.0); (161, 4.161) ] in
        match History.speedup_gate ~prev:(Some prev) ~fresh () with
        | History.Gate_pass _ -> ()
        | v ->
          Alcotest.failf "expected pass, got %s"
            (match v with
             | History.Gate_pass m
             | History.Gate_no_baseline m
             | History.Gate_regression m
             | History.Gate_data_error m -> m));
    Alcotest.test_case "a speedup collapse below threshold regresses" `Quick (fun () ->
        let prev = bench ~speedups:[ (161, 4.9) ] in
        let fresh = bench ~speedups:[ (161, 2.0) ] in
        match History.speedup_gate ~prev:(Some prev) ~fresh () with
        | History.Gate_regression msg ->
          Alcotest.(check bool) "message names the sizes" true (String.length msg > 0)
        | _ -> Alcotest.fail "expected regression");
    Alcotest.test_case "missing or unusable baseline degrades to informational pass" `Quick
      (fun () ->
        (match History.speedup_gate ~prev:None ~fresh:(bench ~speedups:[ (161, 4.0) ]) () with
         | History.Gate_no_baseline _ -> ()
         | _ -> Alcotest.fail "expected no-baseline");
        (* baseline without speedup gauges *)
        match
          History.speedup_gate
            ~prev:(Some (Json.parse_exn "[{}]"))
            ~fresh:(bench ~speedups:[ (161, 4.0) ])
            ()
        with
        | History.Gate_no_baseline _ -> ()
        | _ -> Alcotest.fail "expected no-baseline for gauge-free prev");
    Alcotest.test_case "unusable fresh data is a data error" `Quick (fun () ->
        match
          History.speedup_gate
            ~prev:(Some (bench ~speedups:[ (161, 4.0) ]))
            ~fresh:(Json.parse_exn "{\"not\":\"an array\"}")
            ()
        with
        | History.Gate_data_error _ -> ()
        | _ -> Alcotest.fail "expected data error");
    Alcotest.test_case "no common n1 degrades to no-baseline" `Quick (fun () ->
        match
          History.speedup_gate
            ~prev:(Some (bench ~speedups:[ (81, 3.0) ]))
            ~fresh:(bench ~speedups:[ (161, 4.0) ])
            ()
        with
        | History.Gate_no_baseline _ -> ()
        | _ -> Alcotest.fail "expected no-baseline for disjoint sizes");
  ]

let suites =
  [ ("history", store_tests @ concurrency_tests @ fuzz_tests @ stats_tests @ gate_tests) ]
