open Linalg
module Obs = Wampde_obs

type solution = { period : float; harmonics : int; coeffs : Cx.Cvec.t array }

let c_iters = Obs.Metrics.counter "hb.iterations"
let c_solves = Obs.Metrics.counter "hb.solves"

let two_pi = 2. *. Float.pi

(* Layout: z.((v * nn) + (i + m)) = coefficient X_i of variable v, with
   nn = 2 m + 1 grid/spectrum size. *)

let synthesize_states ~n ~m coeffs_of =
  let nn = (2 * m) + 1 in
  Array.init nn (fun j ->
      Vec.init n (fun v ->
          let s = ref 0. in
          for i = -m to m do
            let c = coeffs_of v i in
            let theta = two_pi *. float_of_int (i * j) /. float_of_int nn in
            s := !s +. ((Cx.re c *. cos theta) -. (Cx.im c *. sin theta))
          done;
          !s))

(* centered Fourier coefficients of samples g.(j), j = 0..nn-1 *)
let analyze ~m samples =
  let nn = (2 * m) + 1 in
  Array.init nn (fun idx ->
      let i = idx - m in
      let s = ref Complex.zero in
      for j = 0 to nn - 1 do
        let theta = -.two_pi *. float_of_int (i * j) /. float_of_int nn in
        s := Complex.add !s (Complex.mul (Cx.cx samples.(j) 0.) (Cx.cis theta))
      done;
      Cx.scale (1. /. float_of_int nn) !s)

(* matrix-valued centered coefficients of a periodic matrix sequence *)
let analyze_matrix ~m mats =
  let nn = (2 * m) + 1 in
  let n = Mat.rows mats.(0) in
  Array.init nn (fun idx ->
      let k = idx - m in
      Cx.Cmat.init n n (fun r c ->
          let s = ref Complex.zero in
          for j = 0 to nn - 1 do
            let theta = -.two_pi *. float_of_int (k * j) /. float_of_int nn in
            s := Complex.add !s (Complex.mul (Cx.cx mats.(j).(r).(c) 0.) (Cx.cis theta))
          done;
          Cx.scale (1. /. float_of_int nn) !s))

let project_symmetry ~n ~m z =
  let nn = (2 * m) + 1 in
  for v = 0 to n - 1 do
    let base = v * nn in
    z.(base + m) <- Cx.cx (Cx.re z.(base + m)) 0.;
    for i = 1 to m do
      let plus = z.(base + m + i) and minus = z.(base + m - i) in
      let re = 0.5 *. (Cx.re plus +. Cx.re minus) in
      let im = 0.5 *. (Cx.im plus -. Cx.im minus) in
      z.(base + m + i) <- Cx.cx re im;
      z.(base + m - i) <- Cx.cx re (-.im)
    done
  done

let residual_of dae ~period ~m z =
  let n = dae.Dae.dim in
  let nn = (2 * m) + 1 in
  let coeff v i = z.((v * nn) + (i + m)) in
  let states = synthesize_states ~n ~m coeff in
  let qs = Array.map dae.Dae.q states in
  let fs =
    Array.mapi
      (fun j st -> dae.Dae.f ~t:(period *. float_of_int j /. float_of_int nn) st)
      states
  in
  let res = Cx.Cvec.zeros (n * nn) in
  for v = 0 to n - 1 do
    let q_coeffs = analyze ~m (Array.map (fun q -> q.(v)) qs) in
    let f_coeffs = analyze ~m (Array.map (fun f -> f.(v)) fs) in
    for i = -m to m do
      let jwi = Cx.cx 0. (two_pi *. float_of_int i /. period) in
      res.((v * nn) + (i + m)) <-
        Complex.add (Complex.mul jwi q_coeffs.(i + m)) f_coeffs.(i + m)
    done
  done;
  res

let jacobian_of dae ~period ~m z =
  let n = dae.Dae.dim in
  let nn = (2 * m) + 1 in
  let coeff v i = z.((v * nn) + (i + m)) in
  let states = synthesize_states ~n ~m coeff in
  let cs = Array.map dae.Dae.dq states in
  let gs =
    Array.mapi
      (fun j st -> dae.Dae.df ~t:(period *. float_of_int j /. float_of_int nn) st)
      states
  in
  let chat = analyze_matrix ~m cs in
  let ghat = analyze_matrix ~m gs in
  let dim = n * nn in
  let jac = Cx.Cmat.zeros dim dim in
  (* block (i, l): jw_i Chat_{i-l} + Ghat_{i-l}, index mod nn *)
  for i = -m to m do
    let jwi = Cx.cx 0. (two_pi *. float_of_int i /. period) in
    for l = -m to m do
      let k = ((i - l) mod nn + nn) mod nn in
      (* map k in 0..nn-1 back to centered index *)
      let k_centered = if k <= m then k else k - nn in
      let c_blk = chat.(k_centered + m) and g_blk = ghat.(k_centered + m) in
      for r = 0 to n - 1 do
        for c = 0 to n - 1 do
          let value = Complex.add (Complex.mul jwi c_blk.(r).(c)) g_blk.(r).(c) in
          if value <> Complex.zero then
            jac.((r * nn) + (i + m)).((c * nn) + (l + m)) <- value
        done
      done
    done
  done;
  jac

(* --- matrix-free Newton-Krylov machinery ----------------------------- *)

(* complex synthesis of a (not necessarily conjugate-symmetric)
   coefficient perturbation on the collocation grid *)
let synth_perturbation ~n ~m (dz : Cx.Cvec.t) =
  let nn = (2 * m) + 1 in
  Array.init nn (fun j ->
      Cx.Cvec.init n (fun v ->
          let s = ref Complex.zero in
          for i = -m to m do
            let theta = two_pi *. float_of_int (i * j) /. float_of_int nn in
            s := Complex.add !s (Complex.mul dz.((v * nn) + (i + m)) (Cx.cis theta))
          done;
          !s))

(* centered coefficients of a complex sample sequence *)
let analyze_c ~m (samples : Cx.c array) =
  let nn = (2 * m) + 1 in
  Array.init nn (fun idx ->
      let i = idx - m in
      let s = ref Complex.zero in
      for j = 0 to nn - 1 do
        let theta = -.two_pi *. float_of_int (i * j) /. float_of_int nn in
        s := Complex.add !s (Complex.mul samples.(j) (Cx.cis theta))
      done;
      Cx.scale (1. /. float_of_int nn) !s)

(* real matrix times complex vector *)
let rmatvec_c (a : Mat.t) (v : Cx.Cvec.t) =
  let nr = Mat.rows a and nc = Mat.cols a in
  Cx.Cvec.init nr (fun r ->
      let sre = ref 0. and sim = ref 0. in
      for c = 0 to nc - 1 do
        sre := !sre +. (a.(r).(c) *. Cx.re v.(c));
        sim := !sim +. (a.(r).(c) *. Cx.im v.(c))
      done;
      Cx.cx !sre !sim)

let mat_average mats =
  let count = Array.length mats in
  let n = Mat.rows mats.(0) in
  Mat.init n n (fun r c ->
      let s = ref 0. in
      for k = 0 to count - 1 do
        s := !s +. mats.(k).(r).(c)
      done;
      !s /. float_of_int count)

(* One Newton direction, matrix-free: the block-Toeplitz Jacobian is
   applied in the time domain (synthesize, multiply by the pointwise
   C/G, analyze, scale by jw_i) and GMRES runs on the realified system
   with the averaged per-harmonic block preconditioner
   M_i = jw_i Cbar + Gbar.  Returns [None] on GMRES stall. *)
let krylov_dir dae ~period ~m z r =
  let n = dae.Dae.dim in
  let nn = (2 * m) + 1 in
  let dim = n * nn in
  let coeff v i = z.((v * nn) + (i + m)) in
  let states = synthesize_states ~n ~m coeff in
  let cs = Array.map dae.Dae.dq states in
  let gs =
    Array.mapi
      (fun j st -> dae.Dae.df ~t:(period *. float_of_int j /. float_of_int nn) st)
      states
  in
  let jw i = Cx.cx 0. (two_pi *. float_of_int i /. period) in
  let cmatvec (dz : Cx.Cvec.t) =
    let dx = synth_perturbation ~n ~m dz in
    let cdx = Array.map2 rmatvec_c cs dx in
    let gdx = Array.map2 rmatvec_c gs dx in
    let out = Cx.Cvec.zeros dim in
    for v = 0 to n - 1 do
      let chat = analyze_c ~m (Array.map (fun s -> s.(v)) cdx) in
      let ghat = analyze_c ~m (Array.map (fun s -> s.(v)) gdx) in
      for i = -m to m do
        out.((v * nn) + (i + m)) <-
          Complex.add (Complex.mul (jw i) chat.(i + m)) ghat.(i + m)
      done
    done;
    out
  in
  let blocks =
    Structured.spectral_blocks
      ~coeffs:(Array.init nn (fun idx -> jw (idx - m)))
      ~cbar:(mat_average cs) ~bbar:(mat_average gs)
  in
  let cm_inv (rc : Cx.Cvec.t) =
    let out = Cx.Cvec.zeros dim in
    let rhs = Cx.Cvec.zeros n in
    for idx = 0 to nn - 1 do
      for v = 0 to n - 1 do
        rhs.(v) <- rc.((v * nn) + idx)
      done;
      let y = Cx.Clu.solve blocks.(idx) rhs in
      for v = 0 to n - 1 do
        out.((v * nn) + idx) <- y.(v)
      done
    done;
    out
  in
  (* realify: interleave [Re; Im] so real GMRES can run on C^dim *)
  let pack (c : Cx.Cvec.t) =
    Vec.init (2 * dim) (fun k ->
        if k land 1 = 0 then Cx.re c.(k / 2) else Cx.im c.(k / 2))
  in
  let unpack (v : Vec.t) = Cx.Cvec.init dim (fun k -> Cx.cx v.(2 * k) v.((2 * k) + 1)) in
  let matvec v = pack (cmatvec (unpack v)) in
  let m_inv v = pack (cm_inv (unpack v)) in
  let res = Gmres.solve ~matvec ~m_inv ~restart:60 ~max_iter:240 ~tol:1e-10 (pack r) in
  if res.Gmres.converged then Some (unpack res.Gmres.x) else None

let solve ?(solver = Structured.auto) dae ~period ~harmonics:m ~guess =
  Obs.Span.span
    ~attrs:[ ("harmonics", Obs.Span.Int m); ("dim", Obs.Span.Int dae.Dae.dim) ]
    "hb.solve"
  @@ fun () ->
  Obs.Scope.with_scope "hb" @@ fun () ->
  Obs.Metrics.incr c_solves;
  let n = dae.Dae.dim in
  let nn = (2 * m) + 1 in
  if Array.length guess <> nn then invalid_arg "Hb.solve: guess must have 2 harmonics + 1 states";
  (* initial coefficients from the time-domain guess *)
  let z = Cx.Cvec.zeros (n * nn) in
  for v = 0 to n - 1 do
    let samples = Array.map (fun s -> s.(v)) guess in
    let c = analyze ~m samples in
    Array.blit c 0 z (v * nn) nn
  done;
  let tol = 1e-9 in
  let use_krylov = Structured.use_krylov solver ~dim:(2 * n * nn) in
  let rnorm z = Cx.Cvec.norm_inf (residual_of dae ~period ~m z) in
  let current = ref z in
  let best = ref (rnorm z) in
  let iters = ref 0 in
  while !best > tol && !iters < 60 do
    incr iters;
    let r = residual_of dae ~period ~m !current in
    let dense () =
      let jac = jacobian_of dae ~period ~m !current in
      match Cx.Clu.factor jac with
      | exception Cx.Clu.Singular _ -> failwith "Hb.solve: singular harmonic-balance Jacobian"
      | lu -> Cx.Clu.solve lu r
    in
    let dz =
      if use_krylov then
        match krylov_dir dae ~period ~m !current r with
        | Some dz -> dz
        | None | (exception Cx.Clu.Singular _) ->
            Structured.fallback_to_dense ();
            dense ()
      else dense ()
    in
    (* damped update with symmetry projection *)
    let rec try_lambda lambda =
      if lambda < 1e-4 then failwith "Hb.solve: line search failed"
      else begin
        let trial =
          Array.mapi (fun k zk -> Complex.sub zk (Cx.scale lambda dz.(k))) !current
        in
        project_symmetry ~n ~m trial;
        let nt = rnorm trial in
        if Float.is_finite nt && (nt < !best || nt <= tol) then (trial, nt, lambda)
        else try_lambda (lambda /. 2.)
      end
    in
    let trial, nt, lambda = try_lambda 1. in
    current := trial;
    best := nt;
    Obs.Metrics.incr c_iters;
    if Obs.Events.active () then
      Obs.Events.emit
        (Obs.Events.Newton_iter { solver = "hb"; k = !iters; residual = nt; damping = lambda })
  done;
  if !best > tol then
    failwith (Printf.sprintf "Hb.solve: no convergence (residual %.3e)" !best);
  let coeffs =
    Array.init n (fun v -> Array.sub !current (v * nn) nn)
  in
  { period; harmonics = m; coeffs }

let solve_from_transient ?solver dae ~period ~harmonics ~warmup_periods x0 =
  let nn = (2 * harmonics) + 1 in
  let t_warm = period *. float_of_int warmup_periods in
  let h = period /. 200. in
  let traj =
    Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:(t_warm +. period) ~h x0
  in
  let guess =
    Array.init nn (fun j ->
        let t = t_warm +. (period *. float_of_int j /. float_of_int nn) in
        Vec.init dae.Dae.dim (fun i -> Transient.interpolate traj i t))
  in
  solve ?solver dae ~period ~harmonics ~guess

let eval sol ~component t =
  Fourier.Series.eval sol.coeffs.(component) ~period:sol.period t

let grid sol =
  let n = Array.length sol.coeffs in
  let m = sol.harmonics in
  synthesize_states ~n ~m (fun v i -> sol.coeffs.(v).(i + m))

let residual_norm dae sol =
  let n = Array.length sol.coeffs in
  let nn = (2 * sol.harmonics) + 1 in
  let z = Cx.Cvec.zeros (n * nn) in
  Array.iteri (fun v c -> Array.blit c 0 z (v * nn) nn) sol.coeffs;
  Cx.Cvec.norm_inf (residual_of dae ~period:sol.period ~m:sol.harmonics z)

let spectrum sol ~component =
  let m = sol.harmonics in
  Vec.init (m + 1) (fun i -> Complex.norm sol.coeffs.(component).(i + m))
