open Linalg
module Obs = Wampde_obs

type result = { x0 : Vec.t; period : float; iterations : int }

let flow dae ~t0 ~t1 ~steps x0 =
  if t1 <= t0 then Array.copy x0
  else begin
    let h = (t1 -. t0) /. float_of_int steps in
    let traj = Transient.integrate dae ~method_:Transient.Trapezoidal ~t0 ~t1 ~h x0 in
    Transient.final traj
  end

let autonomous dae ?(steps_per_period = 200) ?(phase_component = 0) ?(tol = 1e-8) ~period_guess
    x0 =
  Obs.Span.span ~attrs:[ ("dim", Obs.Span.Int dae.Dae.dim) ] "shooting.autonomous" @@ fun () ->
  Obs.Scope.with_scope "shooting" @@ fun () ->
  let n = dae.Dae.dim in
  (* unknowns: [x0; period] *)
  let residual y =
    let x = Array.sub y 0 n and t = y.(n) in
    if t <= 0. then Array.make (n + 1) 1e6
    else begin
      let xt = flow dae ~t0:0. ~t1:t ~steps:steps_per_period x in
      let r = Array.make (n + 1) 0. in
      for i = 0 to n - 1 do
        r.(i) <- xt.(i) -. x.(i)
      done;
      (* phase anchor: the chosen component starts at an extremum *)
      let xdot = Dae.consistent_derivative dae ~t:0. x in
      r.(n) <- xdot.(phase_component);
      r
    end
  in
  let y0 = Array.append x0 [| period_guess |] in
  let options =
    { Nonlin.Newton.default_options with max_iterations = 40; residual_tol = tol }
  in
  let outcome =
    Nonlin.Polyalg.solve ~options ~label:"shooting.autonomous"
      ~cascade:[ Nonlin.Polyalg.Damped; Nonlin.Polyalg.Trust_region; Nonlin.Polyalg.Pseudo_transient ]
      ~residual y0
  in
  let report = outcome.Nonlin.Polyalg.report in
  if not report.Nonlin.Newton.converged then
    raise
      (Nonlin.Polyalg.Solve_failed
         { label = "shooting.autonomous"; attempts = outcome.Nonlin.Polyalg.attempts });
  {
    x0 = Array.sub report.Nonlin.Newton.x 0 n;
    period = report.Nonlin.Newton.x.(n);
    iterations = report.Nonlin.Newton.iterations;
  }

let forced dae ?(steps_per_period = 200) ?(tol = 1e-8) ~period x0 =
  Obs.Span.span ~attrs:[ ("dim", Obs.Span.Int dae.Dae.dim) ] "shooting.forced" @@ fun () ->
  Obs.Scope.with_scope "shooting" @@ fun () ->
  let residual x =
    let xt = flow dae ~t0:0. ~t1:period ~steps:steps_per_period x in
    Vec.sub xt x
  in
  let options =
    { Nonlin.Newton.default_options with max_iterations = 40; residual_tol = tol }
  in
  let outcome =
    Nonlin.Polyalg.solve ~options ~label:"shooting.forced"
      ~cascade:[ Nonlin.Polyalg.Damped; Nonlin.Polyalg.Trust_region; Nonlin.Polyalg.Pseudo_transient ]
      ~residual x0
  in
  let report = outcome.Nonlin.Polyalg.report in
  if not report.Nonlin.Newton.converged then
    raise
      (Nonlin.Polyalg.Solve_failed
         { label = "shooting.forced"; attempts = outcome.Nonlin.Polyalg.attempts });
  { x0 = report.Nonlin.Newton.x; period; iterations = report.Nonlin.Newton.iterations }
