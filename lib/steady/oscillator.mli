(** Periodic steady state of {e unforced autonomous} oscillators:
    unknown waveform {e and} unknown frequency, pinned by a phase
    condition — exactly the [t2]-independent special case of the
    WaMPDE, and the initial condition generator for its envelope
    solver.

    Solves [omega (D Q)_j + f(x_j) = 0] (period-1 warped grid,
    [omega] in cycles per time unit) together with the phase condition
    [d x_comp / d t1 (0) = 0] (the chosen component peaks at [t1 = 0]). *)

open Linalg

type orbit = {
  omega : float;  (** oscillation frequency, cycles per time unit *)
  grid : Vec.t array;  (** one period sampled on the odd uniform grid *)
}

exception Nonphysical of string
(** The solve converged to (or the warm-up produced) something that is
    not a usable oscillation — non-positive frequency, or too few
    cycles in the warm-up transient.  A printer is registered. *)

(** [period orbit] is [1 / omega]. *)
val period : orbit -> float

(** [solve dae ~n1 ~guess ~omega_guess ~phase_component] polishes a
    grid guess by the {!Nonlin.Polyalg} cascade on the collocation +
    phase system.  Raises [Nonlin.Polyalg.Solve_failed] when the whole
    cascade fails (e.g. the guess is not near a limit cycle) and
    {!Nonphysical} when the converged frequency is non-positive. *)
val solve :
  Dae.t -> n1:int -> guess:Vec.t array -> omega_guess:float -> phase_component:int -> orbit

(** [find dae ~n1 ?phase_component ?warmup_cycles ?transient_steps_per_cycle
     ~period_hint x0] runs the full pipeline: transient warm-up from
    [x0] for [warmup_cycles] estimated periods, period estimation from
    upward zero crossings of the phase component (after removing its
    mean), resampling of the last cycle onto the grid, rotation so the
    component peaks at [t1 = 0], and Newton polish.  [period_hint]
    seeds the warm-up length.  Raises {!Nonphysical} when the warm-up
    transient shows too few oscillation cycles. *)
val find :
  Dae.t ->
  n1:int ->
  ?phase_component:int ->
  ?warmup_cycles:int ->
  ?transient_steps_per_cycle:int ->
  period_hint:float ->
  Vec.t ->
  orbit

(** [eval orbit ~component t] evaluates the steady-state waveform at
    (unwarped) time [t >= 0], i.e. at warped phase [omega t]. *)
val eval : orbit -> component:int -> float -> float

(** [component orbit i] is variable [i] on the grid. *)
val component : orbit -> int -> Vec.t

(** [amplitude orbit ~component] is half the peak-to-peak excursion of
    the component over one period. *)
val amplitude : orbit -> component:int -> float

(** [residual_norm dae orbit] is the collocation residual's infinity
    norm (phase row excluded). *)
val residual_norm : Dae.t -> orbit -> float
