open Linalg
module Obs = Wampde_obs

type orbit = { omega : float; grid : Vec.t array }

exception Nonphysical of string

let () =
  Printexc.register_printer (function
    | Nonphysical msg -> Some ("Oscillator.Nonphysical: " ^ msg)
    | _ -> None)

let period orbit = 1. /. orbit.omega

(* Flat layout: y.(j * n + i) = variable i at grid point j; y.(n1 * n) = omega. *)
let pack grid omega =
  let n1 = Array.length grid in
  let n = Array.length grid.(0) in
  Vec.init ((n1 * n) + 1) (fun idx ->
      if idx = n1 * n then omega else grid.(idx / n).(idx mod n))

let unpack ~n1 ~n y = (Array.init n1 (fun j -> Array.sub y (j * n) n), y.(n1 * n))

(* Autonomous system: f evaluated at t = 0 (no explicit slow forcing). *)
let collocation_residual dae ~n1 ~d ~phase_component y =
  let n = dae.Dae.dim in
  let states, omega = unpack ~n1 ~n y in
  let qs = Array.map dae.Dae.q states in
  let res = Array.make ((n1 * n) + 1) 0. in
  for j = 0 to n1 - 1 do
    let fj = dae.Dae.f ~t:0. states.(j) in
    let dj = d.(j) in
    for i = 0 to n - 1 do
      let s = ref 0. in
      for k = 0 to n1 - 1 do
        s := !s +. (dj.(k) *. qs.(k).(i))
      done;
      res.((j * n) + i) <- (omega *. !s) +. fj.(i)
    done
  done;
  (* phase condition: d x_comp / d t1 at grid point 0 *)
  let s = ref 0. in
  for k = 0 to n1 - 1 do
    s := !s +. (d.(0).(k) *. states.(k).(phase_component))
  done;
  res.(n1 * n) <- !s;
  res

let collocation_jacobian dae ~n1 ~d ~phase_component y =
  let n = dae.Dae.dim in
  let states, omega = unpack ~n1 ~n y in
  let qs = Array.map dae.Dae.q states in
  let cs = Array.map dae.Dae.dq states in
  let dim = (n1 * n) + 1 in
  let jac = Mat.zeros dim dim in
  for j = 0 to n1 - 1 do
    let gj = dae.Dae.df ~t:0. states.(j) in
    let dj = d.(j) in
    for k = 0 to n1 - 1 do
      let djk = dj.(k) in
      if djk <> 0. || j = k then
        for i = 0 to n - 1 do
          for l = 0 to n - 1 do
            let value =
              (omega *. djk *. cs.(k).(i).(l)) +. (if j = k then gj.(i).(l) else 0.)
            in
            if value <> 0. then
              jac.((j * n) + i).((k * n) + l) <- jac.((j * n) + i).((k * n) + l) +. value
          done
        done
    done;
    (* d residual / d omega = (D Q)_j *)
    for i = 0 to n - 1 do
      let s = ref 0. in
      for k = 0 to n1 - 1 do
        s := !s +. (dj.(k) *. qs.(k).(i))
      done;
      jac.((j * n) + i).(n1 * n) <- !s
    done
  done;
  for k = 0 to n1 - 1 do
    jac.(n1 * n).((k * n) + phase_component) <- d.(0).(k)
  done;
  jac

let solve dae ~n1 ~guess ~omega_guess ~phase_component =
  if n1 mod 2 = 0 then invalid_arg "Oscillator.solve: n1 must be odd";
  Obs.Span.span
    ~attrs:[ ("n1", Obs.Span.Int n1); ("dim", Obs.Span.Int dae.Dae.dim) ]
    "oscillator.solve"
  @@ fun () ->
  Obs.Scope.with_scope "oscillator" @@ fun () ->
  let n = dae.Dae.dim in
  let d = Fourier.Series.diff_matrix n1 in
  let residual y = collocation_residual dae ~n1 ~d ~phase_component y in
  let jacobian y = collocation_jacobian dae ~n1 ~d ~phase_component y in
  let options = { Nonlin.Newton.default_options with max_iterations = 80; residual_tol = 1e-9 } in
  let outcome =
    Nonlin.Polyalg.solve ~options ~label:"oscillator" ~jacobian ~residual (pack guess omega_guess)
  in
  let report = outcome.Nonlin.Polyalg.report in
  if not report.Nonlin.Newton.converged then
    raise
      (Nonlin.Polyalg.Solve_failed
         { label = "oscillator"; attempts = outcome.Nonlin.Polyalg.attempts });
  let grid, omega = unpack ~n1 ~n report.Nonlin.Newton.x in
  if omega <= 0. then raise (Nonphysical "Oscillator.solve: converged to non-positive frequency");
  { omega; grid }

let find dae ~n1 ?(phase_component = 0) ?(warmup_cycles = 30) ?(transient_steps_per_cycle = 100)
    ~period_hint x0 =
  Obs.Span.span
    ~attrs:[ ("n1", Obs.Span.Int n1); ("dim", Obs.Span.Int dae.Dae.dim) ]
    "oscillator.find"
  @@ fun () ->
  Obs.Scope.with_scope "oscillator" @@ fun () ->
  let h = period_hint /. float_of_int transient_steps_per_cycle in
  let t_end = period_hint *. float_of_int (warmup_cycles + 4) in
  let traj = Transient.integrate dae ~method_:Transient.Trapezoidal ~t0:0. ~t1:t_end ~h x0 in
  let comp = Transient.component traj phase_component in
  let mean = Vec.mean comp in
  let centered = Vec.map (fun x -> x -. mean) comp in
  let crossings = Sigproc.Zero_crossing.upward ~times:traj.Transient.times centered in
  let m = Array.length crossings in
  if m < 4 then raise (Nonphysical "Oscillator.find: too few oscillation cycles in warm-up transient");
  (* average the last few settled periods *)
  let avg_over = Int.min 5 (m - 1) in
  let period =
    (crossings.(m - 1) -. crossings.(m - 1 - avg_over)) /. float_of_int avg_over
  in
  (* sample one period ending at the last crossing *)
  let t_start = crossings.(m - 1) -. period in
  let raw =
    Array.init n1 (fun j ->
        let t = t_start +. (period *. float_of_int j /. float_of_int n1) in
        Vec.init dae.Dae.dim (fun i -> Transient.interpolate traj i t))
  in
  (* rotate so the phase component peaks at grid index 0 *)
  let peak = ref 0 in
  for j = 1 to n1 - 1 do
    if raw.(j).(phase_component) > raw.(!peak).(phase_component) then peak := j
  done;
  let guess = Array.init n1 (fun j -> raw.((j + !peak) mod n1)) in
  solve dae ~n1 ~guess ~omega_guess:(1. /. period) ~phase_component

let component orbit i = Array.map (fun s -> s.(i)) orbit.grid

let eval orbit ~component:i t =
  let samples = component orbit i in
  Fourier.Series.interp samples ~period:1. (orbit.omega *. t)

let amplitude orbit ~component:i =
  let samples = component orbit i in
  let hi = Array.fold_left Float.max neg_infinity samples in
  let lo = Array.fold_left Float.min infinity samples in
  (hi -. lo) /. 2.

let residual_norm dae orbit =
  let n1 = Array.length orbit.grid in
  let d = Fourier.Series.diff_matrix n1 in
  let y = pack orbit.grid orbit.omega in
  let res = collocation_residual dae ~n1 ~d ~phase_component:0 y in
  (* exclude the phase row *)
  Vec.norm_inf (Array.sub res 0 (Array.length res - 1))
