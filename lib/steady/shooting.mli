(** Single shooting for periodic steady state.

    For unforced oscillators the unknowns are the initial state and
    the period, closed by a phase anchor (the time derivative of a
    chosen component vanishes at [t = 0], so the orbit starts at that
    component's extremum).  For forced systems the period is known and
    only the initial state is solved.

    The classical alternative ([AT72], [TKW95] in the paper) to the
    collocation methods of {!Oscillator} / {!Periodic}; quadratically
    convergent near the orbit but each Jacobian column costs a
    transient integration. *)

open Linalg

type result = {
  x0 : Vec.t;  (** point on the periodic orbit *)
  period : float;
  iterations : int;
}

(** [autonomous dae ?steps_per_period ?phase_component ?tol ~period_guess x0]
    solves the unforced problem.  Raises [Nonlin.Polyalg.Solve_failed]
    when the globalization cascade is exhausted. *)
val autonomous :
  Dae.t ->
  ?steps_per_period:int ->
  ?phase_component:int ->
  ?tol:float ->
  period_guess:float ->
  Vec.t ->
  result

(** [forced dae ?steps_per_period ?tol ~period x0] solves the forced
    (known-period) problem [phi_T (x0) = x0]. *)
val forced : Dae.t -> ?steps_per_period:int -> ?tol:float -> period:float -> Vec.t -> result

(** [flow dae ~t0 ~t1 ~steps x0] integrates the DAE (trapezoidal) and
    returns the final state — the flow map used in the shooting
    residual, exposed for tests. *)
val flow : Dae.t -> t0:float -> t1:float -> steps:int -> Vec.t -> Vec.t
