(** Classical frequency-domain harmonic balance for forced periodic
    steady state — the method class the paper cites as the established
    baseline ([NV76], [Haa88], [RN88], [GS91]) and the machinery its
    eq. (19) reuses.

    The state is represented by centered complex Fourier coefficients
    [X_i], [i = -M..M]; the residual is assembled in the frequency
    domain,

    [R_i = (2 pi j i / T) Q_i + F_i = 0,]

    where [Q_i], [F_i] are the coefficients of [q(x(t))] and
    [f(t, x(t))] computed by FFT of pointwise evaluations, and the
    Newton Jacobian is the standard block-Toeplitz operator
    [dR_i/dX_l = (2 pi j i / T) Chat_{i-l} + Ghat_{i-l}] built from the
    matrix-valued coefficients of [C(x(t))] and [G(t, x(t))], solved
    with complex LU.

    Mathematically equivalent to {!Periodic} (time-domain spectral
    collocation); the test suite checks they agree to solver
    tolerance. *)

open Linalg

type solution = {
  period : float;
  harmonics : int;  (** M: coefficients run [-M..M] *)
  coeffs : Cx.Cvec.t array;  (** [coeffs.(v).(i + M)] = X_i of variable v *)
}

(** [solve dae ~period ~harmonics ~guess] runs harmonic-balance Newton
    from a time-domain grid guess ([2 harmonics + 1] states).  [solver]
    (default [Structured.auto]) picks dense complex LU or a matrix-free
    Newton–Krylov path: the block-Toeplitz Jacobian is applied in the
    time domain and GMRES is preconditioned with the averaged
    per-harmonic blocks [jw_i Cbar + Gbar] (falling back to dense LU on
    stall).  Raises [Failure] when Newton does not converge. *)
val solve :
  ?solver:Structured.strategy ->
  Dae.t ->
  period:float ->
  harmonics:int ->
  guess:Vec.t array ->
  solution

(** [solve_from_transient dae ~period ~harmonics ~warmup_periods x0]
    integrates a warm-up transient and polishes with {!solve}. *)
val solve_from_transient :
  ?solver:Structured.strategy ->
  Dae.t ->
  period:float ->
  harmonics:int ->
  warmup_periods:int ->
  Vec.t ->
  solution

(** [eval sol ~component t] evaluates the steady-state waveform. *)
val eval : solution -> component:int -> float -> float

(** [grid sol] synthesizes the time-domain states on the collocation
    grid (the inverse of the [guess] format). *)
val grid : solution -> Vec.t array

(** [residual_norm dae sol] is the infinity norm over all harmonics
    and variables of the frequency-domain residual. *)
val residual_norm : Dae.t -> solution -> float

(** [spectrum sol ~component] is the magnitude of each harmonic
    [|X_i|], [i = 0..M]. *)
val spectrum : solution -> component:int -> Vec.t
