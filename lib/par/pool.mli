(** Reusable domain pool for data-parallel kernels.

    One process-global pool of OCaml 5 domains, spawned lazily on the
    first parallel region and reused across solves; a [Stdlib.at_exit]
    hook tears the workers down cleanly.  Work is distributed as
    contiguous chunks with a fixed assignment (chunk [c] always covers
    [c*n/k .. (c+1)*n/k)]), so a kernel whose chunks write disjoint
    outputs and perform no cross-chunk reductions produces bitwise
    identical results for every job count — the determinism contract
    behind [--jobs N].

    The pool is instrumented in {!Wampde_obs.Metrics}:
    [pool.runs] / [pool.tasks] / [pool.spawned] counters and
    [pool.jobs] / [pool.effective_jobs] / [pool.busy_s] / [pool.idle_s]
    gauges (cumulative busy/idle seconds across all parallel regions,
    measured per chunk against the slowest chunk of its region).

    Worker domains must not touch {!Wampde_obs} (its metric cells and
    scope stack are not synchronized); kernels hoist their telemetry to
    the calling domain, which keeps counts independent of the job
    count. *)

(** [set_jobs n] sets the requested parallelism to [max 1 n].  [1]
    (the default) means fully serial: no domains are ever spawned.
    The initial value is read from the [WAMPDE_JOBS] environment
    variable.  Workers are spawned lazily and resized on demand. *)
val set_jobs : int -> unit

(** Currently requested parallelism (always [>= 1]). *)
val jobs : unit -> int

(** [parallel_chunks ?jobs n body] partitions [0..n-1] into
    [k = min (max 1 jobs) n] contiguous chunks and runs
    [body ~worker ~lo ~hi] (half-open [lo..hi)]) once per chunk:
    chunk [0] on the calling domain, chunks [1..k-1] on pool workers.
    [worker] is the chunk index, usable to pick a per-worker
    workspace.  Returns after every chunk finished.  If any chunk
    raised, the exception of the lowest-indexed raising chunk is
    re-raised (with its backtrace) after the barrier, so a typed error
    escapes cleanly and no worker is left wedged.  Calls from inside a
    pool worker (nested parallelism) degrade to serial execution.
    [?jobs] overrides the pool-level setting for this region. *)
val parallel_chunks : ?jobs:int -> int -> (worker:int -> lo:int -> hi:int -> unit) -> unit

(** [parallel_for ?jobs n f] is {!parallel_chunks} running [f j] for
    every [j] in [0..n-1]. *)
val parallel_for : ?jobs:int -> int -> (int -> unit) -> unit

(** Maximum number of chunks {!parallel_chunks} would use for a region
    of [n] items right now ([min (jobs ()) n], at least 1); lets
    callers size per-worker workspace tables before entering the
    region. *)
val chunk_count : ?jobs:int -> int -> int

(** Join and discard all worker domains (idempotent; registered with
    [Stdlib.at_exit]).  The pool respawns lazily if used again. *)
val shutdown : unit -> unit
