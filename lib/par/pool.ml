module Obs = Wampde_obs

let c_runs = Obs.Metrics.counter "pool.runs"
let c_tasks = Obs.Metrics.counter "pool.tasks"
let c_spawned = Obs.Metrics.counter "pool.spawned"
let g_jobs = Obs.Metrics.gauge "pool.jobs"
let g_effective = Obs.Metrics.gauge "pool.effective_jobs"
let g_busy = Obs.Metrics.gauge "pool.busy_s"
let g_idle = Obs.Metrics.gauge "pool.idle_s"

(* One mailbox per worker: the caller posts a closure, the worker runs
   it and waits for the next.  Closures built by [parallel_chunks]
   never raise (exceptions are captured per chunk and re-raised on the
   calling domain), so the worker loop stays trivial. *)
type worker = {
  m : Mutex.t;
  cv : Condition.t;
  mutable task : (unit -> unit) option;
  mutable stop : bool;
  mutable handle : unit Domain.t option;
}

let requested =
  let from_env =
    match Sys.getenv_opt "WAMPDE_JOBS" with
    | Some s -> ( match int_of_string_opt (String.trim s) with Some j -> max 1 j | None -> 1)
    | None -> 1
  in
  ref from_env

let set_jobs n = requested := max 1 n
let jobs () = !requested

(* Set on pool domains so nested parallel regions degrade to serial
   instead of deadlocking on the (busy) workers. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let workers : worker list ref = ref []
let workers_m = Mutex.create ()

let worker_loop w =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock w.m;
    while w.task = None && not w.stop do
      Condition.wait w.cv w.m
    done;
    if w.stop then Mutex.unlock w.m
    else begin
      let t = Option.get w.task in
      w.task <- None;
      Mutex.unlock w.m;
      t ();
      loop ()
    end
  in
  loop ()

let submit w t =
  Mutex.lock w.m;
  w.task <- Some t;
  Condition.signal w.cv;
  Mutex.unlock w.m

(* Grow the pool to [count] workers; never shrinks (idle workers cost
   nothing, and [shutdown] reaps them all). *)
let ensure_workers count =
  Mutex.lock workers_m;
  let have = List.length !workers in
  if have < count then begin
    for _ = have + 1 to count do
      let w =
        { m = Mutex.create (); cv = Condition.create (); task = None; stop = false; handle = None }
      in
      w.handle <- Some (Domain.spawn (fun () -> worker_loop w));
      Obs.Metrics.incr c_spawned;
      workers := !workers @ [ w ]
    done
  end;
  let ws = !workers in
  Mutex.unlock workers_m;
  ws

let shutdown () =
  Mutex.lock workers_m;
  let ws = !workers in
  workers := [];
  Mutex.unlock workers_m;
  List.iter
    (fun w ->
      Mutex.lock w.m;
      w.stop <- true;
      Condition.signal w.cv;
      Mutex.unlock w.m)
    ws;
  List.iter (fun w -> match w.handle with Some d -> Domain.join d | None -> ()) ws

let () = Stdlib.at_exit shutdown

let chunk_count ?jobs:jspec n =
  let k = match jspec with Some j -> max 1 j | None -> !requested in
  max 1 (min k n)

let parallel_chunks ?jobs:jspec n body =
  if n > 0 then begin
    let k = chunk_count ?jobs:jspec n in
    if k <= 1 || Domain.DLS.get in_worker then body ~worker:0 ~lo:0 ~hi:n
    else begin
      let ws = ensure_workers (k - 1) in
      let bar = Mutex.create () and bar_cv = Condition.create () in
      let pending = ref (k - 1) in
      let exns : (exn * Printexc.raw_backtrace) option array = Array.make k None in
      let durs = Array.make k 0. in
      (* per-chunk wall-clock start times: workers only write plain
         floats here; the calling domain turns them into trace spans
         after the barrier (workers must not touch Wampde_obs state) *)
      let starts = Array.make k 0. in
      let run_chunk c =
        let t0 = Unix.gettimeofday () in
        starts.(c) <- t0;
        (try
           let lo = c * n / k and hi = (c + 1) * n / k in
           if hi > lo then body ~worker:c ~lo ~hi
         with e -> exns.(c) <- Some (e, Printexc.get_raw_backtrace ()));
        durs.(c) <- Unix.gettimeofday () -. t0
      in
      let worker_chunk c () =
        run_chunk c;
        Mutex.lock bar;
        decr pending;
        if !pending = 0 then Condition.signal bar_cv;
        Mutex.unlock bar
      in
      List.iteri (fun i w -> if i < k - 1 then submit w (worker_chunk (i + 1))) ws;
      run_chunk 0;
      Mutex.lock bar;
      while !pending > 0 do
        Condition.wait bar_cv bar
      done;
      Mutex.unlock bar;
      (* telemetry from the calling domain only: per-region busy/idle
         against the slowest chunk, cumulative across regions *)
      Obs.Metrics.incr c_runs;
      Obs.Metrics.add c_tasks k;
      Obs.Metrics.set g_jobs (float_of_int !requested);
      Obs.Metrics.set g_effective (float_of_int k);
      let slowest = Array.fold_left Float.max 0. durs in
      let busy = Array.fold_left ( +. ) 0. durs in
      Obs.Metrics.set g_busy (Obs.Metrics.value g_busy +. busy);
      Obs.Metrics.set g_idle
        (Obs.Metrics.value g_idle +. ((float_of_int k *. slowest) -. busy));
      (* one span per chunk, on the emitting domain's own trace track:
         tid 1 is the calling domain (chunk 0), tid 1+c is worker c *)
      if Obs.Span.tracing () then
        for c = 0 to k - 1 do
          Obs.Span.emit_external
            ~attrs:
              [
                ("chunk", Obs.Span.Int c);
                ("lo", Obs.Span.Int (c * n / k));
                ("hi", Obs.Span.Int ((c + 1) * n / k));
              ]
            ~tid:(c + 1) ~name:"pool.chunk" ~t_start:starts.(c)
            ~t_stop:(starts.(c) +. durs.(c))
            ()
        done;
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        exns
    end
  end

let parallel_for ?jobs n f =
  parallel_chunks ?jobs n (fun ~worker:_ ~lo ~hi ->
      for j = lo to hi - 1 do
        f j
      done)
