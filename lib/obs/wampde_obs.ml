(* Solver telemetry and run diagnostics: metrics registry with scoped
   cost accounting, span tracing with GC/allocation attribution, typed
   solver events, a Chrome/Perfetto trace-event exporter and a run
   report (manifest) builder.  This library sits below every solver
   layer (it depends only on [unix] for the wall clock), so any module
   can report work without creating dependency cycles.

   Everything is off by default: counters and events are gated on one
   global flag, spans on the presence of a sink, so the hot-path cost
   of an uninstrumented run is a single branch per call site. *)

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* Wall clock.  [Unix.gettimeofday] is NOT monotonic: NTP slews and
   clock adjustments can move it backwards, which would make span
   durations negative.  The OCaml [unix] binding exposes no
   CLOCK_MONOTONIC without C stubs, so the C-free choice here is to
   make the wall clock monotone by clamping: a reading that went
   backwards returns the latest reading seen instead.  Under a
   backwards clock step, durations are truncated toward zero rather
   than going negative; forward steps are indistinguishable from slow
   spans either way. *)
let last_now = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !last_now then last_now := t;
  !last_now

(* Innermost scoped cost-accounting label; "" means unscoped.  Lives
   at top level (before [Metrics]) so counter updates can read it
   without a module cycle; the public API is [Scope] below. *)
let cur_scope = ref ""

(* ------------------------------------------------------------------ *)
(* JSON helpers (no external dependency)                               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/infinity literals; stringify non-finite values. *)
let json_float v =
  if Float.is_finite v then Printf.sprintf "%.12g" v
  else Printf.sprintf "\"%s\"" (if Float.is_nan v then "nan" else if v > 0. then "inf" else "-inf")

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Error of string

  let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

  let parse_exn (s : string) : t =
    let pos = ref 0 in
    let len = String.length s in
    let peek () = if !pos < len then s.[!pos] else '\000' in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      skip_ws ();
      if peek () <> c then error "expected %C at offset %d" c !pos;
      advance ()
    in
    let literal word v =
      if !pos + String.length word <= len && String.sub s !pos (String.length word) = word then begin
        pos := !pos + String.length word;
        v
      end
      else error "bad literal at offset %d" !pos
    in
    let hex4 () =
      if !pos + 4 > len then error "truncated \\u escape at offset %d" !pos;
      let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
      pos := !pos + 4;
      match v with Some v -> v | None -> error "bad \\u escape at offset %d" (!pos - 4)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= len then error "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= len then error "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
             let cp = hex4 () in
             let cp =
               (* surrogate pair *)
               if cp >= 0xD800 && cp <= 0xDBFF
                  && !pos + 1 < len && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
               then begin
                 pos := !pos + 2;
                 let lo = hex4 () in
                 if lo >= 0xDC00 && lo <= 0xDFFF then
                   0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                 else error "bad low surrogate at offset %d" !pos
               end
               else cp
             in
             (match Uchar.of_int cp with
              | u -> Buffer.add_utf_8_uchar buf u
              | exception Invalid_argument _ -> Buffer.add_string buf "\xef\xbf\xbd")
           | c -> error "bad escape \\%c at offset %d" c (!pos - 1));
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      while
        !pos < len
        && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      do
        advance ()
      done;
      let str = String.sub s start (!pos - start) in
      match float_of_string_opt str with
      | Some v -> Num v
      | None -> error "bad number %S at offset %d" str start
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let entries = ref [] in
          let field () =
            skip_ws ();
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            entries := (k, v) :: !entries
          in
          field ();
          skip_ws ();
          while peek () = ',' do
            advance ();
            field ();
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !entries)
        end
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | '-' | '0' .. '9' -> parse_number ()
      | c -> error "unexpected %C at offset %d" c !pos
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then error "trailing content at offset %d" !pos;
    v

  let parse s = try Ok (parse_exn s) with Error m -> Result.Error m

  let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
  let to_num = function Num v -> Some v | _ -> None
  let to_str = function Str v -> Some v | _ -> None

  let rec to_string = function
    | Null -> "null"
    | Bool b -> string_of_bool b
    | Num v -> json_float v
    | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
    | Arr l -> "[" ^ String.concat "," (List.map to_string l) ^ "]"
    | Obj kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (to_string v)) kvs)
      ^ "}"
end

module Metrics = struct
  type counter = { mutable n : int; mutable by_scope : (string * int ref) list }
  type gauge = { mutable v : float }

  (* log2 buckets: index i counts values in [2^(i-offset), 2^(i-offset+1)) *)
  let n_buckets = 64
  let bucket_offset = 16

  type histogram = {
    counts : int array;
    mutable total : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  type hist_stats = {
    count : int;
    sum : float;
    min : float;  (** 0 when empty *)
    max : float;  (** 0 when empty *)
    mean : float;  (** 0 when empty *)
    buckets : (float * float * int) list;  (** (lo, hi, count), non-empty buckets only *)
  }

  type metric = C of counter | G of gauge | H of histogram

  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

  let counter name =
    match Hashtbl.find_opt registry name with
    | Some (C c) -> c
    | Some _ -> invalid_arg (Printf.sprintf "Wampde_obs.Metrics.counter: %s is not a counter" name)
    | None ->
      let c = { n = 0; by_scope = [] } in
      Hashtbl.replace registry name (C c);
      c

  let gauge name =
    match Hashtbl.find_opt registry name with
    | Some (G g) -> g
    | Some _ -> invalid_arg (Printf.sprintf "Wampde_obs.Metrics.gauge: %s is not a gauge" name)
    | None ->
      let g = { v = 0. } in
      Hashtbl.replace registry name (G g);
      g

  let histogram name =
    match Hashtbl.find_opt registry name with
    | Some (H h) -> h
    | Some _ ->
      invalid_arg (Printf.sprintf "Wampde_obs.Metrics.histogram: %s is not a histogram" name)
    | None ->
      let h =
        { counts = Array.make n_buckets 0; total = 0; sum = 0.; min_v = infinity; max_v = neg_infinity }
      in
      Hashtbl.replace registry name (H h);
      h

  (* Every enabled counter update is additionally bucketed under the
     innermost active scope label (possibly ""), so sum-over-scopes
     always equals the unscoped total. *)
  let bump c k =
    c.n <- c.n + k;
    let s = !cur_scope in
    match List.assoc_opt s c.by_scope with
    | Some r -> r := !r + k
    | None -> c.by_scope <- (s, ref k) :: c.by_scope

  let incr c = if !enabled_flag then bump c 1
  let add c k = if !enabled_flag then bump c k
  let count c = c.n
  let set g v = if !enabled_flag then g.v <- v
  let value g = g.v

  let bucket_index v =
    if v <= 0. then 0
    else begin
      let _, e = Float.frexp v in
      (* v in [2^(e-1), 2^e) *)
      let i = e - 1 + bucket_offset in
      if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
    end

  let bucket_lo i = Float.ldexp 1. (i - bucket_offset)

  let observe h v =
    if !enabled_flag then begin
      h.total <- h.total + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v;
      let i = bucket_index v in
      h.counts.(i) <- h.counts.(i) + 1
    end

  let stats h =
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.counts.(i) > 0 then buckets := (bucket_lo i, bucket_lo (i + 1), h.counts.(i)) :: !buckets
    done;
    {
      count = h.total;
      sum = h.sum;
      min = (if h.total = 0 then 0. else h.min_v);
      max = (if h.total = 0 then 0. else h.max_v);
      mean = (if h.total = 0 then 0. else h.sum /. float_of_int h.total);
      buckets = !buckets;
    }

  let mean h = if h.total = 0 then 0. else h.sum /. float_of_int h.total

  let reset () =
    Hashtbl.iter
      (fun _ m ->
        match m with
        | C c ->
          c.n <- 0;
          c.by_scope <- []
        | G g -> g.v <- 0.
        | H h ->
          Array.fill h.counts 0 n_buckets 0;
          h.total <- 0;
          h.sum <- 0.;
          h.min_v <- infinity;
          h.max_v <- neg_infinity)
      registry

  let sorted_names () =
    Hashtbl.fold (fun name _ acc -> name :: acc) registry [] |> List.sort String.compare

  let counters () =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt registry name with Some (C c) -> Some (name, c.n) | _ -> None)
      (sorted_names ())

  let gauges () =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt registry name with Some (G g) -> Some (name, g.v) | _ -> None)
      (sorted_names ())

  let histograms () =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt registry name with Some (H h) -> Some (name, stats h) | _ -> None)
      (sorted_names ())

  let scoped_counters () =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt registry name with
        | Some (C c) when c.by_scope <> [] ->
          Some
            ( name,
              List.sort
                (fun (a, _) (b, _) -> String.compare a b)
                (List.map (fun (s, r) -> (s, !r)) c.by_scope) )
        | _ -> None)
      (sorted_names ())

  (* Snapshot every registered metric, run [f] against a zeroed
     registry, then put the saved values back (metrics first
     registered inside [f] are left registered but zeroed).  The
     enabled flag and the active scope label are isolated too, so
     concurrent test suites cannot contaminate each other through the
     process-global registry. *)
  type saved_value =
    | SC of int * (string * int) list
    | SG of float
    | SH of int array * int * float * float * float

  let with_isolated f =
    let saved =
      Hashtbl.fold
        (fun name m acc ->
          let s =
            match m with
            | C c -> SC (c.n, List.map (fun (k, r) -> (k, !r)) c.by_scope)
            | G g -> SG g.v
            | H h -> SH (Array.copy h.counts, h.total, h.sum, h.min_v, h.max_v)
          in
          (name, s) :: acc)
        registry []
    in
    let enabled0 = !enabled_flag in
    let scope0 = !cur_scope in
    reset ();
    Fun.protect
      ~finally:(fun () ->
        enabled_flag := enabled0;
        cur_scope := scope0;
        reset ();
        List.iter
          (fun (name, s) ->
            match (Hashtbl.find_opt registry name, s) with
            | Some (C c), SC (n, sc) ->
              c.n <- n;
              c.by_scope <- List.map (fun (k, v) -> (k, ref v)) sc
            | Some (G g), SG v -> g.v <- v
            | Some (H h), SH (counts, total, sum, mn, mx) ->
              Array.blit counts 0 h.counts 0 n_buckets;
              h.total <- total;
              h.sum <- sum;
              h.min_v <- mn;
              h.max_v <- mx
            | _ -> ())
          saved)
      f

  let table () =
    let buf = Buffer.create 512 in
    Buffer.add_string buf "== solver metrics ==\n";
    List.iter
      (fun name ->
        match Hashtbl.find_opt registry name with
        | Some (C c) -> Printf.bprintf buf "%-34s %14d\n" name c.n
        | Some (G g) -> Printf.bprintf buf "%-34s %14.6g\n" name g.v
        | Some (H h) ->
          let s = stats h in
          Printf.bprintf buf "%-34s count=%d min=%g max=%g mean=%g\n" name s.count s.min s.max
            s.mean
        | None -> ())
      (sorted_names ());
    Buffer.contents buf

  let scoped_table () =
    let buf = Buffer.create 512 in
    Buffer.add_string buf "== scoped cost accounting ==\n";
    List.iter
      (fun (name, scopes) ->
        List.iter
          (fun (scope, n) ->
            Printf.bprintf buf "%-34s %-20s %12d\n" name
              (if scope = "" then "(unscoped)" else scope)
              n)
          scopes)
      (scoped_counters ());
    Buffer.contents buf

  let to_json () =
    let buf = Buffer.create 512 in
    let field_block label items render =
      Printf.bprintf buf "\"%s\":{" label;
      List.iteri
        (fun i (name, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf "\"%s\":%s" (json_escape name) (render x))
        items;
      Buffer.add_char buf '}'
    in
    Buffer.add_char buf '{';
    field_block "counters" (counters ()) string_of_int;
    Buffer.add_char buf ',';
    field_block "gauges" (gauges ()) json_float;
    Buffer.add_char buf ',';
    field_block "histograms" (histograms ()) (fun s ->
        Printf.sprintf "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"mean\":%s,\"buckets\":[%s]}"
          s.count (json_float s.sum) (json_float s.min) (json_float s.max) (json_float s.mean)
          (String.concat ","
             (List.map
                (fun (lo, hi, n) ->
                  Printf.sprintf "[%s,%s,%d]" (json_float lo) (json_float hi) n)
                s.buckets)));
    Buffer.add_char buf ',';
    field_block "scoped" (scoped_counters ()) (fun scopes ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (scope, n) -> Printf.sprintf "\"%s\":%d" (json_escape scope) n)
               scopes)
        ^ "}");
    Buffer.add_char buf '}';
    Buffer.contents buf

  (* Prometheus text exposition format (version 0.0.4).  Metric names
     here use dots ("gmres.iterations"); Prometheus names admit only
     [a-zA-Z0-9_:], so dots map to underscores under a "wampde_"
     prefix.  Scoped counter buckets become a parallel "_scoped" series
     labelled by scope, so the sum-over-scopes invariant stays visible
     to the scraper. *)
  let prom_name name =
    "wampde_"
    ^ String.map
        (fun c ->
          match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
        name

  let prom_float v =
    if Float.is_nan v then "NaN"
    else if v = Float.infinity then "+Inf"
    else if v = Float.neg_infinity then "-Inf"
    else Printf.sprintf "%.12g" v

  (* Label values per the exposition format escape exactly backslash,
     double-quote and line feed — nothing else.  JSON escaping would
     additionally mangle tabs and control bytes into \uXXXX sequences
     Prometheus renders literally, so it cannot be reused here. *)
  let prom_label s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* HELP text escapes only backslash and line feed (no quote: HELP is
     not quoted).  The original dotted metric name rides in the HELP
     line so a scraper can invert the name sanitization. *)
  let prom_help s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_prometheus () =
    let buf = Buffer.create 1024 in
    List.iter
      (fun (name, n) ->
        let p = prom_name name in
        Printf.bprintf buf "# HELP %s wampde counter %s\n# TYPE %s counter\n%s %d\n" p
          (prom_help name) p p n)
      (counters ());
    List.iter
      (fun (name, scopes) ->
        let p = prom_name name ^ "_scoped" in
        Printf.bprintf buf "# HELP %s wampde counter %s by scope\n# TYPE %s counter\n" p
          (prom_help name) p;
        List.iter
          (fun (scope, n) ->
            Printf.bprintf buf "%s{scope=\"%s\"} %d\n" p
              (prom_label (if scope = "" then "unscoped" else scope))
              n)
          scopes)
      (scoped_counters ());
    List.iter
      (fun (name, v) ->
        let p = prom_name name in
        Printf.bprintf buf "# HELP %s wampde gauge %s\n# TYPE %s gauge\n%s %s\n" p
          (prom_help name) p p (prom_float v))
      (gauges ());
    List.iter
      (fun (name, s) ->
        let p = prom_name name in
        Printf.bprintf buf "# HELP %s wampde histogram %s\n# TYPE %s histogram\n" p
          (prom_help name) p;
        let cum = ref 0 in
        List.iter
          (fun (_, hi, n) ->
            cum := !cum + n;
            Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" p (prom_float hi) !cum)
          s.buckets;
        Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" p s.count;
        Printf.bprintf buf "%s_sum %s\n" p (prom_float s.sum);
        Printf.bprintf buf "%s_count %d\n" p s.count)
      (histograms ());
    Buffer.contents buf
end

module Scope = struct
  let current () = if !cur_scope = "" then None else Some !cur_scope

  let with_scope label f =
    let saved = !cur_scope in
    cur_scope := label;
    Fun.protect ~finally:(fun () -> cur_scope := saved) f
end

module Events = struct
  type t =
    | Newton_iter of { solver : string; k : int; residual : float; damping : float }
    | Newton_done of { solver : string; iterations : int; residual : float; converged : bool }
    | Lu_factor of { n : int }
    | Gmres_iter of { k : int; residual : float }
    | Step_accept of { t : float; h : float }
    | Step_reject of { t : float; h : float; reason : string }
    | Step_retry of { t : float; h : float; h_next : float; reason : string }
    | Phase_condition of { omega : float; t2 : float }
    | Strategy_escalated of { solver : string; from_ : string; to_ : string }
    | Health_warning of {
        monitor : string;
        value : float;
        threshold : float;
        t : float;
        hint : string;
      }

  type subscription = int

  let subscribers : (int * (t -> unit)) list ref = ref []
  let next_sub = ref 0

  let subscribe f =
    let id = !next_sub in
    incr next_sub;
    subscribers := !subscribers @ [ (id, f) ];
    id

  let unsubscribe id = subscribers := List.filter (fun (i, _) -> i <> id) !subscribers
  let active () = !enabled_flag && !subscribers <> []
  let emit e = if active () then List.iter (fun (_, f) -> f e) !subscribers

  let to_json e =
    match e with
    | Newton_iter { solver; k; residual; damping } ->
      Printf.sprintf
        "{\"type\":\"event\",\"event\":\"newton_iter\",\"solver\":\"%s\",\"k\":%d,\"residual\":%s,\"damping\":%s}"
        (json_escape solver) k (json_float residual) (json_float damping)
    | Newton_done { solver; iterations; residual; converged } ->
      Printf.sprintf
        "{\"type\":\"event\",\"event\":\"newton_done\",\"solver\":\"%s\",\"iterations\":%d,\"residual\":%s,\"converged\":%b}"
        (json_escape solver) iterations (json_float residual) converged
    | Lu_factor { n } -> Printf.sprintf "{\"type\":\"event\",\"event\":\"lu_factor\",\"n\":%d}" n
    | Gmres_iter { k; residual } ->
      Printf.sprintf "{\"type\":\"event\",\"event\":\"gmres_iter\",\"k\":%d,\"residual\":%s}" k
        (json_float residual)
    | Step_accept { t; h } ->
      Printf.sprintf "{\"type\":\"event\",\"event\":\"step_accept\",\"t\":%s,\"h\":%s}"
        (json_float t) (json_float h)
    | Step_reject { t; h; reason } ->
      Printf.sprintf
        "{\"type\":\"event\",\"event\":\"step_reject\",\"t\":%s,\"h\":%s,\"reason\":\"%s\"}"
        (json_float t) (json_float h) (json_escape reason)
    | Step_retry { t; h; h_next; reason } ->
      Printf.sprintf
        "{\"type\":\"event\",\"event\":\"step_retry\",\"t\":%s,\"h\":%s,\"h_next\":%s,\"reason\":\"%s\"}"
        (json_float t) (json_float h) (json_float h_next) (json_escape reason)
    | Phase_condition { omega; t2 } ->
      Printf.sprintf "{\"type\":\"event\",\"event\":\"phase_condition\",\"omega\":%s,\"t2\":%s}"
        (json_float omega) (json_float t2)
    | Strategy_escalated { solver; from_; to_ } ->
      Printf.sprintf
        "{\"type\":\"event\",\"event\":\"strategy_escalated\",\"solver\":\"%s\",\"from\":\"%s\",\"to\":\"%s\"}"
        (json_escape solver) (json_escape from_) (json_escape to_)
    | Health_warning { monitor; value; threshold; t; hint } ->
      Printf.sprintf
        "{\"type\":\"event\",\"event\":\"health_warning\",\"monitor\":\"%s\",\"value\":%s,\"threshold\":%s,\"t\":%s,\"hint\":\"%s\"}"
        (json_escape monitor) (json_float value) (json_float threshold) (json_float t)
        (json_escape hint)
end

(* ------------------------------------------------------------------ *)
(* Smoothed step-rate ETA estimator                                    *)
(* ------------------------------------------------------------------ *)

module Eta = struct
  (* Exponentially-smoothed progress rate.  The (time, completed) pair
     only advances when progress is actually made, so idle stretches
     lengthen the next rate sample instead of being silently dropped —
     the estimate never turns optimistic from stalls. *)
  type t = {
    total : float;
    alpha : float;
    mutable last_t : float;  (* nan until the first update *)
    mutable last_done : float;
    mutable rate : float;  (* smoothed units per second *)
    mutable have_rate : bool;
  }

  let create ?(alpha = 0.3) ~total () =
    if (not (Float.is_finite total)) || total <= 0. then
      invalid_arg "Wampde_obs.Eta.create: total must be finite and positive";
    if (not (Float.is_finite alpha)) || alpha <= 0. || alpha > 1. then
      invalid_arg "Wampde_obs.Eta.create: alpha must be in (0, 1]";
    { total; alpha; last_t = nan; last_done = 0.; rate = 0.; have_rate = false }

  let total e = e.total
  let completed e = e.last_done

  let update e ~now ~completed =
    let completed = Float.max e.last_done (Float.min e.total completed) in
    if Float.is_nan e.last_t then begin
      e.last_t <- now;
      e.last_done <- completed
    end
    else begin
      let dt = now -. e.last_t and dc = completed -. e.last_done in
      if dc > 0. then
        if dt > 0. then begin
          let inst = dc /. dt in
          e.rate <-
            (if e.have_rate then ((1. -. e.alpha) *. e.rate) +. (e.alpha *. inst) else inst);
          e.have_rate <- true;
          e.last_t <- now;
          e.last_done <- completed
        end
        else
          (* progress below clock resolution: bank it, keep the old
             timestamp so the elapsed time is not undercounted *)
          e.last_done <- completed
    end

  let rate e = if e.have_rate then e.rate else 0.
  let fraction e = Float.max 0. (Float.min 1. (e.last_done /. e.total))

  let eta_s e =
    let remaining = Float.max 0. (e.total -. e.last_done) in
    if remaining = 0. then 0.
    else if e.have_rate && e.rate > 0. then remaining /. e.rate
    else Float.infinity
end

(* ------------------------------------------------------------------ *)
(* Numerical-health monitors                                           *)
(* ------------------------------------------------------------------ *)

module Health = struct
  type thresholds = {
    spectral_tol : float;
    tail_tol : float;
    over_resolution : float;
    gmres_stagnation : float;
    gmres_plateau : float;
    gmres_plateau_min_iters : int;
    newton_rate : float;
    rejection_rate : float;
    rejection_window : int;
    cascade_pressure : float;
  }

  let default_thresholds =
    {
      spectral_tol = 1e-6;
      tail_tol = 1e-6;
      over_resolution = 0.75;
      gmres_stagnation = 0.5;
      gmres_plateau = 0.9;
      gmres_plateau_min_iters = 8;
      newton_rate = 0.9;
      rejection_rate = 0.3;
      rejection_window = 16;
      cascade_pressure = 0.25;
    }

  let cur = ref default_thresholds
  let thresholds () = !cur

  let g_tail = Metrics.gauge "health.tail_energy"
  let g_needed = Metrics.gauge "health.effective_harmonics"
  let g_avail = Metrics.gauge "health.harmonics_available"
  let g_newton = Metrics.gauge "health.newton_rate"
  let g_stag = Metrics.gauge "health.gmres_stagnation"
  let g_plateau = Metrics.gauge "health.gmres_plateau"
  let g_reject = Metrics.gauge "health.rejection_rate"
  let g_pressure = Metrics.gauge "health.cascade_pressure"
  let c_warnings = Metrics.counter "health.warnings"

  (* Edge-triggered warning state: monitor name -> was the previous
     observation strictly above its threshold?  A warning fires only on
     the below->above crossing; a value exactly equal to the threshold
     counts as below. *)
  let edge : (string, bool) Hashtbl.t = Hashtbl.create 8

  (* sliding window of the last [rejection_window] macro-step
     decisions; true = rejected or retried *)
  let window : bool array ref = ref [||]

  let win_pos = ref 0
  let win_count = ref 0
  let win_bad = ref 0
  let decisions = ref 0
  let escalations = ref 0

  let reset () =
    Hashtbl.reset edge;
    window := [||];
    win_pos := 0;
    win_count := 0;
    win_bad := 0;
    decisions := 0;
    escalations := 0

  let set_thresholds t =
    if t.rejection_window < 1 then
      invalid_arg "Wampde_obs.Health.set_thresholds: rejection_window must be >= 1";
    cur := t;
    reset ()

  let fire ~monitor ~t ~value ~threshold ~hint =
    Metrics.incr c_warnings;
    Metrics.incr (Metrics.counter ("health.warnings." ^ monitor));
    if Events.active () then
      Events.emit (Events.Health_warning { monitor; value; threshold; t; hint })

  let check ~monitor ~t ~value ~threshold ~hint =
    let above = Float.is_finite threshold && value > threshold in
    let was = match Hashtbl.find_opt edge monitor with Some b -> b | None -> false in
    Hashtbl.replace edge monitor above;
    if above && not was then fire ~monitor ~t ~value ~threshold ~hint

  let note_spectrum ?(t = nan) ~tail ~needed ~available () =
    if !enabled_flag then begin
      let th = !cur in
      Metrics.set g_tail tail;
      Metrics.set g_needed (float_of_int needed);
      Metrics.set g_avail (float_of_int available);
      check ~monitor:"t1_tail_energy" ~t ~value:tail ~threshold:th.tail_tol
        ~hint:"t1 grid under-resolved: increase n1";
      if available > 0 then
        check ~monitor:"t1_over_resolution" ~t
          ~value:(1. -. (float_of_int needed /. float_of_int available))
          ~threshold:th.over_resolution ~hint:"t1 grid over-resolved: decrease n1"
    end

  let note_newton ?(t = nan) ~iterations ~rate () =
    if !enabled_flag && Float.is_finite rate && iterations >= 1 then begin
      Metrics.set g_newton rate;
      (* a single-iteration "rate" is just the residual drop of one
         update; contraction needs at least two *)
      if iterations >= 2 then
        check ~monitor:"newton_rate" ~t ~value:rate ~threshold:(!cur).newton_rate
          ~hint:"Newton contraction is slow: refresh the Jacobian more often or shrink h2"
    end

  let note_gmres ?(t = nan) ~iterations ~restart ~converged ~reduction () =
    if !enabled_flag && restart > 0 then begin
      let th = !cur in
      let stagnation = float_of_int iterations /. float_of_int restart in
      Metrics.set g_stag stagnation;
      if Float.is_finite reduction then Metrics.set g_plateau reduction;
      (* a failed solve is stagnation whatever the iteration count *)
      let value =
        if converged then stagnation else Float.max stagnation (th.gmres_stagnation +. 1.)
      in
      check ~monitor:"gmres_stagnation" ~t ~value ~threshold:th.gmres_stagnation
        ~hint:
          "GMRES is consuming a large fraction of its restart window: preconditioner quality \
           is degrading";
      if iterations >= th.gmres_plateau_min_iters && Float.is_finite reduction then
        check ~monitor:"gmres_plateau" ~t ~value:reduction ~threshold:th.gmres_plateau
          ~hint:
            "GMRES residual has plateaued: the preconditioned operator contracts near unity"
    end

  let note_decision ?(t = nan) ~outcome () =
    (* micro-step decisions of a univariate transient (warmup or
       baseline) are not macro-step health; same exclusion as the run
       report's history *)
    if !enabled_flag && !cur_scope <> "transient" then begin
      let th = !cur in
      if Array.length !window <> th.rejection_window then begin
        window := Array.make th.rejection_window false;
        win_pos := 0;
        win_count := 0;
        win_bad := 0
      end;
      let w = !window in
      let bad = match outcome with `Accept -> false | `Reject | `Retry -> true in
      if !win_count = th.rejection_window then begin
        if w.(!win_pos) then decr win_bad
      end
      else incr win_count;
      w.(!win_pos) <- bad;
      if bad then incr win_bad;
      win_pos := (!win_pos + 1) mod th.rejection_window;
      incr decisions;
      let rate = float_of_int !win_bad /. float_of_int !win_count in
      Metrics.set g_reject rate;
      Metrics.set g_pressure (float_of_int !escalations /. float_of_int !decisions);
      if !win_count >= th.rejection_window then
        check ~monitor:"rejection_rate" ~t ~value:rate ~threshold:th.rejection_rate
          ~hint:
            "the step controller is rejecting or retrying many macro steps: loosen rtol or \
             start with a smaller h2"
    end

  let note_escalation ?(t = nan) () =
    if !enabled_flag then begin
      incr escalations;
      let p = float_of_int !escalations /. float_of_int (Int.max 1 !decisions) in
      Metrics.set g_pressure p;
      check ~monitor:"cascade_pressure" ~t ~value:p ~threshold:(!cur).cascade_pressure
        ~hint:
          "the globalization cascade escalates often: the base strategy is mismatched to \
           this regime"
    end
end

(* ------------------------------------------------------------------ *)
(* Bounded NDJSON progress stream                                      *)
(* ------------------------------------------------------------------ *)

module Stream = struct
  let schema = "wampde.stream/1"
  let c_dropped = Metrics.counter "stream.dropped"

  type t = {
    write : string -> unit;
    flush : unit -> unit;
    heartbeat_s : float;
    min_progress_s : float;
    max_records : int;
    epoch : float;
    eta : Eta.t option;
    job : string option;  (* multiplexing tag spliced into every record *)
    mutable records : int;
    mutable truncated : bool;
    mutable last_write : float;
    mutable last_progress : float;
    mutable steps : int;
    mutable omega : float;  (* nan until a phase-condition event arrives *)
    mutable finished : bool;
    mutable sub : Events.subscription option;
  }

  let wall s = now () -. s.epoch

  (* Every record is a one-line JSON object starting with '{'; the job
     tag rides as the first field so interleaved per-job streams on one
     shared channel stay separable. *)
  let decorate s line =
    match s.job with
    | None -> line
    | Some j ->
      Printf.sprintf "{\"job\":\"%s\",%s" (json_escape j)
        (String.sub line 1 (String.length line - 1))

  (* Bounded sink: once [max_records] non-terminal records are written,
     further ones are counted into [stream.dropped] after a single
     "truncated" marker.  The terminal record bypasses the cap (see
     [finish]) so a stream always ends in "done" or "error". *)
  let put s line =
    if not s.finished then begin
      if s.records < s.max_records then begin
        s.records <- s.records + 1;
        s.last_write <- now ();
        s.write (decorate s line)
      end
      else begin
        Metrics.incr c_dropped;
        if not s.truncated then begin
          s.truncated <- true;
          s.last_write <- now ();
          s.write
            (decorate s
               (Printf.sprintf "{\"type\":\"truncated\",\"t_s\":%s,\"records\":%d}"
                  (json_float (wall s)) s.records))
        end
      end
    end

  let progress s ~t2 ~h =
    let frac, eta_s, rate =
      match s.eta with
      | Some e -> (Eta.fraction e, Eta.eta_s e, Eta.rate e)
      | None -> (nan, nan, nan)
    in
    put s
      (Printf.sprintf
         "{\"type\":\"progress\",\"t_s\":%s,\"t2\":%s,\"h2\":%s,\"steps\":%d,\"omega\":%s,\"frac\":%s,\"eta_s\":%s,\"rate\":%s}"
         (json_float (wall s)) (json_float t2) (json_float h) s.steps (json_float s.omega)
         (json_float frac) (json_float eta_s) (json_float rate));
    s.flush ()

  let handle s e =
    (* micro steps of a univariate transient are not run progress; the
       heartbeat below still covers long warmups *)
    (if !cur_scope <> "transient" then
       match e with
       | Events.Phase_condition { omega; _ } -> s.omega <- omega
       | Events.Step_accept { t; h } ->
         s.steps <- s.steps + 1;
         let completed = t +. h in
         (match s.eta with
          | Some e -> Eta.update e ~now:(now ()) ~completed
          | None -> ());
         if now () -. s.last_progress >= s.min_progress_s then begin
           s.last_progress <- now ();
           progress s ~t2:completed ~h
         end
       | Events.Step_reject _ | Events.Step_retry _ | Events.Strategy_escalated _
       | Events.Health_warning _ ->
         put s (Events.to_json e);
         s.flush ()
       | Events.Newton_iter _ | Events.Newton_done _ | Events.Lu_factor _
       | Events.Gmres_iter _ -> ());
    if now () -. s.last_write >= s.heartbeat_s then begin
      put s
        (Printf.sprintf "{\"type\":\"heartbeat\",\"t_s\":%s,\"steps\":%d}"
           (json_float (wall s)) s.steps);
      s.flush ()
    end

  let start ?(heartbeat_s = 5.) ?(min_progress_s = 0.25) ?(max_records = 100_000) ?total
      ?(run = "") ?job ~write ~flush () =
    let t0 = now () in
    let eta =
      match total with
      | Some tt when Float.is_finite tt && tt > 0. -> Some (Eta.create ~total:tt ())
      | _ -> None
    in
    let s =
      {
        write;
        flush;
        heartbeat_s = Float.max 0.01 heartbeat_s;
        min_progress_s = Float.max 0. min_progress_s;
        max_records = Int.max 2 max_records;
        epoch = t0;
        eta;
        job;
        records = 0;
        truncated = false;
        last_write = t0;
        (* let the first accepted step emit a progress record at once *)
        last_progress = t0 -. min_progress_s;
        steps = 0;
        omega = nan;
        finished = false;
        sub = None;
      }
    in
    put s
      (Printf.sprintf "{\"type\":\"start\",\"schema\":\"%s\",\"run\":\"%s\",\"total\":%s}"
         (json_escape schema) (json_escape run)
         (match total with Some t -> json_float t | None -> "null"));
    s.flush ();
    s.sub <- Some (Events.subscribe (handle s));
    s

  (* Suspend/resume the event subscription without touching the record
     trail: a scheduler multiplexing several job streams onto one
     channel keeps exactly one stream subscribed — the job whose
     quantum is running — so solver events are never attributed to a
     preempted job.  Both are idempotent. *)
  let suspend s =
    match s.sub with
    | Some id ->
      Events.unsubscribe id;
      s.sub <- None
    | None -> ()

  let resume s = if s.sub = None && not s.finished then s.sub <- Some (Events.subscribe (handle s))

  (* Idempotent: the first call writes the terminal record and
     unsubscribes; later calls are no-ops, so an at_exit safety net can
     coexist with the normal shutdown path. *)
  let finish s ~ok ?error () =
    if not s.finished then begin
      (match s.sub with Some id -> Events.unsubscribe id | None -> ());
      s.sub <- None;
      s.records <- s.records + 1;
      s.write
        (decorate s
           (if ok then
              Printf.sprintf "{\"type\":\"done\",\"t_s\":%s,\"steps\":%d,\"records\":%d}"
                (json_float (wall s)) s.steps s.records
            else
              Printf.sprintf "{\"type\":\"error\",\"error\":\"%s\",\"t_s\":%s,\"steps\":%d}"
                (json_escape (match error with Some e -> e | None -> "aborted"))
                (json_float (wall s)) s.steps));
      s.flush ();
      s.finished <- true
    end

  let records s = s.records
  let steps s = s.steps
end

module Span = struct
  type attr = Int of int | Float of float | Str of string

  type gc_delta = {
    minor_words : float;
    promoted_words : float;
    major_words : float;
    minor_collections : int;
    major_collections : int;
  }

  type record = {
    id : int;
    parent : int option;
    name : string;
    attrs : (string * attr) list;
    t_start : float;
    t_stop : float;
    gc : gc_delta option;
    tid : int;
        (* trace track: 1 = the calling domain, 1+w for pool worker w.
           Spans opened by [span] always carry 1; worker-side work is
           reported post-barrier through [emit_external]. *)
  }

  type instant = { i_name : string; i_attrs : (string * attr) list; i_t : float }

  let recording = ref false
  let writer : (string -> unit) option ref = ref None
  let epoch = ref 0.
  let next_id = ref 0
  let stack : (int * float) list ref = ref []
  let completed : record list ref = ref []
  let instants : instant list ref = ref []

  (* When on, each span snapshots [Gc.quick_stat] at entry and exit and
     records the allocation/collection deltas.  A [quick_stat] call is
     cheap (no heap traversal) but does allocate its result record, so
     this stays opt-in even when a sink is active. *)
  let gc_flag = ref false
  let set_gc_stats b = gc_flag := b
  let gc_stats () = !gc_flag

  let tracing () = !recording || !writer <> None

  let attr_json a =
    match a with Int i -> string_of_int i | Float f -> json_float f | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

  let attrs_json attrs =
    "{"
    ^ String.concat ","
        (List.map (fun (k, a) -> Printf.sprintf "\"%s\":%s" (json_escape k) (attr_json a)) attrs)
    ^ "}"

  let gc_json d =
    Printf.sprintf
      "{\"minor_words\":%s,\"promoted_words\":%s,\"major_words\":%s,\"minor_collections\":%d,\"major_collections\":%d}"
      (json_float d.minor_words) (json_float d.promoted_words) (json_float d.major_words)
      d.minor_collections d.major_collections

  (* words freshly allocated during the span (minor + direct-to-major;
     promoted words would be double counted) *)
  let allocated_words d = d.minor_words +. d.major_words -. d.promoted_words

  let parent_json = function None -> "null" | Some p -> string_of_int p

  let mark_start () = if not (tracing ()) then epoch := now ()

  let start_recording () =
    mark_start ();
    completed := [];
    instants := [];
    recording := true

  let stop_recording () =
    recording := false;
    let records = List.rev !completed in
    completed := [];
    records

  let recorded_instants () = List.rev !instants

  let set_writer w =
    (match w with Some _ -> mark_start () | None -> ());
    writer := w

  let instant ?(attrs = []) name =
    if tracing () then begin
      let t = now () -. !epoch in
      (match !writer with
       | Some w ->
         w
           (Printf.sprintf "{\"type\":\"instant\",\"name\":\"%s\",\"t_s\":%s,\"attrs\":%s}"
              (json_escape name) (json_float t) (attrs_json attrs))
       | None -> ());
      if !recording then instants := { i_name = name; i_attrs = attrs; i_t = t } :: !instants
    end

  let gc_delta (s0 : Gc.stat) (s1 : Gc.stat) =
    {
      minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
      promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
      major_words = s1.Gc.major_words -. s0.Gc.major_words;
      minor_collections = s1.Gc.minor_collections - s0.Gc.minor_collections;
      major_collections = s1.Gc.major_collections - s0.Gc.major_collections;
    }

  let span ?(attrs = []) name f =
    if not (tracing ()) then f ()
    else begin
      let id = !next_id in
      incr next_id;
      let parent = match !stack with (pid, _) :: _ -> Some pid | [] -> None in
      let g0 = if !gc_flag then Some (Gc.quick_stat ()) else None in
      let t0 = now () -. !epoch in
      stack := (id, t0) :: !stack;
      (match !writer with
       | Some w ->
         w
           (Printf.sprintf "{\"type\":\"span_start\",\"id\":%d,\"parent\":%s,\"name\":\"%s\",\"t_s\":%s,\"attrs\":%s}"
              id (parent_json parent) (json_escape name) (json_float t0) (attrs_json attrs))
       | None -> ());
      Fun.protect f ~finally:(fun () ->
          let t1 = now () -. !epoch in
          let gc = match g0 with None -> None | Some s0 -> Some (gc_delta s0 (Gc.quick_stat ())) in
          (match !stack with
           | (sid, _) :: rest when sid = id -> stack := rest
           | _ -> stack := List.filter (fun (sid, _) -> sid <> id) !stack);
          (match !writer with
           | Some w ->
             let gc_field = match gc with None -> "" | Some d -> ",\"gc\":" ^ gc_json d in
             w
               (Printf.sprintf "{\"type\":\"span_stop\",\"id\":%d,\"name\":\"%s\",\"t_s\":%s,\"dur_s\":%s%s}"
                  id (json_escape name) (json_float t1) (json_float (t1 -. t0)) gc_field)
           | None -> ());
          if !recording then
            completed :=
              { id; parent; name; attrs; t_start = t0; t_stop = t1; gc; tid = 1 } :: !completed)
    end

  (* Report a span that ran on another domain.  Pool workers must not
     touch this module's global state (plain refs, no synchronization),
     so they only write wall-clock readings into caller-owned arrays;
     the calling domain turns them into records here, after the
     barrier.  [t_start]/[t_stop] are absolute [Unix.gettimeofday]
     readings; [tid] picks the trace track (1 = the calling domain,
     1+w for worker w). *)
  let emit_external ?(attrs = []) ~tid ~name ~t_start ~t_stop () =
    if tracing () then begin
      let id = !next_id in
      incr next_id;
      let t0 = t_start -. !epoch and t1 = t_stop -. !epoch in
      (match !writer with
       | Some w ->
         w
           (Printf.sprintf
              "{\"type\":\"span_start\",\"id\":%d,\"parent\":null,\"name\":\"%s\",\"t_s\":%s,\"tid\":%d,\"attrs\":%s}"
              id (json_escape name) (json_float t0) tid (attrs_json attrs));
         w
           (Printf.sprintf
              "{\"type\":\"span_stop\",\"id\":%d,\"name\":\"%s\",\"t_s\":%s,\"dur_s\":%s,\"tid\":%d}"
              id (json_escape name) (json_float t1) (json_float (t1 -. t0)) tid)
       | None -> ());
      if !recording then
        completed :=
          { id; parent = None; name; attrs; t_start = t0; t_stop = t1; gc = None; tid }
          :: !completed
    end

  (* Aggregate completed spans into a tree keyed by the name path from
     the root, e.g. envelope.simulate > envelope.step > newton.solve. *)
  type node = {
    mutable n_calls : int;
    mutable total : float;
    mutable alloc_w : float;  (* allocated words, when GC stats were on *)
    mutable gcs : int;  (* minor + major collections *)
    mutable children : (string * node) list;  (* insertion order *)
  }

  let tree_summary records =
    let by_id = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace by_id r.id r) records;
    let has_gc = List.exists (fun r -> r.gc <> None) records in
    let rec path r =
      match r.parent with
      | None -> [ r.name ]
      | Some p -> (
        match Hashtbl.find_opt by_id p with Some pr -> path pr @ [ r.name ] | None -> [ r.name ])
    in
    let root = { n_calls = 0; total = 0.; alloc_w = 0.; gcs = 0; children = [] } in
    let insert r =
      let rec go node = function
        | [] ->
          node.n_calls <- node.n_calls + 1;
          node.total <- node.total +. (r.t_stop -. r.t_start);
          (match r.gc with
           | None -> ()
           | Some d ->
             node.alloc_w <- node.alloc_w +. allocated_words d;
             node.gcs <- node.gcs + d.minor_collections + d.major_collections)
        | name :: rest ->
          let child =
            match List.assoc_opt name node.children with
            | Some c -> c
            | None ->
              let c = { n_calls = 0; total = 0.; alloc_w = 0.; gcs = 0; children = [] } in
              node.children <- node.children @ [ (name, c) ];
              c
          in
          go child rest
      in
      go root (path r)
    in
    List.iter insert records;
    let buf = Buffer.create 256 in
    Buffer.add_string buf "== span summary ==\n";
    let rec print indent (name, node) =
      Printf.bprintf buf "%s%-*s %8dx %10.4f s" indent
        (Int.max 1 (36 - String.length indent))
        name node.n_calls node.total;
      if has_gc then Printf.bprintf buf " %12.4g w %6d gc" node.alloc_w node.gcs;
      Buffer.add_char buf '\n';
      List.iter (print (indent ^ "  ")) node.children
    in
    List.iter (print "") root.children;
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Chrome/Perfetto trace-event exporter                                *)
(* ------------------------------------------------------------------ *)

module Trace_event = struct
  (* Emits the Chrome trace-event JSON array format understood by
     ui.perfetto.dev and chrome://tracing: duration events as matched
     "B"/"E" pairs, solver events as instant ("i") events, timestamps
     in microseconds.  B/E pairs are generated by a depth-first walk
     of the reconstructed span tree, so they are balanced and properly
     nested by construction (trace viewers sort by ts anyway). *)

  let pid = 1
  let tid = 1

  let buf_args buf attrs =
    if attrs <> [] then Printf.bprintf buf ",\"args\":%s" (Span.attrs_json attrs)

  let span_args (r : Span.record) =
    match r.gc with
    | None -> r.attrs
    | Some d ->
      r.attrs
      @ [
          ("alloc_words", Span.Float (Span.allocated_words d));
          ("minor_collections", Span.Int d.minor_collections);
          ("major_collections", Span.Int d.major_collections);
        ]

  let to_string ?(process_name = "wampde") ~spans ~instants () =
    let buf = Buffer.create 4096 in
    Buffer.add_char buf '[';
    let first = ref true in
    let sep () =
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf "\n"
    in
    sep ();
    Printf.bprintf buf
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
      pid tid (json_escape process_name);
    (* one named track per domain seen in the spans: tid 1 is the main
       domain, 1+w is pool worker w — multicore spans land on separate
       Perfetto tracks instead of overlapping on one *)
    let tids =
      List.sort_uniq compare (tid :: List.map (fun (r : Span.record) -> r.Span.tid) spans)
    in
    List.iter
      (fun t ->
        sep ();
        Printf.bprintf buf
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
          pid t
          (if t = tid then "main" else Printf.sprintf "worker-%d" (t - tid)))
      tids;
    (* span tree: children by parent id, roots in start order *)
    let ids = Hashtbl.create 64 in
    List.iter (fun (r : Span.record) -> Hashtbl.replace ids r.Span.id ()) spans;
    let children = Hashtbl.create 64 in
    let roots = ref [] in
    List.iter
      (fun (r : Span.record) ->
        match r.Span.parent with
        | Some p when Hashtbl.mem ids p ->
          Hashtbl.replace children p (r :: (try Hashtbl.find children p with Not_found -> []))
        | _ -> roots := r :: !roots)
      spans;
    let sort_spans l =
      List.sort (fun (a : Span.record) b -> compare a.Span.t_start b.Span.t_start) l
    in
    let us t = t *. 1e6 in
    let rec emit (r : Span.record) =
      sep ();
      Printf.bprintf buf "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":%s,\"pid\":%d,\"tid\":%d"
        (json_escape r.Span.name)
        (json_float (us r.Span.t_start))
        pid r.Span.tid;
      buf_args buf (span_args r);
      Buffer.add_char buf '}';
      List.iter emit
        (sort_spans (try Hashtbl.find children r.Span.id with Not_found -> []));
      sep ();
      Printf.bprintf buf "{\"name\":\"%s\",\"ph\":\"E\",\"ts\":%s,\"pid\":%d,\"tid\":%d}"
        (json_escape r.Span.name)
        (json_float (us r.Span.t_stop))
        pid r.Span.tid
    in
    List.iter emit (sort_spans !roots);
    (* A run that opened zero spans and recorded zero instants would
       otherwise serialize to the process_name metadata alone, which
       trace viewers reject as an empty trace; one synthetic instant at
       t = 0 keeps the file loadable. *)
    if spans = [] && instants = [] then begin
      sep ();
      Printf.bprintf buf
        "{\"name\":\"trace_start\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":0,\"pid\":%d,\"tid\":%d,\"s\":\"t\"}"
        pid tid
    end;
    List.iter
      (fun (i : Span.instant) ->
        sep ();
        Printf.bprintf buf
          "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"s\":\"t\""
          (json_escape i.Span.i_name)
          (json_float (us i.Span.i_t))
          pid tid;
        buf_args buf i.Span.i_attrs;
        Buffer.add_char buf '}')
      instants;
    Buffer.add_string buf "\n]\n";
    Buffer.contents buf

  (* Bridge from typed solver events to trace instants; subscribe this
     with [Events.subscribe] while spans are being recorded to get the
     accept/reject/retry trail and omega(t2) on the span timeline. *)
  let record_event (e : Events.t) =
    match e with
    | Events.Step_accept { t; h } ->
      Span.instant ~attrs:[ ("t", Span.Float t); ("h", Span.Float h) ] "step_accept"
    | Events.Step_reject { t; h; reason } ->
      Span.instant
        ~attrs:[ ("t", Span.Float t); ("h", Span.Float h); ("reason", Span.Str reason) ]
        "step_reject"
    | Events.Step_retry { t; h; h_next; reason } ->
      Span.instant
        ~attrs:
          [
            ("t", Span.Float t);
            ("h", Span.Float h);
            ("h_next", Span.Float h_next);
            ("reason", Span.Str reason);
          ]
        "step_retry"
    | Events.Phase_condition { omega; t2 } ->
      Span.instant
        ~attrs:[ ("omega", Span.Float omega); ("t2", Span.Float t2) ]
        "phase_condition"
    | Events.Newton_done { solver; iterations; residual; converged } ->
      Span.instant
        ~attrs:
          [
            ("solver", Span.Str solver);
            ("iterations", Span.Int iterations);
            ("residual", Span.Float residual);
            ("converged", Span.Str (if converged then "true" else "false"));
          ]
        "newton_done"
    | Events.Strategy_escalated { solver; from_; to_ } ->
      Span.instant
        ~attrs:[ ("solver", Span.Str solver); ("from", Span.Str from_); ("to", Span.Str to_) ]
        "strategy_escalated"
    | Events.Health_warning { monitor; value; threshold; t; hint = _ } ->
      Span.instant
        ~attrs:
          [
            ("monitor", Span.Str monitor);
            ("value", Span.Float value);
            ("threshold", Span.Float threshold);
            ("t", Span.Float t);
          ]
        "health_warning"
    | Events.Newton_iter _ | Events.Lu_factor _ | Events.Gmres_iter _ ->
      (* per-iteration events are too dense for a useful timeline; the
         counters and histograms carry them *)
      ()
end

(* ------------------------------------------------------------------ *)
(* Run report: self-contained JSON manifest + markdown rendering       *)
(* ------------------------------------------------------------------ *)

(* Provenance block shared by run manifests and flight dumps: both
   kinds of evidence identify the producing run the same way, so a
   postmortem can be matched to its run report field-for-field. *)
let provenance_fields buf ~argv ~subcommand ~git ~jobs =
  Printf.bprintf buf "\"argv\":[%s],"
    (String.concat ","
       (List.map (fun a -> Printf.sprintf "\"%s\"" (json_escape a)) (Array.to_list argv)));
  Printf.bprintf buf "\"subcommand\":\"%s\"," (json_escape subcommand);
  Printf.bprintf buf "\"jobs\":%d," (max 1 jobs);
  Printf.bprintf buf "\"git\":%s,"
    (match git with Some g -> Printf.sprintf "\"%s\"" (json_escape g) | None -> "null");
  Printf.bprintf buf "\"ocaml\":\"%s\"," (json_escape Sys.ocaml_version);
  Printf.bprintf buf "\"unix_time\":%s," (json_float (Unix.time ()))

module Report = struct
  let schema = "wampde.run-report/1"

  type step = {
    t : float;
    h : float;
    omega : float option;
    newton_iterations : int;
    residual : float;
    outcome : string;  (* "accept" | "reject" | "retry" *)
    reason : string option;
  }

  (* Builds the per-macro-step history from the solver event stream:
     Newton work accumulates into a pending bucket that each
     accept/reject/retry decision flushes into a step record;
     [Phase_condition] (emitted right after an accepted step) back-fills
     the frequency of the latest record. *)
  type collector = {
    mutable steps : step list;  (* newest first *)
    mutable pending_iters : int;
    mutable pending_residual : float;
    mutable sub : Events.subscription option;
  }

  let handle c (e : Events.t) =
    (* The history records slow-time (macro) step decisions.  Transient
       integration — the univariate warmup before an envelope run, or a
       brute-force baseline — emits the same Step_accept events for its
       micro steps, thousands per run; those are excluded here (the
       scoped counters still carry them under "transient"). *)
    if !cur_scope = "transient" then ()
    else
    match e with
    | Events.Newton_iter { residual; _ } ->
      c.pending_iters <- c.pending_iters + 1;
      c.pending_residual <- residual
    | Events.Newton_done { residual; _ } -> c.pending_residual <- residual
    | Events.Lu_factor _ | Events.Gmres_iter _ | Events.Strategy_escalated _
    | Events.Health_warning _ -> ()
    | Events.Step_accept { t; h } | Events.Step_reject { t; h; reason = _ } | Events.Step_retry { t; h; h_next = _; reason = _ }
      ->
      let outcome, reason =
        match e with
        | Events.Step_accept _ -> ("accept", None)
        | Events.Step_reject { reason; _ } -> ("reject", Some reason)
        | _ -> (
          match e with Events.Step_retry { reason; _ } -> ("retry", Some reason) | _ -> ("retry", None))
      in
      c.steps <-
        {
          t;
          h;
          omega = None;
          newton_iterations = c.pending_iters;
          residual = c.pending_residual;
          outcome;
          reason;
        }
        :: c.steps;
      c.pending_iters <- 0;
      c.pending_residual <- nan
    | Events.Phase_condition { omega; t2 = _ } -> (
      match c.steps with
      | ({ omega = None; _ } as s) :: rest -> c.steps <- { s with omega = Some omega } :: rest
      | _ -> ())

  let collect () =
    let c = { steps = []; pending_iters = 0; pending_residual = nan; sub = None } in
    c.sub <- Some (Events.subscribe (handle c));
    c

  let finish c =
    (match c.sub with Some s -> Events.unsubscribe s | None -> ());
    c.sub <- None;
    List.rev c.steps

  let git_describe () =
    try
      let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> Some line
      | _ -> None
    with _ -> None

  let step_json s =
    Printf.sprintf
      "{\"t\":%s,\"h\":%s,\"omega\":%s,\"newton_iterations\":%d,\"residual\":%s,\"outcome\":\"%s\",\"reason\":%s}"
      (json_float s.t) (json_float s.h)
      (match s.omega with Some o -> json_float o | None -> "null")
      s.newton_iterations (json_float s.residual) (json_escape s.outcome)
      (match s.reason with Some r -> Printf.sprintf "\"%s\"" (json_escape r) | None -> "null")

  let manifest ?(argv = Sys.argv) ?(subcommand = "") ?git ?(jobs = 1) ~wall_s ~steps () =
    let buf = Buffer.create 4096 in
    let gc = Gc.quick_stat () in
    Buffer.add_char buf '{';
    Printf.bprintf buf "\"schema\":\"%s\"," (json_escape schema);
    provenance_fields buf ~argv ~subcommand ~git ~jobs;
    Printf.bprintf buf "\"wall_s\":%s," (json_float wall_s);
    Printf.bprintf buf
      "\"gc\":{\"minor_words\":%s,\"promoted_words\":%s,\"major_words\":%s,\"minor_collections\":%d,\"major_collections\":%d,\"heap_words\":%d},"
      (json_float gc.Gc.minor_words) (json_float gc.Gc.promoted_words)
      (json_float gc.Gc.major_words) gc.Gc.minor_collections gc.Gc.major_collections
      gc.Gc.heap_words;
    Printf.bprintf buf "\"metrics\":%s," (Metrics.to_json ());
    Printf.bprintf buf "\"history\":[%s]" (String.concat "," (List.map step_json steps));
    Buffer.add_char buf '}';
    Buffer.contents buf

  (* ---------- validation ---------- *)

  let ( let* ) = Result.bind

  let require_obj what = function
    | Some (Json.Obj kvs) -> Ok kvs
    | Some _ -> Result.Error (Printf.sprintf "%s: not an object" what)
    | None -> Result.Error (Printf.sprintf "%s: missing" what)

  let require_num what = function
    | Some (Json.Num v) -> Ok v
    | Some (Json.Str _) -> Ok nan  (* stringified nan/inf *)
    | Some _ -> Result.Error (Printf.sprintf "%s: not a number" what)
    | None -> Result.Error (Printf.sprintf "%s: missing" what)

  let require_str what = function
    | Some (Json.Str v) -> Ok v
    | Some _ -> Result.Error (Printf.sprintf "%s: not a string" what)
    | None -> Result.Error (Printf.sprintf "%s: missing" what)

  let check_scoped_sums ~counters ~scoped =
    List.fold_left
      (fun acc (name, scopes) ->
        let* () = acc in
        match scopes with
        | Json.Obj entries ->
          let sum =
            List.fold_left
              (fun s (_, v) -> match v with Json.Num n -> s +. n | _ -> nan)
              0. entries
          in
          (match List.assoc_opt name counters with
           | Some (Json.Num total) ->
             if Float.abs (sum -. total) < 0.5 then Ok ()
             else
               Result.Error
                 (Printf.sprintf "scoped counter %s: sum over scopes %g <> total %g" name sum
                    total)
           | _ -> Result.Error (Printf.sprintf "scoped counter %s has no unscoped total" name))
        | _ -> Result.Error (Printf.sprintf "scoped counter %s: not an object" name))
      (Ok ()) scoped

  let check_history history =
    List.fold_left
      (fun acc entry ->
        let* () = acc in
        match entry with
        | Json.Obj _ ->
          let* _ = require_num "history.t" (Json.member "t" entry) in
          let* _ = require_num "history.h" (Json.member "h" entry) in
          let* _ = require_num "history.newton_iterations" (Json.member "newton_iterations" entry) in
          let* outcome = require_str "history.outcome" (Json.member "outcome" entry) in
          if List.mem outcome [ "accept"; "reject"; "retry" ] then Ok ()
          else Result.Error (Printf.sprintf "history.outcome: unknown value %S" outcome)
        | _ -> Result.Error "history entry: not an object")
      (Ok ()) history

  let validate (j : Json.t) =
    let* s = require_str "schema" (Json.member "schema" j) in
    let* () =
      if String.length s >= 17 && String.sub s 0 17 = "wampde.run-report" then Ok ()
      else Result.Error (Printf.sprintf "schema: unknown value %S" s)
    in
    let* _ =
      match Json.member "argv" j with
      | Some (Json.Arr _) -> Ok ()
      | Some _ -> Result.Error "argv: not an array"
      | None -> Result.Error "argv: missing"
    in
    let* _ = require_str "ocaml" (Json.member "ocaml" j) in
    let* _ = require_num "wall_s" (Json.member "wall_s" j) in
    let* gc = require_obj "gc" (Json.member "gc" j) in
    let* _ = require_num "gc.minor_words" (List.assoc_opt "minor_words" gc) in
    let* metrics = require_obj "metrics" (Json.member "metrics" j) in
    let* counters = require_obj "metrics.counters" (List.assoc_opt "counters" metrics) in
    let* scoped = require_obj "metrics.scoped" (List.assoc_opt "scoped" metrics) in
    let* () = check_scoped_sums ~counters ~scoped in
    let* history =
      match Json.member "history" j with
      | Some (Json.Arr l) -> Ok l
      | Some _ -> Result.Error "history: not an array"
      | None -> Result.Error "history: missing"
    in
    check_history history

  let check s =
    match Json.parse s with
    | Result.Error m -> Result.Error (Printf.sprintf "malformed JSON: %s" m)
    | Ok j -> validate j

  (* ---------- markdown rendering ---------- *)

  let md_escape s =
    String.concat "\\|" (String.split_on_char '|' s)

  let history_rows_cap = 40

  let to_markdown s =
    match Json.parse s with
    | Result.Error m -> Result.Error (Printf.sprintf "malformed JSON: %s" m)
    | Ok j -> (
      match validate j with
      | Result.Error m -> Result.Error m
      | Ok () ->
        let buf = Buffer.create 4096 in
        let str_of key = Option.bind (Json.member key j) Json.to_str in
        let num_of key = Option.bind (Json.member key j) Json.to_num in
        Buffer.add_string buf "# wampde run report\n\n";
        Printf.bprintf buf "| field | value |\n|---|---|\n";
        let row k v = Printf.bprintf buf "| %s | %s |\n" k (md_escape v) in
        (match str_of "subcommand" with Some c when c <> "" -> row "subcommand" c | _ -> ());
        (match num_of "jobs" with
         | Some jv when jv > 1. -> row "jobs" (Printf.sprintf "%.0f" jv)
         | _ -> ());
        (match Json.member "argv" j with
         | Some (Json.Arr args) ->
           row "argv"
             (String.concat " " (List.filter_map Json.to_str args))
         | _ -> ());
        (match str_of "git" with Some g -> row "git" g | None -> row "git" "(unknown)");
        (match str_of "ocaml" with Some v -> row "ocaml" v | None -> ());
        (match num_of "wall_s" with
         | Some w -> row "wall" (Printf.sprintf "%.3f s" w)
         | None -> ());
        (match Json.member "gc" j with
         | Some gc ->
           let g k = Option.bind (Json.member k gc) Json.to_num in
           (match (g "minor_words", g "major_words", g "promoted_words") with
            | Some mi, Some ma, Some pr ->
              row "allocated" (Printf.sprintf "%.4g Mwords" ((mi +. ma -. pr) /. 1e6))
            | _ -> ());
           (match (g "minor_collections", g "major_collections") with
            | Some mi, Some ma -> row "collections" (Printf.sprintf "%.0f minor / %.0f major" mi ma)
            | _ -> ())
         | None -> ());
        Buffer.add_char buf '\n';
        let metrics = Json.member "metrics" j in
        (match Option.bind metrics (Json.member "counters") with
         | Some (Json.Obj counters) when counters <> [] ->
           Buffer.add_string buf "## Solver work\n\n| counter | total |\n|---|---|\n";
           List.iter
             (fun (name, v) ->
               match v with
               | Json.Num n when n <> 0. ->
                 Printf.bprintf buf "| %s | %.0f |\n" (md_escape name) n
               | _ -> ())
             counters;
           Buffer.add_char buf '\n'
         | _ -> ());
        (match Option.bind metrics (Json.member "scoped") with
         | Some (Json.Obj scoped) when scoped <> [] ->
           Buffer.add_string buf
             "## Scoped cost breakdown\n\n| counter | scope | count |\n|---|---|---|\n";
           List.iter
             (fun (name, v) ->
               match v with
               | Json.Obj entries ->
                 List.iter
                   (fun (scope, n) ->
                     match n with
                     | Json.Num n ->
                       Printf.bprintf buf "| %s | %s | %.0f |\n" (md_escape name)
                         (if scope = "" then "(unscoped)" else md_escape scope)
                         n
                     | _ -> ())
                   entries
               | _ -> ())
             scoped;
           Buffer.add_char buf '\n'
         | _ -> ());
        (match Json.member "history" j with
         | Some (Json.Arr entries) when entries <> [] ->
           let n = List.length entries in
           let count o =
             List.length
               (List.filter
                  (fun e -> Option.bind (Json.member "outcome" e) Json.to_str = Some o)
                  entries)
           in
           let nums key =
             List.filter_map (fun e -> Option.bind (Json.member key e) Json.to_num) entries
           in
           Printf.bprintf buf
             "## Step history\n\n%d decisions: %d accepted, %d rejected, %d retried" n
             (count "accept") (count "reject") (count "retry");
           (match nums "h" with
            | [] -> ()
            | hs ->
              Printf.bprintf buf "; h2 %.3g..%.3g" (List.fold_left Float.min infinity hs)
                (List.fold_left Float.max neg_infinity hs));
           (match nums "omega" with
            | [] -> ()
            | oms ->
              Printf.bprintf buf "; omega %.6g..%.6g" (List.fold_left Float.min infinity oms)
                (List.fold_left Float.max neg_infinity oms));
           Printf.bprintf buf "; %.0f Newton iterations total.\n\n"
             (List.fold_left ( +. ) 0. (nums "newton_iterations"));
           Buffer.add_string buf
             "| t2 | h2 | omega | newton | residual | outcome |\n|---|---|---|---|---|---|\n";
           List.iteri
             (fun i e ->
               if i < history_rows_cap then begin
                 let num k =
                   match Option.bind (Json.member k e) Json.to_num with
                   | Some v -> Printf.sprintf "%.6g" v
                   | None -> "—"
                 in
                 let outcome =
                   match Option.bind (Json.member "outcome" e) Json.to_str with
                   | Some o -> (
                     match Option.bind (Json.member "reason" e) Json.to_str with
                     | Some r -> Printf.sprintf "%s (%s)" o r
                     | None -> o)
                   | None -> "—"
                 in
                 Printf.bprintf buf "| %s | %s | %s | %s | %s | %s |\n" (num "t") (num "h")
                   (num "omega") (num "newton_iterations") (num "residual") (md_escape outcome)
               end)
             entries;
           if n > history_rows_cap then
             Printf.bprintf buf "\n… %d more rows in the manifest.\n" (n - history_rows_cap)
         | _ -> ());
        Ok (Buffer.contents buf))
end

(* ------------------------------------------------------------------ *)
(* Run doctor: turn a manifest (and optional stream) into a diagnosis  *)
(* ------------------------------------------------------------------ *)

module Doctor = struct
  type severity = Info | Warn

  type finding = {
    category : string;
    severity : severity;
    summary : string;
    suggestion : string option;
  }

  let severity_name = function Info -> "info" | Warn -> "warn"

  (* counters whose per-scope buckets proxy for where the run spent its
     effort; weights keep incommensurable units roughly comparable *)
  let work_counters =
    [ ("newton.iterations", 1.); ("gmres.iterations", 1.); ("lu.factor", 4.); ("transient.steps", 1.) ]

  let str_member k j = Option.bind (Json.member k j) Json.to_str

  let counter counters name =
    match Option.bind (List.assoc_opt name counters) Json.to_num with
    | Some v when Float.is_finite v -> v
    | _ -> 0.

  let gauge gauges name =
    match Option.bind (List.assoc_opt name gauges) Json.to_num with
    | Some v when Float.is_finite v -> Some v
    | _ -> None

  let metrics_section j name =
    match Option.bind (Json.member "metrics" j) (Json.member name) with
    | Some (Json.Obj kvs) -> kvs
    | _ -> []

  (* ---------- dominant cost scope ---------- *)

  let cost_finding j =
    let scoped = metrics_section j "scoped" in
    let tally : (string, float) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (name, weight) ->
        match List.assoc_opt name scoped with
        | Some (Json.Obj buckets) ->
          List.iter
            (fun (scope, v) ->
              match Json.to_num v with
              | Some n when Float.is_finite n && n > 0. ->
                let scope = if scope = "" then "unscoped" else scope in
                Hashtbl.replace tally scope
                  ((match Hashtbl.find_opt tally scope with Some x -> x | None -> 0.)
                  +. (weight *. n))
              | _ -> ())
            buckets
        | _ -> ())
      work_counters;
    let total = Hashtbl.fold (fun _ v acc -> acc +. v) tally 0. in
    if total <= 0. then
      {
        category = "cost";
        severity = Info;
        summary = "no scoped solver work recorded in this manifest";
        suggestion = Some "re-run with --metrics/--report so cost attribution is collected";
      }
    else begin
      let scope, work =
        Hashtbl.fold (fun k v ((_, bv) as best) -> if v > bv then (k, v) else best) tally ("", 0.)
      in
      let share = 100. *. work /. total in
      {
        category = "cost";
        severity = Info;
        summary =
          Printf.sprintf "dominant cost scope is %s (%.0f%% of weighted solver work)" scope share;
        suggestion = None;
      }
    end

  (* ---------- t1 grid resolution ---------- *)

  let resolution_findings j =
    let gauges = metrics_section j "gauges" in
    match (gauge gauges "health.harmonics_available", gauge gauges "health.effective_harmonics") with
    | Some avail, Some needed when avail > 0. ->
      let th = Health.default_thresholds in
      let tail = match gauge gauges "health.tail_energy" with Some v -> v | None -> 0. in
      let avail_i = int_of_float avail and needed_i = int_of_float needed in
      if tail > th.tail_tol then
        (* headroom of ~half the current band above what the tail demands *)
        let n1 = (2 * (avail_i + Int.max 2 (avail_i / 2))) + 1 in
        [
          {
            category = "t1_resolution";
            severity = Warn;
            summary =
              Printf.sprintf
                "t1 grid under-resolved: relative tail energy %.2e exceeds %.0e with %d harmonics"
                tail th.tail_tol avail_i;
            suggestion = Some (Printf.sprintf "increase n1 to about %d" n1);
          };
        ]
      else begin
        let slack = 1. -. (needed /. avail) in
        if slack > th.over_resolution then
          let keep = Int.max 2 (int_of_float (Float.ceil (1.25 *. needed))) in
          let n1 = (2 * keep) + 1 in
          [
            {
              category = "t1_resolution";
              severity = Warn;
              summary =
                Printf.sprintf
                  "t1 grid over-resolved: only %d of %d harmonics carry energy above tolerance"
                  needed_i avail_i;
              suggestion =
                Some (Printf.sprintf "decrease n1 to about %d to cut per-step cost" n1);
            };
          ]
        else
          [
            {
              category = "t1_resolution";
              severity = Info;
              summary =
                Printf.sprintf "t1 grid well-sized: %d of %d harmonics in use, tail energy %.2e"
                  needed_i avail_i tail;
              suggestion = None;
            };
          ]
      end
    | _ ->
      [
        {
          category = "t1_resolution";
          severity = Info;
          summary = "no spectral health gauges in this manifest";
          suggestion = Some "re-run the solve with telemetry enabled to collect t1 health";
        };
      ]

  (* ---------- solver quality ---------- *)

  let solver_findings j =
    let counters = metrics_section j "counters" in
    let gauges = metrics_section j "gauges" in
    let th = Health.default_thresholds in
    let solves = counter counters "gmres.solves" in
    let gmres =
      if solves <= 0. then
        {
          category = "solver_quality";
          severity = Info;
          summary = "linear systems solved by the dense path (no GMRES activity)";
          suggestion = None;
        }
      else begin
        let stag_warn = counter counters "health.warnings.gmres_stagnation" in
        let plateau_warn = counter counters "health.warnings.gmres_plateau" in
        let fallbacks = counter counters "gmres.precond.fallbacks" in
        let mean_iters = counter counters "gmres.iterations" /. solves in
        if stag_warn > 0. || plateau_warn > 0. || fallbacks > 0. then
          {
            category = "solver_quality";
            severity = Warn;
            summary =
              Printf.sprintf
                "GMRES shows stagnation pressure (%.0f stagnation / %.0f plateau warnings, %.0f \
                 preconditioner fallbacks; %.1f iters/solve)"
                stag_warn plateau_warn fallbacks mean_iters;
            suggestion =
              Some
                "rebuild or strengthen the preconditioner (block factorization), or fall back to \
                 the dense solver for this regime";
          }
        else
          {
            category = "solver_quality";
            severity = Info;
            summary = Printf.sprintf "GMRES healthy: %.1f iterations per solve" mean_iters;
            suggestion = None;
          }
      end
    in
    let escalations =
      counter counters "newton.strategy.escalations" +. counter counters "controller.escalations"
    in
    let newton =
      if escalations > 0. then
        Some
          {
            category = "solver_quality";
            severity = Warn;
            summary =
              Printf.sprintf "globalization cascade escalated %.0f time(s)" escalations;
            suggestion =
              Some
                "the base Newton strategy is mismatched to this regime; consider a smaller h2 or \
                 a stronger initial guess";
          }
      else
        match gauge gauges "health.newton_rate" with
        | Some r when r > th.newton_rate ->
          Some
            {
              category = "solver_quality";
              severity = Warn;
              summary = Printf.sprintf "Newton contraction rate %.2f is close to 1" r;
              suggestion = Some "refresh the chord Jacobian more often or tighten the step size";
            }
        | _ -> None
    in
    gmres :: Option.to_list newton

  (* ---------- stepping ---------- *)

  let stepping_findings j =
    let counters = metrics_section j "counters" in
    let accepted, rejected, retried =
      match Json.member "history" j with
      | Some (Json.Arr entries) when entries <> [] ->
        List.fold_left
          (fun (a, r, y) e ->
            match str_member "outcome" e with
            | Some "accept" -> (a +. 1., r, y)
            | Some "reject" -> (a, r +. 1., y)
            | Some "retry" -> (a, r, y +. 1.)
            | _ -> (a, r, y))
          (0., 0., 0.) entries
      | _ ->
        ( counter counters "step.accepted",
          counter counters "step.rejected",
          counter counters "step.retried" )
    in
    let total = accepted +. rejected +. retried in
    if total < 5. then []
    else begin
      let frac = (rejected +. retried) /. total in
      if frac > 0.3 then
        [
          {
            category = "stepping";
            severity = Warn;
            summary =
              Printf.sprintf "rejection-heavy stepping: %.0f%% of %d macro steps were rejected \
                              or retried"
                (100. *. frac) (int_of_float total);
            suggestion = Some "loosen rtol or start from a smaller initial h2";
          };
        ]
      else
        [
          {
            category = "stepping";
            severity = Info;
            summary =
              Printf.sprintf "step controller healthy: %.0f%% of %d macro steps accepted"
                (100. *. accepted /. total) (int_of_float total);
            suggestion = None;
          };
        ]
    end

  (* ---------- parallel efficiency ---------- *)

  let parallelism_findings j =
    let jobs =
      match Option.bind (Json.member "jobs" j) Json.to_num with
      | Some v when Float.is_finite v -> int_of_float v
      | _ -> 1
    in
    if jobs <= 1 then []
    else begin
      let gauges = metrics_section j "gauges" in
      let busy = Option.value ~default:0. (gauge gauges "pool.busy_s") in
      let idle = Option.value ~default:0. (gauge gauges "pool.idle_s") in
      let span = busy +. idle in
      if span <= 1e-9 then
        [
          {
            category = "parallelism";
            severity = Info;
            summary =
              Printf.sprintf
                "--jobs %d requested but the domain pool saw no measurable work" jobs;
            suggestion = Some "the run's kernels never went parallel; --jobs 1 costs nothing here";
          };
        ]
      else begin
        let idle_frac = idle /. span in
        if idle_frac > 0.4 then
          [
            {
              category = "parallelism";
              severity = Warn;
              summary =
                Printf.sprintf
                  "poor parallel efficiency: %.0f%% of pool worker time idle at --jobs %d"
                  (100. *. idle_frac) jobs;
              suggestion =
                Some
                  "lower --jobs: the per-block kernels are too small at this size to keep \
                   every worker busy";
            };
          ]
        else
          [
            {
              category = "parallelism";
              severity = Info;
              summary =
                Printf.sprintf
                  "parallel efficiency healthy: %.0f%% of pool worker time busy at --jobs %d"
                  (100. *. (1. -. idle_frac))
                  jobs;
              suggestion = None;
            };
          ]
      end
    end

  (* ---------- serve supervision ---------- *)

  (* Retry-storm detector for daemon manifests/metric snapshots: when
     retries rival submissions the spool is churning — jobs fail, are
     resumed, and fail again — which usually means a persistent fault
     is being misclassified as transient. *)
  let serve_findings j =
    let counters = metrics_section j "counters" in
    let attempts = counter counters "serve.retry.attempts" in
    let submitted = counter counters "serve.jobs.submitted" in
    let exhausted = counter counters "serve.retry.exhausted" in
    if attempts <= 0. then []
    else if attempts >= 3. && attempts >= submitted then
      [
        {
          category = "serve";
          severity = Warn;
          summary =
            Printf.sprintf
              "retry storm: %.0f retry attempt(s) against %.0f submitted job(s)%s"
              attempts submitted
              (if exhausted > 0. then Printf.sprintf " (%.0f exhausted)" exhausted else "");
          suggestion =
            Some
              "failures classified as transient are recurring; inspect flight dumps and \
               consider lowering --max-retries or fixing the underlying fault";
        };
      ]
    else
      [
        {
          category = "serve";
          severity = Info;
          summary = Printf.sprintf "%.0f transient failure(s) were retried from checkpoint" attempts;
          suggestion = None;
        };
      ]

  (* ---------- stream cross-check ---------- *)

  let stream_findings lines =
    let malformed = ref 0 in
    let terminal = ref None in
    let health = ref 0 in
    List.iter
      (fun line ->
        let line = String.trim line in
        if line <> "" then
          match Json.parse_exn line with
          | j -> (
            match str_member "type" j with
            | Some ("done" | "error" as t) -> terminal := Some (t, j)
            | Some "event" when str_member "event" j = Some "health_warning" -> incr health
            | _ -> ())
          | exception Json.Error _ -> incr malformed)
      lines;
    let base =
      if !malformed > 0 then
        [
          {
            category = "stream";
            severity = Warn;
            summary = Printf.sprintf "%d malformed NDJSON line(s) in the stream" !malformed;
            suggestion = Some "the stream writer was interrupted mid-record; treat tail data as suspect";
          };
        ]
      else []
    in
    let term =
      match !terminal with
      | Some ("error", j) ->
        [
          {
            category = "stream";
            severity = Warn;
            summary =
              Printf.sprintf "run aborted: %s"
                (match str_member "error" j with Some e -> e | None -> "unknown error");
            suggestion = None;
          };
        ]
      | Some ("done", _) -> []
      | _ ->
        [
          {
            category = "stream";
            severity = Warn;
            summary = "stream has no terminal record: the run did not shut down cleanly";
            suggestion = None;
          };
        ]
    in
    let hw =
      if !health > 0 then
        [
          {
            category = "stream";
            severity = Info;
            summary = Printf.sprintf "%d health warning(s) were emitted while the run progressed" !health;
            suggestion = None;
          };
        ]
      else []
    in
    base @ term @ hw

  (* ---------- entry points ---------- *)

  let diagnose ?stream_lines (j : Json.t) =
    let findings =
      (cost_finding j :: resolution_findings j)
      @ solver_findings j @ stepping_findings j @ parallelism_findings j
      @ serve_findings j
      @ (match stream_lines with Some ls -> stream_findings ls | None -> [])
    in
    let warns, infos = List.partition (fun f -> f.severity = Warn) findings in
    warns @ infos

  let diagnose_string ?stream contents =
    match Json.parse_exn contents with
    | j ->
      let stream_lines = Option.map (String.split_on_char '\n') stream in
      Ok (diagnose ?stream_lines j)
    | exception Json.Error m -> Result.Error (Printf.sprintf "manifest: %s" m)

  let has_warnings findings = List.exists (fun f -> f.severity = Warn) findings

  let render findings =
    let buf = Buffer.create 512 in
    let warns = List.length (List.filter (fun f -> f.severity = Warn) findings) in
    Printf.bprintf buf "doctor: %d finding(s), %d warning(s)\n" (List.length findings) warns;
    List.iter
      (fun f ->
        Printf.bprintf buf "[%s] %s: %s\n" (severity_name f.severity) f.category f.summary;
        match f.suggestion with
        | Some s -> Printf.bprintf buf "  -> %s\n" s
        | None -> ())
      findings;
    Buffer.contents buf

  let to_json findings =
    let one f =
      Printf.sprintf "{\"category\":\"%s\",\"severity\":\"%s\",\"summary\":\"%s\",\"suggestion\":%s}"
        (json_escape f.category) (severity_name f.severity) (json_escape f.summary)
        (match f.suggestion with
         | Some s -> Printf.sprintf "\"%s\"" (json_escape s)
         | None -> "null")
    in
    Printf.sprintf "{\"schema\":\"wampde.doctor/1\",\"findings\":[%s]}"
      (String.concat "," (List.map one findings))
end

(* ------------------------------------------------------------------ *)
(* Flight recorder: bounded ring of recent telemetry for postmortems   *)
(* ------------------------------------------------------------------ *)

module Flight = struct
  let schema = "wampde.flightdump/1"

  (* small metric snapshot taken at macro-step boundaries; reading a
     pre-looked-up counter is one field access, so a snapshot costs
     only its own cell *)
  type snap = {
    s_accepted : int;
    s_rejected : int;
    s_retried : int;
    s_newton : int;
    s_gmres : int;
    s_warnings : int;
  }

  type cell =
    | Event of float * Events.t
    | Note of float * string * string  (* wall time, kind, message *)
    | Snapshot of float * snap

  (* dummy filler so the ring can be a plain preallocated [cell array] *)
  let filler = Note (0., "", "")

  type state = {
    mutable ring : cell array;  (* fixed capacity, allocated at [arm] *)
    mutable head : int;  (* next write position *)
    mutable count : int;  (* valid cells, <= capacity *)
    mutable dropped : int;  (* cells overwritten after the ring filled *)
    mutable sub : Events.subscription option;
  }

  let st = { ring = [||]; head = 0; count = 0; dropped = 0; sub = None }

  let c_accepted = Metrics.counter "step.accepted"
  let c_rejected = Metrics.counter "step.rejected"
  let c_retried = Metrics.counter "step.retried"
  let c_newton = Metrics.counter "newton.iterations"
  let c_gmres = Metrics.counter "gmres.iterations"
  let c_warn = Metrics.counter "health.warnings"

  (* O(1), no allocation beyond the cell the caller built: an overwrite
     of the oldest cell is a store plus two index updates *)
  let push cell =
    let cap = Array.length st.ring in
    if cap > 0 then begin
      if st.count = cap then st.dropped <- st.dropped + 1 else st.count <- st.count + 1;
      st.ring.(st.head) <- cell;
      st.head <- (st.head + 1) mod cap
    end

  let handle e =
    push (Event (now (), e));
    match e with
    | Events.Step_accept _ | Events.Step_reject _ | Events.Step_retry _ ->
      push
        (Snapshot
           ( now (),
             {
               s_accepted = Metrics.count c_accepted;
               s_rejected = Metrics.count c_rejected;
               s_retried = Metrics.count c_retried;
               s_newton = Metrics.count c_newton;
               s_gmres = Metrics.count c_gmres;
               s_warnings = Metrics.count c_warn;
             } ))
    | _ -> ()

  let armed () = st.sub <> None

  let arm ?(capacity = 512) () =
    if not (armed ()) then begin
      let capacity = Int.max 16 capacity in
      if Array.length st.ring <> capacity then st.ring <- Array.make capacity filler;
      st.head <- 0;
      st.count <- 0;
      st.dropped <- 0;
      st.sub <- Some (Events.subscribe handle)
    end

  let disarm () =
    (match st.sub with Some id -> Events.unsubscribe id | None -> ());
    st.sub <- None

  let clear () =
    st.head <- 0;
    st.count <- 0;
    st.dropped <- 0;
    if Array.length st.ring > 0 then Array.fill st.ring 0 (Array.length st.ring) filler

  (* out-of-band marker (fault-harness trips, scheduler decisions);
     recorded even while telemetry is disabled so an injected fault is
     always on the timeline of the dump it caused *)
  let note ~kind message = push (Note (now (), kind, message))

  let recorded () = st.count
  let dropped () = st.dropped

  let cells () =
    let cap = Array.length st.ring in
    if cap = 0 || st.count = 0 then []
    else begin
      let start = (st.head - st.count + (2 * cap)) mod cap in
      List.init st.count (fun i -> st.ring.((start + i) mod cap))
    end

  let cell_time = function Event (t, _) | Note (t, _, _) | Snapshot (t, _) -> t

  let cell_json ~t0 c =
    let rel t = json_float (t -. t0) in
    match c with
    | Event (t, e) ->
      (* splice the timestamp in as the leading field of the event's
         own JSON object *)
      let j = Events.to_json e in
      Printf.sprintf "{\"t_s\":%s,%s" (rel t) (String.sub j 1 (String.length j - 1))
    | Note (t, kind, message) ->
      Printf.sprintf "{\"t_s\":%s,\"type\":\"note\",\"kind\":\"%s\",\"message\":\"%s\"}" (rel t)
        (json_escape kind) (json_escape message)
    | Snapshot (t, s) ->
      Printf.sprintf
        "{\"t_s\":%s,\"type\":\"snapshot\",\"accepted\":%d,\"rejected\":%d,\"retried\":%d,\"newton_iterations\":%d,\"gmres_iterations\":%d,\"health_warnings\":%d}"
        (rel t) s.s_accepted s.s_rejected s.s_retried s.s_newton s.s_gmres s.s_warnings

  let dump ?(argv = Sys.argv) ?(subcommand = "") ?git ?(jobs = 1) ~kind ~message () =
    let cs = cells () in
    let t_now = now () in
    let t0 = match cs with [] -> t_now | c :: _ -> cell_time c in
    let buf = Buffer.create 4096 in
    Buffer.add_char buf '{';
    Printf.bprintf buf "\"schema\":\"%s\"," (json_escape schema);
    provenance_fields buf ~argv ~subcommand ~git ~jobs;
    Printf.bprintf buf "\"reason\":{\"kind\":\"%s\",\"message\":\"%s\"}," (json_escape kind)
      (json_escape message);
    Printf.bprintf buf "\"capacity\":%d,\"recorded\":%d,\"dropped\":%d," (Array.length st.ring)
      st.count st.dropped;
    Printf.bprintf buf "\"metrics\":%s," (Metrics.to_json ());
    Buffer.add_string buf "\"timeline\":[";
    List.iter
      (fun c ->
        Buffer.add_string buf (cell_json ~t0 c);
        Buffer.add_char buf ',')
      cs;
    (* the triggering failure is always the final timeline entry *)
    Buffer.add_string buf (cell_json ~t0 (Note (t_now, kind, message)));
    Buffer.add_string buf "]}";
    Buffer.contents buf

  let write ?argv ?subcommand ?git ?jobs ~path ~kind ~message () =
    try
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (dump ?argv ?subcommand ?git ?jobs ~kind ~message ());
          output_char oc '\n');
      Ok path
    with Sys_error m -> Result.Error m

  (* ---------- postmortem rendering ---------- *)

  let render_value = function
    | Json.Num v -> Printf.sprintf "%.6g" v
    | Json.Str s -> s
    | Json.Bool b -> string_of_bool b
    | Json.Null -> "null"
    | Json.Arr _ | Json.Obj _ -> "..."

  let render_entry buf entry =
    match entry with
    | Json.Obj kvs ->
      let t_s =
        match Option.bind (List.assoc_opt "t_s" kvs) Json.to_num with Some v -> v | None -> nan
      in
      let label =
        match List.assoc_opt "type" kvs with
        | Some (Json.Str "event") -> (
          match Option.bind (List.assoc_opt "event" kvs) Json.to_str with
          | Some e -> e
          | None -> "event")
        | Some (Json.Str t) -> t
        | _ -> "?"
      in
      Printf.bprintf buf "  %+10.3fs  %-16s" t_s label;
      List.iter
        (fun (k, v) ->
          match k with
          | "t_s" | "type" | "event" -> ()
          | _ -> Printf.bprintf buf " %s=%s" k (render_value v))
        kvs;
      Buffer.add_char buf '\n'
    | _ -> Buffer.add_string buf "  (malformed timeline entry)\n"

  let to_postmortem contents =
    match Json.parse contents with
    | Result.Error m -> Result.Error (Printf.sprintf "malformed flight dump: %s" m)
    | Ok j ->
      let str k = Option.bind (Json.member k j) Json.to_str in
      let num k = Option.bind (Json.member k j) Json.to_num in
      (match str "schema" with
       | Some s when String.length s >= 16 && String.sub s 0 16 = "wampde.flightdum" ->
         let buf = Buffer.create 2048 in
         Buffer.add_string buf "== flight postmortem ==\n";
         (match Json.member "reason" j with
          | Some r ->
            Printf.bprintf buf "reason: %s: %s\n"
              (Option.value ~default:"?" (Option.bind (Json.member "kind" r) Json.to_str))
              (Option.value ~default:"?" (Option.bind (Json.member "message" r) Json.to_str))
          | None -> Buffer.add_string buf "reason: (missing)\n");
         (match str "subcommand" with
          | Some c when c <> "" -> Printf.bprintf buf "subcommand: %s\n" c
          | _ -> ());
         (match Json.member "argv" j with
          | Some (Json.Arr args) ->
            Printf.bprintf buf "argv: %s\n"
              (String.concat " " (List.filter_map Json.to_str args))
          | _ -> ());
         (match str "git" with Some g -> Printf.bprintf buf "git: %s\n" g | None -> ());
         (match num "jobs" with
          | Some jv when jv > 1. -> Printf.bprintf buf "jobs: %.0f\n" jv
          | _ -> ());
         (match (num "recorded", num "dropped") with
          | Some r, Some d ->
            Printf.bprintf buf "ring: %.0f cell(s) recorded, %.0f dropped\n" r d
          | _ -> ());
         (match Json.member "timeline" j with
          | Some (Json.Arr entries) when entries <> [] ->
            Printf.bprintf buf "\ntimeline (%d entries, oldest first):\n" (List.length entries);
            List.iter (render_entry buf) entries
          | _ -> Buffer.add_string buf "\ntimeline: empty\n");
         (* the dump embeds a full metrics snapshot, so the doctor can
            diagnose the dump exactly as it would a run manifest *)
         let findings = Doctor.diagnose j in
         Buffer.add_char buf '\n';
         Buffer.add_string buf (Doctor.render findings);
         Ok (Buffer.contents buf)
       | Some s -> Result.Error (Printf.sprintf "not a flight dump: schema %S" s)
       | None -> Result.Error "not a flight dump: no schema field")
end

(* ------------------------------------------------------------------ *)
(* Run-history store: append-only CRC-guarded NDJSON of run manifests  *)
(* ------------------------------------------------------------------ *)

module History = struct
  exception Corrupt of string

  let file_name = "history.ndjson"
  let path ~dir = Filename.concat dir file_name

  type key = { circuit : string; analysis : string; n1 : int; jobs : int; git : string }

  type entry = { key : key; unix_time : float; wall_s : float; manifest : Json.t }

  let key_string k =
    Printf.sprintf "%s/%s n1=%d jobs=%d git=%s"
      (if k.circuit = "" then "?" else k.circuit)
      (if k.analysis = "" then "?" else k.analysis)
      k.n1 k.jobs
      (if k.git = "" then "?" else k.git)

  (* CRC-32 (IEEE 802.3), table-driven; guards every line against
     truncation and byte mangling *)
  let crc_table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let crc32 s =
    let tbl = Lazy.force crc_table in
    let c = ref 0xFFFFFFFF in
    String.iter (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
    !c lxor 0xFFFFFFFF land 0xFFFFFFFF

  let key_json k =
    Printf.sprintf
      "{\"circuit\":\"%s\",\"analysis\":\"%s\",\"n1\":%d,\"jobs\":%d,\"git\":\"%s\"}"
      (json_escape k.circuit) (json_escape k.analysis) k.n1 k.jobs (json_escape k.git)

  (* one line: 8 hex CRC digits, a space, then the JSON payload.  The
     manifest serializer emits single-line JSON, so the payload never
     contains a newline. *)
  let encode_line ~key ~manifest =
    let payload = Printf.sprintf "{\"key\":%s,\"manifest\":%s}" (key_json key) manifest in
    Printf.sprintf "%08x %s" (crc32 payload) payload

  let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

  let decode_line line =
    let n = String.length line in
    if n < 10 || line.[8] <> ' ' then corrupt "unframed history line (no CRC prefix)";
    let crc =
      match int_of_string_opt ("0x" ^ String.sub line 0 8) with
      | Some v -> v
      | None -> corrupt "bad CRC field %S" (String.sub line 0 8)
    in
    let payload = String.sub line 9 (n - 9) in
    if crc <> crc32 payload then corrupt "CRC mismatch: line is truncated or byte-mangled";
    match Json.parse payload with
    | Result.Error m -> corrupt "CRC valid but payload malformed: %s" m
    | Ok j ->
      let kj = match Json.member "key" j with Some k -> k | None -> corrupt "missing key" in
      let str f =
        match Option.bind (Json.member f kj) Json.to_str with
        | Some s -> s
        | None -> corrupt "key.%s missing or not a string" f
      in
      let int f =
        match Option.bind (Json.member f kj) Json.to_num with
        | Some v when Float.is_finite v -> int_of_float v
        | _ -> corrupt "key.%s missing or not a number" f
      in
      let manifest =
        match Json.member "manifest" j with Some m -> m | None -> corrupt "missing manifest"
      in
      let mnum f =
        match Option.bind (Json.member f manifest) Json.to_num with Some v -> v | None -> nan
      in
      {
        key =
          { circuit = str "circuit"; analysis = str "analysis"; n1 = int "n1"; jobs = int "jobs";
            git = str "git" };
        unix_time = mnum "unix_time";
        wall_s = mnum "wall_s";
        manifest;
      }

  (* Load every decodable entry (oldest first) plus one warning per
     undecodable line.  Never raises: a mangled store must degrade to
     a partial history, not break the analytics that read it. *)
  let load ~dir =
    let p = path ~dir in
    if not (Sys.file_exists p) then ([], [])
    else begin
      match open_in_bin p with
      | exception Sys_error m -> ([], [ m ])
      | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let entries = ref [] and warnings = ref [] and lineno = ref 0 in
            (try
               while true do
                 let line = input_line ic in
                 incr lineno;
                 if String.trim line <> "" then
                   match decode_line line with
                   | e -> entries := e :: !entries
                   | exception Corrupt m ->
                     warnings := Printf.sprintf "%s:%d: %s" p !lineno m :: !warnings
               done
             with End_of_file -> ());
            (List.rev !entries, List.rev !warnings))
    end

  let default_max_bytes = 1 lsl 22 (* 4 MiB *)
  let default_keep = 32

  let rec mkdir_p dir =
    if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let lock_name = "history.lock"

  (* Advisory exclusive lock serializing cross-process compactions (an
     appender checking the size threshold takes it too, so a rewrite
     never races another writer's rewrite).  In-process concurrent
     writers are instead protected by the O_APPEND single-write append
     below — POSIX record locks do not exclude within one process. *)
  let with_file_lock ~dir f =
    mkdir_p dir;
    let fd =
      Unix.openfile (Filename.concat dir lock_name) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.lockf fd Unix.F_LOCK 0;
        Fun.protect
          ~finally:(fun () -> try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
          f)

  (* Atomic rewrite keeping the newest [keep] entries per key (and
     silently shedding undecodable lines).  Returns how many decodable
     entries were dropped.  Holds the store's advisory lock for the
     whole read-rewrite-rename cycle. *)
  let compact ?(keep = default_keep) ~dir () =
    with_file_lock ~dir @@ fun () ->
    let keep = Int.max 1 keep in
    let entries, _warnings = load ~dir in
    let seen : (string, int) Hashtbl.t = Hashtbl.create 8 in
    (* count newest-first so the latest [keep] per key survive *)
    let kept_rev =
      List.fold_left
        (fun acc e ->
          let k = key_string e.key in
          let n = match Hashtbl.find_opt seen k with Some n -> n | None -> 0 in
          if n < keep then begin
            Hashtbl.replace seen k (n + 1);
            e :: acc
          end
          else acc)
        [] (List.rev entries)
    in
    let dropped = List.length entries - List.length kept_rev in
    let p = path ~dir in
    let tmp = p ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        List.iter
          (fun e ->
            (* re-encode from the parsed manifest: payload bytes differ
               from the original line only if the original was already
               rewritten, and the CRC is recomputed either way *)
            output_string oc (encode_line ~key:e.key ~manifest:(Json.to_string e.manifest));
            output_char oc '\n')
          kept_rev);
    Sys.rename tmp p;
    dropped

  (* Append one manifest under [key]; compacts when the store outgrows
     [max_bytes].  Returns [Error] on I/O failure instead of raising —
     history recording is best-effort and must never kill the run that
     produced the manifest.

     Concurrent-writer safety: the whole record (line + newline) goes
     out as ONE write(2) on an O_APPEND descriptor, so records from a
     serve daemon and a parallel CLI run appending to the same
     [--history DIR] land whole — the kernel serializes O_APPEND
     writes; buffered-channel appends could interleave partial lines.
     A rare short write is completed by a follow-up write: its line
     could interleave, but the CRC framing downgrades that to one
     warned-and-skipped line on load, never a wrong entry. *)
  let append ?(max_bytes = default_max_bytes) ?(keep = default_keep) ~dir ~key ~manifest () =
    try
      mkdir_p dir;
      let p = path ~dir in
      let fd =
        Unix.openfile p [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let line = encode_line ~key ~manifest ^ "\n" in
          let n = String.length line in
          let written = ref (Unix.single_write_substring fd line 0 n) in
          while !written < n do
            written := !written + Unix.single_write_substring fd line !written (n - !written)
          done);
      let size = (Unix.stat p).Unix.st_size in
      if size > max_bytes then ignore (compact ~keep ~dir ());
      Ok ()
    with
    | Sys_error m -> Result.Error m
    | Unix.Unix_error (e, fn, arg) ->
      Result.Error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))

  (* ---------- robust statistics for cross-run trend analysis ---------- *)

  let median xs =
    match List.sort compare (List.filter Float.is_finite xs) with
    | [] -> nan
    | s ->
      let a = Array.of_list s in
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

  let mad xs =
    let m = median xs in
    if Float.is_nan m then nan
    else median (List.map (fun x -> Float.abs (x -. m)) (List.filter Float.is_finite xs))

  (* MAD-based outlier test: |value - median| > nsigma * 1.4826 * MAD,
     with an absolute floor so a run of identical samples (MAD = 0)
     only flags genuinely different values *)
  let is_outlier ?(nsigma = 4.) ?(floor = 1e-9) ~median:m ~mad:d v =
    Float.is_finite m && Float.is_finite v
    && Float.abs (v -. m) > Float.max floor (nsigma *. 1.4826 *. d)

  (* ---------- bench speedup gate (see scripts/bench_trend.py) ---------- *)

  let speedup_prefix = "bench.krylov.speedup.n1_"

  (* BENCH_*.json is a JSON array of {"id","wall_s","metrics"} entries;
     collect n1 -> max speedup over entries, as bench_trend.py does *)
  let bench_speedups (j : Json.t) =
    match j with
    | Json.Arr entries ->
      let tbl : (int, float) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun e ->
          match Option.bind (Json.member "metrics" e) (Json.member "gauges") with
          | Some (Json.Obj gauges) ->
            List.iter
              (fun (name, v) ->
                let pl = String.length speedup_prefix in
                if String.length name > pl && String.sub name 0 pl = speedup_prefix then
                  match
                    ( int_of_string_opt (String.sub name pl (String.length name - pl)),
                      Json.to_num v )
                  with
                  | Some n1, Some r ->
                    let prev =
                      match Hashtbl.find_opt tbl n1 with Some p -> p | None -> 0.
                    in
                    Hashtbl.replace tbl n1 (Float.max prev r)
                  | _ -> ())
              gauges
          | _ -> ())
        entries;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
    | _ -> []

  type verdict =
    | Gate_pass of string
    | Gate_no_baseline of string
    | Gate_regression of string
    | Gate_data_error of string

  (* Decision quantity: the speedup at the largest n1 common to both
     runs — the size the paper's scaling claim rests on.  Baseline
     problems (absent, empty, schema drift) degrade to an
     informational pass, exactly like bench_trend.py. *)
  let speedup_gate ?(threshold = 0.75) ~prev ~fresh () =
    match bench_speedups fresh with
    | [] -> Gate_data_error (Printf.sprintf "no %s* gauges in the fresh bench data" speedup_prefix)
    | fresh_s -> (
      match prev with
      | None -> Gate_no_baseline "no previous artifact; recording baseline and passing"
      | Some prev_j -> (
        match bench_speedups prev_j with
        | [] ->
          Gate_no_baseline
            "previous artifact has no speedup gauges; recording baseline and passing"
        | prev_s -> (
          match List.rev (List.filter (fun (n1, _) -> List.mem_assoc n1 prev_s) fresh_s) with
          | [] -> Gate_no_baseline "no common n1 sizes with the previous run; passing"
          | (n1, f) :: _ ->
            let p = List.assoc n1 prev_s in
            let ratio = if p > 0. then f /. p else infinity in
            let msg =
              Printf.sprintf "n1=%d: previous speedup %.2fx, fresh %.2fx (%.2f of previous)" n1
                p f ratio
            in
            if ratio < threshold then
              Gate_regression
                (Printf.sprintf
                   "%s — krylov-vs-dense speedup regressed by more than %.0f%%" msg
                   (100. *. (1. -. threshold)))
            else Gate_pass msg)))
end
