(* Solver telemetry: metrics registry, span tracing and typed solver
   events.  This library sits below every solver layer (it depends only
   on [unix] for the wall clock), so any module can report work without
   creating dependency cycles.

   Everything is off by default: counters and events are gated on one
   global flag, spans on the presence of a sink, so the hot-path cost
   of an uninstrumented run is a single branch per call site. *)

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag
let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* JSON helpers (no external dependency)                               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/infinity literals; stringify non-finite values. *)
let json_float v =
  if Float.is_finite v then Printf.sprintf "%.12g" v
  else Printf.sprintf "\"%s\"" (if Float.is_nan v then "nan" else if v > 0. then "inf" else "-inf")

module Metrics = struct
  type counter = { mutable n : int }
  type gauge = { mutable v : float }

  (* log2 buckets: index i counts values in [2^(i-offset), 2^(i-offset+1)) *)
  let n_buckets = 64
  let bucket_offset = 16

  type histogram = {
    counts : int array;
    mutable total : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  type hist_stats = {
    count : int;
    sum : float;
    min : float;  (** 0 when empty *)
    max : float;  (** 0 when empty *)
    mean : float;  (** 0 when empty *)
    buckets : (float * float * int) list;  (** (lo, hi, count), non-empty buckets only *)
  }

  type metric = C of counter | G of gauge | H of histogram

  let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

  let counter name =
    match Hashtbl.find_opt registry name with
    | Some (C c) -> c
    | Some _ -> invalid_arg (Printf.sprintf "Wampde_obs.Metrics.counter: %s is not a counter" name)
    | None ->
      let c = { n = 0 } in
      Hashtbl.replace registry name (C c);
      c

  let gauge name =
    match Hashtbl.find_opt registry name with
    | Some (G g) -> g
    | Some _ -> invalid_arg (Printf.sprintf "Wampde_obs.Metrics.gauge: %s is not a gauge" name)
    | None ->
      let g = { v = 0. } in
      Hashtbl.replace registry name (G g);
      g

  let histogram name =
    match Hashtbl.find_opt registry name with
    | Some (H h) -> h
    | Some _ ->
      invalid_arg (Printf.sprintf "Wampde_obs.Metrics.histogram: %s is not a histogram" name)
    | None ->
      let h =
        { counts = Array.make n_buckets 0; total = 0; sum = 0.; min_v = infinity; max_v = neg_infinity }
      in
      Hashtbl.replace registry name (H h);
      h

  let incr c = if !enabled_flag then c.n <- c.n + 1
  let add c k = if !enabled_flag then c.n <- c.n + k
  let count c = c.n
  let set g v = if !enabled_flag then g.v <- v
  let value g = g.v

  let bucket_index v =
    if v <= 0. then 0
    else begin
      let _, e = Float.frexp v in
      (* v in [2^(e-1), 2^e) *)
      let i = e - 1 + bucket_offset in
      if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i
    end

  let bucket_lo i = Float.ldexp 1. (i - bucket_offset)

  let observe h v =
    if !enabled_flag then begin
      h.total <- h.total + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v;
      let i = bucket_index v in
      h.counts.(i) <- h.counts.(i) + 1
    end

  let stats h =
    let buckets = ref [] in
    for i = n_buckets - 1 downto 0 do
      if h.counts.(i) > 0 then buckets := (bucket_lo i, bucket_lo (i + 1), h.counts.(i)) :: !buckets
    done;
    {
      count = h.total;
      sum = h.sum;
      min = (if h.total = 0 then 0. else h.min_v);
      max = (if h.total = 0 then 0. else h.max_v);
      mean = (if h.total = 0 then 0. else h.sum /. float_of_int h.total);
      buckets = !buckets;
    }

  let mean h = if h.total = 0 then 0. else h.sum /. float_of_int h.total

  let reset () =
    Hashtbl.iter
      (fun _ m ->
        match m with
        | C c -> c.n <- 0
        | G g -> g.v <- 0.
        | H h ->
          Array.fill h.counts 0 n_buckets 0;
          h.total <- 0;
          h.sum <- 0.;
          h.min_v <- infinity;
          h.max_v <- neg_infinity)
      registry

  let sorted_names () =
    Hashtbl.fold (fun name _ acc -> name :: acc) registry [] |> List.sort String.compare

  let counters () =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt registry name with Some (C c) -> Some (name, c.n) | _ -> None)
      (sorted_names ())

  let gauges () =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt registry name with Some (G g) -> Some (name, g.v) | _ -> None)
      (sorted_names ())

  let histograms () =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt registry name with Some (H h) -> Some (name, stats h) | _ -> None)
      (sorted_names ())

  let table () =
    let buf = Buffer.create 512 in
    Buffer.add_string buf "== solver metrics ==\n";
    List.iter
      (fun name ->
        match Hashtbl.find_opt registry name with
        | Some (C c) -> Printf.bprintf buf "%-34s %14d\n" name c.n
        | Some (G g) -> Printf.bprintf buf "%-34s %14.6g\n" name g.v
        | Some (H h) ->
          let s = stats h in
          Printf.bprintf buf "%-34s count=%d min=%g max=%g mean=%g\n" name s.count s.min s.max
            s.mean
        | None -> ())
      (sorted_names ());
    Buffer.contents buf

  let to_json () =
    let buf = Buffer.create 512 in
    let field_block label items render =
      Printf.bprintf buf "\"%s\":{" label;
      List.iteri
        (fun i (name, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf "\"%s\":%s" (json_escape name) (render x))
        items;
      Buffer.add_char buf '}'
    in
    Buffer.add_char buf '{';
    field_block "counters" (counters ()) string_of_int;
    Buffer.add_char buf ',';
    field_block "gauges" (gauges ()) json_float;
    Buffer.add_char buf ',';
    field_block "histograms" (histograms ()) (fun s ->
        Printf.sprintf "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"mean\":%s,\"buckets\":[%s]}"
          s.count (json_float s.sum) (json_float s.min) (json_float s.max) (json_float s.mean)
          (String.concat ","
             (List.map
                (fun (lo, hi, n) ->
                  Printf.sprintf "[%s,%s,%d]" (json_float lo) (json_float hi) n)
                s.buckets)));
    Buffer.add_char buf '}';
    Buffer.contents buf
end

module Events = struct
  type t =
    | Newton_iter of { solver : string; k : int; residual : float; damping : float }
    | Newton_done of { solver : string; iterations : int; residual : float; converged : bool }
    | Lu_factor of { n : int }
    | Gmres_iter of { k : int; residual : float }
    | Step_accept of { t : float; h : float }
    | Step_reject of { t : float; h : float; reason : string }
    | Step_retry of { t : float; h : float; h_next : float; reason : string }
    | Phase_condition of { omega : float; t2 : float }

  type subscription = int

  let subscribers : (int * (t -> unit)) list ref = ref []
  let next_sub = ref 0

  let subscribe f =
    let id = !next_sub in
    incr next_sub;
    subscribers := !subscribers @ [ (id, f) ];
    id

  let unsubscribe id = subscribers := List.filter (fun (i, _) -> i <> id) !subscribers
  let active () = !enabled_flag && !subscribers <> []
  let emit e = if active () then List.iter (fun (_, f) -> f e) !subscribers

  let to_json e =
    match e with
    | Newton_iter { solver; k; residual; damping } ->
      Printf.sprintf
        "{\"type\":\"event\",\"event\":\"newton_iter\",\"solver\":\"%s\",\"k\":%d,\"residual\":%s,\"damping\":%s}"
        (json_escape solver) k (json_float residual) (json_float damping)
    | Newton_done { solver; iterations; residual; converged } ->
      Printf.sprintf
        "{\"type\":\"event\",\"event\":\"newton_done\",\"solver\":\"%s\",\"iterations\":%d,\"residual\":%s,\"converged\":%b}"
        (json_escape solver) iterations (json_float residual) converged
    | Lu_factor { n } -> Printf.sprintf "{\"type\":\"event\",\"event\":\"lu_factor\",\"n\":%d}" n
    | Gmres_iter { k; residual } ->
      Printf.sprintf "{\"type\":\"event\",\"event\":\"gmres_iter\",\"k\":%d,\"residual\":%s}" k
        (json_float residual)
    | Step_accept { t; h } ->
      Printf.sprintf "{\"type\":\"event\",\"event\":\"step_accept\",\"t\":%s,\"h\":%s}"
        (json_float t) (json_float h)
    | Step_reject { t; h; reason } ->
      Printf.sprintf
        "{\"type\":\"event\",\"event\":\"step_reject\",\"t\":%s,\"h\":%s,\"reason\":\"%s\"}"
        (json_float t) (json_float h) (json_escape reason)
    | Step_retry { t; h; h_next; reason } ->
      Printf.sprintf
        "{\"type\":\"event\",\"event\":\"step_retry\",\"t\":%s,\"h\":%s,\"h_next\":%s,\"reason\":\"%s\"}"
        (json_float t) (json_float h) (json_float h_next) (json_escape reason)
    | Phase_condition { omega; t2 } ->
      Printf.sprintf "{\"type\":\"event\",\"event\":\"phase_condition\",\"omega\":%s,\"t2\":%s}"
        (json_float omega) (json_float t2)
end

module Span = struct
  type attr = Int of int | Float of float | Str of string

  type record = {
    id : int;
    parent : int option;
    name : string;
    attrs : (string * attr) list;
    t_start : float;
    t_stop : float;
  }

  let recording = ref false
  let writer : (string -> unit) option ref = ref None
  let epoch = ref 0.
  let next_id = ref 0
  let stack : (int * float) list ref = ref []
  let completed : record list ref = ref []

  let tracing () = !recording || !writer <> None

  let attr_json a =
    match a with Int i -> string_of_int i | Float f -> json_float f | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

  let attrs_json attrs =
    "{"
    ^ String.concat ","
        (List.map (fun (k, a) -> Printf.sprintf "\"%s\":%s" (json_escape k) (attr_json a)) attrs)
    ^ "}"

  let parent_json = function None -> "null" | Some p -> string_of_int p

  let mark_start () = if not (tracing ()) then epoch := now ()

  let start_recording () =
    mark_start ();
    completed := [];
    recording := true

  let stop_recording () =
    recording := false;
    let records = List.rev !completed in
    completed := [];
    records

  let set_writer w =
    (match w with Some _ -> mark_start () | None -> ());
    writer := w

  let span ?(attrs = []) name f =
    if not (tracing ()) then f ()
    else begin
      let id = !next_id in
      incr next_id;
      let parent = match !stack with (pid, _) :: _ -> Some pid | [] -> None in
      let t0 = now () -. !epoch in
      stack := (id, t0) :: !stack;
      (match !writer with
       | Some w ->
         w
           (Printf.sprintf "{\"type\":\"span_start\",\"id\":%d,\"parent\":%s,\"name\":\"%s\",\"t_s\":%s,\"attrs\":%s}"
              id (parent_json parent) (json_escape name) (json_float t0) (attrs_json attrs))
       | None -> ());
      Fun.protect f ~finally:(fun () ->
          let t1 = now () -. !epoch in
          (match !stack with
           | (sid, _) :: rest when sid = id -> stack := rest
           | _ -> stack := List.filter (fun (sid, _) -> sid <> id) !stack);
          (match !writer with
           | Some w ->
             w
               (Printf.sprintf "{\"type\":\"span_stop\",\"id\":%d,\"name\":\"%s\",\"t_s\":%s,\"dur_s\":%s}"
                  id (json_escape name) (json_float t1) (json_float (t1 -. t0)))
           | None -> ());
          if !recording then
            completed := { id; parent; name; attrs; t_start = t0; t_stop = t1 } :: !completed)
    end

  (* Aggregate completed spans into a tree keyed by the name path from
     the root, e.g. envelope.simulate > envelope.step > newton.solve. *)
  type node = {
    mutable n_calls : int;
    mutable total : float;
    mutable children : (string * node) list;  (* insertion order *)
  }

  let tree_summary records =
    let by_id = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace by_id r.id r) records;
    let rec path r =
      match r.parent with
      | None -> [ r.name ]
      | Some p -> (
        match Hashtbl.find_opt by_id p with Some pr -> path pr @ [ r.name ] | None -> [ r.name ])
    in
    let root = { n_calls = 0; total = 0.; children = [] } in
    let insert r =
      let rec go node = function
        | [] ->
          node.n_calls <- node.n_calls + 1;
          node.total <- node.total +. (r.t_stop -. r.t_start)
        | name :: rest ->
          let child =
            match List.assoc_opt name node.children with
            | Some c -> c
            | None ->
              let c = { n_calls = 0; total = 0.; children = [] } in
              node.children <- node.children @ [ (name, c) ];
              c
          in
          go child rest
      in
      go root (path r)
    in
    List.iter insert records;
    let buf = Buffer.create 256 in
    Buffer.add_string buf "== span summary ==\n";
    let rec print indent (name, node) =
      Printf.bprintf buf "%s%-*s %8dx %10.4f s\n" indent
        (Int.max 1 (36 - String.length indent))
        name node.n_calls node.total;
      List.iter (print (indent ^ "  ")) node.children
    in
    List.iter (print "") root.children;
    Buffer.contents buf
end
