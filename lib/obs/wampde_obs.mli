(** Solver telemetry and run diagnostics: metrics registry with scoped
    cost accounting, span tracing with optional GC attribution, typed
    solver events, a Chrome/Perfetto trace-event exporter and a run
    report (manifest) builder.

    This library sits below every solver layer of the repository so
    that Newton iterations, LU factorizations, GMRES sweeps and slow
    time-step accept/reject decisions become first-class, inspectable
    data instead of being discarded.

    Cost model: everything is {e off by default}.  Metrics updates and
    event dispatch are gated on one global flag ({!set_enabled});
    spans run the wrapped thunk directly unless a sink is installed.
    The disabled hot path is a single branch per call site and
    allocates nothing. *)

(** [set_enabled b] turns metrics collection and event dispatch on or
    off globally.  Span capture is controlled separately by the
    presence of a sink (see {!Span.start_recording} and
    {!Span.set_writer}). *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Wall-clock seconds.  [Unix.gettimeofday] clamped to be
    non-decreasing: the [unix] binding exposes no CLOCK_MONOTONIC
    without C stubs, so a reading that went backwards (NTP slew, clock
    adjustment) returns the latest reading seen instead — span
    durations are truncated toward zero under a backwards step, never
    negative. *)
val now : unit -> float

(** Minimal JSON representation and recursive-descent parser — enough
    to validate this library's own output (run manifests, trace files,
    JSON-lines spans) without an external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Error of string

  val parse_exn : string -> t
  val parse : string -> (t, string) result

  (** [member k j] is the value at key [k] when [j] is an object. *)
  val member : string -> t -> t option

  val to_num : t -> float option
  val to_str : t -> string option
end

(** Named counters, gauges and log-scale histograms with O(1) updates.
    Metrics are process-global: looking a name up twice returns the
    same cell, so instrumented modules can create their handles at
    module-initialization time. *)
module Metrics : sig
  type counter
  type gauge
  type histogram

  (** [counter name] returns the counter registered under [name],
      creating it on first use.  Raises [Invalid_argument] if [name]
      is already registered as a different metric kind. *)
  val counter : string -> counter

  val gauge : string -> gauge
  val histogram : string -> histogram

  (** Enabled counter updates are additionally bucketed under the
      innermost {!Scope} label active at the call site (the empty
      label when none is), so sum-over-scopes always equals the
      unscoped total. *)
  val incr : counter -> unit

  val add : counter -> int -> unit
  val count : counter -> int
  val set : gauge -> float -> unit
  val value : gauge -> float

  (** [observe h v] records [v] into power-of-two (log-scale) buckets;
      suitable for latencies and iteration counts alike. *)
  val observe : histogram -> float -> unit

  type hist_stats = {
    count : int;
    sum : float;
    min : float;  (** 0 when empty *)
    max : float;  (** 0 when empty *)
    mean : float;  (** 0 when empty *)
    buckets : (float * float * int) list;  (** (lo, hi, count), non-empty buckets only *)
  }

  val stats : histogram -> hist_stats
  val mean : histogram -> float

  (** Zero every registered metric, including scope buckets
      (registrations are kept). *)
  val reset : unit -> unit

  (** Snapshots, sorted by metric name. *)
  val counters : unit -> (string * int) list

  val gauges : unit -> (string * float) list
  val histograms : unit -> (string * hist_stats) list

  (** Per-scope counter buckets, sorted by counter name then scope
      label ("" = updates outside any scope).  Only counters that were
      bumped while enabled appear. *)
  val scoped_counters : unit -> (string * (string * int) list) list

  (** [with_isolated f] snapshots every registered metric (plus the
      enabled flag and the active scope label), zeroes the registry,
      runs [f], and restores the snapshot — exceptions propagate, the
      restore happens either way.  Metrics first registered inside [f]
      stay registered but zeroed.  This is how tests keep the
      process-global registry from leaking across suites. *)
  val with_isolated : (unit -> 'a) -> 'a

  (** Human-readable table of every registered metric. *)
  val table : unit -> string

  (** Human-readable table of the per-scope counter buckets. *)
  val scoped_table : unit -> string

  (** One JSON object:
      [{"counters":{...},"gauges":{...},"histograms":{...},"scoped":{...}}]. *)
  val to_json : unit -> string
end

(** Dynamically-scoped cost-accounting labels naming the solver layer
    currently doing the work ("transient", "envelope.outer",
    "envelope.newton", "quasiperiodic", ...).  Shared leaf counters
    such as [lu.factor] and [gmres.iterations] are bucketed by the
    innermost label active when they are bumped, answering which layer
    incurred the cost.  Labels are set at solver layers, not inside
    the leaves themselves — bucketing [gmres.iterations] under a
    "gmres" scope would say nothing. *)
module Scope : sig
  (** The innermost active label, or [None] outside any scope. *)
  val current : unit -> string option

  (** [with_scope label f] runs [f] with [label] as the innermost
      scope; the previous label is restored on exit (exceptions
      propagate). *)
  val with_scope : string -> (unit -> 'a) -> 'a
end

(** Typed solver events with subscriber callbacks, dispatched in
    subscription order.  Emission is a no-op (and call sites guarded
    with {!Events.active} allocate nothing) unless telemetry is
    enabled and at least one subscriber is installed. *)
module Events : sig
  type t =
    | Newton_iter of { solver : string; k : int; residual : float; damping : float }
    | Newton_done of { solver : string; iterations : int; residual : float; converged : bool }
    | Lu_factor of { n : int }
    | Gmres_iter of { k : int; residual : float }
    | Step_accept of { t : float; h : float }
    | Step_reject of { t : float; h : float; reason : string }
    | Step_retry of { t : float; h : float; h_next : float; reason : string }
        (** a solver failure (not error control) shrank the step: the
            step of size [h] at [t] is being re-attempted with [h_next] *)
    | Phase_condition of { omega : float; t2 : float }
    | Strategy_escalated of { solver : string; from_ : string; to_ : string }
        (** the globalization cascade for [solver] gave up on strategy
            [from_] and is escalating to [to_] *)

  type subscription

  val subscribe : (t -> unit) -> subscription
  val unsubscribe : subscription -> unit

  (** True iff telemetry is enabled and a subscriber is installed.
      Guard event construction with this to keep the disabled path
      allocation-free: [if Events.active () then Events.emit (...)]. *)
  val active : unit -> bool

  val emit : t -> unit

  (** One JSON object per event (single line, no trailing newline). *)
  val to_json : t -> string
end

(** Nested wall-clock spans with parent ids and attributes.

    [Span.span "newton.solve" @@ fun () -> ...] times the thunk and
    records a span when a sink is active; otherwise it just runs the
    thunk.  Two sinks are available and can be combined: an in-memory
    recorder ({!start_recording} / {!stop_recording}) for programmatic
    inspection and tree summaries, and a line writer ({!set_writer})
    for JSON-lines streams. *)
module Span : sig
  type attr = Int of int | Float of float | Str of string

  (** GC work attributed to one span: [Gc.quick_stat] deltas between
      entry and exit (see {!set_gc_stats}). *)
  type gc_delta = {
    minor_words : float;
    promoted_words : float;
    major_words : float;
    minor_collections : int;
    major_collections : int;
  }

  type record = {
    id : int;
    parent : int option;
    name : string;
    attrs : (string * attr) list;
    t_start : float;  (** seconds since tracing began *)
    t_stop : float;
    gc : gc_delta option;  (** present when GC attribution was on *)
  }

  (** A point event on the span timeline (see {!instant}). *)
  type instant = { i_name : string; i_attrs : (string * attr) list; i_t : float }

  val tracing : unit -> bool

  (** [set_gc_stats true] makes every subsequent span snapshot
      [Gc.quick_stat] at entry and exit and record the deltas in
      {!record.gc} (and the JSON-lines [span_stop] line).  Off by
      default: [quick_stat] is cheap but allocates its result record,
      so GC attribution stays opt-in even while tracing. *)
  val set_gc_stats : bool -> unit

  val gc_stats : unit -> bool

  (** Words freshly allocated during the span: minor plus
      direct-to-major, with promotions not double counted. *)
  val allocated_words : gc_delta -> float

  (** [span ?attrs name f] runs [f] inside a span.  Exceptions
      propagate; the span is closed either way. *)
  val span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a

  (** [instant ?attrs name] records a zero-duration point event at the
      current trace time — written to the JSON-lines sink and buffered
      for {!recorded_instants} while recording; a no-op with no sink. *)
  val instant : ?attrs:(string * attr) list -> string -> unit

  val start_recording : unit -> unit

  (** Completed spans in completion order; clears the buffer. *)
  val stop_recording : unit -> record list

  (** Instants recorded since {!start_recording}, in emission order.
      Cleared by the next [start_recording]. *)
  val recorded_instants : unit -> instant list

  (** [set_writer (Some w)] streams two JSON lines per span —
      [span_start] (id, parent, name, attrs, t_s) and [span_stop]
      (id, t_s, dur_s, and gc deltas when enabled) — through [w] (one
      call per line, no trailing newline).  [set_writer None]
      uninstalls. *)
  val set_writer : (string -> unit) option -> unit

  (** Aggregate records into a human-readable tree (grouped by name
      path from the root, with call counts, total seconds, and — when
      GC attribution was on — allocated words and collection counts). *)
  val tree_summary : record list -> string
end

(** Chrome trace-event exporter: serializes recorded spans and
    instants into the JSON array format understood by
    [ui.perfetto.dev] and [chrome://tracing] — duration events as
    matched ["B"]/["E"] pairs (balanced and properly nested by
    construction: they are emitted by a depth-first walk of the span
    tree), solver events as instant (["i"]) events, timestamps in
    microseconds. *)
module Trace_event : sig
  val to_string :
    ?process_name:string -> spans:Span.record list -> instants:Span.instant list -> unit -> string

  (** Bridge from typed solver events to trace instants: subscribe
      this with {!Events.subscribe} while spans are being recorded to
      get the accept/reject/retry trail, [omega(t2)] phase-condition
      updates and Newton convergence marks on the span timeline.
      Per-iteration events (Newton/GMRES/LU) are deliberately dropped
      — they are too dense for a useful timeline and the counters
      carry them. *)
  val record_event : Events.t -> unit
end

(** Self-contained JSON run manifests: what ran (argv, subcommand, git
    describe, OCaml version), what it cost (wall clock, GC totals,
    metrics snapshot including scoped counters) and what the solver
    did (per-macro-step history of step size, [omega(t2)], Newton
    work, accept/reject trail). *)
module Report : sig
  (** Current manifest schema tag ("wampde.run-report/1"). *)
  val schema : string

  (** One macro-step decision reconstructed from the event stream. *)
  type step = {
    t : float;
    h : float;
    omega : float option;  (** from the Phase_condition following an accept *)
    newton_iterations : int;
    residual : float;  (** last Newton residual before the decision; nan if none *)
    outcome : string;  (** "accept" | "reject" | "retry" *)
    reason : string option;
  }

  type collector

  (** [collect ()] subscribes to {!Events} and starts accumulating the
      per-macro-step history; telemetry must be enabled for events to
      flow.  Decisions made inside the "transient" scope (micro steps
      of a univariate integration — warmup or baseline) are excluded:
      the history is about slow-time macro steps, and the scoped
      counters carry the micro-step work. *)
  val collect : unit -> collector

  (** Unsubscribes and returns the history in chronological order. *)
  val finish : collector -> step list

  (** Best-effort [git describe --always --dirty]; [None] when git or
      the work tree is unavailable. *)
  val git_describe : unit -> string option

  (** Serialize the manifest.  [argv] defaults to [Sys.argv]; the
      metrics snapshot is taken from the live registry at this call. *)
  val manifest :
    ?argv:string array ->
    ?subcommand:string ->
    ?git:string ->
    wall_s:float ->
    steps:step list ->
    unit ->
    string

  (** Validate a manifest string: well-formed JSON, required fields
      present and well-typed, every scoped counter's sum over scopes
      equal to its unscoped total, history outcomes well-formed. *)
  val check : string -> (unit, string) result

  (** Render a manifest string to a markdown summary (provenance
      table, solver-work counters, scoped cost breakdown, step
      history).  Validates first. *)
  val to_markdown : string -> (string, string) result
end
