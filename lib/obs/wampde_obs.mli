(** Solver telemetry: metrics registry, span tracing and typed solver
    events.

    This library sits below every solver layer of the repository so
    that Newton iterations, LU factorizations, GMRES sweeps and slow
    time-step accept/reject decisions become first-class, inspectable
    data instead of being discarded.

    Cost model: everything is {e off by default}.  Metrics updates and
    event dispatch are gated on one global flag ({!set_enabled});
    spans run the wrapped thunk directly unless a sink is installed.
    The disabled hot path is a single branch per call site and
    allocates nothing. *)

(** [set_enabled b] turns metrics collection and event dispatch on or
    off globally.  Span capture is controlled separately by the
    presence of a sink (see {!Span.start_recording} and
    {!Span.set_writer}). *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Wall-clock seconds (monotonic enough for span durations). *)
val now : unit -> float

(** Named counters, gauges and log-scale histograms with O(1) updates.
    Metrics are process-global: looking a name up twice returns the
    same cell, so instrumented modules can create their handles at
    module-initialization time. *)
module Metrics : sig
  type counter
  type gauge
  type histogram

  (** [counter name] returns the counter registered under [name],
      creating it on first use.  Raises [Invalid_argument] if [name]
      is already registered as a different metric kind. *)
  val counter : string -> counter

  val gauge : string -> gauge
  val histogram : string -> histogram

  val incr : counter -> unit
  val add : counter -> int -> unit
  val count : counter -> int
  val set : gauge -> float -> unit
  val value : gauge -> float

  (** [observe h v] records [v] into power-of-two (log-scale) buckets;
      suitable for latencies and iteration counts alike. *)
  val observe : histogram -> float -> unit

  type hist_stats = {
    count : int;
    sum : float;
    min : float;  (** 0 when empty *)
    max : float;  (** 0 when empty *)
    mean : float;  (** 0 when empty *)
    buckets : (float * float * int) list;  (** (lo, hi, count), non-empty buckets only *)
  }

  val stats : histogram -> hist_stats
  val mean : histogram -> float

  (** Zero every registered metric (registrations are kept). *)
  val reset : unit -> unit

  (** Snapshots, sorted by metric name. *)
  val counters : unit -> (string * int) list

  val gauges : unit -> (string * float) list
  val histograms : unit -> (string * hist_stats) list

  (** Human-readable table of every registered metric. *)
  val table : unit -> string

  (** One JSON object: [{"counters":{...},"gauges":{...},"histograms":{...}}]. *)
  val to_json : unit -> string
end

(** Typed solver events with subscriber callbacks, dispatched in
    subscription order.  Emission is a no-op (and call sites guarded
    with {!Events.active} allocate nothing) unless telemetry is
    enabled and at least one subscriber is installed. *)
module Events : sig
  type t =
    | Newton_iter of { solver : string; k : int; residual : float; damping : float }
    | Newton_done of { solver : string; iterations : int; residual : float; converged : bool }
    | Lu_factor of { n : int }
    | Gmres_iter of { k : int; residual : float }
    | Step_accept of { t : float; h : float }
    | Step_reject of { t : float; h : float; reason : string }
    | Step_retry of { t : float; h : float; h_next : float; reason : string }
        (** a solver failure (not error control) shrank the step: the
            step of size [h] at [t] is being re-attempted with [h_next] *)
    | Phase_condition of { omega : float; t2 : float }

  type subscription

  val subscribe : (t -> unit) -> subscription
  val unsubscribe : subscription -> unit

  (** True iff telemetry is enabled and a subscriber is installed.
      Guard event construction with this to keep the disabled path
      allocation-free: [if Events.active () then Events.emit (...)]. *)
  val active : unit -> bool

  val emit : t -> unit

  (** One JSON object per event (single line, no trailing newline). *)
  val to_json : t -> string
end

(** Nested wall-clock spans with parent ids and attributes.

    [Span.span "newton.solve" @@ fun () -> ...] times the thunk and
    records a span when a sink is active; otherwise it just runs the
    thunk.  Two sinks are available and can be combined: an in-memory
    recorder ({!start_recording} / {!stop_recording}) for programmatic
    inspection and tree summaries, and a line writer ({!set_writer})
    for JSON-lines streams. *)
module Span : sig
  type attr = Int of int | Float of float | Str of string

  type record = {
    id : int;
    parent : int option;
    name : string;
    attrs : (string * attr) list;
    t_start : float;  (** seconds since tracing began *)
    t_stop : float;
  }

  val tracing : unit -> bool

  (** [span ?attrs name f] runs [f] inside a span.  Exceptions
      propagate; the span is closed either way. *)
  val span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a

  val start_recording : unit -> unit

  (** Completed spans in completion order; clears the buffer. *)
  val stop_recording : unit -> record list

  (** [set_writer (Some w)] streams two JSON lines per span —
      [span_start] (id, parent, name, attrs, t_s) and [span_stop]
      (id, t_s, dur_s) — through [w] (one call per line, no trailing
      newline).  [set_writer None] uninstalls. *)
  val set_writer : (string -> unit) option -> unit

  (** Aggregate records into a human-readable tree (grouped by name
      path from the root, with call counts and total seconds). *)
  val tree_summary : record list -> string
end
