(** Solver telemetry and run diagnostics: metrics registry with scoped
    cost accounting, span tracing with optional GC attribution, typed
    solver events, a Chrome/Perfetto trace-event exporter and a run
    report (manifest) builder.

    This library sits below every solver layer of the repository so
    that Newton iterations, LU factorizations, GMRES sweeps and slow
    time-step accept/reject decisions become first-class, inspectable
    data instead of being discarded.

    Cost model: everything is {e off by default}.  Metrics updates and
    event dispatch are gated on one global flag ({!set_enabled});
    spans run the wrapped thunk directly unless a sink is installed.
    The disabled hot path is a single branch per call site and
    allocates nothing. *)

(** [set_enabled b] turns metrics collection and event dispatch on or
    off globally.  Span capture is controlled separately by the
    presence of a sink (see {!Span.start_recording} and
    {!Span.set_writer}). *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Wall-clock seconds.  [Unix.gettimeofday] clamped to be
    non-decreasing: the [unix] binding exposes no CLOCK_MONOTONIC
    without C stubs, so a reading that went backwards (NTP slew, clock
    adjustment) returns the latest reading seen instead — span
    durations are truncated toward zero under a backwards step, never
    negative. *)
val now : unit -> float

(** Minimal JSON representation and recursive-descent parser — enough
    to validate this library's own output (run manifests, trace files,
    JSON-lines spans) without an external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Error of string

  val parse_exn : string -> t
  val parse : string -> (t, string) result

  (** [member k j] is the value at key [k] when [j] is an object. *)
  val member : string -> t -> t option

  val to_num : t -> float option
  val to_str : t -> string option

  (** Compact single-line serialization (inverse of {!parse} up to
      number formatting and object-key order, which are preserved). *)
  val to_string : t -> string
end

(** Named counters, gauges and log-scale histograms with O(1) updates.
    Metrics are process-global: looking a name up twice returns the
    same cell, so instrumented modules can create their handles at
    module-initialization time. *)
module Metrics : sig
  type counter
  type gauge
  type histogram

  (** [counter name] returns the counter registered under [name],
      creating it on first use.  Raises [Invalid_argument] if [name]
      is already registered as a different metric kind. *)
  val counter : string -> counter

  val gauge : string -> gauge
  val histogram : string -> histogram

  (** Enabled counter updates are additionally bucketed under the
      innermost {!Scope} label active at the call site (the empty
      label when none is), so sum-over-scopes always equals the
      unscoped total. *)
  val incr : counter -> unit

  val add : counter -> int -> unit
  val count : counter -> int
  val set : gauge -> float -> unit
  val value : gauge -> float

  (** [observe h v] records [v] into power-of-two (log-scale) buckets;
      suitable for latencies and iteration counts alike. *)
  val observe : histogram -> float -> unit

  type hist_stats = {
    count : int;
    sum : float;
    min : float;  (** 0 when empty *)
    max : float;  (** 0 when empty *)
    mean : float;  (** 0 when empty *)
    buckets : (float * float * int) list;  (** (lo, hi, count), non-empty buckets only *)
  }

  val stats : histogram -> hist_stats
  val mean : histogram -> float

  (** Zero every registered metric, including scope buckets
      (registrations are kept). *)
  val reset : unit -> unit

  (** Snapshots, sorted by metric name. *)
  val counters : unit -> (string * int) list

  val gauges : unit -> (string * float) list
  val histograms : unit -> (string * hist_stats) list

  (** Per-scope counter buckets, sorted by counter name then scope
      label ("" = updates outside any scope).  Only counters that were
      bumped while enabled appear. *)
  val scoped_counters : unit -> (string * (string * int) list) list

  (** [with_isolated f] snapshots every registered metric (plus the
      enabled flag and the active scope label), zeroes the registry,
      runs [f], and restores the snapshot — exceptions propagate, the
      restore happens either way.  Metrics first registered inside [f]
      stay registered but zeroed.  This is how tests keep the
      process-global registry from leaking across suites. *)
  val with_isolated : (unit -> 'a) -> 'a

  (** Human-readable table of every registered metric. *)
  val table : unit -> string

  (** Human-readable table of the per-scope counter buckets. *)
  val scoped_table : unit -> string

  (** One JSON object:
      [{"counters":{...},"gauges":{...},"histograms":{...},"scoped":{...}}]. *)
  val to_json : unit -> string

  (** Prometheus text exposition (format 0.0.4) of the live registry:
      counters (with per-scope buckets as a [_scoped{scope="..."}]
      companion series), gauges, and histograms with cumulative
      [_bucket{le="..."}] series plus [_sum]/[_count].  Every series is
      preceded by [# HELP] (carrying the original dotted metric name)
      and [# TYPE] comment lines.  Metric names are prefixed with
      ["wampde_"] and sanitized to the Prometheus alphabet; label
      values escape exactly backslash, double-quote and line feed per
      the exposition format. *)
  val to_prometheus : unit -> string
end

(** Dynamically-scoped cost-accounting labels naming the solver layer
    currently doing the work ("transient", "envelope.outer",
    "envelope.newton", "quasiperiodic", ...).  Shared leaf counters
    such as [lu.factor] and [gmres.iterations] are bucketed by the
    innermost label active when they are bumped, answering which layer
    incurred the cost.  Labels are set at solver layers, not inside
    the leaves themselves — bucketing [gmres.iterations] under a
    "gmres" scope would say nothing. *)
module Scope : sig
  (** The innermost active label, or [None] outside any scope. *)
  val current : unit -> string option

  (** [with_scope label f] runs [f] with [label] as the innermost
      scope; the previous label is restored on exit (exceptions
      propagate). *)
  val with_scope : string -> (unit -> 'a) -> 'a
end

(** Typed solver events with subscriber callbacks, dispatched in
    subscription order.  Emission is a no-op (and call sites guarded
    with {!Events.active} allocate nothing) unless telemetry is
    enabled and at least one subscriber is installed. *)
module Events : sig
  type t =
    | Newton_iter of { solver : string; k : int; residual : float; damping : float }
    | Newton_done of { solver : string; iterations : int; residual : float; converged : bool }
    | Lu_factor of { n : int }
    | Gmres_iter of { k : int; residual : float }
    | Step_accept of { t : float; h : float }
    | Step_reject of { t : float; h : float; reason : string }
    | Step_retry of { t : float; h : float; h_next : float; reason : string }
        (** a solver failure (not error control) shrank the step: the
            step of size [h] at [t] is being re-attempted with [h_next] *)
    | Phase_condition of { omega : float; t2 : float }
    | Strategy_escalated of { solver : string; from_ : string; to_ : string }
        (** the globalization cascade for [solver] gave up on strategy
            [from_] and is escalating to [to_] *)
    | Health_warning of {
        monitor : string;
        value : float;
        threshold : float;
        t : float;  (** slow time of the observation; nan when unknown *)
        hint : string;
      }
        (** a numerical-health monitor (see {!Health}) crossed its
            threshold from below *)

  type subscription

  val subscribe : (t -> unit) -> subscription
  val unsubscribe : subscription -> unit

  (** True iff telemetry is enabled and a subscriber is installed.
      Guard event construction with this to keep the disabled path
      allocation-free: [if Events.active () then Events.emit (...)]. *)
  val active : unit -> bool

  val emit : t -> unit

  (** One JSON object per event (single line, no trailing newline). *)
  val to_json : t -> string
end

(** Exponentially-smoothed progress-rate / ETA estimator.

    Feed it [(now, completed)] observations; it maintains a smoothed
    rate (units of progress per second) and derives the remaining time.
    The internal sample point only advances when progress is actually
    made, so stalls lengthen the next rate sample rather than being
    dropped — the estimate degrades pessimistically under stalls,
    never optimistically.

    Guarantee (tested): for any monotone sequence of updates with at
    least one strictly positive [(dt, dc)] pair, {!eta_s} is finite and
    non-negative. *)
module Eta : sig
  type t

  (** [create ~total ()] starts an estimator toward [total] units of
      progress.  [alpha] in (0, 1] is the EWMA weight of the newest
      rate sample (default 0.3).  Raises [Invalid_argument] unless
      [total] is finite and positive. *)
  val create : ?alpha:float -> total:float -> unit -> t

  val total : t -> float
  val completed : t -> float

  (** [update e ~now ~completed] records that [completed] units were
      done as of wall-clock [now].  [completed] is clamped to be
      non-decreasing and at most [total]. *)
  val update : t -> now:float -> completed:float -> unit

  (** Smoothed progress rate per second; 0 until two distinct
      observations with positive progress have been seen. *)
  val rate : t -> float

  (** Fraction complete in [0, 1]. *)
  val fraction : t -> float

  (** Estimated seconds remaining: 0 when complete, [infinity] until a
      rate is known, finite and non-negative otherwise. *)
  val eta_s : t -> float
end

(** Per-macro-step numerical-health monitors.

    Solver layers feed raw observations (spectral tail energy, GMRES
    iteration counts, Newton contraction rates, step accept/reject
    decisions); this module exposes them as [health.*] gauges and
    fires {!Events.Health_warning} when a monitor crosses its
    threshold.

    Threshold semantics (tested at the boundaries): a warning fires
    only when the observed value is {e strictly greater} than the
    threshold — a value exactly equal to the threshold does not fire —
    and only on the below-to-above {e crossing}: once above, repeated
    above-threshold observations stay silent until the monitor drops
    back to (or below) the threshold and crosses again.  Every firing
    also bumps the [health.warnings] counter and a per-monitor
    [health.warnings.<monitor>] counter.

    All feeders are no-ops while telemetry is disabled, and
    {!note_decision} additionally ignores decisions made inside the
    "transient" scope (micro steps of a univariate warmup or baseline
    are not macro-step health). *)
module Health : sig
  type thresholds = {
    spectral_tol : float;
        (** relative spectral-energy tolerance used when estimating the
            needed harmonic count (mirrors [Series.harmonics_needed]) *)
    tail_tol : float;
        (** monitor [t1_tail_energy]: relative energy in the outer
            t1-harmonic band above which the grid counts as
            under-resolved *)
    over_resolution : float;
        (** monitor [t1_over_resolution]: fraction of unused harmonics
            (1 - needed/available) above which the grid counts as
            wastefully over-resolved *)
    gmres_stagnation : float;
        (** monitor [gmres_stagnation]: iterations / restart ratio
            above which a solve counts as stagnating (a failed solve
            always counts) *)
    gmres_plateau : float;
        (** monitor [gmres_plateau]: per-iteration residual-reduction
            factor above which convergence counts as plateaued *)
    gmres_plateau_min_iters : int;
        (** plateau detection needs at least this many iterations *)
    newton_rate : float;
        (** monitor [newton_rate]: estimated Newton contraction rate
            above which convergence counts as slow *)
    rejection_rate : float;
        (** monitor [rejection_rate]: fraction of rejected/retried
            decisions in the sliding window above which stepping counts
            as rejection-heavy *)
    rejection_window : int;  (** sliding-window length, >= 1 *)
    cascade_pressure : float;
        (** monitor [cascade_pressure]: escalations per macro-step
            decision above which the globalization cascade counts as
            overworked *)
  }

  val default_thresholds : thresholds
  val thresholds : unit -> thresholds

  (** Install new thresholds and {!reset} all monitor state.  Raises
      [Invalid_argument] when [rejection_window < 1]. *)
  val set_thresholds : thresholds -> unit

  (** Clear edge-trigger and sliding-window state (gauges and counters
      are owned by {!Metrics} and unaffected). *)
  val reset : unit -> unit

  (** [note_spectrum ~tail ~needed ~available] records the t1-grid
      health of one accepted macro step: [tail] is the relative
      spectral tail energy, [needed]/[available] the effective vs.
      available harmonic counts.  Updates [health.tail_energy],
      [health.effective_harmonics], [health.harmonics_available]. *)
  val note_spectrum : ?t:float -> tail:float -> needed:int -> available:int -> unit -> unit

  (** [note_newton ~iterations ~rate] records the estimated contraction
      rate of one Newton solve ([rate] ~ (r_last/r_first)^(1/iters)).
      Rates from fewer than two iterations update the gauge but never
      warn. *)
  val note_newton : ?t:float -> iterations:int -> rate:float -> unit -> unit

  (** [note_gmres ~iterations ~restart ~converged ~reduction] records
      one GMRES solve; [reduction] is the mean per-iteration residual
      reduction factor (nan when unknown). *)
  val note_gmres :
    ?t:float -> iterations:int -> restart:int -> converged:bool -> reduction:float -> unit -> unit

  (** Record one macro-step controller decision.  Ignored inside the
      "transient" scope. *)
  val note_decision : ?t:float -> outcome:[ `Accept | `Reject | `Retry ] -> unit -> unit

  (** Record one globalization-cascade escalation. *)
  val note_escalation : ?t:float -> unit -> unit
end

(** Bounded, non-blocking NDJSON progress sink.

    One JSON object per line: a [start] record, throttled [progress]
    records (with smoothed-rate ETA when a total is known), periodic
    [heartbeat] records, the existing typed solver events
    (reject/retry/escalation/health warnings), and a terminal [done]
    or [error] record.  The stream is bounded: past [max_records] a
    single [truncated] marker is written and further non-terminal
    records are counted into the [stream.dropped] counter; the
    terminal record always goes through.

    Events from the "transient" scope are ignored (heartbeats still
    cover long warmups). *)
module Stream : sig
  (** Stream schema tag ("wampde.stream/1"), carried by the [start]
      record. *)
  val schema : string

  type t

  (** [start ~write ~flush ()] writes the [start] record and subscribes
      to {!Events} (telemetry must be enabled for events to flow).
      [write] receives one complete JSON line (no trailing newline) per
      record and must not block; [flush] is called after significant
      records.  [total], when finite and positive, enables the ETA
      estimator (pass the target slow time [t2_end]).  [heartbeat_s]
      (default 5) bounds the silence between records; [min_progress_s]
      (default 0.25) throttles progress records; [max_records] (default
      100_000) bounds the stream.  [job], when given, is spliced into
      every record as a leading ["job"] field so several per-job
      streams can share one output channel and stay separable. *)
  val start :
    ?heartbeat_s:float ->
    ?min_progress_s:float ->
    ?max_records:int ->
    ?total:float ->
    ?run:string ->
    ?job:string ->
    write:(string -> unit) ->
    flush:(unit -> unit) ->
    unit ->
    t

  (** [suspend s] detaches the stream from {!Events} without writing
      anything; [resume s] re-attaches it.  A scheduler multiplexing
      several job streams keeps exactly one resumed — the job whose
      quantum is running — so solver events are never attributed to a
      preempted job.  Both are idempotent; [resume] after {!finish} is
      a no-op. *)
  val suspend : t -> unit

  val resume : t -> unit

  (** [finish s ~ok ()] unsubscribes and writes the terminal record —
      [done] when [ok], [error] (with [?error], default "aborted")
      otherwise.  Idempotent: only the first call writes, so a normal
      shutdown path and an [at_exit] safety net can both call it. *)
  val finish : t -> ok:bool -> ?error:string -> unit -> unit

  (** Records written so far (including the terminal record). *)
  val records : t -> int

  (** Macro steps observed so far. *)
  val steps : t -> int
end

(** Nested wall-clock spans with parent ids and attributes.

    [Span.span "newton.solve" @@ fun () -> ...] times the thunk and
    records a span when a sink is active; otherwise it just runs the
    thunk.  Two sinks are available and can be combined: an in-memory
    recorder ({!start_recording} / {!stop_recording}) for programmatic
    inspection and tree summaries, and a line writer ({!set_writer})
    for JSON-lines streams. *)
module Span : sig
  type attr = Int of int | Float of float | Str of string

  (** GC work attributed to one span: [Gc.quick_stat] deltas between
      entry and exit (see {!set_gc_stats}). *)
  type gc_delta = {
    minor_words : float;
    promoted_words : float;
    major_words : float;
    minor_collections : int;
    major_collections : int;
  }

  type record = {
    id : int;
    parent : int option;
    name : string;
    attrs : (string * attr) list;
    t_start : float;  (** seconds since tracing began *)
    t_stop : float;
    gc : gc_delta option;  (** present when GC attribution was on *)
    tid : int;
        (** trace track: 1 for spans opened on the calling domain by
            {!span}, [1 + w] for pool worker [w] reported through
            {!emit_external} *)
  }

  (** A point event on the span timeline (see {!instant}). *)
  type instant = { i_name : string; i_attrs : (string * attr) list; i_t : float }

  val tracing : unit -> bool

  (** [set_gc_stats true] makes every subsequent span snapshot
      [Gc.quick_stat] at entry and exit and record the deltas in
      {!record.gc} (and the JSON-lines [span_stop] line).  Off by
      default: [quick_stat] is cheap but allocates its result record,
      so GC attribution stays opt-in even while tracing. *)
  val set_gc_stats : bool -> unit

  val gc_stats : unit -> bool

  (** Words freshly allocated during the span: minor plus
      direct-to-major, with promotions not double counted. *)
  val allocated_words : gc_delta -> float

  (** [span ?attrs name f] runs [f] inside a span.  Exceptions
      propagate; the span is closed either way. *)
  val span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a

  (** [emit_external ~tid ~name ~t_start ~t_stop ()] records a span
      that ran on another domain.  Pool workers must not touch this
      module's (unsynchronized) global state, so they only write
      wall-clock readings into caller-owned arrays; the calling domain
      turns them into records here, after the barrier.
      [t_start]/[t_stop] are absolute {!now}-style readings; [tid]
      picks the trace track (1 = the calling domain, [1 + w] for
      worker [w]).  A no-op when no sink is active. *)
  val emit_external :
    ?attrs:(string * attr) list ->
    tid:int ->
    name:string ->
    t_start:float ->
    t_stop:float ->
    unit ->
    unit

  (** [instant ?attrs name] records a zero-duration point event at the
      current trace time — written to the JSON-lines sink and buffered
      for {!recorded_instants} while recording; a no-op with no sink. *)
  val instant : ?attrs:(string * attr) list -> string -> unit

  val start_recording : unit -> unit

  (** Completed spans in completion order; clears the buffer. *)
  val stop_recording : unit -> record list

  (** Instants recorded since {!start_recording}, in emission order.
      Cleared by the next [start_recording]. *)
  val recorded_instants : unit -> instant list

  (** [set_writer (Some w)] streams two JSON lines per span —
      [span_start] (id, parent, name, attrs, t_s) and [span_stop]
      (id, t_s, dur_s, and gc deltas when enabled) — through [w] (one
      call per line, no trailing newline).  [set_writer None]
      uninstalls. *)
  val set_writer : (string -> unit) option -> unit

  (** Aggregate records into a human-readable tree (grouped by name
      path from the root, with call counts, total seconds, and — when
      GC attribution was on — allocated words and collection counts). *)
  val tree_summary : record list -> string
end

(** Chrome trace-event exporter: serializes recorded spans and
    instants into the JSON array format understood by
    [ui.perfetto.dev] and [chrome://tracing] — duration events as
    matched ["B"]/["E"] pairs (balanced and properly nested by
    construction: they are emitted by a depth-first walk of the span
    tree), solver events as instant (["i"]) events, timestamps in
    microseconds.  A run with zero spans and zero instants serializes
    to the process metadata plus one synthetic ["trace_start"] instant,
    keeping the file loadable (viewers reject traces with no events). *)
module Trace_event : sig
  val to_string :
    ?process_name:string -> spans:Span.record list -> instants:Span.instant list -> unit -> string

  (** Bridge from typed solver events to trace instants: subscribe
      this with {!Events.subscribe} while spans are being recorded to
      get the accept/reject/retry trail, [omega(t2)] phase-condition
      updates and Newton convergence marks on the span timeline.
      Per-iteration events (Newton/GMRES/LU) are deliberately dropped
      — they are too dense for a useful timeline and the counters
      carry them. *)
  val record_event : Events.t -> unit
end

(** Self-contained JSON run manifests: what ran (argv, subcommand, git
    describe, OCaml version), what it cost (wall clock, GC totals,
    metrics snapshot including scoped counters) and what the solver
    did (per-macro-step history of step size, [omega(t2)], Newton
    work, accept/reject trail). *)
module Report : sig
  (** Current manifest schema tag ("wampde.run-report/1"). *)
  val schema : string

  (** One macro-step decision reconstructed from the event stream. *)
  type step = {
    t : float;
    h : float;
    omega : float option;  (** from the Phase_condition following an accept *)
    newton_iterations : int;
    residual : float;  (** last Newton residual before the decision; nan if none *)
    outcome : string;  (** "accept" | "reject" | "retry" *)
    reason : string option;
  }

  type collector

  (** [collect ()] subscribes to {!Events} and starts accumulating the
      per-macro-step history; telemetry must be enabled for events to
      flow.  Decisions made inside the "transient" scope (micro steps
      of a univariate integration — warmup or baseline) are excluded:
      the history is about slow-time macro steps, and the scoped
      counters carry the micro-step work. *)
  val collect : unit -> collector

  (** Unsubscribes and returns the history in chronological order. *)
  val finish : collector -> step list

  (** Best-effort [git describe --always --dirty]; [None] when git or
      the work tree is unavailable. *)
  val git_describe : unit -> string option

  (** Serialize the manifest.  [argv] defaults to [Sys.argv]; the
      metrics snapshot is taken from the live registry at this call.
      [jobs] (default 1) records the requested [--jobs] parallelism so
      a manifest identifies serial and multicore runs; the pool's own
      counters and gauges ride along in the metrics snapshot. *)
  val manifest :
    ?argv:string array ->
    ?subcommand:string ->
    ?git:string ->
    ?jobs:int ->
    wall_s:float ->
    steps:step list ->
    unit ->
    string

  (** Validate a manifest string: well-formed JSON, required fields
      present and well-typed, every scoped counter's sum over scopes
      equal to its unscoped total, history outcomes well-formed. *)
  val check : string -> (unit, string) result

  (** Render a manifest string to a markdown summary (provenance
      table, solver-work counters, scoped cost breakdown, step
      history).  Validates first. *)
  val to_markdown : string -> (string, string) result
end

(** Post-hoc run diagnosis: turn a {!Report} manifest (and optionally
    an NDJSON stream) into a short list of actionable findings —
    dominant cost scope, t1 over/under-resolution with a suggested
    [n1], GMRES stagnation, rejection-heavy stepping.  The diagnosis
    always includes at least the cost, t1-resolution and
    solver-quality categories (as informational findings when the
    manifest carries no signal for them). *)
module Doctor : sig
  type severity = Info | Warn

  type finding = {
    category : string;
        (** "cost" | "t1_resolution" | "solver_quality" | "stepping" |
            "parallelism" | "serve" | "stream" *)
    severity : severity;
    summary : string;
    suggestion : string option;
  }

  val severity_name : severity -> string

  (** [diagnose ?stream_lines manifest] analyses a parsed manifest;
      [stream_lines] adds NDJSON cross-checks (well-formedness,
      terminal record, health-warning count).  Warnings sort before
      informational findings. *)
  val diagnose : ?stream_lines:string list -> Json.t -> finding list

  (** Like {!diagnose} from raw file contents; [Error] on a manifest
      that fails to parse. *)
  val diagnose_string : ?stream:string -> string -> (finding list, string) result

  val has_warnings : finding list -> bool

  (** Human-readable rendering (one header line plus one line per
      finding with an indented suggestion). *)
  val render : finding list -> string

  (** JSON rendering ({["wampde.doctor/1"]} schema). *)
  val to_json : finding list -> string
end

(** Flight recorder: a bounded ring buffer of recent telemetry —
    typed solver events (including per-iteration Newton residual
    traces), out-of-band notes (fault-harness trips, scheduler
    decisions) and small metric snapshots at macro-step boundaries —
    kept so that a failure can dump the run's last moments as a
    ["wampde.flightdump/1"] JSON file for postmortem analysis.

    The hot path is allocation-free beyond the recorded cell: an
    overwrite of the oldest cell is a store plus two index updates.
    The ring is preallocated at {!arm}. *)
module Flight : sig
  (** Dump schema tag ("wampde.flightdump/1"). *)
  val schema : string

  (** [arm ?capacity ()] preallocates the ring ([capacity] cells,
      default 512, minimum 16), clears it, and subscribes to {!Events}
      (telemetry must be enabled for events to flow; {!note} records
      regardless).  Idempotent while armed. *)
  val arm : ?capacity:int -> unit -> unit

  (** Unsubscribe from {!Events}; the recorded cells stay available
      for {!dump}. *)
  val disarm : unit -> unit

  val armed : unit -> bool

  (** Drop every recorded cell (the ring stays allocated).  A
      scheduler running jobs back-to-back clears between jobs so a
      dump never carries a previous job's tail. *)
  val clear : unit -> unit

  (** [note ~kind msg] records an out-of-band timeline marker (e.g.
      [~kind:"fault"] on a fault-harness trip).  Unlike events, notes
      are recorded even while telemetry is disabled, so an injected
      fault is always on the timeline of the dump it caused. *)
  val note : kind:string -> string -> unit

  (** Valid cells currently in the ring. *)
  val recorded : unit -> int

  (** Cells overwritten since the ring last filled. *)
  val dropped : unit -> int

  (** Serialize the ring as a ["wampde.flightdump/1"] JSON object:
      the shared provenance block (argv, subcommand, jobs, git, OCaml,
      unix time — identical to the run-manifest block), the failure
      [reason], ring occupancy, a full metrics snapshot (so {!Doctor}
      can diagnose the dump like a manifest), and the timeline oldest
      first — with the failure reason appended as the final entry. *)
  val dump :
    ?argv:string array ->
    ?subcommand:string ->
    ?git:string ->
    ?jobs:int ->
    kind:string ->
    message:string ->
    unit ->
    string

  (** [write ~path ~kind ~message ()] dumps to [path]; [Error] on I/O
      failure (a failing dump must never mask the failure it records). *)
  val write :
    ?argv:string array ->
    ?subcommand:string ->
    ?git:string ->
    ?jobs:int ->
    path:string ->
    kind:string ->
    message:string ->
    unit ->
    (string, string) result

  (** Render a dump file's contents as a human postmortem: the failure
      reason, provenance, the timeline (oldest first, the failing
      event last), and {!Doctor} findings computed from the embedded
      metrics snapshot.  [Error] on malformed input or a non-flightdump
      schema. *)
  val to_postmortem : string -> (string, string) result
end

(** Run-history store: an append-only, CRC-guarded NDJSON store of
    ["wampde.run-report/1"] manifests keyed by (circuit, analysis, n1,
    jobs, git rev), with bounded size via per-key compaction.  The
    durable substrate for cross-run regression analytics
    ([wampde_cli history]). *)
module History : sig
  (** Raised by {!decode_line} on a truncated, byte-mangled or
      malformed history line. *)
  exception Corrupt of string

  (** Store file name inside the history directory ("history.ndjson"). *)
  val file_name : string

  val path : dir:string -> string

  type key = { circuit : string; analysis : string; n1 : int; jobs : int; git : string }

  type entry = {
    key : key;
    unix_time : float;  (** from the manifest; nan when absent *)
    wall_s : float;  (** from the manifest; nan when absent *)
    manifest : Json.t;
  }

  (** Human-readable key ("circuit/analysis n1=.. jobs=.. git=.."). *)
  val key_string : key -> string

  (** CRC-32 (IEEE 802.3) of a byte string. *)
  val crc32 : string -> int

  (** One store line: 8 hex CRC digits, a space, then a single-line
      JSON payload [{"key":...,"manifest":...}]. *)
  val encode_line : key:key -> manifest:string -> string

  (** Parse one store line, verifying the CRC.  @raise Corrupt on any
      framing, CRC or shape violation. *)
  val decode_line : string -> entry

  (** Load every decodable entry (oldest first) plus one warning per
      undecodable line.  Never raises: a mangled store degrades to a
      partial history. *)
  val load : dir:string -> entry list * string list

  (** [append ~dir ~key ~manifest ()] creates [dir] as needed and
      appends one line; when the store exceeds [max_bytes] (default
      4 MiB) it is compacted to the newest [keep] (default 32) entries
      per key.  [Error] on I/O failure — history recording is
      best-effort and must never kill the run that produced the
      manifest.

      Concurrent-writer safe: each record goes out as a single
      [write(2)] on an [O_APPEND] descriptor, so simultaneous
      appenders (a serve daemon plus parallel CLI runs sharing one
      [--history] directory) never interleave partial lines. *)
  val append :
    ?max_bytes:int ->
    ?keep:int ->
    dir:string ->
    key:key ->
    manifest:string ->
    unit ->
    (unit, string) result

  (** Atomic rewrite keeping the newest [keep] entries per key;
      returns how many decodable entries were dropped.  Serialized
      against other compactors via an advisory POSIX lock on
      "history.lock" inside [dir], so cross-process compactions never
      clobber each other's rewrite. *)
  val compact : ?keep:int -> dir:string -> unit -> int

  (** Median of the finite values; nan when none. *)
  val median : float list -> float

  (** Median absolute deviation of the finite values; nan when none. *)
  val mad : float list -> float

  (** MAD-based outlier test: |v - median| > nsigma * 1.4826 * MAD,
      with an absolute [floor] (default 1e-9) so a run of identical
      samples only flags genuinely different values. *)
  val is_outlier : ?nsigma:float -> ?floor:float -> median:float -> mad:float -> float -> bool

  (** Gauge-name prefix carrying the krylov-vs-dense speedup in
      BENCH_*.json files ("bench.krylov.speedup.n1_"). *)
  val speedup_prefix : string

  (** [n1 -> max speedup] pairs (sorted by n1) extracted from a parsed
      BENCH_*.json array; empty when the shape is wrong. *)
  val bench_speedups : Json.t -> (int * float) list

  type verdict =
    | Gate_pass of string
    | Gate_no_baseline of string  (** missing/unusable baseline: informational pass *)
    | Gate_regression of string
    | Gate_data_error of string  (** the fresh data itself is unusable *)

  (** The bench_trend.py decision, natively: compare fresh vs previous
      krylov-vs-dense speedup at the largest common n1 and regress when
      the ratio drops below [threshold] (default 0.75).  Baseline
      problems degrade to {!Gate_no_baseline}. *)
  val speedup_gate : ?threshold:float -> prev:Json.t option -> fresh:Json.t -> unit -> verdict
end
