open Linalg
module Obs = Wampde_obs

type options = {
  max_iterations : int;
  residual_tol : float;
  step_tol : float;
  min_damping : float;
  x_scale : Vec.t option;
}

let default_options =
  { max_iterations = 50; residual_tol = 1e-10; step_tol = 1e-12; min_damping = 1e-4; x_scale = None }

type failure_reason =
  | Singular_jacobian
  | Line_search_failed
  | Iteration_limit
  | Non_finite_residual

exception Linear_solve_failed of string

type report = {
  x : Vec.t;
  residual_norm : float;
  iterations : int;
  converged : bool;
  reason : failure_reason option;
}

let scaled_norm options v =
  match options.x_scale with
  | Some scale -> Vec.weighted_norm ~scale v
  | None -> Vec.norm_inf v

let c_solves = Obs.Metrics.counter "newton.solves"
let c_iters = Obs.Metrics.counter "newton.iterations"
let c_failures = Obs.Metrics.counter "newton.failures"
let h_iters = Obs.Metrics.histogram "newton.iterations_per_solve"

(* Fault-injection hooks.  [Fault.fire] is a single branch when the
   harness is disarmed; the wrappers are only installed when armed so
   the production path keeps its direct calls. *)
let fault_residual residual x =
  Fault.maybe_stall ();
  let r = residual x in
  if Fault.fire Fault.Nan_residual && Array.length r > 0 then begin
    let r = Array.copy r in
    r.(0) <- Float.nan;
    r
  end
  else r

let fault_linear_solve linear_solve x r =
  if Fault.fire Fault.Linear_solve then
    raise (Linear_solve_failed "fault injected: linear solve");
  let dx = linear_solve x r in
  if Fault.fire Fault.Newton_diverge then Vec.scale_inplace 1e8 dx;
  dx

let solve_with ?(options = default_options) ?(label = "newton") ~linear_solve ~residual x0 =
  Obs.Span.span
    ~attrs:[ ("label", Obs.Span.Str label); ("dim", Obs.Span.Int (Array.length x0)) ]
    "newton.solve"
  @@ fun () ->
  let residual = if Fault.armed () then fault_residual residual else residual in
  let linear_solve = if Fault.armed () then fault_linear_solve linear_solve else linear_solve in
  let x = ref (Array.copy x0) in
  let r = ref (residual !x) in
  let rnorm = ref (Vec.norm_inf !r) in
  let finish ~iterations ~converged ~reason =
    Obs.Metrics.incr c_solves;
    Obs.Metrics.add c_iters iterations;
    Obs.Metrics.observe h_iters (float_of_int iterations);
    if not converged then Obs.Metrics.incr c_failures;
    if Obs.Events.active () then
      Obs.Events.emit
        (Obs.Events.Newton_done { solver = label; iterations; residual = !rnorm; converged });
    { x = !x; residual_norm = !rnorm; iterations; converged; reason }
  in
  let rec iterate k =
    if not (Float.is_finite !rnorm) then
      finish ~iterations:k ~converged:false ~reason:(Some Non_finite_residual)
    else if !rnorm <= options.residual_tol then finish ~iterations:k ~converged:true ~reason:None
    else if k >= options.max_iterations then
      finish ~iterations:k ~converged:false ~reason:(Some Iteration_limit)
    else begin
      match linear_solve !x !r with
      | exception (Lu.Singular _ | Linear_solve_failed _) ->
        finish ~iterations:k ~converged:false ~reason:(Some Singular_jacobian)
      | dx ->
        Vec.scale_inplace (-1.) dx;
        (* backtracking line search: accept a step that reduces ||r|| *)
        let rec backtrack lambda =
          if lambda < options.min_damping then None
          else begin
            let trial = Array.mapi (fun i xi -> xi +. (lambda *. dx.(i))) !x in
            let rt = residual trial in
            let rtnorm = Vec.norm_inf rt in
            if Float.is_finite rtnorm && (rtnorm < !rnorm || rtnorm <= options.residual_tol) then
              Some (trial, rt, rtnorm, lambda)
            else backtrack (lambda /. 2.)
          end
        in
        (match backtrack 1. with
         | None -> finish ~iterations:k ~converged:false ~reason:(Some Line_search_failed)
         | Some (trial, rt, rtnorm, lambda) ->
           let step_norm = scaled_norm options dx *. lambda in
           x := trial;
           r := rt;
           rnorm := rtnorm;
           if Obs.Events.active () then
             Obs.Events.emit
               (Obs.Events.Newton_iter { solver = label; k = k + 1; residual = rtnorm; damping = lambda });
           if !rnorm <= options.residual_tol then
             finish ~iterations:(k + 1) ~converged:true ~reason:None
           else if step_norm <= options.step_tol then
             (* update negligible: declare convergence if the residual is
                small in a relative sense, otherwise report a stall *)
             finish ~iterations:(k + 1)
               ~converged:(!rnorm <= sqrt options.residual_tol)
               ~reason:(if !rnorm <= sqrt options.residual_tol then None else Some Line_search_failed)
           else iterate (k + 1))
    end
  in
  iterate 0

let solve ?options ?label ?jacobian ~residual x0 =
  let linear_solve x r =
    let j =
      match jacobian with Some j -> j x | None -> Fdjac.jacobian ~f0:r residual x
    in
    Lu.solve (Lu.factor j) r
  in
  solve_with ?options ?label ~linear_solve ~residual x0

let solve_exn ?options ?label ?jacobian ~residual x0 =
  let report = solve ?options ?label ?jacobian ~residual x0 in
  if report.converged then report.x
  else begin
    let reason =
      match report.reason with
      | Some Singular_jacobian -> "singular Jacobian"
      | Some Line_search_failed -> "line search failed"
      | Some Iteration_limit -> "iteration limit"
      | Some Non_finite_residual -> "non-finite residual"
      | None -> "unknown"
    in
    failwith
      (Printf.sprintf "Newton.solve_exn: no convergence (%s; residual %.3e after %d iterations)"
         reason report.residual_norm report.iterations)
  end

let scalar ?(tol = 1e-12) ?(max_iterations = 60) f df x0 =
  let rec go x k =
    let fx = f x in
    if Float.abs fx <= tol then x
    else if k >= max_iterations then
      failwith (Printf.sprintf "Newton.scalar: no convergence (f = %.3e)" fx)
    else begin
      let d = df x in
      if d = 0. then failwith "Newton.scalar: zero derivative";
      go (x -. (fx /. d)) (k + 1)
    end
  in
  go x0 0
