(** Globalization polyalgorithm: a robust solve cascade.

    Runs a sequence of increasingly robust (and increasingly expensive)
    strategies against the same system, each cold-started from [x0],
    escalating on typed failure — the pattern NonlinearSolve.jl calls a
    polyalgorithm:

    + {b damped Newton} — {!Newton.solve} / {!Newton.solve_with}
      (honoring a caller-supplied Krylov direction solver);
    + {b trust region} — {!Trust_region.solve}, dogleg on a dense
      Jacobian (this is also the Krylov-to-dense escalation);
    + {b pseudo-transient} — {!Ptc.solve}, SER-adapted pseudo time
      stepping for stagnating residuals;
    + {b homotopy} — {!Continuation.trace} on a parameter ramp, by
      default the Newton homotopy
      [H(x, l) = F(x) - (1 - l) F(x0)].

    Which strategy won (and every escalation) is recorded in the
    [newton.strategy.*] counters and as [Strategy_escalated] events. *)

open Linalg

type strategy = Damped | Trust_region | Pseudo_transient | Homotopy

val strategy_name : strategy -> string
(** Stable short name used in metrics and events
    ([damped], [trust_region], [ptc], [homotopy]). *)

val default_cascade : strategy list
(** [[Damped; Trust_region; Pseudo_transient; Homotopy]]. *)

type attempt = { strategy : strategy; report : Newton.report }

type outcome = {
  report : Newton.report;  (** winning report, or the closest failure *)
  strategy : strategy;  (** the strategy that produced [report] *)
  attempts : attempt list;  (** every strategy tried, in order *)
}

exception Non_finite of { label : string; what : string }
(** Raised by {!solve_exn} when the cascade failed with a non-finite
    residual: the system itself evaluates to NaN/Inf near the iterates,
    so no amount of globalization can help.  [label] identifies the
    offending solve site.  A printer is registered. *)

exception Solve_failed of { label : string; attempts : attempt list }
(** Raised by {!solve_exn} when every strategy failed for finite
    reasons.  A printer is registered. *)

(** [solve ?options ?label ?cascade ?jacobian ?linear_solve ?homotopy
    ~residual x0] runs the cascade and never raises on solver failure:
    inspect [outcome.report.converged].  [linear_solve] only feeds the
    [Damped] stage; [jacobian] feeds the dense stages (forward
    differences otherwise).  [homotopy l x] overrides the default
    Newton homotopy with a problem-aware ramp ([homotopy 1. x] must
    equal [residual x] for the final report to certify convergence).
    Raises [Invalid_argument] on an empty cascade. *)
val solve :
  ?options:Newton.options ->
  ?label:string ->
  ?cascade:strategy list ->
  ?jacobian:(Vec.t -> Mat.t) ->
  ?linear_solve:(Vec.t -> Vec.t -> Vec.t) ->
  ?homotopy:(float -> Vec.t -> Vec.t) ->
  residual:(Vec.t -> Vec.t) ->
  Vec.t ->
  outcome

(** [solve_exn ...] is {!solve} returning the solution vector, raising
    {!Non_finite} or {!Solve_failed} when the cascade is exhausted. *)
val solve_exn :
  ?options:Newton.options ->
  ?label:string ->
  ?cascade:strategy list ->
  ?jacobian:(Vec.t -> Mat.t) ->
  ?linear_solve:(Vec.t -> Vec.t -> Vec.t) ->
  ?homotopy:(float -> Vec.t -> Vec.t) ->
  residual:(Vec.t -> Vec.t) ->
  Vec.t ->
  Vec.t
