open Linalg
module Obs = Wampde_obs

let c_solves = Obs.Metrics.counter "broyden.solves"
let c_iters = Obs.Metrics.counter "broyden.iterations"

(* Maintains the Jacobian approximation B and its LU factorization;
   refactors whenever the rank-one updated step fails to reduce the
   residual. *)
let solve ?(max_iterations = 100) ?(residual_tol = 1e-10) ?jacobian ~residual x0 =
  Obs.Span.span ~attrs:[ ("dim", Obs.Span.Int (Array.length x0)) ] "broyden.solve" @@ fun () ->
  (* every refactorization site holds the residual at the current
     iterate, so the FD path can skip its base evaluation *)
  let jac =
    match jacobian with
    | Some j -> fun x _f0 -> j x
    | None -> fun x f0 -> Fdjac.jacobian ~f0 residual x
  in
  let x = ref (Array.copy x0) in
  let r = ref (residual !x) in
  let rnorm = ref (Vec.norm_inf !r) in
  let b = ref (jac !x !r) in
  let fresh = ref true in
  let finish ~iterations ~converged ~reason : Newton.report =
    Obs.Metrics.incr c_solves;
    Obs.Metrics.add c_iters iterations;
    if Obs.Events.active () then
      Obs.Events.emit
        (Obs.Events.Newton_done { solver = "broyden"; iterations; residual = !rnorm; converged });
    { Newton.x = !x; residual_norm = !rnorm; iterations; converged; reason }
  in
  let rec iterate k =
    if !rnorm <= residual_tol then finish ~iterations:k ~converged:true ~reason:None
    else if k >= max_iterations then
      finish ~iterations:k ~converged:false ~reason:(Some Newton.Iteration_limit)
    else begin
      match Lu.factor !b with
      | exception Lu.Singular _ ->
        if !fresh then finish ~iterations:k ~converged:false ~reason:(Some Newton.Singular_jacobian)
        else begin
          b := jac !x !r;
          fresh := true;
          iterate k
        end
      | factored ->
        let dx = Lu.solve factored !r in
        Vec.scale_inplace (-1.) dx;
        let trial = Vec.add !x dx in
        let rt = residual trial in
        let rtnorm = Vec.norm_inf rt in
        if Float.is_finite rtnorm && rtnorm < !rnorm then begin
          (* good Broyden update: B += (dr - B dx) dx^T / (dx . dx) *)
          let bdx = Mat.matvec !b dx in
          let dr = Vec.sub rt !r in
          let denom = Vec.dot dx dx in
          if denom > 0. then begin
            let u = Vec.init (Array.length dr) (fun i -> (dr.(i) -. bdx.(i)) /. denom) in
            for i = 0 to Mat.rows !b - 1 do
              for j = 0 to Mat.cols !b - 1 do
                !b.(i).(j) <- !b.(i).(j) +. (u.(i) *. dx.(j))
              done
            done
          end;
          x := trial;
          r := rt;
          rnorm := rtnorm;
          fresh := false;
          if Obs.Events.active () then
            Obs.Events.emit
              (Obs.Events.Newton_iter { solver = "broyden"; k = k + 1; residual = rtnorm; damping = 1. });
          iterate (k + 1)
        end
        else if not !fresh then begin
          b := jac !x !r;
          fresh := true;
          iterate (k + 1)
        end
        else begin
          (* fresh Jacobian and still no progress: damped fallback *)
          let rec backtrack lambda =
            if lambda < 1e-4 then None
            else begin
              let t = Array.mapi (fun i xi -> xi +. (lambda *. dx.(i))) !x in
              let rtl = residual t in
              let nl = Vec.norm_inf rtl in
              if Float.is_finite nl && nl < !rnorm then Some (t, rtl, nl) else backtrack (lambda /. 2.)
            end
          in
          match backtrack 0.5 with
          | None -> finish ~iterations:k ~converged:false ~reason:(Some Newton.Line_search_failed)
          | Some (t, rtl, nl) ->
            x := t;
            r := rtl;
            rnorm := nl;
            b := jac !x !r;
            iterate (k + 1)
        end
    end
  in
  iterate 0
