open Linalg
module Obs = Wampde_obs

type strategy = Damped | Trust_region | Pseudo_transient | Homotopy

let strategy_name = function
  | Damped -> "damped"
  | Trust_region -> "trust_region"
  | Pseudo_transient -> "ptc"
  | Homotopy -> "homotopy"

type attempt = { strategy : strategy; report : Newton.report }
type outcome = { report : Newton.report; strategy : strategy; attempts : attempt list }

exception Non_finite of { label : string; what : string }
exception Solve_failed of { label : string; attempts : attempt list }

let () =
  Printexc.register_printer (function
    | Non_finite { label; what } ->
      Some (Printf.sprintf "Polyalg.Non_finite: %s produced a non-finite %s" label what)
    | Solve_failed { label; attempts } ->
      let tried =
        attempts |> List.map (fun (a : attempt) -> strategy_name a.strategy) |> String.concat ", "
      in
      let residual =
        match attempts with
        | [] -> nan
        | _ ->
          let a : attempt = List.nth attempts (List.length attempts - 1) in
          a.report.Newton.residual_norm
      in
      Some
        (Printf.sprintf "Polyalg.Solve_failed: %s exhausted strategies [%s] (residual %.3e)"
           label tried residual)
    | _ -> None)

let default_cascade = [ Damped; Trust_region; Pseudo_transient; Homotopy ]

let c_damped = Obs.Metrics.counter "newton.strategy.damped"
let c_tr = Obs.Metrics.counter "newton.strategy.trust_region"
let c_ptc = Obs.Metrics.counter "newton.strategy.ptc"
let c_hom = Obs.Metrics.counter "newton.strategy.homotopy"
let c_escalations = Obs.Metrics.counter "newton.strategy.escalations"
let c_failed = Obs.Metrics.counter "newton.strategy.failed"

let c_won = function
  | Damped -> c_damped
  | Trust_region -> c_tr
  | Pseudo_transient -> c_ptc
  | Homotopy -> c_hom

(* Default parameter homotopy: the Newton homotopy
   H(x, lambda) = F(x) - (1 - lambda) F(x0), which x0 solves exactly at
   lambda = 0 and which coincides with F at lambda = 1.  Problem-aware
   callers can supply their own ramp (forcing strength, nonlinearity
   gain, gmin) via [?homotopy]. *)
let newton_homotopy ~residual x0 =
  let r0 = residual x0 in
  fun lambda x ->
    let r = residual x in
    Array.mapi (fun i ri -> ri -. ((1. -. lambda) *. r0.(i))) r

let run_homotopy ~options ~residual ~homotopy x0 =
  let h =
    match homotopy with Some h -> h | None -> newton_homotopy ~residual x0
  in
  match Continuation.trace ~options ~residual:h ~from_:0. ~to_:1. x0 with
  | points ->
    (* the final corrector solved H(., 1); for the default homotopy that
       is F itself, for a custom ramp we still report F's residual *)
    let x = (List.nth points (List.length points - 1)).Continuation.x in
    let r = residual x in
    let rnorm = Vec.norm_inf r in
    {
      Newton.x;
      residual_norm = rnorm;
      iterations = List.length points;
      converged = Float.is_finite rnorm && rnorm <= options.Newton.residual_tol;
      reason =
        (if Float.is_finite rnorm then
           if rnorm <= options.Newton.residual_tol then None
           else Some Newton.Line_search_failed
         else Some Newton.Non_finite_residual);
    }
  | exception Continuation.Step_underflow { last; _ } ->
    let residual_norm, iterations =
      match last with
      | Some r -> (r.Newton.residual_norm, r.Newton.iterations)
      | None -> (nan, 0)
    in
    {
      Newton.x = Array.copy x0;
      residual_norm;
      iterations;
      converged = false;
      reason = Some Newton.Line_search_failed;
    }

let solve ?(options = Newton.default_options) ?(label = "polyalg") ?(cascade = default_cascade)
    ?jacobian ?linear_solve ?homotopy ~residual x0 =
  if cascade = [] then invalid_arg "Polyalg.solve: empty cascade";
  Obs.Span.span
    ~attrs:[ ("label", Obs.Span.Str label); ("dim", Obs.Span.Int (Array.length x0)) ]
    "polyalg.solve"
  @@ fun () ->
  let attempt strategy : attempt =
    let slabel = label ^ "." ^ strategy_name strategy in
    let report =
      match strategy with
      | Damped -> (
        (* honors a caller-supplied (e.g. Krylov) direction solver;
           the later strategies rebuild dense Jacobians, which is the
           Krylov -> dense escalation *)
        match linear_solve with
        | Some linear_solve -> Newton.solve_with ~options ~label:slabel ~linear_solve ~residual x0
        | None -> Newton.solve ~options ~label:slabel ?jacobian ~residual x0)
      | Trust_region -> Trust_region.solve ~options ~label:slabel ?jacobian ~residual x0
      | Pseudo_transient -> Ptc.solve ~options ~label:slabel ?jacobian ~residual x0
      | Homotopy -> run_homotopy ~options ~residual ~homotopy x0
    in
    { strategy; report }
  in
  let rec go tried = function
    | [] ->
      Obs.Metrics.incr c_failed;
      let attempts = List.rev tried in
      (* surface the attempt that got closest *)
      let best =
        List.fold_left
          (fun (acc : attempt) (a : attempt) ->
            let better =
              Float.is_finite a.report.Newton.residual_norm
              && (not (Float.is_finite acc.report.Newton.residual_norm)
                 || a.report.Newton.residual_norm < acc.report.Newton.residual_norm)
            in
            if better then a else acc)
          (List.hd attempts) (List.tl attempts)
      in
      { report = best.report; strategy = best.strategy; attempts }
    | strategy :: rest ->
      let a = attempt strategy in
      if a.report.Newton.converged then begin
        Obs.Metrics.incr (c_won strategy);
        { report = a.report; strategy; attempts = List.rev (a :: tried) }
      end
      else begin
        (match rest with
         | next :: _ ->
           Obs.Metrics.incr c_escalations;
           Obs.Health.note_escalation ();
           if Obs.Events.active () then
             Obs.Events.emit
               (Obs.Events.Strategy_escalated
                  {
                    solver = label;
                    from_ = strategy_name strategy;
                    to_ = strategy_name next;
                  })
         | [] -> ());
        go (a :: tried) rest
      end
  in
  go [] cascade

let solve_exn ?options ?label ?cascade ?jacobian ?linear_solve ?homotopy ~residual x0 =
  let label_s = Option.value label ~default:"polyalg" in
  let outcome =
    solve ?options ?label ?cascade ?jacobian ?linear_solve ?homotopy ~residual x0
  in
  if outcome.report.Newton.converged then outcome.report.Newton.x
  else if
    List.exists
      (fun (a : attempt) -> a.report.Newton.reason = Some Newton.Non_finite_residual)
      outcome.attempts
    && not (Float.is_finite outcome.report.Newton.residual_norm)
  then raise (Non_finite { label = label_s; what = "residual" })
  else raise (Solve_failed { label = label_s; attempts = outcome.attempts })
