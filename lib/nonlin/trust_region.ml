open Linalg
module Obs = Wampde_obs

(* Trust-region Newton with a dogleg step on the Cauchy/Newton pair,
   globalizing the merit function f(x) = 0.5 ||r(x)||^2.  The adaptive
   radius follows the classic rho-test (shrink on poor model agreement,
   grow when a boundary step agrees well), the same scheme
   NonlinearSolve.jl's TrustRegion uses by default. *)

let c_solves = Obs.Metrics.counter "trust_region.solves"
let c_iters = Obs.Metrics.counter "trust_region.iterations"

let merit r = 0.5 *. Vec.dot r r

let solve ?(options = Newton.default_options) ?(label = "trust_region") ?jacobian ~residual x0 =
  Obs.Span.span
    ~attrs:[ ("label", Obs.Span.Str label); ("dim", Obs.Span.Int (Array.length x0)) ]
    "trust_region.solve"
  @@ fun () ->
  let residual = if Fault.armed () then Newton.fault_residual residual else residual in
  let x = ref (Array.copy x0) in
  let r = ref (residual !x) in
  let rnorm = ref (Vec.norm_inf !r) in
  let delta = ref (Float.max 1. (Vec.norm2 x0)) in
  let delta_min = 1e-13 *. (1. +. Vec.norm2 x0) in
  let finish ~iterations ~converged ~reason =
    Obs.Metrics.incr c_solves;
    Obs.Metrics.add c_iters iterations;
    if Obs.Events.active () then
      Obs.Events.emit
        (Obs.Events.Newton_done { solver = label; iterations; residual = !rnorm; converged });
    { Newton.x = !x; residual_norm = !rnorm; iterations; converged; reason }
  in
  let rec iterate k =
    if not (Float.is_finite !rnorm) then
      finish ~iterations:k ~converged:false ~reason:(Some Newton.Non_finite_residual)
    else if !rnorm <= options.Newton.residual_tol then
      finish ~iterations:k ~converged:true ~reason:None
    else if k >= options.Newton.max_iterations then
      finish ~iterations:k ~converged:false ~reason:(Some Newton.Iteration_limit)
    else if !delta < delta_min then
      (* radius collapse: the model never agrees with the function *)
      finish ~iterations:k ~converged:false ~reason:(Some Newton.Line_search_failed)
    else begin
      let j =
        match jacobian with Some j -> j !x | None -> Fdjac.jacobian ~f0:!r residual !x
      in
      let g = Mat.tmatvec j !r in
      let gnorm = Vec.norm2 g in
      if gnorm = 0. || not (Float.is_finite gnorm) then
        finish ~iterations:k ~converged:false ~reason:(Some Newton.Singular_jacobian)
      else begin
        let jg = Mat.matvec j g in
        let jg2 = Vec.dot jg jg in
        (* steepest-descent minimizer of the model along -g *)
        let p_cauchy =
          if jg2 > 0. then Vec.scale (-.(gnorm *. gnorm) /. jg2) g
          else Vec.scale (-.(!delta) /. gnorm) g
        in
        let p_newton =
          match Lu.solve (Lu.factor j) !r with
          | dx ->
            Vec.scale_inplace (-1.) dx;
            if Float.is_finite (Vec.norm2 dx) then Some dx else None
          | exception (Lu.Singular _ | Newton.Linear_solve_failed _) -> None
        in
        (* dogleg step for the current radius *)
        let dogleg delta =
          match p_newton with
          | Some pn when Vec.norm2 pn <= delta -> pn
          | _ ->
            let cn = Vec.norm2 p_cauchy in
            if cn >= delta then Vec.scale (delta /. cn) p_cauchy
            else (
              match p_newton with
              | None -> p_cauchy
              | Some pn ->
                (* walk from the Cauchy point towards the Newton point
                   until the radius: || pC + tau (pN - pC) || = delta *)
                let d = Vec.sub pn p_cauchy in
                let a = Vec.dot d d in
                let b = 2. *. Vec.dot p_cauchy d in
                let c = (cn *. cn) -. (delta *. delta) in
                let disc = Float.max 0. ((b *. b) -. (4. *. a *. c)) in
                let tau = if a > 0. then (-.b +. sqrt disc) /. (2. *. a) else 0. in
                let tau = Float.max 0. (Float.min 1. tau) in
                Array.mapi (fun i pi -> pi +. (tau *. d.(i))) p_cauchy)
        in
        let p = dogleg !delta in
        let jp = Mat.matvec j p in
        let pred = -.Vec.dot g p -. (0.5 *. Vec.dot jp jp) in
        let trial = Array.mapi (fun i xi -> xi +. p.(i)) !x in
        let rt = residual trial in
        let ft = merit rt in
        let ared = merit !r -. ft in
        let pnorm = Vec.norm2 p in
        let rho =
          if not (Float.is_finite ft) then -1.
          else if pred > 0. then ared /. pred
          else if ared > 0. then 1.
          else -1.
        in
        if rho < 0.25 then delta := 0.25 *. pnorm
        else if rho > 0.75 && pnorm >= 0.99 *. !delta then delta := Float.min (2. *. !delta) 1e12;
        if rho > 1e-4 then begin
          x := trial;
          r := rt;
          rnorm := Vec.norm_inf rt;
          if Obs.Events.active () then
            Obs.Events.emit
              (Obs.Events.Newton_iter
                 { solver = label; k = k + 1; residual = !rnorm; damping = 1. })
        end;
        iterate (k + 1)
      end
    end
  in
  iterate 0
