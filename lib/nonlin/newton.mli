(** Damped Newton–Raphson for square nonlinear systems.

    This is the inner solver of every implicit time step, shooting
    update and WaMPDE collocation solve in the repository. *)

open Linalg

type options = {
  max_iterations : int;  (** Newton iteration budget (default 50) *)
  residual_tol : float;  (** absolute residual infinity-norm tolerance *)
  step_tol : float;  (** scaled update infinity-norm tolerance *)
  min_damping : float;  (** smallest line-search damping factor *)
  x_scale : Vec.t option;  (** per-variable magnitudes for norms *)
}

val default_options : options

type failure_reason =
  | Singular_jacobian
  | Line_search_failed  (** damping hit [min_damping] without progress *)
  | Iteration_limit
  | Non_finite_residual
      (** the residual norm went NaN/Inf at the current iterate; the
          returned [x] is the last finite iterate *)

(** Raised by a custom [linear_solve] (see {!solve_with}) to abort the
    iteration; reported as {!Singular_jacobian}. *)
exception Linear_solve_failed of string

type report = {
  x : Vec.t;
  residual_norm : float;
  iterations : int;
  converged : bool;
  reason : failure_reason option;  (** [None] when converged *)
}

(** [solve ?options ?label ?jacobian ~residual x0] finds [x] with
    [residual x ~ 0].  When [jacobian] is omitted a forward
    finite-difference Jacobian is used.  An Armijo-style backtracking
    line search on the residual norm globalizes the iteration.

    Telemetry: each call is wrapped in a [newton.solve] span, updates
    the [newton.*] metrics and emits [Newton_iter] / [Newton_done]
    events tagged with [label] (default ["newton"]), so callers can
    distinguish e.g. shooting updates from collocation solves. *)
val solve :
  ?options:options ->
  ?label:string ->
  ?jacobian:(Vec.t -> Mat.t) ->
  residual:(Vec.t -> Vec.t) ->
  Vec.t ->
  report

(** [solve_with ?options ?label ~linear_solve ~residual x0] is the same
    damped iteration with a pluggable direction solver:
    [linear_solve x r] must return a fresh vector [dx] with
    [J(x) dx ~ r] (the caller negates).  This is how the matrix-free
    Newton–Krylov paths plug preconditioned {!Linalg.Gmres} solves into
    the shared globalization logic.  [linear_solve] may raise
    [Lu.Singular] or {!Linear_solve_failed} to abort. *)
val solve_with :
  ?options:options ->
  ?label:string ->
  linear_solve:(Vec.t -> Vec.t -> Vec.t) ->
  residual:(Vec.t -> Vec.t) ->
  Vec.t ->
  report

(** [solve_exn ?options ?label ?jacobian ~residual x0] is [solve] but
    raises [Failure] with a diagnostic when the iteration does not
    converge. *)
val solve_exn :
  ?options:options ->
  ?label:string ->
  ?jacobian:(Vec.t -> Mat.t) ->
  residual:(Vec.t -> Vec.t) ->
  Vec.t ->
  Vec.t

(** [scalar ?tol ?max_iterations f df x0] is 1-D Newton for convenience
    (root of [f] with derivative [df]). *)
val scalar : ?tol:float -> ?max_iterations:int -> (float -> float) -> (float -> float) -> float -> float

(** {1 Fault-injection hooks}

    Shared with the other globalization strategies ({!Trust_region},
    {!Ptc}) so one armed {!Fault} schedule exercises every solver.
    Wrap only when [Fault.armed ()] — the wrappers probe on every
    call. *)

(** [fault_residual residual x] evaluates [residual x] and contaminates
    the first entry with NaN when the [Nan_residual] fault fires. *)
val fault_residual : (Vec.t -> Vec.t) -> Vec.t -> Vec.t

(** [fault_linear_solve ls x r] raises {!Linear_solve_failed} when the
    [Linear_solve] fault fires and scales the returned direction by
    [1e8] when [Newton_diverge] fires. *)
val fault_linear_solve : (Vec.t -> Vec.t -> Vec.t) -> Vec.t -> Vec.t -> Vec.t
