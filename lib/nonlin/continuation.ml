open Linalg

type point = { lambda : float; x : Vec.t }

exception Step_underflow of { lambda : float; step : float; last : Newton.report option }

let () =
  Printexc.register_printer (function
    | Step_underflow { lambda; step; last } ->
      let tail =
        match last with
        | Some r ->
          Printf.sprintf " (last corrector: residual %.3e after %d iterations)"
            r.Newton.residual_norm r.Newton.iterations
        | None -> ""
      in
      Some
        (Printf.sprintf
           "Continuation.Step_underflow: step %.3e below minimum at lambda = %g%s" step lambda
           tail)
    | _ -> None)

let trace ?options ?(initial_step = 0.1) ?(min_step = 1e-6) ?(max_step = infinity) ~residual
    ~from_ ~to_ x0 =
  if from_ = to_ then begin
    let r = Newton.solve ?options ~residual:(residual to_) x0 in
    if not r.Newton.converged then
      raise (Step_underflow { lambda = from_; step = initial_step; last = Some r });
    [ { lambda = to_; x = r.Newton.x } ]
  end
  else begin
    let dir = if to_ > from_ then 1. else -1. in
    let span = Float.abs (to_ -. from_) in
    let rec go lambda x step last acc =
      if step < min_step then raise (Step_underflow { lambda; step; last })
      else begin
        let next = lambda +. (dir *. Float.min step (Float.min max_step span)) in
        let next = if dir *. (next -. to_) >= 0. then to_ else next in
        let r = Newton.solve ?options ~residual:(residual next) x in
        if r.Newton.converged then begin
          let acc = { lambda = next; x = r.Newton.x } :: acc in
          if next = to_ then List.rev acc
          else begin
            (* grow the step when Newton converged comfortably *)
            let step' = if r.Newton.iterations <= 3 then step *. 1.7 else step in
            go next r.Newton.x (Float.min step' max_step) (Some r) acc
          end
        end
        else go lambda x (step /. 2.) (Some r) acc
      end
    in
    go from_ (Array.copy x0) initial_step None []
  end

let solve_at ?options ?initial_step ?min_step ?max_step ~residual ~from_ ~to_ x0 =
  match
    List.rev (trace ?options ?initial_step ?min_step ?max_step ~residual ~from_ ~to_ x0)
  with
  | [] -> assert false (* trace always ends at [to_] or raises *)
  | { x; _ } :: _ -> x
