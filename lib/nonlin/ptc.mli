(** Pseudo-transient continuation (PTC) for square nonlinear systems.

    Solves [(delta^-1 I + J) dx = -r] per iteration and adapts the
    pseudo time step [delta] by switched evolution relaxation (SER):
    [delta] grows as the residual falls, so the iteration morphs from
    regularized descent into full Newton near the solution.  The
    strategy of last numerical resort before homotopy in {!Polyalg} —
    slow but very hard to stall. *)

open Linalg

(** [solve ?options ?label ?jacobian ~residual x0] reports like
    {!Newton.solve} with an iteration budget of
    [2 * options.max_iterations]; [options.min_damping] and
    [options.step_tol] are unused.  Emits [Newton_iter]/[Newton_done]
    tagged [label] and updates the [ptc.*] counters. *)
val solve :
  ?options:Newton.options ->
  ?label:string ->
  ?jacobian:(Vec.t -> Mat.t) ->
  residual:(Vec.t -> Vec.t) ->
  Vec.t ->
  Newton.report
