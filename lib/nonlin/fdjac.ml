open Linalg

let sqrt_eps = sqrt epsilon_float
let cbrt_eps = Float.pow epsilon_float (1. /. 3.)

let step ?typical x j base =
  let typ = match typical with Some t -> Float.abs t.(j) | None -> 1. in
  let h = base *. Float.max (Float.abs x.(j)) typ in
  (* round h so that x + h - x is exactly representable *)
  let xh = x.(j) +. h in
  xh -. x.(j)

let jacobian ?typical ?f0 f x =
  let n = Array.length x in
  let f0 = match f0 with Some v -> v | None -> f x in
  let m = Array.length f0 in
  let jac = Mat.zeros m n in
  let xp = Array.copy x in
  for j = 0 to n - 1 do
    let h = step ?typical x j sqrt_eps in
    xp.(j) <- x.(j) +. h;
    let fj = f xp in
    xp.(j) <- x.(j);
    for i = 0 to m - 1 do
      jac.(i).(j) <- (fj.(i) -. f0.(i)) /. h
    done
  done;
  jac

let jacobian_central ?typical f x =
  let n = Array.length x in
  let xp = Array.copy x in
  let cols =
    Array.init n (fun j ->
        let h = step ?typical x j cbrt_eps in
        xp.(j) <- x.(j) +. h;
        let fp = f xp in
        xp.(j) <- x.(j) -. h;
        let fm = f xp in
        xp.(j) <- x.(j);
        Array.map2 (fun a b -> (a -. b) /. (2. *. h)) fp fm)
  in
  let m = Array.length cols.(0) in
  Mat.init m n (fun i j -> cols.(j).(i))

let directional ?f0 f x v =
  let vnorm = Vec.norm_inf v in
  let f0 = match f0 with Some v -> v | None -> f x in
  if vnorm = 0. then Array.make (Array.length f0) 0.
  else begin
    let h = sqrt_eps *. Float.max 1. (Vec.norm_inf x) /. vnorm in
    let xp = Array.mapi (fun i xi -> xi +. (h *. v.(i))) x in
    let fp = f xp in
    Array.map2 (fun a b -> (a -. b) /. h) fp f0
  end
