open Linalg

let sqrt_eps = sqrt epsilon_float
let cbrt_eps = Float.pow epsilon_float (1. /. 3.)

let step ?typical x j base =
  let typ = match typical with Some t -> Float.abs t.(j) | None -> 1. in
  let h = base *. Float.max (Float.abs x.(j)) typ in
  (* round h so that x + h - x is exactly representable *)
  let xh = x.(j) +. h in
  xh -. x.(j)

(* Columns are independent: column [j] perturbs only slot [j] of its
   own [xp] copy and writes only column [j] of the output, so chunks
   of columns run on the domain pool with one [xp] per worker.  Each
   column's arithmetic (step choice, evaluation point, difference) is
   the same in every chunking, so the Jacobian is bitwise identical
   for every job count.  [?parallel] is opt-in: [f] must be re-entrant
   (pure, no shared scratch, no Obs telemetry). *)
let jacobian ?(parallel = false) ?typical ?f0 f x =
  let n = Array.length x in
  let f0 = match f0 with Some v -> v | None -> f x in
  let m = Array.length f0 in
  let jac = Mat.zeros m n in
  let columns xp lo hi =
    for j = lo to hi - 1 do
      let h = step ?typical x j sqrt_eps in
      xp.(j) <- x.(j) +. h;
      let fj = f xp in
      xp.(j) <- x.(j);
      for i = 0 to m - 1 do
        jac.(i).(j) <- (fj.(i) -. f0.(i)) /. h
      done
    done
  in
  if parallel then
    Par.Pool.parallel_chunks n (fun ~worker:_ ~lo ~hi -> columns (Array.copy x) lo hi)
  else columns (Array.copy x) 0 n;
  jac

let jacobian_central ?(parallel = false) ?typical f x =
  let n = Array.length x in
  let cols = Array.make n [||] in
  let columns xp lo hi =
    for j = lo to hi - 1 do
      let h = step ?typical x j cbrt_eps in
      xp.(j) <- x.(j) +. h;
      let fp = f xp in
      xp.(j) <- x.(j) -. h;
      let fm = f xp in
      xp.(j) <- x.(j);
      cols.(j) <- Array.map2 (fun a b -> (a -. b) /. (2. *. h)) fp fm
    done
  in
  if parallel then
    Par.Pool.parallel_chunks n (fun ~worker:_ ~lo ~hi -> columns (Array.copy x) lo hi)
  else columns (Array.copy x) 0 n;
  let m = Array.length cols.(0) in
  Mat.init m n (fun i j -> cols.(j).(i))

let directional ?f0 f x v =
  let vnorm = Vec.norm_inf v in
  let f0 = match f0 with Some v -> v | None -> f x in
  if vnorm = 0. then Array.make (Array.length f0) 0.
  else begin
    let h = sqrt_eps *. Float.max 1. (Vec.norm_inf x) /. vnorm in
    let xp = Array.mapi (fun i xi -> xi +. (h *. v.(i))) x in
    let fp = f xp in
    Array.map2 (fun a b -> (a -. b) /. h) fp f0
  end
