(** Trust-region Newton (dogleg) for square nonlinear systems.

    Globalizes Newton on the merit function [0.5 ||r(x)||^2] with a
    dogleg step interpolating the Cauchy (steepest-descent) and Newton
    points inside an adaptive radius.  More robust than a line search
    when the Newton direction is poor far from the solution; used by
    {!Polyalg} as the first escalation past damped Newton.

    The Jacobian is formed densely ([?jacobian] or forward differences)
    and factored with LU — a singular factorization degrades to the
    Cauchy direction instead of aborting. *)

open Linalg

(** [solve ?options ?label ?jacobian ~residual x0] reports like
    {!Newton.solve}; [options.min_damping] and [options.step_tol] are
    unused.  Failure reasons: [Line_search_failed] encodes trust-radius
    collapse, [Non_finite_residual] a NaN/Inf residual at the current
    iterate.  Emits [Newton_iter]/[Newton_done] tagged [label] and
    updates the [trust_region.*] counters. *)
val solve :
  ?options:Newton.options ->
  ?label:string ->
  ?jacobian:(Vec.t -> Mat.t) ->
  residual:(Vec.t -> Vec.t) ->
  Vec.t ->
  Newton.report
