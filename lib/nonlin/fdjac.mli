(** Finite-difference Jacobians. *)

open Linalg

(** [jacobian ?parallel ?typical ?f0 f x] approximates the Jacobian of
    [f] at [x] by one-sided differences.  The step for column [j] is
    [sqrt eps * max |x_j| typical_j] with [typical] defaulting to 1,
    guarding against zero components.  Passing [?f0 = f x] (which most
    Newton-style callers already hold) saves one evaluation of [f].

    [?parallel:true] evaluates column chunks on the {!Par.Pool} domain
    pool (each worker gets its own perturbation scratch; columns write
    disjoint output slots, so the result is bitwise identical to the
    serial one for every job count).  Only opt in when [f] is
    re-entrant: pure, no shared mutable scratch, no
    {!Wampde_obs} telemetry. *)
val jacobian : ?parallel:bool -> ?typical:Vec.t -> ?f0:Vec.t -> (Vec.t -> Vec.t) -> Vec.t -> Mat.t

(** [jacobian_central ?parallel ?typical f x] is the 2nd-order
    central-difference variant (twice the evaluations, more accurate).
    [?parallel] as in {!jacobian}. *)
val jacobian_central : ?parallel:bool -> ?typical:Vec.t -> (Vec.t -> Vec.t) -> Vec.t -> Mat.t

(** [directional ?f0 f x v] approximates the Jacobian–vector product
    [J(x) v] with a single extra evaluation of [f] when [?f0 = f x] is
    supplied (two otherwise). *)
val directional : ?f0:Vec.t -> (Vec.t -> Vec.t) -> Vec.t -> Vec.t -> Vec.t
