open Linalg
module Obs = Wampde_obs

(* Pseudo-transient continuation: damp Newton with an implicit-Euler
   pseudo time step, solving (delta^-1 I + J) dx = -r and letting the
   step grow as the residual falls (switched evolution relaxation,
   SER).  For small delta this is heavily regularized gradient-like
   descent; as delta -> infinity it turns into plain Newton, so the
   iteration follows the pseudo-transient to the steady state even when
   Newton's basin is tiny. *)

let c_solves = Obs.Metrics.counter "ptc.solves"
let c_iters = Obs.Metrics.counter "ptc.iterations"

let solve ?(options = Newton.default_options) ?(label = "ptc") ?jacobian ~residual x0 =
  Obs.Span.span
    ~attrs:[ ("label", Obs.Span.Str label); ("dim", Obs.Span.Int (Array.length x0)) ]
    "ptc.solve"
  @@ fun () ->
  let residual = if Fault.armed () then Newton.fault_residual residual else residual in
  let n = Array.length x0 in
  let x = ref (Array.copy x0) in
  let r = ref (residual !x) in
  let rnorm = ref (Vec.norm_inf !r) in
  let delta = ref 0.1 in
  let delta_max = 1e12 in
  (* SER needs more headroom than a pure Newton budget *)
  let max_iterations = 2 * options.Newton.max_iterations in
  let finish ~iterations ~converged ~reason =
    Obs.Metrics.incr c_solves;
    Obs.Metrics.add c_iters iterations;
    if Obs.Events.active () then
      Obs.Events.emit
        (Obs.Events.Newton_done { solver = label; iterations; residual = !rnorm; converged });
    { Newton.x = !x; residual_norm = !rnorm; iterations; converged; reason }
  in
  let rec iterate k =
    if not (Float.is_finite !rnorm) then
      finish ~iterations:k ~converged:false ~reason:(Some Newton.Non_finite_residual)
    else if !rnorm <= options.Newton.residual_tol then
      finish ~iterations:k ~converged:true ~reason:None
    else if k >= max_iterations then
      finish ~iterations:k ~converged:false ~reason:(Some Newton.Iteration_limit)
    else if !delta < 1e-14 then
      finish ~iterations:k ~converged:false ~reason:(Some Newton.Singular_jacobian)
    else begin
      let j =
        match jacobian with Some j -> j !x | None -> Fdjac.jacobian ~f0:!r residual !x
      in
      let shift = 1. /. !delta in
      let m = Mat.init n n (fun i l -> j.(i).(l) +. if i = l then shift else 0.) in
      match Lu.solve (Lu.factor m) !r with
      | exception (Lu.Singular _ | Newton.Linear_solve_failed _) ->
        (* the shifted system should be well conditioned for small
           delta; shrink the pseudo step and retry *)
        delta := !delta /. 4.;
        iterate (k + 1)
      | dx ->
        Vec.scale_inplace (-1.) dx;
        let trial = Array.mapi (fun i xi -> xi +. dx.(i)) !x in
        let rt = residual trial in
        let rtnorm = Vec.norm_inf rt in
        if not (Float.is_finite rtnorm) then begin
          (* stay put, take a smaller pseudo step *)
          delta := !delta /. 4.;
          iterate (k + 1)
        end
        else begin
          (* SER: grow the step inversely with residual progress *)
          let ratio = if rtnorm > 0. then !rnorm /. rtnorm else 10. in
          delta := Float.min delta_max (!delta *. Float.max 0.1 (Float.min 10. ratio));
          x := trial;
          r := rt;
          rnorm := rtnorm;
          if Obs.Events.active () then
            Obs.Events.emit
              (Obs.Events.Newton_iter
                 { solver = label; k = k + 1; residual = rtnorm; damping = 1. });
          iterate (k + 1)
        end
    end
  in
  iterate 0
