(** Natural-parameter continuation.

    Tracks a solution branch of [F(x, lambda) = 0] from [lambda_from]
    to [lambda_to], adapting the parameter step to Newton behaviour.
    Used to walk oscillator solutions from easy operating points to
    hard ones (e.g. ramping nonlinearity strength or forcing
    amplitude). *)

open Linalg

type point = { lambda : float; x : Vec.t }

exception Step_underflow of { lambda : float; step : float; last : Newton.report option }
(** The continuation step shrank below [min_step] at [lambda] without
    the corrector converging; [last] is the most recent Newton report
    (if any corrector ran).  A printer is registered. *)

(** [trace ?options ?initial_step ?min_step ?max_step ~residual ~from_ ~to_ x0]
    returns the list of accepted continuation points ending exactly at
    [to_].  [residual lambda x] evaluates [F(x, lambda)].

    Raises {!Step_underflow} if the step shrinks below [min_step]
    without the corrector converging. *)
val trace :
  ?options:Newton.options ->
  ?initial_step:float ->
  ?min_step:float ->
  ?max_step:float ->
  residual:(float -> Vec.t -> Vec.t) ->
  from_:float ->
  to_:float ->
  Vec.t ->
  point list

(** [solve_at ...] is [trace] returning only the final solution. *)
val solve_at :
  ?options:Newton.options ->
  ?initial_step:float ->
  ?min_step:float ->
  ?max_step:float ->
  residual:(float -> Vec.t -> Vec.t) ->
  from_:float ->
  to_:float ->
  Vec.t ->
  Vec.t
