open Linalg
module Obs = Wampde_obs

type method_ = Backward_euler | Trapezoidal | Bdf2 | Rk4

type trajectory = { times : float array; states : Vec.t array }

type step_failure = {
  t : float;
  h : float;
  residual_norm : float;
  iterations : int;
  reason : Nonlin.Newton.failure_reason option;
}

exception Step_failure of step_failure

let reason_string = function
  | Some Nonlin.Newton.Singular_jacobian -> "singular Jacobian"
  | Some Nonlin.Newton.Line_search_failed -> "line search failed"
  | Some Nonlin.Newton.Iteration_limit -> "iteration limit"
  | Some Nonlin.Newton.Non_finite_residual -> "non-finite residual"
  | None -> "unknown"

let () =
  Printexc.register_printer (function
    | Step_failure { t; h; residual_norm; iterations; reason } ->
      Some
        (Printf.sprintf
           "Transient.Step_failure: Newton failed at t = %.6g (h = %.3g, residual %.3e after %d iterations: %s)"
           t h residual_norm iterations (reason_string reason))
    | _ -> None)

let c_steps = Obs.Metrics.counter "transient.steps"
let c_rejects = Obs.Metrics.counter "transient.rejects"
let c_rescues = Obs.Metrics.counter "transient.rescues"

let step_failed ~t ~h (report : Nonlin.Newton.report) =
  let failure =
    {
      t;
      h;
      residual_norm = report.Nonlin.Newton.residual_norm;
      iterations = report.Nonlin.Newton.iterations;
      reason = report.Nonlin.Newton.reason;
    }
  in
  Obs.Metrics.incr c_rejects;
  if Obs.Events.active () then
    Obs.Events.emit (Obs.Events.Step_reject { t; h; reason = reason_string failure.reason });
  raise (Step_failure failure)

let newton_options =
  { Nonlin.Newton.default_options with max_iterations = 40; residual_tol = 1e-10 }

(* Fixed-step implicit solves cannot shrink h on a Newton failure the
   way the adaptive driver can, so they get one rescue attempt with
   the trust-region globalizer (cold-started from the same predictor)
   before the failure becomes a typed [Step_failure].  Free on the
   healthy path; absorbs transient upsets such as an injected fault or
   a merely-poor predictor. *)
let solve_or_rescue ~label ~jacobian ~residual ~t ~h x =
  let report = Nonlin.Newton.solve ~options:newton_options ~label ~jacobian ~residual x in
  if report.Nonlin.Newton.converged then report.Nonlin.Newton.x
  else begin
    let rescue =
      Nonlin.Trust_region.solve ~options:newton_options ~label:(label ^ ".rescue")
        ~jacobian ~residual x
    in
    if rescue.Nonlin.Newton.converged then begin
      Obs.Metrics.incr c_rescues;
      rescue.Nonlin.Newton.x
    end
    else step_failed ~t ~h report
  end

let theta_step dae ~theta ~t ~h x =
  let q0 = dae.Dae.q x in
  let f0 = if theta < 1. then dae.Dae.f ~t x else [||] in
  let t1 = t +. h in
  (* residual scaled by h (i.e. q(y) - q0 + h (theta f1 + (1-theta) f0))
     so its magnitude tracks q, not q/h: keeps the Newton tolerance
     meaningful for arbitrarily small steps. *)
  let residual y =
    let qy = dae.Dae.q y in
    let fy = dae.Dae.f ~t:t1 y in
    Vec.init dae.Dae.dim (fun i ->
        qy.(i) -. q0.(i)
        +. (h *. theta *. fy.(i))
        +. (if theta < 1. then h *. (1. -. theta) *. f0.(i) else 0.))
  in
  let jacobian y =
    let c = dae.Dae.dq y in
    let g = dae.Dae.df ~t:t1 y in
    Mat.init dae.Dae.dim dae.Dae.dim (fun i j -> c.(i).(j) +. (h *. theta *. g.(i).(j)))
  in
  solve_or_rescue ~label:"transient.theta" ~jacobian ~residual ~t ~h x

(* BDF2 with the previous two accepted points (fixed step):
   (3 q(x2) - 4 q(x1) + q(x0)) / (2h) + f(t2, x2) = 0 *)
let bdf2_step dae ~t ~h ~x_prev x =
  let q1 = dae.Dae.q x and q0 = dae.Dae.q x_prev in
  let t2 = t +. h in
  let residual y =
    let qy = dae.Dae.q y in
    let fy = dae.Dae.f ~t:t2 y in
    Vec.init dae.Dae.dim (fun i ->
        ((1.5 *. qy.(i)) -. (2. *. q1.(i)) +. (0.5 *. q0.(i))) +. (h *. fy.(i)))
  in
  let jacobian y =
    let c = dae.Dae.dq y in
    let g = dae.Dae.df ~t:t2 y in
    Mat.init dae.Dae.dim dae.Dae.dim (fun i j -> (1.5 *. c.(i).(j)) +. (h *. g.(i).(j)))
  in
  solve_or_rescue ~label:"transient.bdf2" ~jacobian ~residual ~t ~h x

(* classical explicit RK4 on the semi-explicit form
   xdot = -C(x)^{-1} f(t, x); valid only when dq/dx is invertible
   everywhere along the trajectory (no purely algebraic constraints). *)
let rk4_step dae ~t ~h x =
  let deriv tt y = Dae.consistent_derivative dae ~t:tt y in
  let k1 = deriv t x in
  let k2 = deriv (t +. (h /. 2.)) (Vec.init (Array.length x) (fun i -> x.(i) +. (h /. 2. *. k1.(i)))) in
  let k3 = deriv (t +. (h /. 2.)) (Vec.init (Array.length x) (fun i -> x.(i) +. (h /. 2. *. k2.(i)))) in
  let k4 = deriv (t +. h) (Vec.init (Array.length x) (fun i -> x.(i) +. (h *. k3.(i)))) in
  Vec.init (Array.length x) (fun i ->
      x.(i) +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))

let integrate dae ~method_ ~t0 ~t1 ~h x0 =
  if h <= 0. then invalid_arg "Transient.integrate: h <= 0";
  if t1 < t0 then invalid_arg "Transient.integrate: t1 < t0";
  Obs.Span.span
    ~attrs:[ ("dim", Obs.Span.Int dae.Dae.dim); ("t1", Obs.Span.Float t1) ]
    "transient.integrate"
  @@ fun () ->
  Obs.Scope.with_scope "transient" @@ fun () ->
  let times = ref [ t0 ] and states = ref [ Array.copy x0 ] in
  let prev = ref None in
  let t = ref t0 and x = ref (Array.copy x0) in
  while !t < t1 -. (1e-12 *. Float.max 1. (Float.abs t1)) do
    let step = Float.min h (t1 -. !t) in
    let x' =
      match method_ with
      | Backward_euler -> theta_step dae ~theta:1. ~t:!t ~h:step !x
      | Trapezoidal -> theta_step dae ~theta:0.5 ~t:!t ~h:step !x
      | Bdf2 ->
        (match !prev with
         | None -> theta_step dae ~theta:0.5 ~t:!t ~h:step !x
         | Some xp -> bdf2_step dae ~t:!t ~h:step ~x_prev:xp !x)
      | Rk4 -> rk4_step dae ~t:!t ~h:step !x
    in
    prev := Some !x;
    x := x';
    Obs.Metrics.incr c_steps;
    if Obs.Events.active () then Obs.Events.emit (Obs.Events.Step_accept { t = !t; h = step });
    t := !t +. step;
    times := !t :: !times;
    states := Array.copy x' :: !states
  done;
  { times = Array.of_list (List.rev !times); states = Array.of_list (List.rev !states) }

let integrate_adaptive dae ~t0 ~t1 ?h0 ?(h_min = 1e-14) ?h_max ~tol x0 =
  let span = t1 -. t0 in
  if span < 0. then invalid_arg "Transient.integrate_adaptive: t1 < t0";
  Obs.Span.span
    ~attrs:[ ("dim", Obs.Span.Int dae.Dae.dim); ("t1", Obs.Span.Float t1) ]
    "transient.integrate_adaptive"
  @@ fun () ->
  Obs.Scope.with_scope "transient" @@ fun () ->
  let h_max = match h_max with Some h -> h | None -> span /. 10. in
  let h0 = match h0 with Some h -> h | None -> span /. 1000. in
  (* atol floor matches the historical relative norm, which clamped
     component magnitudes at 1e-8 *)
  let control =
    Step_control.default_options ~rtol:tol ~atol:(tol *. 1e-8) ~h_min ~h_max ~order:2 ()
  in
  let denom = Step_control.richardson_denom ~order:2 in
  let ctrl = Step_control.create control ~h_init:h0 in
  let times = ref [ t0 ] and states = ref [ Array.copy x0 ] in
  let t = ref t0 and x = ref (Array.copy x0) in
  while !t < t1 -. (1e-12 *. Float.max 1. (Float.abs t1)) do
    let step = Step_control.propose ctrl ~remaining:(t1 -. !t) in
    let attempt () =
      let full = theta_step dae ~theta:0.5 ~t:!t ~h:step !x in
      let half = theta_step dae ~theta:0.5 ~t:!t ~h:(step /. 2.) !x in
      let fine = theta_step dae ~theta:0.5 ~t:(!t +. (step /. 2.)) ~h:(step /. 2.) half in
      (full, fine)
    in
    match attempt () with
    | exception Step_failure _ ->
      ignore (Step_control.failure_retry ctrl ~t:!t ~h_used:step ~reason:"newton")
    | full, fine ->
      (* trapezoidal is order 2: Richardson error of the fine solution *)
      let err =
        Step_control.error_norm control ~y:fine
          ~err:(Vec.init dae.Dae.dim (fun i -> (fine.(i) -. full.(i)) /. denom))
      in
      (match Step_control.decide ctrl ~t:!t ~h_used:step ~err with
       | Step_control.Reject _ -> Obs.Metrics.incr c_rejects
       | Step_control.Accept _ ->
         (* accept the extrapolated solution *)
         let accepted =
           Vec.init dae.Dae.dim (fun i -> fine.(i) +. ((fine.(i) -. full.(i)) /. denom))
         in
         x := accepted;
         Obs.Metrics.incr c_steps;
         t := !t +. step;
         times := !t :: !times;
         states := Array.copy accepted :: !states)
  done;
  { times = Array.of_list (List.rev !times); states = Array.of_list (List.rev !states) }

let component traj i = Array.map (fun s -> s.(i)) traj.states

let interpolate traj i t =
  let n = Array.length traj.times in
  if n = 0 then invalid_arg "Transient.interpolate: empty trajectory";
  if t <= traj.times.(0) then traj.states.(0).(i)
  else if t >= traj.times.(n - 1) then traj.states.(n - 1).(i)
  else begin
    (* binary search for the bracketing interval *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if traj.times.(mid) <= t then lo := mid else hi := mid
    done;
    let ta = traj.times.(!lo) and tb = traj.times.(!hi) in
    let xa = traj.states.(!lo).(i) and xb = traj.states.(!hi).(i) in
    if tb = ta then xa else xa +. ((xb -. xa) *. (t -. ta) /. (tb -. ta))
  end

let resample traj i ~times = Array.map (interpolate traj i) times

let final traj =
  let n = Array.length traj.states in
  if n = 0 then invalid_arg "Transient.final: empty trajectory";
  traj.states.(n - 1)

let steps traj = Int.max 0 (Array.length traj.times - 1)
