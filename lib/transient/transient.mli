(** Transient (time-domain initial-value) simulation of DAEs — the
    paper's baseline, against which the WaMPDE's speed and phase
    accuracy are compared (Figs. 9 and 12).

    Implicit one-step methods solve, per step of size [h],

    [(q(x1) - q(x0)) / h + theta f(t1, x1) + (1 - theta) f(t0, x0) = 0]

    with [theta = 1] (backward Euler) or [theta = 1/2] (trapezoidal,
    the circuit-simulation workhorse).  A fixed-leading-coefficient
    BDF2 and an adaptive trapezoidal driver with Richardson error
    control are also provided. *)

open Linalg

type method_ =
  | Backward_euler
  | Trapezoidal
  | Bdf2
  | Rk4
      (** classical explicit Runge–Kutta on [xdot = -C(x)^{-1} f];
          requires [dq/dx] invertible (no algebraic constraints) and a
          non-stiff step *)

type trajectory = {
  times : float array;
  states : Vec.t array;  (** [states.(i)] is the state at [times.(i)] *)
}

(** Machine-inspectable record of a failed implicit step: the full
    Newton report plus where in time the step was attempted.  Feeds
    the [Step_reject] telemetry event. *)
type step_failure = {
  t : float;  (** step start time *)
  h : float;  (** attempted step size *)
  residual_norm : float;
  iterations : int;
  reason : Nonlin.Newton.failure_reason option;
}

exception Step_failure of step_failure

(** Human-readable form of a failure reason. *)
val reason_string : Nonlin.Newton.failure_reason option -> string

(** [theta_step dae ~theta ~t ~h x] advances one implicit theta step
    from state [x] at time [t].  Raises {!Step_failure} (carrying the
    full Newton report) if Newton fails. *)
val theta_step : Dae.t -> theta:float -> t:float -> h:float -> Vec.t -> Vec.t

(** [integrate dae ~method_ ~t0 ~t1 ~h x0] integrates with fixed step
    [h] (the final step is shortened to land exactly on [t1]) and
    returns the full trajectory including the initial point.  BDF2
    starts with one trapezoidal step. *)
val integrate : Dae.t -> method_:method_ -> t0:float -> t1:float -> h:float -> Vec.t -> trajectory

(** [integrate_adaptive dae ~t0 ~t1 ?h0 ?h_min ?h_max ~tol x0] is
    trapezoidal integration with step-doubling (Richardson) local
    error control at relative tolerance [tol], driven by the shared
    {!Step_control} PI controller.  Newton failures halve the step;
    raises [Step_control.Underflow] when recovery or error control
    would push the step below [h_min]. *)
val integrate_adaptive :
  Dae.t ->
  t0:float ->
  t1:float ->
  ?h0:float ->
  ?h_min:float ->
  ?h_max:float ->
  tol:float ->
  Vec.t ->
  trajectory

(** [component traj i] extracts the time series of state variable [i]. *)
val component : trajectory -> int -> Vec.t

(** [interpolate traj i t] linearly interpolates component [i] at time
    [t] (clamped to the trajectory's time span). *)
val interpolate : trajectory -> int -> float -> float

(** [resample traj i ~times] evaluates {!interpolate} at many times. *)
val resample : trajectory -> int -> times:float array -> Vec.t

(** [final traj] is the last state.  Raises [Invalid_argument] on an
    empty trajectory. *)
val final : trajectory -> Vec.t

(** [steps traj] is the number of steps taken (points minus one). *)
val steps : trajectory -> int
