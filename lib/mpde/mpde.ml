open Linalg
module Obs = Wampde_obs

type system = { dae : Dae.t; p1 : float; b_fast : t1:float -> t2:float -> Vec.t }

type result = { t2 : Vec.t; slices : Vec.t array array; p1 : float }

exception Solve_failure of { stage : string; report : Nonlin.Newton.report }

let () =
  Printexc.register_printer (function
    | Solve_failure { stage; report } ->
      Some
        (Printf.sprintf "Mpde.Solve_failure: %s did not converge (residual %.3e after %d iterations)"
           stage report.Nonlin.Newton.residual_norm report.Nonlin.Newton.iterations)
    | _ -> None)

let c_steps = Obs.Metrics.counter "mpde.steps"

let newton_options =
  { Nonlin.Newton.default_options with max_iterations = 50; residual_tol = 1e-9 }

let unpack ~n1 ~n y = Array.init n1 (fun j -> Array.sub y (j * n) n)
let pack grid =
  let n1 = Array.length grid and n = Array.length grid.(0) in
  Vec.init (n1 * n) (fun idx -> grid.(idx / n).(idx mod n))

(* g_{j,i} = (1/p1) (D Q)_{j,i} + f(t2, X_j)_i + b_fast(t1_j, t2)_i *)
let eval_g sys ~n1 ~d ~t2 states =
  let dae = sys.dae in
  let n = dae.Dae.dim in
  let qs = Array.map dae.Dae.q states in
  let g = Array.make (n1 * n) 0. in
  for j = 0 to n1 - 1 do
    let t1j = sys.p1 *. float_of_int j /. float_of_int n1 in
    let fj = dae.Dae.f ~t:t2 states.(j) in
    let bj = sys.b_fast ~t1:t1j ~t2 in
    let dj = d.(j) in
    for i = 0 to n - 1 do
      let s = ref 0. in
      for k = 0 to n1 - 1 do
        s := !s +. (dj.(k) *. qs.(k).(i))
      done;
      g.((j * n) + i) <- (!s /. sys.p1) +. fj.(i) +. bj.(i)
    done
  done;
  g

let g_jacobian sys ~n1 ~d ~t2 states =
  let dae = sys.dae in
  let n = dae.Dae.dim in
  let cs = Array.map dae.Dae.dq states in
  let jac = Mat.zeros (n1 * n) (n1 * n) in
  for j = 0 to n1 - 1 do
    let gj = dae.Dae.df ~t:t2 states.(j) in
    for k = 0 to n1 - 1 do
      let djk = d.(j).(k) /. sys.p1 in
      if djk <> 0. || j = k then
        for i = 0 to n - 1 do
          for l = 0 to n - 1 do
            let v = (djk *. cs.(k).(i).(l)) +. (if j = k then gj.(i).(l) else 0.) in
            if v <> 0. then
              jac.((j * n) + i).((k * n) + l) <- jac.((j * n) + i).((k * n) + l) +. v
          done
        done
    done
  done;
  jac

(* Matrix-free Newton direction through the structured collocation
   operator; falls back to the dense Jacobian when GMRES stalls or the
   preconditioner degenerates. *)
let structured_linear_solve ~build_op ~dense_jacobian x r =
  let fallback () =
    Structured.fallback_to_dense ();
    Lu.solve (Lu.factor (dense_jacobian x)) r
  in
  match Structured.solve_op ~dft:Fourier.Fft.structured_dft (build_op x) r with
  | res when res.Gmres.converged -> res.Gmres.x
  | _ -> fallback ()
  | exception (Cx.Clu.Singular _ | Failure _) -> fallback ()

let periodic_initial ?(solver = Structured.auto) sys ~n1 ~guess =
  if n1 mod 2 = 0 then invalid_arg "Mpde.periodic_initial: n1 must be odd";
  Obs.Span.span
    ~attrs:[ ("n1", Obs.Span.Int n1); ("dim", Obs.Span.Int sys.dae.Dae.dim) ]
    "mpde.periodic_initial"
  @@ fun () ->
  Obs.Scope.with_scope "mpde" @@ fun () ->
  let n = sys.dae.Dae.dim in
  let d = Fourier.Series.diff_matrix n1 in
  let residual y = eval_g sys ~n1 ~d ~t2:0. (unpack ~n1 ~n y) in
  let jacobian y = g_jacobian sys ~n1 ~d ~t2:0. (unpack ~n1 ~n y) in
  let outcome =
    if Structured.use_krylov solver ~dim:(n1 * n) then begin
      (* J = (1/p1) (D (x) dq) + blockdiag(df) *)
      let build_op y =
        let st = unpack ~n1 ~n y in
        Structured.make_op ~alpha:(1. /. sys.p1) ~d
          ~c_blocks:(Array.map sys.dae.Dae.dq st)
          ~b_blocks:(Array.map (fun x -> sys.dae.Dae.df ~t:0. x) st)
      in
      Nonlin.Polyalg.solve ~options:newton_options ~label:"mpde.initial"
        ~linear_solve:(structured_linear_solve ~build_op ~dense_jacobian:jacobian)
        ~jacobian ~residual (pack guess)
    end
    else
      Nonlin.Polyalg.solve ~options:newton_options ~label:"mpde.initial" ~jacobian ~residual
        (pack guess)
  in
  let report = outcome.Nonlin.Polyalg.report in
  if not report.Nonlin.Newton.converged then
    raise (Solve_failure { stage = "Mpde.periodic_initial"; report });
  unpack ~n1 ~n report.Nonlin.Newton.x

let simulate ?(solver = Structured.auto) sys ~n1 ~t2_end ~h2 ~init =
  if n1 mod 2 = 0 then invalid_arg "Mpde.simulate: n1 must be odd";
  Obs.Span.span
    ~attrs:
      [
        ("n1", Obs.Span.Int n1);
        ("dim", Obs.Span.Int sys.dae.Dae.dim);
        ("t2", Obs.Span.Float t2_end);
      ]
    "mpde.simulate"
  @@ fun () ->
  Obs.Scope.with_scope "mpde" @@ fun () ->
  let dae = sys.dae in
  let n = dae.Dae.dim in
  if Array.length init <> n1 then invalid_arg "Mpde.simulate: init size <> n1";
  let d = Fourier.Series.diff_matrix n1 in
  let theta = 0.5 in
  let t2s = ref [ 0. ] and slices = ref [ Array.map Array.copy init ] in
  let t2 = ref 0. and states = ref init in
  let g = ref (eval_g sys ~n1 ~d ~t2:0. !states) in
  (* the march targets the fixed step [h2]; the controller only kicks
     in when Newton fails, halving the step and growing it back toward
     [h2] across subsequent accepted steps *)
  let ctrl =
    Step_control.create
      (Step_control.default_options ~h_min:(1e-9 *. h2) ~h_max:h2 ())
      ~h_init:h2
  in
  let escalated = ref false in
  while !t2 < t2_end -. (1e-9 *. t2_end) do
    let h = Step_control.propose ctrl ~remaining:(t2_end -. !t2) in
    let t2_new = !t2 +. h in
    let q0 = Array.map dae.Dae.q !states in
    let g0 = !g in
    let residual y =
      let st = unpack ~n1 ~n y in
      let gy = eval_g sys ~n1 ~d ~t2:t2_new st in
      let res = Array.make (n1 * n) 0. in
      for j = 0 to n1 - 1 do
        let qj = dae.Dae.q st.(j) in
        for i = 0 to n - 1 do
          let idx = (j * n) + i in
          res.(idx) <-
            qj.(i) -. q0.(j).(i) +. (h *. theta *. gy.(idx)) +. (h *. (1. -. theta) *. g0.(idx))
        done
      done;
      res
    in
    let jacobian y =
      let st = unpack ~n1 ~n y in
      let jg = g_jacobian sys ~n1 ~d ~t2:t2_new st in
      let cs = Array.map dae.Dae.dq st in
      let jac = Mat.zeros (n1 * n) (n1 * n) in
      for j = 0 to n1 - 1 do
        for i = 0 to n - 1 do
          let row = (j * n) + i in
          for k = 0 to n1 - 1 do
            for l = 0 to n - 1 do
              let col = (k * n) + l in
              let v = (h *. theta *. jg.(row).(col)) +. (if j = k then cs.(j).(i).(l) else 0.) in
              if v <> 0. then jac.(row).(col) <- jac.(row).(col) +. v
            done
          done
        done
      done;
      jac
    in
    let report =
      if (not !escalated) && Structured.use_krylov solver ~dim:(n1 * n) then begin
        (* J = (h theta / p1) (D (x) dq) + blockdiag(dq + h theta df) *)
        let build_op y =
          let st = unpack ~n1 ~n y in
          let cs = Array.map dae.Dae.dq st in
          let b_blocks =
            Array.init n1 (fun j ->
                let gj = dae.Dae.df ~t:t2_new st.(j) in
                Mat.init n n (fun i l -> cs.(j).(i).(l) +. (h *. theta *. gj.(i).(l))))
          in
          Structured.make_op ~alpha:(h *. theta /. sys.p1) ~d ~c_blocks:cs ~b_blocks
        in
        Nonlin.Newton.solve_with ~options:newton_options ~label:"mpde.step"
          ~linear_solve:(structured_linear_solve ~build_op ~dense_jacobian:jacobian)
          ~residual (pack !states)
      end
      else
        (* dense path (small systems, or after Krylov escalation): let
           the cascade rescue hard steps before the controller shrinks
           the step any further *)
        (Nonlin.Polyalg.solve ~options:newton_options ~label:"mpde.step"
           ~cascade:[ Nonlin.Polyalg.Damped; Nonlin.Polyalg.Trust_region ]
           ~jacobian ~residual (pack !states))
          .Nonlin.Polyalg.report
    in
    if not report.Nonlin.Newton.converged then begin
      ignore (Step_control.failure_retry ctrl ~t:!t2 ~h_used:h ~reason:"newton");
      if Step_control.should_escalate ctrl then escalated := true
    end
    else begin
      states := unpack ~n1 ~n report.Nonlin.Newton.x;
      g := eval_g sys ~n1 ~d ~t2:t2_new !states;
      Obs.Metrics.incr c_steps;
      Step_control.record_accept ctrl ~t:!t2 ~h_used:h;
      (if Obs.enabled () then begin
         let tol = (Obs.Health.thresholds ()).Obs.Health.spectral_tol in
         let r = Fourier.Series.grid_resolution ~tol !states in
         Obs.Health.note_spectrum ~t:t2_new ~tail:r.Fourier.Series.tail
           ~needed:r.Fourier.Series.needed ~available:r.Fourier.Series.available ()
       end);
      t2 := t2_new;
      t2s := t2_new :: !t2s;
      slices := Array.map Array.copy !states :: !slices
    end
  done;
  {
    t2 = Array.of_list (List.rev !t2s);
    slices = Array.of_list (List.rev !slices);
    p1 = sys.p1;
  }

let quasiperiodic ?cascade sys ~n1 ~n2 ~p2 ~guess =
  if n1 mod 2 = 0 || n2 mod 2 = 0 then invalid_arg "Mpde.quasiperiodic: n1, n2 must be odd";
  Obs.Span.span
    ~attrs:
      [
        ("n1", Obs.Span.Int n1);
        ("n2", Obs.Span.Int n2);
        ("dim", Obs.Span.Int sys.dae.Dae.dim);
      ]
    "mpde.quasiperiodic"
  @@ fun () ->
  Obs.Scope.with_scope "mpde" @@ fun () ->
  let dae = sys.dae in
  let n = dae.Dae.dim in
  if Array.length guess <> n2 then invalid_arg "Mpde.quasiperiodic: guess size <> n2";
  let d1 = Fourier.Series.diff_matrix n1 in
  let d2 = Fourier.Series.diff_matrix n2 in
  let block = n1 * n in
  let dim = n2 * block in
  let pack2 () =
    Vec.init dim (fun idx ->
        let m = idx / block and r = idx mod block in
        guess.(m).(r / n).(r mod n))
  in
  let unpack2 y =
    Array.init n2 (fun m -> Array.init n1 (fun j -> Array.sub y ((m * block) + (j * n)) n))
  in
  let residual y =
    let st = unpack2 y in
    let res = Array.make dim 0. in
    for m = 0 to n2 - 1 do
      let t2m = p2 *. float_of_int m /. float_of_int n2 in
      let gm = eval_g sys ~n1 ~d:d1 ~t2:t2m st.(m) in
      (* slow derivative: (1/p2) sum_p d2.(m).(p) q(X^p_j) *)
      let qs = Array.map (fun slice -> Array.map dae.Dae.q slice) st in
      for j = 0 to n1 - 1 do
        for i = 0 to n - 1 do
          let s = ref 0. in
          for p = 0 to n2 - 1 do
            s := !s +. (d2.(m).(p) *. qs.(p).(j).(i))
          done;
          res.((m * block) + (j * n) + i) <- gm.((j * n) + i) +. (!s /. p2)
        done
      done
    done;
    res
  in
  let outcome =
    Nonlin.Polyalg.solve
      ~options:{ newton_options with max_iterations = 80 }
      ?cascade ~label:"mpde.quasiperiodic" ~residual (pack2 ())
  in
  let report = outcome.Nonlin.Polyalg.report in
  if not report.Nonlin.Newton.converged then
    raise (Solve_failure { stage = "Mpde.quasiperiodic"; report });
  let st = unpack2 report.Nonlin.Newton.x in
  {
    t2 = Vec.init n2 (fun m -> p2 *. float_of_int m /. float_of_int n2);
    slices = st;
    p1 = sys.p1;
  }

let eval_bivariate res ~component ~t1 ~t2 =
  let m = Array.length res.t2 in
  let idx =
    if t2 <= res.t2.(0) then 0
    else if t2 >= res.t2.(m - 1) then m - 2
    else begin
      let lo = ref 0 and hi = ref (m - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if res.t2.(mid) <= t2 then lo := mid else hi := mid
      done;
      !lo
    end
  in
  let slice_values i = Array.map (fun s -> s.(component)) res.slices.(i) in
  let wa = Fourier.Series.interp (slice_values idx) ~period:res.p1 t1 in
  let wb = Fourier.Series.interp (slice_values (idx + 1)) ~period:res.p1 t1 in
  let ta = res.t2.(idx) and tb = res.t2.(idx + 1) in
  let frac = if tb = ta then 0. else Float.max 0. (Float.min 1. ((t2 -. ta) /. (tb -. ta))) in
  wa +. (frac *. (wb -. wa))

let eval_waveform res ~component t =
  eval_bivariate res ~component ~t1:(Float.rem t res.p1) ~t2:t
