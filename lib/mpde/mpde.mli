(** The plain (unwarped) MPDE of [BWLBG96, Roy97, Roy99] for {e
    non-autonomous} systems with two widely separated time scales —
    the method the WaMPDE generalizes, kept as a baseline.

    For [d/dt q(x) + f(t, x) = 0] with fast forcing of known period
    [p1] and slow dynamics, the MPDE reads

    [dq(xhat)/dt1 + dq(xhat)/dt2 + f_slow(t2, xhat) + b_fast(t1, t2) = 0]

    and univariate solutions are recovered along the diagonal
    [x(t) = xhat(t mod p1, t)].

    Because both axes are unwarped, the MPDE cannot represent FM
    compactly (paper Section 3, Figs. 4–5); the [fig5]/[mpdefm]
    benches quantify this failure against the warped form. *)

open Linalg

type system = {
  dae : Dae.t;  (** autonomous/slow part: [f]'s time argument is [t2] *)
  p1 : float;  (** fast forcing period *)
  b_fast : t1:float -> t2:float -> Vec.t;  (** fast forcing term *)
}

type result = {
  t2 : Vec.t;
  slices : Vec.t array array;  (** [slices.(m).(j)]: state at [(t1_j, t2_m)] *)
  p1 : float;
}

exception Solve_failure of { stage : string; report : Nonlin.Newton.report }
(** A steady-state solve ({!periodic_initial} or {!quasiperiodic})
    exhausted the whole globalization cascade; [report] is the closest
    attempt.  A printer is registered. *)

(** [simulate sys ~n1 ~t2_end ~h2 ~init] — envelope-following MPDE:
    collocation (odd [n1], spectral differentiation) along [t1],
    trapezoidal time-stepping along [t2] from the initial fast
    steady-state guess [init] (grid of [n1] states).  [solver] picks
    dense LU or matrix-free preconditioned GMRES for the collocation
    Newton systems (default [Structured.auto]).

    Newton failures no longer abort the run: the shared
    {!Step_control} policy halves the step, retries, switches the
    linear solver to dense LU after repeated stalls, and grows the
    step back toward [h2] once steps start converging again.  Raises
    [Step_control.Underflow] when recovery drives the step below
    [1e-9 * h2]. *)
val simulate :
  ?solver:Structured.strategy ->
  system ->
  n1:int ->
  t2_end:float ->
  h2:float ->
  init:Vec.t array ->
  result

(** [periodic_initial sys ~n1 ~guess] solves the fast-periodic steady
    state at frozen [t2 = 0] ([dq/dt2] dropped): the natural initial
    condition for {!simulate}.  Runs the {!Nonlin.Polyalg} cascade;
    raises {!Solve_failure} when it is exhausted. *)
val periodic_initial :
  ?solver:Structured.strategy -> system -> n1:int -> guess:Vec.t array -> Vec.t array

(** [quasiperiodic sys ~n1 ~n2 ~p2 ~guess] solves the biperiodic
    steady state on an [n1 x n2] grid (both odd), with slow period
    [p2]: the AM-quasiperiodic solution of Section 3.  [guess] is an
    [n2]-array of [n1]-arrays of states.  [cascade] overrides the
    {!Nonlin.Polyalg.default_cascade} (e.g. [[Damped]] to benchmark
    plain Newton); raises {!Solve_failure} when it is exhausted. *)
val quasiperiodic :
  ?cascade:Nonlin.Polyalg.strategy list ->
  system ->
  n1:int ->
  n2:int ->
  p2:float ->
  guess:Vec.t array array ->
  result

(** [eval_bivariate res ~component ~t1 ~t2] interpolates the stored
    bivariate grid (trigonometric in [t1], linear in [t2]). *)
val eval_bivariate : result -> component:int -> t1:float -> t2:float -> float

(** [eval_waveform res ~component t] recovers the univariate solution
    along the diagonal path [x(t) = xhat(t mod p1, t)]. *)
val eval_waveform : result -> component:int -> float -> float
