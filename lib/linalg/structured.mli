(** Structured operators for collocation-style Newton systems.

    The WaMPDE/HB collocation Jacobian has the form

    {[ J = alpha (D (x) C) + blockdiag(B_1 .. B_n1) ]}

    where [D] is the (circulant) [n1 x n1] differentiation matrix of the
    periodic fast-time grid, [C_k = dq(x_k)] and [B_j] collects the
    remaining per-point blocks (typically [dq + h theta df] or [df]).
    This module provides matrix-free products with that operator, an
    FFT-diagonalized averaged-Jacobian block preconditioner, and a
    bordered (Schur) treatment of the trailing oscillator-frequency
    column and phase-condition row, so preconditioned {!Gmres} replaces
    the dense O((n1 n)^3) LU factorization.

    Instrumented via [gmres.precond.builds], [gmres.precond.applies],
    [gmres.precond.block_factors] and [gmres.precond.fallbacks] in
    {!Wampde_obs.Metrics}.

    The per-block kernels (operator rows in {!apply_into}, the complex
    factorizations in {!spectral_blocks}, the paired transforms and
    wavenumber solves in {!precond_apply}) run on the {!Par.Pool}
    domain pool when [--jobs] exceeds 1.  Every parallel region uses a
    fixed chunk assignment with disjoint writes and no cross-chunk
    reductions, so results are bitwise identical for every job
    count. *)

(** How a caller should solve its collocation Newton systems. *)
type strategy =
  | Dense  (** always assemble + LU factor *)
  | Krylov  (** always matrix-free preconditioned GMRES *)
  | Auto of int  (** Krylov once the unknown count reaches the threshold *)

(** Default [Auto] threshold on the number of unknowns. *)
val default_threshold : int

(** [auto] is [Auto default_threshold]. *)
val auto : strategy

(** [use_krylov strategy ~dim] decides the path for a system of [dim]
    unknowns. *)
val use_krylov : strategy -> dim:int -> bool

(** Record a fallback from the Krylov path to dense LU (bumps the
    [gmres.precond.fallbacks] counter). *)
val fallback_to_dense : unit -> unit

(** {1 Matrix-free operator} *)

type op

(** [make_op ~alpha ~d ~c_blocks ~b_blocks] builds the operator
    [alpha (D (x) C) + blockdiag(B)].  [c_blocks] and [b_blocks] hold
    one [n x n] block per collocation point; [d] is [n1 x n1].  The
    block matrices are captured by reference, not copied. *)
val make_op : alpha:float -> d:Mat.t -> c_blocks:Mat.t array -> b_blocks:Mat.t array -> op

(** Number of unknowns [n1 * n] of the block part. *)
val dim : op -> int

(** [block_mul_into blocks ~src ~dst] applies a block-diagonal matrix:
    [dst_k = blocks_k src_k] for each length-[n] slice. *)
val block_mul_into : Mat.t array -> src:Vec.t -> dst:Vec.t -> unit

(** [apply_into op v out] writes [J v] into [out].  Only the first
    [dim op] entries of [v] and [out] are touched, so longer (bordered)
    vectors can be passed.  [out] must not alias [v]. *)
val apply_into : op -> Vec.t -> Vec.t -> unit

(** Allocating variant of {!apply_into}. *)
val apply : op -> Vec.t -> Vec.t

(** [apply_bordered_into op ~border_col ~border_row v out] applies the
    [(dim + 1)]-square bordered operator [[J b] [p 0]]. *)
val apply_bordered_into : op -> border_col:Vec.t -> border_row:Vec.t -> Vec.t -> Vec.t -> unit

(** Allocating variant of {!apply_bordered_into}. *)
val apply_bordered : op -> border_col:Vec.t -> border_row:Vec.t -> Vec.t -> Vec.t

(** Dense assembly of the block part; for tests and small fallbacks. *)
val to_dense : op -> Mat.t

(** {1 DFT plumbing}

    [linalg] sits below [fourier] in the library graph, so the fast
    transform is injected: callers pass [Fourier.Fft.fft]/[ifft] (the
    engineering convention, forward kernel [e^{-2 pi i jk/n}], inverse
    scaled by [1/n]).  {!naive_dft} is a matching O(n^2) fallback. *)

type dft = {
  fwd : Cx.Cvec.t -> Cx.Cvec.t;
  inv : Cx.Cvec.t -> Cx.Cvec.t;
  fwd_pair : (Vec.t -> Vec.t -> unit) option;
      (** Optional in-place transform of a re/im pair (same arithmetic
          as [fwd], no boxed complex allocation); the preconditioner's
          batched hot path.  Must be safe to call concurrently from
          pool worker domains.  [None] falls back to [fwd]. *)
  inv_pair : (Vec.t -> Vec.t -> unit) option;
}

val naive_dft : dft

(** {1 Averaged-Jacobian block preconditioner} *)

(** [spectral_blocks ~coeffs ~cbar ~bbar] factors one complex [n x n]
    block per entry of [coeffs]: [M_l = coeffs_l cbar + bbar].  This is
    the shared kernel behind the collocation preconditioner (where
    [coeffs_l = alpha lambda_l] for circulant eigenvalues [lambda]) and
    the harmonic-balance preconditioners (where [coeffs_i = j omega_i]).
    May raise [Cx.Clu.Singular]. *)
val spectral_blocks : coeffs:Cx.c array -> cbar:Mat.t -> bbar:Mat.t -> Cx.Clu.t array

type precond

(** [make_precond ?dft op] averages the [C]/[B] blocks over the grid,
    diagonalizes the circulant [D] with the DFT and factors the [n1]
    resulting complex [n x n] blocks.  May raise [Cx.Clu.Singular]. *)
val make_precond : ?dft:dft -> op -> precond

(** [precond_apply pc v] applies the approximate inverse.  Only the
    first [dim] entries of [v] are read; the result is freshly
    allocated (safe to hand to {!Gmres}). *)
val precond_apply : precond -> Vec.t -> Vec.t

(** {1 Cross-solve preconditioner cache}

    An LRU of factored block preconditioners shared across solves and
    jobs, keyed by caller-built strings (circuit id, [n1] and
    {!log_bucket}ed operator scalars).  A cached [precond] only changes
    GMRES iteration counts, never solutions: operator products stay
    fresh and the outer tolerance is unchanged.  Disabled (capacity 0)
    by default; the serve daemon enables it so repeated-circuit job
    batches amortize the [n1] complex block factorizations.
    Instrumented as [cache.precond.hits] / [.misses] / [.evictions]
    counters and the [cache.precond.entries] gauge.  Not synchronized:
    factor and look up from one domain only. *)

(** [log_bucket x] buckets a positive scalar on a ~1% relative
    log-scale grid (stable across runs); [min_int] for zero or
    non-finite input. *)
val log_bucket : float -> int

module Precond_cache : sig
  (** [set_capacity n] bounds the cache to [n] entries ([0] disables
      and clears it; evicts down when shrinking). *)
  val set_capacity : int -> unit

  val enabled : unit -> bool
  val entries : unit -> int
  val clear : unit -> unit
end

(** [make_precond_cached ~key op] is {!make_precond} through the
    {!Precond_cache}: a hit returns the cached factorization without
    touching [op]'s blocks; a miss factors and stores.  With the cache
    disabled this is exactly {!make_precond}.  The caller's [key] must
    determine the operator shape ([n1], block size) — two ops with the
    same key must be interchangeable as preconditioners. *)
val make_precond_cached : ?dft:dft -> key:string -> op -> precond

type bordered

exception Bordered_singular of float
(** The border Schur complement degenerated (carries the offending
    scalar, possibly NaN).  Callers can retry with [?gmin]. *)

(** [make_bordered pc ~border_col ~border_row] extends the block
    preconditioner to the bordered system via the exact Schur
    complement of the (approximate) block inverse.  Raises
    {!Bordered_singular} if the border Schur complement degenerates;
    [?gmin] (default [0.]) shifts the Schur scalar away from zero
    (gmin-style regularization) so a nearly-degenerate border still
    yields a usable — if weaker — preconditioner. *)
val make_bordered :
  ?gmin:float -> precond -> border_col:Vec.t -> border_row:Vec.t -> bordered

(** [bordered_apply bp v] applies the bordered approximate inverse to a
    length-[dim + 1] vector; the result is freshly allocated. *)
val bordered_apply : bordered -> Vec.t -> Vec.t

(** {1 Packaged Newton-direction solves} *)

(** [solve_op op b] runs preconditioned GMRES on the block system.
    Check [converged] on the result and fall back to dense LU (calling
    {!fallback_to_dense}) if it failed. *)
val solve_op :
  ?dft:dft -> ?restart:int -> ?max_iter:int -> ?tol:float -> op -> Vec.t -> Gmres.result

(** [solve_bordered op ~border_col ~border_row b] runs preconditioned
    GMRES on the bordered system ([b] has length [dim + 1]). *)
val solve_bordered :
  ?dft:dft ->
  ?restart:int ->
  ?max_iter:int ->
  ?tol:float ->
  op ->
  border_col:Vec.t ->
  border_row:Vec.t ->
  Vec.t ->
  Gmres.result
