(** Complex scalars, vectors and dense matrices, plus a complex LU solve.

    Builds on [Stdlib.Complex].  Used by the harmonic-balance and
    Fourier machinery; the heavy WaMPDE collocation path is real-valued
    and uses {!Lu} instead. *)

type c = Complex.t

(** [cx re im] builds a complex number. *)
val cx : float -> float -> c

(** [re x] / [im x] are the real / imaginary parts. *)
val re : c -> float

val im : c -> float

(** [polar r theta] is [r e^{i theta}]. *)
val polar : float -> float -> c

(** [cis theta] is [e^{i theta}]. *)
val cis : float -> c

(** [scale a z] multiplies by a real scalar. *)
val scale : float -> c -> c

(** [approx_equal ?tol a b] is closeness in modulus of the difference. *)
val approx_equal : ?tol:float -> c -> c -> bool

module Cvec : sig
  type t = c array

  val make : int -> c -> t
  val zeros : int -> t
  val init : int -> (int -> c) -> t
  val copy : t -> t

  (** [of_real v] embeds a real vector. *)
  val of_real : Vec.t -> t

  (** [real_part v] / [imag_part v] extract component vectors. *)
  val real_part : t -> Vec.t

  val imag_part : t -> Vec.t
  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : c -> t -> t

  (** [dot u v] is the Hermitian inner product [sum conj(u_i) v_i]. *)
  val dot : t -> t -> c

  val norm2 : t -> float
  val norm_inf : t -> float
  val approx_equal : ?tol:float -> t -> t -> bool
end

module Cmat : sig
  type t = c array array

  val make : int -> int -> c -> t
  val zeros : int -> int -> t
  val init : int -> int -> (int -> int -> c) -> t
  val identity : int -> t
  val rows : t -> int
  val cols : t -> int
  val copy : t -> t
  val mul : t -> t -> t
  val matvec : t -> Cvec.t -> Cvec.t
end

module Clu : sig
  type t

  exception Singular of int

  (** [factor a] is complex LU with partial (modulus) pivoting. *)
  val factor : Cmat.t -> t

  (** Telemetry-free {!factor} for pool worker domains (the metric
      cells in {!Wampde_obs} are not synchronized across domains).
      Callers account the work on the calling domain via
      {!note_factor}, keeping counts identical for every job count. *)
  val factor_quiet : Cmat.t -> t

  (** Record the telemetry of one [n x n] factorization
      ([lu.factor_complex], [lu.dim_complex], the [Lu_factor] event)
      without performing it. *)
  val note_factor : n:int -> unit

  val solve : t -> Cvec.t -> Cvec.t
  val solve_dense : Cmat.t -> Cvec.t -> Cvec.t
end
