module Obs = Wampde_obs

type t = { lu : float array array; perm : int array; sign : float }

exception Singular of int

let c_factor = Obs.Metrics.counter "lu.factor"
let h_dim = Obs.Metrics.histogram "lu.dim"
let c_solve = Obs.Metrics.counter "lu.solve"

(* Doolittle factorization with partial pivoting; [lu] stores L (unit
   diagonal, below) and U (on and above the diagonal). *)
let factor a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Lu.factor: matrix not square";
  Obs.Metrics.incr c_factor;
  Obs.Metrics.observe h_dim (float_of_int n);
  if Obs.Events.active () then Obs.Events.emit (Obs.Events.Lu_factor { n });
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs lu.(i).(k) > Float.abs lu.(!pivot).(k) then pivot := i
    done;
    if !pivot <> k then begin
      let tmp = lu.(k) in
      lu.(k) <- lu.(!pivot);
      lu.(!pivot) <- tmp;
      let tp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tp;
      sign := -. !sign
    end;
    let pkk = lu.(k).(k) in
    if pkk = 0. then raise (Singular k);
    let rk = lu.(k) in
    for i = k + 1 to n - 1 do
      let ri = lu.(i) in
      let m = Array.unsafe_get ri k /. pkk in
      Array.unsafe_set ri k m;
      if m <> 0. then
        for j = k + 1 to n - 1 do
          Array.unsafe_set ri j
            (Array.unsafe_get ri j -. (m *. Array.unsafe_get rk j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let dim { lu; _ } = Array.length lu

let solve_inplace { lu; perm; _ } b =
  let n = Array.length lu in
  if Array.length b <> n then invalid_arg "Lu.solve: dimension mismatch";
  Obs.Metrics.incr c_solve;
  (* apply permutation *)
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* forward substitution, L has unit diagonal *)
  for i = 1 to n - 1 do
    let row = lu.(i) in
    let s = ref (Array.unsafe_get x i) in
    for j = 0 to i - 1 do
      s := !s -. (Array.unsafe_get row j *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i !s
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let row = lu.(i) in
    let s = ref (Array.unsafe_get x i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Array.unsafe_get row j *. Array.unsafe_get x j)
    done;
    Array.unsafe_set x i (!s /. Array.unsafe_get row i)
  done;
  Array.blit x 0 b 0 n

let solve lu b =
  let x = Array.copy b in
  solve_inplace lu x;
  x

let solve_matrix lu b =
  let n = dim lu in
  if Mat.rows b <> n then invalid_arg "Lu.solve_matrix: dimension mismatch";
  let cols = Mat.cols b in
  let x = Mat.zeros n cols in
  let col = Array.make n 0. in
  for j = 0 to cols - 1 do
    for i = 0 to n - 1 do
      col.(i) <- b.(i).(j)
    done;
    solve_inplace lu col;
    for i = 0 to n - 1 do
      x.(i).(j) <- col.(i)
    done
  done;
  x

let det { lu; sign; _ } =
  let n = Array.length lu in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. lu.(i).(i)
  done;
  !d

let inverse lu = solve_matrix lu (Mat.identity (dim lu))

let solve_dense a b = solve (factor a) b

(* Hager-style one-sided estimate: ||A||_inf * max ||A^-1 e_i||_inf over a
   few probe vectors.  A cheap lower bound, good enough for diagnostics. *)
let condition_estimate a =
  let n = Mat.rows a in
  let f = factor a in
  let norm_a = Mat.norm_inf a in
  let best = ref 0. in
  let probes = Int.min n 5 in
  for p = 0 to probes - 1 do
    let i = p * Int.max 1 (n / Int.max 1 probes) in
    let e = Array.make n 0. in
    e.(Int.min i (n - 1)) <- 1.;
    solve_inplace f e;
    best := Float.max !best (Vec.norm_inf e)
  done;
  (* also probe the all-ones vector, which often excites the worst mode *)
  let ones = Array.make n 1. in
  solve_inplace f ones;
  best := Float.max !best (Vec.norm_inf ones /. float_of_int n);
  norm_a *. !best
