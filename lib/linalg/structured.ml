module Obs = Wampde_obs

let c_builds = Obs.Metrics.counter "gmres.precond.builds"
let c_applies = Obs.Metrics.counter "gmres.precond.applies"
let c_block_factors = Obs.Metrics.counter "gmres.precond.block_factors"
let c_fallbacks = Obs.Metrics.counter "gmres.precond.fallbacks"

let fallback_to_dense () = Obs.Metrics.incr c_fallbacks

type strategy = Dense | Krylov | Auto of int

let default_threshold = 160
let auto = Auto default_threshold

let use_krylov strategy ~dim =
  match strategy with Dense -> false | Krylov -> true | Auto threshold -> dim >= threshold

(* ------------------------------------------------------------------ *)
(* Structured collocation operator                                     *)
(* ------------------------------------------------------------------ *)

type op = {
  n : int;
  n1 : int;
  alpha : float;
  d : Mat.t;
  c_blocks : Mat.t array;
  b_blocks : Mat.t array;
  cu : Vec.t;  (* scratch: blockdiag(C) v, reused across applies *)
}

let make_op ~alpha ~d ~c_blocks ~b_blocks =
  let n1 = Array.length c_blocks in
  if n1 = 0 || Array.length b_blocks <> n1 then
    invalid_arg "Structured.make_op: need one C and one B block per collocation point";
  let n = Mat.rows c_blocks.(0) in
  if Mat.rows d <> n1 || Mat.cols d <> n1 then
    invalid_arg "Structured.make_op: differentiation matrix size mismatch";
  { n; n1; alpha; d; c_blocks; b_blocks; cu = Array.make (n1 * n) 0. }

let dim op = op.n1 * op.n

let block_mul_into blocks ~src ~dst =
  let n1 = Array.length blocks in
  let n = Mat.rows blocks.(0) in
  for k = 0 to n1 - 1 do
    let bk = blocks.(k) in
    let base = k * n in
    for i = 0 to n - 1 do
      let row = bk.(i) in
      let s = ref 0. in
      for l = 0 to n - 1 do
        s := !s +. (row.(l) *. src.(base + l))
      done;
      dst.(base + i) <- !s
    done
  done

(* out_j = alpha * sum_k d_jk (C_k v_k) + B_j v_j; only the first
   [n1 * n] entries of [v] and [out] are touched, so bordered vectors
   can be passed directly.  The output rows are independent (each
   chunk writes a disjoint slice of [out] and only reads [v]/[cu]), so
   the block rows run on the pool; per-row sums stay sequential, so
   the result does not depend on the job count. *)
let apply_into op v out =
  let n = op.n and n1 = op.n1 in
  block_mul_into op.c_blocks ~src:v ~dst:op.cu;
  Par.Pool.parallel_for n1 (fun j ->
      let bj = op.b_blocks.(j) in
      let dj = op.d.(j) in
      let base = j * n in
      for i = 0 to n - 1 do
        let s = ref 0. in
        for k = 0 to n1 - 1 do
          s := !s +. (dj.(k) *. op.cu.((k * n) + i))
        done;
        let row = bj.(i) in
        let t = ref (op.alpha *. !s) in
        for l = 0 to n - 1 do
          t := !t +. (row.(l) *. v.(base + l))
        done;
        out.(base + i) <- !t
      done)

let apply op v =
  let out = Array.make (dim op) 0. in
  apply_into op v out;
  out

let apply_bordered_into op ~border_col ~border_row v out =
  apply_into op v out;
  let nd = dim op in
  let zeta = v.(nd) in
  if zeta <> 0. then
    for i = 0 to nd - 1 do
      out.(i) <- out.(i) +. (zeta *. border_col.(i))
    done;
  let s = ref 0. in
  for i = 0 to nd - 1 do
    s := !s +. (border_row.(i) *. v.(i))
  done;
  out.(nd) <- !s

let apply_bordered op ~border_col ~border_row v =
  let out = Array.make (dim op + 1) 0. in
  apply_bordered_into op ~border_col ~border_row v out;
  out

(* Dense assembly of the block part, for tests and small fallbacks. *)
let to_dense op =
  let n = op.n and n1 = op.n1 in
  let dim = n1 * n in
  let jac = Mat.zeros dim dim in
  for j = 0 to n1 - 1 do
    for k = 0 to n1 - 1 do
      let scale = op.alpha *. op.d.(j).(k) in
      let ck = op.c_blocks.(k) in
      for i = 0 to n - 1 do
        for l = 0 to n - 1 do
          jac.((j * n) + i).((k * n) + l) <- scale *. ck.(i).(l)
        done
      done
    done;
    let bj = op.b_blocks.(j) in
    for i = 0 to n - 1 do
      for l = 0 to n - 1 do
        jac.((j * n) + i).((j * n) + l) <- jac.((j * n) + i).((j * n) + l) +. bj.(i).(l)
      done
    done
  done;
  jac

(* ------------------------------------------------------------------ *)
(* Discrete Fourier transform plumbing                                 *)
(* ------------------------------------------------------------------ *)

type dft = {
  fwd : Cx.Cvec.t -> Cx.Cvec.t;
  inv : Cx.Cvec.t -> Cx.Cvec.t;
  fwd_pair : (Vec.t -> Vec.t -> unit) option;
  inv_pair : (Vec.t -> Vec.t -> unit) option;
}

(* O(n^2) reference transform in the engineering convention
   (forward kernel e^{-2 pi i j k / n}, inverse divides by n): matches
   Fourier.Fft, which callers above the linalg layer should inject. *)
let naive_dft =
  let transform sign scale x =
    let n = Array.length x in
    let s = if scale then 1. /. float_of_int n else 1. in
    Array.init n (fun k ->
        let acc = ref Complex.zero in
        for j = 0 to n - 1 do
          let theta = sign *. 2. *. Float.pi *. float_of_int (j * k) /. float_of_int n in
          acc := Complex.add !acc (Complex.mul x.(j) (Cx.cis theta))
        done;
        Cx.scale s !acc)
  in
  { fwd = transform (-1.) false; inv = transform 1. true; fwd_pair = None; inv_pair = None }

(* In-place pair views of a [dft]; the boxing fallback keeps the naive
   transform (and any caller-supplied dft without pair kernels)
   working, at the old allocation cost. *)
let fwd_pair_of dft =
  match dft.fwd_pair with
  | Some f -> f
  | None ->
      fun re im ->
        let z = dft.fwd (Array.init (Array.length re) (fun k -> Cx.cx re.(k) im.(k))) in
        for k = 0 to Array.length re - 1 do
          re.(k) <- Cx.re z.(k);
          im.(k) <- Cx.im z.(k)
        done

let inv_pair_of dft =
  match dft.inv_pair with
  | Some f -> f
  | None ->
      fun re im ->
        let z = dft.inv (Array.init (Array.length re) (fun k -> Cx.cx re.(k) im.(k))) in
        for k = 0 to Array.length re - 1 do
          re.(k) <- Cx.re z.(k);
          im.(k) <- Cx.im z.(k)
        done

(* ------------------------------------------------------------------ *)
(* Averaged-Jacobian block preconditioner                              *)
(* ------------------------------------------------------------------ *)

(* Factor one small complex block per wavenumber/harmonic:
   M_l = coeffs_l * cbar + bbar.  Blocks are independent, so they
   factor in parallel (telemetry hoisted to the calling domain — the
   Obs metric cells are not synchronized — which also keeps the counts
   identical for every job count).  A [Cx.Clu.Singular] raised by any
   block re-surfaces on the calling domain after the pool barrier. *)
let spectral_blocks ~coeffs ~cbar ~bbar =
  let n = Mat.rows cbar in
  let nb = Array.length coeffs in
  for _ = 1 to nb do
    Obs.Metrics.incr c_block_factors;
    Cx.Clu.note_factor ~n
  done;
  let out = Array.make nb None in
  Par.Pool.parallel_for nb (fun l ->
      let a = coeffs.(l) in
      out.(l) <-
        Some
          (Cx.Clu.factor_quiet
             (Cx.Cmat.init n n (fun i j ->
                  Complex.add (Complex.mul a (Cx.cx cbar.(i).(j) 0.)) (Cx.cx bbar.(i).(j) 0.)))));
  Array.map (function Some f -> f | None -> assert false) out

(* Per-worker apply scratch: one full-spectrum re/im pair for the
   transforms, one wavenumber slice for the block solves. *)
type pc_ws = { w_re : Vec.t; w_im : Vec.t; w_rhs : Cx.Cvec.t }

type precond = {
  pn : int;
  pn1 : int;
  half : int;  (* n1 / 2: wavenumbers 0..half are represented explicitly *)
  blocks : Cx.Clu.t array;  (* factored M_l for l = 0..half only *)
  transform : dft;
  hat_re : Vec.t array;  (* lower-half spectra, n rows of length half+1 *)
  hat_im : Vec.t array;
  mutable ws : pc_ws array;  (* per-worker workspaces, grown on demand *)
}

let ensure_ws pc k =
  if Array.length pc.ws < k then begin
    let old = pc.ws in
    pc.ws <-
      Array.init k (fun w ->
          if w < Array.length old then old.(w)
          else
            {
              w_re = Array.make pc.pn1 0.;
              w_im = Array.make pc.pn1 0.;
              w_rhs = Cx.Cvec.zeros pc.pn;
            })
  end;
  pc.ws

(* The circulant differentiation matrix D (spectral or periodic FD)
   diagonalizes under the DFT across the block index: with c the first
   column of D, its eigenvalue at wavenumber l is fwd(c)_l.  Averaging
   the dq/df blocks over the grid turns the operator into
   blockdiag_l (alpha lambda_l Cbar + Bbar) in Fourier space. *)
let make_precond ?(dft = naive_dft) op =
  Obs.Metrics.incr c_builds;
  let n = op.n and n1 = op.n1 in
  let inv_n1 = 1. /. float_of_int n1 in
  let cbar = Mat.zeros n n and bbar = Mat.zeros n n in
  for k = 0 to n1 - 1 do
    let ck = op.c_blocks.(k) and bk = op.b_blocks.(k) in
    for i = 0 to n - 1 do
      for l = 0 to n - 1 do
        cbar.(i).(l) <- cbar.(i).(l) +. (inv_n1 *. ck.(i).(l));
        bbar.(i).(l) <- bbar.(i).(l) +. (inv_n1 *. bk.(i).(l))
      done
    done
  done;
  let col0 = Cx.Cvec.init n1 (fun m -> Cx.cx op.d.(m).(0) 0.) in
  let lambda = dft.fwd col0 in
  (* The preconditioner only ever sees real vectors, and D is a real
     circulant, so lambda_{n1-l} = conj lambda_l and M_{n1-l} = conj M_l:
     only the lower half-spectrum blocks need factoring, and conjugate
     symmetry supplies the rest. *)
  let half = n1 / 2 in
  let coeffs = Array.init (half + 1) (fun l -> Cx.scale op.alpha lambda.(l)) in
  {
    pn = n;
    pn1 = n1;
    half;
    blocks = spectral_blocks ~coeffs ~cbar ~bbar;
    transform = dft;
    hat_re = Array.init n (fun _ -> Array.make (half + 1) 0.);
    hat_im = Array.init n (fun _ -> Array.make (half + 1) 0.);
    ws = [||];
  }

(* Apply M^{-1}: component-wise DFT across the blocks, one small
   complex solve per wavenumber, inverse DFT.  Only the first
   [n1 * n] entries of [v] are read.  The input is real, so the
   per-component spectra are conjugate-symmetric: components are
   transformed two-per-complex-FFT, only wavenumbers 0..n1/2 are
   solved, and the inverse transforms are paired the same way. *)
let precond_apply pc v =
  Obs.Metrics.incr c_applies;
  let n = pc.pn and n1 = pc.pn1 and half = pc.half in
  let fwd_pair = fwd_pair_of pc.transform and inv_pair = inv_pair_of pc.transform in
  let npairs = (n + 1) / 2 in
  let ws =
    ensure_ws pc
      (max (Par.Pool.chunk_count npairs) (Par.Pool.chunk_count (half + 1)))
  in
  (* Each parallel stage writes disjoint slots and performs no
     cross-chunk reduction, so the result is bitwise identical for
     every job count. *)
  Par.Pool.parallel_chunks npairs (fun ~worker ~lo ~hi ->
      let w = ws.(worker) in
      for p = lo to hi - 1 do
        let ia = 2 * p in
        if ia + 1 < n then begin
          (* components ia and ia+1 ride as re/im of one complex series *)
          for k = 0 to n1 - 1 do
            w.w_re.(k) <- v.((k * n) + ia);
            w.w_im.(k) <- v.((k * n) + ia + 1)
          done;
          fwd_pair w.w_re w.w_im;
          let ha_re = pc.hat_re.(ia) and ha_im = pc.hat_im.(ia) in
          let hb_re = pc.hat_re.(ia + 1) and hb_im = pc.hat_im.(ia + 1) in
          for l = 0 to half do
            let m = (n1 - l) mod n1 in
            let zlr = w.w_re.(l) and zli = w.w_im.(l) in
            let zmr = w.w_re.(m) and zmi = w.w_im.(m) in
            ha_re.(l) <- 0.5 *. (zlr +. zmr);
            ha_im.(l) <- 0.5 *. (zli -. zmi);
            hb_re.(l) <- 0.5 *. (zli +. zmi);
            hb_im.(l) <- 0.5 *. (zmr -. zlr)
          done
        end
        else begin
          for k = 0 to n1 - 1 do
            w.w_re.(k) <- v.((k * n) + ia);
            w.w_im.(k) <- 0.
          done;
          fwd_pair w.w_re w.w_im;
          let ha_re = pc.hat_re.(ia) and ha_im = pc.hat_im.(ia) in
          for l = 0 to half do
            ha_re.(l) <- w.w_re.(l);
            ha_im.(l) <- w.w_im.(l)
          done
        end
      done);
  Par.Pool.parallel_chunks (half + 1) (fun ~worker ~lo ~hi ->
      let w = ws.(worker) in
      for l = lo to hi - 1 do
        for i = 0 to n - 1 do
          w.w_rhs.(i) <- Cx.cx pc.hat_re.(i).(l) pc.hat_im.(i).(l)
        done;
        let z = Cx.Clu.solve pc.blocks.(l) w.w_rhs in
        for i = 0 to n - 1 do
          pc.hat_re.(i).(l) <- Cx.re z.(i);
          pc.hat_im.(i).(l) <- Cx.im z.(i)
        done
      done);
  let out = Array.make (n1 * n) 0. in
  Par.Pool.parallel_chunks npairs (fun ~worker ~lo ~hi ->
      let w = ws.(worker) in
      for p = lo to hi - 1 do
        let ia = 2 * p in
        if ia + 1 < n then begin
          let ha_re = pc.hat_re.(ia) and ha_im = pc.hat_im.(ia) in
          let hb_re = pc.hat_re.(ia + 1) and hb_im = pc.hat_im.(ia + 1) in
          for l = 0 to half do
            w.w_re.(l) <- ha_re.(l) -. hb_im.(l);
            w.w_im.(l) <- ha_im.(l) +. hb_re.(l)
          done;
          for l = half + 1 to n1 - 1 do
            let m = n1 - l in
            w.w_re.(l) <- ha_re.(m) +. hb_im.(m);
            w.w_im.(l) <- hb_re.(m) -. ha_im.(m)
          done;
          inv_pair w.w_re w.w_im;
          for k = 0 to n1 - 1 do
            out.((k * n) + ia) <- w.w_re.(k);
            out.((k * n) + ia + 1) <- w.w_im.(k)
          done
        end
        else begin
          let ha_re = pc.hat_re.(ia) and ha_im = pc.hat_im.(ia) in
          for l = 0 to half do
            w.w_re.(l) <- ha_re.(l);
            w.w_im.(l) <- ha_im.(l)
          done;
          for l = half + 1 to n1 - 1 do
            w.w_re.(l) <- ha_re.(n1 - l);
            w.w_im.(l) <- -.ha_im.(n1 - l)
          done;
          inv_pair w.w_re w.w_im;
          for k = 0 to n1 - 1 do
            out.((k * n) + ia) <- w.w_re.(k)
          done
        end
      done);
  out

(* ------------------------------------------------------------------ *)
(* Bordered (Schur) preconditioner for the omega column + phase row    *)
(* ------------------------------------------------------------------ *)

exception Bordered_singular of float

type bordered = { base : precond; brow : Vec.t; z2 : Vec.t; pz2 : float }

let dot_prefix a b n =
  let s = ref 0. in
  for i = 0 to n - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let make_bordered ?(gmin = 0.) pc ~border_col ~border_row =
  let nd = pc.pn * pc.pn1 in
  let z2 = precond_apply pc border_col in
  let pz2 = dot_prefix border_row z2 nd in
  if not (Float.is_finite pz2) then raise (Bordered_singular pz2);
  (* gmin regularization: shift the Schur scalar away from zero so the
     bordered inverse stays bounded even when the phase row is (nearly)
     orthogonal to the preconditioned omega column *)
  let pz2 = if gmin > 0. then pz2 +. Float.copy_sign gmin pz2 else pz2 in
  if Float.abs pz2 < 1e-300 then raise (Bordered_singular pz2);
  { base = pc; brow = border_row; z2; pz2 }

(* Exact inverse of [[M b] [p 0]] given M^{-1}: z = M^{-1} r - zeta z2
   with z2 = M^{-1} b and zeta = (p . M^{-1} r - rho) / (p . z2). *)
let bordered_apply bp v =
  let nd = bp.base.pn * bp.base.pn1 in
  let z1 = precond_apply bp.base v in
  let rho = v.(nd) in
  let zeta = (dot_prefix bp.brow z1 nd -. rho) /. bp.pz2 in
  let out = Array.make (nd + 1) 0. in
  for i = 0 to nd - 1 do
    out.(i) <- z1.(i) -. (zeta *. bp.z2.(i))
  done;
  out.(nd) <- zeta;
  out

(* ------------------------------------------------------------------ *)
(* Cross-solve preconditioner cache                                    *)
(* ------------------------------------------------------------------ *)

(* ~1% relative log-scale buckets for cache keys: two operator scalars
   (omega, h2 theta) land in the same bucket iff they differ by less
   than about one percent — close enough that one factored
   preconditioner serves both. *)
let log_bucket x =
  if not (Float.is_finite x) || x = 0. then min_int
  else int_of_float (Float.round (100. *. Float.log (Float.abs x)))

(* LRU of factored block preconditioners, shared across solves and
   jobs.  A [precond] is self-contained after [make_precond] (the
   spectral blocks are factored copies; [hat_re]/[hat_im]/[ws] are
   per-apply scratch), so reusing one across Newton iterates, macro
   steps and whole jobs only changes GMRES iteration counts, never the
   solution: the operator products stay fresh and the outer tolerance
   is unchanged.  Disabled (capacity 0) by default — the serve daemon
   turns it on so repeated-circuit job batches amortize the n1 complex
   block factorizations.  Not synchronized: callers factor and look up
   on one domain (pool workers only ever run inside an apply). *)
module Precond_cache = struct
  let c_hits = Obs.Metrics.counter "cache.precond.hits"
  let c_misses = Obs.Metrics.counter "cache.precond.misses"
  let c_evictions = Obs.Metrics.counter "cache.precond.evictions"
  let g_entries = Obs.Metrics.gauge "cache.precond.entries"

  type entry = { pc : precond; mutable stamp : int }

  let capacity = ref 0
  let clock = ref 0
  let table : (string, entry) Hashtbl.t = Hashtbl.create 64
  let note_entries () = Obs.Metrics.set g_entries (float_of_int (Hashtbl.length table))

  let clear () =
    Hashtbl.reset table;
    note_entries ()

  let evict_oldest () =
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.stamp -> acc
          | _ -> Some (key, e.stamp))
        table None
    in
    match victim with
    | Some (key, _) ->
      Hashtbl.remove table key;
      Obs.Metrics.incr c_evictions;
      note_entries ()
    | None -> ()

  let set_capacity n =
    capacity := Int.max 0 n;
    if !capacity = 0 then clear ()
    else
      while Hashtbl.length table > !capacity do
        evict_oldest ()
      done

  let enabled () = !capacity > 0
  let entries () = Hashtbl.length table

  let find key =
    match Hashtbl.find_opt table key with
    | Some e ->
      incr clock;
      e.stamp <- !clock;
      Obs.Metrics.incr c_hits;
      Some e.pc
    | None ->
      Obs.Metrics.incr c_misses;
      None

  let store key pc =
    if !capacity > 0 then begin
      while Hashtbl.length table >= !capacity do
        evict_oldest ()
      done;
      incr clock;
      Hashtbl.replace table key { pc; stamp = !clock };
      note_entries ()
    end
end

let make_precond_cached ?dft ~key op =
  if not (Precond_cache.enabled ()) then make_precond ?dft op
  else
    match Precond_cache.find key with
    | Some pc -> pc
    | None ->
      let pc = make_precond ?dft op in
      Precond_cache.store key pc;
      pc

(* ------------------------------------------------------------------ *)
(* Packaged Newton-direction solves                                    *)
(* ------------------------------------------------------------------ *)

let solve_op ?dft ?(restart = 80) ?max_iter ?(tol = 1e-10) op b =
  let pc = make_precond ?dft op in
  let out = Array.make (dim op) 0. in
  Gmres.solve
    ~matvec:(fun v ->
      apply_into op v out;
      Array.copy out)
    ~m_inv:(precond_apply pc) ~restart ?max_iter ~tol b

let solve_bordered ?dft ?(restart = 80) ?max_iter ?(tol = 1e-10) op ~border_col ~border_row b =
  let pc = make_precond ?dft op in
  let bp = make_bordered pc ~border_col ~border_row in
  let nd = dim op in
  let out = Array.make (nd + 1) 0. in
  Gmres.solve
    ~matvec:(fun v ->
      apply_bordered_into op ~border_col ~border_row v out;
      Array.copy out)
    ~m_inv:(bordered_apply bp) ~restart ?max_iter ~tol b
