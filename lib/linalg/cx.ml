type c = Complex.t

let cx re im : c = { Complex.re; im }
let re (z : c) = z.Complex.re
let im (z : c) = z.Complex.im
let polar r theta = Complex.polar r theta
let cis theta = Complex.polar 1. theta
let scale a (z : c) = cx (a *. z.Complex.re) (a *. z.Complex.im)
let approx_equal ?(tol = 1e-9) a b = Complex.norm (Complex.sub a b) <= tol

module Cvec = struct
  type t = c array

  let make n (x : c) = Array.make n x
  let zeros n = Array.make n Complex.zero
  let init = Array.init
  let copy = Array.copy
  let of_real v = Array.map (fun x -> cx x 0.) v
  let real_part v = Array.map re v
  let imag_part v = Array.map im v

  let check name u v =
    if Array.length u <> Array.length v then invalid_arg ("Cx.Cvec." ^ name ^ ": length mismatch")

  let add u v =
    check "add" u v;
    Array.mapi (fun i ui -> Complex.add ui v.(i)) u

  let sub u v =
    check "sub" u v;
    Array.mapi (fun i ui -> Complex.sub ui v.(i)) u

  let scale a v = Array.map (Complex.mul a) v

  let dot u v =
    check "dot" u v;
    let s = ref Complex.zero in
    for i = 0 to Array.length u - 1 do
      s := Complex.add !s (Complex.mul (Complex.conj u.(i)) v.(i))
    done;
    !s

  let norm2 v = sqrt (re (dot v v))
  let norm_inf v = Array.fold_left (fun acc z -> Float.max acc (Complex.norm z)) 0. v

  let approx_equal ?(tol = 1e-9) u v =
    Array.length u = Array.length v
    &&
    let ok = ref true in
    for i = 0 to Array.length u - 1 do
      if Complex.norm (Complex.sub u.(i) v.(i)) > tol then ok := false
    done;
    !ok
end

module Cmat = struct
  type t = c array array

  let make r cnum (x : c) = Array.init r (fun _ -> Array.make cnum x)
  let zeros r cnum = make r cnum Complex.zero
  let init r cnum f = Array.init r (fun i -> Array.init cnum (fun j -> f i j))
  let identity n = init n n (fun i j -> if i = j then Complex.one else Complex.zero)
  let rows m = Array.length m
  let cols m = if Array.length m = 0 then 0 else Array.length m.(0)
  let copy m = Array.map Array.copy m

  let mul a b =
    if cols a <> rows b then invalid_arg "Cx.Cmat.mul: dimension mismatch";
    let r = rows a and n = cols a and cnum = cols b in
    let m = zeros r cnum in
    for i = 0 to r - 1 do
      for k = 0 to n - 1 do
        let aik = a.(i).(k) in
        if aik <> Complex.zero then
          for j = 0 to cnum - 1 do
            m.(i).(j) <- Complex.add m.(i).(j) (Complex.mul aik b.(k).(j))
          done
      done
    done;
    m

  let matvec m v =
    if cols m <> Array.length v then invalid_arg "Cx.Cmat.matvec: dimension mismatch";
    Array.init (rows m) (fun i ->
        let s = ref Complex.zero in
        for j = 0 to Array.length v - 1 do
          s := Complex.add !s (Complex.mul m.(i).(j) v.(j))
        done;
        !s)
end

module Clu = struct
  type t = { lu : c array array; perm : int array }

  exception Singular of int

  let c_factor = Wampde_obs.Metrics.counter "lu.factor_complex"
  let h_dim = Wampde_obs.Metrics.histogram "lu.dim_complex"

  let note_factor ~n =
    Wampde_obs.Metrics.incr c_factor;
    Wampde_obs.Metrics.observe h_dim (float_of_int n);
    if Wampde_obs.Events.active () then Wampde_obs.Events.emit (Wampde_obs.Events.Lu_factor { n })

  let factor_quiet a =
    let n = Cmat.rows a in
    if Cmat.cols a <> n then invalid_arg "Cx.Clu.factor: matrix not square";
    let lu = Cmat.copy a in
    let perm = Array.init n (fun i -> i) in
    for k = 0 to n - 1 do
      let pivot = ref k in
      for i = k + 1 to n - 1 do
        if Complex.norm lu.(i).(k) > Complex.norm lu.(!pivot).(k) then pivot := i
      done;
      if !pivot <> k then begin
        let tmp = lu.(k) in
        lu.(k) <- lu.(!pivot);
        lu.(!pivot) <- tmp;
        let tp = perm.(k) in
        perm.(k) <- perm.(!pivot);
        perm.(!pivot) <- tp
      end;
      let pkk = lu.(k).(k) in
      if Complex.norm pkk = 0. then raise (Singular k);
      for i = k + 1 to n - 1 do
        let m = Complex.div lu.(i).(k) pkk in
        lu.(i).(k) <- m;
        if m <> Complex.zero then
          for j = k + 1 to n - 1 do
            lu.(i).(j) <- Complex.sub lu.(i).(j) (Complex.mul m lu.(k).(j))
          done
      done
    done;
    { lu; perm }

  let factor a =
    let n = Cmat.rows a in
    if Cmat.cols a <> n then invalid_arg "Cx.Clu.factor: matrix not square";
    note_factor ~n;
    factor_quiet a

  let solve { lu; perm } b =
    let n = Array.length lu in
    if Array.length b <> n then invalid_arg "Cx.Clu.solve: dimension mismatch";
    let x = Array.init n (fun i -> b.(perm.(i))) in
    for i = 1 to n - 1 do
      let s = ref x.(i) in
      for j = 0 to i - 1 do
        s := Complex.sub !s (Complex.mul lu.(i).(j) x.(j))
      done;
      x.(i) <- !s
    done;
    for i = n - 1 downto 0 do
      let s = ref x.(i) in
      for j = i + 1 to n - 1 do
        s := Complex.sub !s (Complex.mul lu.(i).(j) x.(j))
      done;
      x.(i) <- Complex.div !s lu.(i).(i)
    done;
    x

  let solve_dense a b = solve (factor a) b
end
