module Obs = Wampde_obs

type result = { x : Vec.t; residual_norm : float; iterations : int; converged : bool }

let c_solves = Obs.Metrics.counter "gmres.solves"
let c_iters = Obs.Metrics.counter "gmres.iterations"
let h_iters = Obs.Metrics.histogram "gmres.iterations_per_solve"

(* Restarted GMRES with modified Gram-Schmidt Arnoldi and Givens
   rotations applied to the Hessenberg matrix as it is built, so the
   least-squares problem is solved incrementally. *)
let solve ~matvec ?m_inv ?x0 ?(restart = 50) ?max_iter ?(tol = 1e-10) b =
  Obs.Span.span ~attrs:[ ("dim", Obs.Span.Int (Array.length b)) ] "gmres.solve" @@ fun () ->
  let n = Array.length b in
  let precond = match m_inv with Some f -> f | None -> Array.copy in
  let max_iter = match max_iter with Some m -> m | None -> 10 * restart in
  let x = match x0 with Some x0 -> Array.copy x0 | None -> Array.make n 0. in
  let bnorm = Vec.norm2 b in
  let target = tol *. Float.max bnorm 1e-300 in
  let total_iters = ref 0 in
  (* [r] is the current true residual b - A x, threaded through so a
     restart reuses the vector computed for the convergence check (and
     a zero initial guess costs no matvec at all: r = b). *)
  let rec cycle x r =
    let beta = Vec.norm2 r in
    if beta <= target || !total_iters >= max_iter then (x, beta)
    else begin
      let m = restart in
      (* Krylov basis vectors (preconditioned space) *)
      let v = Array.make (m + 1) [||] in
      v.(0) <- Vec.scale (1. /. beta) r;
      let h = Array.init (m + 1) (fun _ -> Array.make m 0.) in
      let cs = Array.make m 0. and sn = Array.make m 0. in
      let g = Array.make (m + 1) 0. in
      g.(0) <- beta;
      let k_done = ref 0 in
      (try
         for j = 0 to m - 1 do
           if !total_iters >= max_iter then raise Exit;
           incr total_iters;
           let zj = precond v.(j) in
           let w = matvec zj in
           (* modified Gram-Schmidt *)
           for i = 0 to j do
             let hij = Vec.dot v.(i) w in
             h.(i).(j) <- hij;
             Vec.axpy ~a:(-.hij) ~x:v.(i) w
           done;
           let hj1 = Vec.norm2 w in
           h.(j + 1).(j) <- hj1;
           (* apply previous Givens rotations to the new column *)
           for i = 0 to j - 1 do
             let t = (cs.(i) *. h.(i).(j)) +. (sn.(i) *. h.(i + 1).(j)) in
             h.(i + 1).(j) <- (-.sn.(i) *. h.(i).(j)) +. (cs.(i) *. h.(i + 1).(j));
             h.(i).(j) <- t
           done;
           (* new rotation to zero h.(j+1).(j) *)
           let denom = Float.hypot h.(j).(j) h.(j + 1).(j) in
           if denom = 0. then begin
             cs.(j) <- 1.;
             sn.(j) <- 0.
           end
           else begin
             cs.(j) <- h.(j).(j) /. denom;
             sn.(j) <- h.(j + 1).(j) /. denom
           end;
           h.(j).(j) <- (cs.(j) *. h.(j).(j)) +. (sn.(j) *. h.(j + 1).(j));
           h.(j + 1).(j) <- 0.;
           g.(j + 1) <- -.sn.(j) *. g.(j);
           g.(j) <- cs.(j) *. g.(j);
           Obs.Metrics.incr c_iters;
           if Obs.Events.active () then
             Obs.Events.emit
               (Obs.Events.Gmres_iter { k = !total_iters; residual = Float.abs g.(j + 1) });
           k_done := j + 1;
           if hj1 = 0. || Float.abs g.(j + 1) <= target then raise Exit;
           v.(j + 1) <- Vec.scale (1. /. hj1) w
         done
       with Exit -> ());
      let k = !k_done in
      if k = 0 then (x, beta)
      else begin
        (* back-substitute the k x k triangular system *)
        let y = Array.make k 0. in
        for i = k - 1 downto 0 do
          let s = ref g.(i) in
          for j = i + 1 to k - 1 do
            s := !s -. (h.(i).(j) *. y.(j))
          done;
          y.(i) <- !s /. h.(i).(i)
        done;
        (* combine in the unpreconditioned basis first, then apply the
           (linear) preconditioner once: x' = x + M^-1 (V y) *)
        let u = Array.make n 0. in
        for j = 0 to k - 1 do
          if y.(j) <> 0. then Vec.axpy ~a:y.(j) ~x:v.(j) u
        done;
        let x' = Array.copy x in
        Vec.axpy ~a:1. ~x:(precond u) x';
        let r' = Vec.sub b (matvec x') in
        let res = Vec.norm2 r' in
        if res <= target || !total_iters >= max_iter then (x', res) else cycle x' r'
      end
    end
  in
  let r0 = match x0 with None -> Array.copy b | Some _ -> Vec.sub b (matvec x) in
  let beta0 = Vec.norm2 r0 in
  let x, res = cycle x r0 in
  Obs.Metrics.incr c_solves;
  Obs.Metrics.observe h_iters (float_of_int !total_iters);
  let converged = res <= target in
  (* mean per-iteration residual-reduction factor: the plateau signal
     for the health monitor (a well-preconditioned operator contracts
     well below 1 per iteration) *)
  let reduction =
    if !total_iters > 0 && beta0 > 0. && res > 0. then
      (res /. beta0) ** (1. /. float_of_int !total_iters)
    else nan
  in
  Obs.Health.note_gmres ~iterations:!total_iters ~restart ~converged ~reduction ();
  { x; residual_norm = res; iterations = !total_iters; converged }

let solve_mat a ?tol b = solve ~matvec:(fun v -> Mat.matvec a v) ?tol b
