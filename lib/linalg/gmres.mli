(** Restarted GMRES (Saad) for real linear systems, matrix-free.

    The operator is supplied as a function; an optional right
    preconditioner [m_inv] approximates [A^{-1}].  Used by the WaMPDE
    quasiperiodic solver for large coupled systems, per the paper's
    reference to iterative linear techniques [Saa96]. *)

type result = {
  x : Vec.t;  (** approximate solution *)
  residual_norm : float;  (** final true-residual 2-norm *)
  iterations : int;  (** total inner iterations performed *)
  converged : bool;  (** [residual_norm <= tol * ||b||] *)
}

(** [solve ~matvec ?m_inv ?x0 ?restart ?max_iter ?tol b] solves
    [A x = b] where [matvec v] computes [A v].

    @param m_inv right preconditioner: [m_inv v] approximates [A^{-1} v];
    must be a {e linear} map (the solution is reconstructed by applying
    it once to the combined Krylov correction)
    @param x0 initial guess (default zero)
    @param restart Krylov subspace dimension before restart (default 50)
    @param max_iter total inner-iteration budget (default [10 * restart])
    @param tol relative residual tolerance (default 1e-10) *)
val solve :
  matvec:(Vec.t -> Vec.t) ->
  ?m_inv:(Vec.t -> Vec.t) ->
  ?x0:Vec.t ->
  ?restart:int ->
  ?max_iter:int ->
  ?tol:float ->
  Vec.t ->
  result

(** [solve_mat a b] is {!solve} with [matvec] taken from the dense
    matrix [a]; convenient for tests. *)
val solve_mat : Mat.t -> ?tol:float -> Vec.t -> result
