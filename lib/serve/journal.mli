(** Crash-recoverable job journal of [wampde_cli serve].

    A write-ahead log in the spool directory recording every job
    lifecycle transition (accepted → running → checkpointed → … →
    done/error) as a CRC-guarded binary frame, so a daemon killed
    mid-batch can be restarted on the same spool and {!replay} +
    {!orphans} reconstruct which jobs never reached a terminal state —
    those are re-enqueued and, when their bit-exact checkpoint
    survived, resumed from it.

    Frames reuse the {!Checkpoint} section codec and CRC32: each is
    ["WJR1"], a little-endian payload length, the payload CRC and the
    payload itself.  The file starts with a schema header frame
    (["wampde.journal/1"]).  Appends go through a single [write(2)]
    on an [O_APPEND] descriptor; a crash therefore damages at most the
    final frame, which replay detects (warning, not error) and drops
    together with the unreachable bytes behind it.

    Instrumented as [serve.journal.appends], [serve.journal.replayed]
    and [serve.journal.corrupt_tail]. *)

(** Journal schema tag ("wampde.journal/1"). *)
val schema : string

(** Journal file name inside the spool ("journal.wj"). *)
val file_name : string

val path : spool:string -> string

type state =
  | Accepted of { request : string }
      (** job accepted; [request] is the raw NDJSON request line, kept
          verbatim so recovery can re-parse it with the same total
          parser that admitted it *)
  | Running  (** a quantum started (re-logged with a bumped [attempt] on retry) *)
  | Checkpointed  (** preempted mid-march; a resume checkpoint is on disk *)
  | Preempted  (** graceful shutdown parked the job for a later daemon *)
  | Done
  | Error of { kind : string }

type record = { id : string; state : state; attempt : int }

val state_name : state -> string

(** [true] for [Done] and [Error]: the job needs no recovery. *)
val terminal : state -> bool

(** Append handle over an open journal file. *)
type t

(** Open (creating, with a schema header) the journal in [spool].
    The spool directory must exist. *)
val open_ : spool:string -> t

(** Append one frame.  Probes the {!Fault.Journal_trunc} injection
    point: when armed and fired, only a prefix of the frame is
    written, emulating a crash mid-append.  No-op after {!close}. *)
val append : t -> record -> unit

val close : t -> unit

(** Replay every decodable frame (oldest first) plus warnings for a
    damaged tail.  A missing journal is [([], [])]; an unreadable one
    raises {!Checkpoint.Corrupt}. *)
val replay : spool:string -> record list * string list

(** A job whose last journaled state is non-terminal: the daemon died
    while it was queued or running. *)
type orphan = {
  id : string;
  request : string;  (** raw request line from the [Accepted] frame *)
  attempt : int;  (** highest attempt number seen *)
  last : state;
}

(** Non-terminal jobs in acceptance order.  Transitions whose
    [Accepted] frame was lost to a damaged prefix are ignored. *)
val orphans : record list -> orphan list
