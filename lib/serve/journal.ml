module Obs = Wampde_obs

let c_appends = Obs.Metrics.counter "serve.journal.appends"
let c_replayed = Obs.Metrics.counter "serve.journal.replayed"
let c_corrupt_tail = Obs.Metrics.counter "serve.journal.corrupt_tail"

let schema = "wampde.journal/1"
let file_name = "journal.wj"
let path ~spool = Filename.concat spool file_name

(* Per-record frame: 4-byte magic, u32 LE payload length, u32 LE
   CRC32 (IEEE 802.3, same polynomial as checkpoint files) of the
   payload, then the payload — a [Checkpoint.encode]d section list.
   Append-only; a crash can only damage the final frame, which replay
   detects and drops. *)
let magic = "WJR1"

type state =
  | Accepted of { request : string }
  | Running
  | Checkpointed
  | Preempted
  | Done
  | Error of { kind : string }

type record = { id : string; state : state; attempt : int }

let state_name = function
  | Accepted _ -> "accepted"
  | Running -> "running"
  | Checkpointed -> "checkpointed"
  | Preempted -> "preempted"
  | Done -> "done"
  | Error _ -> "error"

let terminal = function Done | Error _ -> true | _ -> false

(* ---------- section codec ---------- *)

let sections_of (r : record) : Checkpoint.t =
  let extra =
    match r.state with
    | Accepted { request } -> [ ("request", Checkpoint.Text request) ]
    | Error { kind } -> [ ("kind", Checkpoint.Text kind) ]
    | Running | Checkpointed | Preempted | Done -> []
  in
  [
    ("id", Checkpoint.Text r.id);
    ("state", Checkpoint.Text (state_name r.state));
    ("attempt", Checkpoint.Scalar (float_of_int r.attempt));
  ]
  @ extra

let record_of (sections : Checkpoint.t) : record =
  let id = Checkpoint.text sections "id" in
  let attempt = int_of_float (Checkpoint.scalar sections "attempt") in
  let state =
    match Checkpoint.text sections "state" with
    | "accepted" -> Accepted { request = Checkpoint.text sections "request" }
    | "running" -> Running
    | "checkpointed" -> Checkpointed
    | "preempted" -> Preempted
    | "done" -> Done
    | "error" -> Error { kind = Checkpoint.text sections "kind" }
    | s -> raise (Checkpoint.Corrupt (Printf.sprintf "journal: unknown state %S" s))
  in
  { id; state; attempt }

let header_sections : Checkpoint.t =
  [ ("schema", Checkpoint.Text schema); ("version", Checkpoint.Scalar 1.) ]

(* ---------- framing ---------- *)

let put_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let frame sections =
  let payload = Checkpoint.encode sections in
  let crc = Int32.to_int (Checkpoint.crc32 payload) land 0xffffffff in
  let b = Buffer.create (Bytes.length payload + 12) in
  Buffer.add_string b magic;
  put_u32 b (Bytes.length payload);
  put_u32 b crc;
  Buffer.add_bytes b payload;
  Buffer.contents b

(* ---------- append handle ---------- *)

type t = { fd : Unix.file_descr; mutable closed : bool }

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.single_write_substring fd s !written (n - !written)
  done

let append_frame t s =
  (* [Fault.Journal_trunc] emulates a crash mid-append: only a prefix
     of the frame reaches the file, exactly what a power cut after a
     partial write leaves behind. *)
  let s =
    if Fault.fire Fault.Journal_trunc then String.sub s 0 (String.length s - (String.length s / 2))
    else s
  in
  write_all t.fd s

let open_ ~spool =
  let p = path ~spool in
  let fresh = not (Sys.file_exists p) in
  let fd = Unix.openfile p [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
  let t = { fd; closed = false } in
  if fresh then write_all fd (frame header_sections);
  t

let append t record =
  if not t.closed then begin
    append_frame t (frame (sections_of record));
    Obs.Metrics.incr c_appends
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* ---------- replay ---------- *)

let u32_at s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Walk the frames front to back.  Any framing violation — short
   header, bad magic, truncated payload, CRC mismatch, undecodable
   sections — stops the walk with one warning: everything before the
   damage is intact (frames are append-only), everything after it is
   unreachable anyway because frame boundaries are lost. *)
let replay ~spool =
  let p = path ~spool in
  if not (Sys.file_exists p) then ([], [])
  else begin
    let data = try read_file p with Sys_error m -> raise (Checkpoint.Corrupt m) in
    let n = String.length data in
    let warn = ref [] in
    let records = ref [] in
    let tail fmt =
      Printf.ksprintf
        (fun m ->
          warn := m :: !warn;
          Obs.Metrics.incr c_corrupt_tail)
        fmt
    in
    let rec go off first =
      if off = n then ()
      else if off + 12 > n then tail "journal: truncated frame header at offset %d" off
      else if String.sub data off 4 <> magic then tail "journal: bad frame magic at offset %d" off
      else begin
        let len = u32_at data (off + 4) in
        let crc = u32_at data (off + 8) in
        if off + 12 + len > n then tail "journal: truncated frame payload at offset %d" off
        else begin
          let payload = Bytes.of_string (String.sub data (off + 12) len) in
          if Int32.to_int (Checkpoint.crc32 payload) land 0xffffffff <> crc then
            tail "journal: CRC mismatch at offset %d" off
          else
            match Checkpoint.decode payload with
            | exception Checkpoint.Corrupt m -> tail "journal: %s (offset %d)" m off
            | sections ->
              if first then begin
                match List.assoc_opt "schema" sections with
                | Some (Checkpoint.Text s) when s = schema -> go (off + 12 + len) false
                | _ -> tail "journal: missing or unknown schema header"
              end
              else begin
                (match record_of sections with
                | r ->
                  records := r :: !records;
                  Obs.Metrics.incr c_replayed
                | exception Checkpoint.Corrupt m -> tail "journal: %s (offset %d)" m off);
                go (off + 12 + len) false
              end
        end
      end
    in
    go 0 true;
    (List.rev !records, List.rev !warn)
  end

(* ---------- reconciliation ---------- *)

type orphan = { id : string; request : string; attempt : int; last : state }

let orphans records =
  let order = ref [] in
  let tbl : (string, orphan) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : record) ->
      match r.state with
      | Accepted { request } ->
        if not (Hashtbl.mem tbl r.id) then order := r.id :: !order;
        Hashtbl.replace tbl r.id { id = r.id; request; attempt = r.attempt; last = r.state }
      | state -> (
        match Hashtbl.find_opt tbl r.id with
        | None -> ()  (* transition without an accept: damaged prefix was dropped *)
        | Some o -> Hashtbl.replace tbl r.id { o with attempt = max o.attempt r.attempt; last = state }))
    records;
  List.rev !order
  |> List.filter_map (fun id ->
       match Hashtbl.find_opt tbl id with
       | Some o when not (terminal o.last) -> Some o
       | _ -> None)
