module Obs = Wampde_obs

let c_deadline = Obs.Metrics.counter "serve.watchdog.deadline_exceeded"
let c_stalled = Obs.Metrics.counter "serve.watchdog.stalled"
let c_trips = Obs.Metrics.counter "serve.breaker.trips"
let c_fast_fails = Obs.Metrics.counter "serve.breaker.fast_fails"
let c_probes = Obs.Metrics.counter "serve.breaker.probes"
let c_closes = Obs.Metrics.counter "serve.breaker.closes"

(* ---------- watchdog ---------- *)

exception Deadline_exceeded
exception Stalled of { idle_s : float }

type watch = {
  deadline_at : float;  (* absolute wall clock; infinity = no deadline *)
  stall_s : float;  (* max quiet interval; infinity = no stall check *)
  mutable last_touch : float;
}

(* The SIGALRM handler is installed once and consults this cell; a
   per-guard install/restore would race a queued signal against the
   restored [Signal_default] and kill the process. With no active
   watch the handler is a no-op, so leaving it installed is safe. *)
let current : watch option ref = ref None
let installed = ref false

let touch () =
  match !current with None -> () | Some w -> w.last_touch <- Unix.gettimeofday ()

let check_watch w =
  let now = Unix.gettimeofday () in
  if now >= w.deadline_at then begin
    current := None;
    Obs.Metrics.incr c_deadline;
    raise Deadline_exceeded
  end
  else begin
    let idle = now -. w.last_touch in
    if idle >= w.stall_s then begin
      current := None;
      Obs.Metrics.incr c_stalled;
      raise (Stalled { idle_s = idle })
    end
  end

let install_handler () =
  if not !installed then begin
    installed := true;
    Sys.set_signal Sys.sigalrm
      (Sys.Signal_handle (fun _ -> match !current with None -> () | Some w -> check_watch w))
  end

let set_itimer interval =
  ignore
    (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = interval; it_value = interval })

(* The timer must tick well inside the tightest limit or a stall
   detection can be late by a whole period; clamp so we neither spin
   at sub-ms granularity nor sleep through short deadlines. *)
let tick_for ~deadline_s ~stall_s =
  let tightest = Float.min deadline_s stall_s in
  Float.max 0.005 (Float.min 0.25 (tightest /. 8.))

let guard ?deadline_s ?stall_s f =
  let deadline_s = Option.value deadline_s ~default:Float.infinity in
  let stall_s = Option.value stall_s ~default:Float.infinity in
  if deadline_s = Float.infinity && stall_s = Float.infinity then f ()
  else begin
    install_handler ();
    let now = Unix.gettimeofday () in
    let w = { deadline_at = now +. deadline_s; stall_s; last_touch = now } in
    (* solver events double as heartbeats: Newton/GMRES iterations and
       step decisions all prove the job is moving even when no macro
       step completes within the stall window *)
    let sub = Obs.Events.subscribe (fun _ -> touch ()) in
    current := Some w;
    set_itimer (tick_for ~deadline_s ~stall_s);
    Fun.protect
      ~finally:(fun () ->
        current := None;
        set_itimer 0.;
        Obs.Events.unsubscribe sub)
      f
  end

(* ---------- seeded exponential backoff ---------- *)

(* splitmix64 finalizer: decorrelates (seed, attempt) into a uniform
   jitter so retries are deterministic per job yet spread across a
   fleet of jobs failing at the same instant. *)
let mix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let backoff_s ~base ~attempt ~seed =
  let attempt = max 1 attempt in
  let scale = Float.min (Float.of_int (1 lsl min 16 (attempt - 1))) 1e4 in
  let bits = mix64 (Int64.add (Int64.of_int seed) (Int64.mul 0x9e3779b97f4a7c15L (Int64.of_int attempt))) in
  let u = Int64.to_float (Int64.shift_right_logical bits 11) /. 9007199254740992. in
  base *. scale *. (1. +. (0.5 *. u))

(* ---------- circuit breaker ---------- *)

module Breaker = struct
  type phase =
    | Closed of { mutable streak : int }
    | Open of { until : float }
    | Half_open  (* one probe in flight *)

  type t = {
    threshold : int;
    cooldown_s : float;
    table : (string, phase) Hashtbl.t;
  }

  let create ~threshold ~cooldown_s =
    { threshold = max 1 threshold; cooldown_s = Float.max 0. cooldown_s; table = Hashtbl.create 8 }

  type decision = Proceed | Probe | Fast_fail of { retry_after_s : float }

  let decide t ~key ~now =
    match Hashtbl.find_opt t.table key with
    | None | Some (Closed _) -> Proceed
    | Some (Open { until }) when now >= until ->
      Hashtbl.replace t.table key Half_open;
      Obs.Metrics.incr c_probes;
      Probe
    | Some (Open { until }) ->
      Obs.Metrics.incr c_fast_fails;
      Fast_fail { retry_after_s = until -. now }
    | Some Half_open ->
      (* a probe is already in flight; don't pile on *)
      Obs.Metrics.incr c_fast_fails;
      Fast_fail { retry_after_s = t.cooldown_s }

  let success t ~key =
    (match Hashtbl.find_opt t.table key with
    | Some Half_open -> Obs.Metrics.incr c_closes
    | _ -> ());
    Hashtbl.replace t.table key (Closed { streak = 0 })

  let failure t ~key ~now =
    let trip () =
      Obs.Metrics.incr c_trips;
      Hashtbl.replace t.table key (Open { until = now +. t.cooldown_s })
    in
    match Hashtbl.find_opt t.table key with
    | None -> if t.threshold <= 1 then trip () else Hashtbl.replace t.table key (Closed { streak = 1 })
    | Some (Closed c) ->
      c.streak <- c.streak + 1;
      if c.streak >= t.threshold then trip ()
    | Some Half_open -> trip ()  (* failed probe: straight back to open *)
    | Some (Open _) -> ()

  (* A half-open probe that ends without a solver verdict (cancelled,
     preempted, deadline-blown) must not wedge the key in [Half_open]
     forever: put it back to [Open] so a later call re-probes. *)
  let release t ~key ~now =
    match Hashtbl.find_opt t.table key with
    | Some Half_open -> Hashtbl.replace t.table key (Open { until = now +. t.cooldown_s })
    | _ -> ()

  let phase_name = function Closed _ -> "closed" | Open _ -> "open" | Half_open -> "half-open"

  let states t =
    Hashtbl.fold
      (fun key phase acc ->
        match phase with
        | Closed { streak = 0 } -> acc
        | _ -> (key, phase_name phase) :: acc)
      t.table []
    |> List.sort compare
end
