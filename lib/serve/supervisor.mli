(** Supervision primitives of [wampde_cli serve]: a SIGALRM watchdog
    enforcing per-job deadlines and stall limits, deterministic
    seeded exponential backoff for retries, and a per-(circuit,
    analysis) circuit breaker.

    Instrumented as [serve.watchdog.*] and [serve.breaker.*]
    counters. *)

(** {1 Watchdog}

    A quantum runs under {!guard}, which arms a recurring interval
    timer; the (process-global, installed once) SIGALRM handler
    raises {!Deadline_exceeded} past the absolute deadline and
    {!Stalled} when no liveness signal arrived within [stall_s].
    Liveness is fed by {!touch} and, automatically, by every
    {!Wampde_obs.Events} emission during the guarded call — Newton
    and GMRES iterations prove progress even when no macro step
    completes inside the stall window.

    OCaml delivers signal-handler exceptions at safe points, so the
    raise surfaces inside the guarded solver call and unwinds through
    its normal exception path — including out of the
    {!Fault.maybe_stall} sleep, exactly like a wedged solver being
    cancelled. *)

exception Deadline_exceeded

exception Stalled of { idle_s : float }  (** quiet for [idle_s] seconds *)

(** Record a liveness heartbeat on the active watch (no-op outside
    {!guard}). *)
val touch : unit -> unit

(** [guard ?deadline_s ?stall_s f] runs [f] under the watchdog.  With
    neither bound, [f] runs unwatched (no timer, no handler).  The
    timer and watch are always cleared on exit, exceptional or not. *)
val guard : ?deadline_s:float -> ?stall_s:float -> (unit -> 'a) -> 'a

(** {1 Retry backoff} *)

(** [backoff_s ~base ~attempt ~seed] is the delay before retry
    [attempt] (1-based): [base * 2^(attempt-1)] stretched by a
    deterministic jitter in [1, 1.5) derived from [(seed, attempt)] —
    reproducible per job, decorrelated across jobs.  The exponential
    factor saturates (at [2^16]) so extreme attempt counts cannot
    overflow. *)
val backoff_s : base:float -> attempt:int -> seed:int -> float

(** {1 Circuit breaker}

    Classic three-state breaker per string key (the scheduler keys by
    ["circuit/analysis"]): [threshold] consecutive permanent failures
    trip the key open; for [cooldown_s] every {!decide} is
    [Fast_fail]; the first decision after the cooldown is a single
    [Probe] (half-open) whose outcome closes the breaker or snaps it
    straight back open. *)
module Breaker : sig
  type t

  val create : threshold:int -> cooldown_s:float -> t

  type decision =
    | Proceed
    | Probe  (** half-open: this caller carries the probe *)
    | Fast_fail of { retry_after_s : float }

  val decide : t -> key:string -> now:float -> decision

  (** Report the probe/call outcome for [key]. *)
  val success : t -> key:string -> unit

  val failure : t -> key:string -> now:float -> unit

  (** Abandon a half-open probe without a verdict (the probe job was
      cancelled or preempted): the key returns to open and re-probes
      after another cooldown.  No-op in other phases. *)
  val release : t -> key:string -> now:float -> unit

  (** Non-closed-and-clean keys with their phase name ("closed",
      "open", "half-open"), sorted — for the [stats] reply. *)
  val states : t -> (string * string) list
end
