module Obs = Wampde_obs

let c_protocol_errors = Obs.Metrics.counter "serve.protocol_errors"
let c_requests = Obs.Metrics.counter "serve.requests"

type reader = block:bool -> [ `Line of string | `Eof | `Nothing ]

type config = {
  quantum : int;
  spool : string;
  cache : int;
  max_retries : int;
  retry_base_s : float;
  stall_timeout_s : float;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  stop_requested : unit -> bool;
}

let default_config ?(quantum = 8) ?(spool = "wampde-spool") ?(cache = 32) ?(max_retries = 0)
    ?(retry_base_s = 0.1) ?(stall_timeout_s = 0.) ?(breaker_threshold = 5)
    ?(breaker_cooldown_s = 5.) ?(stop_requested = fun () -> false) () =
  {
    quantum;
    spool;
    cache;
    max_retries;
    retry_base_s;
    stall_timeout_s;
    breaker_threshold;
    breaker_cooldown_s;
    stop_requested;
  }

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

(* How the loop ends: [Drain] finishes the queue (shutdown drain:true
   or end of input), [Abort] kills it (drain:false), [Preempt] parks
   it for a restarted daemon (SIGTERM via [stop_requested]). *)
type stop = Drain | Abort | Preempt

let run config ~read ~write ~log =
  Obs.set_enabled true;
  Linalg.Structured.Precond_cache.set_capacity config.cache;
  mkdir_p config.spool;
  let sch =
    Scheduler.create ~max_retries:config.max_retries ~retry_base_s:config.retry_base_s
      ~stall_timeout_s:
        (if config.stall_timeout_s > 0. then config.stall_timeout_s else Float.infinity)
      ~breaker_threshold:config.breaker_threshold ~breaker_cooldown_s:config.breaker_cooldown_s
      ~quantum:config.quantum ~spool:config.spool ~emit:write ~log ()
  in
  write (Protocol.hello ~quantum:config.quantum ~jobs:(Par.Pool.jobs ()) ~cache:config.cache);
  Scheduler.recover sch;
  let lineno = ref 0 in
  let stop = ref None in
  let check_signal () =
    if !stop = None && config.stop_requested () then begin
      log "serve: termination requested; parking queued jobs";
      stop := Some Preempt
    end
  in
  let handle line =
    incr lineno;
    if String.trim line <> "" then begin
      Obs.Metrics.incr c_requests;
      match Protocol.parse_request line with
      | Error e ->
        Obs.Metrics.incr c_protocol_errors;
        write (Protocol.error_line ~line:!lineno e)
      | Ok (Protocol.Submit job) -> (
        match Scheduler.submit sch ~request:line job with
        | Ok () -> ()
        | Error e ->
          Obs.Metrics.incr c_protocol_errors;
          write (Protocol.error_line ~line:!lineno ~id:job.id e))
      | Ok (Protocol.Cancel id) -> (
        match Scheduler.cancel sch id with
        | Ok () -> ()
        | Error e ->
          Obs.Metrics.incr c_protocol_errors;
          write (Protocol.error_line ~line:!lineno ~id e))
      | Ok Protocol.Metrics ->
        write (Protocol.metrics_line ~final:false ~metrics:(Obs.Metrics.to_json ()))
      | Ok Protocol.Stats ->
        write
          (Protocol.stats_line
             ~breakers:(Scheduler.breaker_states sch)
             ~counters:(Obs.Metrics.counters ())
             ~gauges:(Obs.Metrics.gauges ()) ())
      | Ok (Protocol.Shutdown { drain }) -> stop := Some (if drain then Drain else Abort)
    end
  in
  Fun.protect ~finally:(fun () -> Linalg.Structured.Precond_cache.set_capacity 0) @@ fun () ->
  while !stop = None do
    check_signal ();
    (* drain whatever input is already available, then do one slice *)
    let reading = ref true in
    while !reading && !stop = None do
      match read ~block:false with
      | `Line l -> handle l
      | `Eof ->
        stop := Some Drain;
        reading := false
      | `Nothing -> reading := false
    done;
    check_signal ();
    if !stop = None then begin
      match Scheduler.run_slice sch with
      | Scheduler.Ran -> ()
      | Scheduler.Wait s ->
        (* every queued job is backing off: nap briefly so input and
           the signal flag stay responsive *)
        (try Unix.sleepf (Float.min s 0.02) with Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | Scheduler.Idle -> (
        match read ~block:true with
        | `Line l -> handle l
        | `Eof -> stop := Some Drain
        | `Nothing -> ())
    end
  done;
  (match !stop with
  | Some Drain -> Scheduler.drain sch
  | Some Preempt -> Scheduler.preempt_all sch
  | Some Abort | None -> ());
  Scheduler.abandon sch;
  Scheduler.shutdown sch;
  write (Protocol.metrics_line ~final:true ~metrics:(Obs.Metrics.to_json ()));
  let c = Scheduler.counts sch in
  write
    (Protocol.bye ~submitted:c.submitted ~completed:c.completed ~failed:c.failed
       ~cancelled:c.cancelled ~preempted:c.preempted);
  log
    (Printf.sprintf
       "serve: shutting down — %d submitted, %d completed, %d failed, %d cancelled, %d preempted"
       c.submitted c.completed c.failed c.cancelled c.preempted);
  0

let fd_reader fd =
  let pending = Queue.create () in
  let partial = Buffer.create 256 in
  let eof = ref false in
  let chunk = Bytes.create 4096 in
  (* [false] when a signal interrupted the read: the caller must get
     control back (to notice a termination request) instead of being
     wedged in a retry loop around a blocking read. *)
  let pull () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 ->
      eof := true;
      if Buffer.length partial > 0 then begin
        Queue.add (Buffer.contents partial) pending;
        Buffer.clear partial
      end;
      true
    | n ->
      for i = 0 to n - 1 do
        match Bytes.get chunk i with
        | '\n' ->
          Queue.add (Buffer.contents partial) pending;
          Buffer.clear partial
        | c -> Buffer.add_char partial c
      done;
      true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  let readable () =
    match Unix.select [ fd ] [] [] 0. with
    | r, _, _ -> r <> []
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  fun ~block ->
    let rec next () =
      match Queue.take_opt pending with
      | Some l -> `Line l
      | None ->
        if !eof then `Eof
        else if block || readable () then begin
          if pull () then next () else `Nothing
        end
        else `Nothing
    in
    next ()
