module Obs = Wampde_obs

let c_protocol_errors = Obs.Metrics.counter "serve.protocol_errors"
let c_requests = Obs.Metrics.counter "serve.requests"

type reader = block:bool -> [ `Line of string | `Eof | `Nothing ]

type config = { quantum : int; spool : string; cache : int }

let default_config ?(quantum = 8) ?(spool = "wampde-spool") ?(cache = 32) () =
  { quantum; spool; cache }

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let run config ~read ~write ~log =
  Obs.set_enabled true;
  Linalg.Structured.Precond_cache.set_capacity config.cache;
  mkdir_p config.spool;
  let sch = Scheduler.create ~quantum:config.quantum ~spool:config.spool ~emit:write ~log () in
  write (Protocol.hello ~quantum:config.quantum ~jobs:(Par.Pool.jobs ()) ~cache:config.cache);
  let lineno = ref 0 in
  let stop = ref None in
  let handle line =
    incr lineno;
    if String.trim line <> "" then begin
      Obs.Metrics.incr c_requests;
      match Protocol.parse_request line with
      | Error e ->
        Obs.Metrics.incr c_protocol_errors;
        write (Protocol.error_line ~line:!lineno e)
      | Ok (Protocol.Submit job) -> (
        match Scheduler.submit sch job with
        | Ok () -> ()
        | Error e ->
          Obs.Metrics.incr c_protocol_errors;
          write (Protocol.error_line ~line:!lineno ~id:job.id e))
      | Ok (Protocol.Cancel id) -> (
        match Scheduler.cancel sch id with
        | Ok () -> ()
        | Error e ->
          Obs.Metrics.incr c_protocol_errors;
          write (Protocol.error_line ~line:!lineno ~id e))
      | Ok Protocol.Metrics ->
        write (Protocol.metrics_line ~final:false ~metrics:(Obs.Metrics.to_json ()))
      | Ok Protocol.Stats ->
        write (Protocol.stats_line ~counters:(Obs.Metrics.counters ()) ~gauges:(Obs.Metrics.gauges ()))
      | Ok (Protocol.Shutdown { drain }) -> stop := Some drain
    end
  in
  Fun.protect ~finally:(fun () -> Linalg.Structured.Precond_cache.set_capacity 0) @@ fun () ->
  while !stop = None do
    (* drain whatever input is already available, then do one slice *)
    let reading = ref true in
    while !reading && !stop = None do
      match read ~block:false with
      | `Line l -> handle l
      | `Eof ->
        stop := Some true;
        reading := false
      | `Nothing -> reading := false
    done;
    if !stop = None && not (Scheduler.run_slice sch) then begin
      match read ~block:true with
      | `Line l -> handle l
      | `Eof -> stop := Some true
      | `Nothing -> ()
    end
  done;
  if !stop = Some true then Scheduler.drain sch;
  Scheduler.abandon sch;
  write (Protocol.metrics_line ~final:true ~metrics:(Obs.Metrics.to_json ()));
  let c = Scheduler.counts sch in
  write
    (Protocol.bye ~submitted:c.submitted ~completed:c.completed ~failed:c.failed
       ~cancelled:c.cancelled);
  log
    (Printf.sprintf "serve: shutting down — %d submitted, %d completed, %d failed, %d cancelled"
       c.submitted c.completed c.failed c.cancelled);
  0

let fd_reader fd =
  let pending = Queue.create () in
  let partial = Buffer.create 256 in
  let eof = ref false in
  let chunk = Bytes.create 4096 in
  let rec pull () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 ->
      eof := true;
      if Buffer.length partial > 0 then begin
        Queue.add (Buffer.contents partial) pending;
        Buffer.clear partial
      end
    | n ->
      for i = 0 to n - 1 do
        match Bytes.get chunk i with
        | '\n' ->
          Queue.add (Buffer.contents partial) pending;
          Buffer.clear partial
        | c -> Buffer.add_char partial c
      done
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> pull ()
  in
  let readable () =
    match Unix.select [ fd ] [] [] 0. with
    | r, _, _ -> r <> []
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  fun ~block ->
    let rec next () =
      match Queue.take_opt pending with
      | Some l -> `Line l
      | None ->
        if !eof then `Eof
        else if block || readable () then begin
          pull ();
          next ()
        end
        else `Nothing
    in
    next ()
