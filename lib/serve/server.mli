(** Session loop of [wampde_cli serve]: NDJSON requests in, NDJSON
    responses out, jobs time-sliced on the {!Scheduler} between
    reads.

    The loop alternates draining immediately-available input
    (non-blocking reads) with running one scheduling slice; it blocks
    for input only when the queue is idle.  End of input and
    [{"type":"shutdown","drain":true}] both drain the queue before
    exiting; [drain:false] aborts still-queued jobs with typed
    ["aborted"] errors.  Either way every accepted job has produced
    exactly one terminal record when [run] returns, followed by a
    final [metrics] record and a [bye]. *)

(** [read ~block] returns the next complete input line (without its
    newline), [`Eof] at end of input, or [`Nothing] when [block] is
    [false] and no line is available yet. *)
type reader = block:bool -> [ `Line of string | `Eof | `Nothing ]

type config = {
  quantum : int;  (** accepted envelope macro steps per slice *)
  spool : string;  (** checkpoint directory (created if missing) *)
  cache : int;  (** {!Linalg.Structured.Precond_cache} capacity *)
}

(** [quantum] defaults to 8, [spool] to "wampde-spool", [cache] to 32. *)
val default_config : ?quantum:int -> ?spool:string -> ?cache:int -> unit -> config

(** [run config ~read ~write ~log] serves until shutdown or end of
    input and returns the process exit code (0 — protocol and job
    failures are responses, not daemon failures).  [write] receives
    every response line; [log] receives human-readable lifecycle
    lines.  Enables telemetry and sets the preconditioner-cache
    capacity (restoring 0 on exit). *)
val run : config -> read:reader -> write:(string -> unit) -> log:(string -> unit) -> int

(** Non-blocking line reader over a file descriptor ([select] +
    internal buffer), for wiring [run] to [Unix.stdin]. *)
val fd_reader : Unix.file_descr -> reader
