(** Session loop of [wampde_cli serve]: NDJSON requests in, NDJSON
    responses out, jobs time-sliced on the {!Scheduler} between
    reads.

    The loop alternates draining immediately-available input
    (non-blocking reads) with running one scheduling slice; it blocks
    for input only when the queue is idle and naps briefly when every
    queued job is inside a retry-backoff window.  On startup the
    spool's {!Journal} is replayed: jobs orphaned by a crashed daemon
    are re-enqueued (one [recovered] record each) and resume from
    their surviving checkpoints bit-exactly.

    Shutdown paths: end of input and
    [{"type":"shutdown","drain":true}] drain the queue;
    [drain:false] aborts still-queued jobs with typed ["aborted"]
    errors; a [stop_requested] poll returning [true] (the CLI wires
    SIGTERM to it) parks queued jobs — journal [Preempted],
    checkpoints kept — so a restarted daemon on the same spool picks
    them up.  Either way every accepted job has produced exactly one
    terminal record when [run] returns, followed by a final [metrics]
    record and a [bye]. *)

(** [read ~block] returns the next complete input line (without its
    newline), [`Eof] at end of input, or [`Nothing] when no line is
    available yet — because [block] is [false], or because a signal
    interrupted the blocking read (so the loop can notice a
    termination request). *)
type reader = block:bool -> [ `Line of string | `Eof | `Nothing ]

type config = {
  quantum : int;  (** accepted envelope macro steps per slice *)
  spool : string;  (** checkpoint + journal directory (created if missing) *)
  cache : int;  (** {!Linalg.Structured.Precond_cache} capacity *)
  max_retries : int;  (** transient-failure retries per job *)
  retry_base_s : float;  (** backoff base for retry delays *)
  stall_timeout_s : float;  (** stall watchdog; [0.] disables *)
  breaker_threshold : int;  (** permanent failures before a breaker opens *)
  breaker_cooldown_s : float;  (** open-breaker cooldown before a probe *)
  stop_requested : unit -> bool;  (** polled each loop turn; [true] = graceful park *)
}

(** [quantum] defaults to 8, [spool] to "wampde-spool", [cache] to
    32, [max_retries] to 0, [retry_base_s] to 0.1, [stall_timeout_s]
    to 0 (off), [breaker_threshold] to 5, [breaker_cooldown_s] to 5,
    [stop_requested] to never. *)
val default_config :
  ?quantum:int ->
  ?spool:string ->
  ?cache:int ->
  ?max_retries:int ->
  ?retry_base_s:float ->
  ?stall_timeout_s:float ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  ?stop_requested:(unit -> bool) ->
  unit ->
  config

(** [run config ~read ~write ~log] serves until shutdown or end of
    input and returns the process exit code (0 — protocol and job
    failures are responses, not daemon failures).  [write] receives
    every response line; [log] receives human-readable lifecycle
    lines.  Enables telemetry and sets the preconditioner-cache
    capacity (restoring 0 on exit). *)
val run : config -> read:reader -> write:(string -> unit) -> log:(string -> unit) -> int

(** Non-blocking line reader over a file descriptor ([select] +
    internal buffer), for wiring [run] to [Unix.stdin].  A signal
    arriving during a blocking read yields [`Nothing] instead of
    retrying, so the server loop can poll [stop_requested]. *)
val fd_reader : Unix.file_descr -> reader
