(** Cooperative round-robin job scheduler behind [wampde_cli serve].

    Single-threaded: jobs run one scheduling slice (quantum) at a
    time on the calling domain (inner kernels still fan out on the
    {!Par.Pool}).  An envelope job's quantum is [quantum] accepted
    macro steps — the march is then preempted through
    {!Wampde.Envelope.simulate_controlled}'s [?preempt] hook, which
    forces a bit-exact checkpoint into the spool directory and raises
    [Preempted]; the next slice resumes from that file, so a job's
    final result is bitwise identical to an uninterrupted run.
    Quasiperiodic jobs are atomic (one slice).

    Supervision: every lifecycle transition is journaled
    (see {!Journal}), so {!recover} on a restarted daemon re-enqueues
    the jobs a crash orphaned and resumes them from their surviving
    checkpoints.  Quanta run under the {!Supervisor} watchdog
    ([deadline_ms] per job, [stall_timeout_s] daemon-wide); transient
    solver failures are retried up to [max_retries] times with seeded
    exponential backoff from [retry_base_s]; repeated permanent
    failures trip a per-(circuit, analysis) circuit breaker that
    fast-fails with ["breaker-open"] until a half-open probe
    succeeds.

    Warm state shared across jobs: an unforced-orbit cache keyed by
    [(circuit, n1)] ([cache.orbit.*] metrics; the Bluestein FFT plan
    cache and the {!Linalg.Structured.Precond_cache} warm up
    underneath).  Every accepted job terminates in exactly one
    [result] record (carrying a ["wampde.run-report/1"] manifest) or
    one typed [job-error] record — solver exceptions, including
    injected {!Fault} storms, are mapped to stable [kind]s, and a
    corrupt resume checkpoint restarts the job from scratch once
    before failing it.  Scheduler traffic is instrumented as
    [serve.*] counters and the [serve.queue_depth] gauge. *)

type t

(** [create ~quantum ~spool ~emit ~log ()] — [emit] receives every
    job-related response line (accepted / stream records / result /
    job-error); [log] receives human-readable lifecycle lines.  The
    spool directory must exist (the journal is opened inside it).
    [max_retries] (default 0) bounds per-job transient retries;
    [retry_base_s] (default 0.1) seeds their exponential backoff;
    [stall_timeout_s] (default off) arms the stall watchdog;
    [breaker_threshold] (default 5) consecutive permanent failures
    open a breaker for [breaker_cooldown_s] (default 5) seconds. *)
val create :
  ?max_retries:int ->
  ?retry_base_s:float ->
  ?stall_timeout_s:float ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_s:float ->
  quantum:int ->
  spool:string ->
  emit:(string -> unit) ->
  log:(string -> unit) ->
  unit ->
  t

(** Known circuit registry names (currently "vco-a" and "vco-b"). *)
val circuits : unit -> string list

(** Enqueue a job and emit its [accepted] record.  [request] is the
    raw request line, journaled so a crash-recovered daemon can
    re-parse and re-run the job.  [Error _] (with code "duplicate-id"
    or "unknown-circuit") emits nothing. *)
val submit : t -> ?request:string -> Protocol.job -> (unit, Protocol.error) result

(** Replay the spool's journal and re-enqueue every orphaned
    (non-terminal) job, emitting one [recovered] record each; jobs
    whose checkpoint survived resume from it bit-exactly.  Call once,
    right after {!create}, before serving input. *)
val recover : t -> unit

(** Mark a queued (or preempted) job cancelled; it terminates with a
    ["cancelled"] job-error when next dequeued.  [Error _] (code
    "unknown-id") if the id is unknown or already terminal. *)
val cancel : t -> string -> (unit, Protocol.error) result

(** Jobs still queued (including preempted ones). *)
val pending : t -> int

type slice =
  | Ran  (** a job ran one slice (or took a terminal transition) *)
  | Idle  (** queue empty *)
  | Wait of float  (** every queued job is in retry backoff; seconds until the soonest *)

(** Run one scheduling slice.  Never raises on solver failure — the
    job terminates with a typed [job-error] (or retries) instead. *)
val run_slice : t -> slice

(** Run slices (sleeping through backoff windows) until the queue is
    empty. *)
val drain : t -> unit

(** Terminate every still-queued job with an ["aborted"] job-error
    (non-drain shutdown). *)
val abandon : t -> unit

(** Park every still-queued job for a restarted daemon (graceful
    SIGTERM drain): journal [Preempted], keep its checkpoint, emit a
    terminal ["preempted"] job-error and close its stream. *)
val preempt_all : t -> unit

(** Close the journal.  The scheduler must not be used afterwards. *)
val shutdown : t -> unit

(** Breaker phases for the [stats] reply (["circuit/analysis"] →
    "closed" / "open" / "half-open"). *)
val breaker_states : t -> (string * string) list

type counts = {
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  preempted : int;
}

val counts : t -> counts
