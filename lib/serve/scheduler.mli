(** Cooperative round-robin job scheduler behind [wampde_cli serve].

    Single-threaded: jobs run one scheduling slice (quantum) at a
    time on the calling domain (inner kernels still fan out on the
    {!Par.Pool}).  An envelope job's quantum is [quantum] accepted
    macro steps — the march is then preempted through
    {!Wampde.Envelope.simulate_controlled}'s [?preempt] hook, which
    forces a bit-exact checkpoint into the spool directory and raises
    [Preempted]; the next slice resumes from that file, so a job's
    final result is bitwise identical to an uninterrupted run.
    Quasiperiodic jobs are atomic (one slice).

    Warm state shared across jobs: an unforced-orbit cache keyed by
    [(circuit, n1)] ([cache.orbit.*] metrics; the Bluestein FFT plan
    cache and the {!Linalg.Structured.Precond_cache} warm up
    underneath).  Every accepted job terminates in exactly one
    [result] record (carrying a ["wampde.run-report/1"] manifest) or
    one typed [job-error] record — solver exceptions, including
    injected {!Fault} storms, are mapped to stable [kind]s, and a
    corrupt resume checkpoint restarts the job from scratch once
    before failing it.  Scheduler traffic is instrumented as
    [serve.*] counters and the [serve.queue_depth] gauge. *)

type t

(** [create ~quantum ~spool ~emit ~log ()] — [emit] receives every
    job-related response line (accepted / stream records / result /
    job-error); [log] receives human-readable lifecycle lines.  The
    spool directory must exist. *)
val create : quantum:int -> spool:string -> emit:(string -> unit) -> log:(string -> unit) -> unit -> t

(** Known circuit registry names (currently "vco-a" and "vco-b"). *)
val circuits : unit -> string list

(** Enqueue a job and emit its [accepted] record.  [Error _] (with
    code "duplicate-id" or "unknown-circuit") emits nothing. *)
val submit : t -> Protocol.job -> (unit, Protocol.error) result

(** Mark a queued (or preempted) job cancelled; it terminates with a
    ["cancelled"] job-error when next dequeued.  [Error _] (code
    "unknown-id") if the id is unknown or already terminal. *)
val cancel : t -> string -> (unit, Protocol.error) result

(** Jobs still queued (including preempted ones). *)
val pending : t -> int

(** Run one scheduling slice of the front job; [false] when the queue
    is empty.  Never raises on solver failure — the job terminates
    with a typed [job-error] instead. *)
val run_slice : t -> bool

(** Run slices until the queue is empty. *)
val drain : t -> unit

(** Terminate every still-queued job with an ["aborted"] job-error
    (non-drain shutdown). *)
val abandon : t -> unit

type counts = { submitted : int; completed : int; failed : int; cancelled : int }

val counts : t -> counts
