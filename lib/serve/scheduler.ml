module Obs = Wampde_obs

let c_submitted = Obs.Metrics.counter "serve.jobs.submitted"
let c_completed = Obs.Metrics.counter "serve.jobs.completed"
let c_failed = Obs.Metrics.counter "serve.jobs.failed"
let c_cancelled = Obs.Metrics.counter "serve.jobs.cancelled"
let c_preempted_jobs = Obs.Metrics.counter "serve.jobs.preempted"
let c_quanta = Obs.Metrics.counter "serve.quanta"
let c_preemptions = Obs.Metrics.counter "serve.preemptions"
let c_restarts = Obs.Metrics.counter "serve.restarts"
let c_retry_attempts = Obs.Metrics.counter "serve.retry.attempts"
let c_retry_recovered = Obs.Metrics.counter "serve.retry.recovered"
let c_retry_exhausted = Obs.Metrics.counter "serve.retry.exhausted"
let c_journal_recovered = Obs.Metrics.counter "serve.journal.recovered"
let c_journal_resumed = Obs.Metrics.counter "serve.journal.resumed"

(* same instance as the supervisor's: the registry dedupes by name *)
let c_watchdog_deadline = Obs.Metrics.counter "serve.watchdog.deadline_exceeded"
let g_depth = Obs.Metrics.gauge "serve.queue_depth"
let c_orbit_hits = Obs.Metrics.counter "cache.orbit.hits"
let c_orbit_misses = Obs.Metrics.counter "cache.orbit.misses"
let g_orbit_entries = Obs.Metrics.gauge "cache.orbit.entries"

(* ---------- circuit registry ---------- *)

type circuit_entry = {
  dae : unit -> Dae.t;  (* forced system the job simulates *)
  frozen : unit -> Dae.t * Linalg.Vec.t;  (* autonomous system + x0 for the orbit *)
}

let registry =
  [
    ( "vco-a",
      {
        dae = (fun () -> Circuit.Vco.build (Circuit.Vco.vco_a ()));
        frozen =
          (fun () ->
            let p = Circuit.Vco.default_params ~control:(fun _ -> 1.5) () in
            (Circuit.Vco.build p, Circuit.Vco.initial_state p));
      } );
    ( "vco-b",
      {
        dae = (fun () -> Circuit.Vco.build (Circuit.Vco.vco_b ()));
        frozen =
          (fun () ->
            let p =
              Circuit.Vco.default_params ~damping:1.57 ~force0:4.0e-3 ~control:(fun _ -> 1.5) ()
            in
            (Circuit.Vco.build p, Circuit.Vco.initial_state p));
      } );
  ]

let circuits () = List.map fst registry

(* ---------- job bookkeeping ---------- *)

type status = Queued | Done | Failed | Cancelled | Parked

type jobrec = {
  job : Protocol.job;
  entry : circuit_entry;
  ckpt : string;
  deadline_at : float;  (* absolute wall clock; infinity = none *)
  mutable status : status;
  mutable quanta : int;
  mutable preemptions : int;
  mutable restarts : int;
  mutable retries : int;
  mutable not_before : float;  (* retry-backoff gate, absolute wall clock *)
  mutable started : bool;  (* current attempt has journaled its Running frame *)
  mutable steps : Obs.Report.step list;
  mutable stream : Obs.Stream.t option;
  mutable wall : float;
  mutable has_ckpt : bool;
  mutable cancelled : bool;
}

type t = {
  quantum : int;
  spool : string;
  max_retries : int;
  retry_base_s : float;
  stall_s : float;  (* infinity disables the stall watchdog *)
  emit : string -> unit;
  log : string -> unit;
  journal : Journal.t;
  breaker : Supervisor.Breaker.t;
  queue : string Queue.t;
  jobs : (string, jobrec) Hashtbl.t;
  orbits : (string, Steady.Oscillator.orbit) Hashtbl.t;
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable cancelled_n : int;
  mutable preempted_n : int;
}

type counts = {
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  preempted : int;
}

let counts (t : t) =
  {
    submitted = t.submitted;
    completed = t.completed;
    failed = t.failed;
    cancelled = t.cancelled_n;
    preempted = t.preempted_n;
  }

let create ?(max_retries = 0) ?(retry_base_s = 0.1) ?(stall_timeout_s = Float.infinity)
    ?(breaker_threshold = 5) ?(breaker_cooldown_s = 5.) ~quantum ~spool ~emit ~log () =
  Obs.Metrics.set g_depth 0.;
  {
    quantum = max 1 quantum;
    spool;
    max_retries = max 0 max_retries;
    retry_base_s = Float.max 0. retry_base_s;
    stall_s = (if stall_timeout_s > 0. then stall_timeout_s else Float.infinity);
    emit;
    log;
    journal = Journal.open_ ~spool;
    breaker = Supervisor.Breaker.create ~threshold:breaker_threshold ~cooldown_s:breaker_cooldown_s;
    queue = Queue.create ();
    jobs = Hashtbl.create 32;
    orbits = Hashtbl.create 8;
    submitted = 0;
    completed = 0;
    failed = 0;
    cancelled_n = 0;
    preempted_n = 0;
  }

let breaker_states t = Supervisor.Breaker.states t.breaker
let breaker_key (job : Protocol.job) = job.circuit ^ "/" ^ Protocol.analysis_name job.analysis
let attempt jr = jr.retries + 1
let journal_put t jr state = Journal.append t.journal { Journal.id = jr.job.id; state; attempt = attempt jr }

let pending t = Queue.length t.queue
let set_depth t = Obs.Metrics.set g_depth (float_of_int (Queue.length t.queue))

let err code fmt = Printf.ksprintf (fun message -> Error { Protocol.code; message }) fmt

let make_jobrec t entry (job : Protocol.job) ~retries ~has_ckpt =
  {
    job;
    entry;
    ckpt = Filename.concat t.spool (job.id ^ ".ckpt");
    deadline_at =
      (match job.deadline_ms with
      | Some ms -> Unix.gettimeofday () +. (ms /. 1000.)
      | None -> Float.infinity);
    status = Queued;
    quanta = 0;
    preemptions = 0;
    restarts = 0;
    retries;
    not_before = 0.;
    started = false;
    steps = [];
    stream = None;
    wall = 0.;
    has_ckpt;
    cancelled = false;
  }

let submit (t : t) ?(request = "") (job : Protocol.job) =
  match List.assoc_opt job.circuit registry with
  | None ->
    err "unknown-circuit" "unknown circuit %S (known: %s)" job.circuit
      (String.concat ", " (circuits ()))
  | Some entry ->
    if Hashtbl.mem t.jobs job.id then err "duplicate-id" "job id %S already used" job.id
    else begin
      let jr = make_jobrec t entry job ~retries:0 ~has_ckpt:false in
      Hashtbl.add t.jobs job.id jr;
      Queue.add job.id t.queue;
      t.submitted <- t.submitted + 1;
      Obs.Metrics.incr c_submitted;
      set_depth t;
      journal_put t jr (Journal.Accepted { request });
      t.log
        (Printf.sprintf "serve: accepted %s (%s on %s), queue depth %d" job.id
           (Protocol.analysis_name job.analysis) job.circuit (Queue.length t.queue));
      t.emit (Protocol.accepted ~id:job.id ~queue_depth:(Queue.length t.queue));
      Ok ()
    end

(* Replay the journal left by a previous daemon on this spool and
   re-enqueue every job that never reached a terminal state.  The
   journal's raw request line goes back through the same total parser
   that admitted it; the on-disk checkpoint (when the crash left one)
   is the resume authority, so the recovered job continues bit-exactly
   where the dead daemon checkpointed it. *)
let recover (t : t) =
  let records, warnings =
    match Journal.replay ~spool:t.spool with
    | r -> r
    | exception Checkpoint.Corrupt m -> ([], [ m ])
  in
  List.iter (fun w -> t.log ("serve: " ^ w)) warnings;
  let orphans = Journal.orphans records in
  List.iter
    (fun (o : Journal.orphan) ->
      match Protocol.parse_request o.request with
      | Ok (Protocol.Submit job) when not (Hashtbl.mem t.jobs job.id) -> (
        match List.assoc_opt job.circuit registry with
        | None -> t.log (Printf.sprintf "serve: journal job %s names unknown circuit %S" o.id job.circuit)
        | Some entry ->
          let jr = make_jobrec t entry job ~retries:(max 0 (o.attempt - 1)) ~has_ckpt:false in
          jr.has_ckpt <- Sys.file_exists jr.ckpt;
          Hashtbl.add t.jobs job.id jr;
          Queue.add job.id t.queue;
          t.submitted <- t.submitted + 1;
          Obs.Metrics.incr c_submitted;
          Obs.Metrics.incr c_journal_recovered;
          if jr.has_ckpt then Obs.Metrics.incr c_journal_resumed;
          t.log
            (Printf.sprintf "serve: recovered %s from journal (last state %s, attempt %d%s)" o.id
               (Journal.state_name o.last) o.attempt
               (if jr.has_ckpt then ", resuming from checkpoint" else ", restarting"));
          t.emit
            (Protocol.recovered ~id:job.id ~resumed:jr.has_ckpt ~attempt:(attempt jr)
               ~queue_depth:(Queue.length t.queue)))
      | Ok _ | Error _ ->
        t.log (Printf.sprintf "serve: journal request for %s no longer parses; dropping" o.id))
    orphans;
  set_depth t

let cancel t id =
  match Hashtbl.find_opt t.jobs id with
  | Some jr when jr.status = Queued ->
    jr.cancelled <- true;
    Ok ()
  | Some _ -> err "unknown-id" "job %S already finished" id
  | None -> err "unknown-id" "no such job %S" id

(* ---------- shared warm state ---------- *)

let orbit_for t jr ~n1 =
  let key = Printf.sprintf "%s|n1=%d" jr.job.circuit n1 in
  match Hashtbl.find_opt t.orbits key with
  | Some orbit ->
    Obs.Metrics.incr c_orbit_hits;
    orbit
  | None ->
    Obs.Metrics.incr c_orbit_misses;
    let dae, x0 = jr.entry.frozen () in
    let orbit = Steady.Oscillator.find dae ~n1 ~period_hint:(1. /. 0.75) x0 in
    Hashtbl.replace t.orbits key orbit;
    Obs.Metrics.set g_orbit_entries (float_of_int (Hashtbl.length t.orbits));
    orbit

(* ---------- terminal transitions ---------- *)

let remove_ckpt jr =
  if jr.has_ckpt then (try Sys.remove jr.ckpt with Sys_error _ -> ());
  jr.has_ckpt <- false

let close_stream jr ~ok ?error () =
  (match jr.stream with
  | Some s -> Obs.Stream.finish s ~ok ?error ()
  | None -> ());
  jr.stream <- None

let finish_cancelled (t : t) jr ~kind =
  close_stream jr ~ok:false ~error:kind ();
  remove_ckpt jr;
  jr.status <- Cancelled;
  t.cancelled_n <- t.cancelled_n + 1;
  Obs.Metrics.incr c_cancelled;
  journal_put t jr (Journal.Error { kind });
  (* a cancelled half-open probe must not wedge the breaker *)
  Supervisor.Breaker.release t.breaker ~key:(breaker_key jr.job) ~now:(Unix.gettimeofday ());
  t.log (Printf.sprintf "serve: %s %s after %d quanta" kind jr.job.id jr.quanta);
  t.emit
    (Protocol.job_error ~id:jr.job.id ~kind
       ~message:(Printf.sprintf "job %s before completion" kind)
       ~quanta:jr.quanta ())

(* Every typed job failure gets a flight dump next to its checkpoint in
   the spool; the dump path rides on the job-error record so a client
   can fetch the postmortem.  A dump that itself fails to write is
   logged and dropped — it must never mask the job failure. *)
let write_flight (t : t) jr ~kind ~message =
  let path = Filename.concat t.spool (jr.job.id ^ ".flight.json") in
  let subcommand = "serve:" ^ Protocol.analysis_name jr.job.analysis in
  match
    Obs.Flight.write ~subcommand
      ?git:(Obs.Report.git_describe ())
      ~jobs:(Par.Pool.jobs ()) ~path ~kind ~message ()
  with
  | Ok path -> Some path
  | Error msg ->
    t.log (Printf.sprintf "serve: job %s flight dump failed: %s" jr.job.id msg);
    None

(* Which failure kinds feed the per-(circuit, analysis) breaker: only
   genuine solver verdicts.  Administrative terminations (cancel,
   abort, preemption), budget overruns and the breaker's own
   fast-fails say nothing about whether the analysis is healthy. *)
let breaker_counts_kind = function
  | "cancelled" | "aborted" | "preempted" | "deadline-exceeded" | "breaker-open" -> false
  | _ -> true

let finish_failed ?(dump = true) (t : t) jr ~kind ~message =
  close_stream jr ~ok:false ~error:kind ();
  remove_ckpt jr;
  jr.status <- Failed;
  t.failed <- t.failed + 1;
  Obs.Metrics.incr c_failed;
  journal_put t jr (Journal.Error { kind });
  let bkey = breaker_key jr.job in
  if breaker_counts_kind kind then
    Supervisor.Breaker.failure t.breaker ~key:bkey ~now:(Unix.gettimeofday ())
  else if kind <> "breaker-open" then
    Supervisor.Breaker.release t.breaker ~key:bkey ~now:(Unix.gettimeofday ());
  let flight = if dump then write_flight t jr ~kind ~message else None in
  t.log
    (Printf.sprintf "serve: job %s failed (%s): %s%s" jr.job.id kind message
       (match flight with Some p -> " [flight: " ^ p ^ "]" | None -> ""));
  t.emit (Protocol.job_error ?flight ~id:jr.job.id ~kind ~message ~quanta:jr.quanta ())

let finish_done (t : t) jr ~t2_end ~omega_end =
  close_stream jr ~ok:true ();
  remove_ckpt jr;
  jr.status <- Done;
  t.completed <- t.completed + 1;
  Obs.Metrics.incr c_completed;
  journal_put t jr Journal.Done;
  Supervisor.Breaker.success t.breaker ~key:(breaker_key jr.job);
  if jr.retries > 0 then Obs.Metrics.incr c_retry_recovered;
  let analysis = Protocol.analysis_name jr.job.analysis in
  let manifest =
    Obs.Report.manifest ~subcommand:("serve:" ^ analysis) ~jobs:(Par.Pool.jobs ()) ~wall_s:jr.wall
      ~steps:jr.steps ()
  in
  let summary =
    {
      Protocol.analysis;
      wall_s = jr.wall;
      steps = List.length jr.steps;
      quanta = jr.quanta;
      preemptions = jr.preemptions;
      restarts = jr.restarts;
      t2_end;
      omega_end;
    }
  in
  t.log
    (Printf.sprintf "serve: job %s done in %d quanta (%d preemptions, %.3f s)" jr.job.id jr.quanta
       jr.preemptions jr.wall);
  t.emit (Protocol.result ~id:jr.job.id ~summary ~manifest)

(* ---------- quantum execution ---------- *)

type outcome =
  | Complete of { t2_end : float; omega_end : float }
  | Preempt
  | Restart of string
  | Fail of { kind : string; message : string }

let classify = function
  | Supervisor.Deadline_exceeded -> ("deadline-exceeded", "wall-clock deadline exceeded")
  | Supervisor.Stalled { idle_s } ->
    ("stalled", Printf.sprintf "watchdog: no solver progress for %.2f s" idle_s)
  | Wampde.Envelope.Step_failure { t2; h2; residual; iterations; _ } ->
    ( "step-failure",
      Printf.sprintf "envelope Newton failed at t2 = %g (h2 = %g): residual %.3e after %d iterations"
        t2 h2 residual iterations )
  | Transient.Step_failure _ as e -> ("step-failure", Printexc.to_string e)
  | Step_control.Underflow { t; h } ->
    ("step-underflow", Printf.sprintf "step control drove h2 below minimum at t2 = %g (h2 = %g)" t h)
  | Checkpoint.Corrupt msg -> ("corrupt-checkpoint", msg)
  | Nonlin.Polyalg.Solve_failed _ as e -> ("solve-failed", Printexc.to_string e)
  | Nonlin.Polyalg.Non_finite _ as e -> ("non-finite", Printexc.to_string e)
  | Nonlin.Continuation.Step_underflow _ as e -> ("continuation-underflow", Printexc.to_string e)
  | Steady.Oscillator.Nonphysical msg -> ("nonphysical", msg)
  | Failure msg -> ("solver-failure", msg)
  | e -> ("internal", Printexc.to_string e)

let last (v : Linalg.Vec.t) = v.(Array.length v - 1)

let stream_for t jr ~total =
  match jr.stream with
  | Some s ->
    Obs.Stream.resume s;
    s
  | None ->
    let s =
      Obs.Stream.start ~job:jr.job.id
        ~run:(Protocol.analysis_name jr.job.analysis)
        ~total ~min_progress_s:0.05 ~write:t.emit
        ~flush:(fun () -> ())
        ()
    in
    jr.stream <- Some s;
    s

let exec_envelope t jr (p : Protocol.envelope_params) =
  let dae = jr.entry.dae () in
  let orbit = orbit_for t jr ~n1:p.n1 in
  let options =
    Wampde.Envelope.default_options ~n1:p.n1 ~solver:p.solver ~precond_cache:jr.job.circuit ()
  in
  let control =
    Step_control.default_options ~rtol:p.rtol ~atol:(p.rtol /. 1000.) ~h_min:1e-9
      ~h_max:(p.t_end /. 2.) ()
  in
  let accepted = ref 0 in
  let res =
    Wampde.Envelope.simulate_controlled dae ~options ~control ?h2_init:p.h2
      ~checkpoint:(jr.ckpt, max_int)
      ?resume:(if jr.has_ckpt then Some jr.ckpt else None)
      ~on_accept:(fun ~t2:_ ~omega:_ ->
        Supervisor.touch ();
        incr accepted)
      ~preempt:(fun ~t2:_ -> !accepted >= t.quantum)
      ~t2_end:p.t_end ~init:orbit ()
  in
  Complete { t2_end = last res.Wampde.Envelope.t2; omega_end = last res.Wampde.Envelope.omega }

let exec_quasi t jr (p : Protocol.quasi_params) =
  let dae = jr.entry.dae () in
  let orbit = orbit_for t jr ~n1:p.n1 in
  let options = Wampde.Envelope.default_options ~n1:p.n1 ~precond_cache:jr.job.circuit () in
  let env = Wampde.Envelope.simulate dae ~options ~t2_end:p.t_warm ~h2:p.h2_warm ~init:orbit in
  let guess =
    Wampde.Quasiperiodic.guess_from_envelope env ~p2:p.p2 ~n2:p.n2 ~t_from:(p.t_warm -. p.p2)
  in
  let sol =
    Wampde.Quasiperiodic.solve dae ~linear_solver:p.linear_solver ~options ~p2:p.p2 ~n2:p.n2 ~guess
      ()
  in
  Complete { t2_end = p.p2; omega_end = Wampde.Quasiperiodic.mean_frequency sol }

let run_quantum t jr =
  let total =
    match jr.job.analysis with
    | Protocol.Envelope p -> p.t_end
    | Protocol.Quasiperiodic p -> p.t_warm
  in
  ignore (stream_for t jr ~total);
  (* fresh timeline per quantum: a dump for this job must not carry a
     previous job's (or previous quantum's) tail *)
  Obs.Flight.arm ();
  Obs.Flight.clear ();
  let collector = Obs.Report.collect () in
  let settle () = jr.steps <- jr.steps @ Obs.Report.finish collector in
  let deadline_s =
    if jr.deadline_at = Float.infinity then None
    else Some (jr.deadline_at -. Unix.gettimeofday ())
  in
  let stall_s = if t.stall_s = Float.infinity then None else Some t.stall_s in
  match
    Supervisor.guard ?deadline_s ?stall_s (fun () ->
        match jr.job.analysis with
        | Protocol.Envelope p -> exec_envelope t jr p
        | Protocol.Quasiperiodic p -> exec_quasi t jr p)
  with
  | outcome ->
    settle ();
    outcome
  | exception Wampde.Envelope.Preempted _ ->
    settle ();
    jr.has_ckpt <- true;
    Preempt
  | exception Checkpoint.Corrupt msg when jr.has_ckpt && jr.restarts = 0 ->
    settle ();
    Restart msg
  | exception ((Stack_overflow | Out_of_memory) as e) ->
    settle ();
    raise e
  | exception e ->
    settle ();
    let kind, message = classify e in
    Fail { kind; message }

(* Transient solver verdicts worth a seeded-backoff retry from the
   last checkpoint.  Structural rejections (underflow, nonphysical,
   corrupt input) and watchdog/administrative kinds are permanent. *)
let retryable_kind = function
  | "step-failure" | "solve-failed" | "non-finite" | "solver-failure" -> true
  | _ -> false

type slice = Ran | Idle | Wait of float

(* Pop the first runnable job: cancelled and deadline-blown jobs are
   always runnable (their slice is the terminal transition); jobs
   inside a retry-backoff window rotate to the back.  [Wait s] when
   every queued job is backing off. *)
let take_runnable t now =
  let n = Queue.length t.queue in
  let soonest = ref Float.infinity in
  let rec go i =
    if i >= n then None
    else
      match Queue.take_opt t.queue with
      | None -> None
      | Some id ->
        let jr = Hashtbl.find t.jobs id in
        if jr.cancelled || now >= jr.not_before || now >= jr.deadline_at then Some jr
        else begin
          soonest := Float.min !soonest (jr.not_before -. now);
          Queue.add id t.queue;
          go (i + 1)
        end
  in
  match go 0 with
  | Some jr -> `Run jr
  | None -> if !soonest = Float.infinity then `Idle else `Wait !soonest

let retry t jr ~kind ~message =
  jr.retries <- jr.retries + 1;
  jr.started <- false;
  Obs.Metrics.incr c_retry_attempts;
  let delay =
    Supervisor.backoff_s ~base:t.retry_base_s ~attempt:jr.retries ~seed:(Hashtbl.hash jr.job.id)
  in
  jr.not_before <- Unix.gettimeofday () +. delay;
  (match jr.stream with Some s -> Obs.Stream.suspend s | None -> ());
  t.log
    (Printf.sprintf "serve: job %s failed (%s): %s; retry %d/%d in %.3f s%s" jr.job.id kind message
       jr.retries t.max_retries delay
       (if jr.has_ckpt then " from checkpoint" else " from scratch"));
  Queue.add jr.job.id t.queue;
  set_depth t

let run_slice t =
  let now = Unix.gettimeofday () in
  match take_runnable t now with
  | `Idle -> Idle
  | `Wait s -> Wait s
  | `Run jr ->
    let id = jr.job.id in
    set_depth t;
    (if jr.cancelled then finish_cancelled t jr ~kind:"cancelled"
     else if now >= jr.deadline_at then begin
       Obs.Metrics.incr c_watchdog_deadline;
       finish_failed t jr ~kind:"deadline-exceeded"
         ~message:
           (Printf.sprintf "wall-clock deadline (%.0f ms) exceeded before completion"
              (Option.value jr.job.deadline_ms ~default:0.))
     end
     else begin
       match Supervisor.Breaker.decide t.breaker ~key:(breaker_key jr.job) ~now with
       | Supervisor.Breaker.Fast_fail { retry_after_s } ->
         (* nothing ran, so there is no timeline worth dumping *)
         finish_failed ~dump:false t jr ~kind:"breaker-open"
           ~message:
             (Printf.sprintf "circuit breaker open for %s; retry after %.2f s"
                (breaker_key jr.job) retry_after_s)
       | Supervisor.Breaker.Proceed | Supervisor.Breaker.Probe ->
         if not jr.started then begin
           jr.started <- true;
           journal_put t jr Journal.Running
         end;
         Obs.Metrics.incr c_quanta;
         let t0 = Obs.now () in
         let outcome = run_quantum t jr in
         jr.wall <- jr.wall +. (Obs.now () -. t0);
         jr.quanta <- jr.quanta + 1;
         (match outcome with
         | Preempt ->
           jr.preemptions <- jr.preemptions + 1;
           Obs.Metrics.incr c_preemptions;
           journal_put t jr Journal.Checkpointed;
           (match jr.stream with Some s -> Obs.Stream.suspend s | None -> ());
           Queue.add id t.queue;
           set_depth t
         | Restart msg ->
           jr.restarts <- jr.restarts + 1;
           Obs.Metrics.incr c_restarts;
           remove_ckpt jr;
           t.log
             (Printf.sprintf "serve: job %s checkpoint corrupt (%s); restarting from scratch" id msg);
           Queue.add id t.queue;
           set_depth t
         | Complete { t2_end; omega_end } -> finish_done t jr ~t2_end ~omega_end
         | Fail { kind; message } ->
           if retryable_kind kind && jr.retries < t.max_retries then retry t jr ~kind ~message
           else begin
             if retryable_kind kind && t.max_retries > 0 then Obs.Metrics.incr c_retry_exhausted;
             finish_failed t jr ~kind ~message
           end)
     end);
    Ran

let drain t =
  let rec go () =
    match run_slice t with
    | Ran -> go ()
    | Idle -> ()
    | Wait s ->
      Unix.sleepf (Float.min s 0.05);
      go ()
  in
  go ()

let abandon t =
  let rec go () =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some id ->
      let jr = Hashtbl.find t.jobs id in
      finish_cancelled t jr ~kind:"aborted";
      go ()
  in
  go ();
  set_depth t

(* Graceful (SIGTERM) drain: park every still-queued job for a future
   daemon instead of finishing it.  Checkpoints stay on disk, the
   journal records [Preempted], the per-job stream gets its terminal
   record — a restart on the same spool recovers and resumes each
   parked job bit-exactly. *)
let preempt_all t =
  let rec go () =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some id ->
      let jr = Hashtbl.find t.jobs id in
      journal_put t jr Journal.Preempted;
      close_stream jr ~ok:false ~error:"preempted" ();
      jr.status <- Parked;
      t.preempted_n <- t.preempted_n + 1;
      Obs.Metrics.incr c_preempted_jobs;
      Supervisor.Breaker.release t.breaker ~key:(breaker_key jr.job) ~now:(Unix.gettimeofday ());
      t.log
        (Printf.sprintf "serve: preempted %s after %d quanta%s" id jr.quanta
           (if jr.has_ckpt then " (checkpoint kept)" else ""));
      t.emit
        (Protocol.job_error ~id ~kind:"preempted"
           ~message:"daemon shutting down; job parked for a restarted daemon" ~quanta:jr.quanta ());
      go ()
  in
  go ();
  set_depth t

let shutdown t = Journal.close t.journal
