(** NDJSON control protocol of [wampde_cli serve].

    Requests arrive one JSON object per line on the daemon's input;
    every line produces zero or more response lines on its output.
    Request shapes:

    {v
    {"type":"job","id":"e1","circuit":"vco-a","analysis":"envelope",
     "t_end":10,"rtol":1e-4,"n1":15,"h2":0.4,"solver":"auto",
     "deadline_ms":60000}
    {"type":"job","id":"q1","circuit":"vco-a","analysis":"quasiperiodic",
     "n1":15,"n2":7,"p2":40,"t_warm":200,"h2_warm":0.5,"solver":"dense"}
    {"type":"cancel","id":"e1"}
    {"type":"metrics"}
    {"type":"stats"}
    {"type":"shutdown","drain":true}
    v}

    Responses are [hello], [accepted], [error] (protocol-level, with a
    stable [code]), per-job {!Wampde_obs.Stream} records (tagged with a
    leading ["job"] field), [result] (with an embedded
    ["wampde.run-report/1"] manifest), [job-error] (typed solver
    failure), [metrics] and [bye].  Parsing is total: any input line
    maps to [Ok request] or [Error {code; message}] — never an
    exception — so a malformed line degrades to one [error] response
    and the daemon keeps serving. *)

(** Protocol schema tag carried by the [hello] record
    ("wampde.serve/1"). *)
val schema : string

type envelope_params = {
  t_end : float;  (** slow-time horizon, microseconds *)
  h2 : float option;  (** initial slow step ([None]: [t_end / 50]) *)
  rtol : float;  (** step-controller relative tolerance *)
  n1 : int;  (** odd fast-time collocation size *)
  solver : Linalg.Structured.strategy;
}

type quasi_params = {
  n1 : int;  (** odd fast-time collocation size *)
  n2 : int;  (** odd slow-time collocation size *)
  p2 : float;  (** slow (forcing) period *)
  t_warm : float;  (** envelope warm-up horizon (must exceed [p2]) *)
  h2_warm : float;  (** fixed warm-up step *)
  linear_solver : Wampde.Quasiperiodic.linear_solver;
}

type analysis = Envelope of envelope_params | Quasiperiodic of quasi_params

type job = {
  id : string;  (** non-empty, at most 64 chars of [[A-Za-z0-9._-]] *)
  circuit : string;  (** registry name, e.g. "vco-a" *)
  analysis : analysis;
  deadline_ms : float option;
      (** wall-clock budget from acceptance, milliseconds; the
          watchdog fails the job with a ["deadline-exceeded"] error
          past it *)
}

type request =
  | Submit of job
  | Cancel of string
  | Metrics
  | Stats  (** grouped daemon-wide cache/pool/health counters *)
  | Shutdown of { drain : bool }  (** [drain]: finish queued jobs first *)

(** A protocol-level failure: [code] is a stable machine-readable
    discriminant ("bad-json", "not-object", "missing-type",
    "unknown-type", "missing-field", "bad-field", "bad-value",
    "bad-id", "unknown-circuit", "duplicate-id", "unknown-id"). *)
type error = { code : string; message : string }

(** Total parser: never raises. *)
val parse_request : string -> (request, error) result

val analysis_name : analysis -> string

(** {1 Response encoders}

    Each returns one complete JSON line (no trailing newline). *)

val hello : quantum:int -> jobs:int -> cache:int -> string

val accepted : id:string -> queue_depth:int -> string

(** Emitted (instead of [accepted]) for each orphaned job a restarted
    daemon re-enqueued from the {!Journal}; [resumed] reports whether
    a bit-exact checkpoint was found to continue from. *)
val recovered : id:string -> resumed:bool -> attempt:int -> queue_depth:int -> string

(** Protocol-level error response; [line] is the 1-based input line
    number, [id] the offending job id when one was parsed. *)
val error_line : ?line:int -> ?id:string -> error -> string

(** Typed terminal failure of an accepted job.  [kind] is a stable
    discriminant ("step-failure", "step-underflow", "solve-failed",
    "non-finite", "continuation-underflow", "nonphysical",
    "corrupt-checkpoint", "solver-failure", "cancelled", "aborted",
    "deadline-exceeded", "stalled", "breaker-open", "preempted",
    "internal").  [flight], when present, is the path of the
    ["wampde.flightdump/1"] postmortem written for this failure. *)
val job_error :
  ?flight:string -> id:string -> kind:string -> message:string -> quanta:int -> unit -> string

type summary = {
  analysis : string;
  wall_s : float;  (** total run time across quanta, seconds *)
  steps : int;  (** macro-step decisions recorded in the manifest *)
  quanta : int;
  preemptions : int;
  restarts : int;
  t2_end : float;  (** reached slow time (envelope) or [p2] (quasi) *)
  omega_end : float;  (** final (envelope) or mean (quasi) frequency *)
}

(** Terminal success record; [manifest] is an already-serialized
    ["wampde.run-report/1"] JSON object, embedded verbatim. *)
val result : id:string -> summary:summary -> manifest:string -> string

(** [metrics] is {!Wampde_obs.Metrics.to_json}, embedded verbatim. *)
val metrics_line : final:bool -> metrics:string -> string

(** Response to a ["stats"] request: one JSON object grouping the
    daemon-wide operational numbers by subsystem,

    {v
    {"type":"stats",
     "cache":{"orbit":{"hits":3,...},"precond":{...}},
     "pool":{"runs":12,"busy_s":0.8,...},
     "health":{"warnings":2,"monitors":{"newton.stall":1,...}},
     "serve":{"jobs.submitted":4,...}}
    v}

    built from the {!Wampde_obs.Metrics.counters} / [gauges]
    snapshots: counters and gauges whose names start with
    ["cache.orbit."], ["cache.precond."], ["pool."],
    ["health.warnings."] and ["serve."] land in the matching group
    with the prefix stripped (journal and supervision counters ride
    in the ["serve"] group as [journal.*], [watchdog.*], [retry.*],
    [breaker.*]).  [breakers] adds a ["breakers"] object mapping
    ["circuit/analysis"] keys to their phase ("closed", "open",
    "half-open"). *)
val stats_line :
  ?breakers:(string * string) list ->
  counters:(string * int) list ->
  gauges:(string * float) list ->
  unit ->
  string

val bye :
  submitted:int -> completed:int -> failed:int -> cancelled:int -> preempted:int -> string
