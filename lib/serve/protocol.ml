module Obs = Wampde_obs
module Json = Obs.Json

let schema = "wampde.serve/1"

type envelope_params = {
  t_end : float;
  h2 : float option;
  rtol : float;
  n1 : int;
  solver : Linalg.Structured.strategy;
}

type quasi_params = {
  n1 : int;
  n2 : int;
  p2 : float;
  t_warm : float;
  h2_warm : float;
  linear_solver : Wampde.Quasiperiodic.linear_solver;
}

type analysis = Envelope of envelope_params | Quasiperiodic of quasi_params

type job = { id : string; circuit : string; analysis : analysis; deadline_ms : float option }

type request =
  | Submit of job
  | Cancel of string
  | Metrics
  | Stats
  | Shutdown of { drain : bool }

type error = { code : string; message : string }

let analysis_name = function Envelope _ -> "envelope" | Quasiperiodic _ -> "quasiperiodic"

(* ---------- parsing ---------- *)

let ( let* ) = Result.bind
let err code fmt = Printf.ksprintf (fun message -> Error { code; message }) fmt

let str_field key j =
  match Json.member key j with
  | None -> Ok None
  | Some v -> (
    match Json.to_str v with
    | Some s -> Ok (Some s)
    | None -> err "bad-field" "field %S must be a string" key)

let num_field key j =
  match Json.member key j with
  | None -> Ok None
  | Some v -> (
    match Json.to_num v with
    | Some x when Float.is_finite x -> Ok (Some x)
    | Some _ -> err "bad-value" "field %S must be finite" key
    | None -> err "bad-field" "field %S must be a number" key)

let required key = function
  | Some v -> Ok v
  | None -> err "missing-field" "required field %S is missing" key

let positive key x =
  if x > 0. then Ok x else err "bad-value" "field %S must be positive (got %g)" key x

let odd_int key lo hi x =
  if Float.is_integer x && x >= float_of_int lo && x <= float_of_int hi then
    let n = int_of_float x in
    if n land 1 = 1 then Ok n
    else err "bad-value" "field %S must be odd (got %d)" key n
  else err "bad-value" "field %S must be an odd integer in [%d, %d]" key lo hi

let id_ok s =
  let n = String.length s in
  n > 0 && n <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       s

let parse_strategy = function
  | None | Some "auto" -> Ok Linalg.Structured.auto
  | Some "dense" -> Ok Linalg.Structured.Dense
  | Some "krylov" -> Ok Linalg.Structured.Krylov
  | Some s -> err "bad-value" "unknown solver %S (use dense, krylov or auto)" s

let parse_linear_solver = function
  | None | Some "dense" -> Ok `Dense
  | Some "gmres" -> Ok `Gmres
  | Some "krylov" -> Ok `Krylov
  | Some s -> err "bad-value" "unknown solver %S (use dense, gmres or krylov)" s

let parse_envelope j =
  let* t_end = Result.bind (num_field "t_end" j) (required "t_end") in
  let* t_end = positive "t_end" t_end in
  let* t_end =
    if t_end <= 1e6 then Ok t_end else err "bad-value" "field \"t_end\" too large (got %g)" t_end
  in
  let* h2 = num_field "h2" j in
  let* h2 =
    match h2 with
    | None -> Ok None
    | Some x ->
      let* x = positive "h2" x in
      Ok (Some x)
  in
  let* rtol = num_field "rtol" j in
  let rtol = Option.value rtol ~default:1e-4 in
  let* rtol =
    if rtol >= 1e-12 && rtol <= 0.1 then Ok rtol
    else err "bad-value" "field \"rtol\" must lie in [1e-12, 0.1] (got %g)" rtol
  in
  let* n1 = num_field "n1" j in
  let* n1 = odd_int "n1" 3 201 (Option.value n1 ~default:25.) in
  let* solver = Result.bind (str_field "solver" j) parse_strategy in
  Ok (Envelope { t_end; h2; rtol; n1; solver })

let parse_quasi j =
  let* n1 = num_field "n1" j in
  let* n1 = odd_int "n1" 3 201 (Option.value n1 ~default:25.) in
  let* n2 = num_field "n2" j in
  let* n2 = odd_int "n2" 3 201 (Option.value n2 ~default:15.) in
  let* p2 = num_field "p2" j in
  let* p2 = positive "p2" (Option.value p2 ~default:40.) in
  let* t_warm = num_field "t_warm" j in
  let* t_warm = positive "t_warm" (Option.value t_warm ~default:(5. *. p2)) in
  let* t_warm =
    if t_warm > p2 then Ok t_warm
    else err "bad-value" "field \"t_warm\" (%g) must exceed \"p2\" (%g)" t_warm p2
  in
  let* h2_warm = num_field "h2_warm" j in
  let* h2_warm = positive "h2_warm" (Option.value h2_warm ~default:0.5) in
  let* linear_solver = Result.bind (str_field "solver" j) parse_linear_solver in
  Ok (Quasiperiodic { n1; n2; p2; t_warm; h2_warm; linear_solver })

let parse_job j =
  let* id = Result.bind (str_field "id" j) (required "id") in
  let* id =
    if id_ok id then Ok id
    else err "bad-id" "job id must be 1-64 chars of [A-Za-z0-9._-] (got %S)" id
  in
  let* circuit = Result.bind (str_field "circuit" j) (required "circuit") in
  let* circuit =
    if circuit <> "" then Ok circuit else err "bad-value" "field \"circuit\" must be non-empty"
  in
  let* analysis = Result.bind (str_field "analysis" j) (required "analysis") in
  let* analysis =
    match analysis with
    | "envelope" -> parse_envelope j
    | "quasiperiodic" | "quasi" -> parse_quasi j
    | s -> err "bad-value" "unknown analysis %S (use envelope or quasiperiodic)" s
  in
  let* deadline_ms = num_field "deadline_ms" j in
  let* deadline_ms =
    match deadline_ms with
    | None -> Ok None
    | Some x ->
      let* x = positive "deadline_ms" x in
      Ok (Some x)
  in
  Ok (Submit { id; circuit; analysis; deadline_ms })

let parse_request line =
  match Json.parse line with
  | Error msg -> err "bad-json" "%s" msg
  | Ok (Json.Obj _ as j) -> (
    match Json.member "type" j with
    | None -> err "missing-type" "request object has no \"type\" field"
    | Some (Json.Str "job") -> parse_job j
    | Some (Json.Str "cancel") ->
      let* id = Result.bind (str_field "id" j) (required "id") in
      Ok (Cancel id)
    | Some (Json.Str "metrics") -> Ok Metrics
    | Some (Json.Str "stats") -> Ok Stats
    | Some (Json.Str "shutdown") -> (
      match Json.member "drain" j with
      | None -> Ok (Shutdown { drain = true })
      | Some (Json.Bool b) -> Ok (Shutdown { drain = b })
      | Some _ -> err "bad-field" "field \"drain\" must be a boolean")
    | Some (Json.Str t) -> err "unknown-type" "unknown request type %S" t
    | Some _ -> err "bad-field" "field \"type\" must be a string")
  | Ok _ -> err "not-object" "each request line must be a single JSON object"

(* ---------- response encoders ---------- *)

let esc s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num x = if Float.is_finite x then Printf.sprintf "%.10g" x else "null"

let hello ~quantum ~jobs ~cache =
  Printf.sprintf "{\"type\":\"hello\",\"schema\":\"%s\",\"quantum\":%d,\"jobs\":%d,\"cache\":%d}"
    (esc schema) quantum jobs cache

let accepted ~id ~queue_depth =
  Printf.sprintf "{\"type\":\"accepted\",\"id\":\"%s\",\"queue_depth\":%d}" (esc id) queue_depth

let recovered ~id ~resumed ~attempt ~queue_depth =
  Printf.sprintf
    "{\"type\":\"recovered\",\"id\":\"%s\",\"resumed\":%b,\"attempt\":%d,\"queue_depth\":%d}"
    (esc id) resumed attempt queue_depth

let error_line ?line ?id { code; message } =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"type\":\"error\"";
  (match id with
  | Some id -> Buffer.add_string b (Printf.sprintf ",\"id\":\"%s\"" (esc id))
  | None -> ());
  Buffer.add_string b (Printf.sprintf ",\"code\":\"%s\",\"message\":\"%s\"" (esc code) (esc message));
  (match line with
  | Some n -> Buffer.add_string b (Printf.sprintf ",\"line\":%d" n)
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let job_error ?flight ~id ~kind ~message ~quanta () =
  let b = Buffer.create 160 in
  Printf.bprintf b "{\"type\":\"job-error\",\"id\":\"%s\",\"kind\":\"%s\",\"message\":\"%s\",\"quanta\":%d"
    (esc id) (esc kind) (esc message) quanta;
  (match flight with
  | Some path -> Printf.bprintf b ",\"flight\":\"%s\"" (esc path)
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

type summary = {
  analysis : string;
  wall_s : float;
  steps : int;
  quanta : int;
  preemptions : int;
  restarts : int;
  t2_end : float;
  omega_end : float;
}

let result ~id ~summary:s ~manifest =
  Printf.sprintf
    "{\"type\":\"result\",\"id\":\"%s\",\"analysis\":\"%s\",\"wall_s\":%s,\"steps\":%d,\"quanta\":%d,\"preemptions\":%d,\"restarts\":%d,\"t2_end\":%s,\"omega_end\":%s,\"manifest\":%s}"
    (esc id) (esc s.analysis) (num s.wall_s) s.steps s.quanta s.preemptions s.restarts
    (num s.t2_end) (num s.omega_end) manifest

let metrics_line ~final ~metrics =
  Printf.sprintf "{\"type\":\"metrics\",\"final\":%b,\"metrics\":%s}" final metrics

(* Daemon-wide operational stats as one grouped response: warm-cache
   hit rates, domain-pool utilization, health-warning counts and the
   scheduler's own counters — the numbers an operator polls without
   wanting the full metrics snapshot. *)
let stats_line ?(breakers = []) ~counters ~gauges () =
  let with_prefix p l =
    let pl = String.length p in
    List.filter_map
      (fun (n, v) ->
        if String.length n > pl && String.sub n 0 pl = p then
          Some (String.sub n pl (String.length n - pl), v)
        else None)
      l
  in
  let obj l =
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (esc k) v) l)
    ^ "}"
  in
  let int_obj p = obj (List.map (fun (k, v) -> (k, string_of_int v)) (with_prefix p counters)) in
  let mixed p =
    obj
      (List.map (fun (k, v) -> (k, string_of_int v)) (with_prefix p counters)
      @ List.map (fun (k, v) -> (k, num v)) (with_prefix p gauges))
  in
  let warnings = match List.assoc_opt "health.warnings" counters with Some n -> n | None -> 0 in
  let breakers_obj = obj (List.map (fun (k, v) -> (k, "\"" ^ esc v ^ "\"")) breakers) in
  Printf.sprintf
    "{\"type\":\"stats\",\"cache\":{\"orbit\":%s,\"precond\":%s},\"pool\":%s,\"health\":{\"warnings\":%d,\"monitors\":%s},\"serve\":%s,\"breakers\":%s}"
    (int_obj "cache.orbit.") (int_obj "cache.precond.") (mixed "pool.") warnings
    (int_obj "health.warnings.") (mixed "serve.") breakers_obj

let bye ~submitted ~completed ~failed ~cancelled ~preempted =
  Printf.sprintf
    "{\"type\":\"bye\",\"submitted\":%d,\"completed\":%d,\"failed\":%d,\"cancelled\":%d,\"preempted\":%d}"
    submitted completed failed cancelled preempted
